# Empty compiler generated dependencies file for spurious_timeout_demo.
# This may be replaced when dependencies are built.
