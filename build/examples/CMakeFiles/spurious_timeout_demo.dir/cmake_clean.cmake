file(REMOVE_RECURSE
  "CMakeFiles/spurious_timeout_demo.dir/spurious_timeout_demo.cpp.o"
  "CMakeFiles/spurious_timeout_demo.dir/spurious_timeout_demo.cpp.o.d"
  "spurious_timeout_demo"
  "spurious_timeout_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spurious_timeout_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
