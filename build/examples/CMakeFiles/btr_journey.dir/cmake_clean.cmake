file(REMOVE_RECURSE
  "CMakeFiles/btr_journey.dir/btr_journey.cpp.o"
  "CMakeFiles/btr_journey.dir/btr_journey.cpp.o.d"
  "btr_journey"
  "btr_journey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btr_journey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
