# Empty dependencies file for btr_journey.
# This may be replaced when dependencies are built.
