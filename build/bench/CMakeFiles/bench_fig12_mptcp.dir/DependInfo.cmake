
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_mptcp.cpp" "bench/CMakeFiles/bench_fig12_mptcp.dir/bench_fig12_mptcp.cpp.o" "gcc" "bench/CMakeFiles/bench_fig12_mptcp.dir/bench_fig12_mptcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/hsr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hsr_model.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hsr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/mptcp/CMakeFiles/hsr_mptcp.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hsr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/hsr_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/hsr_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hsr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hsr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hsr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
