file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_mptcp.dir/bench_fig12_mptcp.cpp.o"
  "CMakeFiles/bench_fig12_mptcp.dir/bench_fig12_mptcp.cpp.o.d"
  "bench_fig12_mptcp"
  "bench_fig12_mptcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_mptcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
