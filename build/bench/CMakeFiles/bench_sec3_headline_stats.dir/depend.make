# Empty dependencies file for bench_sec3_headline_stats.
# This may be replaced when dependencies are built.
