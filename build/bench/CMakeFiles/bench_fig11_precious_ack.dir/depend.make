# Empty dependencies file for bench_fig11_precious_ack.
# This may be replaced when dependencies are built.
