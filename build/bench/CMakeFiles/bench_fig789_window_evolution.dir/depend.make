# Empty dependencies file for bench_fig789_window_evolution.
# This may be replaced when dependencies are built.
