file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_q_sweep.dir/bench_sec5_q_sweep.cpp.o"
  "CMakeFiles/bench_sec5_q_sweep.dir/bench_sec5_q_sweep.cpp.o.d"
  "bench_sec5_q_sweep"
  "bench_sec5_q_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_q_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
