# Empty dependencies file for bench_sec5_q_sweep.
# This may be replaced when dependencies are built.
