# Empty compiler generated dependencies file for bench_fig4_ack_timeout_corr.
# This may be replaced when dependencies are built.
