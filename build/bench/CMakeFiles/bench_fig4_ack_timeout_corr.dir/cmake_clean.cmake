file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ack_timeout_corr.dir/bench_fig4_ack_timeout_corr.cpp.o"
  "CMakeFiles/bench_fig4_ack_timeout_corr.dir/bench_fig4_ack_timeout_corr.cpp.o.d"
  "bench_fig4_ack_timeout_corr"
  "bench_fig4_ack_timeout_corr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ack_timeout_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
