# Empty compiler generated dependencies file for bench_sec5_delayed_ack.
# This may be replaced when dependencies are built.
