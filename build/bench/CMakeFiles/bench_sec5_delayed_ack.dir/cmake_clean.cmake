file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_delayed_ack.dir/bench_sec5_delayed_ack.cpp.o"
  "CMakeFiles/bench_sec5_delayed_ack.dir/bench_sec5_delayed_ack.cpp.o.d"
  "bench_sec5_delayed_ack"
  "bench_sec5_delayed_ack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_delayed_ack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
