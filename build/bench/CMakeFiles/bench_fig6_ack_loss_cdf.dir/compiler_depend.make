# Empty compiler generated dependencies file for bench_fig6_ack_loss_cdf.
# This may be replaced when dependencies are built.
