# Empty dependencies file for bench_fig3_loss_cdf.
# This may be replaced when dependencies are built.
