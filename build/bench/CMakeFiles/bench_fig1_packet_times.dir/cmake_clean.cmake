file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_packet_times.dir/bench_fig1_packet_times.cpp.o"
  "CMakeFiles/bench_fig1_packet_times.dir/bench_fig1_packet_times.cpp.o.d"
  "bench_fig1_packet_times"
  "bench_fig1_packet_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_packet_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
