# Empty dependencies file for bench_fig1_packet_times.
# This may be replaced when dependencies are built.
