file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_mitigations.dir/bench_ext_mitigations.cpp.o"
  "CMakeFiles/bench_ext_mitigations.dir/bench_ext_mitigations.cpp.o.d"
  "bench_ext_mitigations"
  "bench_ext_mitigations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mitigations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
