# Empty compiler generated dependencies file for bench_ext_mitigations.
# This may be replaced when dependencies are built.
