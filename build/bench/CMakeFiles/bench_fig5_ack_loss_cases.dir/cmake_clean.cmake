file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_ack_loss_cases.dir/bench_fig5_ack_loss_cases.cpp.o"
  "CMakeFiles/bench_fig5_ack_loss_cases.dir/bench_fig5_ack_loss_cases.cpp.o.d"
  "bench_fig5_ack_loss_cases"
  "bench_fig5_ack_loss_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_ack_loss_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
