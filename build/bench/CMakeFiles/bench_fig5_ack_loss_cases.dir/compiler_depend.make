# Empty compiler generated dependencies file for bench_fig5_ack_loss_cases.
# This may be replaced when dependencies are built.
