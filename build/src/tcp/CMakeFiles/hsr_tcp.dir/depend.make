# Empty dependencies file for hsr_tcp.
# This may be replaced when dependencies are built.
