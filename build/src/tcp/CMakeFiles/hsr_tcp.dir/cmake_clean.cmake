file(REMOVE_RECURSE
  "CMakeFiles/hsr_tcp.dir/connection.cpp.o"
  "CMakeFiles/hsr_tcp.dir/connection.cpp.o.d"
  "CMakeFiles/hsr_tcp.dir/receiver.cpp.o"
  "CMakeFiles/hsr_tcp.dir/receiver.cpp.o.d"
  "CMakeFiles/hsr_tcp.dir/rto.cpp.o"
  "CMakeFiles/hsr_tcp.dir/rto.cpp.o.d"
  "CMakeFiles/hsr_tcp.dir/sender.cpp.o"
  "CMakeFiles/hsr_tcp.dir/sender.cpp.o.d"
  "libhsr_tcp.a"
  "libhsr_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsr_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
