file(REMOVE_RECURSE
  "libhsr_tcp.a"
)
