file(REMOVE_RECURSE
  "libhsr_util.a"
)
