# Empty dependencies file for hsr_util.
# This may be replaced when dependencies are built.
