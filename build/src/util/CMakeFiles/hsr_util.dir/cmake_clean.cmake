file(REMOVE_RECURSE
  "CMakeFiles/hsr_util.dir/csv.cpp.o"
  "CMakeFiles/hsr_util.dir/csv.cpp.o.d"
  "CMakeFiles/hsr_util.dir/logging.cpp.o"
  "CMakeFiles/hsr_util.dir/logging.cpp.o.d"
  "CMakeFiles/hsr_util.dir/rng.cpp.o"
  "CMakeFiles/hsr_util.dir/rng.cpp.o.d"
  "CMakeFiles/hsr_util.dir/stats.cpp.o"
  "CMakeFiles/hsr_util.dir/stats.cpp.o.d"
  "CMakeFiles/hsr_util.dir/status.cpp.o"
  "CMakeFiles/hsr_util.dir/status.cpp.o.d"
  "libhsr_util.a"
  "libhsr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
