# Empty dependencies file for hsr_radio.
# This may be replaced when dependencies are built.
