file(REMOVE_RECURSE
  "libhsr_radio.a"
)
