file(REMOVE_RECURSE
  "CMakeFiles/hsr_radio.dir/environment.cpp.o"
  "CMakeFiles/hsr_radio.dir/environment.cpp.o.d"
  "CMakeFiles/hsr_radio.dir/profiles.cpp.o"
  "CMakeFiles/hsr_radio.dir/profiles.cpp.o.d"
  "libhsr_radio.a"
  "libhsr_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsr_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
