
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/environment.cpp" "src/radio/CMakeFiles/hsr_radio.dir/environment.cpp.o" "gcc" "src/radio/CMakeFiles/hsr_radio.dir/environment.cpp.o.d"
  "/root/repo/src/radio/profiles.cpp" "src/radio/CMakeFiles/hsr_radio.dir/profiles.cpp.o" "gcc" "src/radio/CMakeFiles/hsr_radio.dir/profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hsr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hsr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hsr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
