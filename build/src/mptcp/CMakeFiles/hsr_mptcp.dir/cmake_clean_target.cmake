file(REMOVE_RECURSE
  "libhsr_mptcp.a"
)
