file(REMOVE_RECURSE
  "CMakeFiles/hsr_mptcp.dir/mptcp.cpp.o"
  "CMakeFiles/hsr_mptcp.dir/mptcp.cpp.o.d"
  "libhsr_mptcp.a"
  "libhsr_mptcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsr_mptcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
