
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mptcp/mptcp.cpp" "src/mptcp/CMakeFiles/hsr_mptcp.dir/mptcp.cpp.o" "gcc" "src/mptcp/CMakeFiles/hsr_mptcp.dir/mptcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcp/CMakeFiles/hsr_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hsr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hsr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hsr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
