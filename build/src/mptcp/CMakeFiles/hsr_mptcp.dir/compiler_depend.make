# Empty compiler generated dependencies file for hsr_mptcp.
# This may be replaced when dependencies are built.
