file(REMOVE_RECURSE
  "libhsr_sim.a"
)
