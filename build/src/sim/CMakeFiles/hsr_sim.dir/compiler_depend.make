# Empty compiler generated dependencies file for hsr_sim.
# This may be replaced when dependencies are built.
