file(REMOVE_RECURSE
  "CMakeFiles/hsr_sim.dir/event_queue.cpp.o"
  "CMakeFiles/hsr_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/hsr_sim.dir/simulator.cpp.o"
  "CMakeFiles/hsr_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/hsr_sim.dir/timer.cpp.o"
  "CMakeFiles/hsr_sim.dir/timer.cpp.o.d"
  "libhsr_sim.a"
  "libhsr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
