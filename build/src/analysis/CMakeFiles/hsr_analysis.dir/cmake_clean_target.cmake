file(REMOVE_RECURSE
  "libhsr_analysis.a"
)
