file(REMOVE_RECURSE
  "CMakeFiles/hsr_analysis.dir/corpus.cpp.o"
  "CMakeFiles/hsr_analysis.dir/corpus.cpp.o.d"
  "CMakeFiles/hsr_analysis.dir/flow_analysis.cpp.o"
  "CMakeFiles/hsr_analysis.dir/flow_analysis.cpp.o.d"
  "libhsr_analysis.a"
  "libhsr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
