
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/corpus.cpp" "src/analysis/CMakeFiles/hsr_analysis.dir/corpus.cpp.o" "gcc" "src/analysis/CMakeFiles/hsr_analysis.dir/corpus.cpp.o.d"
  "/root/repo/src/analysis/flow_analysis.cpp" "src/analysis/CMakeFiles/hsr_analysis.dir/flow_analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/hsr_analysis.dir/flow_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/hsr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hsr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hsr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hsr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
