# Empty compiler generated dependencies file for hsr_analysis.
# This may be replaced when dependencies are built.
