# Empty compiler generated dependencies file for hsr_trace.
# This may be replaced when dependencies are built.
