file(REMOVE_RECURSE
  "libhsr_trace.a"
)
