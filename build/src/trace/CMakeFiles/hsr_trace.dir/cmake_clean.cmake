file(REMOVE_RECURSE
  "CMakeFiles/hsr_trace.dir/capture.cpp.o"
  "CMakeFiles/hsr_trace.dir/capture.cpp.o.d"
  "CMakeFiles/hsr_trace.dir/trace_io.cpp.o"
  "CMakeFiles/hsr_trace.dir/trace_io.cpp.o.d"
  "libhsr_trace.a"
  "libhsr_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsr_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
