file(REMOVE_RECURSE
  "libhsr_workload.a"
)
