# Empty compiler generated dependencies file for hsr_workload.
# This may be replaced when dependencies are built.
