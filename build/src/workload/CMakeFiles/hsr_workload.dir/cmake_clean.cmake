file(REMOVE_RECURSE
  "CMakeFiles/hsr_workload.dir/dataset.cpp.o"
  "CMakeFiles/hsr_workload.dir/dataset.cpp.o.d"
  "CMakeFiles/hsr_workload.dir/scenario.cpp.o"
  "CMakeFiles/hsr_workload.dir/scenario.cpp.o.d"
  "libhsr_workload.a"
  "libhsr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
