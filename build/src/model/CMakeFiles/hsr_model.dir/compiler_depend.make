# Empty compiler generated dependencies file for hsr_model.
# This may be replaced when dependencies are built.
