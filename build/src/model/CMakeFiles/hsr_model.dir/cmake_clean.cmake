file(REMOVE_RECURSE
  "CMakeFiles/hsr_model.dir/enhanced.cpp.o"
  "CMakeFiles/hsr_model.dir/enhanced.cpp.o.d"
  "CMakeFiles/hsr_model.dir/padhye.cpp.o"
  "CMakeFiles/hsr_model.dir/padhye.cpp.o.d"
  "CMakeFiles/hsr_model.dir/params.cpp.o"
  "CMakeFiles/hsr_model.dir/params.cpp.o.d"
  "libhsr_model.a"
  "libhsr_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsr_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
