file(REMOVE_RECURSE
  "libhsr_model.a"
)
