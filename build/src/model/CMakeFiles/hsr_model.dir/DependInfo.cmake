
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/enhanced.cpp" "src/model/CMakeFiles/hsr_model.dir/enhanced.cpp.o" "gcc" "src/model/CMakeFiles/hsr_model.dir/enhanced.cpp.o.d"
  "/root/repo/src/model/padhye.cpp" "src/model/CMakeFiles/hsr_model.dir/padhye.cpp.o" "gcc" "src/model/CMakeFiles/hsr_model.dir/padhye.cpp.o.d"
  "/root/repo/src/model/params.cpp" "src/model/CMakeFiles/hsr_model.dir/params.cpp.o" "gcc" "src/model/CMakeFiles/hsr_model.dir/params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/hsr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hsr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hsr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hsr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hsr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
