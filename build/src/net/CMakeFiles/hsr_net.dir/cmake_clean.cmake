file(REMOVE_RECURSE
  "CMakeFiles/hsr_net.dir/channel.cpp.o"
  "CMakeFiles/hsr_net.dir/channel.cpp.o.d"
  "CMakeFiles/hsr_net.dir/link.cpp.o"
  "CMakeFiles/hsr_net.dir/link.cpp.o.d"
  "CMakeFiles/hsr_net.dir/packet.cpp.o"
  "CMakeFiles/hsr_net.dir/packet.cpp.o.d"
  "libhsr_net.a"
  "libhsr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
