file(REMOVE_RECURSE
  "libhsr_net.a"
)
