# Empty compiler generated dependencies file for hsr_net.
# This may be replaced when dependencies are built.
