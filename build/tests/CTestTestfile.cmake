# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/radio_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/mptcp_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
