// The simulation engine: a virtual clock driving an event queue.
//
// Single-threaded and deterministic: with the same seed and the same
// component construction order, a run is bit-reproducible. Experiments that
// need parallelism run multiple Simulators in separate processes/threads;
// a Simulator itself is never shared across threads.
#pragma once

#include <cstdint>

#include "sim/event_queue.h"
#include "util/time.h"

namespace hsr::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  // Schedules an event at an absolute time (must not be in the past).
  EventHandle at(TimePoint when, EventAction action);
  // Schedules an event `delay` from now (delay must be non-negative).
  EventHandle after(Duration delay, EventAction action);
  // Moves a still-pending event to a new absolute time (must not be in the
  // past), keeping its action; returns false when the handle is no longer
  // pending. The re-arm fast path for timers (see EventQueue::reschedule).
  bool reschedule(const EventHandle& handle, TimePoint when);

  // Runs until the queue drains or `deadline` passes, whichever first.
  // Events exactly at the deadline still run. Returns events executed.
  std::uint64_t run_until(TimePoint deadline);
  // Runs until the queue drains or stop() is called.
  std::uint64_t run();

  // Requests the run loop to exit after the current event.
  void stop() { stopped_ = true; }

  // Watchdog: caps the LIFETIME number of events this simulator may execute
  // (0 = unlimited). A run loop that reaches the budget stops before the
  // next event and latches budget_exhausted(), so a wedged or runaway flow
  // terminates with a diagnosable state instead of spinning forever.
  void set_event_budget(std::uint64_t max_events) { event_budget_ = max_events; }
  std::uint64_t event_budget() const { return event_budget_; }
  bool budget_exhausted() const { return budget_exhausted_; }

  std::uint64_t events_executed() const { return executed_; }

  // Pre-sizes the event queue for an expected peak of concurrently pending
  // events (see EventQueue::reserve); call before the run starts.
  void reserve_events(std::size_t expected_pending) {
    queue_.reserve(expected_pending);
  }

  // Event-queue diagnostics (scheduled/fired/pruned counters, tombstones).
  const EventQueue& queue() const { return queue_; }

 private:
  EventQueue queue_;
  TimePoint now_ = TimePoint::zero();
  std::uint64_t executed_ = 0;
  std::uint64_t event_budget_ = 0;  // 0 = unlimited
  bool budget_exhausted_ = false;
  bool stopped_ = false;
};

}  // namespace hsr::sim
