// Restartable one-shot timer, the building block for TCP's retransmission
// and delayed-ACK timers.
#pragma once

#include <utility>

#include "sim/simulator.h"

namespace hsr::sim {

class Timer {
 public:
  // `on_expire` fires when the timer runs out; the timer is then idle and
  // can be re-armed (including from inside the callback).
  Timer(Simulator& sim, EventAction on_expire)
      : sim_(sim), on_expire_(std::move(on_expire)) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { cancel(); }

  // Arms (or re-arms) the timer to fire `delay` from now.
  void arm(Duration delay);
  // Cancels without firing; no-op when idle.
  void cancel();
  bool armed() const { return handle_.pending(); }
  // Absolute expiry time; only meaningful while armed.
  TimePoint expiry() const { return expiry_; }

 private:
  Simulator& sim_;
  EventAction on_expire_;
  EventHandle handle_;
  TimePoint expiry_;
};

}  // namespace hsr::sim
