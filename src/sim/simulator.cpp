#include "sim/simulator.h"

#include "util/logging.h"

namespace hsr::sim {

EventHandle Simulator::at(TimePoint when, EventAction action) {
  HSR_CHECK_MSG(when >= now_, "scheduling into the past");
  return queue_.schedule(when, std::move(action));
}

EventHandle Simulator::after(Duration delay, EventAction action) {
  HSR_CHECK_MSG(delay >= Duration::zero(), "negative delay");
  return queue_.schedule(now_ + delay, std::move(action));
}

bool Simulator::reschedule(const EventHandle& handle, TimePoint when) {
  HSR_CHECK_MSG(when >= now_, "rescheduling into the past");
  return queue_.reschedule(handle, when);
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
  std::uint64_t n = 0;
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    if (event_budget_ != 0 && executed_ >= event_budget_) {
      // Watchdog trip: leave the remaining events pending so callers can
      // inspect the wedged state; the clock stays at the last executed event.
      budget_exhausted_ = true;
      return n;
    }
    // The queue can never owe us an event from before the current clock:
    // at()/after() reject past schedules, so the head is always >= now.
    HSR_DCHECK_MSG(queue_.next_time() >= now_, "simulation clock would go backwards");
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++n;
    ++executed_;
  }
  // Advance the clock to the deadline even if the queue drained early, so
  // callers measure elapsed wall time consistently.
  if (!stopped_ && now_ < deadline && deadline != TimePoint::max()) {
    now_ = deadline;
  }
  return n;
}

std::uint64_t Simulator::run() { return run_until(TimePoint::max()); }

}  // namespace hsr::sim
