#include "sim/timer.h"

namespace hsr::sim {

// HSR_HOT_PATH_BEGIN — the ACK-clocked RTO re-arm fires once per ACK.
void Timer::arm(Duration delay) {
  expiry_ = sim_.now() + delay;
  // Re-arm fast path: a still-pending event is moved in place, keeping its
  // action — no allocation and no callback re-construction on the
  // ACK-clocked RTO re-arm that dominates the simulator's hot path.
  if (!sim_.reschedule(handle_, expiry_)) {
    handle_ = sim_.at(expiry_, [this] { on_expire_(); });
  }
}

void Timer::cancel() { handle_.cancel(); }
// HSR_HOT_PATH_END

}  // namespace hsr::sim
