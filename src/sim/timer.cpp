#include "sim/timer.h"

namespace hsr::sim {

void Timer::arm(Duration delay) {
  cancel();
  expiry_ = sim_.now() + delay;
  handle_ = sim_.after(delay, [this] { on_expire_(); });
}

void Timer::cancel() { handle_.cancel(); }

}  // namespace hsr::sim
