#include "sim/event_queue.h"

#include <algorithm>

#include "util/logging.h"

namespace hsr::sim {

bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->handle_pending(*this);
}

bool EventHandle::cancel() {
  return queue_ != nullptr && queue_->cancel_handle(*this);
}

void EventQueue::reserve(std::size_t expected_pending) {
  slots_.reserve(expected_pending);
  heap_.reserve(expected_pending * 2);
}

// HSR_HOT_PATH_BEGIN — schedule/reschedule/cancel and the slab bookkeeping
// they ride on run once per simulated packet/timer; the steady state must
// not allocate (pinned dynamically by sim.hotpath_alloc, gated statically
// by hsr-lint's hotpath family).
bool EventQueue::handle_pending(const EventHandle& h) const {
  // An inert (default-constructed) or foreign-queue handle must never match:
  // its slot/generation pair would alias an unrelated event in this queue.
  if (h.queue_ != this) return false;
  if (h.slot_ >= slots_.size()) return false;
  const Slot& s = slots_[h.slot_];
  return s.generation == h.generation_ && s.live;
}

bool EventQueue::cancel_handle(const EventHandle& h) {
  if (!handle_pending(h)) return false;
  Slot& s = slots_[h.slot_];
  s.live = false;
  // Release captured state now rather than when the tombstone surfaces.
  s.action = nullptr;
  ++tombstones_in_heap_;
  maybe_compact();
  return true;
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    slots_[index].next_free = kNilSlot;
    return index;
  }
  slots_.emplace_back();  // hsr-lint-ok: amortized slab growth; steady state recycles via free_head_
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) const {
  Slot& s = slots_[index];
  s.live = false;
  s.action = nullptr;
  ++s.generation;  // outstanding handles to this slot become inert
  s.next_free = free_head_;
  free_head_ = index;
}

void EventQueue::push_entry(TimePoint when, std::uint64_t seq,
                            std::uint32_t slot) const {
  heap_.push_back(HeapEntry{when, seq, slot});  // hsr-lint-ok: amortized heap growth; capacity plateaus at peak depth
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

EventHandle EventQueue::schedule(TimePoint when, EventAction action) {
  const std::uint32_t index = acquire_slot();
  Slot& s = slots_[index];
  s.when = when;
  s.seq = next_seq_++;
  s.action = std::move(action);
  s.live = true;
  push_entry(when, s.seq, index);
  return EventHandle(this, index, s.generation);
}

bool EventQueue::reschedule(const EventHandle& handle, TimePoint when) {
  if (!handle_pending(handle)) return false;
  Slot& s = slots_[handle.slot_];
  // The slot's current heap entry is orphaned (its seq no longer matches)
  // and the event continues under a fresh seq, so same-instant FIFO order
  // treats the move exactly like cancel + schedule.
  s.when = when;
  s.seq = next_seq_++;
  push_entry(when, s.seq, handle.slot_);
  ++tombstones_in_heap_;
  ++reschedules_total_;
  maybe_compact();
  return true;
}

void EventQueue::retire_dead_entry(const HeapEntry& e) const {
  ++pruned_tombstones_;
  HSR_DCHECK_MSG(tombstones_in_heap_ > 0, "tombstone count underflow");
  --tombstones_in_heap_;
  const Slot& s = slots_[e.slot];
  HSR_DCHECK_MSG(!(s.live && s.seq == e.seq), "retiring a live entry");
  if (!s.live && s.seq == e.seq) release_slot(e.slot);
}

void EventQueue::prune() const {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    const HeapEntry dead = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    retire_dead_entry(dead);
  }
}
// HSR_HOT_PATH_END

// Compaction is amortized maintenance (runs when tombstones outnumber live
// entries), not steady-state work, so it sits outside the hot region; its
// resize() only ever shrinks.
void EventQueue::maybe_compact() {
  if (heap_.size() >= kCompactMinHeap && tombstones_in_heap_ * 2 > heap_.size()) {
    compact();
  }
}

void EventQueue::compact() {
  std::size_t kept = 0;
  for (const HeapEntry& e : heap_) {
    if (entry_live(e)) {
      heap_[kept++] = e;
    } else {
      retire_dead_entry(e);
    }
  }
  heap_.resize(kept);
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  HSR_DCHECK_MSG(tombstones_in_heap_ == 0, "compaction missed tombstones");
  ++compactions_total_;
}

// HSR_HOT_PATH_BEGIN — the dispatch loop: peek/pop/run once per event.
bool EventQueue::empty() const {
  prune();
  return heap_.empty();
}

TimePoint EventQueue::next_time() const {
  prune();
  if (heap_.empty()) return TimePoint::max();
  return heap_.front().when;
}

TimePoint EventQueue::pop_and_run() {
  prune();
  HSR_CHECK_MSG(!heap_.empty(), "pop_and_run on empty queue");
  const HeapEntry e = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  Slot& s = slots_[e.slot];
  HSR_DCHECK_MSG(s.live && s.seq == e.seq, "popped entry is not live");
  const TimePoint when = e.when;
  // Move the action out and retire the slot BEFORE running: the action may
  // schedule new events (reusing the slot) or inspect its own handle, which
  // must already read as fired.
  auto action = std::move(s.action);
  release_slot(e.slot);
  ++fired_total_;
  // Virtual time never runs backwards: the heap must hand events out in
  // non-decreasing timestamp order.
  HSR_DCHECK_MSG(when >= last_fired_, "event queue time went backwards");
  last_fired_ = when;
  // Tombstone accounting: every event ever scheduled is in the heap, fired,
  // or was pruned as a tombstone — nothing is lost or duplicated.
  HSR_DCHECK_MSG(heap_.size() + fired_total_ + pruned_tombstones_ == next_seq_,
                 "event accounting out of balance");
  action();
  return when;
}
// HSR_HOT_PATH_END

}  // namespace hsr::sim
