#include "sim/event_queue.h"

#include "util/logging.h"

namespace hsr::sim {

bool EventHandle::pending() const {
  return rec_ && !rec_->cancelled && !rec_->fired;
}

bool EventHandle::cancel() {
  if (!pending()) return false;
  rec_->cancelled = true;
  return true;
}

EventHandle EventQueue::schedule(TimePoint when, std::function<void()> action) {
  auto rec = std::make_shared<EventHandle::Record>();
  rec->when = when;
  rec->seq = next_seq_++;
  rec->action = std::move(action);
  heap_.push(Entry{rec});
  return EventHandle(std::move(rec));
}

void EventQueue::prune() const {
  while (!heap_.empty() && heap_.top().rec->cancelled) {
    HSR_DCHECK_MSG(!heap_.top().rec->fired, "fired event lingering as tombstone");
    heap_.pop();
    ++pruned_tombstones_;
  }
}

bool EventQueue::empty() const {
  prune();
  return heap_.empty();
}

TimePoint EventQueue::next_time() const {
  prune();
  if (heap_.empty()) return TimePoint::max();
  return heap_.top().rec->when;
}

TimePoint EventQueue::pop_and_run() {
  prune();
  HSR_CHECK_MSG(!heap_.empty(), "pop_and_run on empty queue");
  Entry e = heap_.top();
  heap_.pop();
  HSR_DCHECK_MSG(!e.rec->fired, "event fired twice");
  e.rec->fired = true;
  ++fired_total_;
  const TimePoint when = e.rec->when;
  // Virtual time never runs backwards: the heap must hand events out in
  // non-decreasing timestamp order.
  HSR_DCHECK_MSG(when >= last_fired_, "event queue time went backwards");
  last_fired_ = when;
  // Tombstone accounting: every event ever scheduled is in the heap, fired,
  // or was pruned as a cancelled tombstone — nothing is lost or duplicated.
  HSR_DCHECK_MSG(heap_.size() + fired_total_ + pruned_tombstones_ == next_seq_,
                 "event accounting out of balance");
  // Move the action out so captured state is released promptly even if the
  // handle outlives the event.
  auto action = std::move(e.rec->action);
  action();
  return when;
}

}  // namespace hsr::sim
