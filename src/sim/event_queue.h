// Priority queue of timestamped events with stable FIFO ordering among
// events scheduled for the same instant, O(1) lazy cancellation, in-place
// rescheduling, and slab-allocated event records (no per-event heap
// allocation beyond what the action's captures need).
#pragma once

#include <cstdint>
#include <vector>

#include "util/inline_function.h"
#include "util/time.h"

namespace hsr::sim {

using util::Duration;
using util::TimePoint;

// Inline capture budget for event actions, sized so every hot-path capture
// in the stack — the largest is net::Link's delivery lambda, which carries a
// full Packet plus the link pointer (link.cpp static_asserts it) — lives in
// the slab slot and never touches the allocator. Oversized captures still
// work; they fall back to one heap allocation (see util::InlineFunction).
inline constexpr std::size_t kEventActionInlineBytes = 160;

// The callable stored per scheduled event: move-only, small-buffer
// optimized. Anything invocable as void() converts implicitly.
using EventAction = util::InlineFunction<void(), kEventActionInlineBytes>;

class EventQueue;

// Handle to a scheduled event; allows cancellation (and, via the queue,
// rescheduling). Default-constructed handles are inert. Handles are cheap
// to copy (queue pointer + slot index + generation); a generation counter
// makes handles to fired, cancelled, or reused slots inert, so stale
// handles are always safe — but a handle must not outlive its EventQueue.
class EventHandle {
 public:
  EventHandle() = default;

  // True if the event is still pending (not fired, not cancelled).
  bool pending() const;
  // Cancels the event if still pending; returns whether it was pending.
  bool cancel();

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint32_t generation)
      : queue_(queue), slot_(slot), generation_(generation) {}
  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

// Cancellation is lazy: a cancelled (or reschedule-superseded) heap entry
// stays behind as a tombstone until it reaches the top — `empty()` and
// `next_time()` prune before answering and are exact — or until tombstones
// outnumber live entries, at which point the whole heap is compacted in one
// pass so cancel-heavy workloads (ACK-clocked RTO re-arming) cannot let
// dead entries dominate the heap.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Pre-sizes the slab and the heap for an expected peak of concurrently
  // pending events, so a workload whose event population ramps slowly (many
  // TCP flows opening their windows) reaches steady state without the
  // vectors ever growing mid-run. The heap gets twice the slab budget:
  // lazily-cancelled tombstones may legitimately pile up to half the heap
  // before compaction reclaims them. Never shrinks.
  void reserve(std::size_t expected_pending);

  // Schedules `action` at absolute time `when`. Events at equal times fire
  // in scheduling order. Inline-sized captures are stored in the slab slot:
  // no allocation on the schedule path.
  EventHandle schedule(TimePoint when, EventAction action);

  // Moves a still-pending event to a new time, keeping its action: the
  // re-arm fast path for retransmission timers (no allocation, no action
  // re-construction). Ordering behaves exactly like cancel + schedule — the
  // moved event fires after anything already scheduled for the same
  // instant. Returns false (and changes nothing) when the handle is inert,
  // cancelled, or already fired.
  bool reschedule(const EventHandle& handle, TimePoint when);

  // True when no live (non-cancelled) events remain.
  bool empty() const;

  // Time of the earliest pending event; TimePoint::max() when empty.
  TimePoint next_time() const;

  // Pops and runs the earliest pending event; returns its timestamp.
  // Precondition: !empty().
  TimePoint pop_and_run();

  // Total events scheduled over the queue's lifetime (diagnostics). A
  // reschedule counts as one more scheduled event: it retires the old heap
  // entry as a tombstone and files a new one, exactly like cancel + push.
  std::uint64_t scheduled_total() const { return next_seq_; }

  // Events executed via pop_and_run (diagnostics / invariant accounting).
  std::uint64_t fired_total() const { return fired_total_; }

  // Dead heap entries dropped, by head pruning or compaction. Together with
  // the heap size and fired_total() this accounts for every event ever
  // scheduled:  heap size + fired + pruned tombstones == scheduled_total().
  std::uint64_t pruned_tombstones_total() const { return pruned_tombstones_; }

  // In-place reschedules served (each supersedes one heap entry).
  std::uint64_t reschedules_total() const { return reschedules_total_; }

  // Whole-heap compaction passes triggered by tombstone-dominated heaps.
  std::uint64_t compactions_total() const { return compactions_total_; }

  // Dead entries currently buried in the heap (cancelled or superseded).
  // Bounded: compaction fires once they exceed half of a non-trivial heap.
  std::size_t tombstones_in_heap() const { return tombstones_in_heap_; }

  // Heap entries, live and dead (diagnostics).
  std::size_t heap_size() const { return heap_.size(); }

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  // Compaction threshold: below this heap size a rebuild costs more than
  // the tombstones it removes; above it, compact when > 1/2 dead.
  static constexpr std::size_t kCompactMinHeap = 64;

  // One event record in the slab. Freed slots are chained through
  // `next_free` and reused; `generation` bumps on every retire so handles
  // into reused slots read as inert.
  struct Slot {
    TimePoint when;
    std::uint64_t seq = 0;  // seq of the slot's CURRENT heap entry
    EventAction action;
    std::uint32_t generation = 0;
    bool live = false;  // scheduled, neither cancelled nor fired
    std::uint32_t next_free = kNilSlot;
  };
  // Heap entries carry their own ordering key: an entry is live iff its
  // slot is live AND still carries the entry's seq (a reschedule gives the
  // slot a fresh seq, orphaning the old entry as a tombstone).
  struct HeapEntry {
    TimePoint when;
    std::uint64_t seq = 0;
    std::uint32_t slot = kNilSlot;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool handle_pending(const EventHandle& h) const;
  bool cancel_handle(const EventHandle& h);
  bool entry_live(const HeapEntry& e) const {
    const Slot& s = slots_[e.slot];
    return s.live && s.seq == e.seq;
  }
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index) const;
  void push_entry(TimePoint when, std::uint64_t seq, std::uint32_t slot) const;
  // Retires a dead entry removed from the heap: counts it pruned and, when
  // it is its slot's current entry (cancelled, not superseded), frees the slot.
  void retire_dead_entry(const HeapEntry& e) const;
  // Drops dead entries from the head of the heap.
  void prune() const;
  // Rebuilds the heap without its dead entries (all counted as pruned).
  void compact();
  void maybe_compact();

  // prune() runs in const methods (empty/next_time are the queue's source
  // of truth), so the storage it rewrites is mutable, as are the counters
  // it maintains.
  mutable std::vector<HeapEntry> heap_;  // binary min-heap via std::push_heap
  mutable std::vector<Slot> slots_;
  mutable std::uint32_t free_head_ = kNilSlot;
  mutable std::size_t tombstones_in_heap_ = 0;
  mutable std::uint64_t pruned_tombstones_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_total_ = 0;
  std::uint64_t reschedules_total_ = 0;
  std::uint64_t compactions_total_ = 0;
  TimePoint last_fired_ = TimePoint::zero();  // for monotonicity invariant
};

}  // namespace hsr::sim
