// Priority queue of timestamped events with stable FIFO ordering among
// events scheduled for the same instant, and O(1) lazy cancellation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.h"

namespace hsr::sim {

using util::Duration;
using util::TimePoint;

// Handle to a scheduled event; allows cancellation. Default-constructed
// handles are inert. Handles are cheap to copy (shared control block).
class EventHandle {
 public:
  EventHandle() = default;

  // True if the event is still pending (not fired, not cancelled).
  bool pending() const;
  // Cancels the event if still pending; returns whether it was pending.
  bool cancel();

 private:
  friend class EventQueue;
  struct Record {
    TimePoint when;
    std::uint64_t seq = 0;
    std::function<void()> action;
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<Record> rec) : rec_(std::move(rec)) {}
  std::shared_ptr<Record> rec_;
};

// Cancellation is lazy: a cancelled event stays in the heap as a tombstone
// until it reaches the top, so `empty()`/`next_time()` prune before
// answering and are exact; they are the queue's source of truth.
class EventQueue {
 public:
  // Schedules `action` at absolute time `when`. Events at equal times fire
  // in scheduling order.
  EventHandle schedule(TimePoint when, std::function<void()> action);

  // True when no live (non-cancelled) events remain.
  bool empty() const;

  // Time of the earliest pending event; TimePoint::max() when empty.
  TimePoint next_time() const;

  // Pops and runs the earliest pending event; returns its timestamp.
  // Precondition: !empty().
  TimePoint pop_and_run();

  // Total events scheduled over the queue's lifetime (diagnostics).
  std::uint64_t scheduled_total() const { return next_seq_; }

  // Events executed via pop_and_run (diagnostics / invariant accounting).
  std::uint64_t fired_total() const { return fired_total_; }

  // Cancelled events dropped by lazy pruning. Together with the heap size
  // and fired_total() this accounts for every event ever scheduled:
  //   heap size + fired + pruned tombstones == scheduled_total().
  std::uint64_t pruned_tombstones_total() const { return pruned_tombstones_; }

 private:
  struct Entry {
    std::shared_ptr<EventHandle::Record> rec;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.rec->when != b.rec->when) return a.rec->when > b.rec->when;
      return a.rec->seq > b.rec->seq;
    }
  };

  // Drops cancelled events from the head of the heap.
  void prune() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_total_ = 0;
  mutable std::uint64_t pruned_tombstones_ = 0;  // prune() runs in const methods
  TimePoint last_fired_ = TimePoint::zero();     // for monotonicity invariant
};

}  // namespace hsr::sim
