#include "mptcp/mptcp.h"

#include "util/logging.h"

namespace hsr::mptcp {

MptcpConnection::MptcpConnection(sim::Simulator& sim, net::FlowId flow_base,
                                 MptcpConfig config, std::vector<PathSetup> paths)
    : sim_(sim), cfg_(config) {
  HSR_CHECK_MSG(paths.size() >= 2, "MPTCP needs at least two subflows");

  for (std::size_t i = 0; i < paths.size(); ++i) {
    auto sf = std::make_unique<Subflow>(sim, std::move(paths[i].downlink),
                                        std::move(paths[i].uplink),
                                        std::move(paths[i].down_channel),
                                        std::move(paths[i].up_channel));
    sf->index = static_cast<std::uint8_t>(i);
    subflows_.push_back(std::move(sf));
  }

  for (std::size_t i = 0; i < subflows_.size(); ++i) {
    Subflow& sf = *subflows_[i];
    const net::FlowId flow = flow_base + static_cast<net::FlowId>(i);

    tcp::TcpConfig sub_cfg = cfg_.subflow_tcp;
    // Backup mode: the backup subflow starts with no data of its own; it is
    // fed one segment per rescue.
    if (cfg_.mode == Mode::kBackup && i > 0) sub_cfg.total_segments = 0;

    // Subflow closures capture two pointers; assert they fit the endpoint
    // callback SBO so subflow setup never heap-allocates for its wiring.
    auto ack_tx = [&sf](net::Packet p) {
      p.subflow = sf.index;
      sf.uplink.send(std::move(p));
    };
    static_assert(tcp::PacketSendFn::holds_inline<decltype(ack_tx)>(),
                  "subflow ACK closure outgrew the PacketSendFn SBO");
    sf.receiver =
        std::make_unique<tcp::TcpReceiver>(sim_, sub_cfg, flow, std::move(ack_tx));

    auto data_tx = [this, &sf](net::Packet p) {
      on_subflow_transmit(sf, std::move(p));
    };
    static_assert(tcp::PacketSendFn::holds_inline<decltype(data_tx)>(),
                  "subflow data closure outgrew the PacketSendFn SBO");
    sf.sender =
        std::make_unique<tcp::TcpSender>(sim_, sub_cfg, flow, std::move(data_tx));

    auto timeout_cb = [this, &sf](SeqNo seq) { on_subflow_timeout(sf, seq); };
    static_assert(tcp::TimeoutFn::holds_inline<decltype(timeout_cb)>(),
                  "subflow timeout closure outgrew the TimeoutFn SBO");
    sf.sender->set_timeout_callback(std::move(timeout_cb));

    sf.downlink.set_receiver(
        [this, &sf](const net::Packet& p) { on_subflow_delivery(sf, p); });
    sf.uplink.set_receiver([&sf](const net::Packet& p) { sf.sender->on_ack(p); });
  }
}

void MptcpConnection::start() {
  for (auto& sf : subflows_) sf->sender->start();
}

void MptcpConnection::on_subflow_transmit(Subflow& sf, net::Packet packet) {
  packet.subflow = sf.index;
  // Assign the connection-level mapping at first transmission of each
  // subflow segment; retransmissions keep their original mapping.
  auto it = sf.meta_of.find(packet.seq);
  if (it == sf.meta_of.end()) {
    SeqNo meta;
    if (!sf.pending_rescue.empty()) {
      meta = sf.pending_rescue.front();
      sf.pending_rescue.pop_front();
    } else {
      meta = next_meta_++;
    }
    it = sf.meta_of.emplace(packet.seq, meta).first;
  }
  packet.meta_seq = it->second;
  sf.downlink.send(std::move(packet));
}

void MptcpConnection::on_subflow_delivery(Subflow& sf, const net::Packet& packet) {
  if (packet.meta_seq != 0) meta_delivered_.insert(packet.meta_seq);
  sf.receiver->on_data(packet);
}

void MptcpConnection::on_subflow_timeout(Subflow& sf, SeqNo subflow_seq) {
  if (cfg_.mode != Mode::kBackup) return;

  const auto it = sf.meta_of.find(subflow_seq);
  if (it == sf.meta_of.end()) return;
  const SeqNo meta = it->second;

  // Double retransmission: resend the timed-out meta segment on another
  // subflow. Pick the first subflow that is not the one that timed out.
  for (auto& other : subflows_) {
    if (other->index == sf.index) continue;
    ++rescue_transmissions_;
    if (!meta_delivered_.contains(meta)) ++useful_rescues_;
    other->pending_rescue.push_back(meta);
    other->sender->add_available_segments(1);
    break;
  }
}

double MptcpConnection::goodput_pps() const {
  const double elapsed = sim_.now().to_seconds();
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(meta_delivered_.size()) / elapsed;
}

double MptcpConnection::goodput_bps() const {
  return goodput_pps() * static_cast<double>(cfg_.subflow_tcp.mss_bytes) * 8.0;
}

}  // namespace hsr::mptcp
