// Multipath TCP over independent simulated paths (paper §V-B).
//
// Each subflow runs its own full TCP Reno instance (congestion control,
// RTO, fast retransmit) over its own pair of links. A connection-level
// ("meta") sequence space is striped across subflows:
//
//   * kDuplex — every subflow pulls the next unassigned meta segment
//     whenever its window opens (the paper's "transmit simultaneously on
//     all subflows" mode);
//   * kBackup — all data flows on the primary subflow; the backup subflow
//     idles, but when the primary suffers a retransmission timeout the lost
//     meta segment is ALSO sent on the backup ("double retransmission"),
//     which is precisely the q-reducing mechanism §V-B credits for MPTCP's
//     robustness on HSR.
//
// The receiver counts distinct meta segments delivered; goodput is measured
// at the meta level, so duplicates arriving on two subflows count once.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/link.h"
#include "sim/simulator.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"

namespace hsr::mptcp {

using net::SeqNo;

enum class Mode { kDuplex, kBackup };

struct MptcpConfig {
  Mode mode = Mode::kDuplex;
  tcp::TcpConfig subflow_tcp;

  // One-source-of-truth subflow setup: expands the shared protocol knobs
  // (the same tcp::TcpOptions carried by workload configs and
  // hsrfaultplan-v2 parameter blocks) into the subflow stack config, so
  // MPTCP subflows stay in lockstep with single-path TCP flows.
  void set_subflow_options(const tcp::TcpOptions& options, unsigned receiver_window) {
    subflow_tcp = tcp::make_tcp_config(options, receiver_window);
  }
};

// Everything one subflow needs: link configs plus channel models.
struct PathSetup {
  net::LinkConfig downlink;
  net::LinkConfig uplink;
  std::unique_ptr<net::ChannelModel> down_channel;
  std::unique_ptr<net::ChannelModel> up_channel;
};

class MptcpConnection {
 public:
  // `flow_base` numbers the subflows flow_base, flow_base+1, ...
  MptcpConnection(sim::Simulator& sim, net::FlowId flow_base, MptcpConfig config,
                  std::vector<PathSetup> paths);

  void start();

  std::size_t subflow_count() const { return subflows_.size(); }
  const tcp::TcpSender& subflow_sender(std::size_t i) const {
    return *subflows_.at(i)->sender;
  }
  const tcp::TcpReceiver& subflow_receiver(std::size_t i) const {
    return *subflows_.at(i)->receiver;
  }
  net::Link& subflow_downlink(std::size_t i) { return subflows_.at(i)->downlink; }
  net::Link& subflow_uplink(std::size_t i) { return subflows_.at(i)->uplink; }

  // Distinct meta segments that reached the receiver.
  std::uint64_t unique_meta_delivered() const { return meta_delivered_.size(); }
  // Meta-level goodput over [0, now], segments/second.
  double goodput_pps() const;
  double goodput_bps() const;

  // Rescue retransmissions sent on alternative subflows (backup mode).
  std::uint64_t rescue_transmissions() const { return rescue_transmissions_; }
  // Rescues whose meta segment had not yet been delivered when the rescue
  // was sent (i.e. potentially useful rescues).
  std::uint64_t useful_rescues() const { return useful_rescues_; }

 private:
  struct Subflow {
    std::uint8_t index = 0;
    net::Link downlink;
    net::Link uplink;
    std::unique_ptr<tcp::TcpReceiver> receiver;
    std::unique_ptr<tcp::TcpSender> sender;
    // subflow seq -> meta seq mapping, assigned at first transmission.
    std::map<SeqNo, SeqNo> meta_of;
    // Meta segments queued for this subflow ahead of fresh data (rescues).
    std::deque<SeqNo> pending_rescue;

    Subflow(sim::Simulator& sim, net::LinkConfig down_cfg, net::LinkConfig up_cfg,
            std::unique_ptr<net::ChannelModel> down_ch,
            std::unique_ptr<net::ChannelModel> up_ch)
        : downlink(sim, std::move(down_cfg), std::move(down_ch)),
          uplink(sim, std::move(up_cfg), std::move(up_ch)) {}
  };

  void on_subflow_transmit(Subflow& sf, net::Packet packet);
  void on_subflow_delivery(Subflow& sf, const net::Packet& packet);
  void on_subflow_timeout(Subflow& sf, SeqNo subflow_seq);

  sim::Simulator& sim_;
  MptcpConfig cfg_;
  std::vector<std::unique_ptr<Subflow>> subflows_;

  SeqNo next_meta_ = 1;
  std::set<SeqNo> meta_delivered_;
  std::uint64_t rescue_transmissions_ = 0;
  std::uint64_t useful_rescues_ = 0;
};

}  // namespace hsr::mptcp
