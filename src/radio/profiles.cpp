#include "radio/profiles.h"

#include <algorithm>

namespace hsr::radio {

namespace {
constexpr double kTrainSpeedMps = 300.0 / 3.6;  // 300 km/h
}  // namespace

ProviderProfile mobile_lte_highspeed() {
  ProviderProfile p;
  p.name = "China Mobile (LTE)";
  p.provider = Provider::kChinaMobileLte;
  p.mobility = Mobility::kHighSpeed;

  RadioConfig& r = p.radio;
  r.speed_mps = kTrainSpeedMps;
  r.cell_spacing_m = 1400.0;            // dedicated rail coverage, dense cells
  r.handoff_outage_median_s = 1.2;      // LTE handoff with occasional RRC re-establishment
  r.handoff_outage_sigma = 0.55;
  r.handoff_loss = 0.97;
  r.base_loss_down = 0.0012;
  r.base_loss_up = 0.0008;
  r.edge_loss_down = 0.005;
  r.edge_loss_up = 0.004;
  r.uplink_fade_rate_per_s = 0.007;     // carriage attenuation bursts on the uplink
  r.uplink_fade_mean_s = 1.8;
  r.uplink_fade_loss = 0.93;
  r.downlink_fade_rate_per_s = 0.003;
  r.downlink_fade_mean_s = 0.5;
  r.downlink_fade_loss = 0.9;
  r.access_delay_s = 0.012;
  r.edge_extra_delay_s = 0.020;
  r.handoff_extra_delay_s = 0.06;
  r.delay_wander_amplitude_s = 0.65;
  r.delay_wander_period_s = 2.0;

  p.downlink_rate_bps = 24e6;
  p.uplink_rate_bps = 8e6;
  p.core_delay = util::Duration::millis(12);
  // Deep buffers (cellular bufferbloat) let the RTT and hence the RTO base
  // inflate under load, as observed on real HSR paths.
  p.queue_capacity = 400;
  p.receiver_window_segments = 256;
  return p;
}

ProviderProfile unicom_3g_highspeed() {
  ProviderProfile p;
  p.name = "China Unicom (3G)";
  p.provider = Provider::kChinaUnicom3g;
  p.mobility = Mobility::kHighSpeed;

  RadioConfig& r = p.radio;
  r.speed_mps = kTrainSpeedMps;
  r.cell_spacing_m = 1800.0;            // sparser macro cells
  r.handoff_outage_median_s = 1.7;      // 3G hard-ish handover on HSR
  r.handoff_outage_sigma = 0.8;
  r.handoff_loss = 0.98;
  r.base_loss_down = 0.0016;
  r.base_loss_up = 0.001;
  r.edge_loss_down = 0.007;
  r.edge_loss_up = 0.004;
  r.uplink_fade_rate_per_s = 0.0045;
  r.uplink_fade_mean_s = 1.5;
  r.uplink_fade_loss = 0.94;
  r.downlink_fade_rate_per_s = 0.0035;
  r.downlink_fade_mean_s = 0.6;
  r.downlink_fade_loss = 0.9;
  r.coverage_gap_rate_per_s = 0.005;   // occasional short dead zones
  r.coverage_gap_mean_s = 4.0;
  r.access_delay_s = 0.035;
  r.edge_extra_delay_s = 0.045;
  r.handoff_extra_delay_s = 0.10;
  r.delay_wander_amplitude_s = 1.0;
  r.delay_wander_period_s = 2.5;

  p.downlink_rate_bps = 7e6;
  p.uplink_rate_bps = 2e6;
  p.core_delay = util::Duration::millis(20);
  p.queue_capacity = 350;
  p.receiver_window_segments = 224;
  return p;
}

ProviderProfile telecom_3g_highspeed() {
  ProviderProfile p;
  p.name = "China Telecom (3G)";
  p.provider = Provider::kChinaTelecom3g;
  p.mobility = Mobility::kHighSpeed;

  // Telecom's 3G coverage around Beijing/Tianjin is poor (its backbone
  // mainly covers southern China — paper §V-B); long outages and strong
  // edge degradation dominate.
  RadioConfig& r = p.radio;
  r.speed_mps = kTrainSpeedMps;
  r.cell_spacing_m = 2400.0;
  r.handoff_outage_median_s = 1.8;
  r.handoff_outage_sigma = 0.8;
  r.handoff_loss = 0.99;
  r.base_loss_down = 0.002;
  r.base_loss_up = 0.0012;
  r.edge_loss_down = 0.009;
  r.edge_loss_up = 0.005;
  r.uplink_fade_rate_per_s = 0.0045;
  r.uplink_fade_mean_s = 1.8;
  r.uplink_fade_loss = 0.95;
  r.downlink_fade_rate_per_s = 0.004;
  r.downlink_fade_mean_s = 0.7;
  r.downlink_fade_loss = 0.9;
  r.coverage_gap_rate_per_s = 0.006;   // a long dead zone every ~3 minutes
  r.coverage_gap_mean_s = 40.0;  // tens of km without usable 3G at 300 km/h
  r.access_delay_s = 0.045;
  r.edge_extra_delay_s = 0.060;
  r.handoff_extra_delay_s = 0.15;
  r.delay_wander_amplitude_s = 1.25;
  r.delay_wander_period_s = 3.0;

  p.downlink_rate_bps = 3.6e6;
  p.uplink_rate_bps = 1.2e6;
  p.core_delay = util::Duration::millis(28);
  p.queue_capacity = 250;
  p.receiver_window_segments = 160;
  return p;
}

ProviderProfile stationary_of(const ProviderProfile& highspeed) {
  ProviderProfile p = highspeed;
  p.name = highspeed.name + " [stationary]";
  p.mobility = Mobility::kStationary;

  RadioConfig& r = p.radio;
  r.speed_mps = 0.0;                 // parked; no handoffs
  r.initial_offset_frac = 0.25;      // near (not under) a tower
  // Residual impairments only: rare, short fades; low base loss.
  r.base_loss_down = 0.0004;
  r.base_loss_up = 0.00025;
  r.edge_loss_down = 0.001;
  r.edge_loss_up = 0.001;
  r.coverage_gap_rate_per_s = 0.0;
  r.uplink_fade_rate_per_s = 0.0012;
  r.uplink_fade_mean_s = 0.15;
  r.uplink_fade_loss = 0.75;
  r.downlink_fade_rate_per_s = 0.0025;
  r.downlink_fade_mean_s = 0.15;
  r.downlink_fade_loss = 0.7;
  r.delay_wander_amplitude_s = 0.01;
  r.delay_wander_period_s = 2.0;
  // The stationary control is not bloat-bound: with a quiet radio the same
  // phone keeps a small advertised window, so RTTs (and hence RTO bases and
  // recovery times) stay near the propagation floor, matching the paper's
  // 0.65 s stationary recoveries.
  p.receiver_window_segments = std::max(32u, highspeed.receiver_window_segments / 6);
  return p;
}

std::vector<ProviderProfile> all_highspeed_profiles() {
  return {mobile_lte_highspeed(), unicom_3g_highspeed(), telecom_3g_highspeed()};
}

const char* provider_name(Provider p) {
  switch (p) {
    case Provider::kChinaMobileLte: return "China Mobile";
    case Provider::kChinaUnicom3g: return "China Unicom";
    case Provider::kChinaTelecom3g: return "China Telecom";
  }
  return "?";
}

}  // namespace hsr::radio
