#include "radio/environment.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/logging.h"

namespace hsr::radio {

FadeProcess::FadeProcess(double rate_per_s, double mean_duration_s, Rng rng)
    : rate_per_s_(rate_per_s), mean_duration_s_(mean_duration_s), rng_(rng) {}

void FadeProcess::advance(TimePoint now) {
  if (rate_per_s_ <= 0.0) return;
  if (!initialized_) {
    in_fade_ = false;
    next_change_ =
        TimePoint::zero() + Duration::from_seconds(rng_.exponential(1.0 / rate_per_s_));
    initialized_ = true;
  }
  while (next_change_ <= now) {
    in_fade_ = !in_fade_;
    const double mean = in_fade_ ? mean_duration_s_ : 1.0 / rate_per_s_;
    next_change_ = next_change_ + Duration::from_seconds(rng_.exponential(mean));
  }
}

bool FadeProcess::active(TimePoint now) {
  if (rate_per_s_ <= 0.0) return false;
  advance(now);
  return in_fade_;
}

DelayWanderProcess::DelayWanderProcess(double amplitude_s, double period_s, Rng rng)
    : amplitude_s_(amplitude_s), period_s_(std::max(period_s, 1e-3)), rng_(rng) {}

double DelayWanderProcess::value(TimePoint now) {
  if (amplitude_s_ <= 0.0) return 0.0;
  if (!initialized_) {
    from_ = rng_.uniform(0.0, amplitude_s_);
    to_ = rng_.uniform(0.0, amplitude_s_);
    segment_start_ = now;
    initialized_ = true;
  }
  double elapsed = (now - segment_start_).to_seconds();
  while (elapsed >= period_s_) {
    from_ = to_;
    to_ = rng_.uniform(0.0, amplitude_s_);
    segment_start_ = segment_start_ + Duration::from_seconds(period_s_);
    elapsed -= period_s_;
  }
  const double frac = elapsed / period_s_;
  return from_ + (to_ - from_) * frac;
}

RadioEnvironment::RadioEnvironment(RadioConfig config, Rng rng)
    : cfg_(std::move(config)),
      rng_(rng),
      uplink_fades_(config.uplink_fade_rate_per_s, config.uplink_fade_mean_s,
                    rng.fork("uplink-fades")),
      downlink_fades_(config.downlink_fade_rate_per_s, config.downlink_fade_mean_s,
                      rng.fork("downlink-fades")),
      coverage_gaps_(config.coverage_gap_rate_per_s, config.coverage_gap_mean_s,
                     rng.fork("coverage-gaps")),
      delay_wander_(config.delay_wander_amplitude_s, config.delay_wander_period_s,
                    rng.fork("delay-wander")) {
  HSR_CHECK(cfg_.cell_spacing_m > 0.0);
  const bool moving = !cfg_.speed_profile.empty() || cfg_.speed_mps > 0.0;
  if (moving) {
    // First handoff: when the train first crosses a cell boundary. The train
    // starts at initial_offset_frac of the way through its first cell.
    const double start_pos = cfg_.initial_offset_frac * cfg_.cell_spacing_m;
    const double to_boundary =
        cfg_.cell_spacing_m - std::fmod(start_pos, cfg_.cell_spacing_m);
    next_handoff_ = time_of_position(start_pos + to_boundary);
  }
}

double RadioEnvironment::speed_at(TimePoint now) const {
  if (cfg_.speed_profile.empty()) return cfg_.speed_mps;
  double t = now.to_seconds();
  for (const auto& phase : cfg_.speed_profile) {
    if (t < phase.duration_s) return phase.speed_mps;
    t -= phase.duration_s;
  }
  return cfg_.speed_profile.back().speed_mps;
}

TimePoint RadioEnvironment::time_of_position(double pos) const {
  const double start = cfg_.initial_offset_frac * cfg_.cell_spacing_m;
  double remaining = pos - start;
  if (remaining <= 0.0) return TimePoint::zero();
  if (cfg_.speed_profile.empty()) {
    if (cfg_.speed_mps <= 0.0) return TimePoint::max();
    return TimePoint::from_seconds(remaining / cfg_.speed_mps);
  }
  double t = 0.0;
  for (const auto& phase : cfg_.speed_profile) {
    const double leg = phase.speed_mps * phase.duration_s;
    if (leg >= remaining && phase.speed_mps > 0.0) {
      return TimePoint::from_seconds(t + remaining / phase.speed_mps);
    }
    remaining -= leg;
    t += phase.duration_s;
  }
  const double tail_speed = cfg_.speed_profile.back().speed_mps;
  if (tail_speed <= 0.0) return TimePoint::max();
  return TimePoint::from_seconds(t + remaining / tail_speed);
}

double RadioEnvironment::position_m(TimePoint now) const {
  const double start = cfg_.initial_offset_frac * cfg_.cell_spacing_m;
  if (cfg_.speed_profile.empty()) {
    return start + cfg_.speed_mps * now.to_seconds();
  }
  double t = now.to_seconds();
  double pos = start;
  for (const auto& phase : cfg_.speed_profile) {
    const double dt = std::min(t, phase.duration_s);
    pos += phase.speed_mps * dt;
    t -= dt;
    if (t <= 0.0) return pos;
  }
  return pos + cfg_.speed_profile.back().speed_mps * t;
}

double RadioEnvironment::normalized_edge_distance(TimePoint now) const {
  if (cfg_.speed_profile.empty() && cfg_.speed_mps <= 0.0) {
    // Stationary scenario: parked near the cell center.
    return cfg_.initial_offset_frac;
  }
  // Towers sit at cell centers (k + 0.5) * spacing; boundaries at k * spacing.
  const double within = std::fmod(position_m(now), cfg_.cell_spacing_m);
  const double center = cfg_.cell_spacing_m / 2.0;
  return std::abs(within - center) / center;  // 0 at tower, 1 at boundary
}

void RadioEnvironment::advance_handoffs(TimePoint now) {
  while (next_handoff_ <= now) {
    ++handoffs_started_;
    const double duration_s =
        rng_.lognormal(std::log(cfg_.handoff_outage_median_s), cfg_.handoff_outage_sigma);
    const TimePoint end = next_handoff_ + Duration::from_seconds(duration_s);
    if (end > outage_end_) {
      outage_end_ = end;
      outage_downlink_only_ = rng_.bernoulli(cfg_.downlink_only_outage_fraction);
    }
    // Next boundary crossing from the handoff position onward (with a speed
    // profile, crossings are irregular in time even though cells are
    // regular in space).
    const double crossed = position_m(next_handoff_);
    const double next_boundary =
        (std::floor(crossed / cfg_.cell_spacing_m) + 1.0) * cfg_.cell_spacing_m;
    const TimePoint next_time = time_of_position(next_boundary);
    if (next_time <= next_handoff_) {
      // Degenerate (should not happen with positive speeds); bail out.
      next_handoff_ = TimePoint::max();
      return;
    }
    next_handoff_ = next_time;
  }
}

bool RadioEnvironment::in_outage(TimePoint now) {
  if (cfg_.speed_profile.empty() && cfg_.speed_mps <= 0.0) return false;
  advance_handoffs(now);
  return now < outage_end_;
}

std::uint64_t RadioEnvironment::handoff_count(TimePoint now) {
  advance_handoffs(now);
  return handoffs_started_;
}

bool RadioEnvironment::outage_affects(Direction dir, TimePoint now) {
  if (!in_outage(now)) return false;
  return dir == Direction::kDownlink || !outage_downlink_only_;
}

bool RadioEnvironment::in_coverage_gap(TimePoint now) {
  return coverage_gaps_.active(now);
}

double RadioEnvironment::drop_probability(Direction dir, TimePoint now) {
  if (in_coverage_gap(now)) return cfg_.coverage_gap_loss;
  if (outage_affects(dir, now)) return cfg_.handoff_loss;

  const double edge = normalized_edge_distance(now);
  const double edge2 = edge * edge;
  double p = (dir == Direction::kDownlink)
                 ? cfg_.base_loss_down + cfg_.edge_loss_down * edge2
                 : cfg_.base_loss_up + cfg_.edge_loss_up * edge2;

  if (dir == Direction::kUplink && uplink_fades_.active(now)) {
    p = std::max(p, cfg_.uplink_fade_loss);
  }
  if (dir == Direction::kDownlink && downlink_fades_.active(now)) {
    p = std::max(p, cfg_.downlink_fade_loss);
  }
  return std::clamp(p, 0.0, 1.0);
}

Duration RadioEnvironment::extra_delay(Direction dir, TimePoint now) {
  (void)dir;
  const double edge = normalized_edge_distance(now);
  // Delay wander grows quadratically toward the cell edge: the link-layer
  // retransmission/scheduling latency that precedes a disconnection. This
  // inflates RTTVAR (and so the RTO base) exactly where timeouts strike,
  // which is what makes HSR timeout recoveries span seconds.
  const double wander_scale = 0.15 + 0.85 * edge * edge;
  double delay_s = cfg_.access_delay_s + cfg_.edge_extra_delay_s * edge +
                   wander_scale * delay_wander_.value(now) / 2.0;  // half per direction
  if (in_outage(now)) delay_s += cfg_.handoff_extra_delay_s;
  return Duration::from_seconds(delay_s);
}

std::unique_ptr<net::ChannelModel> RadioEnvironment::make_channel(Direction dir, Rng rng) {
  return std::make_unique<net::FunctionalChannel>(
      [this, dir](const net::Packet&, TimePoint now) {
        return drop_probability(dir, now);
      },
      [this, dir](const net::Packet&, TimePoint now) {
        return extra_delay(dir, now);
      },
      rng);
}

}  // namespace hsr::radio
