// The high-speed-rail radio environment.
//
// Substitutes for the physical-layer conditions of the Beijing–Tianjin
// Intercity Railway measurements: a train moving at constant speed through a
// line of cells, with
//   * bidirectional outages at cell handoffs (long for 3G, shorter for LTE),
//   * uplink-dominant fades (the phone's uplink is the weak side: low
//     transmit power through the carriage body) — these are what turn into
//     ACK burst loss and spurious retransmission timeouts,
//   * downlink fades and distance-to-tower dependent residual loss,
//   * delay that grows toward the cell edge.
//
// The environment is queried lazily and advances its internal processes
// (handoff schedule, fade processes) monotonically with the simulation
// clock, so it composes with the deterministic event engine.
#pragma once

#include <cstdint>
#include <vector>

#include "net/channel.h"
#include "net/packet.h"
#include "util/rng.h"
#include "util/time.h"

namespace hsr::radio {

using util::Duration;
using util::Rng;
using util::TimePoint;

enum class Direction : std::uint8_t { kDownlink = 0, kUplink = 1 };

// One leg of a journey's speed profile.
struct SpeedPhase {
  double duration_s = 0.0;
  double speed_mps = 0.0;  // 0 = stopped (station dwell)
};

struct RadioConfig {
  // Mobility. speed 0 => stationary scenario (no handoffs, fixed position).
  double speed_mps = 300.0 / 3.6;  // 300 km/h
  // Optional piecewise-constant speed profile (acceleration legs, cruising,
  // station stops). When non-empty it overrides `speed_mps`; after the last
  // phase the train keeps the last phase's speed.
  std::vector<SpeedPhase> speed_profile;
  double cell_spacing_m = 1600.0;
  // Fraction of a cell span at which the train starts (0.5 = cell center).
  double initial_offset_frac = 0.0;

  // Handoff outage: starts when crossing the cell boundary; duration is
  // log-normal with the given median and sigma (of the underlying normal).
  double handoff_outage_median_s = 0.8;
  double handoff_outage_sigma = 0.6;
  double handoff_loss = 0.97;        // affected directions during outage
  double handoff_extra_delay_s = 0.05;
  // Fraction of handoff outages that break only the downlink (forward-link
  // sync loss while the uplink still carries ACKs). These produce genuine
  // data-loss timeouts; bidirectional outages tend to classify as spurious
  // because the oldest unacked segment often crossed just before the outage
  // and only its ACK died.
  double downlink_only_outage_fraction = 0.45;

  // Residual loss: base at cell center, plus edge term scaled by the square
  // of the normalized distance to the serving tower.
  double base_loss_down = 0.001;
  double base_loss_up = 0.001;
  double edge_loss_down = 0.01;
  double edge_loss_up = 0.015;

  // Uplink fades (carriage attenuation, Doppler mis-tracking): Poisson
  // arrivals; exponential duration; high loss while active. These hit ACKs.
  double uplink_fade_rate_per_s = 0.0;
  double uplink_fade_mean_s = 0.4;
  double uplink_fade_loss = 0.92;

  // Downlink fades (deep fading of the forward channel).
  double downlink_fade_rate_per_s = 0.0;
  double downlink_fade_mean_s = 0.3;
  double downlink_fade_loss = 0.85;

  // Coverage gaps: long bidirectional dead zones independent of handoffs
  // (sparse rural coverage — the paper attributes China Telecom's collapse
  // around Beijing/Tianjin to its southern-centric 3G build-out). A single
  // TCP flow spirals into deep RTO backoff inside a gap and then wastes the
  // first usable seconds after it; this is the regime where MPTCP's gain is
  // largest (Fig. 12).
  double coverage_gap_rate_per_s = 0.0;
  double coverage_gap_mean_s = 6.0;
  double coverage_gap_loss = 0.995;

  // Radio-access latency: base per direction plus an edge-dependent bump.
  double access_delay_s = 0.010;
  double edge_extra_delay_s = 0.030;

  // Slowly wandering delay (scheduler/bearer latency variation, seconds of
  // time scale). Piecewise-linear with a bounded downward slope, so packet
  // order is preserved; inflates RTTVAR and hence the RTO base, which is
  // what makes HSR timeout recoveries long (§III-B). Applied half per
  // direction.
  double delay_wander_amplitude_s = 0.0;
  double delay_wander_period_s = 2.0;
};

// A Poisson on/off impairment process advanced lazily in time order.
class FadeProcess {
 public:
  FadeProcess(double rate_per_s, double mean_duration_s, Rng rng);

  // True if a fade is active at `now`. `now` must be non-decreasing across
  // calls (guaranteed by the simulator's monotonic clock).
  bool active(TimePoint now);

 private:
  void advance(TimePoint now);

  double rate_per_s_;
  double mean_duration_s_;
  Rng rng_;
  bool in_fade_ = false;
  TimePoint next_change_ = TimePoint::zero();
  bool initialized_ = false;
};

// Piecewise-linear random delay wander in [0, amplitude]: every `period` a
// new target is drawn and the value ramps linearly toward it. The downward
// slope is bounded by amplitude/period, so with period >= amplitude the
// induced delay never reorders packets.
class DelayWanderProcess {
 public:
  DelayWanderProcess(double amplitude_s, double period_s, Rng rng);

  // Current wander value (seconds). `now` must be non-decreasing.
  double value(TimePoint now);

 private:
  double amplitude_s_;
  double period_s_;
  Rng rng_;
  double from_ = 0.0;
  double to_ = 0.0;
  TimePoint segment_start_ = TimePoint::zero();
  bool initialized_ = false;
};

class RadioEnvironment {
 public:
  RadioEnvironment(RadioConfig config, Rng rng);

  // Per-packet drop probability for the given direction at time `now`.
  double drop_probability(Direction dir, TimePoint now);
  // Extra one-way delay for the given direction at time `now`.
  Duration extra_delay(Direction dir, TimePoint now);

  // True while a handoff outage is in progress.
  bool in_outage(TimePoint now);
  // True while an outage affecting the given direction is in progress.
  bool outage_affects(Direction dir, TimePoint now);
  // True while a (bidirectional) coverage gap is active.
  bool in_coverage_gap(TimePoint now);
  // Train position along the track, meters.
  double position_m(TimePoint now) const;
  // Instantaneous speed at `now` (m/s).
  double speed_at(TimePoint now) const;
  // Earliest time the train reaches `pos` meters; TimePoint::max() if never.
  TimePoint time_of_position(double pos) const;
  // Normalized distance to the serving tower in [0, 1] (0 = under tower).
  double normalized_edge_distance(TimePoint now) const;
  // Number of handoffs that have started up to `now`.
  std::uint64_t handoff_count(TimePoint now);

  const RadioConfig& config() const { return cfg_; }

  // Builds a net::ChannelModel view over this environment for one direction.
  // The environment must outlive the returned channel.
  std::unique_ptr<net::ChannelModel> make_channel(Direction dir, Rng rng);

 private:
  void advance_handoffs(TimePoint now);

  RadioConfig cfg_;
  Rng rng_;
  FadeProcess uplink_fades_;
  FadeProcess downlink_fades_;
  FadeProcess coverage_gaps_;
  DelayWanderProcess delay_wander_;

  // Handoff state.
  std::uint64_t handoffs_started_ = 0;
  TimePoint next_handoff_ = TimePoint::max();
  TimePoint outage_end_ = TimePoint::zero();
  bool outage_downlink_only_ = false;
};

}  // namespace hsr::radio
