// Provider profiles: parameter sets standing in for the three ISPs measured
// in the paper (China Mobile LTE, China Unicom 3G, China Telecom 3G), plus a
// stationary control. The values are chosen so the synthetic corpus lands in
// the paper's reported ranges (ACK loss ~0.66 %, data loss ~0.75 %,
// in-recovery retransmit loss q in [0.25, 0.4], ~49 % spurious timeouts,
// mean recovery around 5 s high-speed vs 0.65 s stationary); the ordering
// between providers (Mobile best, Telecom worst coverage) mirrors Fig. 12.
#pragma once

#include <string>
#include <vector>

#include "radio/environment.h"
#include "util/time.h"

namespace hsr::radio {

enum class Provider { kChinaMobileLte, kChinaUnicom3g, kChinaTelecom3g };
enum class Mobility { kHighSpeed, kStationary };

struct ProviderProfile {
  std::string name;
  Provider provider = Provider::kChinaMobileLte;
  Mobility mobility = Mobility::kHighSpeed;

  RadioConfig radio;

  // Bottleneck link characteristics (radio access + core network).
  double downlink_rate_bps = 20e6;
  double uplink_rate_bps = 5e6;
  util::Duration core_delay = util::Duration::millis(15);
  std::size_t queue_capacity = 100;

  // Receiver window advertised by the phone, in MSS units.
  unsigned receiver_window_segments = 64;
};

// High-speed (300 km/h) profiles.
ProviderProfile mobile_lte_highspeed();
ProviderProfile unicom_3g_highspeed();
ProviderProfile telecom_3g_highspeed();

// Stationary controls (same access technology, train parked near a tower).
ProviderProfile stationary_of(const ProviderProfile& highspeed);

std::vector<ProviderProfile> all_highspeed_profiles();

const char* provider_name(Provider p);

}  // namespace hsr::radio
