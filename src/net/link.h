// A unidirectional link: serialization at a fixed rate, a DropTail queue,
// fixed propagation delay, and a pluggable ChannelModel for loss and jitter.
//
// Two links back-to-back (data direction + ACK direction) form the path a
// TCP connection runs over.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "net/channel.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "util/inline_function.h"

namespace hsr::net {

// Observer of everything that happens on a link. The trace module implements
// this to play the role of a wireshark capture at each endpoint.
class LinkTap {
 public:
  virtual ~LinkTap() = default;
  // Packet handed to the link by the sender (seen at the sender's NIC).
  virtual void on_send(const Packet& packet, TimePoint when) = 0;
  // Packet dropped (queue or channel); never delivered. `cause` is the
  // structured attribution — category plus composite-component / scripted-
  // directive indices — produced by the Link (queue overflow) or the
  // ChannelVerdict.
  virtual void on_drop(const Packet& packet, TimePoint when,
                       const DropCause& cause) = 0;
  // Packet delivered to the receiving endpoint.
  virtual void on_deliver(const Packet& packet, TimePoint sent, TimePoint arrived) = 0;
};

struct LinkConfig {
  double rate_bps = 10e6;                    // serialization rate
  Duration prop_delay = Duration::millis(15);  // one-way propagation
  std::size_t queue_capacity = 64;           // packets, DropTail
  std::string name = "link";
};

struct LinkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t bytes_delivered = 0;
  // Extra copies injected by the channel (duplication faults). Each copy is
  // also counted in `delivered`, so delivered can exceed sent.
  std::uint64_t injected_duplicates = 0;

  // Per-cause drop counters, indexed by DropCategory. The legacy
  // queue-vs-channel split is a derived view over this map.
  std::array<std::uint64_t, kDropCategoryCount> dropped_by_category{};

  std::uint64_t dropped_by(DropCategory category) const {
    return dropped_by_category[static_cast<std::size_t>(category)];
  }
  std::uint64_t dropped_total() const {
    return std::accumulate(dropped_by_category.begin(), dropped_by_category.end(),
                           std::uint64_t{0});
  }
  // Derived views: the pre-cause-code split.
  std::uint64_t dropped_queue() const {
    return dropped_by(DropCategory::kQueueOverflow);
  }
  std::uint64_t dropped_channel() const { return dropped_total() - dropped_queue(); }

  double loss_rate() const {
    return sent == 0 ? 0.0
                     : static_cast<double>(dropped_total()) / static_cast<double>(sent);
  }
};

class Link {
 public:
  // Destination callback type: move-only, SBO. Endpoint receivers capture a
  // pointer or two; anything larger falls back to one heap allocation at
  // set_receiver time (never on the per-packet delivery path).
  using Receiver = util::InlineFunction<void(const Packet&), 48>;

  Link(sim::Simulator& sim, LinkConfig config, std::unique_ptr<ChannelModel> channel);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Destination callback, invoked at the packet's arrival time.
  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }
  // Optional capture tap (non-owning; must outlive the link).
  void set_tap(LinkTap* tap) { tap_ = tap; }

  // --- Demuxed endpoint registry (shared-bottleneck links) -----------------
  //
  // One link can multiplex several flows through its single DropTail queue
  // and transmitter: each flow registers an endpoint — its own Receiver,
  // optional capture tap, and a per-flow LinkStats breakdown — keyed by the
  // packet's FlowId. Packets of registered flows are accounted in BOTH the
  // aggregate stats() and the flow's endpoint_stats() (drops included, so
  // queue-overflow attribution is per-flow), the aggregate tap fires first
  // and then the flow's tap, and delivery goes to the flow's receiver.
  // Packets of unregistered flows fall back to the aggregate receiver.
  //
  // Registration is a setup-time operation (the registry is a sorted vector
  // and may reallocate); it must happen before packets of that flow are
  // offered. The per-packet lookup is a binary search — no allocation.
  void register_endpoint(FlowId flow, Receiver receiver, LinkTap* tap = nullptr);
  bool has_endpoint(FlowId flow) const { return endpoint_for(flow) != nullptr; }
  std::size_t endpoint_count() const { return endpoints_.size(); }
  // This flow's share of the aggregate stats(). CHECK-fails for flows that
  // never registered.
  const LinkStats& endpoint_stats(FlowId flow) const;

  // Hands a packet to the link; the link stamps `sent_at`.
  void send(Packet packet);

  const LinkStats& stats() const { return stats_; }
  const LinkConfig& config() const { return config_; }
  ChannelModel& channel() { return *channel_; }

  // Instantaneous queue depth (packets still waiting to finish serialization).
  std::size_t queue_depth() const;

 private:
  struct Endpoint {
    FlowId flow = 0;
    Receiver receiver;
    LinkTap* tap = nullptr;
    LinkStats stats;
  };

  Duration serialization_time(std::uint32_t bytes) const;
  void prune_departures() const;
  void count_drop(const DropCause& cause, Endpoint* ep);
  // Arrival-time bookkeeping + tap + receiver hand-off. Runs at the
  // packet's arrival instant, so sim.now() IS the arrival time.
  void deliver(const Packet& packet);
  // Binary search over the sorted registry; nullptr for unregistered flows.
  Endpoint* endpoint_for(FlowId flow);
  const Endpoint* endpoint_for(FlowId flow) const;

  sim::Simulator& sim_;
  LinkConfig config_;
  std::unique_ptr<ChannelModel> channel_;
  Receiver receiver_;
  LinkTap* tap_ = nullptr;
  LinkStats stats_;
  std::vector<Endpoint> endpoints_;  // sorted by flow id

  // Time the transmitter finishes the last accepted packet.
  TimePoint busy_until_ = TimePoint::zero();
  // Departure (serialization-finish) times of queued packets, for depth
  // accounting; pruned lazily. DropTail caps the depth at queue_capacity,
  // so a ring of exactly that size replaces the former std::deque: the
  // deque's block churn cost one allocation per block of pushes on the
  // per-packet path, the ring never touches the heap after construction
  // (pinned by MultiFlowAllocTest).
  class DepartureRing {
   public:
    explicit DepartureRing(std::size_t capacity) : slots_(capacity) {}
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }
    TimePoint front() const { return slots_[head_]; }
    void pop_front() {
      head_ = head_ + 1 == slots_.size() ? 0 : head_ + 1;
      --count_;
    }
    // Caller guarantees size() < capacity (the DropTail check).
    void push_back(TimePoint departure) {
      std::size_t tail = head_ + count_;
      if (tail >= slots_.size()) tail -= slots_.size();
      slots_[tail] = departure;
      ++count_;
    }

   private:
    std::vector<TimePoint> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };
  mutable DepartureRing departures_;
};

}  // namespace hsr::net
