#include "net/packet.h"

#include <sstream>

namespace hsr::net {

namespace {
// Thread-local: ids are only join keys within one flow's capture, and a
// flow (or one simulator's set of subflows) runs entirely on one thread,
// so per-thread uniqueness suffices. Sharding parallel experiments across
// a pool therefore neither races here nor lets thread interleaving bleed
// into any analysis output.
thread_local std::uint64_t next_packet_id = 1;
}  // namespace

std::uint64_t allocate_packet_id() { return next_packet_id++; }

void reset_packet_ids() { next_packet_id = 1; }

std::string Packet::describe() const {
  std::ostringstream os;
  os << (kind == PacketKind::kData ? "DATA" : "ACK") << " flow=" << flow;
  if (kind == PacketKind::kData) {
    os << " seq=" << seq;
    if (is_retransmission) os << " retx#" << retx_count;
  } else {
    os << " ack_next=" << ack_next;
  }
  os << " id=" << id;
  return os.str();
}

}  // namespace hsr::net
