// Channel models decide per-packet loss and extra (non-queueing) delay.
//
// A Link owns exactly one ChannelModel for its direction; composite and
// time-varying behaviour (the HSR radio) is built from these primitives.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "util/rng.h"
#include "util/time.h"

namespace hsr::net {

class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  // True if the channel corrupts/loses this packet at time `now`.
  virtual bool should_drop(const Packet& packet, TimePoint now) = 0;

  // Extra propagation delay (jitter, fading-induced) for this packet.
  virtual Duration extra_delay(const Packet& packet, TimePoint now) = 0;

  // Number of EXTRA copies of this packet the channel injects (duplication
  // faults). Queried by Link for delivered packets only; each copy arrives
  // at the same instant as the original. Organic channels never duplicate.
  virtual unsigned duplicate_copies(const Packet&, TimePoint) { return 0; }
};

// Never drops, never delays. The wired (server-side) segment.
class PerfectChannel final : public ChannelModel {
 public:
  bool should_drop(const Packet&, TimePoint) override { return false; }
  Duration extra_delay(const Packet&, TimePoint) override { return Duration::zero(); }
};

// Independent per-packet loss with fixed probability.
class BernoulliChannel final : public ChannelModel {
 public:
  BernoulliChannel(double loss_probability, util::Rng rng);

  bool should_drop(const Packet&, TimePoint) override;
  Duration extra_delay(const Packet&, TimePoint) override { return Duration::zero(); }

  double loss_probability() const { return p_; }

 private:
  double p_;
  util::Rng rng_;
};

// Two-state continuous-time Gilbert–Elliott channel. The state (GOOD/BAD)
// evolves with exponential sojourn times; each state has its own loss
// probability. Models bursty wireless loss.
class GilbertElliottChannel final : public ChannelModel {
 public:
  struct Config {
    double loss_good = 0.0;      // per-packet loss prob in GOOD
    double loss_bad = 0.5;       // per-packet loss prob in BAD
    double mean_good_s = 10.0;   // mean sojourn in GOOD, seconds
    double mean_bad_s = 0.5;     // mean sojourn in BAD, seconds
  };

  GilbertElliottChannel(Config config, util::Rng rng);

  bool should_drop(const Packet&, TimePoint now) override;
  Duration extra_delay(const Packet&, TimePoint) override { return Duration::zero(); }

  bool in_bad_state(TimePoint now);
  // Expected stationary loss rate = w_bad*loss_bad + w_good*loss_good.
  double stationary_loss_rate() const;

 private:
  void advance_to(TimePoint now);

  Config cfg_;
  util::Rng rng_;
  bool bad_ = false;
  TimePoint next_transition_ = TimePoint::zero();
  bool initialized_ = false;
};

// Adds i.i.d. log-normal jitter on top of an inner channel's behaviour.
class JitterChannel final : public ChannelModel {
 public:
  // jitter ~ LogNormal with given median (seconds) and sigma; capped.
  JitterChannel(std::unique_ptr<ChannelModel> inner, double median_jitter_s,
                double sigma, double max_jitter_s, util::Rng rng);

  bool should_drop(const Packet& p, TimePoint now) override;
  Duration extra_delay(const Packet& p, TimePoint now) override;
  unsigned duplicate_copies(const Packet& p, TimePoint now) override {
    return inner_->duplicate_copies(p, now);
  }

 private:
  std::unique_ptr<ChannelModel> inner_;
  double mu_;     // log of the median
  double sigma_;
  double max_s_;
  util::Rng rng_;
};

// Combines several channels: a packet is dropped if ANY component drops it;
// extra delays add up.
class CompositeChannel final : public ChannelModel {
 public:
  explicit CompositeChannel(std::vector<std::unique_ptr<ChannelModel>> parts);

  bool should_drop(const Packet& p, TimePoint now) override;
  Duration extra_delay(const Packet& p, TimePoint now) override;
  unsigned duplicate_copies(const Packet& p, TimePoint now) override;

 private:
  std::vector<std::unique_ptr<ChannelModel>> parts_;
};

// Adapts a pair of time-varying callables (drop probability, extra delay)
// into a ChannelModel. The radio module plugs its environment in this way.
class FunctionalChannel final : public ChannelModel {
 public:
  using DropProbFn = std::function<double(const Packet&, TimePoint)>;
  using DelayFn = std::function<Duration(const Packet&, TimePoint)>;

  FunctionalChannel(DropProbFn drop_prob, DelayFn delay, util::Rng rng);

  bool should_drop(const Packet& p, TimePoint now) override;
  Duration extra_delay(const Packet& p, TimePoint now) override;

 private:
  DropProbFn drop_prob_;
  DelayFn delay_;
  util::Rng rng_;
};

}  // namespace hsr::net
