// Channel models decide per-packet fate on the air. Each model implements a
// single virtual — `decide()` — returning a ChannelVerdict: whether the
// packet is dropped (with a structured, cause-coded attribution), how much
// extra (non-queueing) delay it picks up, and how many duplicate copies the
// channel injects.
//
// A Link owns exactly one ChannelModel for its direction; composite and
// time-varying behaviour (the HSR radio) is built from these primitives.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "util/rng.h"
#include "util/time.h"

namespace hsr::net {

// WHY a packet died: the category of the mechanism that killed it. The
// queue category comes from the Link (DropTail overflow); every other
// category is produced by a channel class. kChannelUnattributed only
// appears when re-reading v1 trace archives, whose 'C' drop code predates
// cause attribution; live simulations always attribute finer than that.
enum class DropCategory : std::uint8_t {
  kUnknown = 0,             // no attribution recorded at all
  kQueueOverflow = 1,       // DropTail queue full at enqueue
  kChannelUnattributed = 2, // legacy archives: channel loss, cause unrecorded
  kBernoulli = 3,           // BernoulliChannel i.i.d. loss
  kGilbertElliottGood = 4,  // Gilbert–Elliott loss drawn in the GOOD state
  kGilbertElliottBad = 5,   // Gilbert–Elliott loss drawn in the BAD state
  kFunctionalRadio = 6,     // FunctionalChannel (the radio environment)
  kScriptedFault = 7,       // fault::FaultInjector directive
};
inline constexpr std::size_t kDropCategoryCount = 8;

// Human-readable category name ("queue-overflow", "gilbert-elliott-bad", ...).
const char* drop_category_name(DropCategory category);

// Structured drop attribution: the category plus enough indices to point at
// the exact mechanism — which CompositeChannel component dropped, and which
// FaultPlan directive fired for scripted kills.
struct DropCause {
  DropCategory category = DropCategory::kUnknown;
  // Index of the dropping component within the innermost enclosing
  // CompositeChannel; -1 when the drop happened outside any composite.
  //
  // LIMITATION: this is a flat index, so it aliases for nested composite
  // stacks. A drop at outer index 1 / inner index 0 and a drop by a plain
  // channel at outer index 0 both report component == 0 — the innermost
  // composite stamps its index first and outer composites never overwrite
  // it (see CompositeChannel::decide). Disambiguating deep stacks needs a
  // path expression ("1.0"), tracked as a ROADMAP follow-up; the current
  // innermost-wins behavior is pinned by
  // CompositeChannelTest.NestedCompositeReportsInnermostIndexOnly.
  std::int32_t component = -1;
  // Index of the scripted FaultPlan directive that fired; -1 for organic
  // (non-scripted) drops.
  std::int32_t directive = -1;

  bool is_queue() const { return category == DropCategory::kQueueOverflow; }
  bool is_channel() const {
    return category != DropCategory::kQueueOverflow &&
           category != DropCategory::kUnknown;
  }
  bool is_scripted() const { return category == DropCategory::kScriptedFault; }

  static DropCause queue_overflow() { return {DropCategory::kQueueOverflow, -1, -1}; }
  static DropCause unattributed_channel() {
    return {DropCategory::kChannelUnattributed, -1, -1};
  }
  static DropCause bernoulli() { return {DropCategory::kBernoulli, -1, -1}; }
  static DropCause gilbert_elliott(bool bad_state) {
    return {bad_state ? DropCategory::kGilbertElliottBad
                      : DropCategory::kGilbertElliottGood,
            -1, -1};
  }
  static DropCause functional_radio() {
    return {DropCategory::kFunctionalRadio, -1, -1};
  }
  static DropCause scripted(std::int32_t directive_index) {
    return {DropCategory::kScriptedFault, -1, directive_index};
  }

  friend bool operator==(const DropCause&, const DropCause&) = default;
};

// The complete fate decision for one packet crossing a channel. When
// `dropped` is true the packet never arrives and `cause` says why;
// extra_delay/duplicate_copies are meaningful only for delivered packets
// (callers must ignore them on a drop).
struct ChannelVerdict {
  bool dropped = false;
  DropCause cause;                           // valid only when dropped
  Duration extra_delay = Duration::zero();   // valid only when delivered
  unsigned duplicate_copies = 0;             // EXTRA copies; valid when delivered

  static ChannelVerdict deliver(Duration delay = Duration::zero(),
                                unsigned copies = 0) {
    ChannelVerdict v;
    v.extra_delay = delay;
    v.duplicate_copies = copies;
    return v;
  }
  static ChannelVerdict drop(DropCause why) {
    ChannelVerdict v;
    v.dropped = true;
    v.cause = why;
    return v;
  }
};

class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  // Decides this packet's complete fate at time `now` in ONE call: drop
  // (cause-coded), extra propagation delay, and injected duplicate copies.
  // Called exactly once per packet offered to the channel, in send order, so
  // stateful models (Gilbert–Elliott, fade processes) evolve consistently.
  virtual ChannelVerdict decide(const Packet& packet, TimePoint now) = 0;
};

// Never drops, never delays. The wired (server-side) segment.
class PerfectChannel final : public ChannelModel {
 public:
  ChannelVerdict decide(const Packet&, TimePoint) override {
    return ChannelVerdict::deliver();
  }
};

// Independent per-packet loss with fixed probability.
class BernoulliChannel final : public ChannelModel {
 public:
  BernoulliChannel(double loss_probability, util::Rng rng);

  ChannelVerdict decide(const Packet&, TimePoint) override;

  double loss_probability() const { return p_; }

 private:
  double p_;
  util::Rng rng_;
};

// Two-state continuous-time Gilbert–Elliott channel. The state (GOOD/BAD)
// evolves with exponential sojourn times; each state has its own loss
// probability. Models bursty wireless loss. Drops are attributed to the
// state they were drawn in (kGilbertElliottGood / kGilbertElliottBad).
class GilbertElliottChannel final : public ChannelModel {
 public:
  struct Config {
    double loss_good = 0.0;      // per-packet loss prob in GOOD
    double loss_bad = 0.5;       // per-packet loss prob in BAD
    double mean_good_s = 10.0;   // mean sojourn in GOOD, seconds
    double mean_bad_s = 0.5;     // mean sojourn in BAD, seconds
  };

  GilbertElliottChannel(Config config, util::Rng rng);

  ChannelVerdict decide(const Packet&, TimePoint now) override;

  bool in_bad_state(TimePoint now);
  // Expected stationary loss rate = w_bad*loss_bad + w_good*loss_good.
  double stationary_loss_rate() const;

 private:
  void advance_to(TimePoint now);

  Config cfg_;
  util::Rng rng_;
  bool bad_ = false;
  TimePoint next_transition_ = TimePoint::zero();
  bool initialized_ = false;
};

// Adds i.i.d. log-normal jitter on top of an inner channel's behaviour.
// Drops are the inner channel's (cause passed through untouched); the jitter
// draw is skipped for dropped packets, since delay of a dead packet is
// meaningless.
class JitterChannel final : public ChannelModel {
 public:
  // jitter ~ LogNormal with given median (seconds) and sigma; capped.
  JitterChannel(std::unique_ptr<ChannelModel> inner, double median_jitter_s,
                double sigma, double max_jitter_s, util::Rng rng);

  ChannelVerdict decide(const Packet& p, TimePoint now) override;

 private:
  std::unique_ptr<ChannelModel> inner_;
  double mu_;     // log of the median
  double sigma_;
  double max_s_;
  util::Rng rng_;
};

// Combines several channels: a packet is dropped if ANY component drops it;
// extra delays and duplicate copies add up. The drop cause carries the index
// of the FIRST component that dropped the packet.
//
// Nesting caveat: composites can contain composites, but DropCause::component
// is a single flat index — the innermost composite assigns it and every outer
// composite leaves it untouched, so the outer position of a nested drop is
// not recoverable from the cause (indices alias across depths). See the
// DropCause::component comment for the pinned behavior and follow-up.
class CompositeChannel final : public ChannelModel {
 public:
  explicit CompositeChannel(std::vector<std::unique_ptr<ChannelModel>> parts);

  ChannelVerdict decide(const Packet& p, TimePoint now) override;

 private:
  std::vector<std::unique_ptr<ChannelModel>> parts_;
};

// Adapts a pair of time-varying callables (drop probability, extra delay)
// into a ChannelModel. The radio module plugs its environment in this way;
// drops are attributed to kFunctionalRadio.
class FunctionalChannel final : public ChannelModel {
 public:
  using DropProbFn = std::function<double(const Packet&, TimePoint)>;
  using DelayFn = std::function<Duration(const Packet&, TimePoint)>;

  FunctionalChannel(DropProbFn drop_prob, DelayFn delay, util::Rng rng);

  ChannelVerdict decide(const Packet& p, TimePoint now) override;

 private:
  DropProbFn drop_prob_;
  DelayFn delay_;
  util::Rng rng_;
};

}  // namespace hsr::net
