// Channel models decide per-packet fate on the air. Each model implements a
// single virtual — `decide()` — returning a ChannelVerdict: whether the
// packet is dropped (with a structured, cause-coded attribution), how much
// extra (non-queueing) delay it picks up, and how many duplicate copies the
// channel injects.
//
// A Link owns exactly one ChannelModel for its direction; composite and
// time-varying behaviour (the HSR radio) is built from these primitives.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.h"
#include "util/rng.h"
#include "util/time.h"

namespace hsr::net {

// WHY a packet died: the category of the mechanism that killed it. The
// queue category comes from the Link (DropTail overflow); every other
// category is produced by a channel class. kChannelUnattributed only
// appears when re-reading v1 trace archives, whose 'C' drop code predates
// cause attribution; live simulations always attribute finer than that.
enum class DropCategory : std::uint8_t {
  kUnknown = 0,             // no attribution recorded at all
  kQueueOverflow = 1,       // DropTail queue full at enqueue
  kChannelUnattributed = 2, // legacy archives: channel loss, cause unrecorded
  kBernoulli = 3,           // BernoulliChannel i.i.d. loss
  kGilbertElliottGood = 4,  // Gilbert–Elliott loss drawn in the GOOD state
  kGilbertElliottBad = 5,   // Gilbert–Elliott loss drawn in the BAD state
  kFunctionalRadio = 6,     // FunctionalChannel (the radio environment)
  kScriptedFault = 7,       // fault::FaultInjector directive
};
inline constexpr std::size_t kDropCategoryCount = 8;

// Human-readable category name ("queue-overflow", "gilbert-elliott-bad", ...).
const char* drop_category_name(DropCategory category);

// Structured drop attribution: the category plus enough indices to point at
// the exact mechanism — WHERE in a (possibly nested) CompositeChannel stack
// the drop happened, and which FaultPlan directive fired for scripted kills.
struct DropCause {
  // Deepest composite nesting a cause can attribute. Real topologies nest
  // two or three levels (radio = composite(loss, composite(fade, jitter)));
  // past the cap the INNERMOST hop falls off, keeping the outer context
  // that disambiguates stacks.
  static constexpr std::size_t kMaxComponentDepth = 6;

  DropCategory category = DropCategory::kUnknown;
  // Component path, OUTERMOST composite first: element 0 is the dropping
  // component's index inside the outermost enclosing CompositeChannel,
  // element depth-1 its index inside the innermost. depth == 0 means the
  // drop happened outside any composite. A depth-2 stack where the dropping
  // channel sits at outer index 1 / inner index 0 reports the path "1.0" —
  // unambiguous where the old flat index aliased ("1.0" vs a plain channel
  // at index 0 both read 0). Each enclosing composite prepends its own
  // index as the verdict propagates outward (see CompositeChannel::decide).
  std::array<std::int16_t, kMaxComponentDepth> component_path{};
  std::uint8_t component_depth = 0;
  // Index of the scripted FaultPlan directive that fired; -1 for organic
  // (non-scripted) drops.
  std::int32_t directive = -1;

  bool has_component() const { return component_depth > 0; }
  // Index inside the innermost composite (the last path element); -1 when
  // no composite attributed the drop. Kept for flat consumers — it is the
  // exact value the pre-path schema stored.
  std::int32_t innermost_component() const {
    return has_component() ? component_path[component_depth - 1] : -1;
  }
  // Dotted outermost-first rendering ("1.0"); empty without attribution.
  std::string component_path_string() const;
  // Records `index` as the new outermost path element. At capacity the
  // innermost element is discarded (see kMaxComponentDepth).
  void prepend_component(std::int32_t index) {
    const std::size_t keep =
        component_depth < kMaxComponentDepth ? component_depth : kMaxComponentDepth - 1;
    for (std::size_t i = keep; i > 0; --i) component_path[i] = component_path[i - 1];
    component_path[0] = static_cast<std::int16_t>(index);
    component_depth = static_cast<std::uint8_t>(keep + 1);
  }

  bool is_queue() const { return category == DropCategory::kQueueOverflow; }
  bool is_channel() const {
    return category != DropCategory::kQueueOverflow &&
           category != DropCategory::kUnknown;
  }
  bool is_scripted() const { return category == DropCategory::kScriptedFault; }

  static DropCause of(DropCategory category) {
    DropCause c;
    c.category = category;
    return c;
  }
  static DropCause queue_overflow() { return of(DropCategory::kQueueOverflow); }
  static DropCause unattributed_channel() {
    return of(DropCategory::kChannelUnattributed);
  }
  static DropCause bernoulli() { return of(DropCategory::kBernoulli); }
  static DropCause gilbert_elliott(bool bad_state) {
    return of(bad_state ? DropCategory::kGilbertElliottBad
                        : DropCategory::kGilbertElliottGood);
  }
  static DropCause functional_radio() {
    return of(DropCategory::kFunctionalRadio);
  }
  static DropCause scripted(std::int32_t directive_index) {
    DropCause c = of(DropCategory::kScriptedFault);
    c.directive = directive_index;
    return c;
  }

  friend bool operator==(const DropCause&, const DropCause&) = default;
};

// The complete fate decision for one packet crossing a channel. When
// `dropped` is true the packet never arrives and `cause` says why;
// extra_delay/duplicate_copies are meaningful only for delivered packets
// (callers must ignore them on a drop).
struct ChannelVerdict {
  bool dropped = false;
  DropCause cause;                           // valid only when dropped
  Duration extra_delay = Duration::zero();   // valid only when delivered
  unsigned duplicate_copies = 0;             // EXTRA copies; valid when delivered

  static ChannelVerdict deliver(Duration delay = Duration::zero(),
                                unsigned copies = 0) {
    ChannelVerdict v;
    v.extra_delay = delay;
    v.duplicate_copies = copies;
    return v;
  }
  static ChannelVerdict drop(DropCause why) {
    ChannelVerdict v;
    v.dropped = true;
    v.cause = why;
    return v;
  }
};

class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  // Decides this packet's complete fate at time `now` in ONE call: drop
  // (cause-coded), extra propagation delay, and injected duplicate copies.
  // Called exactly once per packet offered to the channel, in send order, so
  // stateful models (Gilbert–Elliott, fade processes) evolve consistently.
  virtual ChannelVerdict decide(const Packet& packet, TimePoint now) = 0;
};

// Never drops, never delays. The wired (server-side) segment.
class PerfectChannel final : public ChannelModel {
 public:
  ChannelVerdict decide(const Packet&, TimePoint) override {
    return ChannelVerdict::deliver();
  }
};

// Independent per-packet loss with fixed probability.
class BernoulliChannel final : public ChannelModel {
 public:
  BernoulliChannel(double loss_probability, util::Rng rng);

  ChannelVerdict decide(const Packet&, TimePoint) override;

  double loss_probability() const { return p_; }

 private:
  double p_;
  util::Rng rng_;
};

// Two-state continuous-time Gilbert–Elliott channel. The state (GOOD/BAD)
// evolves with exponential sojourn times; each state has its own loss
// probability. Models bursty wireless loss. Drops are attributed to the
// state they were drawn in (kGilbertElliottGood / kGilbertElliottBad).
class GilbertElliottChannel final : public ChannelModel {
 public:
  struct Config {
    double loss_good = 0.0;      // per-packet loss prob in GOOD
    double loss_bad = 0.5;       // per-packet loss prob in BAD
    double mean_good_s = 10.0;   // mean sojourn in GOOD, seconds
    double mean_bad_s = 0.5;     // mean sojourn in BAD, seconds
  };

  GilbertElliottChannel(Config config, util::Rng rng);

  ChannelVerdict decide(const Packet&, TimePoint now) override;

  bool in_bad_state(TimePoint now);
  // Expected stationary loss rate = w_bad*loss_bad + w_good*loss_good.
  double stationary_loss_rate() const;

 private:
  void advance_to(TimePoint now);

  Config cfg_;
  util::Rng rng_;
  bool bad_ = false;
  TimePoint next_transition_ = TimePoint::zero();
  bool initialized_ = false;
};

// Adds i.i.d. log-normal jitter on top of an inner channel's behaviour.
// Drops are the inner channel's (cause passed through untouched); the jitter
// draw is skipped for dropped packets, since delay of a dead packet is
// meaningless.
class JitterChannel final : public ChannelModel {
 public:
  // jitter ~ LogNormal with given median (seconds) and sigma; capped.
  JitterChannel(std::unique_ptr<ChannelModel> inner, double median_jitter_s,
                double sigma, double max_jitter_s, util::Rng rng);

  ChannelVerdict decide(const Packet& p, TimePoint now) override;

 private:
  std::unique_ptr<ChannelModel> inner_;
  double mu_;     // log of the median
  double sigma_;
  double max_s_;
  util::Rng rng_;
};

// Combines several channels: a packet is dropped if ANY component drops it;
// extra delays and duplicate copies add up. The drop cause carries the index
// of the FIRST component that dropped the packet.
//
// Nesting: composites can contain composites. Each composite prepends its
// own dropping-component index to the cause's component path as the verdict
// propagates outward, so a nested drop reads as an unambiguous outermost-
// first path ("1.0") — see DropCause::component_path. Pinned by
// CompositeChannelTest.NestedCompositeReportsFullComponentPath.
class CompositeChannel final : public ChannelModel {
 public:
  explicit CompositeChannel(std::vector<std::unique_ptr<ChannelModel>> parts);

  ChannelVerdict decide(const Packet& p, TimePoint now) override;

 private:
  std::vector<std::unique_ptr<ChannelModel>> parts_;
};

// Routes each packet's fate decision to a per-flow channel, keyed by the
// packet's FlowId — the shared-bottleneck building block. The Link keeps ONE
// queue and transmitter for all flows; this demux gives every flow its own
// "access stub" (its private radio randomness, fade state and scripted
// faults) on the air segment. Verdicts pass through UNTOUCHED — no component
// index is prepended — so a demux carrying a single flow is bit-identical to
// using that flow's channel directly (the run_flow N=1 adapter relies on
// this). Packets of unregistered flows go to the fallback channel, or are
// delivered cleanly when no fallback is set.
class FlowDemuxChannel final : public ChannelModel {
 public:
  explicit FlowDemuxChannel(std::unique_ptr<ChannelModel> fallback = nullptr);

  // Setup-time only (sorted registry, may reallocate). One channel per flow.
  void add_flow(FlowId flow, std::unique_ptr<ChannelModel> channel);
  bool has_flow(FlowId flow) const;
  std::size_t flow_count() const { return channels_.size(); }

  ChannelVerdict decide(const Packet& p, TimePoint now) override;

 private:
  struct Route {
    FlowId flow = 0;
    std::unique_ptr<ChannelModel> channel;
  };
  std::vector<Route> channels_;  // sorted by flow id
  std::unique_ptr<ChannelModel> fallback_;
};

// Adapts a pair of time-varying callables (drop probability, extra delay)
// into a ChannelModel. The radio module plugs its environment in this way;
// drops are attributed to kFunctionalRadio.
class FunctionalChannel final : public ChannelModel {
 public:
  using DropProbFn = std::function<double(const Packet&, TimePoint)>;
  using DelayFn = std::function<Duration(const Packet&, TimePoint)>;

  FunctionalChannel(DropProbFn drop_prob, DelayFn delay, util::Rng rng);

  ChannelVerdict decide(const Packet& p, TimePoint now) override;

 private:
  DropProbFn drop_prob_;
  DelayFn delay_;
  util::Rng rng_;
};

}  // namespace hsr::net
