#include "net/channel.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace hsr::net {

const char* drop_category_name(DropCategory category) {
  switch (category) {
    case DropCategory::kUnknown: return "unknown";
    case DropCategory::kQueueOverflow: return "queue-overflow";
    case DropCategory::kChannelUnattributed: return "channel-unattributed";
    case DropCategory::kBernoulli: return "bernoulli";
    case DropCategory::kGilbertElliottGood: return "gilbert-elliott-good";
    case DropCategory::kGilbertElliottBad: return "gilbert-elliott-bad";
    case DropCategory::kFunctionalRadio: return "functional-radio";
    case DropCategory::kScriptedFault: return "scripted-fault";
  }
  return "invalid";
}

std::string DropCause::component_path_string() const {
  std::string out;
  for (std::size_t i = 0; i < component_depth; ++i) {
    if (i > 0) out += '.';
    out += std::to_string(component_path[i]);
  }
  return out;
}

BernoulliChannel::BernoulliChannel(double loss_probability, util::Rng rng)
    : p_(loss_probability), rng_(rng) {
  HSR_CHECK_MSG(p_ >= 0.0 && p_ <= 1.0, "loss probability out of range");
}

ChannelVerdict BernoulliChannel::decide(const Packet&, TimePoint) {
  if (rng_.bernoulli(p_)) return ChannelVerdict::drop(DropCause::bernoulli());
  return ChannelVerdict::deliver();
}

GilbertElliottChannel::GilbertElliottChannel(Config config, util::Rng rng)
    : cfg_(config), rng_(rng) {
  HSR_CHECK(cfg_.mean_good_s > 0.0 && cfg_.mean_bad_s > 0.0);
}

void GilbertElliottChannel::advance_to(TimePoint now) {
  if (!initialized_) {
    // Start in GOOD with the first sojourn sampled from its distribution.
    bad_ = false;
    next_transition_ =
        TimePoint::zero() + Duration::from_seconds(rng_.exponential(cfg_.mean_good_s));
    initialized_ = true;
  }
  while (next_transition_ <= now) {
    bad_ = !bad_;
    const double mean = bad_ ? cfg_.mean_bad_s : cfg_.mean_good_s;
    next_transition_ = next_transition_ + Duration::from_seconds(rng_.exponential(mean));
  }
}

ChannelVerdict GilbertElliottChannel::decide(const Packet&, TimePoint now) {
  advance_to(now);
  if (rng_.bernoulli(bad_ ? cfg_.loss_bad : cfg_.loss_good)) {
    return ChannelVerdict::drop(DropCause::gilbert_elliott(bad_));
  }
  return ChannelVerdict::deliver();
}

bool GilbertElliottChannel::in_bad_state(TimePoint now) {
  advance_to(now);
  return bad_;
}

double GilbertElliottChannel::stationary_loss_rate() const {
  const double total = cfg_.mean_good_s + cfg_.mean_bad_s;
  return (cfg_.mean_good_s / total) * cfg_.loss_good +
         (cfg_.mean_bad_s / total) * cfg_.loss_bad;
}

JitterChannel::JitterChannel(std::unique_ptr<ChannelModel> inner,
                             double median_jitter_s, double sigma,
                             double max_jitter_s, util::Rng rng)
    : inner_(std::move(inner)), mu_(std::log(std::max(median_jitter_s, 1e-9))),
      sigma_(sigma), max_s_(max_jitter_s), rng_(rng) {
  HSR_CHECK(inner_ != nullptr);
}

ChannelVerdict JitterChannel::decide(const Packet& p, TimePoint now) {
  ChannelVerdict v = inner_->decide(p, now);
  if (v.dropped) return v;
  const double jitter = std::min(rng_.lognormal(mu_, sigma_), max_s_);
  v.extra_delay += Duration::from_seconds(jitter);
  return v;
}

CompositeChannel::CompositeChannel(std::vector<std::unique_ptr<ChannelModel>> parts)
    : parts_(std::move(parts)) {}

ChannelVerdict CompositeChannel::decide(const Packet& p, TimePoint now) {
  // Every component sees every packet so that stateful components (e.g.
  // Gilbert–Elliott) evolve consistently regardless of short-circuiting; the
  // FIRST component to drop wins the cause attribution.
  ChannelVerdict out;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    ChannelVerdict v = parts_[i]->decide(p, now);
    if (v.dropped && !out.dropped) {
      out.dropped = true;
      out.cause = v.cause;
      // Extend the attribution path outward: a nested composite has already
      // recorded the inner hops, this level contributes its own index as the
      // new outermost element ("1.0" = our component 1, its component 0).
      out.cause.prepend_component(static_cast<std::int32_t>(i));
    }
    out.extra_delay += v.extra_delay;
    out.duplicate_copies += v.duplicate_copies;
  }
  if (out.dropped) {
    // Delay/duplication of a dead packet is meaningless; normalize so the
    // verdict doesn't leak partial per-component effects.
    out.extra_delay = Duration::zero();
    out.duplicate_copies = 0;
  }
  return out;
}

FunctionalChannel::FunctionalChannel(DropProbFn drop_prob, DelayFn delay, util::Rng rng)
    : drop_prob_(std::move(drop_prob)), delay_(std::move(delay)), rng_(rng) {
  HSR_CHECK(drop_prob_ != nullptr && delay_ != nullptr);
}

ChannelVerdict FunctionalChannel::decide(const Packet& p, TimePoint now) {
  if (rng_.bernoulli(drop_prob_(p, now))) {
    return ChannelVerdict::drop(DropCause::functional_radio());
  }
  return ChannelVerdict::deliver(delay_(p, now));
}

FlowDemuxChannel::FlowDemuxChannel(std::unique_ptr<ChannelModel> fallback)
    : fallback_(std::move(fallback)) {}

void FlowDemuxChannel::add_flow(FlowId flow, std::unique_ptr<ChannelModel> channel) {
  HSR_CHECK(channel != nullptr);
  HSR_CHECK_MSG(!has_flow(flow), "flow already routed in FlowDemuxChannel");
  Route r;
  r.flow = flow;
  r.channel = std::move(channel);
  const auto pos = std::lower_bound(
      channels_.begin(), channels_.end(), flow,
      [](const Route& e, FlowId f) { return e.flow < f; });
  channels_.insert(pos, std::move(r));
}

bool FlowDemuxChannel::has_flow(FlowId flow) const {
  const auto pos = std::lower_bound(
      channels_.begin(), channels_.end(), flow,
      [](const Route& e, FlowId f) { return e.flow < f; });
  return pos != channels_.end() && pos->flow == flow;
}

ChannelVerdict FlowDemuxChannel::decide(const Packet& p, TimePoint now) {
  // Pure routing: only the owning flow's channel sees the packet (per-flow
  // loss processes must evolve from their flow's packet stream alone), and
  // the verdict is returned untouched — no component attribution is added,
  // keeping single-flow demux routing bit-transparent.
  const auto pos = std::lower_bound(
      channels_.begin(), channels_.end(), p.flow,
      [](const Route& e, FlowId f) { return e.flow < f; });
  if (pos != channels_.end() && pos->flow == p.flow) {
    return pos->channel->decide(p, now);
  }
  if (fallback_ != nullptr) return fallback_->decide(p, now);
  return ChannelVerdict::deliver();
}

}  // namespace hsr::net
