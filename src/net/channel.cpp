#include "net/channel.h"

#include <cmath>

#include "util/logging.h"

namespace hsr::net {

BernoulliChannel::BernoulliChannel(double loss_probability, util::Rng rng)
    : p_(loss_probability), rng_(rng) {
  HSR_CHECK_MSG(p_ >= 0.0 && p_ <= 1.0, "loss probability out of range");
}

bool BernoulliChannel::should_drop(const Packet&, TimePoint) {
  return rng_.bernoulli(p_);
}

GilbertElliottChannel::GilbertElliottChannel(Config config, util::Rng rng)
    : cfg_(config), rng_(rng) {
  HSR_CHECK(cfg_.mean_good_s > 0.0 && cfg_.mean_bad_s > 0.0);
}

void GilbertElliottChannel::advance_to(TimePoint now) {
  if (!initialized_) {
    // Start in GOOD with the first sojourn sampled from its distribution.
    bad_ = false;
    next_transition_ =
        TimePoint::zero() + Duration::from_seconds(rng_.exponential(cfg_.mean_good_s));
    initialized_ = true;
  }
  while (next_transition_ <= now) {
    bad_ = !bad_;
    const double mean = bad_ ? cfg_.mean_bad_s : cfg_.mean_good_s;
    next_transition_ = next_transition_ + Duration::from_seconds(rng_.exponential(mean));
  }
}

bool GilbertElliottChannel::should_drop(const Packet&, TimePoint now) {
  advance_to(now);
  return rng_.bernoulli(bad_ ? cfg_.loss_bad : cfg_.loss_good);
}

bool GilbertElliottChannel::in_bad_state(TimePoint now) {
  advance_to(now);
  return bad_;
}

double GilbertElliottChannel::stationary_loss_rate() const {
  const double total = cfg_.mean_good_s + cfg_.mean_bad_s;
  return (cfg_.mean_good_s / total) * cfg_.loss_good +
         (cfg_.mean_bad_s / total) * cfg_.loss_bad;
}

JitterChannel::JitterChannel(std::unique_ptr<ChannelModel> inner,
                             double median_jitter_s, double sigma,
                             double max_jitter_s, util::Rng rng)
    : inner_(std::move(inner)), mu_(std::log(std::max(median_jitter_s, 1e-9))),
      sigma_(sigma), max_s_(max_jitter_s), rng_(rng) {
  HSR_CHECK(inner_ != nullptr);
}

bool JitterChannel::should_drop(const Packet& p, TimePoint now) {
  return inner_->should_drop(p, now);
}

Duration JitterChannel::extra_delay(const Packet& p, TimePoint now) {
  const double jitter = std::min(rng_.lognormal(mu_, sigma_), max_s_);
  return inner_->extra_delay(p, now) + Duration::from_seconds(jitter);
}

CompositeChannel::CompositeChannel(std::vector<std::unique_ptr<ChannelModel>> parts)
    : parts_(std::move(parts)) {}

bool CompositeChannel::should_drop(const Packet& p, TimePoint now) {
  // Every component sees every packet so that stateful components (e.g.
  // Gilbert–Elliott) evolve consistently regardless of short-circuiting.
  bool drop = false;
  for (auto& part : parts_) {
    if (part->should_drop(p, now)) drop = true;
  }
  return drop;
}

Duration CompositeChannel::extra_delay(const Packet& p, TimePoint now) {
  Duration total = Duration::zero();
  for (auto& part : parts_) total += part->extra_delay(p, now);
  return total;
}

unsigned CompositeChannel::duplicate_copies(const Packet& p, TimePoint now) {
  unsigned copies = 0;
  for (auto& part : parts_) copies += part->duplicate_copies(p, now);
  return copies;
}

FunctionalChannel::FunctionalChannel(DropProbFn drop_prob, DelayFn delay, util::Rng rng)
    : drop_prob_(std::move(drop_prob)), delay_(std::move(delay)), rng_(rng) {
  HSR_CHECK(drop_prob_ != nullptr && delay_ != nullptr);
}

bool FunctionalChannel::should_drop(const Packet& p, TimePoint now) {
  return rng_.bernoulli(drop_prob_(p, now));
}

Duration FunctionalChannel::extra_delay(const Packet& p, TimePoint now) {
  return delay_(p, now);
}

}  // namespace hsr::net
