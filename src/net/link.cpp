#include "net/link.h"

#include <algorithm>

#include "util/logging.h"

namespace hsr::net {

Link::Link(sim::Simulator& sim, LinkConfig config, std::unique_ptr<ChannelModel> channel)
    : sim_(sim),
      config_(std::move(config)),
      channel_(std::move(channel)),
      departures_(config_.queue_capacity) {
  HSR_CHECK(channel_ != nullptr);
  HSR_CHECK(config_.rate_bps > 0.0);
  HSR_CHECK(config_.queue_capacity > 0);
}

Duration Link::serialization_time(std::uint32_t bytes) const {
  const double seconds = static_cast<double>(bytes) * 8.0 / config_.rate_bps;
  return Duration::from_seconds(seconds);
}

// Setup-time: the registry vector may grow here, never on the packet path.
void Link::register_endpoint(FlowId flow, Receiver receiver, LinkTap* tap) {
  HSR_CHECK_MSG(endpoint_for(flow) == nullptr,
                "flow already has an endpoint on this link");
  Endpoint ep;
  ep.flow = flow;
  ep.receiver = std::move(receiver);
  ep.tap = tap;
  const auto pos = std::lower_bound(
      endpoints_.begin(), endpoints_.end(), flow,
      [](const Endpoint& e, FlowId f) { return e.flow < f; });
  endpoints_.insert(pos, std::move(ep));
}

const LinkStats& Link::endpoint_stats(FlowId flow) const {
  const Endpoint* ep = endpoint_for(flow);
  HSR_CHECK_MSG(ep != nullptr, "endpoint_stats for unregistered flow");
  return ep->stats;
}

// HSR_HOT_PATH_BEGIN — send/deliver run once per packet; the capture-fits-
// inline static_assert below and the hsr-lint hotpath family together keep
// this path allocation-free in steady state (pinned by sim.hotpath_alloc).
void Link::prune_departures() const {
  const TimePoint now = sim_.now();
  while (!departures_.empty() && departures_.front() <= now) {
    departures_.pop_front();
  }
}

std::size_t Link::queue_depth() const {
  prune_departures();
  return departures_.size();
}

Link::Endpoint* Link::endpoint_for(FlowId flow) {
  const auto pos = std::lower_bound(
      endpoints_.begin(), endpoints_.end(), flow,
      [](const Endpoint& e, FlowId f) { return e.flow < f; });
  return pos != endpoints_.end() && pos->flow == flow ? &*pos : nullptr;
}

const Link::Endpoint* Link::endpoint_for(FlowId flow) const {
  return const_cast<Link*>(this)->endpoint_for(flow);
}

void Link::count_drop(const DropCause& cause, Endpoint* ep) {
  ++stats_.dropped_by_category[static_cast<std::size_t>(cause.category)];
  if (ep != nullptr) {
    ++ep->stats.dropped_by_category[static_cast<std::size_t>(cause.category)];
  }
}

void Link::send(Packet packet) {
  const TimePoint now = sim_.now();
  packet.sent_at = now;
  Endpoint* ep = endpoint_for(packet.flow);
  ++stats_.sent;
  if (ep != nullptr) ++ep->stats.sent;
  if (tap_ != nullptr) tap_->on_send(packet, now);
  if (ep != nullptr && ep->tap != nullptr) ep->tap->on_send(packet, now);

  prune_departures();
  if (departures_.size() >= config_.queue_capacity) {
    const DropCause cause = DropCause::queue_overflow();
    count_drop(cause, ep);
    if (tap_ != nullptr) tap_->on_drop(packet, now, cause);
    if (ep != nullptr && ep->tap != nullptr) ep->tap->on_drop(packet, now, cause);
    return;
  }

  const TimePoint start = std::max(now, busy_until_);
  const TimePoint departure = start + serialization_time(packet.size_bytes);
  busy_until_ = departure;
  departures_.push_back(departure);  // hsr-lint-ok: fixed ring, never allocates

  // Channel fate is evaluated at transmission time: the packet occupies the
  // queue/transmitter either way (it is corrupted on the air, not dropped
  // before entering the NIC).
  const ChannelVerdict verdict = channel_->decide(packet, start);
  if (verdict.dropped) {
    HSR_DCHECK_MSG(verdict.cause.category != DropCategory::kUnknown,
                   "channel drop without cause attribution");
    count_drop(verdict.cause, ep);
    if (tap_ != nullptr) tap_->on_drop(packet, start, verdict.cause);
    if (ep != nullptr && ep->tap != nullptr) {
      ep->tap->on_drop(packet, start, verdict.cause);
    }
    return;
  }

  const TimePoint arrival = departure + config_.prop_delay + verdict.extra_delay;
  // Duplication faults: the channel may inject extra copies of a delivered
  // packet (same id — it is the SAME packet arriving more than once, as on a
  // real path with a duplicating middlebox). Copies share the arrival time.
  const unsigned copies = 1 + verdict.duplicate_copies;
  stats_.injected_duplicates += copies - 1;
  if (ep != nullptr) ep->stats.injected_duplicates += copies - 1;
  for (unsigned c = 0; c + 1 < copies; ++c) {
    sim_.at(arrival, [this, packet] { deliver(packet); });
  }
  // Common path (no duplication): the packet moves into the event capture —
  // the only copy of its metadata between the NIC and the receiving
  // endpoint. The capture must stay inside the event slab: a change that
  // pushes it past the inline budget re-introduces a per-packet allocation,
  // so the fit is asserted at compile time.
  auto delivery = [this, p = std::move(packet)] { deliver(p); };
  static_assert(sim::EventAction::holds_inline<decltype(delivery)>(),
                "Link delivery capture outgrew kEventActionInlineBytes; "
                "the per-packet zero-allocation guarantee would be lost");
  sim_.at(arrival, std::move(delivery));
}

void Link::deliver(const Packet& packet) {
  Endpoint* ep = endpoint_for(packet.flow);
  ++stats_.delivered;
  stats_.bytes_delivered += packet.size_bytes;
  if (ep != nullptr) {
    ++ep->stats.delivered;
    ep->stats.bytes_delivered += packet.size_bytes;
  }
  if (tap_ != nullptr) tap_->on_deliver(packet, packet.sent_at, sim_.now());
  if (ep != nullptr && ep->tap != nullptr) {
    ep->tap->on_deliver(packet, packet.sent_at, sim_.now());
  }
  if (ep != nullptr && ep->receiver) {
    ep->receiver(packet);
  } else if (receiver_) {
    receiver_(packet);
  }
}
// HSR_HOT_PATH_END

}  // namespace hsr::net
