// The packet record exchanged between TCP endpoints over simulated links.
//
// The stack is packet-granular: data segments are numbered in units of one
// MSS (as in the Padhye model), and ACKs carry the cumulative
// next-expected-segment number.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>

#include "util/time.h"

namespace hsr::net {

using util::Duration;
using util::TimePoint;

enum class PacketKind : std::uint8_t { kData = 0, kAck = 1 };

using FlowId = std::uint32_t;
using SeqNo = std::uint64_t;  // 1-based segment number

struct Packet {
  // Globally unique per simulation run; assigned by the sender.
  std::uint64_t id = 0;
  FlowId flow = 0;
  PacketKind kind = PacketKind::kData;

  // kData: the segment number carried.
  // kAck : cumulative ACK — all segments < ack_next received in order.
  SeqNo seq = 0;
  SeqNo ack_next = 0;

  std::uint32_t size_bytes = 0;
  TimePoint sent_at;

  // Retransmission bookkeeping (ground truth used to validate the
  // trace-analysis pipeline, which must not peek at these fields).
  bool is_retransmission = false;
  std::uint32_t retx_count = 0;

  // Multipath: which subflow the packet traveled on, and the
  // connection-level sequence the subflow segment maps to (0 = none).
  std::uint8_t subflow = 0;
  SeqNo meta_seq = 0;

  // SACK option (ACKs only): up to 3 blocks of segments received above the
  // cumulative point, as half-open ranges [first, last).
  static constexpr std::size_t kMaxSackBlocks = 3;
  std::array<std::pair<SeqNo, SeqNo>, kMaxSackBlocks> sack{};
  std::uint8_t sack_count = 0;

  std::string describe() const;
};

// Thread-local unique packet id source. Ids are only used as join keys when
// matching capture records (send vs deliver) within one flow's capture;
// uniqueness per thread is all that is required, since a simulation run
// never spans threads. Keeping the counter thread-local lets experiment
// shards run in parallel without races or cross-shard id coupling.
std::uint64_t allocate_packet_id();

// Rewinds this thread's counter to 1. Call at the start of each independent
// simulation so ids — and therefore serialized captures — depend only on the
// flow's own history, not on which flows this thread ran before (the
// byte-identical-capture contract across thread counts and repeat runs).
void reset_packet_ids();

}  // namespace hsr::net
