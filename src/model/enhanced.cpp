#include "model/enhanced.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace hsr::model {

namespace {

// (1 - P_a)^n computed stably for large n / tiny P_a.
double pow_one_minus(double pa, double n) {
  if (pa <= 0.0) return 1.0;
  if (pa >= 1.0) return 0.0;
  return std::exp(n * std::log1p(-pa));
}

// Eq. 2 / Eq. 18 pattern: E = (1 - (1-P_a)^n) / P_a, with the P_a -> 0
// limit equal to n (L'Hopital, as noted in §IV-B).
double truncated_geometric_mean(double pa, double n) {
  if (n <= 0.0) return 0.0;
  if (pa <= 1e-12) return n;
  return (1.0 - pow_one_minus(pa, n)) / pa;
}

}  // namespace

double ack_burst_probability(double p_a, double window_segments, double b) {
  HSR_CHECK(b >= 1.0);
  if (p_a <= 0.0) return 0.0;
  if (p_a >= 1.0) return 1.0;
  const double acks_per_round = std::max(1.0, window_segments / b);
  return std::pow(p_a, acks_per_round);
}

double deviation_rate(double model_pps, double trace_pps) {
  HSR_CHECK(trace_pps > 0.0);
  return std::abs(model_pps - trace_pps) / trace_pps;
}

EnhancedBreakdown enhanced_model(const EnhancedInputs& in, EnhancedVariant variant) {
  const auto& [rtt, t0, b, w_m] = in.path;
  HSR_CHECK(rtt > 0.0 && t0 > 0.0 && b >= 1.0 && w_m >= 1.0);
  // Probability inputs must already be in-domain; the clamps below only
  // guard the open-interval edges (log/division at exactly 0 or 1), not
  // out-of-range estimates.
  HSR_DCHECK_MSG(in.p_d >= 0.0 && in.p_d <= 1.0, "data loss rate p_d outside [0,1]");
  HSR_DCHECK_MSG(in.P_a >= 0.0 && in.P_a <= 1.0, "ACK-burst probability P_a outside [0,1]");
  HSR_DCHECK_MSG(in.q >= 0.0 && in.q <= 1.0, "recovery loss rate q outside [0,1]");

  const double p_d = std::clamp(in.p_d, 0.0, 0.999999);
  const double pa = std::clamp(in.P_a, 0.0, 0.999999);
  const double q = std::clamp(in.q, 0.0, 0.999999);

  EnhancedBreakdown out;

  // --- CA phase (Eqs. 1-6). --------------------------------------------------
  out.x_p = padhye_first_loss_round(p_d, b);
  out.e_x = truncated_geometric_mean(pa, out.x_p + 1.0);  // Eq. 2
  if (variant == EnhancedVariant::kCorrected) {
    out.e_w = 2.0 * out.e_x / b - 2.0;  // consistent with Eq. 3 equilibrium
  } else {
    out.e_w = b / 2.0 * out.e_x - 2.0;  // literal Eq. 4
  }
  out.e_w = std::max(out.e_w, 1.0);
  out.e_y = out.e_w / 2.0 * (3.0 * out.e_x / 2.0 - 1.0);  // Eq. 6

  // --- Timeout sequence (Eqs. 9-14). ------------------------------------------
  out.p_consec = 1.0 - (1.0 - q) * (1.0 - pa);
  out.p_consec = std::min(out.p_consec, 0.999999);
  out.e_r = 1.0 / (1.0 - out.p_consec);                       // Eq. 11
  out.e_y_to = std::pow(1.0 - q, out.e_r);                    // Eq. 12
  out.e_a_to_s = t0 * pftk_f(out.p_consec) / (1.0 - out.p_consec);  // Eq. 13

  // --- Branch selection and Q (Eqs. 9-10, 15-21). ------------------------------
  out.window_limited = out.e_w >= w_m;
  if (!out.window_limited) {
    out.q_p = std::min(1.0, 3.0 / out.e_w);  // Eq. 9
    out.q_timeout = 1.0 - (1.0 - out.q_p) * pow_one_minus(pa, out.x_p);  // Eq. 10
    const double numer = out.e_y + out.q_timeout * out.e_y_to;
    const double denom = out.e_x * rtt + out.q_timeout * out.e_a_to_s;
    out.throughput_pps = std::max(numer / denom, 0.0);  // Eq. 15
    return out;
  }

  // Window-limited (Eqs. 16-21). The window saturates at W_m after
  // E[U] = b*W_m/2 growth rounds, then holds for V rounds until a loss
  // indication.
  out.e_u = b * w_m / 2.0;  // Eq. 16
  out.v_p = p_d > 0.0
                ? (1.0 - p_d) / (p_d * w_m) + 1.0 - 3.0 * b * w_m / 8.0  // Eq. 17
                : 1e12;
  out.v_p = std::max(out.v_p, 1.0);
  out.e_v = truncated_geometric_mean(pa, out.v_p);  // Eq. 18

  // Q in the limited branch: the CA phase now lasts E[U] + V_P rounds
  // before data loss, so the no-ACK-burst survival exponent uses that
  // span (the paper leaves this implicit; with P_a -> 0 it reduces to
  // Q_P as required).
  out.q_p = std::min(1.0, 3.0 / w_m);
  out.q_timeout = 1.0 - (1.0 - out.q_p) * pow_one_minus(pa, out.e_u + out.v_p);

  const double e_y_lim = 3.0 * b * w_m * w_m / 8.0 + w_m * (out.e_v - 0.5);  // Eq. 19
  const double e_x_lim = out.e_u + out.e_v;                                  // Eq. 20
  out.e_y = e_y_lim;
  out.e_x = e_x_lim;
  const double numer = e_y_lim + out.q_timeout * out.e_y_to;
  const double denom = e_x_lim * rtt + out.q_timeout * out.e_a_to_s;
  out.throughput_pps = std::max(numer / denom, 0.0);  // Eq. 21, second branch
  return out;
}

double enhanced_throughput_pps(const EnhancedInputs& in, EnhancedVariant variant) {
  const double pps = enhanced_model(in, variant).throughput_pps;
  HSR_DCHECK_MSG(std::isfinite(pps) && pps >= 0.0,
                 "enhanced model produced a non-finite or negative throughput");
  return pps;
}

EnhancedInputs solve_self_consistent_pa(double p_a, EnhancedInputs seed,
                                        EnhancedVariant variant, int max_iterations) {
  EnhancedInputs cur = seed;
  // Start from the Padhye window for the measured data-loss rate.
  double window = seed.p_d > 0.0 ? pftk_expected_window(seed.p_d, seed.path.b)
                                 : seed.path.w_m;
  window = std::min(window, seed.path.w_m);
  for (int i = 0; i < max_iterations; ++i) {
    cur.P_a = ack_burst_probability(p_a, window, cur.path.b);
    const EnhancedBreakdown bd = enhanced_model(cur, variant);
    const double next_window =
        std::min(bd.window_limited ? cur.path.w_m : bd.e_w, cur.path.w_m);
    if (std::abs(next_window - window) < 1e-9) break;
    window = next_window;
  }
  cur.P_a = ack_burst_probability(p_a, window, cur.path.b);
  return cur;
}

}  // namespace hsr::model
