#include "model/padhye.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace hsr::model {

double pftk_f(double p) {
  return 1.0 + p * (1.0 + p * (2.0 + p * (4.0 + p * (8.0 + p * (16.0 + p * 32.0)))));
}

double pftk_q(double p, double w, QFormula formula) {
  if (w <= 1.0) return 1.0;
  if (formula == QFormula::kApprox3OverW) {
    return std::min(1.0, 3.0 / w);
  }
  // Full PFTK:
  //   Q = min(1, (1-(1-p)^3)(1+(1-p)^3(1-(1-p)^(w-3))) / (1-(1-p)^w)).
  if (p <= 0.0) return std::min(1.0, 3.0 / w);
  const double q1 = 1.0 - std::pow(1.0 - p, 3.0);
  const double q2 = 1.0 + std::pow(1.0 - p, 3.0) * (1.0 - std::pow(1.0 - p, w - 3.0));
  const double denom = 1.0 - std::pow(1.0 - p, w);
  if (denom <= 0.0) return 1.0;
  return std::min(1.0, q1 * q2 / denom);
}

double pftk_expected_window(double p, double b) {
  HSR_CHECK(p > 0.0 && b >= 1.0);
  const double k = (2.0 + b) / (3.0 * b);
  return k + std::sqrt(8.0 * (1.0 - p) / (3.0 * b * p) + k * k);
}

double padhye_first_loss_round(double p_d, double b) {
  HSR_CHECK(b >= 1.0);
  if (p_d <= 0.0) return 1e12;  // effectively never: callers cap via W_m branch
  const double k = (2.0 + b) / 6.0;
  return k + std::sqrt(2.0 * b * (1.0 - p_d) / (3.0 * p_d) + k * k);
}

double padhye_throughput_pps(const PadhyeInputs& in, QFormula formula) {
  const auto& [rtt, t0, b, w_m] = in.path;
  HSR_CHECK(rtt > 0.0 && t0 > 0.0 && b >= 1.0 && w_m >= 1.0);
  const double p = in.p;
  if (p >= 1.0) return 0.0;
  if (p <= 0.0) return w_m / rtt;  // loss-free: pinned at the window limit

  const double ew = pftk_expected_window(p, b);
  const double f = pftk_f(p);
  if (ew < w_m) {
    const double q = pftk_q(p, ew, formula);
    const double numer = (1.0 - p) / p + ew + q / (1.0 - p);
    const double denom = rtt * (b / 2.0 * ew + 1.0) + q * t0 * f / (1.0 - p);
    return numer / denom;
  }
  const double q = pftk_q(p, w_m, formula);
  const double numer = (1.0 - p) / p + w_m + q / (1.0 - p);
  const double denom = rtt * (b / 8.0 * w_m + (1.0 - p) / (p * w_m) + 2.0) +
                       q * t0 * f / (1.0 - p);
  return numer / denom;
}

double padhye_simple_pps(const PadhyeInputs& in) {
  const auto& [rtt, t0, b, w_m] = in.path;
  HSR_CHECK(rtt > 0.0 && t0 > 0.0 && b >= 1.0 && w_m >= 1.0);
  const double p = in.p;
  if (p >= 1.0) return 0.0;
  if (p <= 0.0) return w_m / rtt;
  const double term_ca = rtt * std::sqrt(2.0 * b * p / 3.0);
  const double term_to =
      t0 * std::min(1.0, 3.0 * std::sqrt(3.0 * b * p / 8.0)) * p * (1.0 + 32.0 * p * p);
  return std::min(w_m / rtt, 1.0 / (term_ca + term_to));
}

}  // namespace hsr::model
