// The paper's enhanced TCP throughput model for high-speed mobility
// scenarios (§IV, Eqs. 1-21).
//
// Two parameters extend the Padhye model:
//   P_a — probability of "ACK burst loss": all ACKs of one round lost, which
//         ends the CA phase with a (spurious) timeout;
//   q   — loss rate of retransmitted packets during the timeout recovery
//         phase (q >> p_d on HSR; paper recommends 0.25-0.4).
//
// NOTE on published typos. The paper's Eq. 4 prints E[W] = (b/2)E[X] - 2,
// but its own Eq. 3 equilibrium (W = W/2 + X/b - 1) gives
// E[W] = (2/b)E[X] - 2; only the latter degenerates to the Padhye window
// (E[W] ~ sqrt(8(1-p)/(3bp))) when P_a -> 0, which the paper states as a
// property of its model (§IV-B). Equations 7/15/21 inherit the typo in
// their 3b/8 coefficients. We implement the self-consistent ("corrected")
// derivation by default and the literal published coefficients as a
// documented variant.
#pragma once

#include "model/padhye.h"

namespace hsr::model {

struct EnhancedInputs {
  double p_d = 0.0075;  // lifetime data-segment loss rate
  double P_a = 0.01;    // ACK burst-loss probability (per round)
  double q = 0.3;       // retransmit loss rate during timeout recovery
  PathParams path;
};

enum class EnhancedVariant { kCorrected, kAsPublished };

// Every intermediate quantity of the derivation, for tests, docs and the
// window-evolution figures.
struct EnhancedBreakdown {
  // CA phase (§IV-B).
  double x_p = 0.0;   // Eq. 1: expected first-data-loss round
  double e_x = 0.0;   // Eq. 2: expected rounds per CA phase
  double e_w = 0.0;   // Eq. 4: expected window at CA end
  double e_y = 0.0;   // Eq. 6: expected segments received per CA phase

  // Timeout sequence (§IV-C).
  double q_p = 0.0;      // Eq. 9
  double q_timeout = 0.0;  // Eq. 10: P(loss indication is a timeout)
  double p_consec = 0.0;   // p = 1 - (1-q)(1-P_a)
  double e_r = 0.0;        // Eq. 11: expected timeouts per sequence
  double e_y_to = 0.0;     // Eq. 12: expected segments received per sequence
  double e_a_to_s = 0.0;   // Eq. 13: expected sequence duration, seconds

  // Window limitation (§IV-D); populated when window_limited.
  bool window_limited = false;
  double v_p = 0.0;  // Eq. 17
  double e_u = 0.0;  // Eq. 16
  double e_v = 0.0;  // Eq. 18

  double throughput_pps = 0.0;  // Eq. 21
};

// Evaluates the full model (Eq. 21). Inputs are clamped to their valid
// domains; throughput is always finite and non-negative.
EnhancedBreakdown enhanced_model(const EnhancedInputs& in,
                                 EnhancedVariant variant = EnhancedVariant::kCorrected);

double enhanced_throughput_pps(const EnhancedInputs& in,
                               EnhancedVariant variant = EnhancedVariant::kCorrected);

// P_a from the per-ACK loss rate: P_a = p_a^n where n is the number of ACKs
// in a round (~ max(1, w/b) with delayed ACKs; the paper writes p_a^w for
// b = 1). Assumes independent ACK losses.
double ack_burst_probability(double p_a, double window_segments, double b);

// Self-consistent P_a: iterates P_a = p_a^(E[W]/b) with E[W] from the model
// itself until fixed point (E[W] depends on P_a). Returns the converged
// inputs.
EnhancedInputs solve_self_consistent_pa(double p_a, EnhancedInputs seed,
                                        EnhancedVariant variant = EnhancedVariant::kCorrected,
                                        int max_iterations = 50);

// Absolute deviation rate D = |TP_model - TP_trace| / TP_trace (Eq. 22).
double deviation_rate(double model_pps, double trace_pps);

}  // namespace hsr::model
