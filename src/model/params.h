// Bridges measurement to modeling: estimates the two models' inputs from a
// flow analysis (as the paper does per captured flow for Fig. 10), and
// evaluates both models against the measured goodput via Eq. 22.
#pragma once

#include "analysis/flow_analysis.h"
#include "model/enhanced.h"
#include "model/padhye.h"

namespace hsr::model {

struct EstimationOptions {
  // Protocol facts known out-of-band (connection configuration).
  double b = 2.0;     // segments per ACK (delayed ACKs)
  double w_m = 64.0;  // receiver window, segments

  // Loss-rate estimator fed to the models. PFTK's own empirical validation
  // measures p as loss INDICATIONS per packet (a burst counts once), which
  // is robust to the loss clustering of HSR channels; the raw packet-loss
  // rate is kept for ablation. The Padhye baseline receives all indications
  // (it attributes every timeout to data loss); the enhanced model receives
  // only data-loss indications, with spurious timeouts carried by P_a.
  enum class LossSource { kEventRate, kFirstTxRate, kAllTxRate };
  LossSource loss_source = LossSource::kEventRate;

  // P_a source.
  enum class PaSource {
    kEpisode,       // episode-calibrated inversion (default; burst-robust)
    kRoundMeasured, // direct per-round burst estimator
    kDerived,       // p_a^(w/b) self-consistent fixed point (paper §IV-A)
  };
  PaSource pa_source = PaSource::kEpisode;

  // q source. The paper feeds the model a recommended constant
  // (q in [0.25, 0.4], §IV-A) because q cannot be probed ahead of time;
  // per-flow measured q̂ is also available but is burst-clustered, which the
  // geometric timeout-sequence model amplifies.
  bool use_measured_q = false;
  double recommended_q = 0.3;  // paper recommends [0.25, 0.4]

  // Fallbacks for degenerate flows.
  double default_rtt_s = 0.1;
  double min_t0_s = 0.2;
};

PathParams path_from_analysis(const analysis::FlowAnalysis& a,
                              const EstimationOptions& opt);
PadhyeInputs padhye_inputs_from_analysis(const analysis::FlowAnalysis& a,
                                         const EstimationOptions& opt);
EnhancedInputs enhanced_inputs_from_analysis(const analysis::FlowAnalysis& a,
                                             const EstimationOptions& opt);

// One Fig. 10 data point: both models vs the measured goodput of a flow.
struct FlowEvaluation {
  double trace_pps = 0.0;
  double padhye_pps = 0.0;
  double enhanced_pps = 0.0;
  double d_padhye = 0.0;    // Eq. 22 deviation of the Padhye model
  double d_enhanced = 0.0;  // Eq. 22 deviation of the enhanced model
};

FlowEvaluation evaluate_flow(const analysis::FlowAnalysis& a,
                             const EstimationOptions& opt,
                             EnhancedVariant variant = EnhancedVariant::kCorrected,
                             QFormula padhye_q = QFormula::kApprox3OverW);

}  // namespace hsr::model
