// The classic Padhye/PFTK steady-state TCP Reno throughput model
// (Padhye, Firoiu, Towsley, Kurose, ToN 2000) — the baseline the paper
// enhances and compares against (its Fig. 10).
#pragma once

namespace hsr::model {

// Path parameters shared by both models.
struct PathParams {
  double rtt_s = 0.1;   // average round-trip time, seconds
  double t0_s = 0.5;    // base retransmission timer T, seconds
  double b = 2.0;       // data packets acknowledged per ACK (delayed ACKs)
  double w_m = 64.0;    // receiver-advertised window limit, segments
};

struct PadhyeInputs {
  double p = 0.01;  // loss-event rate
  PathParams path;
};

// Which expression to use for Q (probability that a loss indication is a
// timeout). The paper's baseline uses the approximation Q = min(1, 3/E[W])
// (its Eq. 9); PFTK's exact derivation is also available.
enum class QFormula { kApprox3OverW, kFullPftk };

// PFTK Eq. for f(p) = 1 + p + 2p^2 + 4p^3 + 8p^4 + 16p^5 + 32p^6.
double pftk_f(double p);

// Q(p, w): probability a loss indication in a window of w is a timeout
// (PFTK full form). Falls back to min(1, 3/w) for the approximate formula.
double pftk_q(double p, double w, QFormula formula);

// Expected unconstrained window at the end of a loss-free run,
// E[W] = (2+b)/(3b) + sqrt(8(1-p)/(3bp) + ((2+b)/(3b))^2).
double pftk_expected_window(double p, double b);

// Full PFTK throughput (segments/second), with the receiver-window-limited
// branch. p must be in (0, 1); p >= 1 returns 0 and p <= 0 returns the
// window-limited ceiling w_m/RTT.
double padhye_throughput_pps(const PadhyeInputs& in,
                             QFormula formula = QFormula::kApprox3OverW);

// The well-known closed-form approximation
//   B = min(W_m/RTT, 1/(RTT sqrt(2bp/3) + T0 min(1, 3 sqrt(3bp/8)) p (1+32p^2))).
double padhye_simple_pps(const PadhyeInputs& in);

// X_P: expected round where data loss first occurs in a CA phase (the
// paper's Eq. 1), used by the enhanced model.
double padhye_first_loss_round(double p_d, double b);

}  // namespace hsr::model
