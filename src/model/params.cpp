#include "model/params.h"

#include <algorithm>

#include "util/logging.h"

namespace hsr::model {

namespace {

// Model inputs estimated from traces must live in their mathematical
// domains: probabilities in [0,1], windows and path delays positive. A
// violation here means the analysis layer produced garbage, and every
// downstream throughput figure would silently inherit it.
void check_path_domain(const PathParams& path) {
  HSR_DCHECK_MSG(path.rtt_s > 0.0, "non-positive RTT");
  HSR_DCHECK_MSG(path.t0_s > 0.0, "non-positive T0");
  HSR_DCHECK_MSG(path.b >= 1.0, "delayed-ACK factor b below 1");
  HSR_DCHECK_MSG(path.w_m >= 1.0, "receiver window below one segment");
}

void check_probability(double p, const char* what) {
  HSR_DCHECK_MSG(p >= 0.0 && p <= 1.0, what);
}

}  // namespace

PathParams path_from_analysis(const analysis::FlowAnalysis& a,
                              const EstimationOptions& opt) {
  PathParams path;
  path.rtt_s = a.mean_rtt > util::Duration::zero() ? a.mean_rtt.to_seconds()
                                                   : opt.default_rtt_s;
  // T: measured mean gap between the end of the CA phase and the first
  // retransmission when the flow has timeouts; otherwise an RFC6298-style
  // floor on the RTT.
  if (a.has_timeouts() && a.mean_first_rto > util::Duration::zero()) {
    path.t0_s = std::max(a.mean_first_rto.to_seconds(), opt.min_t0_s);
  } else {
    path.t0_s = std::max(2.0 * path.rtt_s, opt.min_t0_s);
  }
  path.b = opt.b;
  path.w_m = opt.w_m;
  check_path_domain(path);
  return path;
}

namespace {

double loss_input(const analysis::FlowAnalysis& a, const EstimationOptions& opt,
                  bool data_only) {
  double p = 0.0;
  switch (opt.loss_source) {
    case EstimationOptions::LossSource::kEventRate:
      p = data_only ? a.loss_event_rate_data : a.loss_event_rate_all;
      break;
    case EstimationOptions::LossSource::kFirstTxRate:
      p = a.first_tx_loss_rate;
      break;
    case EstimationOptions::LossSource::kAllTxRate:
      p = a.data_loss_rate;
      break;
  }
  return std::max(p, 1e-6);
}

}  // namespace

PadhyeInputs padhye_inputs_from_analysis(const analysis::FlowAnalysis& a,
                                         const EstimationOptions& opt) {
  PadhyeInputs in;
  in.p = loss_input(a, opt, /*data_only=*/false);
  in.path = path_from_analysis(a, opt);
  check_probability(in.p, "loss rate p outside [0,1]");
  return in;
}

EnhancedInputs enhanced_inputs_from_analysis(const analysis::FlowAnalysis& a,
                                             const EstimationOptions& opt) {
  EnhancedInputs in;
  in.p_d = loss_input(a, opt, /*data_only=*/true);
  in.path = path_from_analysis(a, opt);

  if (opt.use_measured_q && a.has_timeouts()) {
    in.q = a.recovery_retx_loss_rate;
  } else {
    in.q = opt.recommended_q;
  }

  switch (opt.pa_source) {
    case EstimationOptions::PaSource::kEpisode:
      in.P_a = a.ack_burst_loss_episode;
      break;
    case EstimationOptions::PaSource::kRoundMeasured:
      in.P_a = a.ack_burst_loss_probability;
      break;
    case EstimationOptions::PaSource::kDerived:
      in = solve_self_consistent_pa(a.ack_loss_rate, in);
      break;
  }
  check_probability(in.p_d, "data loss rate p_d outside [0,1]");
  check_probability(in.P_a, "ACK-burst loss probability P_a outside [0,1]");
  check_probability(in.q, "recovery loss rate q outside [0,1]");
  return in;
}

FlowEvaluation evaluate_flow(const analysis::FlowAnalysis& a,
                             const EstimationOptions& opt,
                             EnhancedVariant variant, QFormula padhye_q) {
  FlowEvaluation ev;
  ev.trace_pps = a.goodput_pps;
  ev.padhye_pps = padhye_throughput_pps(padhye_inputs_from_analysis(a, opt), padhye_q);
  ev.enhanced_pps =
      enhanced_throughput_pps(enhanced_inputs_from_analysis(a, opt), variant);
  if (ev.trace_pps > 0.0) {
    ev.d_padhye = deviation_rate(ev.padhye_pps, ev.trace_pps);
    ev.d_enhanced = deviation_rate(ev.enhanced_pps, ev.trace_pps);
  }
  return ev;
}

}  // namespace hsr::model
