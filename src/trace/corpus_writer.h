// Chunked, crash-safe corpus writing for streaming campaign generation.
//
// The previous streaming writer gave each ThreadPool worker one spill shard
// for the whole campaign — nothing was durable until the final merge, so an
// ENOSPC or SIGKILL at flow 99,000 of 100,000 threw everything away. The
// chunked writer makes the unit of durability small and deterministic: the
// campaign is partitioned into fixed ranges of flow indices ("chunks"), a
// worker runs one chunk at a time, and each finished chunk is committed as
// its own hsrtrace-b2 file via write-to-tmp + fsync + atomic rename. A
// chunk's bytes depend only on (spec, chunk index) — never on thread count
// or interruption history — so a resumed campaign re-runs exactly the
// missing chunks and still produces a byte-identical corpus.
//
// Chunk file layout: a normal hsrtrace-b2 stream (header flow count =
// kUnknownFlowCount) whose frames are the chunk's flows in index order.
// Besides 'F'/'Q' frames it may carry sidecar frames (e.g. 'S' per-flow
// stats samples) that the merge surfaces to the caller and strips from the
// final corpus. All I/O goes through the util::Fs seam so the crash-safety
// tests can script ENOSPC / short writes / torn renames against it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace_binary.h"
#include "util/fs.h"
#include "util/status.h"

namespace hsr::trace {

// Writes one chunk file. Single-threaded use (one worker owns one chunk);
// distinct ChunkFileWriters never contend. Appends see bounded transient
// retry; any hard failure leaves the final path untouched (only the .tmp is
// dirty, and abandon() cleans it up best-effort).
class ChunkFileWriter {
 public:
  // What the manifest records per committed chunk.
  struct Info {
    std::uint64_t bytes = 0;        // committed file size
    std::uint32_t crc32c = 0;       // checksum of the whole file's bytes
    std::uint64_t flows = 0;        // 'F' frames
    std::uint64_t quarantines = 0;  // 'Q' frames
  };

  // `path` is the final (post-rename) chunk path; writing happens at
  // `path + ".tmp"`.
  ChunkFileWriter(util::Fs& fs, std::string path);

  [[nodiscard]] util::Status open();
  [[nodiscard]] util::Status append_flow(const FlowCapture& capture);
  [[nodiscard]] util::Status append_quarantine(const QuarantineRecord& record);
  // Sidecar frame of an arbitrary type (stripped from the merged corpus).
  [[nodiscard]] util::Status append_raw(char type, std::string_view payload);

  // Syncs, closes and atomically renames the tmp into place. Returns the
  // committed file's info (the manifest entry's digest fields).
  [[nodiscard]] util::StatusOr<Info> commit();
  // Error-path cleanup: closes and removes the tmp file, best-effort.
  void abandon();

  const std::string& path() const { return path_; }

 private:
  util::Status append_frame_bytes(const std::string& frame);

  util::Fs& fs_;
  std::string path_;
  std::string tmp_;
  std::unique_ptr<util::WritableFile> file_;
  std::string scratch_;  // reused frame-encoding buffer
  Info info_;
  std::uint64_t next_seq_ = 0;
};

struct CorpusMergeResult {
  std::uint64_t flows = 0;        // flow frames in the corpus
  std::uint64_t quarantines = 0;  // quarantine frames in the corpus
  std::uint64_t bytes = 0;        // final corpus file size
};

// Concatenates committed chunk files (given in flow-index order) into the
// final corpus, atomically: header with the exact flow count, every 'F'/'Q'
// frame re-stamped with its corpus-wide sequence number, sidecar frames
// stripped. `on_frame` is invoked for EVERY chunk frame in stream order
// (types 'F', 'Q' and sidecars alike) before the frame is copied or
// dropped — the streaming-stats absorption hook; a non-OK return aborts the
// merge. On any failure the destination is left exactly as it was.
// `total_flow_frames` must equal the number of 'F' frames the chunks hold
// (the manifest knows) — it is written into the header up front.
[[nodiscard]] util::StatusOr<CorpusMergeResult> merge_corpus_chunks(
    util::Fs& fs, const std::vector<std::string>& chunk_paths,
    const std::string& corpus_path, std::uint64_t total_flow_frames,
    const std::function<util::Status(char type, const std::string& payload)>&
        on_frame);

// Reads `path` and returns the CRC-32C of its raw bytes — the digest used
// to decide whether a surviving chunk can be trusted on resume.
[[nodiscard]] util::StatusOr<std::uint32_t> crc32c_of_file(const std::string& path);

}  // namespace hsr::trace
