// Spill-to-disk corpus writer for streaming campaign generation.
//
// generate_dataset used to hold every FlowCapture in RAM until the whole
// campaign finished; at 10^5-10^6 flows that is the scaling wall. With
// StreamingCorpusWriter each ThreadPool worker owns one spill shard: the
// moment a flow finishes, its capture is encoded as an hsrtrace-b1 frame,
// appended to the worker's shard file, and freed. Because workers claim flow
// indices from a shared atomic counter, the indices landing in any one shard
// are strictly increasing — so the final merge is a k-way minimum-index merge
// that copies pre-encoded frame bytes verbatim. The merged corpus is
// byte-identical for ANY shard/thread count, extending the repo's
// determinism contract (same seed => same corpus) to the streaming path.
//
// Spill shard record layout (transient, deleted after merge):
//   { u64 LE flow_index, hsrtrace-b1 frame }
// Final corpus file: hsrtrace-b1 header (exact flow count) + frames in
// flow-index order, written atomically (<path>.tmp then rename).
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_binary.h"
#include "util/status.h"

namespace hsr::trace {

class StreamingCorpusWriter {
 public:
  struct Options {
    std::string corpus_path;
    // Scratch directory for per-shard spill files; defaults to
    // "<corpus_path>.spill". Created on open(), removed after merge().
    std::string spill_dir;
    unsigned shards = 1;
  };

  struct MergeResult {
    std::uint64_t flows = 0;        // flow frames in the corpus
    std::uint64_t quarantines = 0;  // quarantine frames in the corpus
    std::uint64_t bytes = 0;        // final corpus file size
  };

  explicit StreamingCorpusWriter(Options options);

  // Creates the spill directory and opens one spill file per shard.
  [[nodiscard]] util::Status open();

  // Appends one finished flow (or quarantine record) to `shard`'s spill
  // file. Each shard must be driven by exactly one thread at a time
  // (ThreadPool worker identity); distinct shards never contend.
  // `flow_index` is the campaign-wide index and must be unique across all
  // shards — it is the merge key.
  [[nodiscard]] util::Status spill_flow(unsigned shard, std::uint64_t flow_index,
                                        const FlowCapture& capture);
  [[nodiscard]] util::Status spill_quarantine(unsigned shard,
                                              std::uint64_t flow_index,
                                              const QuarantineRecord& record);

  // Closes the shards, k-way-merges them into the final corpus file in
  // flow-index order, and deletes the spill files. Call once, after all
  // spilling is done.
  [[nodiscard]] util::StatusOr<MergeResult> merge();

  std::uint64_t flows_spilled() const {
    return flows_.load(std::memory_order_relaxed);
  }
  std::uint64_t quarantines_spilled() const {
    return quarantines_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_spilled() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  const std::string& corpus_path() const { return options_.corpus_path; }

 private:
  struct Shard {
    std::string path;
    std::ofstream out;
    std::string scratch;  // reused frame-encoding buffer
  };

  [[nodiscard]] util::Status spill_frame(unsigned shard, std::uint64_t flow_index);

  Options options_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> flows_{0};
  std::atomic<std::uint64_t> quarantines_{0};
  std::atomic<std::uint64_t> bytes_{0};
  bool opened_ = false;
  bool merged_ = false;
};

}  // namespace hsr::trace
