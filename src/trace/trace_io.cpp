#include "trace/trace_io.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace hsr::trace {

namespace {

constexpr const char* kMagicV2 = "hsrtrace-v2";
constexpr const char* kMagicV1 = "hsrtrace-v1";

using net::DropCategory;

// Single-character cause codes for the drop column (see trace_io.h).
char category_code(DropCategory category) {
  switch (category) {
    case DropCategory::kUnknown: return '-';
    case DropCategory::kQueueOverflow: return 'Q';
    case DropCategory::kChannelUnattributed: return 'C';
    case DropCategory::kBernoulli: return 'B';
    case DropCategory::kGilbertElliottGood: return 'g';
    case DropCategory::kGilbertElliottBad: return 'G';
    case DropCategory::kFunctionalRadio: return 'R';
    case DropCategory::kScriptedFault: return 'X';
  }
  return '-';
}

bool category_from_code(char code, DropCategory& out) {
  switch (code) {
    case 'Q': out = DropCategory::kQueueOverflow; return true;
    case 'C': out = DropCategory::kChannelUnattributed; return true;
    case 'B': out = DropCategory::kBernoulli; return true;
    case 'g': out = DropCategory::kGilbertElliottGood; return true;
    case 'G': out = DropCategory::kGilbertElliottBad; return true;
    case 'R': out = DropCategory::kFunctionalRadio; return true;
    case 'X': out = DropCategory::kScriptedFault; return true;
    default: return false;
  }
}

// Serializes the structured cause:  <code>[@<component-path>][#<directive>]
// The component path is dotted outermost-first ("1.0"); an unnested drop
// writes a single index ("1"), byte-identical to the pre-path flat schema.
std::string drop_token(const Transmission& tx) {
  if (!tx.drop_cause) return "-";
  std::string out(1, category_code(tx.drop_cause->category));
  if (tx.drop_cause->has_component()) {
    out += '@';
    out += tx.drop_cause->component_path_string();
  }
  if (tx.drop_cause->directive >= 0) {
    out += '#';
    out += std::to_string(tx.drop_cause->directive);
  }
  return out;
}

// Audit labels are single tokens on the wire; whitespace would shift every
// following field, so it is replaced at serialization time.
std::string sanitize_label(const std::string& label) {
  std::string out = label.empty() ? "fault" : label;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return out;
}

void write_direction(std::ostream& os, char dir, const DirectionCapture& cap) {
  for (const auto& tx : cap.transmissions()) {
    os << dir << ' ' << tx.packet.id << ' ' << tx.packet.seq << ' '
       << tx.packet.ack_next << ' ' << tx.packet.size_bytes << ' '
       << tx.sent.ns() << ' ' << (tx.arrived ? tx.arrived->ns() : -1) << ' '
       << drop_token(tx) << ' ' << tx.packet.retx_count << '\n';
  }
}

// --- Tokenized line parsing with positional diagnostics ----------------------

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream ls(line);
  std::string tok;
  while (ls >> tok) tokens.push_back(tok);
  return tokens;
}

// Parses a full-token integer; false on any trailing garbage ("12x") or
// overflow, so bit-flips inside numeric fields are caught, not truncated.
template <typename Int>
bool parse_int(const std::string& token, Int& out) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

util::Status line_error(std::size_t line_number, const std::string& token,
                        const std::string& why) {
  return util::Status::invalid_argument(
      "trace line " + std::to_string(line_number) + ": " + why + " (token '" +
      token + "')");
}

// Parses a v2 drop token into an optional cause. v1 archives use the same
// single-character subset ('-', 'Q', 'C'), so one parser serves both: the
// version only gates which codes a WRITER may emit, and 'C' simply decodes
// to the legacy unattributed category.
bool parse_drop_token(const std::string& token, std::optional<net::DropCause>& out) {
  if (token.empty()) return false;
  if (token == "-") {
    out.reset();
    return true;
  }
  net::DropCause cause;
  if (!category_from_code(token[0], cause.category)) return false;
  std::size_t pos = 1;
  if (pos < token.size() && token[pos] == '@') {
    const std::size_t end = token.find('#', pos + 1);
    const std::string field =
        token.substr(pos + 1, end == std::string::npos ? std::string::npos
                                                       : end - pos - 1);
    // Dotted outermost-first component path ("1.0"). Archives written before
    // nesting support carry a single index — the same spelling as a depth-1
    // path — so one parser reads both generations.
    std::size_t start = 0;
    while (true) {
      const std::size_t dot = field.find('.', start);
      const std::string element =
          field.substr(start, dot == std::string::npos ? std::string::npos
                                                       : dot - start);
      std::int16_t index = -1;
      if (!parse_int(element, index) || index < 0) return false;
      if (cause.component_depth >= net::DropCause::kMaxComponentDepth) return false;
      cause.component_path[cause.component_depth++] = index;
      if (dot == std::string::npos) break;
      start = dot + 1;
    }
    pos = (end == std::string::npos) ? token.size() : end;
  }
  if (pos < token.size() && token[pos] == '#') {
    if (!parse_int(token.substr(pos + 1), cause.directive) || cause.directive < 0) {
      return false;
    }
    pos = token.size();
  }
  if (pos != token.size()) return false;
  out = cause;
  return true;
}

// Parses one `D`/`A` transmission line (tokens past the direction marker).
util::Status parse_transmission(const std::vector<std::string>& tokens,
                                std::size_t line_number, FlowCapture& cap) {
  if (tokens.size() != 9) {
    return line_error(line_number, tokens.empty() ? "" : tokens.back(),
                      "expected 9 fields, got " + std::to_string(tokens.size()));
  }
  Packet p;
  std::int64_t sent_ns = 0;
  std::int64_t arrived_ns = 0;
  std::uint32_t retx = 0;
  if (!parse_int(tokens[1], p.id)) return line_error(line_number, tokens[1], "bad packet id");
  if (!parse_int(tokens[2], p.seq)) return line_error(line_number, tokens[2], "bad seq");
  if (!parse_int(tokens[3], p.ack_next)) {
    return line_error(line_number, tokens[3], "bad ack_next");
  }
  if (!parse_int(tokens[4], p.size_bytes)) {
    return line_error(line_number, tokens[4], "bad size");
  }
  if (!parse_int(tokens[5], sent_ns)) {
    return line_error(line_number, tokens[5], "bad sent time");
  }
  if (!parse_int(tokens[6], arrived_ns)) {
    return line_error(line_number, tokens[6], "bad arrival time");
  }
  std::optional<net::DropCause> cause;
  if (!parse_drop_token(tokens[7], cause)) {
    return line_error(line_number, tokens[7], "bad drop token");
  }
  if (!parse_int(tokens[8], retx)) {
    return line_error(line_number, tokens[8], "bad retx count");
  }

  const char dir = tokens[0][0];
  p.flow = cap.flow;
  p.kind = (dir == 'D') ? net::PacketKind::kData : net::PacketKind::kAck;
  p.retx_count = retx;
  p.is_retransmission = retx > 0;

  DirectionCapture& target = (dir == 'D') ? cap.data : cap.acks;
  target.on_send(p, TimePoint::from_ns(sent_ns));
  if (arrived_ns >= 0) {
    target.on_deliver(p, TimePoint::from_ns(sent_ns), TimePoint::from_ns(arrived_ns));
  } else if (cause) {
    target.on_drop(p, TimePoint::from_ns(sent_ns), *cause);
  }
  // drop == '-' with no arrival: the packet was still in flight when the
  // capture ended; it is neither delivered nor lost.
  return util::Status::ok();
}

// Parses one `F` fault-audit line.
util::Status parse_fault(const std::vector<std::string>& tokens,
                         std::size_t line_number, FlowCapture& cap) {
  if (tokens.size() != 10) {
    return line_error(line_number, tokens.empty() ? "" : tokens.back(),
                      "expected 10 fields, got " + std::to_string(tokens.size()));
  }
  FaultRecord rec;
  std::int64_t when_ns = 0;
  std::int64_t delay_ns = 0;
  if (tokens[1].size() != 1 || (tokens[1][0] != 'D' && tokens[1][0] != 'A')) {
    return line_error(line_number, tokens[1], "bad fault direction");
  }
  rec.direction = tokens[1][0];
  if (!parse_int(tokens[2], when_ns)) return line_error(line_number, tokens[2], "bad time");
  if (!parse_int(tokens[3], rec.packet_id)) {
    return line_error(line_number, tokens[3], "bad packet id");
  }
  if (!parse_int(tokens[4], rec.seq)) return line_error(line_number, tokens[4], "bad seq");
  if (tokens[5].size() != 1 || (tokens[5][0] != 'D' && tokens[5][0] != 'A')) {
    return line_error(line_number, tokens[5], "bad packet kind");
  }
  rec.kind = tokens[5][0] == 'D' ? net::PacketKind::kData : net::PacketKind::kAck;
  if (!parse_int(tokens[6], rec.directive)) {
    return line_error(line_number, tokens[6], "bad directive index");
  }
  if (tokens[7].size() != 1 ||
      (tokens[7][0] != 'X' && tokens[7][0] != 'L' && tokens[7][0] != '2')) {
    return line_error(line_number, tokens[7], "bad fault action");
  }
  rec.action = tokens[7][0];
  if (!parse_int(tokens[8], delay_ns)) {
    return line_error(line_number, tokens[8], "bad fault delay");
  }
  rec.label = tokens[9];
  rec.when = TimePoint::from_ns(when_ns);
  rec.delay = Duration::nanos(delay_ns);
  cap.faults.push_back(std::move(rec));
  return util::Status::ok();
}

}  // namespace

void write_flow_capture(std::ostream& os, const FlowCapture& capture) {
  os << kMagicV2 << " flow=" << capture.flow << '\n';
  write_direction(os, 'D', capture.data);
  write_direction(os, 'A', capture.acks);
  // Fault audit trail, after the transmissions:
  //   F <link-dir> <when_ns> <pkt_id> <seq> <kind> <directive> <action> <delay_ns> <label>
  // where action is 'X' (drop), 'L' (delay) or '2' (duplicate).
  for (const auto& f : capture.faults) {
    os << "F " << f.direction << ' ' << f.when.ns() << ' ' << f.packet_id << ' '
       << f.seq << ' ' << (f.kind == net::PacketKind::kData ? 'D' : 'A') << ' '
       << f.directive << ' ' << f.action << ' ' << f.delay.ns() << ' '
       << sanitize_label(f.label) << '\n';
  }
}

util::StatusOr<FlowCapture> read_flow_capture(std::istream& is) {
  std::string line;
  std::size_t line_number = 1;
  if (!std::getline(is, line)) {
    return util::Status::invalid_argument("trace line 1: empty stream, no header");
  }
  {
    std::istringstream hs(line);
    std::string magic;
    std::string flow_field;
    if (!(hs >> magic >> flow_field) || (magic != kMagicV2 && magic != kMagicV1) ||
        flow_field.rfind("flow=", 0) != 0) {
      return line_error(1, line, "bad trace header");
    }
    net::FlowId flow = 0;
    if (!parse_int(flow_field.substr(5), flow)) {
      return line_error(1, flow_field, "bad flow id");
    }
    FlowCapture cap;
    cap.flow = flow;

    while (std::getline(is, line)) {
      ++line_number;
      // A line that hit EOF before its newline is an unterminated tail —
      // the signature of a truncated archive (killed writer, torn copy).
      const bool unterminated = is.eof();
      if (line.empty()) continue;

      const std::vector<std::string> tokens = split_tokens(line);
      util::Status status = util::Status::ok();
      if (tokens[0] == "D" || tokens[0] == "A") {
        status = parse_transmission(tokens, line_number, cap);
      } else if (tokens[0] == "F") {
        status = parse_fault(tokens, line_number, cap);
      } else {
        status = line_error(line_number, tokens[0], "unknown record type");
      }
      if (!status.is_ok()) {
        if (unterminated) {
          // Truncation-tolerant read: drop the torn final line and return
          // the records parsed so far, so a partial archive stays analyzable
          // instead of poisoning re-analysis of the whole corpus.
          break;
        }
        return status;
      }
    }
    return cap;
  }
}

util::Status save_flow_capture(util::Fs& fs, const std::string& path,
                               const FlowCapture& capture) {
  // Serialize in memory, then hand the bytes to the atomic-write helper:
  // tmp + fsync + rename through the seam, so a killed run leaves either the
  // old archive or the complete new one — never a half-written file under
  // the real name.
  std::ostringstream content;
  write_flow_capture(content, capture);
  return util::write_file_atomic(fs, path, content.str());
}

util::Status save_flow_capture(const std::string& path, const FlowCapture& capture) {
  return save_flow_capture(util::Fs::real(), path, capture);
}

util::StatusOr<FlowCapture> load_flow_capture(const std::string& path) {
  std::ifstream f(path);
  if (!f) return util::Status::not_found("cannot open: " + path);
  return read_flow_capture(f);
}

}  // namespace hsr::trace
