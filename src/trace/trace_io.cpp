#include "trace/trace_io.h"

#include <fstream>
#include <sstream>

namespace hsr::trace {

namespace {

constexpr const char* kMagic = "hsrtrace-v1";

// Fate codes: '-' = no fate recorded (still in flight at capture end),
// 'Q' = queue drop, 'C' = channel loss.
char drop_code(const Transmission& tx) {
  if (!tx.drop_reason) return '-';
  return *tx.drop_reason == DropReason::kQueueOverflow ? 'Q' : 'C';
}

void write_direction(std::ostream& os, char dir, const DirectionCapture& cap) {
  for (const auto& tx : cap.transmissions()) {
    os << dir << ' ' << tx.packet.id << ' ' << tx.packet.seq << ' '
       << tx.packet.ack_next << ' ' << tx.packet.size_bytes << ' '
       << tx.sent.ns() << ' ' << (tx.arrived ? tx.arrived->ns() : -1) << ' '
       << drop_code(tx) << ' ' << tx.packet.retx_count << '\n';
  }
}

}  // namespace

void write_flow_capture(std::ostream& os, const FlowCapture& capture) {
  os << kMagic << " flow=" << capture.flow << '\n';
  write_direction(os, 'D', capture.data);
  write_direction(os, 'A', capture.acks);
}

util::StatusOr<FlowCapture> read_flow_capture(std::istream& is) {
  std::string magic;
  std::string flow_field;
  if (!(is >> magic >> flow_field) || magic != kMagic ||
      flow_field.rfind("flow=", 0) != 0) {
    return util::Status::invalid_argument("bad trace header");
  }
  FlowCapture cap;
  cap.flow = static_cast<net::FlowId>(std::stoul(flow_field.substr(5)));

  std::string line;
  std::getline(is, line);  // consume header remainder
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char dir = 0;
    char drop = 0;
    std::int64_t sent_ns = 0;
    std::int64_t arrived_ns = 0;
    Packet p;
    std::uint32_t retx = 0;
    if (!(ls >> dir >> p.id >> p.seq >> p.ack_next >> p.size_bytes >> sent_ns >>
          arrived_ns >> drop >> retx)) {
      return util::Status::invalid_argument("bad trace line: " + line);
    }
    p.flow = cap.flow;
    p.kind = (dir == 'D') ? net::PacketKind::kData : net::PacketKind::kAck;
    p.retx_count = retx;
    p.is_retransmission = retx > 0;

    DirectionCapture& target = (dir == 'D') ? cap.data : cap.acks;
    target.on_send(p, TimePoint::from_ns(sent_ns));
    if (arrived_ns >= 0) {
      target.on_deliver(p, TimePoint::from_ns(sent_ns), TimePoint::from_ns(arrived_ns));
    } else if (drop != '-') {
      target.on_drop(p, TimePoint::from_ns(sent_ns),
                     drop == 'Q' ? DropReason::kQueueOverflow : DropReason::kChannelLoss);
    }
    // drop == '-' with no arrival: the packet was still in flight when the
    // capture ended; it is neither delivered nor lost.
  }
  return cap;
}

util::Status save_flow_capture(const std::string& path, const FlowCapture& capture) {
  std::ofstream f(path);
  if (!f) return util::Status::internal("cannot open for write: " + path);
  write_flow_capture(f, capture);
  return util::Status::ok();
}

util::StatusOr<FlowCapture> load_flow_capture(const std::string& path) {
  std::ifstream f(path);
  if (!f) return util::Status::not_found("cannot open: " + path);
  return read_flow_capture(f);
}

}  // namespace hsr::trace
