// Binary columnar serialization of flow captures ("hsrtrace-b2").
//
// The text format (trace_io.h, "hsrtrace-v2") spends ~55 bytes per
// transmission on human-readable decimal; at the 10^5-10^6-flow campaign
// scale that text I/O — not the simulator — becomes the wall. hsrtrace-b1
// stores the same records as per-direction structure-of-arrays columns
// (ids, seqs, ack_next, sizes, retransmission counts, send times, fate
// tags, transit times, DropCause path codes), each column delta- and
// varint-coded — and the near-constant columns (sizes, retransmission
// counts, fate tags) run-length coded on top — which makes archives several
// times smaller and much faster to write and read. The two formats are losslessly interconvertible: the
// binary reader rebuilds the exact FlowCapture the text writer would
// serialize, byte for byte (pinned by tests and `trace_query convert`).
//
// File layout (v2, the current write format):
//   header   12-byte magic "hsrtrace-b2\n", then u64 LE flow-frame count
//            (kUnknownFlowCount while a stream is still being appended to;
//            the merge step of the chunked corpus writer knows the real count)
//   frames   { u8 type, u32 LE crc32c, u64 LE seq, u64 LE payload size,
//              payload }
// where `seq` is the frame's 0-based ordinal in the file (every frame type
// counts) and the CRC-32C covers everything after the crc field — type,
// seq, size and payload — so corruption anywhere in a frame, including its
// length, is detected and NAMED (frame index + reason) instead of silently
// cascading. v1 files ("hsrtrace-b1\n", frames { u8 type, u64 LE size,
// payload } with no checksum) remain fully readable.
// Frame types:
//   'F' one flow capture (columnar payload, see trace_binary.cpp)
//   'Q' one quarantine record: a flow that failed during generation, with
//       its diagnostic Status and per-direction fault-plan text, so a
//       partial corpus archive explains its own gaps.
// Unknown frame types are integrity-checked, then skipped (forward
// compatibility; chunk files use 'S' sidecar frames this way). A frame cut
// short by EOF is a torn tail — the signature of a truncated archive — and
// is dropped, with everything before it returned intact; the same tolerance
// the text reader applies to a torn final line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "trace/capture.h"
#include "util/fs.h"
#include "util/status.h"

namespace hsr::trace {

// 12 bytes on the wire (trailing NUL excluded).
inline constexpr char kBinaryTraceMagic[] = "hsrtrace-b2\n";
inline constexpr char kBinaryTraceMagicB1[] = "hsrtrace-b1\n";  // read-only legacy
inline constexpr std::size_t kBinaryTraceMagicSize = 12;
inline constexpr std::uint64_t kUnknownFlowCount = ~std::uint64_t{0};
inline constexpr int kBinaryTraceVersion = 2;

// A flow that was planned but never made it into the corpus: generation
// failed (exception, watchdog) and the campaign quarantined it. Archived in
// the corpus stream so the file is a complete record of the campaign.
struct QuarantineRecord {
  std::uint64_t flow_index = 0;
  std::string provider;
  std::string campaign;
  std::int32_t status_code = 0;  // util::StatusCode as an integer
  std::string message;
  // Portable "hsrfaultplan" text per direction (empty = no scripted faults).
  std::string downlink_plan;
  std::string uplink_plan;
};

// `version` selects the on-disk format; writers emit v2 unless a test or
// conversion explicitly asks for legacy v1 output.
void write_binary_trace_header(std::ostream& os, std::uint64_t flow_count,
                               int version = kBinaryTraceVersion);
// `seq` is the frame's 0-based ordinal in the destination file (v1 ignores
// it — the field does not exist on the wire there).
void write_flow_frame(std::ostream& os, const FlowCapture& capture,
                      std::uint64_t seq, int version = kBinaryTraceVersion);
void write_quarantine_frame(std::ostream& os, const QuarantineRecord& record,
                            std::uint64_t seq, int version = kBinaryTraceVersion);

// Encodes one frame (header + payload) into `out`, replacing its contents.
// Exposed so the chunked corpus writer can append pre-encoded frames and
// the merge step can re-stamp sequence numbers without re-encoding columns.
void encode_flow_frame(const FlowCapture& capture, std::uint64_t seq,
                       std::string& out, int version = kBinaryTraceVersion);
void encode_quarantine_frame(const QuarantineRecord& record, std::uint64_t seq,
                             std::string& out, int version = kBinaryTraceVersion);
// v2 frame of an arbitrary type around an opaque payload (sidecar records).
void encode_raw_frame(char type, std::string_view payload, std::uint64_t seq,
                      std::string& out);

// Decodes a 'Q' frame's payload (as surfaced undecoded by next_raw or the
// chunk merge) back into a QuarantineRecord.
[[nodiscard]] util::Status decode_quarantine_frame_payload(const std::string& payload,
                                                           QuarantineRecord* record);

// Streaming reader: frames are decoded one at a time, so a million-flow
// corpus can be scanned in O(largest single flow) memory.
class BinaryTraceReader {
 public:
  explicit BinaryTraceReader(std::istream& is) : is_(is) {}

  // Validates the magic (either version) and reads the declared flow count.
  [[nodiscard]] util::Status open();
  std::uint64_t declared_flow_count() const { return declared_flow_count_; }
  // 1 or 2 once open() succeeded.
  int version() const { return version_; }

  enum class Frame {
    kFlow,        // *flow was filled
    kQuarantine,  // *quarantine was filled
    kOther,       // next_raw only: a frame of an unrecognized type
    kEnd,         // clean end of stream
    kTorn,        // truncated trailing frame, dropped (terminal)
  };
  // Reads the next frame. Corruption inside a complete frame — a bad v2
  // CRC, an out-of-order sequence number, an implausible length, a payload
  // that fails to decode — is an error naming the frame's index; a frame
  // cut short by EOF is kTorn, after which only kTorn is returned again.
  [[nodiscard]] util::StatusOr<Frame> next(FlowCapture* flow, QuarantineRecord* quarantine);

  // Frame-level access for the merge/verify paths: same integrity checks as
  // next(), but the payload is returned undecoded and unknown frame types
  // are returned as kOther instead of being skipped.
  [[nodiscard]] util::StatusOr<Frame> next_raw(char* type, std::string* payload);

  std::uint64_t flows_read() const { return flows_read_; }
  std::uint64_t frames_read() const { return frames_read_; }

 private:
  // Reads one frame header + payload into type_/payload_ with integrity
  // checks; shares the kEnd/kTorn/error contract of next().
  util::StatusOr<Frame> read_frame();

  std::istream& is_;
  std::uint64_t declared_flow_count_ = kUnknownFlowCount;
  int version_ = kBinaryTraceVersion;
  std::uint64_t frames_read_ = 0;
  std::uint64_t flows_read_ = 0;
  bool torn_ = false;
  char type_ = 0;
  std::string payload_;  // reused frame buffer
};

// Whole-file convenience result.
struct BinaryCorpus {
  std::vector<FlowCapture> flows;
  std::vector<QuarantineRecord> quarantined;
  std::uint64_t declared_flow_count = kUnknownFlowCount;
  bool torn_tail = false;  // a truncated final frame was dropped
};

[[nodiscard]] util::StatusOr<BinaryCorpus> read_binary_corpus(std::istream& is);

// Integrity check of a whole archive without materializing it: every frame
// header and payload is decoded and, for v2, CRC- and sequence-verified.
// The first bad frame fails the scan with its index and reason in the
// Status. A torn tail or a flow count short of the declared header count is
// NOT an error here — it is reported, so callers can distinguish "cleanly
// truncated" from "corrupt".
struct TraceVerifyReport {
  int version = kBinaryTraceVersion;
  std::uint64_t frames = 0;  // complete, verified frames (all types)
  std::uint64_t flows = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t other_frames = 0;
  std::uint64_t declared_flow_count = kUnknownFlowCount;
  bool torn_tail = false;
  // True when every check passed, the tail is whole and the flow count
  // matches the header's declaration (when one was declared).
  bool intact = false;
};
[[nodiscard]] util::StatusOr<TraceVerifyReport> verify_trace_file(const std::string& path);

// Multi-capture archive: `captures` as consecutive flow frames behind one
// header (frame-per-flow, seq 0..n-1). This is how a shared-bottleneck
// scenario's N per-flow captures travel in ONE file; a sweep concatenates
// several scenarios' captures, each scenario starting at a capture with
// flow id 1 (the reader-side grouping key — see tools/fairness_sweep).
void write_capture_archive(std::ostream& os, const std::vector<FlowCapture>& captures);
[[nodiscard]] util::Status save_capture_archive(util::Fs& fs, const std::string& path,
                                                const std::vector<FlowCapture>& captures);
[[nodiscard]] util::Status save_capture_archive(const std::string& path,
                                                const std::vector<FlowCapture>& captures);

// Single-capture file wrappers (header + one flow frame). Saving is atomic
// (write to `<path>.tmp`, fsync, then rename) through the util::Fs seam,
// matching save_flow_capture.
[[nodiscard]] util::Status save_flow_capture_binary(util::Fs& fs, const std::string& path,
                                                    const FlowCapture& capture);
[[nodiscard]] util::Status save_flow_capture_binary(const std::string& path,
                                                    const FlowCapture& capture);
[[nodiscard]] util::StatusOr<FlowCapture> load_flow_capture_binary(const std::string& path);

// Returns true when the stream starts with an hsrtrace-b1 or -b2 magic (the
// stream is rewound either way). Lets tools accept binary and text archives
// from one code path.
bool sniff_binary_trace(std::istream& is);

// Loads flow `nth` (0-based, counting flow frames only) from a trace file
// in EITHER format: binary corpora are scanned frame by frame; text
// archives hold exactly one flow, so any nth > 0 is out of range there.
[[nodiscard]] util::StatusOr<FlowCapture> load_flow_capture_any(const std::string& path,
                                                                std::uint64_t nth = 0);

}  // namespace hsr::trace
