// Binary columnar serialization of flow captures ("hsrtrace-b1").
//
// The text format (trace_io.h, "hsrtrace-v2") spends ~55 bytes per
// transmission on human-readable decimal; at the 10^5-10^6-flow campaign
// scale that text I/O — not the simulator — becomes the wall. hsrtrace-b1
// stores the same records as per-direction structure-of-arrays columns
// (ids, seqs, ack_next, sizes, retransmission counts, send times, fate
// tags, transit times, DropCause path codes), each column delta- and
// varint-coded — and the near-constant columns (sizes, retransmission
// counts, fate tags) run-length coded on top — which makes archives several
// times smaller and much faster to write and read. The two formats are losslessly interconvertible: the
// binary reader rebuilds the exact FlowCapture the text writer would
// serialize, byte for byte (pinned by tests and `trace_query convert`).
//
// File layout:
//   header   12-byte magic "hsrtrace-b1\n", then u64 LE flow-frame count
//            (kUnknownFlowCount while a stream is still being appended to;
//            the merge step of StreamingCorpusWriter patches the real count)
//   frames   { u8 type, u64 LE payload size, payload }
// Frame types:
//   'F' one flow capture (columnar payload, see trace_binary.cpp)
//   'Q' one quarantine record: a flow that failed during generation, with
//       its diagnostic Status and per-direction fault-plan text, so a
//       partial corpus archive explains its own gaps.
// Unknown frame types are skipped (forward compatibility). A frame whose
// header or payload hits EOF is a torn tail — the signature of a truncated
// archive — and is dropped, with everything before it returned intact;
// the same tolerance the text reader applies to a torn final line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/capture.h"
#include "util/status.h"

namespace hsr::trace {

// 12 bytes on the wire (trailing NUL excluded).
inline constexpr char kBinaryTraceMagic[] = "hsrtrace-b1\n";
inline constexpr std::size_t kBinaryTraceMagicSize = 12;
inline constexpr std::uint64_t kUnknownFlowCount = ~std::uint64_t{0};

// A flow that was planned but never made it into the corpus: generation
// failed (exception, watchdog) and the campaign quarantined it. Archived in
// the corpus stream so the file is a complete record of the campaign.
struct QuarantineRecord {
  std::uint64_t flow_index = 0;
  std::string provider;
  std::string campaign;
  std::int32_t status_code = 0;  // util::StatusCode as an integer
  std::string message;
  // Portable "hsrfaultplan" text per direction (empty = no scripted faults).
  std::string downlink_plan;
  std::string uplink_plan;
};

void write_binary_trace_header(std::ostream& os, std::uint64_t flow_count);
void write_flow_frame(std::ostream& os, const FlowCapture& capture);
void write_quarantine_frame(std::ostream& os, const QuarantineRecord& record);

// Encodes one flow frame (type byte + size + payload) into `out`, replacing
// its contents. Exposed so StreamingCorpusWriter can spill pre-encoded
// frames and the merge step can copy them verbatim.
void encode_flow_frame(const FlowCapture& capture, std::string& out);
void encode_quarantine_frame(const QuarantineRecord& record, std::string& out);

// Streaming reader: frames are decoded one at a time, so a million-flow
// corpus can be scanned in O(largest single flow) memory.
class BinaryTraceReader {
 public:
  explicit BinaryTraceReader(std::istream& is) : is_(is) {}

  // Validates the magic and reads the declared flow count.
  [[nodiscard]] util::Status open();
  std::uint64_t declared_flow_count() const { return declared_flow_count_; }

  enum class Frame {
    kFlow,        // *flow was filled
    kQuarantine,  // *quarantine was filled
    kEnd,         // clean end of stream
    kTorn,        // truncated trailing frame, dropped (terminal)
  };
  // Reads the next frame. Corruption inside a complete frame is an error
  // with the frame's index in the message; a frame cut short by EOF is
  // kTorn, after which only kTorn is returned again.
  [[nodiscard]] util::StatusOr<Frame> next(FlowCapture* flow, QuarantineRecord* quarantine);

  std::uint64_t flows_read() const { return flows_read_; }

 private:
  std::istream& is_;
  std::uint64_t declared_flow_count_ = kUnknownFlowCount;
  std::uint64_t frames_read_ = 0;
  std::uint64_t flows_read_ = 0;
  bool torn_ = false;
  std::string payload_;  // reused frame buffer
};

// Whole-file convenience result.
struct BinaryCorpus {
  std::vector<FlowCapture> flows;
  std::vector<QuarantineRecord> quarantined;
  std::uint64_t declared_flow_count = kUnknownFlowCount;
  bool torn_tail = false;  // a truncated final frame was dropped
};

[[nodiscard]] util::StatusOr<BinaryCorpus> read_binary_corpus(std::istream& is);

// Single-capture file wrappers (header + one flow frame). Saving is atomic
// (write to `<path>.tmp`, then rename), matching save_flow_capture.
[[nodiscard]] util::Status save_flow_capture_binary(const std::string& path,
                                                    const FlowCapture& capture);
[[nodiscard]] util::StatusOr<FlowCapture> load_flow_capture_binary(const std::string& path);

// Returns true when the stream starts with the hsrtrace-b1 magic (the
// stream is rewound either way). Lets tools accept both formats from one
// code path.
bool sniff_binary_trace(std::istream& is);

// Loads flow `nth` (0-based, counting flow frames only) from a trace file
// in EITHER format: binary corpora are scanned frame by frame; text
// archives hold exactly one flow, so any nth > 0 is out of range there.
[[nodiscard]] util::StatusOr<FlowCapture> load_flow_capture_any(const std::string& path,
                                                                std::uint64_t nth = 0);

}  // namespace hsr::trace
