#include "trace/capture.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace hsr::trace {

void DirectionCapture::on_send(const Packet& packet, TimePoint when) {
  Transmission tx;
  tx.packet = packet;
  tx.sent = when;
  index_by_id_[packet.id] = txs_.size();
  txs_.push_back(std::move(tx));
}

void DirectionCapture::on_drop(const Packet& packet, TimePoint when,
                               const DropCause& cause) {
  (void)when;
  const auto it = index_by_id_.find(packet.id);
  HSR_CHECK_MSG(it != index_by_id_.end(), "drop for unseen packet");
  txs_[it->second].drop_cause = cause;
  ++lost_;
}

void DirectionCapture::on_deliver(const Packet& packet, TimePoint sent, TimePoint arrived) {
  (void)sent;
  const auto it = index_by_id_.find(packet.id);
  HSR_CHECK_MSG(it != index_by_id_.end(), "delivery for unseen packet");
  txs_[it->second].arrived = arrived;
}

Duration DirectionCapture::mean_transit() const {
  std::int64_t total_ns = 0;
  std::int64_t n = 0;
  for (const auto& tx : txs_) {
    if (tx.arrived) {
      total_ns += tx.transit().ns();
      ++n;
    }
  }
  if (n == 0) return Duration::zero();
  return Duration::nanos(total_ns / n);
}

SeqNo FlowCapture::highest_delivered_seq() const {
  SeqNo best = 0;
  for (const auto& tx : data.transmissions()) {
    if (tx.arrived) best = std::max(best, tx.packet.seq);
  }
  return best;
}

std::uint64_t FlowCapture::unique_segments_delivered() const {
  std::set<SeqNo> seen;
  for (const auto& tx : data.transmissions()) {
    if (tx.arrived) seen.insert(tx.packet.seq);
  }
  return seen.size();
}

Duration FlowCapture::span() const {
  TimePoint first = TimePoint::max();
  TimePoint last = TimePoint::zero();
  auto scan = [&](const DirectionCapture& dir) {
    for (const auto& tx : dir.transmissions()) {
      first = std::min(first, tx.sent);
      last = std::max(last, tx.sent);
      if (tx.arrived) last = std::max(last, *tx.arrived);
    }
  };
  scan(data);
  scan(acks);
  if (first == TimePoint::max()) return Duration::zero();
  return last - first;
}

Duration FlowCapture::estimated_rtt() const {
  return data.mean_transit() + acks.mean_transit();
}

}  // namespace hsr::trace
