#include "trace/capture.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace hsr::trace {

void FlowCapture::reserve_for(Duration duration, double data_rate_bps,
                              std::uint32_t mss_bytes) {
  if (duration <= Duration::zero() || data_rate_bps <= 0.0 || mss_bytes == 0) {
    return;
  }
  const double segments =
      duration.to_seconds() * data_rate_bps / (8.0 * static_cast<double>(mss_bytes));
  // Full saturated-link estimate, clamped. (This used to reserve a quarter
  // tranche and let vector doubling absorb the rest; the growth that saved
  // memory up front cost reallocations mid-flow, which the steady-state
  // zero-allocation contract — FlowAllocTest, bench_hotpath — now forbids.)
  const std::size_t data_reserve = std::clamp(
      segments >= static_cast<double>(kMaxReserveTx)
          ? kMaxReserveTx
          : static_cast<std::size_t>(segments),
      kMinReserveTx, kMaxReserveTx);
  data.reserve(data_reserve);
  // ACK-direction upper bound: the receiver never sends more ACKs than it
  // received segments (quickack and the delack timer only close the gap
  // toward one-per-segment), so the data-side estimate covers ACKs too.
  acks.reserve(data_reserve);
}

void FlowCapture::reserve_id_space(std::size_t expected_ids) {
  data.reserve_ids(expected_ids);
  acks.reserve_ids(expected_ids);
}

void DirectionCapture::reserve(std::size_t expected_transmissions) {
  txs_.reserve(expected_transmissions);
  // Ids are drawn from one per-flow counter shared by both directions, so
  // the id index spans roughly twice this direction's own traffic.
  index_of_id_.reserve(expected_transmissions * 2);
}

void DirectionCapture::reserve_ids(std::size_t expected_ids) {
  index_of_id_.reserve(expected_ids);
}

void DirectionCapture::on_send(const Packet& packet, TimePoint when) {
  // Record in place: no Transmission temporary on the per-packet path.
  if (packet.id >= index_of_id_.size()) {
    index_of_id_.resize(packet.id + 1, 0);
  }
  index_of_id_[packet.id] = txs_.size() + 1;
  Transmission& tx = txs_.emplace_back();
  tx.packet = packet;
  tx.sent = when;
}

std::size_t DirectionCapture::index_of(std::uint64_t packet_id) const {
  const std::size_t slot =
      packet_id < index_of_id_.size() ? index_of_id_[packet_id] : 0;
  HSR_CHECK_MSG(slot != 0, "fate report for unseen packet");
  return slot - 1;
}

void DirectionCapture::on_drop(const Packet& packet, TimePoint when,
                               const DropCause& cause) {
  (void)when;
  txs_[index_of(packet.id)].drop_cause = cause;
  ++lost_;
}

void DirectionCapture::on_deliver(const Packet& packet, TimePoint sent, TimePoint arrived) {
  (void)sent;
  txs_[index_of(packet.id)].arrived = arrived;
}

Duration DirectionCapture::mean_transit() const {
  std::int64_t total_ns = 0;
  std::int64_t n = 0;
  for (const auto& tx : txs_) {
    if (tx.arrived) {
      total_ns += tx.transit().ns();
      ++n;
    }
  }
  if (n == 0) return Duration::zero();
  return Duration::nanos(total_ns / n);
}

SeqNo FlowCapture::highest_delivered_seq() const {
  SeqNo best = 0;
  for (const auto& tx : data.transmissions()) {
    if (tx.arrived) best = std::max(best, tx.packet.seq);
  }
  return best;
}

std::uint64_t FlowCapture::unique_segments_delivered() const {
  std::set<SeqNo> seen;
  for (const auto& tx : data.transmissions()) {
    if (tx.arrived) seen.insert(tx.packet.seq);
  }
  return seen.size();
}

Duration FlowCapture::span() const {
  TimePoint first = TimePoint::max();
  TimePoint last = TimePoint::zero();
  auto scan = [&](const DirectionCapture& dir) {
    for (const auto& tx : dir.transmissions()) {
      first = std::min(first, tx.sent);
      last = std::max(last, tx.sent);
      if (tx.arrived) last = std::max(last, *tx.arrived);
    }
  };
  scan(data);
  scan(acks);
  if (first == TimePoint::max()) return Duration::zero();
  return last - first;
}

Duration FlowCapture::estimated_rtt() const {
  return data.mean_transit() + acks.mean_transit();
}

}  // namespace hsr::trace
