// Text serialization of flow captures, so traces can be archived, diffed and
// re-analyzed offline (the role pcap files played in the paper's workflow).
//
// Format v2 ("hsrtrace-v2"): a header line, then one line per transmission:
//   <dir> <pkt_id> <seq> <ack_next> <size> <sent_ns> <arrived_ns|-1> <drop> <retx>
// where dir is D (data) or A (ack) and drop is a structured cause token:
//   '-'                          no fate recorded (in flight at capture end)
//   <code>[@<component-path>][#<directive>]   a cause-coded drop
// with code one of
//   'Q' queue overflow,          'C' channel loss, cause unattributed (v1),
//   'B' Bernoulli loss,          'g' Gilbert–Elliott loss in GOOD state,
//   'G' Gilbert–Elliott loss in BAD state,
//   'R' functional radio loss,   'X' scripted fault,
// `@<component-path>` the dotted, outermost-first index path of the dropping
// component through (possibly nested) CompositeChannels — "1" for a direct
// child at index 1, "1.0" for component 0 of a nested composite at index 1 —
// and `#<directive>` the index of the scripted FaultPlan directive, each
// present only when recorded. Unnested paths are spelled exactly like the
// pre-path flat index, so archives written before nested attribution parse
// (and round-trip) unchanged. Lost packets have arrived_ns = -1 (exactly the
// convention of the paper's Fig. 1). Scripted-fault audit records follow as
// `F` lines:
//   F <link-dir> <when_ns> <pkt_id> <seq> <kind> <directive> <action> <delay_ns> <label>
//
// Readers also accept v1 archives ("hsrtrace-v1"), whose drop column only
// distinguished 'Q' (queue) from 'C' (channel): 'C' maps to the
// kChannelUnattributed legacy category.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/capture.h"
#include "util/fs.h"
#include "util/status.h"

namespace hsr::trace {

void write_flow_capture(std::ostream& os, const FlowCapture& capture);

// Parses a capture (v2 or legacy v1). Corrupt records fail with the line
// number and the offending token in the Status message. A torn FINAL line
// (EOF before its newline — the signature of a truncated archive) is
// tolerated: the partial record is dropped and the capture parsed so far is
// returned.
[[nodiscard]] util::StatusOr<FlowCapture> read_flow_capture(std::istream& is);

// Convenience file wrappers. Saving is atomic (write to `<path>.tmp`, fsync,
// then rename into place) through the util::Fs seam, so a killed run never
// leaves a half-written archive under the real name and crash-safety tests
// can script the I/O. The seamless overload uses util::Fs::real().
[[nodiscard]] util::Status save_flow_capture(util::Fs& fs, const std::string& path,
                                             const FlowCapture& capture);
[[nodiscard]] util::Status save_flow_capture(const std::string& path, const FlowCapture& capture);
[[nodiscard]] util::StatusOr<FlowCapture> load_flow_capture(const std::string& path);

}  // namespace hsr::trace
