// Text serialization of flow captures, so traces can be archived, diffed and
// re-analyzed offline (the role pcap files played in the paper's workflow).
//
// Format: a header line, then one line per transmission:
//   <dir> <pkt_id> <seq> <ack_next> <size> <sent_ns> <arrived_ns|-1> <drop> <retx>
// where dir is D (data) or A (ack) and drop is '-', 'Q' (queue) or 'C'
// (channel); lost packets have arrived_ns = -1 (exactly the convention of
// the paper's Fig. 1).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/capture.h"
#include "util/status.h"

namespace hsr::trace {

void write_flow_capture(std::ostream& os, const FlowCapture& capture);
util::StatusOr<FlowCapture> read_flow_capture(std::istream& is);

// Convenience file wrappers.
util::Status save_flow_capture(const std::string& path, const FlowCapture& capture);
util::StatusOr<FlowCapture> load_flow_capture(const std::string& path);

}  // namespace hsr::trace
