// Text serialization of flow captures, so traces can be archived, diffed and
// re-analyzed offline (the role pcap files played in the paper's workflow).
//
// Format: a header line, then one line per transmission:
//   <dir> <pkt_id> <seq> <ack_next> <size> <sent_ns> <arrived_ns|-1> <drop> <retx>
// where dir is D (data) or A (ack) and drop is '-', 'Q' (queue) or 'C'
// (channel); lost packets have arrived_ns = -1 (exactly the convention of
// the paper's Fig. 1). Scripted-fault audit records follow as `F` lines:
//   F <link-dir> <when_ns> <pkt_id> <seq> <kind> <directive> <action> <delay_ns> <label>
#pragma once

#include <iosfwd>
#include <string>

#include "trace/capture.h"
#include "util/status.h"

namespace hsr::trace {

void write_flow_capture(std::ostream& os, const FlowCapture& capture);

// Parses a capture. Corrupt records fail with the line number and the
// offending token in the Status message. A torn FINAL line (EOF before its
// newline — the signature of a truncated archive) is tolerated: the partial
// record is dropped and the capture parsed so far is returned.
util::StatusOr<FlowCapture> read_flow_capture(std::istream& is);

// Convenience file wrappers. Saving is atomic (write to `<path>.tmp`, then
// rename into place), so a killed run never leaves a half-written archive
// under the real name.
util::Status save_flow_capture(const std::string& path, const FlowCapture& capture);
util::StatusOr<FlowCapture> load_flow_capture(const std::string& path);

}  // namespace hsr::trace
