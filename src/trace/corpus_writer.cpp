#include "trace/corpus_writer.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "util/crc32c.h"

namespace hsr::trace {

namespace {

// Header bytes for a b2 stream, as a string (the seam appends strings).
std::string header_bytes(std::uint64_t flow_count) {
  std::ostringstream os;
  write_binary_trace_header(os, flow_count);
  return os.str();
}

}  // namespace

ChunkFileWriter::ChunkFileWriter(util::Fs& fs, std::string path)
    : fs_(fs), path_(std::move(path)), tmp_(path_ + ".tmp") {}

util::Status ChunkFileWriter::open() {
  util::Status status = util::retry_transient([&] {
    auto file = fs_.open_for_write(tmp_);
    if (!file.is_ok()) return file.status();
    file_ = std::move(file.value());
    return util::Status::ok();
  });
  if (!status.is_ok()) return status;
  // Chunk headers declare kUnknownFlowCount: the exact count only exists in
  // the manifest entry, and the merge writes the real total.
  return append_frame_bytes(header_bytes(kUnknownFlowCount));
}

util::Status ChunkFileWriter::append_frame_bytes(const std::string& frame) {
  if (file_ == nullptr) {
    return util::Status::failed_precondition("chunk writer not open: " + tmp_);
  }
  util::Status status =
      util::retry_transient([&] { return file_->append(frame); });
  if (!status.is_ok()) return status;
  // Account only bytes that actually landed — the digest must match the
  // committed file exactly.
  info_.bytes += frame.size();
  info_.crc32c = util::crc32c(info_.crc32c, frame.data(), frame.size());
  return util::Status::ok();
}

util::Status ChunkFileWriter::append_flow(const FlowCapture& capture) {
  encode_flow_frame(capture, next_seq_, scratch_);
  util::Status status = append_frame_bytes(scratch_);
  if (!status.is_ok()) return status;
  ++next_seq_;
  ++info_.flows;
  return util::Status::ok();
}

util::Status ChunkFileWriter::append_quarantine(const QuarantineRecord& record) {
  encode_quarantine_frame(record, next_seq_, scratch_);
  util::Status status = append_frame_bytes(scratch_);
  if (!status.is_ok()) return status;
  ++next_seq_;
  ++info_.quarantines;
  return util::Status::ok();
}

util::Status ChunkFileWriter::append_raw(char type, std::string_view payload) {
  encode_raw_frame(type, payload, next_seq_, scratch_);
  util::Status status = append_frame_bytes(scratch_);
  if (!status.is_ok()) return status;
  ++next_seq_;
  return util::Status::ok();
}

util::StatusOr<ChunkFileWriter::Info> ChunkFileWriter::commit() {
  if (file_ == nullptr) {
    return util::Status::failed_precondition("chunk writer not open: " + tmp_);
  }
  util::Status status = util::retry_transient([&] { return file_->sync(); });
  if (status.is_ok()) status = file_->close();
  file_.reset();
  if (!status.is_ok()) return status;
  status = util::retry_transient([&] { return fs_.rename_file(tmp_, path_); });
  if (!status.is_ok()) return status;
  return info_;
}

void ChunkFileWriter::abandon() {
  if (file_ != nullptr) {
    (void)file_->close();
    file_.reset();
  }
  (void)fs_.remove_file(tmp_);
}

util::StatusOr<CorpusMergeResult> merge_corpus_chunks(
    util::Fs& fs, const std::vector<std::string>& chunk_paths,
    const std::string& corpus_path, std::uint64_t total_flow_frames,
    const std::function<util::Status(char type, const std::string& payload)>&
        on_frame) {
  const std::string tmp = corpus_path + ".tmp";
  std::unique_ptr<util::WritableFile> out;
  util::Status status = util::retry_transient([&] {
    auto file = fs.open_for_write(tmp);
    if (!file.is_ok()) return file.status();
    out = std::move(file.value());
    return util::Status::ok();
  });
  if (!status.is_ok()) return status;

  // Every early return removes the half-written tmp: the destination corpus
  // must never exist in a partial state.
  const auto fail = [&](util::Status s) -> util::StatusOr<CorpusMergeResult> {
    if (out != nullptr) (void)out->close();
    (void)fs.remove_file(tmp);
    return s;
  };

  CorpusMergeResult result;
  const std::string header = header_bytes(total_flow_frames);
  status = util::retry_transient([&] { return out->append(header); });
  if (!status.is_ok()) return fail(status);
  result.bytes = header.size();

  std::uint64_t out_seq = 0;
  std::string scratch;
  char type = 0;
  std::string payload;
  for (const std::string& chunk_path : chunk_paths) {
    std::ifstream in(chunk_path, std::ios::binary);
    if (!in) return fail(util::Status::not_found("cannot open chunk: " + chunk_path));
    BinaryTraceReader reader(in);
    status = reader.open();
    if (!status.is_ok()) {
      return fail(util::Status::invalid_argument(chunk_path + ": " + status.message()));
    }
    for (;;) {
      auto frame = reader.next_raw(&type, &payload);
      if (!frame.is_ok()) {
        return fail(util::Status::invalid_argument(chunk_path + ": " +
                                                   frame.status().message()));
      }
      if (frame.value() == BinaryTraceReader::Frame::kEnd) break;
      if (frame.value() == BinaryTraceReader::Frame::kTorn) {
        // Chunks are committed atomically and digest-verified before a
        // merge, so a torn chunk here is corruption, not a crash artifact.
        return fail(util::Status::invalid_argument(chunk_path + ": torn chunk file"));
      }
      status = on_frame(type, payload);
      if (!status.is_ok()) return fail(status);
      const bool is_flow = frame.value() == BinaryTraceReader::Frame::kFlow;
      const bool is_quarantine =
          frame.value() == BinaryTraceReader::Frame::kQuarantine;
      if (!is_flow && !is_quarantine) continue;  // sidecar: stripped
      // Re-stamp with the corpus-wide ordinal (the CRC is recomputed over
      // the new sequence number).
      encode_raw_frame(type, payload, out_seq, scratch);
      status = util::retry_transient([&] { return out->append(scratch); });
      if (!status.is_ok()) return fail(status);
      ++out_seq;
      result.bytes += scratch.size();
      if (is_flow) ++result.flows;
      if (is_quarantine) ++result.quarantines;
    }
  }

  if (result.flows != total_flow_frames) {
    return fail(util::Status::internal(
        "merge expected " + std::to_string(total_flow_frames) +
        " flow frames, chunks held " + std::to_string(result.flows)));
  }
  status = util::retry_transient([&] { return out->sync(); });
  if (status.is_ok()) status = out->close();
  if (!status.is_ok()) return fail(status);
  out.reset();
  status = util::retry_transient([&] { return fs.rename_file(tmp, corpus_path); });
  if (!status.is_ok()) {
    (void)fs.remove_file(tmp);
    return status;
  }
  return result;
}

util::StatusOr<std::uint32_t> crc32c_of_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::not_found("cannot open: " + path);
  char buf[1 << 16];
  std::uint32_t crc = 0;
  for (;;) {
    in.read(buf, sizeof(buf));
    const std::streamsize got = in.gcount();
    if (got > 0) crc = util::crc32c(crc, buf, static_cast<std::size_t>(got));
    if (got < static_cast<std::streamsize>(sizeof(buf))) break;
  }
  return crc;
}

}  // namespace hsr::trace
