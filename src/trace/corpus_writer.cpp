#include "trace/corpus_writer.h"

#include <cstdio>
#include <filesystem>
#include <limits>

namespace hsr::trace {

namespace {

void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

bool read_u64le(std::istream& is, std::uint64_t& v) {
  unsigned char bytes[8];
  is.read(reinterpret_cast<char*>(bytes), 8);
  if (is.gcount() != 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  return true;
}

// One open spill file being merged: holds the current record so the k-way
// merge can peek at its flow index.
struct MergeSource {
  std::ifstream in;
  std::string path;
  std::uint64_t index = 0;
  std::string frame;
  bool exhausted = false;

  // Loads the next { index, frame } record. Spill files are written and
  // consumed within one process run, so a short read here is corruption,
  // not a torn tail to tolerate.
  util::Status advance() {
    if (!read_u64le(in, index)) {
      if (in.gcount() == 0) {
        exhausted = true;
        return util::Status::ok();
      }
      return util::Status::internal("spill shard truncated: " + path);
    }
    char type = 0;
    if (!in.get(type)) return util::Status::internal("spill shard truncated: " + path);
    std::uint64_t payload_size = 0;
    if (!read_u64le(in, payload_size) ||
        payload_size > std::numeric_limits<std::size_t>::max() / 2) {
      return util::Status::internal("spill shard corrupt: " + path);
    }
    frame.resize(static_cast<std::size_t>(payload_size) + 9);
    frame[0] = type;
    std::uint64_t size_copy = payload_size;
    for (int i = 0; i < 8; ++i) {
      frame[1 + i] = static_cast<char>((size_copy >> (8 * i)) & 0xFF);
    }
    in.read(frame.data() + 9, static_cast<std::streamsize>(payload_size));
    if (in.gcount() != static_cast<std::streamsize>(payload_size)) {
      return util::Status::internal("spill shard truncated: " + path);
    }
    return util::Status::ok();
  }
};

}  // namespace

StreamingCorpusWriter::StreamingCorpusWriter(Options options)
    : options_(std::move(options)) {
  if (options_.spill_dir.empty()) options_.spill_dir = options_.corpus_path + ".spill";
  if (options_.shards == 0) options_.shards = 1;
}

util::Status StreamingCorpusWriter::open() {
  if (opened_) return util::Status::failed_precondition("corpus writer already open");
  std::error_code ec;
  std::filesystem::create_directories(options_.spill_dir, ec);
  if (ec) {
    return util::Status::internal("cannot create spill dir " + options_.spill_dir +
                                  ": " + ec.message());
  }
  shards_.resize(options_.shards);
  for (unsigned i = 0; i < options_.shards; ++i) {
    shards_[i].path =
        options_.spill_dir + "/shard-" + std::to_string(i) + ".hsrspill";
    shards_[i].out.open(shards_[i].path, std::ios::trunc | std::ios::binary);
    if (!shards_[i].out) {
      return util::Status::internal("cannot open spill shard: " + shards_[i].path);
    }
  }
  opened_ = true;
  return util::Status::ok();
}

util::Status StreamingCorpusWriter::spill_frame(unsigned shard,
                                                std::uint64_t flow_index) {
  Shard& s = shards_[shard];
  std::string prefix;
  put_u64le(prefix, flow_index);
  s.out.write(prefix.data(), static_cast<std::streamsize>(prefix.size()));
  s.out.write(s.scratch.data(), static_cast<std::streamsize>(s.scratch.size()));
  if (!s.out.good()) {
    return util::Status::internal("short write to spill shard: " + s.path);
  }
  bytes_.fetch_add(s.scratch.size(), std::memory_order_relaxed);
  return util::Status::ok();
}

util::Status StreamingCorpusWriter::spill_flow(unsigned shard,
                                               std::uint64_t flow_index,
                                               const FlowCapture& capture) {
  if (!opened_ || shard >= shards_.size()) {
    return util::Status::failed_precondition("bad shard or writer not open");
  }
  encode_flow_frame(capture, shards_[shard].scratch);
  util::Status status = spill_frame(shard, flow_index);
  if (status.is_ok()) flows_.fetch_add(1, std::memory_order_relaxed);
  return status;
}

util::Status StreamingCorpusWriter::spill_quarantine(unsigned shard,
                                                     std::uint64_t flow_index,
                                                     const QuarantineRecord& record) {
  if (!opened_ || shard >= shards_.size()) {
    return util::Status::failed_precondition("bad shard or writer not open");
  }
  encode_quarantine_frame(record, shards_[shard].scratch);
  util::Status status = spill_frame(shard, flow_index);
  if (status.is_ok()) quarantines_.fetch_add(1, std::memory_order_relaxed);
  return status;
}

util::StatusOr<StreamingCorpusWriter::MergeResult> StreamingCorpusWriter::merge() {
  if (!opened_) return util::Status::failed_precondition("corpus writer not open");
  if (merged_) return util::Status::failed_precondition("corpus already merged");
  merged_ = true;

  for (Shard& s : shards_) {
    s.out.flush();
    if (!s.out.good()) return util::Status::internal("short write to spill shard: " + s.path);
    s.out.close();
  }

  std::vector<MergeSource> sources(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    sources[i].path = shards_[i].path;
    sources[i].in.open(shards_[i].path, std::ios::binary);
    if (!sources[i].in) {
      return util::Status::internal("cannot reopen spill shard: " + sources[i].path);
    }
    util::Status status = sources[i].advance();
    if (!status.is_ok()) return status;
  }

  const std::string tmp = options_.corpus_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) return util::Status::internal("cannot open for write: " + tmp);
    write_binary_trace_header(out, flows_.load(std::memory_order_relaxed));

    // K-way minimum-index merge. Worker shards claim indices from a shared
    // atomic counter, so each source is already sorted; picking the global
    // minimum each round reproduces exact flow-index order regardless of
    // how flows were distributed across shards.
    for (;;) {
      MergeSource* best = nullptr;
      for (MergeSource& src : sources) {
        if (src.exhausted) continue;
        if (best == nullptr || src.index < best->index) best = &src;
      }
      if (best == nullptr) break;
      out.write(best->frame.data(), static_cast<std::streamsize>(best->frame.size()));
      if (!out.good()) return util::Status::internal("short write: " + tmp);
      util::Status status = best->advance();
      if (!status.is_ok()) return status;
    }
    out.flush();
    if (!out.good()) return util::Status::internal("short write: " + tmp);
  }
  if (std::rename(tmp.c_str(), options_.corpus_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status::internal("cannot rename " + tmp + " -> " +
                                  options_.corpus_path);
  }

  for (MergeSource& src : sources) src.in.close();
  std::error_code ec;
  for (const Shard& s : shards_) std::filesystem::remove(s.path, ec);
  std::filesystem::remove(options_.spill_dir, ec);  // only if now empty

  MergeResult result;
  result.flows = flows_.load(std::memory_order_relaxed);
  result.quarantines = quarantines_.load(std::memory_order_relaxed);
  std::error_code size_ec;
  const auto size = std::filesystem::file_size(options_.corpus_path, size_ec);
  result.bytes = size_ec ? 0 : static_cast<std::uint64_t>(size);
  return result;
}

}  // namespace hsr::trace
