// Packet capture: the simulation's substitute for the paper's wireshark /
// shark captures at the phone and the server.
//
// A DirectionCapture taps one link and records every transmission together
// with its fate (delivered at some time, or lost). A FlowCapture bundles the
// data direction and the ACK direction of one TCP flow. The analysis module
// consumes these records exactly as the paper's methodology consumes
// endpoint captures; it must not peek at the stack's internal state.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/link.h"
#include "net/packet.h"
#include "util/time.h"

namespace hsr::trace {

using net::DropReason;
using net::Packet;
using net::SeqNo;
using util::Duration;
using util::TimePoint;

// One packet put on the wire, with its observed fate.
struct Transmission {
  Packet packet;                       // header as sent
  TimePoint sent;
  std::optional<TimePoint> arrived;    // nullopt => lost
  std::optional<DropReason> drop_reason;

  bool lost() const { return !arrived.has_value(); }
  // One-way transit time; only valid when delivered.
  Duration transit() const { return *arrived - sent; }
};

class DirectionCapture final : public net::LinkTap {
 public:
  void on_send(const Packet& packet, TimePoint when) override;
  void on_drop(const Packet& packet, TimePoint when, DropReason reason) override;
  void on_deliver(const Packet& packet, TimePoint sent, TimePoint arrived) override;

  const std::vector<Transmission>& transmissions() const { return txs_; }

  std::uint64_t sent_count() const { return txs_.size(); }
  std::uint64_t lost_count() const { return lost_; }
  double loss_rate() const {
    return txs_.empty() ? 0.0
                        : static_cast<double>(lost_) / static_cast<double>(txs_.size());
  }
  // Mean one-way transit time over delivered packets.
  Duration mean_transit() const;

 private:
  std::vector<Transmission> txs_;
  std::unordered_map<std::uint64_t, std::size_t> index_by_id_;
  std::uint64_t lost_ = 0;
};

// Both directions of one flow.
struct FlowCapture {
  net::FlowId flow = 0;
  DirectionCapture data;  // downlink: data segments
  DirectionCapture acks;  // uplink: acknowledgements

  double data_loss_rate() const { return data.loss_rate(); }
  double ack_loss_rate() const { return acks.loss_rate(); }

  // Highest data segment number that reached the receiver at least once.
  SeqNo highest_delivered_seq() const;
  // Count of distinct data segments delivered at least once (goodput basis).
  std::uint64_t unique_segments_delivered() const;
  // Duration from first to last captured event.
  Duration span() const;
  // Estimated path RTT: mean data transit + mean ACK transit.
  Duration estimated_rtt() const;
};

}  // namespace hsr::trace
