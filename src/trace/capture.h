// Packet capture: the simulation's substitute for the paper's wireshark /
// shark captures at the phone and the server.
//
// A DirectionCapture taps one link and records every transmission together
// with its fate (delivered at some time, or lost). A FlowCapture bundles the
// data direction and the ACK direction of one TCP flow. The analysis module
// consumes these records exactly as the paper's methodology consumes
// endpoint captures; it must not peek at the stack's internal state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/link.h"
#include "net/packet.h"
#include "util/time.h"

namespace hsr::trace {

using net::DropCause;
using net::Packet;
using net::SeqNo;
using util::Duration;
using util::TimePoint;

// One scripted fault that fired on a packet (fault::FaultInjector audit
// trail). Stored alongside the transmissions so an archived trace explains
// WHY a packet died or stalled — a channel-loss drop caused by a scripted
// blackout is distinguishable from organic radio loss during re-analysis.
struct FaultRecord {
  TimePoint when;
  char direction = '?';          // 'D' data link, 'A' ACK link
  std::uint64_t packet_id = 0;
  SeqNo seq = 0;                 // seq for data packets, ack_next for ACKs
  net::PacketKind kind = net::PacketKind::kData;
  std::uint32_t directive = 0;   // index of the directive in the FaultPlan
  char action = 'X';             // 'X' drop, 'L' delay, '2' duplicate
  Duration delay;                // extra latency (delay actions only)
  std::string label;             // directive label (no whitespace)
};

// One packet put on the wire, with its observed fate.
struct Transmission {
  Packet packet;                       // header as sent
  TimePoint sent;
  std::optional<TimePoint> arrived;    // nullopt => lost
  // Structured attribution for lost packets: WHY the packet died (category
  // plus composite-component / scripted-directive indices). nullopt for
  // delivered packets and for packets still in flight at capture end.
  std::optional<DropCause> drop_cause;

  bool lost() const { return !arrived.has_value(); }
  // One-way transit time; only valid when delivered.
  Duration transit() const { return *arrived - sent; }
};

class DirectionCapture final : public net::LinkTap {
 public:
  // Pre-sizes the transmission log and its id index for an expected packet
  // count, so steady-state recording appends with no reallocation or rehash
  // churn. Call once before the simulation starts; growth beyond the
  // reservation falls back to the containers' own geometric resizing.
  void reserve(std::size_t expected_transmissions);

  // Pre-sizes only the id→index table. Multi-flow scenarios draw packet ids
  // from ONE shared counter, so every flow's table spans the whole
  // scenario's id space — far beyond the flow's own transmission count that
  // reserve() assumes.
  void reserve_ids(std::size_t expected_ids);

  void on_send(const Packet& packet, TimePoint when) override;
  void on_drop(const Packet& packet, TimePoint when, const DropCause& cause) override;
  void on_deliver(const Packet& packet, TimePoint sent, TimePoint arrived) override;

  const std::vector<Transmission>& transmissions() const { return txs_; }

  std::uint64_t sent_count() const { return txs_.size(); }
  std::uint64_t lost_count() const { return lost_; }
  double loss_rate() const {
    return txs_.empty() ? 0.0
                        : static_cast<double>(lost_) / static_cast<double>(txs_.size());
  }
  // Mean one-way transit time over delivered packets.
  Duration mean_transit() const;

 private:
  // Index of the transmission record for `packet_id` (checked).
  std::size_t index_of(std::uint64_t packet_id) const;

  // Packet id → index into txs_, plus one (0 = id unseen). Ids are assigned
  // densely from 1 within a simulation (net::reset_packet_ids runs at flow
  // start), so a flat vector replaces the former node-based hash map: the
  // per-send lookup structure costs amortized-zero allocations and is
  // pre-sizable by reserve().
  std::vector<std::size_t> index_of_id_;
  std::vector<Transmission> txs_;
  std::uint64_t lost_ = 0;
};

// Both directions of one flow.
struct FlowCapture {
  net::FlowId flow = 0;
  DirectionCapture data;  // downlink: data segments
  DirectionCapture acks;  // uplink: acknowledgements
  // Scripted-fault audit trail, in trigger order (empty for organic runs).
  std::vector<FaultRecord> faults;

  // Flow-duration heuristic reserve: pre-sizes both directions for a flow
  // expected to run `duration` over a data link of `data_rate_bps`, sending
  // `mss_bytes` segments. The estimate assumes a saturated downlink (the
  // paper's bulk downloads), so it is an upper bound for loss- or
  // cwnd-limited flows — and it also bounds the ACK direction, since the
  // receiver never acknowledges more segments than arrived. The full
  // estimate is reserved up front (steady-state capture recording must not
  // reallocate — the zero-allocs-per-event contract), clamped to
  // [kMinReserveTx, kMaxReserveTx] so degenerate configs neither skip the
  // reserve nor overcommit memory.
  void reserve_for(Duration duration, double data_rate_bps,
                   std::uint32_t mss_bytes);

  // Companion to reserve_for in shared-bottleneck scenarios: pre-sizes both
  // directions' id tables for `expected_ids` distinct packet ids (the whole
  // scenario's traffic, all flows, both directions).
  void reserve_id_space(std::size_t expected_ids);

  static constexpr std::size_t kMinReserveTx = 1024;
  static constexpr std::size_t kMaxReserveTx = std::size_t{1} << 20;

  double data_loss_rate() const { return data.loss_rate(); }
  double ack_loss_rate() const { return acks.loss_rate(); }

  // Highest data segment number that reached the receiver at least once.
  SeqNo highest_delivered_seq() const;
  // Count of distinct data segments delivered at least once (goodput basis).
  std::uint64_t unique_segments_delivered() const;
  // Duration from first to last captured event.
  Duration span() const;
  // Estimated path RTT: mean data transit + mean ACK transit.
  Duration estimated_rtt() const;
};

}  // namespace hsr::trace
