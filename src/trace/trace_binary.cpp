#include "trace/trace_binary.h"

#include "trace/trace_io.h"
#include "util/crc32c.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace hsr::trace {

namespace {

using net::DropCategory;

constexpr char kFlowFrame = 'F';
constexpr char kQuarantineFrame = 'Q';
// One frame is one flow (or one quarantine record); anything claiming to be
// larger than this is corruption, not data, and must not drive a giant
// allocation in the reader.
constexpr std::uint64_t kMaxFramePayload = std::uint64_t{1} << 36;  // 64 GiB
// Ids are dense per flow (net::reset_packet_ids runs at flow start), so an
// id beyond this bound is a decode gone off the rails; rejecting it keeps a
// corrupt column from resizing the id index into oblivion.
constexpr std::uint64_t kMaxPlausiblePacketId = std::uint64_t{1} << 40;

// --- little-endian / varint primitives ---------------------------------------

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

// LEB128: 7 value bits per byte, high bit = continuation.
void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

// ZigZag folds signed deltas into small unsigned varints. Encoding operates
// on the two's-complement bit pattern, so u64 wrap-around deltas (sequence
// counters, timestamps) round-trip exactly.
std::uint64_t zigzag(std::uint64_t bits) {
  const auto s = static_cast<std::int64_t>(bits);
  return (static_cast<std::uint64_t>(s) << 1) ^ static_cast<std::uint64_t>(s >> 63);
}

std::uint64_t unzigzag(std::uint64_t v) {
  return (v >> 1) ^ (~(v & 1) + 1);
}

void put_delta(std::string& out, std::uint64_t cur, std::uint64_t& prev) {
  put_varint(out, zigzag(cur - prev));
  prev = cur;
}

// Bounds-checked decode cursor over one frame payload.
struct Cursor {
  const unsigned char* p;
  const unsigned char* end;
  bool fail = false;

  explicit Cursor(const std::string& buf)
      : p(reinterpret_cast<const unsigned char*>(buf.data())),
        end(reinterpret_cast<const unsigned char*>(buf.data()) + buf.size()) {}

  std::uint8_t get_u8() {
    if (p >= end) {
      fail = true;
      return 0;
    }
    return *p++;
  }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (p < end && shift < 64) {
      const std::uint8_t byte = *p++;
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
    fail = true;
    return 0;
  }

  std::uint64_t get_delta(std::uint64_t& prev) {
    prev += unzigzag(get_varint());
    return prev;
  }

  bool get_string(std::string& out) {
    const std::uint64_t n = get_varint();
    if (fail || n > static_cast<std::uint64_t>(end - p)) {
      fail = true;
      return false;
    }
    out.assign(reinterpret_cast<const char*>(p), static_cast<std::size_t>(n));
    p += n;
    return true;
  }

  bool done() const { return !fail && p == end; }
};

// --- flow frame payload -------------------------------------------------------

// Run-length encodes a column as (count, value) varint pairs. The
// near-constant columns (packet sizes, retx counts, fate tags) collapse to a
// handful of bytes per flow this way, where per-entry coding would cost a
// byte per transmission.
template <typename Get>
void put_rle(std::string& out, std::size_t n, Get get) {
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t value = get(i);
    std::size_t run = 1;
    while (i + run < n && get(i + run) == value) ++run;
    put_varint(out, run);
    put_varint(out, value);
    i += run;
  }
}

void encode_direction(const DirectionCapture& cap, std::string& out) {
  const auto& txs = cap.transmissions();
  put_varint(out, txs.size());

  std::uint64_t prev = 0;
  for (const auto& tx : txs) put_delta(out, tx.packet.id, prev);
  prev = 0;
  for (const auto& tx : txs) put_delta(out, tx.packet.seq, prev);
  prev = 0;
  for (const auto& tx : txs) put_delta(out, tx.packet.ack_next, prev);
  put_rle(out, txs.size(), [&](std::size_t i) -> std::uint64_t {
    return txs[i].packet.size_bytes;
  });
  put_rle(out, txs.size(), [&](std::size_t i) -> std::uint64_t {
    return txs[i].packet.retx_count;
  });
  prev = 0;
  for (const auto& tx : txs) {
    put_delta(out, static_cast<std::uint64_t>(tx.sent.ns()), prev);
  }
  // Fate tags: 0 = still in flight at capture end, 1 = delivered, 2 = lost.
  put_rle(out, txs.size(), [&](std::size_t i) -> std::uint64_t {
    return txs[i].arrived ? 1 : (txs[i].drop_cause ? 2 : 0);
  });
  // Delivered column: one-way transit, delta-coded against the previous
  // delivered transit (transits hover around the path delay, so deltas
  // stay small even when absolute transit would not).
  prev = 0;
  for (const auto& tx : txs) {
    if (tx.arrived) {
      put_delta(out, static_cast<std::uint64_t>((*tx.arrived - tx.sent).ns()), prev);
    }
  }
  // Dropped column: the structured DropCause path codes.
  for (const auto& tx : txs) {
    if (tx.arrived || !tx.drop_cause) continue;
    const net::DropCause& cause = *tx.drop_cause;
    put_u8(out, static_cast<std::uint8_t>(cause.category));
    put_u8(out, static_cast<std::uint8_t>(cause.component_depth));
    for (std::size_t i = 0; i < cause.component_depth; ++i) {
      put_varint(out, static_cast<std::uint16_t>(cause.component_path[i]));
    }
    put_varint(out, static_cast<std::uint64_t>(cause.directive) + 1);
  }
}

void encode_flow_payload(const FlowCapture& capture, std::string& out) {
  put_varint(out, capture.flow);
  encode_direction(capture.data, out);
  encode_direction(capture.acks, out);

  put_varint(out, capture.faults.size());
  std::uint64_t prev_when = 0;
  for (const auto& f : capture.faults) {
    put_u8(out, static_cast<std::uint8_t>(f.direction));
    put_u8(out, f.kind == net::PacketKind::kData ? 'D' : 'A');
    put_u8(out, static_cast<std::uint8_t>(f.action));
    put_delta(out, static_cast<std::uint64_t>(f.when.ns()), prev_when);
    put_varint(out, f.packet_id);
    put_varint(out, f.seq);
    put_varint(out, f.directive);
    put_varint(out, static_cast<std::uint64_t>(f.delay.ns()));
    put_varint(out, f.label.size());
    out.append(f.label);
  }
}

util::Status frame_error(std::uint64_t frame, const std::string& why) {
  return util::Status::invalid_argument("binary trace frame " + std::to_string(frame) +
                                        ": " + why);
}

// Inverse of put_rle: fills `out` from (count, value) pairs. Rejects zero or
// overshooting run lengths so corrupt input cannot loop or scribble.
bool get_rle(Cursor& c, std::vector<std::uint64_t>& out) {
  std::size_t i = 0;
  while (i < out.size()) {
    const std::uint64_t run = c.get_varint();
    const std::uint64_t value = c.get_varint();
    if (c.fail || run == 0 || run > out.size() - i) return false;
    for (std::uint64_t k = 0; k < run; ++k) out[i++] = value;
  }
  return true;
}

util::Status decode_direction(Cursor& c, std::uint64_t frame, char dir,
                              net::FlowId flow, DirectionCapture& cap) {
  const std::uint64_t n = c.get_varint();
  if (c.fail || n > kMaxPlausiblePacketId) {
    return frame_error(frame, "bad transmission count");
  }
  const std::size_t count = static_cast<std::size_t>(n);

  // Columns are decoded into flat scratch vectors first, then replayed
  // through the capture's own on_send/on_deliver/on_drop so every derived
  // counter (lost totals, id index) is rebuilt exactly as live taps build it.
  std::vector<std::uint64_t> ids(count);
  std::vector<std::uint64_t> seqs(count);
  std::vector<std::uint64_t> acks(count);
  std::vector<std::uint64_t> sizes(count);
  std::vector<std::uint64_t> retx(count);
  std::vector<std::uint64_t> sent(count);
  std::vector<std::uint64_t> fates(count);

  std::uint64_t prev = 0;
  for (auto& v : ids) v = c.get_delta(prev);
  prev = 0;
  for (auto& v : seqs) v = c.get_delta(prev);
  prev = 0;
  for (auto& v : acks) v = c.get_delta(prev);
  if (!get_rle(c, sizes)) return frame_error(frame, "bad size run");
  if (!get_rle(c, retx)) return frame_error(frame, "bad retx run");
  prev = 0;
  for (auto& v : sent) v = c.get_delta(prev);
  if (!get_rle(c, fates)) return frame_error(frame, "bad fate run");
  if (c.fail) return frame_error(frame, "truncated transmission columns");

  cap.reserve(count);
  std::uint64_t prev_transit = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (ids[i] > kMaxPlausiblePacketId) {
      return frame_error(frame, "implausible packet id");
    }
    Packet p;
    p.id = ids[i];
    p.flow = flow;
    p.kind = dir == 'D' ? net::PacketKind::kData : net::PacketKind::kAck;
    p.seq = seqs[i];
    p.ack_next = acks[i];
    if (sizes[i] > std::numeric_limits<std::uint32_t>::max()) {
      return frame_error(frame, "implausible packet size");
    }
    p.size_bytes = static_cast<std::uint32_t>(sizes[i]);
    p.retx_count = static_cast<std::uint32_t>(retx[i]);
    p.is_retransmission = p.retx_count > 0;

    const TimePoint sent_at = TimePoint::from_ns(static_cast<std::int64_t>(sent[i]));
    cap.on_send(p, sent_at);
    if (fates[i] == 1) {
      const std::uint64_t transit = c.get_delta(prev_transit);
      cap.on_deliver(p, sent_at,
                     sent_at + util::Duration::nanos(static_cast<std::int64_t>(transit)));
    } else if (fates[i] > 2) {
      return frame_error(frame, "bad fate tag");
    }
  }

  for (std::size_t i = 0; i < count; ++i) {
    if (fates[i] != 2) continue;
    net::DropCause cause;
    const std::uint8_t category = c.get_u8();
    if (category >= net::kDropCategoryCount) {
      return frame_error(frame, "bad drop category");
    }
    cause.category = static_cast<DropCategory>(category);
    const std::uint8_t depth = c.get_u8();
    if (depth > net::DropCause::kMaxComponentDepth) {
      return frame_error(frame, "bad component depth");
    }
    cause.component_depth = depth;
    for (std::uint8_t d = 0; d < depth; ++d) {
      cause.component_path[d] = static_cast<std::int16_t>(c.get_varint());
    }
    cause.directive = static_cast<std::int32_t>(c.get_varint()) - 1;
    if (c.fail) return frame_error(frame, "truncated drop causes");

    Packet p;
    p.id = ids[i];
    cap.on_drop(p, TimePoint::from_ns(static_cast<std::int64_t>(sent[i])), cause);
  }
  if (c.fail) return frame_error(frame, "truncated direction section");
  return util::Status::ok();
}

util::Status decode_flow_payload(const std::string& payload, std::uint64_t frame,
                                 FlowCapture& cap) {
  Cursor c(payload);
  const std::uint64_t flow = c.get_varint();
  if (c.fail || flow > std::numeric_limits<net::FlowId>::max()) {
    return frame_error(frame, "bad flow id");
  }
  cap.flow = static_cast<net::FlowId>(flow);

  util::Status status = decode_direction(c, frame, 'D', cap.flow, cap.data);
  if (!status.is_ok()) return status;
  status = decode_direction(c, frame, 'A', cap.flow, cap.acks);
  if (!status.is_ok()) return status;

  const std::uint64_t fault_count = c.get_varint();
  if (c.fail || fault_count > kMaxPlausiblePacketId) {
    return frame_error(frame, "bad fault count");
  }
  cap.faults.reserve(static_cast<std::size_t>(fault_count));
  std::uint64_t prev_when = 0;
  for (std::uint64_t i = 0; i < fault_count; ++i) {
    FaultRecord rec;
    rec.direction = static_cast<char>(c.get_u8());
    const std::uint8_t kind = c.get_u8();
    const std::uint8_t action = c.get_u8();
    if (c.fail || (rec.direction != 'D' && rec.direction != 'A') ||
        (kind != 'D' && kind != 'A') ||
        (action != 'X' && action != 'L' && action != '2')) {
      return frame_error(frame, "bad fault record tags");
    }
    rec.kind = kind == 'D' ? net::PacketKind::kData : net::PacketKind::kAck;
    rec.action = static_cast<char>(action);
    rec.when = TimePoint::from_ns(static_cast<std::int64_t>(c.get_delta(prev_when)));
    rec.packet_id = c.get_varint();
    rec.seq = c.get_varint();
    rec.directive = static_cast<std::uint32_t>(c.get_varint());
    rec.delay = util::Duration::nanos(static_cast<std::int64_t>(c.get_varint()));
    if (!c.get_string(rec.label)) return frame_error(frame, "truncated fault label");
    cap.faults.push_back(std::move(rec));
  }
  if (!c.done()) return frame_error(frame, "trailing bytes after flow payload");
  return util::Status::ok();
}

// --- quarantine frame payload -------------------------------------------------

void encode_quarantine_payload(const QuarantineRecord& rec, std::string& out) {
  put_varint(out, rec.flow_index);
  put_varint(out, static_cast<std::uint64_t>(rec.status_code));
  const auto put_string = [&out](const std::string& s) {
    put_varint(out, s.size());
    out.append(s);
  };
  put_string(rec.provider);
  put_string(rec.campaign);
  put_string(rec.message);
  put_string(rec.downlink_plan);
  put_string(rec.uplink_plan);
}

util::Status decode_quarantine_payload(const std::string& payload, std::uint64_t frame,
                                       QuarantineRecord& rec) {
  Cursor c(payload);
  rec.flow_index = c.get_varint();
  rec.status_code = static_cast<std::int32_t>(c.get_varint());
  if (!c.get_string(rec.provider) || !c.get_string(rec.campaign) ||
      !c.get_string(rec.message) || !c.get_string(rec.downlink_plan) ||
      !c.get_string(rec.uplink_plan)) {
    return frame_error(frame, "truncated quarantine record");
  }
  if (!c.done()) return frame_error(frame, "trailing bytes after quarantine record");
  return util::Status::ok();
}

void append_frame(char type, std::string_view payload, std::uint64_t seq,
                  int version, std::string& out) {
  put_u8(out, static_cast<std::uint8_t>(type));
  if (version == 1) {
    put_u64le(out, payload.size());
    out.append(payload);
    return;
  }
  // v2: [type][crc32c][seq][size][payload]; the CRC covers everything after
  // its own field, so a corrupted length cannot silently misframe the rest
  // of the file.
  const std::size_t crc_pos = out.size();
  put_u32le(out, 0);  // patched below
  const std::size_t seq_pos = out.size();
  put_u64le(out, seq);
  put_u64le(out, payload.size());
  out.append(payload);
  std::uint32_t crc = util::crc32c(0, &out[crc_pos - 1], 1);  // type byte
  crc = util::crc32c(crc, out.data() + seq_pos, 16);          // seq + size
  crc = util::crc32c(crc, payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) {
    out[crc_pos + static_cast<std::size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
}

std::string hex32(std::uint32_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 28; shift >= 0; shift -= 4) {
    out.push_back(digits[(v >> shift) & 0xF]);
  }
  return out;
}

}  // namespace

void write_binary_trace_header(std::ostream& os, std::uint64_t flow_count,
                               int version) {
  std::string header;
  header.append(version == 1 ? kBinaryTraceMagicB1 : kBinaryTraceMagic,
                kBinaryTraceMagicSize);
  put_u64le(header, flow_count);
  os.write(header.data(), static_cast<std::streamsize>(header.size()));
}

void encode_flow_frame(const FlowCapture& capture, std::uint64_t seq,
                       std::string& out, int version) {
  out.clear();
  std::string payload;
  encode_flow_payload(capture, payload);
  out.reserve(payload.size() + 21);
  append_frame(kFlowFrame, payload, seq, version, out);
}

void encode_quarantine_frame(const QuarantineRecord& record, std::uint64_t seq,
                             std::string& out, int version) {
  out.clear();
  std::string payload;
  encode_quarantine_payload(record, payload);
  out.reserve(payload.size() + 21);
  append_frame(kQuarantineFrame, payload, seq, version, out);
}

void encode_raw_frame(char type, std::string_view payload, std::uint64_t seq,
                      std::string& out) {
  out.clear();
  out.reserve(payload.size() + 21);
  append_frame(type, payload, seq, kBinaryTraceVersion, out);
}

util::Status decode_quarantine_frame_payload(const std::string& payload,
                                             QuarantineRecord* record) {
  return decode_quarantine_payload(payload, 0, *record);
}

void write_flow_frame(std::ostream& os, const FlowCapture& capture,
                      std::uint64_t seq, int version) {
  std::string frame;
  encode_flow_frame(capture, seq, frame, version);
  os.write(frame.data(), static_cast<std::streamsize>(frame.size()));
}

void write_quarantine_frame(std::ostream& os, const QuarantineRecord& record,
                            std::uint64_t seq, int version) {
  std::string frame;
  encode_quarantine_frame(record, seq, frame, version);
  os.write(frame.data(), static_cast<std::streamsize>(frame.size()));
}

util::Status BinaryTraceReader::open() {
  char magic[kBinaryTraceMagicSize] = {};
  is_.read(magic, kBinaryTraceMagicSize);
  if (is_.gcount() != static_cast<std::streamsize>(kBinaryTraceMagicSize)) {
    return util::Status::invalid_argument("not an hsrtrace stream (bad magic)");
  }
  if (std::memcmp(magic, kBinaryTraceMagic, kBinaryTraceMagicSize) == 0) {
    version_ = 2;
  } else if (std::memcmp(magic, kBinaryTraceMagicB1, kBinaryTraceMagicSize) == 0) {
    version_ = 1;
  } else {
    return util::Status::invalid_argument("not an hsrtrace stream (bad magic)");
  }
  unsigned char count[8] = {};
  is_.read(reinterpret_cast<char*>(count), 8);
  if (is_.gcount() != 8) {
    return util::Status::invalid_argument("hsrtrace header truncated");
  }
  declared_flow_count_ = 0;
  for (int i = 0; i < 8; ++i) {
    declared_flow_count_ |= static_cast<std::uint64_t>(count[i]) << (8 * i);
  }
  return util::Status::ok();
}

util::StatusOr<BinaryTraceReader::Frame> BinaryTraceReader::read_frame() {
  if (torn_) return Frame::kTorn;
  char type = 0;
  if (!is_.get(type)) return Frame::kEnd;

  // v1: [size8]; v2: [crc4][seq8][size8]. Short header reads are a torn
  // tail, exactly like a short payload read.
  unsigned char head[20] = {};
  const std::size_t head_size = version_ == 1 ? 8 : 20;
  is_.read(reinterpret_cast<char*>(head), static_cast<std::streamsize>(head_size));
  if (is_.gcount() != static_cast<std::streamsize>(head_size)) {
    torn_ = true;
    return Frame::kTorn;
  }
  std::uint32_t stored_crc = 0;
  std::uint64_t stored_seq = 0;
  std::uint64_t payload_size = 0;
  const unsigned char* p = head;
  if (version_ != 1) {
    for (int i = 0; i < 4; ++i) stored_crc |= static_cast<std::uint32_t>(*p++) << (8 * i);
    for (int i = 0; i < 8; ++i) stored_seq |= static_cast<std::uint64_t>(*p++) << (8 * i);
  }
  for (int i = 0; i < 8; ++i) payload_size |= static_cast<std::uint64_t>(*p++) << (8 * i);

  const std::uint64_t frame_index = frames_read_++;
  if (payload_size > kMaxFramePayload) {
    return frame_error(frame_index, "implausible frame size (corrupt archive)");
  }
  payload_.resize(static_cast<std::size_t>(payload_size));
  is_.read(payload_.data(), static_cast<std::streamsize>(payload_size));
  if (is_.gcount() != static_cast<std::streamsize>(payload_size)) {
    // The writer died (or the copy was cut) mid-frame: drop the torn tail,
    // keep everything before it — same contract as the text reader's
    // torn-final-line tolerance.
    torn_ = true;
    return Frame::kTorn;
  }

  if (version_ != 1) {
    std::uint32_t crc = util::crc32c(0, &type, 1);
    crc = util::crc32c(crc, head + 4, 16);  // seq + size as read off the wire
    crc = util::crc32c(crc, payload_.data(), payload_.size());
    if (crc != stored_crc) {
      return frame_error(frame_index, "crc32c mismatch (stored " +
                                          hex32(stored_crc) + ", computed " +
                                          hex32(crc) + ")");
    }
    if (stored_seq != frame_index) {
      // A valid checksum with the wrong ordinal means frames were spliced,
      // dropped or reordered — corruption the CRC alone cannot see.
      return frame_error(frame_index, "sequence mismatch (frame carries seq " +
                                          std::to_string(stored_seq) + ")");
    }
  }
  type_ = type;
  return Frame::kOther;  // a complete, verified frame is in type_/payload_
}

util::StatusOr<BinaryTraceReader::Frame> BinaryTraceReader::next(
    FlowCapture* flow, QuarantineRecord* quarantine) {
  for (;;) {
    auto frame = read_frame();
    if (!frame.is_ok()) return frame.status();
    if (frame.value() != Frame::kOther) return frame.value();
    const std::uint64_t frame_index = frames_read_ - 1;

    if (type_ == kFlowFrame) {
      if (flow == nullptr) return frame_error(frame_index, "unexpected flow frame");
      *flow = FlowCapture{};
      util::Status status = decode_flow_payload(payload_, frame_index, *flow);
      if (!status.is_ok()) return status;
      ++flows_read_;
      return Frame::kFlow;
    }
    if (type_ == kQuarantineFrame) {
      if (quarantine == nullptr) {
        return frame_error(frame_index, "unexpected quarantine frame");
      }
      *quarantine = QuarantineRecord{};
      util::Status status =
          decode_quarantine_payload(payload_, frame_index, *quarantine);
      if (!status.is_ok()) return status;
      return Frame::kQuarantine;
    }
    // Unknown frame type: skip (forward compatibility with future records).
  }
}

util::StatusOr<BinaryTraceReader::Frame> BinaryTraceReader::next_raw(
    char* type, std::string* payload) {
  auto frame = read_frame();
  if (!frame.is_ok()) return frame.status();
  if (frame.value() != Frame::kOther) return frame.value();
  *type = type_;
  payload->assign(payload_);
  if (type_ == kFlowFrame) {
    ++flows_read_;
    return Frame::kFlow;
  }
  if (type_ == kQuarantineFrame) return Frame::kQuarantine;
  return Frame::kOther;
}

util::StatusOr<BinaryCorpus> read_binary_corpus(std::istream& is) {
  BinaryTraceReader reader(is);
  util::Status status = reader.open();
  if (!status.is_ok()) return status;

  BinaryCorpus corpus;
  corpus.declared_flow_count = reader.declared_flow_count();
  FlowCapture flow;
  QuarantineRecord quarantine;
  for (;;) {
    auto frame = reader.next(&flow, &quarantine);
    if (!frame.is_ok()) return frame.status();
    switch (frame.value()) {
      case BinaryTraceReader::Frame::kFlow:
        corpus.flows.push_back(std::move(flow));
        break;
      case BinaryTraceReader::Frame::kQuarantine:
        corpus.quarantined.push_back(std::move(quarantine));
        break;
      case BinaryTraceReader::Frame::kOther:  // next() skips unknown types
        break;
      case BinaryTraceReader::Frame::kTorn:
        corpus.torn_tail = true;
        return corpus;
      case BinaryTraceReader::Frame::kEnd:
        return corpus;
    }
  }
}

void write_capture_archive(std::ostream& os, const std::vector<FlowCapture>& captures) {
  write_binary_trace_header(os, captures.size());
  for (std::size_t i = 0; i < captures.size(); ++i) {
    write_flow_frame(os, captures[i], i);
  }
}

util::Status save_capture_archive(util::Fs& fs, const std::string& path,
                                  const std::vector<FlowCapture>& captures) {
  std::ostringstream content;
  write_capture_archive(content, captures);
  return util::write_file_atomic(fs, path, content.str());
}

util::Status save_capture_archive(const std::string& path,
                                  const std::vector<FlowCapture>& captures) {
  return save_capture_archive(util::Fs::real(), path, captures);
}

util::Status save_flow_capture_binary(util::Fs& fs, const std::string& path,
                                      const FlowCapture& capture) {
  std::ostringstream content;
  write_binary_trace_header(content, 1);
  write_flow_frame(content, capture, 0);
  return util::write_file_atomic(fs, path, content.str());
}

util::Status save_flow_capture_binary(const std::string& path,
                                      const FlowCapture& capture) {
  return save_flow_capture_binary(util::Fs::real(), path, capture);
}

util::StatusOr<TraceVerifyReport> verify_trace_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return util::Status::not_found("cannot open: " + path);
  if (!sniff_binary_trace(f)) {
    // Text archives have no frames to checksum; a full parse is the
    // strongest check available.
    auto capture = read_flow_capture(f);
    if (!capture.is_ok()) return capture.status();
    TraceVerifyReport report;
    report.version = 0;
    report.flows = 1;
    report.intact = true;
    return report;
  }

  BinaryTraceReader reader(f);
  util::Status status = reader.open();
  if (!status.is_ok()) return status;

  TraceVerifyReport report;
  report.version = reader.version();
  report.declared_flow_count = reader.declared_flow_count();
  char type = 0;
  std::string payload;
  for (;;) {
    auto frame = reader.next_raw(&type, &payload);
    if (!frame.is_ok()) return frame.status();
    bool done = false;
    switch (frame.value()) {
      case BinaryTraceReader::Frame::kFlow: {
        // Raw integrity passed; decode the columns too, so a corrupt
        // payload that happens to carry a stale CRC cannot hide (and v1
        // frames, which have no CRC, get their only deep check here).
        FlowCapture flow;
        status = decode_flow_payload(payload, reader.frames_read() - 1, flow);
        if (!status.is_ok()) return status;
        ++report.flows;
        break;
      }
      case BinaryTraceReader::Frame::kQuarantine: {
        QuarantineRecord rec;
        status = decode_quarantine_payload(payload, reader.frames_read() - 1, rec);
        if (!status.is_ok()) return status;
        ++report.quarantines;
        break;
      }
      case BinaryTraceReader::Frame::kOther:
        ++report.other_frames;
        break;
      case BinaryTraceReader::Frame::kTorn:
        report.torn_tail = true;
        done = true;
        break;
      case BinaryTraceReader::Frame::kEnd:
        done = true;
        break;
    }
    if (done) break;
  }
  report.frames = report.flows + report.quarantines + report.other_frames;
  report.intact = !report.torn_tail &&
                  (report.declared_flow_count == kUnknownFlowCount ||
                   report.flows == report.declared_flow_count);
  return report;
}

util::StatusOr<FlowCapture> load_flow_capture_binary(const std::string& path) {
  return load_flow_capture_any(path, 0);
}

bool sniff_binary_trace(std::istream& is) {
  char magic[kBinaryTraceMagicSize] = {};
  is.read(magic, kBinaryTraceMagicSize);
  const bool is_binary =
      is.gcount() == static_cast<std::streamsize>(kBinaryTraceMagicSize) &&
      std::memcmp(magic, kBinaryTraceMagic, kBinaryTraceMagicSize) == 0;
  is.clear();
  is.seekg(0);
  return is_binary;
}

util::StatusOr<FlowCapture> load_flow_capture_any(const std::string& path,
                                                  std::uint64_t nth) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return util::Status::not_found("cannot open: " + path);
  if (!sniff_binary_trace(f)) {
    if (nth > 0) {
      return util::Status::out_of_range(
          path + ": text archives hold a single flow (requested flow " +
          std::to_string(nth) + ")");
    }
    return read_flow_capture(f);
  }

  BinaryTraceReader reader(f);
  util::Status status = reader.open();
  if (!status.is_ok()) return status;
  FlowCapture flow;
  QuarantineRecord quarantine;
  for (;;) {
    auto frame = reader.next(&flow, &quarantine);
    if (!frame.is_ok()) return frame.status();
    if (frame.value() == BinaryTraceReader::Frame::kFlow) {
      if (reader.flows_read() == nth + 1) return flow;
      continue;
    }
    if (frame.value() == BinaryTraceReader::Frame::kQuarantine) continue;
    return util::Status::out_of_range(
        path + ": has only " + std::to_string(reader.flows_read()) +
        " flow(s), requested flow " + std::to_string(nth));
  }
}

}  // namespace hsr::trace
