#include "trace/trace_binary.h"

#include "trace/trace_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

namespace hsr::trace {

namespace {

using net::DropCategory;

constexpr char kFlowFrame = 'F';
constexpr char kQuarantineFrame = 'Q';
// One frame is one flow (or one quarantine record); anything claiming to be
// larger than this is corruption, not data, and must not drive a giant
// allocation in the reader.
constexpr std::uint64_t kMaxFramePayload = std::uint64_t{1} << 36;  // 64 GiB
// Ids are dense per flow (net::reset_packet_ids runs at flow start), so an
// id beyond this bound is a decode gone off the rails; rejecting it keeps a
// corrupt column from resizing the id index into oblivion.
constexpr std::uint64_t kMaxPlausiblePacketId = std::uint64_t{1} << 40;

// --- little-endian / varint primitives ---------------------------------------

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

// LEB128: 7 value bits per byte, high bit = continuation.
void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

// ZigZag folds signed deltas into small unsigned varints. Encoding operates
// on the two's-complement bit pattern, so u64 wrap-around deltas (sequence
// counters, timestamps) round-trip exactly.
std::uint64_t zigzag(std::uint64_t bits) {
  const auto s = static_cast<std::int64_t>(bits);
  return (static_cast<std::uint64_t>(s) << 1) ^ static_cast<std::uint64_t>(s >> 63);
}

std::uint64_t unzigzag(std::uint64_t v) {
  return (v >> 1) ^ (~(v & 1) + 1);
}

void put_delta(std::string& out, std::uint64_t cur, std::uint64_t& prev) {
  put_varint(out, zigzag(cur - prev));
  prev = cur;
}

// Bounds-checked decode cursor over one frame payload.
struct Cursor {
  const unsigned char* p;
  const unsigned char* end;
  bool fail = false;

  explicit Cursor(const std::string& buf)
      : p(reinterpret_cast<const unsigned char*>(buf.data())),
        end(reinterpret_cast<const unsigned char*>(buf.data()) + buf.size()) {}

  std::uint8_t get_u8() {
    if (p >= end) {
      fail = true;
      return 0;
    }
    return *p++;
  }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (p < end && shift < 64) {
      const std::uint8_t byte = *p++;
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
    fail = true;
    return 0;
  }

  std::uint64_t get_delta(std::uint64_t& prev) {
    prev += unzigzag(get_varint());
    return prev;
  }

  bool get_string(std::string& out) {
    const std::uint64_t n = get_varint();
    if (fail || n > static_cast<std::uint64_t>(end - p)) {
      fail = true;
      return false;
    }
    out.assign(reinterpret_cast<const char*>(p), static_cast<std::size_t>(n));
    p += n;
    return true;
  }

  bool done() const { return !fail && p == end; }
};

// --- flow frame payload -------------------------------------------------------

// Run-length encodes a column as (count, value) varint pairs. The
// near-constant columns (packet sizes, retx counts, fate tags) collapse to a
// handful of bytes per flow this way, where per-entry coding would cost a
// byte per transmission.
template <typename Get>
void put_rle(std::string& out, std::size_t n, Get get) {
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t value = get(i);
    std::size_t run = 1;
    while (i + run < n && get(i + run) == value) ++run;
    put_varint(out, run);
    put_varint(out, value);
    i += run;
  }
}

void encode_direction(const DirectionCapture& cap, std::string& out) {
  const auto& txs = cap.transmissions();
  put_varint(out, txs.size());

  std::uint64_t prev = 0;
  for (const auto& tx : txs) put_delta(out, tx.packet.id, prev);
  prev = 0;
  for (const auto& tx : txs) put_delta(out, tx.packet.seq, prev);
  prev = 0;
  for (const auto& tx : txs) put_delta(out, tx.packet.ack_next, prev);
  put_rle(out, txs.size(), [&](std::size_t i) -> std::uint64_t {
    return txs[i].packet.size_bytes;
  });
  put_rle(out, txs.size(), [&](std::size_t i) -> std::uint64_t {
    return txs[i].packet.retx_count;
  });
  prev = 0;
  for (const auto& tx : txs) {
    put_delta(out, static_cast<std::uint64_t>(tx.sent.ns()), prev);
  }
  // Fate tags: 0 = still in flight at capture end, 1 = delivered, 2 = lost.
  put_rle(out, txs.size(), [&](std::size_t i) -> std::uint64_t {
    return txs[i].arrived ? 1 : (txs[i].drop_cause ? 2 : 0);
  });
  // Delivered column: one-way transit, delta-coded against the previous
  // delivered transit (transits hover around the path delay, so deltas
  // stay small even when absolute transit would not).
  prev = 0;
  for (const auto& tx : txs) {
    if (tx.arrived) {
      put_delta(out, static_cast<std::uint64_t>((*tx.arrived - tx.sent).ns()), prev);
    }
  }
  // Dropped column: the structured DropCause path codes.
  for (const auto& tx : txs) {
    if (tx.arrived || !tx.drop_cause) continue;
    const net::DropCause& cause = *tx.drop_cause;
    put_u8(out, static_cast<std::uint8_t>(cause.category));
    put_u8(out, static_cast<std::uint8_t>(cause.component_depth));
    for (std::size_t i = 0; i < cause.component_depth; ++i) {
      put_varint(out, static_cast<std::uint16_t>(cause.component_path[i]));
    }
    put_varint(out, static_cast<std::uint64_t>(cause.directive) + 1);
  }
}

void encode_flow_payload(const FlowCapture& capture, std::string& out) {
  put_varint(out, capture.flow);
  encode_direction(capture.data, out);
  encode_direction(capture.acks, out);

  put_varint(out, capture.faults.size());
  std::uint64_t prev_when = 0;
  for (const auto& f : capture.faults) {
    put_u8(out, static_cast<std::uint8_t>(f.direction));
    put_u8(out, f.kind == net::PacketKind::kData ? 'D' : 'A');
    put_u8(out, static_cast<std::uint8_t>(f.action));
    put_delta(out, static_cast<std::uint64_t>(f.when.ns()), prev_when);
    put_varint(out, f.packet_id);
    put_varint(out, f.seq);
    put_varint(out, f.directive);
    put_varint(out, static_cast<std::uint64_t>(f.delay.ns()));
    put_varint(out, f.label.size());
    out.append(f.label);
  }
}

util::Status frame_error(std::uint64_t frame, const std::string& why) {
  return util::Status::invalid_argument("binary trace frame " + std::to_string(frame) +
                                        ": " + why);
}

// Inverse of put_rle: fills `out` from (count, value) pairs. Rejects zero or
// overshooting run lengths so corrupt input cannot loop or scribble.
bool get_rle(Cursor& c, std::vector<std::uint64_t>& out) {
  std::size_t i = 0;
  while (i < out.size()) {
    const std::uint64_t run = c.get_varint();
    const std::uint64_t value = c.get_varint();
    if (c.fail || run == 0 || run > out.size() - i) return false;
    for (std::uint64_t k = 0; k < run; ++k) out[i++] = value;
  }
  return true;
}

util::Status decode_direction(Cursor& c, std::uint64_t frame, char dir,
                              net::FlowId flow, DirectionCapture& cap) {
  const std::uint64_t n = c.get_varint();
  if (c.fail || n > kMaxPlausiblePacketId) {
    return frame_error(frame, "bad transmission count");
  }
  const std::size_t count = static_cast<std::size_t>(n);

  // Columns are decoded into flat scratch vectors first, then replayed
  // through the capture's own on_send/on_deliver/on_drop so every derived
  // counter (lost totals, id index) is rebuilt exactly as live taps build it.
  std::vector<std::uint64_t> ids(count);
  std::vector<std::uint64_t> seqs(count);
  std::vector<std::uint64_t> acks(count);
  std::vector<std::uint64_t> sizes(count);
  std::vector<std::uint64_t> retx(count);
  std::vector<std::uint64_t> sent(count);
  std::vector<std::uint64_t> fates(count);

  std::uint64_t prev = 0;
  for (auto& v : ids) v = c.get_delta(prev);
  prev = 0;
  for (auto& v : seqs) v = c.get_delta(prev);
  prev = 0;
  for (auto& v : acks) v = c.get_delta(prev);
  if (!get_rle(c, sizes)) return frame_error(frame, "bad size run");
  if (!get_rle(c, retx)) return frame_error(frame, "bad retx run");
  prev = 0;
  for (auto& v : sent) v = c.get_delta(prev);
  if (!get_rle(c, fates)) return frame_error(frame, "bad fate run");
  if (c.fail) return frame_error(frame, "truncated transmission columns");

  cap.reserve(count);
  std::uint64_t prev_transit = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (ids[i] > kMaxPlausiblePacketId) {
      return frame_error(frame, "implausible packet id");
    }
    Packet p;
    p.id = ids[i];
    p.flow = flow;
    p.kind = dir == 'D' ? net::PacketKind::kData : net::PacketKind::kAck;
    p.seq = seqs[i];
    p.ack_next = acks[i];
    if (sizes[i] > std::numeric_limits<std::uint32_t>::max()) {
      return frame_error(frame, "implausible packet size");
    }
    p.size_bytes = static_cast<std::uint32_t>(sizes[i]);
    p.retx_count = static_cast<std::uint32_t>(retx[i]);
    p.is_retransmission = p.retx_count > 0;

    const TimePoint sent_at = TimePoint::from_ns(static_cast<std::int64_t>(sent[i]));
    cap.on_send(p, sent_at);
    if (fates[i] == 1) {
      const std::uint64_t transit = c.get_delta(prev_transit);
      cap.on_deliver(p, sent_at,
                     sent_at + util::Duration::nanos(static_cast<std::int64_t>(transit)));
    } else if (fates[i] > 2) {
      return frame_error(frame, "bad fate tag");
    }
  }

  for (std::size_t i = 0; i < count; ++i) {
    if (fates[i] != 2) continue;
    net::DropCause cause;
    const std::uint8_t category = c.get_u8();
    if (category >= net::kDropCategoryCount) {
      return frame_error(frame, "bad drop category");
    }
    cause.category = static_cast<DropCategory>(category);
    const std::uint8_t depth = c.get_u8();
    if (depth > net::DropCause::kMaxComponentDepth) {
      return frame_error(frame, "bad component depth");
    }
    cause.component_depth = depth;
    for (std::uint8_t d = 0; d < depth; ++d) {
      cause.component_path[d] = static_cast<std::int16_t>(c.get_varint());
    }
    cause.directive = static_cast<std::int32_t>(c.get_varint()) - 1;
    if (c.fail) return frame_error(frame, "truncated drop causes");

    Packet p;
    p.id = ids[i];
    cap.on_drop(p, TimePoint::from_ns(static_cast<std::int64_t>(sent[i])), cause);
  }
  if (c.fail) return frame_error(frame, "truncated direction section");
  return util::Status::ok();
}

util::Status decode_flow_payload(const std::string& payload, std::uint64_t frame,
                                 FlowCapture& cap) {
  Cursor c(payload);
  const std::uint64_t flow = c.get_varint();
  if (c.fail || flow > std::numeric_limits<net::FlowId>::max()) {
    return frame_error(frame, "bad flow id");
  }
  cap.flow = static_cast<net::FlowId>(flow);

  util::Status status = decode_direction(c, frame, 'D', cap.flow, cap.data);
  if (!status.is_ok()) return status;
  status = decode_direction(c, frame, 'A', cap.flow, cap.acks);
  if (!status.is_ok()) return status;

  const std::uint64_t fault_count = c.get_varint();
  if (c.fail || fault_count > kMaxPlausiblePacketId) {
    return frame_error(frame, "bad fault count");
  }
  cap.faults.reserve(static_cast<std::size_t>(fault_count));
  std::uint64_t prev_when = 0;
  for (std::uint64_t i = 0; i < fault_count; ++i) {
    FaultRecord rec;
    rec.direction = static_cast<char>(c.get_u8());
    const std::uint8_t kind = c.get_u8();
    const std::uint8_t action = c.get_u8();
    if (c.fail || (rec.direction != 'D' && rec.direction != 'A') ||
        (kind != 'D' && kind != 'A') ||
        (action != 'X' && action != 'L' && action != '2')) {
      return frame_error(frame, "bad fault record tags");
    }
    rec.kind = kind == 'D' ? net::PacketKind::kData : net::PacketKind::kAck;
    rec.action = static_cast<char>(action);
    rec.when = TimePoint::from_ns(static_cast<std::int64_t>(c.get_delta(prev_when)));
    rec.packet_id = c.get_varint();
    rec.seq = c.get_varint();
    rec.directive = static_cast<std::uint32_t>(c.get_varint());
    rec.delay = util::Duration::nanos(static_cast<std::int64_t>(c.get_varint()));
    if (!c.get_string(rec.label)) return frame_error(frame, "truncated fault label");
    cap.faults.push_back(std::move(rec));
  }
  if (!c.done()) return frame_error(frame, "trailing bytes after flow payload");
  return util::Status::ok();
}

// --- quarantine frame payload -------------------------------------------------

void encode_quarantine_payload(const QuarantineRecord& rec, std::string& out) {
  put_varint(out, rec.flow_index);
  put_varint(out, static_cast<std::uint64_t>(rec.status_code));
  const auto put_string = [&out](const std::string& s) {
    put_varint(out, s.size());
    out.append(s);
  };
  put_string(rec.provider);
  put_string(rec.campaign);
  put_string(rec.message);
  put_string(rec.downlink_plan);
  put_string(rec.uplink_plan);
}

util::Status decode_quarantine_payload(const std::string& payload, std::uint64_t frame,
                                       QuarantineRecord& rec) {
  Cursor c(payload);
  rec.flow_index = c.get_varint();
  rec.status_code = static_cast<std::int32_t>(c.get_varint());
  if (!c.get_string(rec.provider) || !c.get_string(rec.campaign) ||
      !c.get_string(rec.message) || !c.get_string(rec.downlink_plan) ||
      !c.get_string(rec.uplink_plan)) {
    return frame_error(frame, "truncated quarantine record");
  }
  if (!c.done()) return frame_error(frame, "trailing bytes after quarantine record");
  return util::Status::ok();
}

void append_frame(char type, const std::string& payload, std::string& out) {
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u64le(out, payload.size());
  out.append(payload);
}

}  // namespace

void write_binary_trace_header(std::ostream& os, std::uint64_t flow_count) {
  std::string header;
  header.append(kBinaryTraceMagic, kBinaryTraceMagicSize);
  put_u64le(header, flow_count);
  os.write(header.data(), static_cast<std::streamsize>(header.size()));
}

void encode_flow_frame(const FlowCapture& capture, std::string& out) {
  out.clear();
  std::string payload;
  encode_flow_payload(capture, payload);
  out.reserve(payload.size() + 9);
  append_frame(kFlowFrame, payload, out);
}

void encode_quarantine_frame(const QuarantineRecord& record, std::string& out) {
  out.clear();
  std::string payload;
  encode_quarantine_payload(record, payload);
  out.reserve(payload.size() + 9);
  append_frame(kQuarantineFrame, payload, out);
}

void write_flow_frame(std::ostream& os, const FlowCapture& capture) {
  std::string frame;
  encode_flow_frame(capture, frame);
  os.write(frame.data(), static_cast<std::streamsize>(frame.size()));
}

void write_quarantine_frame(std::ostream& os, const QuarantineRecord& record) {
  std::string frame;
  encode_quarantine_frame(record, frame);
  os.write(frame.data(), static_cast<std::streamsize>(frame.size()));
}

util::Status BinaryTraceReader::open() {
  char magic[kBinaryTraceMagicSize] = {};
  is_.read(magic, kBinaryTraceMagicSize);
  if (is_.gcount() != static_cast<std::streamsize>(kBinaryTraceMagicSize) ||
      std::memcmp(magic, kBinaryTraceMagic, kBinaryTraceMagicSize) != 0) {
    return util::Status::invalid_argument("not an hsrtrace-b1 stream (bad magic)");
  }
  unsigned char count[8] = {};
  is_.read(reinterpret_cast<char*>(count), 8);
  if (is_.gcount() != 8) {
    return util::Status::invalid_argument("hsrtrace-b1 header truncated");
  }
  declared_flow_count_ = 0;
  for (int i = 0; i < 8; ++i) {
    declared_flow_count_ |= static_cast<std::uint64_t>(count[i]) << (8 * i);
  }
  return util::Status::ok();
}

util::StatusOr<BinaryTraceReader::Frame> BinaryTraceReader::next(
    FlowCapture* flow, QuarantineRecord* quarantine) {
  for (;;) {
    if (torn_) return Frame::kTorn;
    char type = 0;
    if (!is_.get(type)) return Frame::kEnd;

    unsigned char size_bytes[8] = {};
    is_.read(reinterpret_cast<char*>(size_bytes), 8);
    if (is_.gcount() != 8) {
      torn_ = true;
      return Frame::kTorn;
    }
    std::uint64_t payload_size = 0;
    for (int i = 0; i < 8; ++i) {
      payload_size |= static_cast<std::uint64_t>(size_bytes[i]) << (8 * i);
    }
    const std::uint64_t frame_index = frames_read_++;
    if (payload_size > kMaxFramePayload) {
      return frame_error(frame_index, "implausible frame size (corrupt archive)");
    }
    payload_.resize(static_cast<std::size_t>(payload_size));
    is_.read(payload_.data(), static_cast<std::streamsize>(payload_size));
    if (is_.gcount() != static_cast<std::streamsize>(payload_size)) {
      // The writer died (or the copy was cut) mid-frame: drop the torn tail,
      // keep everything before it — same contract as the text reader's
      // torn-final-line tolerance.
      torn_ = true;
      return Frame::kTorn;
    }

    if (type == kFlowFrame) {
      if (flow == nullptr) return frame_error(frame_index, "unexpected flow frame");
      *flow = FlowCapture{};
      util::Status status = decode_flow_payload(payload_, frame_index, *flow);
      if (!status.is_ok()) return status;
      ++flows_read_;
      return Frame::kFlow;
    }
    if (type == kQuarantineFrame) {
      if (quarantine == nullptr) {
        return frame_error(frame_index, "unexpected quarantine frame");
      }
      *quarantine = QuarantineRecord{};
      util::Status status =
          decode_quarantine_payload(payload_, frame_index, *quarantine);
      if (!status.is_ok()) return status;
      return Frame::kQuarantine;
    }
    // Unknown frame type: skip (forward compatibility with future records).
  }
}

util::StatusOr<BinaryCorpus> read_binary_corpus(std::istream& is) {
  BinaryTraceReader reader(is);
  util::Status status = reader.open();
  if (!status.is_ok()) return status;

  BinaryCorpus corpus;
  corpus.declared_flow_count = reader.declared_flow_count();
  FlowCapture flow;
  QuarantineRecord quarantine;
  for (;;) {
    auto frame = reader.next(&flow, &quarantine);
    if (!frame.is_ok()) return frame.status();
    switch (frame.value()) {
      case BinaryTraceReader::Frame::kFlow:
        corpus.flows.push_back(std::move(flow));
        break;
      case BinaryTraceReader::Frame::kQuarantine:
        corpus.quarantined.push_back(std::move(quarantine));
        break;
      case BinaryTraceReader::Frame::kTorn:
        corpus.torn_tail = true;
        return corpus;
      case BinaryTraceReader::Frame::kEnd:
        return corpus;
    }
  }
}

util::Status save_flow_capture_binary(const std::string& path,
                                      const FlowCapture& capture) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc | std::ios::binary);
    if (!f) return util::Status::internal("cannot open for write: " + tmp);
    write_binary_trace_header(f, 1);
    write_flow_frame(f, capture);
    f.flush();
    if (!f.good()) {
      f.close();
      std::remove(tmp.c_str());
      return util::Status::internal("short write: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status::internal("cannot rename " + tmp + " -> " + path);
  }
  return util::Status::ok();
}

util::StatusOr<FlowCapture> load_flow_capture_binary(const std::string& path) {
  return load_flow_capture_any(path, 0);
}

bool sniff_binary_trace(std::istream& is) {
  char magic[kBinaryTraceMagicSize] = {};
  is.read(magic, kBinaryTraceMagicSize);
  const bool is_binary =
      is.gcount() == static_cast<std::streamsize>(kBinaryTraceMagicSize) &&
      std::memcmp(magic, kBinaryTraceMagic, kBinaryTraceMagicSize) == 0;
  is.clear();
  is.seekg(0);
  return is_binary;
}

util::StatusOr<FlowCapture> load_flow_capture_any(const std::string& path,
                                                  std::uint64_t nth) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return util::Status::not_found("cannot open: " + path);
  if (!sniff_binary_trace(f)) {
    if (nth > 0) {
      return util::Status::out_of_range(
          path + ": text archives hold a single flow (requested flow " +
          std::to_string(nth) + ")");
    }
    return read_flow_capture(f);
  }

  BinaryTraceReader reader(f);
  util::Status status = reader.open();
  if (!status.is_ok()) return status;
  FlowCapture flow;
  QuarantineRecord quarantine;
  for (;;) {
    auto frame = reader.next(&flow, &quarantine);
    if (!frame.is_ok()) return frame.status();
    if (frame.value() == BinaryTraceReader::Frame::kFlow) {
      if (reader.flows_read() == nth + 1) return flow;
      continue;
    }
    if (frame.value() == BinaryTraceReader::Frame::kQuarantine) continue;
    return util::Status::out_of_range(
        path + ": has only " + std::to_string(reader.flows_read()) +
        " flow(s), requested flow " + std::to_string(nth));
  }
}

}  // namespace hsr::trace
