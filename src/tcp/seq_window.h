// Flat sequence-window structures backing the TCP endpoints: a power-of-two
// ring of per-segment metadata and a bitmap scoreboard over sequence
// numbers.
//
// Both exploit the same windowing fact: every sequence number a TCP
// endpoint tracks lives in a bounded span above a monotonically advancing
// floor (snd_una at the sender, rcv_next at the receiver). A circular array
// indexed by `seq & mask` therefore replaces the node-based std::map /
// std::set the endpoints used to carry — lookup, mark, rank and
// prefix-erase become O(1)-per-sequence pointer arithmetic with ZERO
// steady-state allocations. Growth (needed only when SACK lets the
// in-flight span outrun the initial window hint — SACKed segments leave the
// pipe estimate, so snd_next can run past snd_una + rwnd) doubles the arena
// and re-places the live slots; it is amortized O(1) and the only path that
// can touch the heap.
//
// See DESIGN.md "Segment ring and flat scoreboard" for the invariants
// (window bound, wrap rules, F-RTO pullback interaction).
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "util/logging.h"
#include "util/time.h"

namespace hsr::tcp {

using net::SeqNo;

// Metadata of one un-acked segment (sender side).
struct SegmentInfo {
  util::TimePoint last_sent;
  std::uint32_t retx_count = 0;
};

// Fixed-capacity ring of SegmentInfo indexed by sequence number. Validity
// is the CALLER's contract: the sender reads only slots inside its live
// window [snd_una, highest_transmitted] and resets a slot on first
// transmission, so slots outside the window may hold stale bytes without
// consequence. Erase-below-una is therefore free (advancing snd_una IS the
// erase), and there is no per-slot occupancy bookkeeping to maintain.
class SegmentRing {
 public:
  // `capacity_hint` slots, rounded up to a power of two (min 64). Size the
  // hint to the advertised window; SACK overshoot grows on demand.
  explicit SegmentRing(std::size_t capacity_hint = 64) {
    const std::size_t cap = std::bit_ceil(std::max<std::size_t>(capacity_hint, 64));
    slots_.assign(cap, SegmentInfo{});
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return slots_.size(); }

  // Slot of `seq`. Only meaningful for sequence numbers inside the caller's
  // live window (or being admitted to it via ensure_window).
  SegmentInfo& at(SeqNo seq) { return slots_[static_cast<std::size_t>(seq & mask_)]; }
  const SegmentInfo& at(SeqNo seq) const {
    return slots_[static_cast<std::size_t>(seq & mask_)];
  }

  // Admits `need` as the new high end of the live window [live_lo, live_hi]
  // (live_hi < live_lo means the window is empty). A no-op while the span
  // fits — the steady state; otherwise doubles and re-places live slots.
  void ensure_window(SeqNo live_lo, SeqNo live_hi, SeqNo need) {
    HSR_DCHECK_MSG(need >= live_lo, "ring window inverted");
    if (need - live_lo < slots_.size()) return;
    grow(live_lo, live_hi, need);
  }

 private:
  // Cold path: never taken while the in-flight span fits the arena.
  void grow(SeqNo live_lo, SeqNo live_hi, SeqNo need) {
    const std::uint64_t span = need - live_lo + 1;
    std::size_t cap = slots_.size();
    while (cap < span) cap *= 2;
    std::vector<SegmentInfo> next(cap);
    const SeqNo next_mask = cap - 1;
    if (live_hi >= live_lo) {
      for (SeqNo s = live_lo; s <= live_hi; ++s) {
        next[static_cast<std::size_t>(s & next_mask)] =
            slots_[static_cast<std::size_t>(s & mask_)];
      }
    }
    slots_ = std::move(next);
    mask_ = next_mask;
  }

  std::vector<SegmentInfo> slots_;
  SeqNo mask_ = 0;
};

// Bitmap scoreboard over sequence numbers at or above an advancing floor —
// the flat replacement for std::set<SeqNo> in the sender's SACK scoreboard
// and the receiver's out-of-order reassembly set.
//
// Physical layout: a power-of-two ring of 64-bit words indexed by
// `(seq / 64) & word_mask`. Invariant: every set bit belongs to a sequence
// number in [base, max_marked], and that span covers at most the ring's
// word count, so the logical→physical word mapping is unambiguous (distinct
// live logical words never alias) and words outside the live span are all
// zero. advance_base() clears every word it passes, which is what keeps the
// all-zero-outside property as the floor sweeps forward (amortized O(1) per
// sequence number passed). The floor itself MAY be marked: a reordered
// cumulative ACK can land below an absorbed SACK block, leaving snd_una
// itself on the scoreboard — exactly like the historical
// `erase(begin, lower_bound(snd_una))` which kept the == entry.
class SeqScoreboard {
 public:
  static constexpr SeqNo kNone = ~SeqNo{0};

  // Scoreboard floored at `base` with room for ~`span_hint` sequence
  // numbers before the first growth.
  explicit SeqScoreboard(SeqNo base = 0, std::size_t span_hint = 256) {
    const std::size_t words =
        std::bit_ceil(std::max<std::size_t>(span_hint / 64 + 2, 4));
    words_.assign(words, 0);
    wmask_ = words - 1;
    base_ = base;
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  SeqNo base() const { return base_; }

  // Highest marked sequence. Callers must check empty() first.
  SeqNo max_marked() const {
    HSR_DCHECK_MSG(count_ > 0, "max_marked on an empty scoreboard");
    return max_;
  }
  // Lowest marked sequence; kNone when empty.
  SeqNo min_marked() const { return next_marked(base_); }

  bool test(SeqNo seq) const {
    if (count_ == 0 || seq < base_ || seq > max_) return false;
    return (word_value(widx(seq)) & bit(seq)) != 0;
  }

  // Marks `seq` (must be >= base()); returns true when newly marked.
  bool mark(SeqNo seq) {
    HSR_DCHECK_MSG(seq >= base_, "mark below the scoreboard floor");
    if (widx(seq) - widx(base_) >= words_.size()) grow(seq);
    std::uint64_t& w = word(widx(seq));
    const std::uint64_t b = bit(seq);
    if ((w & b) != 0) return false;
    w |= b;
    if (count_ == 0 || seq > max_) max_ = seq;
    ++count_;
    return true;
  }

  // Advances the floor, clearing every mark strictly below `new_base`.
  void advance_base(SeqNo new_base) {
    if (new_base <= base_) return;
    if (count_ == 0) {
      base_ = new_base;
      return;
    }
    if (new_base > max_) {
      for (std::uint64_t w = widx(base_); w <= widx(max_); ++w) word(w) = 0;
      count_ = 0;
      base_ = new_base;
      return;
    }
    for (std::uint64_t w = widx(base_); w < widx(new_base); ++w) {
      count_ -= static_cast<std::size_t>(std::popcount(word(w)));
      word(w) = 0;
    }
    std::uint64_t& w = word(widx(new_base));
    const std::uint64_t below = bit(new_base) - 1;  // bits of seqs < new_base
    count_ -= static_cast<std::size_t>(std::popcount(w & below));
    w &= ~below;
    base_ = new_base;
  }

  // Number of marked sequences strictly below `seq` — the rank query behind
  // the SACK pipe estimate. Popcount over at most span/64 words; the
  // historical std::distance over the std::set walked every node.
  std::size_t rank_below(SeqNo seq) const {
    if (count_ == 0 || seq <= base_) return 0;
    if (seq > max_) return count_;
    std::size_t rank = 0;
    for (std::uint64_t w = widx(base_); w < widx(seq); ++w) {
      rank += static_cast<std::size_t>(std::popcount(word_value(w)));
    }
    rank += static_cast<std::size_t>(
        std::popcount(word_value(widx(seq)) & (bit(seq) - 1)));
    return rank;
  }

  // Lowest marked sequence >= `from`; kNone when there is none.
  SeqNo next_marked(SeqNo from) const {
    if (count_ == 0) return kNone;
    const SeqNo f = from < base_ ? base_ : from;
    if (f > max_) return kNone;
    std::uint64_t w = widx(f);
    std::uint64_t cur = word_value(w) & ~(bit(f) - 1);
    while (cur == 0) {
      ++w;
      if (w > widx(max_)) return kNone;
      cur = word_value(w);
    }
    return (w << 6) + static_cast<SeqNo>(std::countr_zero(cur));
  }

  // Lowest UNmarked sequence >= `from` (always exists: max_marked()+1 at
  // the latest). This is retransmit_next_hole's scan primitive.
  SeqNo next_hole(SeqNo from) const {
    if (count_ == 0 || from < base_ || from > max_) return from;
    std::uint64_t w = widx(from);
    std::uint64_t cur = ~word_value(w) & ~(bit(from) - 1);
    while (cur == 0) {
      ++w;
      if (w > widx(max_)) return max_ + 1;
      cur = ~word_value(w);
    }
    return (w << 6) + static_cast<SeqNo>(std::countr_zero(cur));
  }

 private:
  static std::uint64_t widx(SeqNo seq) { return seq >> 6; }
  static std::uint64_t bit(SeqNo seq) { return std::uint64_t{1} << (seq & 63); }
  std::uint64_t& word(std::uint64_t w) { return words_[w & wmask_]; }
  std::uint64_t word_value(std::uint64_t w) const { return words_[w & wmask_]; }

  // Cold path: doubles the word ring until [base, seq] fits, re-placing the
  // live words under the new mask (all-zero slots need no copy).
  void grow(SeqNo seq) {
    const std::uint64_t span = widx(seq) - widx(base_) + 1;
    std::size_t cap = words_.size();
    while (cap < span) cap *= 2;
    std::vector<std::uint64_t> next(cap, 0);
    const std::uint64_t next_mask = cap - 1;
    if (count_ > 0) {
      for (std::uint64_t w = widx(base_); w <= widx(max_); ++w) {
        next[static_cast<std::size_t>(w & next_mask)] = words_[w & wmask_];
      }
    }
    words_ = std::move(next);
    wmask_ = next_mask;
  }

  std::vector<std::uint64_t> words_;
  std::uint64_t wmask_ = 0;
  SeqNo base_ = 0;
  SeqNo max_ = 0;  // meaningful only while count_ > 0
  std::size_t count_ = 0;
};

}  // namespace hsr::tcp
