// Assembles one TCP connection: sender --downlink--> receiver and
// receiver --uplink--> sender, each link with its own channel model.
//
// This mirrors the paper's measurement setup: a server (sender) pushing bulk
// data to a phone (receiver) on the train; the downlink carries data, the
// uplink carries ACKs.
#pragma once

#include <memory>

#include "net/link.h"
#include "sim/simulator.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"

namespace hsr::tcp {

struct ConnectionConfig {
  TcpConfig tcp;
  net::LinkConfig downlink;
  net::LinkConfig uplink;
};

class Connection {
 public:
  Connection(sim::Simulator& sim, FlowId flow, ConnectionConfig config,
             std::unique_ptr<net::ChannelModel> down_channel,
             std::unique_ptr<net::ChannelModel> up_channel);

  // Optional capture taps (wireshark stand-ins); call before start().
  void set_downlink_tap(net::LinkTap* tap) { downlink_.set_tap(tap); }
  void set_uplink_tap(net::LinkTap* tap) { uplink_.set_tap(tap); }

  void start() { sender_.start(); }

  TcpSender& sender() { return sender_; }
  const TcpSender& sender() const { return sender_; }
  TcpReceiver& receiver() { return receiver_; }
  const TcpReceiver& receiver() const { return receiver_; }
  net::Link& downlink() { return downlink_; }
  net::Link& uplink() { return uplink_; }
  FlowId flow() const { return flow_; }

  // Application goodput in segments/second over [0, now].
  double goodput_segments_per_s() const;
  // Application goodput in bits/second over [0, now].
  double goodput_bps() const;

 private:
  sim::Simulator& sim_;
  FlowId flow_;
  ConnectionConfig cfg_;
  net::Link downlink_;
  net::Link uplink_;
  TcpReceiver receiver_;
  TcpSender sender_;
};

}  // namespace hsr::tcp
