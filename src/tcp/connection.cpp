#include "tcp/connection.h"

#include "util/logging.h"

namespace hsr::tcp {

Connection::Connection(sim::Simulator& sim, FlowId flow, ConnectionConfig config,
                       std::unique_ptr<net::ChannelModel> down_channel,
                       std::unique_ptr<net::ChannelModel> up_channel)
    : sim_(sim),
      flow_(flow),
      cfg_(config),
      downlink_(sim, config.downlink, std::move(down_channel)),
      uplink_(sim, config.uplink, std::move(up_channel)),
      receiver_(sim, config.tcp, flow,
                [this](net::Packet p) { uplink_.send(std::move(p)); }),
      sender_(sim, config.tcp, flow,
              [this](net::Packet p) { downlink_.send(std::move(p)); }) {
  HSR_CHECK_MSG(cfg_.tcp.delayed_ack_b >= 1, "delayed_ack_b must be >= 1");
  downlink_.set_receiver([this](const net::Packet& p) { receiver_.on_data(p); });
  uplink_.set_receiver([this](const net::Packet& p) { sender_.on_ack(p); });
}

double Connection::goodput_segments_per_s() const {
  const double elapsed = sim_.now().to_seconds();
  if (elapsed <= 0.0) return 0.0;
  const double goodput =
      static_cast<double>(receiver_.stats().unique_segments) / elapsed;
  // The receiver cannot deliver more unique data than the sender put on the
  // wire — a violation means the stats plumbing (every figure's input) broke.
  HSR_DCHECK_MSG(receiver_.stats().unique_segments <= sender_.stats().segments_sent,
                 "receiver delivered more unique segments than were sent");
  return goodput;
}

double Connection::goodput_bps() const {
  return goodput_segments_per_s() * static_cast<double>(cfg_.tcp.mss_bytes) * 8.0;
}

}  // namespace hsr::tcp
