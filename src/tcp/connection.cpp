#include "tcp/connection.h"

#include "util/logging.h"

namespace hsr::tcp {

namespace {

// The endpoint closures capture one Link pointer each; assert they stay
// inside the callback SBO so wiring a connection never touches the heap
// (the demux endpoints in run_multi_flow carry the same guarantee).
PacketSendFn link_send_fn(net::Link& link) {
  auto fn = [&link](net::Packet p) { link.send(std::move(p)); };
  static_assert(PacketSendFn::holds_inline<decltype(fn)>(),
                "endpoint send closure outgrew the PacketSendFn SBO; "
                "endpoint construction would heap-allocate");
  return fn;
}

}  // namespace

Connection::Connection(sim::Simulator& sim, FlowId flow, ConnectionConfig config,
                       std::unique_ptr<net::ChannelModel> down_channel,
                       std::unique_ptr<net::ChannelModel> up_channel)
    : sim_(sim),
      flow_(flow),
      cfg_(config),
      downlink_(sim, config.downlink, std::move(down_channel)),
      uplink_(sim, config.uplink, std::move(up_channel)),
      receiver_(sim, config.tcp, flow, link_send_fn(uplink_)),
      sender_(sim, config.tcp, flow, link_send_fn(downlink_)) {
  HSR_CHECK_MSG(cfg_.tcp.delayed_ack_b >= 1, "delayed_ack_b must be >= 1");
  downlink_.set_receiver([this](const net::Packet& p) { receiver_.on_data(p); });
  uplink_.set_receiver([this](const net::Packet& p) { sender_.on_ack(p); });
}

double Connection::goodput_segments_per_s() const {
  const double elapsed = sim_.now().to_seconds();
  if (elapsed <= 0.0) return 0.0;
  const double goodput =
      static_cast<double>(receiver_.stats().unique_segments) / elapsed;
  // The receiver cannot deliver more unique data than the sender put on the
  // wire — a violation means the stats plumbing (every figure's input) broke.
  HSR_DCHECK_MSG(receiver_.stats().unique_segments <= sender_.stats().segments_sent,
                 "receiver delivered more unique segments than were sent");
  return goodput;
}

double Connection::goodput_bps() const {
  return goodput_segments_per_s() * static_cast<double>(cfg_.tcp.mss_bytes) * 8.0;
}

}  // namespace hsr::tcp
