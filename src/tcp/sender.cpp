#include "tcp/sender.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace hsr::tcp {

namespace {

// Initial arena hints: cover the advertised window with headroom. With SACK
// the in-flight span can overrun the window (SACKed segments leave the pipe
// estimate, so snd_next runs past snd_una + rwnd); the structures absorb
// that by doubling once instead of paying for the worst case up front.
std::size_t segment_ring_hint(const TcpConfig& cfg) {
  return std::size_t{cfg.receiver_window} * 2;
}
std::size_t scoreboard_span_hint(const TcpConfig& cfg) {
  return std::size_t{cfg.receiver_window} * 4;
}

}  // namespace

const char* sender_event_name(SenderEventType t) {
  switch (t) {
    case SenderEventType::kTimeout: return "TIMEOUT";
    case SenderEventType::kFastRetransmit: return "FAST_RETRANSMIT";
    case SenderEventType::kRecoveryExit: return "RECOVERY_EXIT";
    case SenderEventType::kSlowStartEntered: return "SLOW_START";
  }
  return "?";
}

TcpSender::TcpSender(sim::Simulator& sim, TcpConfig config, FlowId flow,
                     PacketSendFn send_data)
    : sim_(sim),
      cfg_(config),
      flow_(flow),
      send_data_(std::move(send_data)),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.initial_ssthresh),
      sacked_(/*base=*/1, scoreboard_span_hint(config)),
      rto_(config.rto),
      rto_timer_(sim, [this] { on_rto_expired(); }),
      segments_(segment_ring_hint(config)) {
  HSR_CHECK(static_cast<bool>(send_data_));
  HSR_CHECK(cfg_.initial_cwnd >= 1.0);
  HSR_CHECK_MSG(cfg_.initial_ssthresh > 0.0, "non-positive initial ssthresh");
  HSR_CHECK_MSG(cfg_.mss_bytes > 0, "zero MSS");
  HSR_CHECK_MSG(cfg_.receiver_window >= 1, "zero receiver window");
  check_invariants();
}

void TcpSender::reserve_for(Duration duration, double data_rate_bps) {
  if (duration <= Duration::zero() || data_rate_bps <= 0.0) return;
  const double segments = duration.to_seconds() * data_rate_bps /
                          (8.0 * static_cast<double>(cfg_.mss_bytes));
  const auto clamped = [](double v, std::size_t lo, std::size_t hi) {
    if (v >= static_cast<double>(hi)) return hi;
    return std::max(lo, static_cast<std::size_t>(v));
  };
  // cwnd_trace_: ~one sample per ACK plus a few per loss episode; ACKs are
  // bounded by segments delivered, i.e. by the saturated-link estimate.
  cwnd_trace_.reserve(clamped(segments, 1024, std::size_t{1} << 20));
  // events_: a handful per loss episode — orders of magnitude rarer than
  // segments even on lossy HSR channels.
  events_.reserve(clamped(segments / 16.0, 512, std::size_t{1} << 17));
}

void TcpSender::start() {
  record_cwnd();
  try_send();
}

// HSR_HOT_PATH_BEGIN — steady-state ACK-clock region: everything from
// try_send through on_rto_expired runs per ACK / per timer pop and must not
// allocate (FlowAllocTest / MultiFlowAllocTest pin 0 allocs per event; the
// only admitted heap touches are the pre-sized vectors' amortized growth
// and the flat structures' doubling, both exempted where they occur).

double TcpSender::effective_window() const {
  return std::min(cwnd_, static_cast<double>(cfg_.receiver_window));
}

void TcpSender::try_send() {
  check_invariants();
  while (static_cast<double>(in_flight()) < std::floor(effective_window()) &&
         snd_next_ <= cfg_.total_segments) {
    if (cfg_.enable_sack && sacked_.test(snd_next_)) {
      // Already at the receiver (SACKed): no need to resend during
      // go-back-N; the cumulative ACK will cover it once the holes fill.
      ++snd_next_;
      continue;
    }
    transmit(snd_next_);
    ++snd_next_;
  }
  if (in_flight() > 0 && !rto_timer_.armed()) {
    restart_rto_timer();
  }
}

void TcpSender::transmit(SeqNo seq) {
  net::Packet p;
  p.id = net::allocate_packet_id();
  p.flow = flow_;
  p.kind = net::PacketKind::kData;
  p.seq = seq;
  p.size_bytes = cfg_.mss_bytes;

  // Anything at or below the transmission high-water mark has been on the
  // wire before: after a timeout the sender goes back to snd_una (go-back-N
  // without SACK), and those re-sends are retransmissions.
  const bool retransmission = seq <= highest_transmitted_;
  if (!retransmission) {
    // First transmission: admit the sequence to the ring (growth only when
    // SACK lets the span outrun the window hint) and reset the stale slot.
    segments_.ensure_window(snd_una_, highest_transmitted_, seq);
    segments_.at(seq) = SegmentInfo{};
    highest_transmitted_ = seq;
  }

  SegmentInfo& info = segments_.at(seq);
  if (retransmission) {
    ++info.retx_count;
    p.is_retransmission = true;
    p.retx_count = info.retx_count;
    ++stats_.retransmissions;
  }
  info.last_sent = sim_.now();

  ++stats_.segments_sent;
  send_data_(p);
}

void TcpSender::restart_rto_timer() { rto_timer_.arm(rto_.rto()); }

void TcpSender::record_cwnd() {
  cwnd_trace_.emplace_back(sim_.now(), cwnd_);  // hsr-lint-ok: pre-sized by reserve_for; amortized growth past the estimate
}

void TcpSender::log_event(SenderEventType type, SeqNo seq) {
  events_.push_back(SenderEvent{sim_.now(), type, seq, rto_.rto(),  // hsr-lint-ok: pre-sized by reserve_for; amortized growth past the estimate
                                rto_.backoff_multiplier()});
}

void TcpSender::absorb_sack(const net::Packet& packet) {
  for (std::uint8_t i = 0; i < packet.sack_count; ++i) {
    const auto [first, last] = packet.sack[i];
    for (SeqNo seq = std::max(first, snd_una_ + 1); seq < last; ++seq) {
      sacked_.mark(seq);
    }
  }
}

bool TcpSender::retransmit_next_hole() {
  // A segment is only presumed lost when something ABOVE it has been
  // SACKed (RFC 6675's loss inference). Un-SACKed segments above the
  // highest SACKed sequence may simply be un-reported — under ACK loss the
  // scoreboard is chronically incomplete, and retransmitting on absence of
  // evidence storms the receiver with duplicates.
  if (sacked_.empty()) return false;
  const SeqNo highest_sacked = sacked_.max_marked();
  const SeqNo seq = std::max(sack_retx_next_, snd_una_);
  // Inclusive upper bound of the historical per-sequence walk:
  // seq <= recover_point_ && seq < snd_next_ && seq < highest_sacked.
  const SeqNo limit =
      std::min({recover_point_, snd_next_ - 1, highest_sacked - 1});
  if (seq > limit) {
    sack_retx_next_ = seq;
    return false;
  }
  const SeqNo hole = sacked_.next_hole(seq);
  if (hole <= limit) {
    transmit(hole);
    sack_retx_next_ = hole + 1;
    return true;
  }
  // [seq, limit] fully SACKed: park the cursor one past the bound, exactly
  // where the per-sequence walk would have stopped.
  sack_retx_next_ = limit + 1;
  return false;
}

void TcpSender::on_ack(const net::Packet& packet) {
  HSR_CHECK(packet.kind == net::PacketKind::kAck);
  check_invariants();
  ++stats_.acks_received;
  const SeqNo ack_next = packet.ack_next;
  if (cfg_.enable_sack) absorb_sack(packet);

  if (ack_next <= snd_una_) {
    if (frto_phase_ != 0 && ack_next == snd_una_) {
      // F-RTO step: a duplicate ACK during the probe window means the
      // timeout was genuine — retransmit the hole and fall back to
      // conventional go-back-N slow start.
      frto_phase_ = 0;
      transmit(snd_una_);
      snd_next_ = snd_una_ + 1;
      record_cwnd();
      restart_rto_timer();
      return;
    }
    // Duplicate ACK: acknowledges nothing new.
    if (ack_next == snd_una_ && in_flight() > 0) {
      ++dup_ack_count_;
      if (in_fast_recovery_) {
        // Window inflation for each additional dup ACK, capped at the
        // advertised window: inflation past W_m releases no extra data
        // (effective_window clamps at W_m regardless), it would only let
        // the exported cwnd trace exceed W_m during recovery (Figs. 7-9).
        cwnd_ = std::min(cwnd_ + 1.0, static_cast<double>(cfg_.receiver_window));
        record_cwnd();
        // With SACK, spend the inflation on repairing the next known hole
        // before injecting new data.
        if (!cfg_.enable_sack || !retransmit_next_hole()) {
          try_send();
        }
      } else if (dup_ack_count_ == 3) {
        enter_fast_retransmit();
      }
    }
    return;
  }

  // --- New cumulative ACK. ---------------------------------------------------
  const std::uint64_t newly_acked = ack_next - snd_una_;

  // Karn's algorithm: only segments never retransmitted yield RTT samples.
  // ack_next - 1 is always inside the ring's live window — a cumulative ACK
  // covers transmitted data only — but the guard keeps a corrupt peer from
  // reading a stale slot.
  const SeqNo karn_seq = ack_next - 1;
  if (karn_seq >= snd_una_ && karn_seq <= highest_transmitted_) {
    const SegmentInfo& info = segments_.at(karn_seq);
    if (info.retx_count == 0) {
      const Duration sample = sim_.now() - info.last_sent;
      rto_.add_sample(sample);
      observe_rtt(sample);
    }
  }
  // Advancing snd_una IS the prefix erase: ring slots below it simply leave
  // the live window (the former std::map erased nodes here).
  snd_una_ = ack_next;
  if (cfg_.enable_sack) {
    sacked_.advance_base(snd_una_);
  }
  // A cumulative ACK can leap past the go-back-N resend pointer when the
  // receiver had later segments buffered all along (e.g. spurious timeout).
  snd_next_ = std::max(snd_next_, snd_una_);
  dup_ack_count_ = 0;

  const bool was_in_timeout_recovery = in_timeout_recovery_;
  if (frto_phase_ == 1) {
    // First ACK after the RTO advanced the window: probe with two NEW
    // segments (RFC 5682 step 2b) instead of retransmitting. The timeout is
    // still unresolved, so the backoff state is deliberately kept — a lost
    // probe must not fire a hair-trigger timer into a live outage.
    frto_phase_ = 2;
    cwnd_ = 2.0;
    record_cwnd();
    restart_rto_timer();
    try_send();
    return;
  }
  if (frto_phase_ == 2) {
    // Second advancing ACK: no retransmission was needed — the timeout was
    // spurious. Undo the congestion response (Eifel-style full restore).
    frto_phase_ = 0;
    ++frto_spurious_detected_;
    cwnd_ = frto_prior_cwnd_;
    ssthresh_ = frto_prior_ssthresh_;
    in_timeout_recovery_ = false;
    rto_.reset_backoff();
    log_event(SenderEventType::kRecoveryExit, ack_next);
    record_cwnd();
    if (in_flight() > 0) restart_rto_timer(); else rto_timer_.cancel();
    try_send();
    return;
  }
  if (in_fast_recovery_) {
    if (cfg_.congestion_control == CongestionControl::kNewReno &&
        ack_next <= recover_point_) {
      // NewReno partial ACK (RFC 6582): the next hole is already known —
      // retransmit it immediately, deflate by the amount acknowledged, and
      // STAY in fast recovery until the whole pre-loss window is covered.
      cwnd_ = std::max(ssthresh_, cwnd_ - static_cast<double>(newly_acked) + 1.0);
      transmit(snd_una_);
      record_cwnd();
      restart_rto_timer();
      return;
    }
    if (cfg_.enable_sack && ack_next <= recover_point_) {
      // SACK partial ACK: repair the next un-repaired hole and stay in
      // recovery (in the spirit of RFC 6675). Holes below the repair
      // pointer already have a retransmission in flight — re-sending them
      // here would storm the receiver with duplicates; if that repair is
      // itself lost, the RTO (restarted below) covers it.
      cwnd_ = std::max(ssthresh_, cwnd_ - static_cast<double>(newly_acked) + 1.0);
      retransmit_next_hole();
      record_cwnd();
      restart_rto_timer();
      try_send();  // the pipe estimate frees room for new data
      return;
    }
    // Full ACK (or classic Reno on any new ACK): recovery ends and the
    // window deflates back to ssthresh.
    in_fast_recovery_ = false;
    cwnd_ = ssthresh_;
    log_event(SenderEventType::kRecoveryExit, ack_next);
  } else if (was_in_timeout_recovery) {
    in_timeout_recovery_ = false;
    rto_.reset_backoff();
    log_event(SenderEventType::kRecoveryExit, ack_next);
    log_event(SenderEventType::kSlowStartEntered, ack_next);
    // Window growth resumes below from cwnd = 1 (slow start).
  }

  if (cwnd_ < ssthresh_) {
    // Slow start with byte counting: grow by the amount acknowledged.
    cwnd_ = std::min(cwnd_ + static_cast<double>(newly_acked), ssthresh_);
  } else if (cfg_.congestion_control == CongestionControl::kVeno &&
             veno_backlog() >= kVenoBeta) {
    // Veno: with a full bottleneck backlog, grow half as fast (every other
    // ACK) to hold the operating point near the knee.
    if (!veno_skip_increment_) cwnd_ += 1.0 / cwnd_;
    veno_skip_increment_ = !veno_skip_increment_;
  } else {
    // Congestion avoidance: +1/cwnd per ACK; with delayed ACKs (b segments
    // per ACK) this yields the model's one-segment-per-b-rounds growth.
    cwnd_ += 1.0 / cwnd_;
  }
  cwnd_ = std::min(cwnd_, static_cast<double>(cfg_.receiver_window));
  record_cwnd();

  if (in_flight() > 0) {
    restart_rto_timer();
  } else {
    rto_timer_.cancel();
  }
  try_send();
  check_invariants();
}

double TcpSender::veno_backlog() const {
  // N = cwnd * (RTT - BaseRTT) / RTT: segments queued at the bottleneck.
  if (base_rtt_ == Duration::max() || last_rtt_ <= Duration::zero()) return 0.0;
  const double rtt = last_rtt_.to_seconds();
  const double base = base_rtt_.to_seconds();
  if (rtt <= base) return 0.0;
  return cwnd_ * (rtt - base) / rtt;
}

void TcpSender::observe_rtt(Duration rtt) {
  last_rtt_ = rtt;
  if (rtt < base_rtt_) base_rtt_ = rtt;
}

double TcpSender::reduced_ssthresh() const {
  const double flight = static_cast<double>(in_flight());
  if (cfg_.congestion_control == CongestionControl::kVeno &&
      veno_backlog() < kVenoBeta) {
    // Veno loss differentiation: a small bottleneck backlog means the loss
    // was likely random (wireless), so cut gently to 4/5 instead of 1/2.
    return std::max(flight * 4.0 / 5.0, 2.0);
  }
  return std::max(flight / 2.0, 2.0);
}

void TcpSender::enter_fast_retransmit() {
  ++stats_.fast_retransmits;
  ssthresh_ = reduced_ssthresh();
  in_fast_recovery_ = true;
  recover_point_ = snd_next_ - 1;
  sack_retx_next_ = snd_una_ + 1;
  log_event(SenderEventType::kFastRetransmit, snd_una_);
  transmit(snd_una_);
  // The +3 accounts for the three dup ACKs that left the network; like the
  // per-dup-ACK inflation it is capped at W_m so recovery-phase cwnd traces
  // stay within the advertised window.
  cwnd_ = std::min(ssthresh_ + 3.0, static_cast<double>(cfg_.receiver_window));
  record_cwnd();
  restart_rto_timer();
}

void TcpSender::on_rto_expired() {
  if (in_flight() == 0) return;  // spurious arm; nothing outstanding

  ++stats_.timeouts;
  frto_prior_cwnd_ = cwnd_;  // for a potential F-RTO undo
  frto_prior_ssthresh_ = ssthresh_;
  ssthresh_ = reduced_ssthresh();
  cwnd_ = 1.0;
  in_fast_recovery_ = false;
  dup_ack_count_ = 0;
  in_timeout_recovery_ = true;

  log_event(SenderEventType::kTimeout, snd_una_);
  record_cwnd();

  // Exponential backoff, then retransmit only the oldest outstanding
  // segment (Fig. 2).
  const bool first_timeout_of_sequence = rto_.backoff_multiplier() == 1;
  rto_.backoff();
  stats_.max_backoff_seen =
      std::max<std::uint64_t>(stats_.max_backoff_seen, rto_.backoff_multiplier());
  transmit(snd_una_);
  if (cfg_.enable_frto && first_timeout_of_sequence) {
    // F-RTO: keep snd_next where it is; whether to go back is decided by
    // the next two ACKs instead of assumed. (frto_prior_cwnd_ was captured
    // above, before the window collapsed.) The ring keeps every slot up to
    // highest_transmitted_ live, so the phase-1 pullback-or-probe decision
    // never re-admits sequences — only snd_next moves.
    frto_phase_ = 1;
  } else {
    // Conventional recovery: everything beyond snd_una is treated as lost
    // and will be re-sent in slow start (go-back-N, no SACK).
    frto_phase_ = 0;
    snd_next_ = snd_una_ + 1;
  }
  restart_rto_timer();
  check_invariants();
  if (timeout_callback_) timeout_callback_(snd_una_);
}

// HSR_HOT_PATH_END

void TcpSender::add_available_segments(std::uint64_t n) {
  if (cfg_.total_segments != UINT64_MAX) {
    cfg_.total_segments += n;
  }
  try_send();
}

}  // namespace hsr::tcp
