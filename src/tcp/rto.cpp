#include "tcp/rto.h"

#include <algorithm>

namespace hsr::tcp {

RtoEstimator::RtoEstimator(RtoConfig config) : cfg_(config) {
  base_ = cfg_.initial_rto;
}

Duration RtoEstimator::clamp_base(Duration d) const {
  return std::min(d, cfg_.max_rto);
}

void RtoEstimator::add_sample(Duration rtt) {
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = Duration::nanos(rtt.ns() / 2);
    has_sample_ = true;
  } else {
    // RFC 6298: RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R'|; SRTT = 7/8 SRTT + 1/8 R'.
    const Duration err = Duration::nanos(std::abs((srtt_ - rtt).ns()));
    rttvar_ = Duration::nanos((3 * rttvar_.ns() + err.ns()) / 4);
    srtt_ = Duration::nanos((7 * srtt_.ns() + rtt.ns()) / 8);
  }
  // Linux-style floor: the variance term, not the whole RTO, is floored at
  // min_rto (tcp_rto_min). This keeps the timer clear of delayed-ACK waits
  // and of RTT inflation while the bottleneck queue fills — firing earlier
  // is what produces premature (spurious-by-mistiming) timeouts.
  const Duration var_term =
      std::max(Duration::nanos(rttvar_.ns() * 4), cfg_.min_rto);
  base_ = clamp_base(srtt_ + var_term);
  backoff_multiplier_ = 1;
}

Duration RtoEstimator::base_rto() const { return base_; }

Duration RtoEstimator::rto() const {
  const Duration scaled = Duration::nanos(base_.ns() * backoff_multiplier_);
  return std::min(scaled, cfg_.max_rto);
}

void RtoEstimator::backoff() {
  backoff_multiplier_ = std::min(backoff_multiplier_ * 2, cfg_.backoff_cap);
}

}  // namespace hsr::tcp
