// TCP receiver: cumulative acknowledgements, out-of-order reassembly,
// duplicate detection, and the delayed-ACK scheme (RFC 1122).
#pragma once

#include <functional>
#include <set>

#include "net/packet.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "tcp/types.h"

namespace hsr::tcp {

class TcpReceiver {
 public:
  // `send_ack` transmits an ACK packet toward the sender (usually bound to
  // the uplink's send()).
  TcpReceiver(sim::Simulator& sim, TcpConfig config, FlowId flow,
              std::function<void(net::Packet)> send_ack);

  // Entry point for data segments delivered by the downlink.
  void on_data(const net::Packet& packet);

  const ReceiverStats& stats() const { return stats_; }
  SeqNo rcv_next() const { return rcv_next_; }
  // Arrival times of first copies, indexed implicitly by segment number
  // (for goodput-over-time series).
  const std::vector<TimePoint>& delivery_times() const { return delivery_times_; }

 private:
  void send_ack_now();
  void maybe_delay_ack();
  void on_delack_timer();

  sim::Simulator& sim_;
  TcpConfig cfg_;
  FlowId flow_;
  std::function<void(net::Packet)> send_ack_;
  sim::Timer delack_timer_;

  SeqNo rcv_next_ = 1;                  // next expected segment (1-based)
  std::set<SeqNo> out_of_order_;
  unsigned unacked_in_order_ = 0;       // in-order segments since last ACK
  unsigned quickack_budget_ = 0;        // adaptive delack: ack-per-segment budget
  std::size_t sack_rotation_ = 0;       // rotating cursor over SACK blocks
  std::uint64_t next_packet_id_;
  ReceiverStats stats_;
  std::vector<TimePoint> delivery_times_;
};

}  // namespace hsr::tcp
