// Shared TCP configuration and ground-truth event types.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.h"
#include "tcp/rto.h"
#include "util/inline_function.h"
#include "util/time.h"

namespace hsr::tcp {

using net::FlowId;
using net::SeqNo;
using util::Duration;
using util::TimePoint;

// Endpoint callback types: move-only small-buffer callables, matching
// sim::EventAction and net::Link::Receiver instead of std::function. Every
// production wiring (Connection, run_multi_flow, MPTCP subflows) captures at
// most two pointers, which the 48-byte inline buffer holds without touching
// the heap — static_asserted at each call site. An oversized capture
// (test-only convenience) degrades to ONE construction-time allocation,
// never a per-event one.
inline constexpr std::size_t kEndpointCallbackInlineBytes = 48;
// Transmits a packet toward the peer (usually bound to a Link's send()).
using PacketSendFn =
    util::InlineFunction<void(net::Packet), kEndpointCallbackInlineBytes>;
// Observes an RTO expiry (MPTCP's double-retransmission rescue hook).
using TimeoutFn = util::InlineFunction<void(SeqNo), kEndpointCallbackInlineBytes>;

// Congestion-control flavor. Reno is the paper's subject ("TCP Reno is the
// basis of the other TCP versions"); NewReno (RFC 6582 partial-ACK recovery)
// and Veno (loss differentiation for wireless paths, Fu et al.) are the
// §II-cited variants, provided for comparison studies.
enum class CongestionControl : std::uint8_t { kReno = 0, kNewReno = 1, kVeno = 2 };

// The protocol-level knobs of one TCP flow, independent of the path it runs
// over. Every surface that configures flows carries THIS struct instead of
// re-declaring the fields — workload::FlowRunConfig, the multi-flow
// scenario's per-sender specs, MPTCP subflow setup and the hsrfaultplan-v2
// parameter block all share it, so a knob added here reaches all of them at
// once (and the plan-file round trip keeps archived experiments replayable).
// make_tcp_config() expands the options into the stack-level TcpConfig.
struct TcpOptions {
  CongestionControl congestion_control = CongestionControl::kReno;
  bool enable_sack = false;        // selective acknowledgements (RFC 2018/6675)
  bool enable_frto = false;        // F-RTO spurious-timeout response
  bool adaptive_delack = false;    // TCP-DCA-style quick ACKs after reordering
  unsigned delayed_ack_b = 2;      // segments per cumulative ACK (b)
  Duration min_rto = Duration::millis(200);
  std::uint32_t mss_bytes = 1400;

  friend bool operator==(const TcpOptions&, const TcpOptions&) = default;
};

struct TcpConfig {
  CongestionControl congestion_control = CongestionControl::kReno;

  std::uint32_t mss_bytes = 1400;
  std::uint32_t ack_bytes = 52;

  // Delayed acknowledgements: one ACK per `delayed_ack_b` in-order segments
  // (b in the model); 1 disables delaying. The delayed-ACK timer bounds how
  // long a single segment can wait.
  unsigned delayed_ack_b = 2;
  Duration delayed_ack_timeout = Duration::millis(150);

  // Receiver advertised window W_m, in segments.
  unsigned receiver_window = 64;

  // Selective acknowledgements (RFC 2018, simplified): the receiver reports
  // up to 3 out-of-order blocks; the sender keeps a scoreboard, retransmits
  // only the holes during fast recovery, and skips SACKed segments during
  // post-RTO go-back-N.
  bool enable_sack = false;

  // F-RTO (RFC 5682, SACK-less variant): after an RTO, probe with NEW data
  // instead of immediately going back to snd_una; if the next two ACKs both
  // advance, the timeout was spurious and the congestion state is restored.
  // Directly targets the paper's spurious-RTO pathology.
  bool enable_frto = false;

  // Adaptive delayed ACKs (TCP-DCA-inspired, §V-A future work): the
  // receiver drops to quick ACKs (every segment) for a while after any
  // reordering or duplicate — the loss-suspicious periods where ACKs are
  // "precious" — and batches b segments per ACK otherwise.
  bool adaptive_delack = false;
  unsigned quickack_segments = 16;  // quick-ACK budget armed per trigger

  // Congestion control.
  double initial_cwnd = 2.0;
  double initial_ssthresh = 1e9;  // effectively: slow start until first loss

  RtoConfig rto;

  // Amount of application data (segments); default: effectively infinite.
  std::uint64_t total_segments = UINT64_MAX;
};

// Expands shared protocol options into the stack-level TcpConfig, filling in
// the path-dependent advertised window. Everything TcpOptions does not cover
// keeps its TcpConfig default.
inline TcpConfig make_tcp_config(const TcpOptions& options, unsigned receiver_window) {
  TcpConfig t;
  t.congestion_control = options.congestion_control;
  t.enable_sack = options.enable_sack;
  t.enable_frto = options.enable_frto;
  t.adaptive_delack = options.adaptive_delack;
  t.delayed_ack_b = options.delayed_ack_b;
  t.mss_bytes = options.mss_bytes;
  t.rto.min_rto = options.min_rto;
  t.receiver_window = receiver_window;
  return t;
}

// The protocol options a TcpConfig embodies (inverse of make_tcp_config).
inline TcpOptions options_of(const TcpConfig& config) {
  TcpOptions o;
  o.congestion_control = config.congestion_control;
  o.enable_sack = config.enable_sack;
  o.enable_frto = config.enable_frto;
  o.adaptive_delack = config.adaptive_delack;
  o.delayed_ack_b = config.delayed_ack_b;
  o.mss_bytes = config.mss_bytes;
  o.min_rto = config.rto.min_rto;
  return o;
}

// Ground-truth sender events, logged by the stack itself. Used to validate
// the trace-analysis pipeline (which must reconstruct these from packet
// captures alone) and to drive the mechanism figures.
enum class SenderEventType : std::uint8_t {
  kTimeout,           // RTO fired
  kFastRetransmit,    // third duplicate ACK
  kRecoveryExit,      // snd_una advanced past the recovery point
  kSlowStartEntered,  // post-timeout slow start began
};

struct SenderEvent {
  TimePoint when;
  SenderEventType type;
  SeqNo seq = 0;          // segment concerned
  Duration rto_value;     // timer value (timeout events)
  unsigned backoff = 1;   // backoff multiplier at the event
};

struct SenderStats {
  std::uint64_t segments_sent = 0;          // including retransmissions
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t max_backoff_seen = 1;
};

struct ReceiverStats {
  std::uint64_t segments_received = 0;   // everything that arrived
  std::uint64_t unique_segments = 0;     // distinct payload delivered
  std::uint64_t duplicate_segments = 0;  // same payload seen again (spurious retx evidence)
  std::uint64_t acks_sent = 0;
  SeqNo highest_contiguous = 0;          // rcv_next - 1
};

const char* sender_event_name(SenderEventType t);

}  // namespace hsr::tcp
