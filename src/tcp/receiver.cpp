#include "tcp/receiver.h"

#include <vector>

#include "util/logging.h"

namespace hsr::tcp {

TcpReceiver::TcpReceiver(sim::Simulator& sim, TcpConfig config, FlowId flow,
                         std::function<void(net::Packet)> send_ack)
    : sim_(sim),
      cfg_(config),
      flow_(flow),
      send_ack_(std::move(send_ack)),
      delack_timer_(sim, [this] { on_delack_timer(); }),
      next_packet_id_(0) {
  HSR_CHECK(send_ack_ != nullptr);
  HSR_CHECK(cfg_.delayed_ack_b >= 1);
}

void TcpReceiver::on_data(const net::Packet& packet) {
  HSR_CHECK(packet.kind == net::PacketKind::kData);
  ++stats_.segments_received;

  const SeqNo seq = packet.seq;
  if (seq < rcv_next_ || out_of_order_.contains(seq)) {
    // Duplicate payload: the hallmark of a spurious retransmission (the
    // original copy already arrived). Ack immediately (RFC 5681 §4.2).
    ++stats_.duplicate_segments;
    if (cfg_.adaptive_delack) quickack_budget_ = cfg_.quickack_segments;
    send_ack_now();
    return;
  }

  if (seq == rcv_next_) {
    ++stats_.unique_segments;
    delivery_times_.push_back(sim_.now());
    ++rcv_next_;
    // Drain any contiguous out-of-order segments.
    while (!out_of_order_.empty() && *out_of_order_.begin() == rcv_next_) {
      out_of_order_.erase(out_of_order_.begin());
      ++rcv_next_;
    }
    stats_.highest_contiguous = rcv_next_ - 1;
    ++unacked_in_order_;
    maybe_delay_ack();
  } else {
    // Above rcv_next_: a hole exists. Buffer and send an immediate
    // duplicate ACK to trigger fast retransmit at the sender.
    ++stats_.unique_segments;
    delivery_times_.push_back(sim_.now());
    out_of_order_.insert(seq);
    if (cfg_.adaptive_delack) quickack_budget_ = cfg_.quickack_segments;
    send_ack_now();
  }
}

void TcpReceiver::maybe_delay_ack() {
  if (quickack_budget_ > 0) {
    // Loss-suspicious period: every ACK is precious (paper §V-A), so do
    // not batch until the budget drains.
    --quickack_budget_;
    send_ack_now();
    return;
  }
  if (unacked_in_order_ >= cfg_.delayed_ack_b) {
    send_ack_now();
  } else if (!delack_timer_.armed()) {
    delack_timer_.arm(cfg_.delayed_ack_timeout);
  }
}

void TcpReceiver::on_delack_timer() {
  if (unacked_in_order_ > 0) send_ack_now();
}

void TcpReceiver::send_ack_now() {
  delack_timer_.cancel();
  unacked_in_order_ = 0;

  net::Packet ack;
  ack.id = net::allocate_packet_id();
  ack.flow = flow_;
  ack.kind = net::PacketKind::kAck;
  ack.ack_next = rcv_next_;
  ack.size_bytes = cfg_.ack_bytes;
  if (cfg_.enable_sack && !out_of_order_.empty()) {
    // Collect every contiguous out-of-order block above rcv_next_, then
    // report up to kMaxSackBlocks of them starting from a rotating cursor
    // (RFC 2018 rotates so the sender accumulates the full picture across
    // consecutive ACKs even when the holes are badly fragmented).
    std::vector<std::pair<SeqNo, SeqNo>> blocks;
    SeqNo block_start = 0, prev = 0;
    for (SeqNo seq : out_of_order_) {
      if (block_start == 0) {
        block_start = prev = seq;
        continue;
      }
      if (seq == prev + 1) {
        prev = seq;
        continue;
      }
      blocks.emplace_back(block_start, prev + 1);
      block_start = prev = seq;
    }
    if (block_start != 0) blocks.emplace_back(block_start, prev + 1);
    const std::size_t n = blocks.size();
    const std::size_t to_report = std::min(n, net::Packet::kMaxSackBlocks);
    for (std::size_t i = 0; i < to_report; ++i) {
      ack.sack[ack.sack_count++] = blocks[(sack_rotation_ + i) % n];
    }
    if (n > 0) sack_rotation_ = (sack_rotation_ + to_report) % n;
  }
  ++stats_.acks_sent;
  send_ack_(ack);
}

}  // namespace hsr::tcp
