#include "tcp/receiver.h"

#include <algorithm>

#include "util/logging.h"

namespace hsr::tcp {

TcpReceiver::TcpReceiver(sim::Simulator& sim, TcpConfig config, FlowId flow,
                         PacketSendFn send_ack)
    : sim_(sim),
      cfg_(config),
      flow_(flow),
      send_ack_(std::move(send_ack)),
      delack_timer_(sim, [this] { on_delack_timer(); }),
      out_of_order_(/*base=*/1, std::size_t{config.receiver_window} * 4),
      next_packet_id_(0) {
  HSR_CHECK(static_cast<bool>(send_ack_));
  HSR_CHECK(cfg_.delayed_ack_b >= 1);
}

void TcpReceiver::reserve_for(Duration duration, double data_rate_bps) {
  if (duration <= Duration::zero() || data_rate_bps <= 0.0 ||
      cfg_.mss_bytes == 0) {
    return;
  }
  const double segments = duration.to_seconds() * data_rate_bps /
                          (8.0 * static_cast<double>(cfg_.mss_bytes));
  constexpr std::size_t kMax = std::size_t{1} << 20;
  const std::size_t expected =
      segments >= static_cast<double>(kMax)
          ? kMax
          : std::max<std::size_t>(1024, static_cast<std::size_t>(segments));
  delivery_times_.reserve(expected);
}

// HSR_HOT_PATH_BEGIN — per-segment delivery region: on_data, the delayed-ACK
// decision and ACK emission run for every arriving segment and must not
// allocate (the reassembly scoreboard is flat, the SACK blocks are written
// into the packet's fixed array, and delivery_times_ is pre-sized).

void TcpReceiver::on_data(const net::Packet& packet) {
  HSR_CHECK(packet.kind == net::PacketKind::kData);
  ++stats_.segments_received;

  const SeqNo seq = packet.seq;
  if (seq < rcv_next_ || out_of_order_.test(seq)) {
    // Duplicate payload: the hallmark of a spurious retransmission (the
    // original copy already arrived). Ack immediately (RFC 5681 §4.2).
    ++stats_.duplicate_segments;
    if (cfg_.adaptive_delack) quickack_budget_ = cfg_.quickack_segments;
    send_ack_now();
    return;
  }

  if (seq == rcv_next_) {
    ++stats_.unique_segments;
    delivery_times_.push_back(sim_.now());  // hsr-lint-ok: pre-sized by reserve_for; amortized growth past the estimate
    ++rcv_next_;
    // Drain any contiguous out-of-order segments, then advance the
    // scoreboard floor past everything consumed (the amortized O(1)
    // equivalent of erasing set minima one node at a time).
    while (out_of_order_.test(rcv_next_)) ++rcv_next_;
    out_of_order_.advance_base(rcv_next_);
    stats_.highest_contiguous = rcv_next_ - 1;
    ++unacked_in_order_;
    maybe_delay_ack();
  } else {
    // Above rcv_next_: a hole exists. Buffer and send an immediate
    // duplicate ACK to trigger fast retransmit at the sender.
    ++stats_.unique_segments;
    delivery_times_.push_back(sim_.now());  // hsr-lint-ok: pre-sized by reserve_for; amortized growth past the estimate
    out_of_order_.mark(seq);
    if (cfg_.adaptive_delack) quickack_budget_ = cfg_.quickack_segments;
    send_ack_now();
  }
}

void TcpReceiver::maybe_delay_ack() {
  if (quickack_budget_ > 0) {
    // Loss-suspicious period: every ACK is precious (paper §V-A), so do
    // not batch until the budget drains.
    --quickack_budget_;
    send_ack_now();
    return;
  }
  if (unacked_in_order_ >= cfg_.delayed_ack_b) {
    send_ack_now();
  } else if (!delack_timer_.armed()) {
    delack_timer_.arm(cfg_.delayed_ack_timeout);
  }
}

void TcpReceiver::on_delack_timer() {
  if (unacked_in_order_ > 0) send_ack_now();
}

void TcpReceiver::send_ack_now() {
  delack_timer_.cancel();
  unacked_in_order_ = 0;

  net::Packet ack;
  ack.id = net::allocate_packet_id();
  ack.flow = flow_;
  ack.kind = net::PacketKind::kAck;
  ack.ack_next = rcv_next_;
  ack.size_bytes = cfg_.ack_bytes;
  if (cfg_.enable_sack && !out_of_order_.empty()) {
    // Report up to kMaxSackBlocks contiguous out-of-order blocks starting
    // from a rotating cursor (RFC 2018 rotates so the sender accumulates
    // the full picture across consecutive ACKs even when the holes are
    // badly fragmented). Two bitmap scans replace the historical
    // collect-into-a-vector pass: the first counts the blocks, the second
    // writes the selected ones straight into the ACK's fixed array — the
    // emitted bytes are identical, the scratch allocation is gone.
    std::size_t n = 0;
    for (SeqNo s = out_of_order_.min_marked(); s != SeqScoreboard::kNone;
         s = out_of_order_.next_marked(out_of_order_.next_hole(s))) {
      ++n;
    }
    const std::size_t to_report = std::min(n, net::Packet::kMaxSackBlocks);
    // Block j (0-based, in sequence order) lands in report slot
    // (j - rotation) mod n; slots >= to_report are not reported. This is
    // the inverse of the historical `blocks[(rotation + i) % n]` gather,
    // so the array contents match byte for byte.
    const std::size_t rot = sack_rotation_ % n;
    std::size_t j = 0;
    std::size_t emitted = 0;
    for (SeqNo s = out_of_order_.min_marked();
         s != SeqScoreboard::kNone && emitted < to_report; ++j) {
      const SeqNo end = out_of_order_.next_hole(s);
      const std::size_t slot = (j + n - rot) % n;
      if (slot < to_report) {
        ack.sack[slot] = {s, end};
        ++emitted;
      }
      s = out_of_order_.next_marked(end);
    }
    ack.sack_count = static_cast<std::uint8_t>(to_report);
    sack_rotation_ = (sack_rotation_ + to_report) % n;
  }
  ++stats_.acks_sent;
  send_ack_(ack);
}

// HSR_HOT_PATH_END

}  // namespace hsr::tcp
