// RTT estimation and retransmission-timeout computation (RFC 6298), with
// Karn's algorithm (no samples from retransmitted segments) and exponential
// backoff capped at a 64x multiplier as described in the paper (§III-B:
// "This doubling will continue until the timer reaches 64T").
#pragma once

#include "util/time.h"

namespace hsr::tcp {

using util::Duration;

struct RtoConfig {
  Duration initial_rto = Duration::seconds(1);   // before any sample (RFC 6298 §2.1)
  // Linux-style floor applied to the 4*RTTVAR term (tcp_rto_min), so
  // RTO >= SRTT + min_rto always holds.
  Duration min_rto = Duration::millis(200);
  Duration max_rto = Duration::seconds(120);     // absolute ceiling
  unsigned backoff_cap = 64;                     // T, 2T, 4T ... 64T
};

class RtoEstimator {
 public:
  explicit RtoEstimator(RtoConfig config = {});

  // Feeds a round-trip sample measured on a never-retransmitted segment.
  // Resets any backoff in effect (new sample implies forward progress).
  void add_sample(Duration rtt);

  // Current timer value including backoff.
  Duration rto() const;
  // The base timer T (no backoff applied).
  Duration base_rto() const;

  // Doubles the timer after a timeout, up to backoff_cap * T.
  void backoff();
  // Clears backoff without a sample (e.g. after recovery completes).
  void reset_backoff() { backoff_multiplier_ = 1; }

  unsigned backoff_multiplier() const { return backoff_multiplier_; }
  bool has_sample() const { return has_sample_; }
  Duration srtt() const { return srtt_; }
  Duration rttvar() const { return rttvar_; }

 private:
  Duration clamp_base(Duration d) const;

  RtoConfig cfg_;
  bool has_sample_ = false;
  Duration srtt_ = Duration::zero();
  Duration rttvar_ = Duration::zero();
  Duration base_ = Duration::zero();
  unsigned backoff_multiplier_ = 1;
};

}  // namespace hsr::tcp
