// TCP Reno sender: slow start, congestion avoidance, fast retransmit /
// fast recovery (RFC 5681), RFC 6298 retransmission timer with Karn's
// algorithm and exponential backoff, and a receiver-advertised window cap.
//
// The sender transmits an infinite (configurable) backlog of MSS-sized
// segments, matching the steady-state assumption of the Padhye model.
//
// Allocation discipline: the per-segment bookkeeping is flat — a
// SegmentRing for metadata (in-flight segments are contiguous in
// [snd_una, highest_transmitted]) and a SeqScoreboard bitmap for SACK —
// and the callbacks are SBO InlineFunctions, so steady-state ACK/timeout
// processing performs ZERO heap allocations (pinned by FlowAllocTest and
// bench_hotpath's flow_allocs_per_event).
#pragma once

#include <utility>
#include <vector>

#include "net/packet.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "tcp/rto.h"
#include "tcp/seq_window.h"
#include "tcp/types.h"
#include "util/logging.h"

namespace hsr::tcp {

class TcpSender {
 public:
  // `send_data` transmits a data segment toward the receiver (usually bound
  // to the downlink's send()).
  TcpSender(sim::Simulator& sim, TcpConfig config, FlowId flow,
            PacketSendFn send_data);

  // Begins transmission at the current simulation time.
  void start();

  // Entry point for ACKs delivered by the uplink.
  void on_ack(const net::Packet& packet);

  // Invoked at every RTO expiry with the timed-out segment, after the
  // retransmission went out. MPTCP uses this for its double-retransmission
  // rescue on an alternative subflow.
  void set_timeout_callback(TimeoutFn cb) { timeout_callback_ = std::move(cb); }

  // Makes `n` more application segments available to send (for senders
  // created with a finite/zero backlog, e.g. an MPTCP backup subflow fed on
  // demand) and tries to transmit immediately.
  void add_available_segments(std::uint64_t n);

  // Pre-sizes the diagnostic series (cwnd trace, event log) for a flow of
  // `duration` saturating `data_rate_bps`, so steady-state recording never
  // reallocates mid-simulation. Same clamped heuristic as
  // trace::FlowCapture::reserve_for; over-estimates are harmless.
  void reserve_for(Duration duration, double data_rate_bps);

  // --- Introspection -------------------------------------------------------
  const SenderStats& stats() const { return stats_; }
  const std::vector<SenderEvent>& events() const { return events_; }
  double cwnd() const { return cwnd_; }
  double ssthresh() const { return ssthresh_; }
  SeqNo snd_una() const { return snd_una_; }
  SeqNo snd_next() const { return snd_next_; }
  bool in_fast_recovery() const { return in_fast_recovery_; }
  bool in_timeout_recovery() const { return in_timeout_recovery_; }
  const RtoEstimator& rto_estimator() const { return rto_; }
  bool finished() const {
    return snd_una_ > cfg_.total_segments;
  }
  // (time, cwnd) samples recorded at every cwnd change (Figs. 7-9).
  const std::vector<std::pair<TimePoint, double>>& cwnd_trace() const {
    return cwnd_trace_;
  }

 private:
  // Outstanding segments. With SACK, segments known to have reached the
  // receiver no longer occupy the pipe (RFC 6675's pipe estimate). Only
  // scoreboard entries inside [snd_una, snd_next) count: after a go-back-N
  // pullback the entries above snd_next are not outstanding in the first
  // place. rank_below is a popcount scan (O(window/64)); the former
  // std::distance over the std::set walked every node on EVERY ACK.
  std::uint64_t in_flight() const {
    const std::uint64_t outstanding = snd_next_ - snd_una_;
    if (!cfg_.enable_sack || sacked_.empty()) return outstanding;
    const std::uint64_t sacked_outstanding = sacked_.rank_below(snd_next_);
    return outstanding > sacked_outstanding ? outstanding - sacked_outstanding : 0;
  }
  double effective_window() const;
  void try_send();
  void transmit(SeqNo seq);
  void on_rto_expired();
  void enter_fast_retransmit();
  void restart_rto_timer();
  void record_cwnd();
  void log_event(SenderEventType type, SeqNo seq);
  // Multiplicative-decrease ssthresh on a loss indication. Veno applies its
  // loss differentiation here (4/5 cut for random loss, 1/2 for congestion).
  double reduced_ssthresh() const;
  // Veno's bottleneck-backlog estimate N = cwnd (RTT - BaseRTT)/RTT.
  double veno_backlog() const;
  // Records the ACK's SACK blocks into the scoreboard.
  void absorb_sack(const net::Packet& packet);
  // Retransmits the lowest un-SACKed hole in (snd_una, recover_point], if
  // any; returns whether something was sent.
  bool retransmit_next_hole();
  // Feeds Veno's backlog estimator with an RTT sample.
  void observe_rtt(Duration rtt);

  // Sender-state invariants, rechecked on every ACK/timeout in debug and
  // sanitizer builds (HSR_DCHECK). Inline and empty when DCHECKs are off.
  void check_invariants() const {
    HSR_DCHECK_MSG(cwnd_ >= 1.0, "cwnd below one segment");
    HSR_DCHECK_MSG(ssthresh_ > 0.0, "non-positive ssthresh");
    HSR_DCHECK_MSG(snd_una_ >= 1, "snd_una before first sequence number");
    HSR_DCHECK_MSG(snd_una_ <= snd_next_, "send window inverted (una > next)");
    HSR_DCHECK_MSG(highest_transmitted_ + 1 >= snd_una_,
                   "acknowledged data that was never transmitted");
    HSR_DCHECK_MSG(highest_transmitted_ < snd_una_ ||
                       highest_transmitted_ - snd_una_ < segments_.capacity(),
                   "segment ring narrower than the in-flight window");
    HSR_DCHECK_MSG(sacked_.empty() || sacked_.min_marked() >= snd_una_,
                   "stale SACK entry below snd_una");
    HSR_DCHECK_MSG(frto_phase_ <= 2, "invalid F-RTO phase");
  }

  // Veno's backlog threshold (beta) distinguishing random from congestive
  // loss, in segments (Fu et al. use 3).
  static constexpr double kVenoBeta = 3.0;

 public:
  // True while an F-RTO probe is deciding whether the last RTO was spurious.
  bool frto_probing() const { return frto_phase_ != 0; }
  // Spurious timeouts detected and undone by F-RTO.
  std::uint64_t frto_spurious_detected() const { return frto_spurious_detected_; }

 private:
  std::uint64_t frto_spurious_detected_ = 0;

  sim::Simulator& sim_;
  TcpConfig cfg_;
  FlowId flow_;
  PacketSendFn send_data_;

  SeqNo snd_una_ = 1;   // lowest unacknowledged segment
  SeqNo snd_next_ = 1;  // next segment to transmit (may be pulled back by RTO)
  SeqNo highest_transmitted_ = 0;  // high-water mark of segments ever sent
  double cwnd_;
  double ssthresh_;
  unsigned dup_ack_count_ = 0;
  bool in_fast_recovery_ = false;
  SeqNo recover_point_ = 0;
  bool in_timeout_recovery_ = false;

  // F-RTO state (RFC 5682 without SACK). Phase 0: inactive. Phase 1: RTO
  // fired, snd_una retransmitted, waiting for the first ACK. Phase 2: that
  // ACK advanced the window, two NEW segments were probed, waiting for the
  // second ACK to decide spurious-vs-genuine.
  unsigned frto_phase_ = 0;
  double frto_prior_cwnd_ = 0.0;
  double frto_prior_ssthresh_ = 0.0;

  // Veno state: minimum and latest smoothed RTT for the backlog estimate
  // N = cwnd * (RTT - BaseRTT) / RTT.
  Duration base_rtt_ = Duration::max();
  Duration last_rtt_ = Duration::zero();
  // Veno CA pacing: when the backlog is large, grow cwnd every other ACK.
  bool veno_skip_increment_ = false;

  // SACK scoreboard: segments above snd_una known to have been received.
  // Floored at snd_una (advance_base on every cumulative ACK); the floor
  // itself may be marked when a reordered cumulative ACK lands below an
  // absorbed SACK block.
  SeqScoreboard sacked_;
  // Next candidate for SACK-driven hole retransmission in fast recovery.
  SeqNo sack_retx_next_ = 0;

  RtoEstimator rto_;
  sim::Timer rto_timer_;
  // Un-acked segment metadata, live over [snd_una, highest_transmitted].
  SegmentRing segments_;

  SenderStats stats_;
  std::vector<SenderEvent> events_;
  std::vector<std::pair<TimePoint, double>> cwnd_trace_;
  TimeoutFn timeout_callback_;
};

}  // namespace hsr::tcp
