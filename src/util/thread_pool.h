// A small fixed-size thread pool with one primitive: a blocking
// parallel_for over an index range.
//
// Built for the experiment runner's corpus sharding: every index is an
// independent, fork-seeded simulation whose result is written into a
// pre-sized output slot, so work-stealing order cannot perturb results.
// The pool deliberately has no task queue, futures, or detached work —
// determinism reviews only need to check the loop body for shared state.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hsr::util {

// Resolves a requested worker count: 0 means "all hardware threads"
// (std::thread::hardware_concurrency(), at least 1).
unsigned resolve_thread_count(unsigned requested);

class ThreadPool {
 public:
  // Spawns `threads - 1` workers (the calling thread participates in every
  // parallel_for, so `threads` is the total parallelism). 0 = hardware
  // concurrency. A pool of 1 spawns no threads at all: parallel_for then
  // degenerates to a plain sequential loop on the caller.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total parallelism, including the calling thread.
  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  // Runs fn(0) .. fn(n-1) across the pool and blocks until all calls
  // returned. Indices are claimed dynamically (atomic counter), so `fn` must
  // be safe to call concurrently for distinct indices; each index runs
  // exactly once. If any call throws, remaining unclaimed indices are
  // abandoned and the first exception is rethrown here after the join.
  // Not reentrant: `fn` must not call back into the same pool.
  void parallel_for(std::uint64_t n, const std::function<void(std::uint64_t)>& fn);

  // Like parallel_for, but each call also receives the identity of the
  // thread running it: 0 for the calling thread, 1..thread_count()-1 for
  // spawned workers. The identity is stable for the life of the pool, which
  // lets callers keep per-worker state (spill shards, scratch arenas) with
  // no locking: a given worker id is never active on two threads at once.
  // Because indices are claimed from one shared counter, the indices seen by
  // any single worker are strictly increasing.
  void parallel_for_worker(
      std::uint64_t n, const std::function<void(unsigned, std::uint64_t)>& fn);

 private:
  void worker_loop(unsigned worker_id);
  // Claims indices of the current job until exhausted (or failed).
  void run_indices(unsigned worker_id,
                   const std::function<void(unsigned, std::uint64_t)>& fn);

  std::mutex mu_;
  std::condition_variable start_cv_;  // a new job was published
  std::condition_variable done_cv_;   // all workers finished the job
  std::uint64_t job_generation_ = 0;  // bumped per published job
  const std::function<void(unsigned, std::uint64_t)>* job_fn_ = nullptr;
  std::uint64_t job_n_ = 0;
  std::atomic<std::uint64_t> next_index_{0};
  unsigned workers_running_ = 0;
  std::exception_ptr first_error_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

// One-shot convenience: builds a pool of `threads` for a single loop.
void parallel_for(unsigned threads, std::uint64_t n,
                  const std::function<void(std::uint64_t)>& fn);

}  // namespace hsr::util
