// Minimal leveled logging plus CHECK macros.
//
// The simulator is single-threaded by design (one engine per experiment;
// experiments parallelize across processes), so the logger keeps no locks.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace hsr::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are discarded. Default: kWarn, so
// library code stays quiet inside tests and benches unless asked.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace internal {
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace hsr::util

#define HSR_LOG(level) \
  ::hsr::util::internal::LogLine(::hsr::util::LogLevel::level, __FILE__, __LINE__)

// Invariant check: aborts with a message when violated. Used for programming
// errors (broken invariants), not for recoverable conditions.
#define HSR_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::cerr << "CHECK failed: " #cond " at " << __FILE__ << ":"          \
                << __LINE__ << std::endl;                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define HSR_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::cerr << "CHECK failed: " #cond " at " << __FILE__ << ":"          \
                << __LINE__ << ": " << msg << std::endl;                     \
      std::abort();                                                          \
    }                                                                        \
  } while (0)
