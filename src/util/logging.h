// Minimal leveled logging plus CHECK macros.
//
// The simulator is single-threaded by design (one engine per experiment;
// experiments parallelize across processes), so the logger keeps no locks.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace hsr::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are discarded. Default: kWarn, so
// library code stays quiet inside tests and benches unless asked.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace internal {
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace hsr::util

#define HSR_LOG(level) \
  ::hsr::util::internal::LogLine(::hsr::util::LogLevel::level, __FILE__, __LINE__)

// Invariant check: aborts with a message when violated. Used for programming
// errors (broken invariants), not for recoverable conditions.
#define HSR_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::cerr << "CHECK failed: " #cond " at " << __FILE__ << ":"          \
                << __LINE__ << '\n';                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define HSR_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::cerr << "CHECK failed: " #cond " at " << __FILE__ << ":"          \
                << __LINE__ << ": " << msg << '\n';                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// Debug-only invariant check for hot paths: active in builds without NDEBUG
// (Debug) and in any build compiled with -DHSR_FORCE_DCHECKS=1 (sanitizer
// builds force it on; see cmake/Sanitizers.cmake). Compiles to nothing
// otherwise, so per-event invariants cost nothing in release runs.
#if !defined(NDEBUG) || defined(HSR_FORCE_DCHECKS)
#define HSR_DCHECKS_ENABLED 1
#define HSR_DCHECK(cond) HSR_CHECK(cond)
#define HSR_DCHECK_MSG(cond, msg) HSR_CHECK_MSG(cond, msg)
#else
#define HSR_DCHECKS_ENABLED 0
// The condition is never evaluated, but stays visible to the compiler so
// release builds don't warn about variables used only in invariants.
#define HSR_DCHECK(cond)         \
  do {                           \
    if (false) { (void)(cond); } \
  } while (0)
#define HSR_DCHECK_MSG(cond, msg)             \
  do {                                        \
    if (false) { (void)(cond); (void)(msg); } \
  } while (0)
#endif
