// Tiny CSV writer used by bench binaries and examples to dump figure data.
#pragma once

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace hsr::util {

// Writes rows to an ostream (file or stdout) with minimal quoting: fields
// containing commas, quotes or newlines are double-quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& fields);
  void write_row(std::initializer_list<std::string> fields) {
    write_row(std::vector<std::string>(fields));
  }

  // Convenience: formats arbitrary streamable values into one row.
  template <typename... Ts>
  void row(const Ts&... values) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(values));
    (fields.push_back(to_field(values)), ...);
    write_row(fields);
  }

 private:
  template <typename T>
  static std::string to_field(const T& v) {
    std::ostringstream ss;
    ss << v;
    return ss.str();
  }
  static std::string escape(const std::string& field);
  std::ostream& os_;
};

}  // namespace hsr::util
