// Minimal Status / StatusOr error-propagation types.
//
// Used at module boundaries where a failure is an expected outcome (parsing
// traces, estimating parameters from degenerate flows) rather than a
// programming error. Programming errors use HSR_CHECK/assertions instead.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/logging.h"

namespace hsr::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kResourceExhausted,  // a budget (events, time, retries) was used up
  kUnavailable,        // transient failure; retrying may succeed
};

// Returns a stable human-readable name for a status code.
const char* status_code_name(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status invalid_argument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status not_found(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status out_of_range(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status failed_precondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status resource_exhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Value-or-error. `value()` on an error status throws std::runtime_error,
// so callers that cannot handle the failure fail loudly rather than reading
// indeterminate data.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {   // NOLINT(google-explicit-constructor)
    HSR_CHECK_MSG(!status_.is_ok(), "OK StatusOr must carry a value");
  }

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    if (!value_) throw std::runtime_error("StatusOr::value on error: " + status_.to_string());
    return *value_;
  }
  T& value() & {
    if (!value_) throw std::runtime_error("StatusOr::value on error: " + status_.to_string());
    return *value_;
  }
  T value_or(T fallback) const {
    return value_ ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace hsr::util
