// Allocation counting for zero-allocation assertions and allocs-per-event
// benchmarking.
//
// The counters are maintained by replacement global operator new/delete.
// Replacements must be defined in exactly ONE translation unit of a binary,
// so the definitions are guarded: a binary that wants counting defines
// HSRTCP_ALLOC_PROBE_DEFINE_GLOBALS before including this header in one TU
// (see tests/sim/hotpath_alloc_test.cpp and bench/bench_hotpath.cpp).
// Binaries that never define the macro are untouched — the library itself
// never replaces the allocator.
//
// Counters are thread-local: a probe scope measures only what the current
// thread allocates, so parallel shards do not pollute each other's counts.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hsr::util {

struct AllocProbe {
  // Monotonic per-thread counters, bumped by the replacement operators.
  static inline thread_local std::uint64_t news = 0;
  static inline thread_local std::uint64_t deletes = 0;
  static inline thread_local std::uint64_t bytes_requested = 0;

  // Snapshot-delta helper: Scope s; ...work...; s.news_delta().
  class Scope {
   public:
    Scope() : news0_(news), deletes0_(deletes), bytes0_(bytes_requested) {}
    std::uint64_t news_delta() const { return news - news0_; }
    std::uint64_t deletes_delta() const { return deletes - deletes0_; }
    std::uint64_t bytes_delta() const { return bytes_requested - bytes0_; }

   private:
    std::uint64_t news0_;
    std::uint64_t deletes0_;
    std::uint64_t bytes0_;
  };
};

}  // namespace hsr::util

#ifdef HSRTCP_ALLOC_PROBE_DEFINE_GLOBALS

#include <cstdlib>
#include <new>

namespace hsr::util::alloc_probe_internal {

inline void* counted_alloc(std::size_t size) {
  ++AllocProbe::news;
  AllocProbe::bytes_requested += size;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  ++AllocProbe::news;
  AllocProbe::bytes_requested += size;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void counted_free(void* p) noexcept {
  if (p != nullptr) ++AllocProbe::deletes;
  std::free(p);
}

}  // namespace hsr::util::alloc_probe_internal

void* operator new(std::size_t size) {
  return hsr::util::alloc_probe_internal::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return hsr::util::alloc_probe_internal::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return hsr::util::alloc_probe_internal::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return hsr::util::alloc_probe_internal::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { hsr::util::alloc_probe_internal::counted_free(p); }
void operator delete[](void* p) noexcept {
  hsr::util::alloc_probe_internal::counted_free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  hsr::util::alloc_probe_internal::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  hsr::util::alloc_probe_internal::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  hsr::util::alloc_probe_internal::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  hsr::util::alloc_probe_internal::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  hsr::util::alloc_probe_internal::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  hsr::util::alloc_probe_internal::counted_free(p);
}

#endif  // HSRTCP_ALLOC_PROBE_DEFINE_GLOBALS
