#include "util/logging.h"

namespace hsr::util {

namespace {
LogLevel g_threshold = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() { return g_threshold; }
void set_log_threshold(LogLevel level) { g_threshold = level; }

namespace internal {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(level >= g_threshold && g_threshold != LogLevel::kOff) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << level_name(level) << " " << base << ":" << line << "] ";
  }
}

// std::cerr is unit-buffered, so '\n' flushes just like std::endl without
// the extra explicit flush (performance-avoid-endl).
LogLine::~LogLine() {
  if (enabled_) std::cerr << stream_.str() << '\n';
}

}  // namespace internal
}  // namespace hsr::util
