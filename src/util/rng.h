// Deterministic, splittable random-number generation.
//
// Every stochastic component (loss models, channels, workloads) takes an Rng
// constructed from the experiment seed plus a component label, so adding or
// reordering components does not perturb the random streams of the others.
// Experiments are therefore bit-reproducible given the same seed.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace hsr::util {

// Mixes a 64-bit state into a well-distributed output (SplitMix64 finalizer).
std::uint64_t splitmix64(std::uint64_t x);

// Hashes a label into a 64-bit stream id (FNV-1a + splitmix finalization).
std::uint64_t hash_label(std::string_view label);

class Rng {
 public:
  // Root generator for an experiment.
  explicit Rng(std::uint64_t seed) : engine_(splitmix64(seed)), seed_(seed) {}

  // Derives an independent substream for a named component.
  Rng fork(std::string_view label) const {
    return Rng(splitmix64(seed_ ^ hash_label(label)));
  }
  // Derives an independent substream for an indexed component (flow i, ...).
  Rng fork(std::string_view label, std::uint64_t index) const {
    return Rng(splitmix64(seed_ ^ hash_label(label) ^ splitmix64(index + 0x9e3779b97f4a7c15ULL)));
  }

  // Uniform in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }
  // Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  // Bernoulli with probability p (p outside [0,1] is clamped).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }
  // Exponential with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }
  // Normal (Gaussian).
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  // Log-normal parameterized by the mean/stddev of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }
  // Pareto with shape alpha (>0) and scale x_m (>0); heavy-tailed sizes.
  double pareto(double alpha, double x_m) {
    const double u = 1.0 - uniform();  // (0, 1]
    return x_m / std::pow(u, 1.0 / alpha);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;  // determinism-ok: the Rng wrapper itself
  std::uint64_t seed_ = 0;
};

}  // namespace hsr::util
