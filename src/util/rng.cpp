#include "util/rng.h"

namespace hsr::util {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return splitmix64(h);
}

}  // namespace hsr::util
