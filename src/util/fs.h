// Filesystem seam for every durable write the pipeline performs.
//
// All archive/plan/corpus/manifest writers route their opens, appends,
// fsyncs, renames and removals through a `Fs` so that crash-safety tests can
// substitute `fault::FaultInjectingFs` and script ENOSPC, torn renames,
// short writes and transient EIO deterministically (the I/O twin of
// `fault::FaultPlan` on the channel side). Production code uses `Fs::real()`.
//
// Error contract: a `kUnavailable` status from any operation means the
// failure was transient and NO bytes were durably consumed by the attempt,
// so repeating the same call is safe. `retry_transient` below encodes the
// bounded deterministic retry policy (attempt counting only — no wall-clock
// sleeps, so the determinism lint holds).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace hsr::util {

// An open file being written. Obtained from `Fs::open_for_write`; destroying
// the object without `close()` abandons buffered data (best-effort flush, no
// error reporting) — writers that care about durability must `sync()` and
// `close()` explicitly and check both.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status append(std::string_view data) = 0;
  // Flushes application and kernel buffers to stable storage (fsync).
  virtual Status sync() = 0;
  virtual Status close() = 0;
};

// The I/O seam. Pure-virtual so tests can interpose; `real()` returns the
// process-wide production backend.
class Fs {
 public:
  virtual ~Fs() = default;

  // Opens `path` for writing, truncating any existing file.
  virtual StatusOr<std::unique_ptr<WritableFile>> open_for_write(
      const std::string& path) = 0;
  virtual Status rename_file(const std::string& from, const std::string& to) = 0;
  // Removing a file that does not exist is OK (idempotent cleanup).
  virtual Status remove_file(const std::string& path) = 0;
  // Recursive removal; a missing path is OK.
  virtual Status remove_all(const std::string& path) = 0;
  virtual Status truncate_file(const std::string& path, std::uint64_t size) = 0;
  virtual Status create_directories(const std::string& path) = 0;
  virtual StatusOr<std::uint64_t> file_size(const std::string& path) = 0;
  [[nodiscard]] virtual bool exists(const std::string& path) = 0;

  static Fs& real();
};

// Bounded retry budget for kUnavailable failures. Attempt-counted, not
// timed: attempt, and on transient failure immediately attempt again, up to
// this many total attempts.
inline constexpr int kTransientRetryAttempts = 4;

// Runs `fn` (returning Status) up to kTransientRetryAttempts times while it
// keeps failing with kUnavailable; returns the first non-transient status or
// the last transient one if the budget runs out.
template <typename Fn>
Status retry_transient(Fn&& fn) {
  Status last;
  for (int attempt = 0; attempt < kTransientRetryAttempts; ++attempt) {
    last = fn();
    if (last.code() != StatusCode::kUnavailable) return last;
  }
  return last;
}

// Writes `contents` to `path` atomically: writes `path + ".tmp"`, fsyncs,
// then renames over `path`. On any failure the tmp file is removed
// (best-effort) and `path` is left exactly as it was — a pre-existing file
// at `path` survives every failure mode intact. Whole-attempt transient
// retry per `retry_transient`.
Status write_file_atomic(Fs& fs, const std::string& path,
                         std::string_view contents);

}  // namespace hsr::util
