// A small-buffer-optimized, move-only callable — the event-action type of
// the simulation hot path.
//
// std::function heap-allocates whenever a capture outgrows its (tiny,
// implementation-defined) internal buffer, which put one allocation on
// every schedule of a non-trivial event action. InlineFunction makes the
// buffer an explicit template parameter: a capture that fits (and is
// nothrow-move-constructible, and not over-aligned) is stored in place and
// never touches the allocator; anything else degrades gracefully to a
// single heap allocation instead of failing to compile. The inline/heap
// decision is made entirely at compile time from sizeof/alignof, so the
// hot-path callers can static_assert that their captures stay inline.
//
// Differences from std::function, all deliberate:
//   * move-only (no copy): event actions own their captures exactly once;
//   * no target_type()/target() RTTI surface;
//   * invoking an empty InlineFunction is a checked fatal error, not a
//     bad_function_call exception (the simulator never runs with
//     exceptions as control flow).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/logging.h"

namespace hsr::util {

// Default inline capture budget. Callers on hot paths size their own
// instantiation to their largest capture (see sim::EventAction).
inline constexpr std::size_t kInlineFunctionDefaultBytes = 64;

template <class Signature, std::size_t InlineBytes = kInlineFunctionDefaultBytes>
class InlineFunction;  // only the R(Args...) partial specialization exists

template <class R, class... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  static constexpr std::size_t kInlineBytes = InlineBytes;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);
  static_assert(InlineBytes >= sizeof(void*),
                "inline buffer must at least hold the heap-fallback pointer");

  // True when a callable of type F is stored in the inline buffer (no heap):
  // it fits, is not over-aligned, and can be relocated without throwing
  // (vector reallocation of event slots must be noexcept).
  template <class F>
  static constexpr bool holds_inline() {
    return sizeof(F) <= InlineBytes && alignof(F) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<F>;
  }

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    construct<D>(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { take_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take_from(other);
    }
    return *this;
  }
  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction& operator=(F&& f) {
    reset();
    construct<D>(std::forward<F>(f));
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    HSR_CHECK_MSG(ops_ != nullptr, "invoking an empty InlineFunction");
    return ops_->invoke(&storage_, std::forward<Args>(args)...);
  }

  // Releases the stored callable; the function becomes empty.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

 private:
  // Per-type operations table; one static instance per stored callable type
  // (inline and heap models get distinct tables).
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    // Move-construct the callable from `from`'s storage into `to`'s storage
    // and destroy the one in `from`. Must not throw: slab/vector relocation
    // of event slots relies on it.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <class F>
  static F* inline_ptr(void* storage) {
    return std::launder(reinterpret_cast<F*>(storage));
  }

  template <class F>
  static constexpr Ops kInlineOps = {
      /*invoke=*/[](void* storage, Args&&... args) -> R {
        return (*inline_ptr<F>(storage))(std::forward<Args>(args)...);
      },
      /*relocate=*/
      [](void* from, void* to) noexcept {
        F* src = inline_ptr<F>(from);
        ::new (to) F(std::move(*src));
        src->~F();
      },
      /*destroy=*/[](void* storage) noexcept { inline_ptr<F>(storage)->~F(); },
  };

  // Heap model: the buffer holds a single F*. Covers oversized and
  // over-aligned captures (operator new honors alignof(F) since C++17) and
  // types with throwing moves.
  template <class F>
  static constexpr Ops kHeapOps = {
      /*invoke=*/[](void* storage, Args&&... args) -> R {
        return (**inline_ptr<F*>(storage))(std::forward<Args>(args)...);
      },
      /*relocate=*/
      [](void* from, void* to) noexcept {
        ::new (to) F*(*inline_ptr<F*>(from));
      },
      /*destroy=*/[](void* storage) noexcept { delete *inline_ptr<F*>(storage); },
  };

  template <class D, class F>
  void construct(F&& f) {
    if constexpr (holds_inline<D>()) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(&storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  // Precondition: *this is empty. Leaves `other` empty.
  void take_from(InlineFunction& other) noexcept {
    if (other.ops_ == nullptr) return;
    ops_ = other.ops_;
    ops_->relocate(&other.storage_, &storage_);
    other.ops_ = nullptr;
  }

  alignas(kInlineAlign) std::byte storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace hsr::util
