// Strong time types for the simulator.
//
// All simulation time is kept as integer nanoseconds to make event ordering
// exact and runs bit-reproducible across platforms; helpers convert to and
// from floating-point seconds only at API boundaries (models, reports).
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace hsr::util {

// A span of simulated time. Signed so that differences are representable.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t ns) { return Duration(ns); }
  static constexpr Duration micros(std::int64_t us) { return Duration(us * 1'000); }
  static constexpr Duration millis(std::int64_t ms) { return Duration(ms * 1'000'000); }
  static constexpr Duration seconds(std::int64_t s) { return Duration(s * 1'000'000'000); }
  // Converts from floating-point seconds, rounding to the nearest nanosecond.
  static constexpr Duration from_seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr auto operator<=>(const Duration&) const = default;

  // Scales by a floating-point factor (used for jitter and backoff caps).
  constexpr Duration scaled(double k) const {
    return Duration(static_cast<std::int64_t>(static_cast<double>(ns_) * k + 0.5));
  }

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

// An absolute point on the simulation clock (ns since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_ns(std::int64_t ns) { return TimePoint(ns); }
  static constexpr TimePoint from_seconds(double s) {
    return TimePoint(Duration::from_seconds(s).ns());
  }
  static constexpr TimePoint zero() { return TimePoint(0); }
  static constexpr TimePoint max() {
    return TimePoint(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(ns_ + d.ns()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(ns_ - d.ns()); }
  constexpr Duration operator-(TimePoint o) const { return Duration::nanos(ns_ - o.ns_); }
  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace hsr::util
