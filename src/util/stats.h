// Streaming and batch statistics used by the measurement methodology:
// running moments (Welford), empirical CDFs, percentiles, histograms and
// Pearson correlation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hsr::util {

// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }
  // Raw second central moment (sum of squared deviations); exposed so the
  // accumulator can be serialized and rebuilt losslessly (corpus_stats).
  double m2() const { return m2_; }

  // Rebuilds an accumulator from its serialized parts. The inverse of
  // (count, mean, m2, min, max) — bitwise, provided the doubles round-trip.
  static RunningStats from_parts(std::size_t n, double mean, double m2, double min,
                                 double max) {
    RunningStats s;
    s.n_ = n;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// An empirical cumulative distribution over a finite sample.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  void add(double x);
  // Sorts pending samples; called implicitly by queries.
  void finalize();

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  // F(x): fraction of samples <= x.
  double cdf(double x);
  // Inverse CDF; p in [0,1], clamped. Linear interpolation between order
  // statistics.
  double quantile(double p);
  double median() { return quantile(0.5); }
  double mean() const;
  // Evenly spaced (x, F(x)) points suitable for plotting, at most
  // `max_points` of them.
  std::vector<std::pair<double, double>> curve(std::size_t max_points = 100);

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  bool sorted_ = true;
};

// Fixed-width histogram over [lo, hi); out-of-range samples land in
// saturating edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const { return total_; }
  double bucket_low(std::size_t bucket) const;
  double bucket_high(std::size_t bucket) const;
  // Renders a terminal bar chart (for bench/report binaries).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Pearson correlation coefficient of two equal-length series.
// Returns 0 for degenerate inputs (length < 2 or zero variance).
double pearson_correlation(const std::vector<double>& xs, const std::vector<double>& ys);

// Simple least-squares line fit y = a + b x. Returns {a, b};
// {mean(y), 0} for degenerate inputs.
std::pair<double, double> linear_fit(const std::vector<double>& xs,
                                     const std::vector<double>& ys);

double mean_of(const std::vector<double>& xs);

}  // namespace hsr::util
