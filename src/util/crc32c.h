// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum used by the
// hsrtrace-b2 frame format and the campaign manifest chunk digests.
//
// Software implementation (slicing-by-4 over constexpr tables): no SSE4.2
// dependency, byte-order independent, deterministic everywhere. Throughput is
// far above what the corpus merge path needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hsr::util {

// Extends a running CRC-32C with `size` bytes. Start a fresh checksum with
// `crc = 0`; the returned value is the finalized checksum (the customary
// init/final XOR is handled internally, so values compose as
// `crc32c(crc32c(0, a), b) == crc32c(0, ab)`).
std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t size);

inline std::uint32_t crc32c(std::string_view bytes) {
  return crc32c(0, bytes.data(), bytes.size());
}

}  // namespace hsr::util
