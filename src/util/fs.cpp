#include "util/fs.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace hsr::util {
namespace {

std::string errno_detail(const char* op, const std::string& path) {
  return std::string(op) + " '" + path + "': " + std::strerror(errno);
}

class RealWritableFile final : public WritableFile {
 public:
  RealWritableFile(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}

  ~RealWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status append(std::string_view data) override {
    if (file_ == nullptr) {
      return Status::failed_precondition("append on closed file '" + path_ + "'");
    }
    if (data.empty()) return Status::ok();
    const std::size_t n = std::fwrite(data.data(), 1, data.size(), file_);
    if (n != data.size()) {
      return Status::internal(errno_detail("write", path_));
    }
    return Status::ok();
  }

  Status sync() override {
    if (file_ == nullptr) {
      return Status::failed_precondition("sync on closed file '" + path_ + "'");
    }
    if (std::fflush(file_) != 0) {
      return Status::internal(errno_detail("flush", path_));
    }
#ifndef _WIN32
    if (::fsync(::fileno(file_)) != 0) {
      return Status::internal(errno_detail("fsync", path_));
    }
#endif
    return Status::ok();
  }

  Status close() override {
    if (file_ == nullptr) return Status::ok();
    std::FILE* f = std::exchange(file_, nullptr);
    if (std::fclose(f) != 0) {
      return Status::internal(errno_detail("close", path_));
    }
    return Status::ok();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class RealFs final : public Fs {
 public:
  StatusOr<std::unique_ptr<WritableFile>> open_for_write(
      const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::internal(errno_detail("open for write", path));
    }
    return std::unique_ptr<WritableFile>(new RealWritableFile(f, path));
  }

  Status rename_file(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::internal("rename '" + from + "' -> '" + to +
                              "': " + std::strerror(errno));
    }
    return Status::ok();
  }

  Status remove_file(const std::string& path) override {
    std::error_code ec;
    std::filesystem::remove(path, ec);  // false (missing) is fine
    if (ec) {
      return Status::internal("remove '" + path + "': " + ec.message());
    }
    return Status::ok();
  }

  Status remove_all(const std::string& path) override {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
    if (ec) {
      return Status::internal("remove_all '" + path + "': " + ec.message());
    }
    return Status::ok();
  }

  Status truncate_file(const std::string& path, std::uint64_t size) override {
    std::error_code ec;
    std::filesystem::resize_file(path, size, ec);
    if (ec) {
      return Status::internal("truncate '" + path + "': " + ec.message());
    }
    return Status::ok();
  }

  Status create_directories(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) {
      return Status::internal("mkdir '" + path + "': " + ec.message());
    }
    return Status::ok();
  }

  StatusOr<std::uint64_t> file_size(const std::string& path) override {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) {
      return Status(StatusCode::kNotFound,
                    "file_size '" + path + "': " + ec.message());
    }
    return static_cast<std::uint64_t>(size);
  }

  bool exists(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::exists(path, ec);
  }
};

}  // namespace

Fs& Fs::real() {
  static RealFs fs;
  return fs;
}

Status write_file_atomic(Fs& fs, const std::string& path,
                         std::string_view contents) {
  const std::string tmp = path + ".tmp";
  Status st = retry_transient([&] {
    auto file = fs.open_for_write(tmp);
    if (!file.is_ok()) return file.status();
    WritableFile& f = *file.value();
    Status s = f.append(contents);
    if (s.is_ok()) s = f.sync();
    if (s.is_ok()) s = f.close();
    if (!s.is_ok()) {
      (void)f.close();  // best effort; error already captured
      (void)fs.remove_file(tmp);
    }
    return s;
  });
  if (!st.is_ok()) {
    (void)fs.remove_file(tmp);
    return st;
  }
  st = retry_transient([&] { return fs.rename_file(tmp, path); });
  if (!st.is_ok()) {
    (void)fs.remove_file(tmp);
    return st;
  }
  return Status::ok();
}

}  // namespace hsr::util
