#include "util/thread_pool.h"

#include "util/logging.h"

namespace hsr::util {

unsigned resolve_thread_count(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned total = resolve_thread_count(threads);
  workers_.reserve(total - 1);
  for (unsigned i = 1; i < total; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(unsigned worker_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(unsigned, std::uint64_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || job_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
      fn = job_fn_;
    }
    run_indices(worker_id, *fn);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --workers_running_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::run_indices(unsigned worker_id,
                             const std::function<void(unsigned, std::uint64_t)>& fn) {
  for (;;) {
    const std::uint64_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= job_n_) return;
    try {
      fn(worker_id, i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      // Abandon unclaimed indices: every claimer's next fetch_add lands
      // past the end and drains.
      next_index_.store(job_n_, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::parallel_for(std::uint64_t n,
                              const std::function<void(std::uint64_t)>& fn) {
  parallel_for_worker(n, [&fn](unsigned /*worker*/, std::uint64_t i) { fn(i); });
}

void ThreadPool::parallel_for_worker(
    std::uint64_t n, const std::function<void(unsigned, std::uint64_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Sequential path: identical to the pre-pool code, exception semantics
    // included (a throw propagates from the failing index directly).
    for (std::uint64_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    HSR_CHECK_MSG(workers_running_ == 0, "ThreadPool::parallel_for is not reentrant");
    job_fn_ = &fn;
    job_n_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    workers_running_ = static_cast<unsigned>(workers_.size());
    ++job_generation_;
  }
  start_cv_.notify_all();
  run_indices(0, fn);  // the calling thread works too, as worker 0
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return workers_running_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void parallel_for(unsigned threads, std::uint64_t n,
                  const std::function<void(std::uint64_t)>& fn) {
  ThreadPool pool(threads);
  pool.parallel_for(n, fn);
}

}  // namespace hsr::util
