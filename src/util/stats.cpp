#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/logging.h"

namespace hsr::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(false) {
  finalize();
}

void EmpiricalCdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalCdf::finalize() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::cdf(double x) {
  finalize();
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double p) {
  finalize();
  if (samples_.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double EmpiricalCdf::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(std::size_t max_points) {
  finalize();
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || max_points == 0) return out;
  const std::size_t n = samples_.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = 0; i < n; i += step) {
    out.emplace_back(samples_[i], static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (out.back().first != samples_.back()) {
    out.emplace_back(samples_.back(), 1.0);
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  // HSR_CHECK (not assert): a zero-bucket or inverted-range histogram would
  // index out of bounds on the first add(), in release builds too.
  HSR_CHECK_MSG(hi > lo, "histogram range inverted or empty");
  HSR_CHECK_MSG(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / bucket_width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bucket_low(std::size_t bucket) const {
  return lo_ + bucket_width_ * static_cast<double>(bucket);
}

double Histogram::bucket_high(std::size_t bucket) const {
  return lo_ + bucket_width_ * static_cast<double>(bucket + 1);
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream os;
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bars =
        peak == 0 ? 0 : counts_[i] * width / peak;
    os << "[" << bucket_low(i) << ", " << bucket_high(i) << ") "
       << std::string(bars, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

double pearson_correlation(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double n = static_cast<double>(xs.size());
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  (void)n;
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::pair<double, double> linear_fit(const std::vector<double>& xs,
                                     const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    return {mean_of(ys), 0.0};
  }
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  if (sxx <= 0.0) return {my, 0.0};
  const double b = sxy / sxx;
  return {my - b * mx, b};
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

}  // namespace hsr::util
