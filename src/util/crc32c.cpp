#include "util/crc32c.h"

#include <array>

namespace hsr::util {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 bit-reflected

constexpr std::array<std::array<std::uint32_t, 256>, 4> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 4> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
    t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
    t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
  }
  return t;
}

constexpr auto kTables = make_tables();

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (size >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables[3][crc & 0xFFu] ^ kTables[2][(crc >> 8) & 0xFFu] ^
          kTables[1][(crc >> 16) & 0xFFu] ^ kTables[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace hsr::util
