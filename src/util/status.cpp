#include "util/status.h"

namespace hsr::util {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  return std::string(status_code_name(code_)) + ": " + message_;
}

}  // namespace hsr::util
