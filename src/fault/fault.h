// Deterministic, scripted fault injection for the simulated network path.
//
// The paper's headline phenomena are fault-driven — 49.24 % of timeouts are
// spurious (every ACK of a round lost, parameter P_a) and timeout recovery
// stalls because retransmissions are lost at q ≈ 27 % — but organic channel
// models (Gilbert–Elliott, the radio environment) only reach those states
// stochastically. A FaultPlan turns them into directly scriptable events: an
// ordered list of directives that match on packet metadata (data vs ACK,
// sequence range, time window, retransmission flag) and fire a bounded
// number of times. The FaultInjector is a ChannelModel decorator, so it
// composes with any existing channel exactly like PerfectChannel /
// GilbertElliott / JitterChannel, and it records an audit trail of every
// triggered fault so traces show WHY a packet died.
//
// Plans are also portable artifacts: FaultPlan::to_text() serializes a plan
// to a line-oriented text format ("hsrfaultplan-v1", see fault/plan_io.h)
// and FaultPlan::parse() reads it back, so an archived experiment can be
// re-run bit-identically from its plan file alone.
//
// Everything here is deterministic by construction: no RNG, only packet
// metadata and the virtual clock.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "net/channel.h"
#include "net/packet.h"
#include "trace/capture.h"
#include "util/status.h"
#include "util/time.h"

namespace hsr::fault {

using net::Packet;
using net::SeqNo;
using util::Duration;
using util::TimePoint;

enum class FaultAction : std::uint8_t {
  kDrop = 0,       // lose the packet on the air
  kDelay = 1,      // add extra latency (spike; large values force reordering)
  kDuplicate = 2,  // inject extra copies of the packet
};

// Returns the single-character audit code for an action ('X', 'L', '2').
char fault_action_code(FaultAction action);

// One scripted fault: fires when EVERY matcher holds, at most `max_triggers`
// times. Directives are evaluated in plan order; the first drop directive
// that matches wins, while delay/duplicate effects accumulate across
// directives.
struct FaultDirective {
  FaultAction action = FaultAction::kDrop;

  // --- Matchers (all must hold) --------------------------------------------
  // Packet kind filter. kAny matches data and ACKs alike.
  enum class KindFilter : std::uint8_t { kAny = 0, kData = 1, kAck = 2 };
  KindFilter kind = KindFilter::kAny;
  // Half-open virtual-time window [window_begin, window_end).
  TimePoint window_begin = TimePoint::zero();
  TimePoint window_end = TimePoint::max();
  // Inclusive sequence range, matched against `seq` for data packets and
  // `ack_next` for ACKs (so an ACK "round" is addressable by what it acks).
  SeqNo seq_min = 0;
  SeqNo seq_max = std::numeric_limits<SeqNo>::max();
  // Fire only on retransmitted data (pins the paper's q).
  bool only_retransmissions = false;
  // Stop firing after this many triggers ("drop the NEXT K ...").
  std::uint64_t max_triggers = std::numeric_limits<std::uint64_t>::max();

  // --- Action parameters ----------------------------------------------------
  Duration delay = Duration::zero();  // kDelay: extra latency per trigger
  unsigned copies = 1;                // kDuplicate: extra copies injected

  // Audit tag (serialized into traces and plan files; keep it
  // whitespace-free).
  std::string label = "fault";

  [[nodiscard]] bool matches(const Packet& packet, TimePoint now,
               std::uint64_t triggers_so_far) const;

  friend bool operator==(const FaultDirective&, const FaultDirective&) = default;
};

// An ordered fault script for ONE link direction. Builder methods cover the
// paper's recovery-phase pathologies; arbitrary directives can be appended
// directly to `directives`.
struct FaultPlan {
  std::vector<FaultDirective> directives;

  [[nodiscard]] bool empty() const { return directives.empty(); }

  // Portable text serialization ("hsrfaultplan-v1"). parse(to_text(p)) == p
  // for every plan; see fault/plan_io.h for the grammar and file helpers.
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static util::StatusOr<FaultPlan> parse(const std::string& text);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

  // Drops every packet (data and ACK alike) in [from, to): a coverage-gap /
  // handoff blackout for the direction this plan is installed on.
  FaultPlan& blackout(TimePoint from, TimePoint to, std::string label = "blackout");

  // Drops every ACK in [from, to): forces the paper's spurious timeout when
  // the window spans a full round of ACKs (P_a as a scripted event).
  FaultPlan& kill_acks(TimePoint from, TimePoint to, std::string label = "ack-burst");

  // Drops every ACK whose cumulative ack_next lies in [lo, hi]: "kill all
  // ACKs of round N" addressed by sequence instead of time.
  FaultPlan& kill_ack_range(SeqNo lo, SeqNo hi, std::string label = "ack-round");

  // Drops the next `k` retransmitted data packets (pins q: with the organic
  // channel perfect, exactly these recovery-phase losses occur).
  FaultPlan& drop_retransmissions(std::uint64_t k, std::string label = "retx-loss");

  // Drops the next `k` transmissions of data segments in [lo, hi].
  FaultPlan& drop_segment_range(SeqNo lo, SeqNo hi, std::uint64_t k,
                                std::string label = "seg-loss");

  // Adds `extra` latency to every packet in [from, to) (delay spike; a spike
  // on a sub-range of packets reorders them past their successors).
  FaultPlan& delay_spike(TimePoint from, TimePoint to, Duration extra,
                         std::string label = "delay-spike");

  // Injects `copies` extra copies of the next `k` matching packets.
  FaultPlan& duplicate_next(std::uint64_t k, unsigned copies = 1,
                            std::string label = "duplicate");
};

// ChannelModel decorator executing a FaultPlan in front of an inner channel.
// Scripted drop directives are evaluated first (deterministically) and
// short-circuit the inner channel; packets they spare are passed through, so
// organic and scripted behaviour compose. Delay/duplicate directives apply
// only to delivered packets. Thread-compatible like every ChannelModel:
// owned by one Link in one single-threaded simulation.
class FaultInjector final : public net::ChannelModel {
 public:
  FaultInjector(FaultPlan plan, std::unique_ptr<net::ChannelModel> inner);

  // Scripted drops carry DropCause::scripted(directive_index); drops decided
  // by the inner channel keep the inner channel's cause.
  net::ChannelVerdict decide(const Packet& packet, TimePoint now) override;

  // Routes the audit trail into a capture ('D' for the data link, 'A' for
  // the ACK link). The sink must outlive every event the injector sees.
  void set_audit(std::vector<trace::FaultRecord>* sink, char direction) {
    audit_ = sink;
    direction_ = direction;
  }

  const FaultPlan& plan() const { return plan_; }
  // Times directive `i` has fired so far.
  std::uint64_t triggers(std::size_t i) const { return trigger_counts_[i]; }
  // Total scripted faults fired (all directives).
  std::uint64_t faults_triggered() const { return total_triggers_; }

 private:
  void record(std::size_t directive_index, const Packet& packet, TimePoint now,
              Duration delay);

  FaultPlan plan_;
  std::vector<std::uint64_t> trigger_counts_;
  std::uint64_t total_triggers_ = 0;
  std::unique_ptr<net::ChannelModel> inner_;
  std::vector<trace::FaultRecord>* audit_ = nullptr;
  char direction_ = '?';
};

}  // namespace hsr::fault
