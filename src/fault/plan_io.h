// Portable text serialization of FaultPlans ("hsrfaultplan-v1").
//
// A plan file makes an archived experiment re-runnable: saved alongside a
// trace archive, it carries the exact scripted faults that shaped the
// capture, and feeding it back through FaultPlan::parse() reproduces the
// run bit-identically (scripted faults are deterministic by construction).
//
// Grammar — a header line, then ONE positional-token line per directive:
//   hsrfaultplan-v1 directives=<N>
//   <action> <kind> <win_begin_ns> <win_end_ns> <seq_min> <seq_max>
//       <retx> <max_triggers> <delay_ns> <copies> <label>
// (one line; wrapped here for width) where
//   action is 'X' (drop), 'L' (delay) or '2' (duplicate) — the same codes
//     the trace fault-audit lines use;
//   kind is '*' (any), 'D' (data) or 'A' (ack);
//   retx is 0 or 1 (only_retransmissions);
//   '*' stands in for the unbounded sentinel in win_end_ns / seq_max /
//     max_triggers (TimePoint::max(), SeqNo max, uint64 max respectively);
//   label is a single whitespace-free token (sanitized on write).
// Malformed input fails with the line number and offending token in the
// Status message, mirroring trace_io's positional diagnostics.
#pragma once

#include <iosfwd>
#include <string>

#include "fault/fault.h"
#include "util/status.h"

namespace hsr::fault {

void write_fault_plan(std::ostream& os, const FaultPlan& plan);
[[nodiscard]] util::StatusOr<FaultPlan> read_fault_plan(std::istream& is);

// Convenience file wrappers. Saving is atomic (write to `<path>.tmp`, then
// rename into place), matching trace_io::save_flow_capture.
[[nodiscard]] util::Status save_fault_plan(const std::string& path, const FaultPlan& plan);
[[nodiscard]] util::StatusOr<FaultPlan> load_fault_plan(const std::string& path);

}  // namespace hsr::fault
