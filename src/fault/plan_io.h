// Portable text serialization of FaultPlans ("hsrfaultplan-v1" / "-v2").
//
// A plan file makes an archived experiment re-runnable: saved alongside a
// trace archive, it carries the exact scripted faults that shaped the
// capture, and feeding it back through FaultPlan::parse() reproduces the
// run bit-identically (scripted faults are deterministic by construction).
//
// v1 grammar — a header line, then ONE positional-token line per directive:
//   hsrfaultplan-v1 directives=<N>
//   <action> <kind> <win_begin_ns> <win_end_ns> <seq_min> <seq_max>
//       <retx> <max_triggers> <delay_ns> <copies> <label>
// (one line; wrapped here for width) where
//   action is 'X' (drop), 'L' (delay) or '2' (duplicate) — the same codes
//     the trace fault-audit lines use;
//   kind is '*' (any), 'D' (data) or 'A' (ack);
//   retx is 0 or 1 (only_retransmissions);
//   '*' stands in for the unbounded sentinel in win_end_ns / seq_max /
//     max_triggers (TimePoint::max(), SeqNo max, uint64 max respectively);
//   label is a single whitespace-free token (sanitized on write).
//
// v2 adds the experiment's link and TCP parameters so `trace_query replay`
// can rebuild the exact topology for ARBITRARY archived experiments (v1
// readers had to assume the fixed scripted-recipe config). Header and one
// optional parameter line, then the same directive lines as v1:
//   hsrfaultplan-v2 directives=<N> params=<0|1>
//   P <down_rate_bps> <down_delay_ns> <down_queue>
//     <up_rate_bps> <up_delay_ns> <up_queue>
//     <mss_bytes> <delayed_ack_b> <min_rto_ns> <receiver_window>
//     <sack> <frto> [<cc> <adaptive_delack>]
// (one line; rates are shortest-round-trip decimals, flags are 0/1, cc is
// the CongestionControl enum value). The trailing pair is OPTIONAL on read
// and written only when either knob differs from its default (Reno,
// non-adaptive) — plans that never touch them keep the legacy 12-field
// line byte-for-byte.
// Writers emit v1 when no params are attached — existing archives and
// golden files stay byte-identical — and v2 only when they are.
// Malformed input fails with the line number and offending token in the
// Status message, mirroring trace_io's positional diagnostics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "fault/fault.h"
#include "tcp/types.h"
#include "util/fs.h"
#include "util/status.h"

namespace hsr::fault {

// Everything needed to rebuild a flow's topology for replay: both links,
// the advertised window, and the flow's protocol knobs — the latter as the
// shared tcp::TcpOptions struct (the same one workload configs and MPTCP
// subflow setup carry), so a knob added there reaches plan files too.
struct ReplayParams {
  double down_rate_bps = 10e6;
  std::int64_t down_delay_ns = 0;
  std::uint64_t down_queue = 64;
  double up_rate_bps = 10e6;
  std::int64_t up_delay_ns = 0;
  std::uint64_t up_queue = 64;
  std::uint32_t receiver_window = 64;
  // Protocol knobs. A min_rto of ZERO means "not recorded" (the legacy
  // P-line default — replay keeps its own default then), hence the zeroed
  // initializer instead of TcpOptions' live 200 ms default.
  tcp::TcpOptions tcp = unrecorded_options();

  static tcp::TcpOptions unrecorded_options() {
    tcp::TcpOptions o;
    o.min_rto = util::Duration::zero();
    return o;
  }

  friend bool operator==(const ReplayParams&, const ReplayParams&) = default;
};

// A parsed plan file: the directives plus, for v2 files that carry them,
// the replay parameters.
struct PlanFile {
  FaultPlan plan;
  std::optional<ReplayParams> params;
};

// Writes v1 when `params` is absent (byte-identical to the legacy writer),
// v2 with a P line when present.
void write_fault_plan(std::ostream& os, const FaultPlan& plan);
void write_plan_file(std::ostream& os, const PlanFile& file);

// Reads either version. read_fault_plan is the legacy surface: it accepts
// v2 input too, discarding the parameter block.
[[nodiscard]] util::StatusOr<FaultPlan> read_fault_plan(std::istream& is);
[[nodiscard]] util::StatusOr<PlanFile> read_plan_file(std::istream& is);

// Convenience file wrappers. Saving is atomic (write to `<path>.tmp`, fsync,
// then rename into place) through the util::Fs seam, matching
// trace_io::save_flow_capture; the seamless overloads use util::Fs::real().
[[nodiscard]] util::Status save_fault_plan(util::Fs& fs, const std::string& path,
                                           const FaultPlan& plan);
[[nodiscard]] util::Status save_fault_plan(const std::string& path, const FaultPlan& plan);
[[nodiscard]] util::StatusOr<FaultPlan> load_fault_plan(const std::string& path);
[[nodiscard]] util::Status save_plan_file(util::Fs& fs, const std::string& path,
                                          const PlanFile& file);
[[nodiscard]] util::Status save_plan_file(const std::string& path, const PlanFile& file);
[[nodiscard]] util::StatusOr<PlanFile> load_plan_file(const std::string& path);

}  // namespace hsr::fault
