// Deterministic, scripted fault injection for the storage path.
//
// The I/O twin of fault::FaultPlan: where FaultPlan scripts what the radio
// channel does to packets, an IoFaultPlan scripts what the filesystem does
// to durable writes — fail the Nth write, run out of disk after K bytes,
// tear a rename, return a transient EIO that heals on retry. Directives
// match on the operation kind and a path substring and fire a bounded
// number of times, and FaultInjectingFs is a util::Fs decorator, so it
// composes in front of the production backend exactly like FaultInjector
// composes in front of a ChannelModel. An audit trail records every
// triggered fault so tests can assert WHY an archive write died.
//
// Everything here is deterministic by construction: outcomes depend only on
// the sequence of filesystem operations the plan observes, never on clocks
// or RNG. (Under a multi-threaded writer the observed op order is the
// schedule's; tests that need exact trigger placement pin one thread or
// scope the path substring to a single file.)
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "util/fs.h"
#include "util/status.h"

namespace hsr::fault {

enum class IoOp : std::uint8_t {
  kAny = 0,
  kOpen,
  kWrite,
  kSync,
  kRename,
  kRemove,
  kTruncate,
  kMkdir,
};

// Returns the single-character wire code for an op ('*', 'O', 'W', ...).
char io_op_code(IoOp op);
// Stable lowercase name for audit records and error messages.
const char* io_op_name(IoOp op);

enum class IoOutcome : std::uint8_t {
  kFail = 0,     // hard error (kInternal): the op did nothing
  kTransient,    // kUnavailable: the op did nothing; a retry may succeed
  kEnospc,       // kResourceExhausted once the byte budget is exhausted
  kShortWrite,   // write ops: half the buffer reaches the file, then error
  kTornRename,   // rename ops: source tmp is truncated to half and the
                 //   rename fails; the destination is never touched
};

// One scripted I/O fault: fires when the op kind and path match, after
// `skip` matching operations have been let through, at most `max_triggers`
// times. Directives are evaluated in plan order; the first that fires wins.
struct IoFaultDirective {
  IoOp op = IoOp::kAny;
  IoOutcome outcome = IoOutcome::kFail;
  // Substring match against the operation's path (either side of a rename).
  // Empty matches every path.
  std::string path_substring;
  // Matching operations to let through before the directive may fire.
  std::uint64_t skip = 0;
  // Stop firing after this many triggers.
  std::uint64_t max_triggers = 1;
  // kEnospc only: cumulative bytes the matching writes may consume before
  // the disk is "full"; once exceeded, every further matching write fails.
  std::uint64_t byte_limit = 0;
  // Audit tag (whitespace-free on the wire).
  std::string label = "io-fault";

  friend bool operator==(const IoFaultDirective&, const IoFaultDirective&) = default;
};

inline constexpr std::uint64_t kNoIoTriggerLimit =
    std::numeric_limits<std::uint64_t>::max();

// An ordered I/O fault script. Builder methods cover the crash-safety test
// matrix; arbitrary directives can be appended directly.
//
// Portable text serialization ("hsriofaultplan-v1"):
//   hsriofaultplan-v1 directives=<N>
//   <op> <outcome> <skip> <max_triggers> <byte_limit> <path> <label>
// where op is one of * O W S R D T M, outcome one of F U E H N,
// max_triggers may be '*' (unbounded) and path '*' (any). parse(to_text(p))
// == p for every plan.
struct IoFaultPlan {
  std::vector<IoFaultDirective> directives;

  [[nodiscard]] bool empty() const { return directives.empty(); }

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static util::StatusOr<IoFaultPlan> parse(const std::string& text);
  [[nodiscard]] static util::StatusOr<IoFaultPlan> load(const std::string& path);

  friend bool operator==(const IoFaultPlan&, const IoFaultPlan&) = default;

  // Fails the `n`th (1-based) write to a path containing `path_substring`.
  IoFaultPlan& fail_nth_write(std::uint64_t n, std::string path_substring = "",
                              std::string label = "write-fail");
  // The disk is full after `bytes` of matching writes.
  IoFaultPlan& enospc_after(std::uint64_t bytes, std::string path_substring = "",
                            std::string label = "enospc");
  // Half of the `n`th matching write reaches the file, then an error.
  IoFaultPlan& short_write(std::uint64_t n, std::string path_substring = "",
                           std::string label = "short-write");
  // Tears the next matching rename: source truncated to half, rename fails,
  // destination untouched.
  IoFaultPlan& torn_rename(std::string path_substring = "",
                           std::string label = "torn-rename");
  // The next `times` matching ops fail with kUnavailable, then heal.
  IoFaultPlan& transient(IoOp op, std::uint64_t times,
                         std::string path_substring = "",
                         std::string label = "transient-eio");
  // Hard-fails the next matching op of the given kind.
  IoFaultPlan& fail_next(IoOp op, std::string path_substring = "",
                         std::string label = "io-fail");
};

// One triggered fault, for the audit trail.
struct IoFaultRecord {
  std::size_t directive_index = 0;
  IoOp op = IoOp::kAny;
  std::string path;
  std::string label;
};

// util::Fs decorator executing an IoFaultPlan in front of an inner backend.
// Operations a directive spares are passed through untouched. Thread-safe:
// directive counters are guarded, matching the Fs seam's use from pool
// workers.
class FaultInjectingFs final : public util::Fs {
 public:
  // `inner` must outlive the decorator (and every WritableFile it opens).
  FaultInjectingFs(IoFaultPlan plan, util::Fs& inner);

  util::StatusOr<std::unique_ptr<util::WritableFile>> open_for_write(
      const std::string& path) override;
  util::Status rename_file(const std::string& from, const std::string& to) override;
  util::Status remove_file(const std::string& path) override;
  util::Status remove_all(const std::string& path) override;
  util::Status truncate_file(const std::string& path, std::uint64_t size) override;
  util::Status create_directories(const std::string& path) override;
  util::StatusOr<std::uint64_t> file_size(const std::string& path) override;
  bool exists(const std::string& path) override;

  const IoFaultPlan& plan() const { return plan_; }
  // Times directive `i` has fired so far.
  [[nodiscard]] std::uint64_t triggers(std::size_t i) const;
  // Total scripted faults fired (all directives).
  [[nodiscard]] std::uint64_t faults_triggered() const;
  // Snapshot of the audit trail.
  [[nodiscard]] std::vector<IoFaultRecord> audit() const;

 private:
  friend class FaultingWritableFile;

  // Entry points for the WritableFile decorator.
  util::Status faulted_append(const std::string& path, util::WritableFile& inner,
                              std::string_view data);
  util::Status faulted_sync(const std::string& path, util::WritableFile& inner);

  struct Decision {
    bool fire = false;
    std::size_t directive_index = 0;
    IoOutcome outcome = IoOutcome::kFail;
    std::string label;
  };

  // Decides (and counts) whether a fault fires for this operation.
  // `bytes` is the payload size for write ops, 0 otherwise. `alt_path` is
  // the rename destination, matched in addition to `path`.
  Decision decide(IoOp op, const std::string& path, std::uint64_t bytes,
                  const std::string* alt_path = nullptr);
  util::Status fault_status(const Decision& d, IoOp op, const std::string& path);

  IoFaultPlan plan_;
  util::Fs& inner_;

  mutable std::mutex mu_;
  struct DirectiveState {
    std::uint64_t matched = 0;   // matching ops seen (skip accounting)
    std::uint64_t triggers = 0;  // times fired
    std::uint64_t bytes = 0;     // kEnospc: budget consumed so far
  };
  std::vector<DirectiveState> state_;
  std::vector<IoFaultRecord> audit_;
};

}  // namespace hsr::fault
