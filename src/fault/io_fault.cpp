#include "fault/io_fault.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <utility>

namespace hsr::fault {

namespace {

constexpr const char* kIoMagic = "hsriofaultplan-v1";

char outcome_code(IoOutcome outcome) {
  switch (outcome) {
    case IoOutcome::kFail: return 'F';
    case IoOutcome::kTransient: return 'U';
    case IoOutcome::kEnospc: return 'E';
    case IoOutcome::kShortWrite: return 'H';
    case IoOutcome::kTornRename: return 'N';
  }
  return '?';
}

// Single tokens on the wire, same rule as the channel-plan labels.
std::string sanitize_token(const std::string& value, const char* fallback) {
  std::string out = value.empty() ? fallback : value;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return out;
}

template <typename Int>
bool parse_int(const std::string& token, Int& out) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

util::Status line_error(std::size_t line_number, const std::string& token,
                        const std::string& why) {
  return util::Status::invalid_argument(
      "io plan line " + std::to_string(line_number) + ": " + why + " (token '" +
      token + "')");
}

util::Status parse_io_directive(const std::vector<std::string>& tokens,
                                std::size_t line_number, IoFaultDirective& d) {
  if (tokens.size() != 7) {
    return line_error(line_number, tokens.empty() ? "" : tokens.back(),
                      "expected 7 fields, got " + std::to_string(tokens.size()));
  }
  if (tokens[0].size() != 1) return line_error(line_number, tokens[0], "bad op code");
  switch (tokens[0][0]) {
    case '*': d.op = IoOp::kAny; break;
    case 'O': d.op = IoOp::kOpen; break;
    case 'W': d.op = IoOp::kWrite; break;
    case 'S': d.op = IoOp::kSync; break;
    case 'R': d.op = IoOp::kRename; break;
    case 'D': d.op = IoOp::kRemove; break;
    case 'T': d.op = IoOp::kTruncate; break;
    case 'M': d.op = IoOp::kMkdir; break;
    default: return line_error(line_number, tokens[0], "bad op code");
  }
  if (tokens[1].size() != 1) {
    return line_error(line_number, tokens[1], "bad outcome code");
  }
  switch (tokens[1][0]) {
    case 'F': d.outcome = IoOutcome::kFail; break;
    case 'U': d.outcome = IoOutcome::kTransient; break;
    case 'E': d.outcome = IoOutcome::kEnospc; break;
    case 'H': d.outcome = IoOutcome::kShortWrite; break;
    case 'N': d.outcome = IoOutcome::kTornRename; break;
    default: return line_error(line_number, tokens[1], "bad outcome code");
  }
  if (!parse_int(tokens[2], d.skip)) {
    return line_error(line_number, tokens[2], "bad skip count");
  }
  if (tokens[3] == "*") {
    d.max_triggers = kNoIoTriggerLimit;
  } else if (!parse_int(tokens[3], d.max_triggers)) {
    return line_error(line_number, tokens[3], "bad trigger limit");
  }
  if (!parse_int(tokens[4], d.byte_limit)) {
    return line_error(line_number, tokens[4], "bad byte limit");
  }
  d.path_substring = tokens[5] == "*" ? "" : tokens[5];
  d.label = tokens[6];
  return util::Status::ok();
}

}  // namespace

char io_op_code(IoOp op) {
  switch (op) {
    case IoOp::kAny: return '*';
    case IoOp::kOpen: return 'O';
    case IoOp::kWrite: return 'W';
    case IoOp::kSync: return 'S';
    case IoOp::kRename: return 'R';
    case IoOp::kRemove: return 'D';
    case IoOp::kTruncate: return 'T';
    case IoOp::kMkdir: return 'M';
  }
  return '?';
}

const char* io_op_name(IoOp op) {
  switch (op) {
    case IoOp::kAny: return "any";
    case IoOp::kOpen: return "open";
    case IoOp::kWrite: return "write";
    case IoOp::kSync: return "sync";
    case IoOp::kRename: return "rename";
    case IoOp::kRemove: return "remove";
    case IoOp::kTruncate: return "truncate";
    case IoOp::kMkdir: return "mkdir";
  }
  return "unknown";
}

std::string IoFaultPlan::to_text() const {
  std::ostringstream os;
  os << kIoMagic << " directives=" << directives.size() << '\n';
  for (const IoFaultDirective& d : directives) {
    os << io_op_code(d.op) << ' ' << outcome_code(d.outcome) << ' ' << d.skip
       << ' ';
    if (d.max_triggers == kNoIoTriggerLimit) {
      os << '*';
    } else {
      os << d.max_triggers;
    }
    os << ' ' << d.byte_limit << ' ' << sanitize_token(d.path_substring, "*")
       << ' ' << sanitize_token(d.label, "io-fault") << '\n';
  }
  return os.str();
}

util::StatusOr<IoFaultPlan> IoFaultPlan::parse(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line)) {
    return util::Status::invalid_argument("io plan line 1: empty input, no header");
  }
  std::size_t declared = 0;
  {
    std::istringstream hs(line);
    std::string magic;
    std::string count_field;
    if (!(hs >> magic >> count_field) || magic != kIoMagic ||
        count_field.rfind("directives=", 0) != 0) {
      return line_error(1, line, "bad io plan header");
    }
    if (!parse_int(count_field.substr(11), declared)) {
      return line_error(1, count_field, "bad directive count");
    }
  }
  IoFaultPlan plan;
  std::size_t line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<std::string> tokens;
    {
      std::istringstream ls(line);
      std::string tok;
      while (ls >> tok) tokens.push_back(tok);
    }
    IoFaultDirective d;
    util::Status status = parse_io_directive(tokens, line_number, d);
    if (!status.is_ok()) return status;
    plan.directives.push_back(std::move(d));
  }
  if (plan.directives.size() != declared) {
    // Header count doubles as a truncation check, like hsrfaultplan files.
    return util::Status::invalid_argument(
        "io plan: header declares " + std::to_string(declared) +
        " directives, found " + std::to_string(plan.directives.size()));
  }
  return plan;
}

util::StatusOr<IoFaultPlan> IoFaultPlan::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) return util::Status::not_found("cannot open: " + path);
  std::ostringstream text;
  text << f.rdbuf();
  return parse(text.str());
}

IoFaultPlan& IoFaultPlan::fail_nth_write(std::uint64_t n,
                                         std::string path_substring,
                                         std::string label) {
  IoFaultDirective d;
  d.op = IoOp::kWrite;
  d.outcome = IoOutcome::kFail;
  d.skip = n > 0 ? n - 1 : 0;
  d.max_triggers = 1;
  d.path_substring = std::move(path_substring);
  d.label = std::move(label);
  directives.push_back(std::move(d));
  return *this;
}

IoFaultPlan& IoFaultPlan::enospc_after(std::uint64_t bytes,
                                       std::string path_substring,
                                       std::string label) {
  IoFaultDirective d;
  d.op = IoOp::kWrite;
  d.outcome = IoOutcome::kEnospc;
  d.max_triggers = kNoIoTriggerLimit;  // a full disk stays full
  d.byte_limit = bytes;
  d.path_substring = std::move(path_substring);
  d.label = std::move(label);
  directives.push_back(std::move(d));
  return *this;
}

IoFaultPlan& IoFaultPlan::short_write(std::uint64_t n, std::string path_substring,
                                      std::string label) {
  IoFaultDirective d;
  d.op = IoOp::kWrite;
  d.outcome = IoOutcome::kShortWrite;
  d.skip = n > 0 ? n - 1 : 0;
  d.max_triggers = 1;
  d.path_substring = std::move(path_substring);
  d.label = std::move(label);
  directives.push_back(std::move(d));
  return *this;
}

IoFaultPlan& IoFaultPlan::torn_rename(std::string path_substring,
                                      std::string label) {
  IoFaultDirective d;
  d.op = IoOp::kRename;
  d.outcome = IoOutcome::kTornRename;
  d.max_triggers = 1;
  d.path_substring = std::move(path_substring);
  d.label = std::move(label);
  directives.push_back(std::move(d));
  return *this;
}

IoFaultPlan& IoFaultPlan::transient(IoOp op, std::uint64_t times,
                                    std::string path_substring,
                                    std::string label) {
  IoFaultDirective d;
  d.op = op;
  d.outcome = IoOutcome::kTransient;
  d.max_triggers = times;
  d.path_substring = std::move(path_substring);
  d.label = std::move(label);
  directives.push_back(std::move(d));
  return *this;
}

IoFaultPlan& IoFaultPlan::fail_next(IoOp op, std::string path_substring,
                                    std::string label) {
  IoFaultDirective d;
  d.op = op;
  d.outcome = IoOutcome::kFail;
  d.max_triggers = 1;
  d.path_substring = std::move(path_substring);
  d.label = std::move(label);
  directives.push_back(std::move(d));
  return *this;
}

// WritableFile decorator routing appends/syncs back through the plan. At
// namespace scope (not anonymous) so the friend declaration in the header
// names this class.
class FaultingWritableFile final : public util::WritableFile {
 public:
  FaultingWritableFile(FaultInjectingFs* parent, std::string path,
                       std::unique_ptr<util::WritableFile> inner)
      : parent_(parent), path_(std::move(path)), inner_(std::move(inner)) {}

  util::Status append(std::string_view data) override {
    return parent_->faulted_append(path_, *inner_, data);
  }
  util::Status sync() override {
    return parent_->faulted_sync(path_, *inner_);
  }
  util::Status close() override { return inner_->close(); }

 private:
  FaultInjectingFs* parent_;
  std::string path_;
  std::unique_ptr<util::WritableFile> inner_;
};

FaultInjectingFs::FaultInjectingFs(IoFaultPlan plan, util::Fs& inner)
    : plan_(std::move(plan)), inner_(inner), state_(plan_.directives.size()) {}

FaultInjectingFs::Decision FaultInjectingFs::decide(IoOp op,
                                                    const std::string& path,
                                                    std::uint64_t bytes,
                                                    const std::string* alt_path) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < plan_.directives.size(); ++i) {
    const IoFaultDirective& d = plan_.directives[i];
    if (d.op != IoOp::kAny && d.op != op) continue;
    if (!d.path_substring.empty()) {
      const bool hit =
          path.find(d.path_substring) != std::string::npos ||
          (alt_path != nullptr &&
           alt_path->find(d.path_substring) != std::string::npos);
      if (!hit) continue;
    }
    DirectiveState& s = state_[i];
    if (d.outcome == IoOutcome::kEnospc) {
      // The budget is bytes actually committed by matching writes; once it
      // would overflow, this and every later matching write fails.
      if (op != IoOp::kWrite) continue;
      if (s.triggers == 0 && s.bytes + bytes <= d.byte_limit) {
        s.bytes += bytes;
        continue;
      }
      if (s.triggers >= d.max_triggers) continue;
    } else {
      ++s.matched;
      if (s.matched <= d.skip) continue;
      if (s.triggers >= d.max_triggers) continue;
    }
    ++s.triggers;
    audit_.push_back(IoFaultRecord{i, op, path, d.label});
    return Decision{true, i, d.outcome, d.label};
  }
  return Decision{};
}

util::Status FaultInjectingFs::fault_status(const Decision& d, IoOp op,
                                            const std::string& path) {
  const std::string detail = "scripted io fault '" + d.label + "' on " +
                             io_op_name(op) + " '" + path + "'";
  switch (d.outcome) {
    case IoOutcome::kTransient:
      return util::Status::unavailable(detail + " (transient)");
    case IoOutcome::kEnospc:
      return util::Status::resource_exhausted(detail + " (ENOSPC)");
    case IoOutcome::kFail:
    case IoOutcome::kShortWrite:  // non-write op: plain failure
    case IoOutcome::kTornRename:  // non-rename op: plain failure
      return util::Status::internal(detail);
  }
  return util::Status::internal(detail);
}

util::Status FaultInjectingFs::faulted_append(const std::string& path,
                                              util::WritableFile& inner,
                                              std::string_view data) {
  const Decision d = decide(IoOp::kWrite, path, data.size());
  if (!d.fire) return inner.append(data);
  if (d.outcome == IoOutcome::kShortWrite) {
    // Half the buffer reaches the file before the error — the classic
    // partial write a crash-safe writer must tolerate.
    (void)inner.append(data.substr(0, data.size() / 2));
    return util::Status::internal("scripted short write '" + d.label +
                                  "' on '" + path + "'");
  }
  return fault_status(d, IoOp::kWrite, path);
}

util::Status FaultInjectingFs::faulted_sync(const std::string& path,
                                            util::WritableFile& inner) {
  const Decision d = decide(IoOp::kSync, path, 0);
  if (!d.fire) return inner.sync();
  return fault_status(d, IoOp::kSync, path);
}

util::StatusOr<std::unique_ptr<util::WritableFile>>
FaultInjectingFs::open_for_write(const std::string& path) {
  const Decision d = decide(IoOp::kOpen, path, 0);
  if (d.fire) return fault_status(d, IoOp::kOpen, path);
  auto inner = inner_.open_for_write(path);
  if (!inner.is_ok()) return inner.status();
  return std::unique_ptr<util::WritableFile>(
      new FaultingWritableFile(this, path, std::move(inner.value())));
}

util::Status FaultInjectingFs::rename_file(const std::string& from,
                                           const std::string& to) {
  const Decision d = decide(IoOp::kRename, from, 0, &to);
  if (!d.fire) return inner_.rename_file(from, to);
  if (d.outcome == IoOutcome::kTornRename) {
    // Model a crash mid-rename: the source is left mangled, the destination
    // untouched — a committed archive must survive this.
    auto size = inner_.file_size(from);
    if (size.is_ok()) {
      (void)inner_.truncate_file(from, size.value() / 2);
    }
    return util::Status::internal("scripted torn rename '" + d.label + "' '" +
                                  from + "' -> '" + to + "'");
  }
  return fault_status(d, IoOp::kRename, from);
}

util::Status FaultInjectingFs::remove_file(const std::string& path) {
  const Decision d = decide(IoOp::kRemove, path, 0);
  if (d.fire) return fault_status(d, IoOp::kRemove, path);
  return inner_.remove_file(path);
}

util::Status FaultInjectingFs::remove_all(const std::string& path) {
  const Decision d = decide(IoOp::kRemove, path, 0);
  if (d.fire) return fault_status(d, IoOp::kRemove, path);
  return inner_.remove_all(path);
}

util::Status FaultInjectingFs::truncate_file(const std::string& path,
                                             std::uint64_t size) {
  const Decision d = decide(IoOp::kTruncate, path, 0);
  if (d.fire) return fault_status(d, IoOp::kTruncate, path);
  return inner_.truncate_file(path, size);
}

util::Status FaultInjectingFs::create_directories(const std::string& path) {
  const Decision d = decide(IoOp::kMkdir, path, 0);
  if (d.fire) return fault_status(d, IoOp::kMkdir, path);
  return inner_.create_directories(path);
}

util::StatusOr<std::uint64_t> FaultInjectingFs::file_size(const std::string& path) {
  return inner_.file_size(path);  // reads are never faulted
}

bool FaultInjectingFs::exists(const std::string& path) {
  return inner_.exists(path);
}

std::uint64_t FaultInjectingFs::triggers(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return i < state_.size() ? state_[i].triggers : 0;
}

std::uint64_t FaultInjectingFs::faults_triggered() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const DirectiveState& s : state_) total += s.triggers;
  return total;
}

std::vector<IoFaultRecord> FaultInjectingFs::audit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return audit_;
}

}  // namespace hsr::fault
