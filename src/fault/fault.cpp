#include "fault/fault.h"

#include <utility>

#include "util/logging.h"

namespace hsr::fault {

char fault_action_code(FaultAction action) {
  switch (action) {
    case FaultAction::kDrop: return 'X';
    case FaultAction::kDelay: return 'L';
    case FaultAction::kDuplicate: return '2';
  }
  return '?';
}

bool FaultDirective::matches(const Packet& packet, TimePoint now,
                             std::uint64_t triggers_so_far) const {
  if (triggers_so_far >= max_triggers) return false;
  if (kind == KindFilter::kData && packet.kind != net::PacketKind::kData) return false;
  if (kind == KindFilter::kAck && packet.kind != net::PacketKind::kAck) return false;
  if (now < window_begin || now >= window_end) return false;
  // An ACK "is" its cumulative acknowledgement; data is its segment number.
  const SeqNo key = packet.kind == net::PacketKind::kAck ? packet.ack_next : packet.seq;
  if (key < seq_min || key > seq_max) return false;
  if (only_retransmissions && !packet.is_retransmission) return false;
  return true;
}

FaultPlan& FaultPlan::blackout(TimePoint from, TimePoint to, std::string label) {
  FaultDirective d;
  d.action = FaultAction::kDrop;
  d.window_begin = from;
  d.window_end = to;
  d.label = std::move(label);
  directives.push_back(std::move(d));
  return *this;
}

FaultPlan& FaultPlan::kill_acks(TimePoint from, TimePoint to, std::string label) {
  FaultDirective d;
  d.action = FaultAction::kDrop;
  d.kind = FaultDirective::KindFilter::kAck;
  d.window_begin = from;
  d.window_end = to;
  d.label = std::move(label);
  directives.push_back(std::move(d));
  return *this;
}

FaultPlan& FaultPlan::kill_ack_range(SeqNo lo, SeqNo hi, std::string label) {
  FaultDirective d;
  d.action = FaultAction::kDrop;
  d.kind = FaultDirective::KindFilter::kAck;
  d.seq_min = lo;
  d.seq_max = hi;
  d.label = std::move(label);
  directives.push_back(std::move(d));
  return *this;
}

FaultPlan& FaultPlan::drop_retransmissions(std::uint64_t k, std::string label) {
  FaultDirective d;
  d.action = FaultAction::kDrop;
  d.kind = FaultDirective::KindFilter::kData;
  d.only_retransmissions = true;
  d.max_triggers = k;
  d.label = std::move(label);
  directives.push_back(std::move(d));
  return *this;
}

FaultPlan& FaultPlan::drop_segment_range(SeqNo lo, SeqNo hi, std::uint64_t k,
                                         std::string label) {
  FaultDirective d;
  d.action = FaultAction::kDrop;
  d.kind = FaultDirective::KindFilter::kData;
  d.seq_min = lo;
  d.seq_max = hi;
  d.max_triggers = k;
  d.label = std::move(label);
  directives.push_back(std::move(d));
  return *this;
}

FaultPlan& FaultPlan::delay_spike(TimePoint from, TimePoint to, Duration extra,
                                  std::string label) {
  FaultDirective d;
  d.action = FaultAction::kDelay;
  d.window_begin = from;
  d.window_end = to;
  d.delay = extra;
  d.label = std::move(label);
  directives.push_back(std::move(d));
  return *this;
}

FaultPlan& FaultPlan::duplicate_next(std::uint64_t k, unsigned copies,
                                     std::string label) {
  FaultDirective d;
  d.action = FaultAction::kDuplicate;
  d.max_triggers = k;
  d.copies = copies;
  d.label = std::move(label);
  directives.push_back(std::move(d));
  return *this;
}

FaultInjector::FaultInjector(FaultPlan plan, std::unique_ptr<net::ChannelModel> inner)
    : plan_(std::move(plan)),
      trigger_counts_(plan_.directives.size(), 0),
      inner_(std::move(inner)) {
  HSR_CHECK(inner_ != nullptr);
  for (const FaultDirective& d : plan_.directives) {
    HSR_CHECK_MSG(d.window_begin <= d.window_end, "inverted fault window");
    HSR_CHECK_MSG(d.seq_min <= d.seq_max, "inverted fault sequence range");
    HSR_CHECK_MSG(d.delay >= Duration::zero(), "negative fault delay");
  }
}

void FaultInjector::record(std::size_t directive_index, const Packet& packet,
                           TimePoint now, Duration delay) {
  ++trigger_counts_[directive_index];
  ++total_triggers_;
  if (audit_ == nullptr) return;
  const FaultDirective& d = plan_.directives[directive_index];
  trace::FaultRecord rec;
  rec.when = now;
  rec.direction = direction_;
  rec.packet_id = packet.id;
  rec.seq = packet.kind == net::PacketKind::kAck ? packet.ack_next : packet.seq;
  rec.kind = packet.kind;
  rec.directive = static_cast<std::uint32_t>(directive_index);
  rec.action = fault_action_code(d.action);
  rec.delay = delay;
  rec.label = d.label;
  audit_->push_back(std::move(rec));
}

net::ChannelVerdict FaultInjector::decide(const Packet& packet, TimePoint now) {
  // Scripted drops short-circuit: a packet the script kills never reaches
  // the inner channel, so the inner model's stochastic state evolves exactly
  // as if the packet had been absorbed before the air interface.
  for (std::size_t i = 0; i < plan_.directives.size(); ++i) {
    const FaultDirective& d = plan_.directives[i];
    if (d.action != FaultAction::kDrop) continue;
    if (!d.matches(packet, now, trigger_counts_[i])) continue;
    record(i, packet, now, Duration::zero());
    return net::ChannelVerdict::drop(
        net::DropCause::scripted(static_cast<std::int32_t>(i)));
  }

  // Spared by the script: the organic channel still gets its say (and its
  // stateful/stochastic evolution stays consistent packet for packet).
  net::ChannelVerdict verdict = inner_->decide(packet, now);
  if (verdict.dropped) return verdict;

  // Delay and duplication directives apply only to delivered packets (a
  // delayed dead packet is meaningless), delay records before duplicates.
  for (std::size_t i = 0; i < plan_.directives.size(); ++i) {
    const FaultDirective& d = plan_.directives[i];
    if (d.action != FaultAction::kDelay) continue;
    if (!d.matches(packet, now, trigger_counts_[i])) continue;
    record(i, packet, now, d.delay);
    verdict.extra_delay += d.delay;
  }
  for (std::size_t i = 0; i < plan_.directives.size(); ++i) {
    const FaultDirective& d = plan_.directives[i];
    if (d.action != FaultAction::kDuplicate) continue;
    if (!d.matches(packet, now, trigger_counts_[i])) continue;
    record(i, packet, now, Duration::zero());
    verdict.duplicate_copies += d.copies;
  }
  return verdict;
}

}  // namespace hsr::fault
