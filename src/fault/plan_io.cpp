#include "fault/plan_io.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace hsr::fault {

namespace {

constexpr const char* kMagic = "hsrfaultplan-v1";
constexpr const char* kMagicV2 = "hsrfaultplan-v2";

constexpr std::uint64_t kNoTriggerLimit = std::numeric_limits<std::uint64_t>::max();
constexpr SeqNo kNoSeqLimit = std::numeric_limits<SeqNo>::max();

char kind_code(FaultDirective::KindFilter kind) {
  switch (kind) {
    case FaultDirective::KindFilter::kAny: return '*';
    case FaultDirective::KindFilter::kData: return 'D';
    case FaultDirective::KindFilter::kAck: return 'A';
  }
  return '?';
}

// Labels are single tokens on the wire (same rule as trace_io audit labels).
std::string sanitize_label(const std::string& label) {
  std::string out = label.empty() ? "fault" : label;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return out;
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream ls(line);
  std::string tok;
  while (ls >> tok) tokens.push_back(tok);
  return tokens;
}

template <typename Int>
bool parse_int(const std::string& token, Int& out) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

util::Status line_error(std::size_t line_number, const std::string& token,
                        const std::string& why) {
  return util::Status::invalid_argument(
      "plan line " + std::to_string(line_number) + ": " + why + " (token '" +
      token + "')");
}

// Shortest decimal that round-trips the exact double (rates in the P line).
std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

bool parse_double(const std::string& token, double& out) {
  const auto res = std::from_chars(token.data(), token.data() + token.size(), out);
  return res.ec == std::errc() && res.ptr == token.data() + token.size();
}

util::Status parse_params_line(const std::vector<std::string>& tokens,
                               std::size_t line_number, ReplayParams& p) {
  // 12 mandatory fields; plans recording a non-default congestion control
  // or adaptive delayed-ACK append the optional <cc> <adaptive> pair.
  if ((tokens.size() != 13 && tokens.size() != 15) || tokens[0] != "P") {
    return line_error(line_number, tokens.empty() ? "" : tokens[0],
                      "expected P line with 12 parameter fields");
  }
  if (!parse_double(tokens[1], p.down_rate_bps) || p.down_rate_bps <= 0) {
    return line_error(line_number, tokens[1], "bad downlink rate");
  }
  if (!parse_int(tokens[2], p.down_delay_ns) || p.down_delay_ns < 0) {
    return line_error(line_number, tokens[2], "bad downlink delay");
  }
  if (!parse_int(tokens[3], p.down_queue) || p.down_queue == 0) {
    return line_error(line_number, tokens[3], "bad downlink queue capacity");
  }
  if (!parse_double(tokens[4], p.up_rate_bps) || p.up_rate_bps <= 0) {
    return line_error(line_number, tokens[4], "bad uplink rate");
  }
  if (!parse_int(tokens[5], p.up_delay_ns) || p.up_delay_ns < 0) {
    return line_error(line_number, tokens[5], "bad uplink delay");
  }
  if (!parse_int(tokens[6], p.up_queue) || p.up_queue == 0) {
    return line_error(line_number, tokens[6], "bad uplink queue capacity");
  }
  if (!parse_int(tokens[7], p.tcp.mss_bytes) || p.tcp.mss_bytes == 0) {
    return line_error(line_number, tokens[7], "bad mss");
  }
  if (!parse_int(tokens[8], p.tcp.delayed_ack_b) || p.tcp.delayed_ack_b == 0) {
    return line_error(line_number, tokens[8], "bad delayed-ack b");
  }
  std::int64_t min_rto_ns = 0;
  if (!parse_int(tokens[9], min_rto_ns) || min_rto_ns < 0) {
    return line_error(line_number, tokens[9], "bad min rto");
  }
  p.tcp.min_rto = Duration::nanos(min_rto_ns);
  if (!parse_int(tokens[10], p.receiver_window) || p.receiver_window == 0) {
    return line_error(line_number, tokens[10], "bad receiver window");
  }
  if (tokens[11] != "0" && tokens[11] != "1") {
    return line_error(line_number, tokens[11], "bad sack flag");
  }
  p.tcp.enable_sack = tokens[11] == "1";
  if (tokens[12] != "0" && tokens[12] != "1") {
    return line_error(line_number, tokens[12], "bad frto flag");
  }
  p.tcp.enable_frto = tokens[12] == "1";
  if (tokens.size() == 15) {
    unsigned cc = 0;
    if (!parse_int(tokens[13], cc) ||
        cc > static_cast<unsigned>(tcp::CongestionControl::kVeno)) {
      return line_error(line_number, tokens[13], "bad congestion control code");
    }
    p.tcp.congestion_control = static_cast<tcp::CongestionControl>(cc);
    if (tokens[14] != "0" && tokens[14] != "1") {
      return line_error(line_number, tokens[14], "bad adaptive delack flag");
    }
    p.tcp.adaptive_delack = tokens[14] == "1";
  }
  return util::Status::ok();
}

util::Status parse_directive(const std::vector<std::string>& tokens,
                             std::size_t line_number, FaultDirective& d) {
  if (tokens.size() != 11) {
    return line_error(line_number, tokens.empty() ? "" : tokens.back(),
                      "expected 11 fields, got " + std::to_string(tokens.size()));
  }

  if (tokens[0] == "X") {
    d.action = FaultAction::kDrop;
  } else if (tokens[0] == "L") {
    d.action = FaultAction::kDelay;
  } else if (tokens[0] == "2") {
    d.action = FaultAction::kDuplicate;
  } else {
    return line_error(line_number, tokens[0], "bad action code");
  }

  if (tokens[1] == "*") {
    d.kind = FaultDirective::KindFilter::kAny;
  } else if (tokens[1] == "D") {
    d.kind = FaultDirective::KindFilter::kData;
  } else if (tokens[1] == "A") {
    d.kind = FaultDirective::KindFilter::kAck;
  } else {
    return line_error(line_number, tokens[1], "bad kind filter");
  }

  std::int64_t begin_ns = 0;
  if (!parse_int(tokens[2], begin_ns)) {
    return line_error(line_number, tokens[2], "bad window begin");
  }
  d.window_begin = TimePoint::from_ns(begin_ns);

  if (tokens[3] == "*") {
    d.window_end = TimePoint::max();
  } else {
    std::int64_t end_ns = 0;
    if (!parse_int(tokens[3], end_ns)) {
      return line_error(line_number, tokens[3], "bad window end");
    }
    d.window_end = TimePoint::from_ns(end_ns);
  }

  if (!parse_int(tokens[4], d.seq_min)) {
    return line_error(line_number, tokens[4], "bad seq min");
  }
  if (tokens[5] == "*") {
    d.seq_max = kNoSeqLimit;
  } else if (!parse_int(tokens[5], d.seq_max)) {
    return line_error(line_number, tokens[5], "bad seq max");
  }

  if (tokens[6] == "0") {
    d.only_retransmissions = false;
  } else if (tokens[6] == "1") {
    d.only_retransmissions = true;
  } else {
    return line_error(line_number, tokens[6], "bad retransmission flag");
  }

  if (tokens[7] == "*") {
    d.max_triggers = kNoTriggerLimit;
  } else if (!parse_int(tokens[7], d.max_triggers)) {
    return line_error(line_number, tokens[7], "bad trigger limit");
  }

  std::int64_t delay_ns = 0;
  if (!parse_int(tokens[8], delay_ns) || delay_ns < 0) {
    return line_error(line_number, tokens[8], "bad delay");
  }
  d.delay = Duration::nanos(delay_ns);

  if (!parse_int(tokens[9], d.copies)) {
    return line_error(line_number, tokens[9], "bad copy count");
  }

  d.label = tokens[10];
  if (d.window_begin > d.window_end) {
    return line_error(line_number, tokens[3], "inverted window");
  }
  if (d.seq_min > d.seq_max) {
    return line_error(line_number, tokens[5], "inverted sequence range");
  }
  return util::Status::ok();
}

}  // namespace

namespace {

void write_directives(std::ostream& os, const FaultPlan& plan) {
  for (const FaultDirective& d : plan.directives) {
    os << fault_action_code(d.action) << ' ' << kind_code(d.kind) << ' '
       << d.window_begin.ns() << ' ';
    if (d.window_end == TimePoint::max()) {
      os << '*';
    } else {
      os << d.window_end.ns();
    }
    os << ' ' << d.seq_min << ' ';
    if (d.seq_max == kNoSeqLimit) {
      os << '*';
    } else {
      os << d.seq_max;
    }
    os << ' ' << (d.only_retransmissions ? 1 : 0) << ' ';
    if (d.max_triggers == kNoTriggerLimit) {
      os << '*';
    } else {
      os << d.max_triggers;
    }
    os << ' ' << d.delay.ns() << ' ' << d.copies << ' '
       << sanitize_label(d.label) << '\n';
  }
}

}  // namespace

void write_fault_plan(std::ostream& os, const FaultPlan& plan) {
  os << kMagic << " directives=" << plan.directives.size() << '\n';
  write_directives(os, plan);
}

void write_plan_file(std::ostream& os, const PlanFile& file) {
  if (!file.params.has_value()) {
    // No parameters to carry: stay on v1 so existing archives, golden files
    // and old readers keep working byte for byte.
    write_fault_plan(os, file.plan);
    return;
  }
  const ReplayParams& p = *file.params;
  os << kMagicV2 << " directives=" << file.plan.directives.size() << " params=1\n";
  os << "P " << format_double(p.down_rate_bps) << ' ' << p.down_delay_ns << ' '
     << p.down_queue << ' ' << format_double(p.up_rate_bps) << ' '
     << p.up_delay_ns << ' ' << p.up_queue << ' ' << p.tcp.mss_bytes << ' '
     << p.tcp.delayed_ack_b << ' ' << p.tcp.min_rto.ns() << ' '
     << p.receiver_window << ' ' << (p.tcp.enable_sack ? 1 : 0) << ' '
     << (p.tcp.enable_frto ? 1 : 0);
  if (p.tcp.congestion_control != tcp::CongestionControl::kReno ||
      p.tcp.adaptive_delack) {
    // Only plans that actually touch these knobs grow the optional pair —
    // everything else keeps the legacy 12-field line byte-for-byte.
    os << ' ' << static_cast<unsigned>(p.tcp.congestion_control) << ' '
       << (p.tcp.adaptive_delack ? 1 : 0);
  }
  os << '\n';
  write_directives(os, file.plan);
}

util::StatusOr<PlanFile> read_plan_file(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    return util::Status::invalid_argument("plan line 1: empty stream, no header");
  }
  std::size_t declared = 0;
  bool expect_params = false;
  {
    std::istringstream hs(line);
    std::string magic;
    std::string count_field;
    if (!(hs >> magic >> count_field) || (magic != kMagic && magic != kMagicV2) ||
        count_field.rfind("directives=", 0) != 0) {
      return line_error(1, line, "bad plan header");
    }
    if (!parse_int(count_field.substr(11), declared)) {
      return line_error(1, count_field, "bad directive count");
    }
    if (magic == kMagicV2) {
      std::string params_field;
      if (!(hs >> params_field) ||
          (params_field != "params=0" && params_field != "params=1")) {
        return line_error(1, params_field, "bad params flag in v2 header");
      }
      expect_params = params_field == "params=1";
    }
  }

  PlanFile file;
  std::size_t line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> tokens = split_tokens(line);
    if (expect_params) {
      // The P line must be the first payload line of a params=1 file.
      ReplayParams p;
      util::Status status = parse_params_line(tokens, line_number, p);
      if (!status.is_ok()) return status;
      file.params = p;
      expect_params = false;
      continue;
    }
    FaultDirective d;
    util::Status status = parse_directive(tokens, line_number, d);
    if (!status.is_ok()) return status;
    file.plan.directives.push_back(std::move(d));
  }
  if (expect_params) {
    return util::Status::invalid_argument(
        "plan: header declares params=1 but no P line followed");
  }
  if (file.plan.directives.size() != declared) {
    // The header count is an integrity check: a truncated plan file silently
    // dropping directives would change the experiment it claims to describe.
    return util::Status::invalid_argument(
        "plan: header declares " + std::to_string(declared) + " directives, found " +
        std::to_string(file.plan.directives.size()));
  }
  return file;
}

util::StatusOr<FaultPlan> read_fault_plan(std::istream& is) {
  auto file = read_plan_file(is);
  if (!file.is_ok()) return file.status();
  return std::move(file.value().plan);
}

util::Status save_fault_plan(util::Fs& fs, const std::string& path,
                             const FaultPlan& plan) {
  // Atomic write through the seam, same contract as trace_io::save_flow_capture.
  std::ostringstream content;
  write_fault_plan(content, plan);
  return util::write_file_atomic(fs, path, content.str());
}

util::Status save_fault_plan(const std::string& path, const FaultPlan& plan) {
  return save_fault_plan(util::Fs::real(), path, plan);
}

util::StatusOr<FaultPlan> load_fault_plan(const std::string& path) {
  std::ifstream f(path);
  if (!f) return util::Status::not_found("cannot open: " + path);
  return read_fault_plan(f);
}

util::Status save_plan_file(util::Fs& fs, const std::string& path,
                            const PlanFile& file) {
  std::ostringstream content;
  write_plan_file(content, file);
  return util::write_file_atomic(fs, path, content.str());
}

util::Status save_plan_file(const std::string& path, const PlanFile& file) {
  return save_plan_file(util::Fs::real(), path, file);
}

util::StatusOr<PlanFile> load_plan_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) return util::Status::not_found("cannot open: " + path);
  return read_plan_file(f);
}

std::string FaultPlan::to_text() const {
  std::ostringstream os;
  write_fault_plan(os, *this);
  return os.str();
}

util::StatusOr<FaultPlan> FaultPlan::parse(const std::string& text) {
  std::istringstream is(text);
  return read_fault_plan(is);
}

}  // namespace hsr::fault
