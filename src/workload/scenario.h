// Scenario assembly: builds and runs complete experiments (one TCP flow on
// a provider profile; TCP-vs-MPTCP comparisons) and returns the captures
// and ground truth. This is the piece that plays the role of the paper's
// field measurement campaign.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "mptcp/mptcp.h"
#include "radio/profiles.h"
#include "tcp/connection.h"
#include "trace/capture.h"
#include "util/status.h"
#include "util/time.h"

namespace hsr::workload {

using util::Duration;
using util::TimePoint;

struct FlowRunConfig {
  radio::ProviderProfile profile;
  Duration duration = Duration::seconds(60);
  std::uint64_t seed = 1;
  // TCP knobs (protocol-level, independent of the provider) — the shared
  // one-source-of-truth struct also carried by MultiFlowSpec senders, MPTCP
  // subflow setup and hsrfaultplan-v2 parameter blocks.
  tcp::TcpOptions tcp;

  // Scripted fault plans, one per direction, layered as decorators over the
  // provider's organic channels (empty plans add no wrapper). Triggered
  // faults land in the capture's audit trail.
  fault::FaultPlan downlink_faults;  // data direction
  fault::FaultPlan uplink_faults;    // ACK direction
  // Watchdog: abort the run (Status in FlowRunResult::status) once the
  // simulator has executed this many events; 0 = unlimited. `duration` is
  // the sim-time budget; this bounds runaway event churn within it.
  std::uint64_t max_sim_events = 0;

  // Steady-state allocation probe window (see MultiFlowSpec::probe_begin):
  // when probe_end > probe_begin, FlowRunResult::steady_allocs /
  // steady_events report the deltas inside the window.
  TimePoint probe_begin = TimePoint::zero();
  TimePoint probe_end = TimePoint::zero();
};

struct FlowRunResult {
  // OK for a completed run. A watchdog abort yields kResourceExhausted with
  // a diagnostic; the partial capture/stats below are still populated so the
  // wedged state can be inspected.
  util::Status status;
  trace::FlowCapture capture;  // the wireshark-equivalent record
  // Ground truth from the stack, used to validate the analysis pipeline.
  tcp::SenderStats sender_stats;
  tcp::ReceiverStats receiver_stats;
  std::vector<tcp::SenderEvent> events;
  std::vector<std::pair<TimePoint, double>> cwnd_trace;
  std::vector<TimePoint> delivery_times;

  Duration duration;
  double goodput_pps = 0.0;
  double goodput_bps = 0.0;
  std::uint64_t bytes_captured = 0;  // both directions; Table I trace sizes
  std::uint64_t handoffs = 0;
  // Scripted faults that fired (== capture.faults.size(); 0 organic runs).
  std::uint64_t faults_injected = 0;

  // Simulator-core cost counters (events executed / scheduled, tombstoned
  // entries pruned) for perf reporting.
  std::uint64_t sim_events = 0;
  std::uint64_t sim_scheduled = 0;
  std::uint64_t sim_tombstones = 0;
  // Probe-window deltas (zero when the probe is disabled; see FlowRunConfig).
  std::uint64_t steady_allocs = 0;
  std::uint64_t steady_events = 0;
};

// TCP configuration used for a profile (exposed so analyses know b and W_m).
tcp::TcpConfig tcp_config_for(const FlowRunConfig& cfg);

// Runs a single bulk-download TCP flow over the profile for `duration`.
FlowRunResult run_flow(const FlowRunConfig& cfg);

// --- TCP vs MPTCP (Fig. 12) ---------------------------------------------------

struct MptcpComparison {
  double tcp_pps = 0.0;          // single-path TCP goodput
  double mptcp_pps = 0.0;        // 2-subflow MPTCP meta goodput
  double improvement = 0.0;      // (mptcp - tcp) / tcp
  std::uint64_t rescues = 0;     // backup mode only
  std::uint64_t useful_rescues = 0;
};

// Runs single-path TCP and a 2-subflow MPTCP connection over independent
// path instances of the same provider (the paper's "two flows sharing no
// bottleneck" approximation) and compares goodput over a fixed duration.
MptcpComparison run_mptcp_comparison(const radio::ProviderProfile& profile,
                                     Duration duration, std::uint64_t seed,
                                     mptcp::Mode mode = mptcp::Mode::kDuplex);

// The paper's exact Fig. 12 methodology: one large TCP flow of
// `total_segments` vs two parallel small flows of total_segments/2 each
// (which "can be regarded as two independent subflows of MPTCP"). Both run
// on the same radio environment (same handset); throughput is
// bytes/completion-time. In gap-dominated coverage a single large flow
// straddles dead zones and deep RTO backoff, which is where the paper's
// 283 % Telecom gain comes from.
MptcpComparison run_fixed_transfer_comparison(const radio::ProviderProfile& profile,
                                              std::uint64_t total_segments,
                                              std::uint64_t seed);

// A multi-run fixed-transfer sweep (Fig. 12 error bars): `runs` repetitions
// of run_fixed_transfer_comparison at seeds base_seed, base_seed+stride, ...
struct FixedTransferSweepSpec {
  radio::ProviderProfile profile;
  std::uint64_t total_segments = 2000;
  std::uint64_t base_seed = 1;
  std::uint64_t seed_stride = 101;
  std::uint64_t runs = 1;
  // Worker threads for sharding (0 = all hardware threads). Results are
  // byte-identical for ANY thread count: every constituent simulation is
  // independently seeded from the spec and lands in a pre-sized slot.
  unsigned threads = 0;
};

// Runs the sweep sharded across a util::ThreadPool. Each repetition's three
// simulations (one large flow, two small flows) are independent tasks, so
// the pool keeps all cores busy even when runs < threads. Entry r of the
// result equals run_fixed_transfer_comparison(profile, total_segments,
// base_seed + r * seed_stride) exactly.
std::vector<MptcpComparison> run_fixed_transfer_sweep(const FixedTransferSweepSpec& spec);

}  // namespace hsr::workload
