#include "workload/scenario.h"

#include <functional>
#include <memory>

#include "sim/simulator.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/multi_flow.h"

namespace hsr::workload {

namespace {

net::LinkConfig downlink_config(const radio::ProviderProfile& p) {
  net::LinkConfig cfg;
  cfg.rate_bps = p.downlink_rate_bps;
  cfg.prop_delay = p.core_delay;
  cfg.queue_capacity = p.queue_capacity;
  cfg.name = p.name + "/down";
  return cfg;
}

net::LinkConfig uplink_config(const radio::ProviderProfile& p) {
  net::LinkConfig cfg;
  cfg.rate_bps = p.uplink_rate_bps;
  cfg.prop_delay = p.core_delay;
  cfg.queue_capacity = 64;
  cfg.name = p.name + "/up";
  return cfg;
}

}  // namespace

tcp::TcpConfig tcp_config_for(const FlowRunConfig& cfg) {
  return tcp::make_tcp_config(cfg.tcp, cfg.profile.receiver_window_segments);
}

FlowRunResult run_flow(const FlowRunConfig& cfg) {
  // Thin adapter over the shared-bottleneck path at N=1. The multi-flow
  // runner reproduces the historical single-flow assembly exactly for flow
  // 0 (same fork labels, same construction order), so the capture bytes are
  // pinned byte-identical to the pre-multi-flow implementation
  // (MultiFlowAdapterTest.GoldenDigestsUnchanged).
  MultiFlowSpec spec;
  spec.profile = cfg.profile;
  spec.duration = cfg.duration;
  spec.seed = cfg.seed;
  spec.max_sim_events = cfg.max_sim_events;
  spec.probe_begin = cfg.probe_begin;
  spec.probe_end = cfg.probe_end;
  MultiFlowSenderSpec sender;
  sender.tcp = cfg.tcp;
  sender.downlink_faults = cfg.downlink_faults;
  sender.uplink_faults = cfg.uplink_faults;
  spec.senders.push_back(std::move(sender));

  MultiFlowResult mr = run_multi_flow(spec);
  MultiFlowFlowResult& f = mr.flows.at(0);

  FlowRunResult out;
  out.status = std::move(mr.status);
  out.sender_stats = f.sender_stats;
  out.receiver_stats = f.receiver_stats;
  out.events = std::move(f.events);
  out.cwnd_trace = std::move(f.cwnd_trace);
  out.delivery_times = std::move(f.delivery_times);
  out.duration = cfg.duration;
  out.goodput_pps = f.goodput_pps;
  out.goodput_bps = f.goodput_bps;
  out.handoffs = mr.handoffs;
  out.faults_injected = f.faults_injected;
  out.sim_events = mr.sim_events;
  out.sim_scheduled = mr.sim_scheduled;
  out.sim_tombstones = mr.sim_tombstones;
  out.steady_allocs = mr.steady_allocs;
  out.steady_events = mr.steady_events;
  out.bytes_captured = f.bytes_captured;
  out.capture = std::move(mr.captures.at(0));
  return out;
}

MptcpComparison run_mptcp_comparison(const radio::ProviderProfile& profile,
                                     Duration duration, std::uint64_t seed,
                                     mptcp::Mode mode) {
  MptcpComparison out;

  // Baseline: single-path TCP.
  {
    FlowRunConfig cfg;
    cfg.profile = profile;
    cfg.duration = duration;
    cfg.seed = seed;
    out.tcp_pps = run_flow(cfg).goodput_pps;
  }

  // MPTCP: two subflows on the SAME radio environment (one phone, one cell
  // — the paper's paired flows ran on the same handset, so handoff outages
  // and coverage gaps hit both subflows together). Each subflow still has
  // its own queue, its own per-packet loss randomness and its own TCP state,
  // so the gain comes from window aggregation plus RTO-backoff
  // decorrelation: after a shared outage, whichever subflow's timer fires
  // first restarts the transfer while the other is still backing off.
  {
    sim::Simulator sim;
    util::Rng rng(util::splitmix64(seed) ^ 0x4d50544350ULL);  // "MPTCP"

    mptcp::MptcpConfig mc;
    mc.mode = mode;
    mc.set_subflow_options(tcp::TcpOptions{}, profile.receiver_window_segments);

    radio::RadioEnvironment env(profile.radio, rng.fork("radio"));

    std::vector<mptcp::PathSetup> paths;
    for (int i = 0; i < 2; ++i) {
      mptcp::PathSetup setup;
      setup.downlink = downlink_config(profile);
      setup.uplink = uplink_config(profile);
      setup.down_channel = env.make_channel(
          radio::Direction::kDownlink, rng.fork("down", static_cast<std::uint64_t>(i)));
      setup.up_channel = env.make_channel(
          radio::Direction::kUplink, rng.fork("up", static_cast<std::uint64_t>(i)));
      paths.push_back(std::move(setup));
    }

    mptcp::MptcpConnection conn(sim, /*flow_base=*/10, mc, std::move(paths));
    conn.start();
    sim.run_until(TimePoint::zero() + duration);
    out.mptcp_pps = conn.goodput_pps();
    out.rescues = conn.rescue_transmissions();
    out.useful_rescues = conn.useful_rescues();
  }

  out.improvement =
      out.tcp_pps > 0.0 ? (out.mptcp_pps - out.tcp_pps) / out.tcp_pps : 0.0;
  return out;
}

namespace {

// Simulation-time cap for fixed transfers; transfers still incomplete by
// then are scored at the cap (a conservative underestimate of the gain).
constexpr double kTransferCapSeconds = 1800.0;

// Runs the simulator until `done()` or the cap; returns elapsed seconds.
double run_until_done(sim::Simulator& sim, const std::function<bool()>& done) {
  double t = 0.0;
  while (t < kTransferCapSeconds && !done()) {
    t += 0.5;
    sim.run_until(TimePoint::from_seconds(t));
  }
  return t;
}

// One fixed-size transfer over a fresh environment: `segments` segments at
// `rng_seed`, returning segments/completion-time. The building block of both
// the single comparison and the sharded sweep — entirely self-contained, so
// any worker thread can run it for any (profile, segments, seed) triple.
double fixed_transfer_rate(const radio::ProviderProfile& profile,
                           std::uint64_t segments, std::uint64_t rng_seed) {
  net::reset_packet_ids();
  FlowRunConfig fc;
  fc.profile = profile;

  sim::Simulator sim;
  util::Rng rng(rng_seed);
  radio::RadioEnvironment env(profile.radio, rng.fork("radio"));
  tcp::ConnectionConfig cfg;
  cfg.tcp = tcp_config_for(fc);
  cfg.tcp.total_segments = segments;
  cfg.downlink = downlink_config(profile);
  cfg.uplink = uplink_config(profile);
  tcp::Connection conn(sim, 1, cfg,
                       env.make_channel(radio::Direction::kDownlink, rng.fork("d")),
                       env.make_channel(radio::Direction::kUplink, rng.fork("u")));
  conn.start();
  const double t = run_until_done(
      sim, [&] { return conn.receiver().stats().unique_segments >= segments; });
  return static_cast<double>(segments) / t;
}

// Seed of the i-th small flow (i in {0, 1}) of a comparison at `seed`.
std::uint64_t small_flow_seed(std::uint64_t seed, int i) {
  return util::splitmix64(seed + 31 * static_cast<std::uint64_t>(i + 1)) ^
         0x32464c4f57ULL;
}

MptcpComparison combine_fixed_transfer(double large_rate, double small0_rate,
                                       double small1_rate) {
  MptcpComparison out;
  out.tcp_pps = large_rate;
  // The combined throughput is the SUM of the two small flows' rates —
  // exactly the paper's "total throughput getting by these two flows".
  out.mptcp_pps = small0_rate + small1_rate;
  out.improvement =
      out.tcp_pps > 0.0 ? (out.mptcp_pps - out.tcp_pps) / out.tcp_pps : 0.0;
  return out;
}

}  // namespace

MptcpComparison run_fixed_transfer_comparison(const radio::ProviderProfile& profile,
                                              std::uint64_t total_segments,
                                              std::uint64_t seed) {
  // One large flow of `total_segments` vs two small flows of total/2 each,
  // over the same radio environment class (the paper's pairs come from
  // different points of its dataset). Short transfers often dodge the long
  // dead zones a large transfer cannot avoid, which is where China Telecom's
  // outsized gain comes from.
  const double large = fixed_transfer_rate(profile, total_segments, seed);
  const double small0 =
      fixed_transfer_rate(profile, total_segments / 2, small_flow_seed(seed, 0));
  const double small1 =
      fixed_transfer_rate(profile, total_segments / 2, small_flow_seed(seed, 1));
  return combine_fixed_transfer(large, small0, small1);
}

std::vector<MptcpComparison> run_fixed_transfer_sweep(const FixedTransferSweepSpec& spec) {
  // Shard at (repetition, flow) granularity: each repetition contributes
  // three independent simulations (the large flow and the two small flows),
  // every one fully determined by the spec and its index. Results land in
  // pre-sized slots, so claiming order — and therefore thread count — cannot
  // perturb the output.
  std::vector<double> rates(spec.runs * 3, 0.0);
  util::parallel_for(spec.threads, spec.runs * 3, [&](std::uint64_t idx) {
    const std::uint64_t r = idx / 3;
    const int part = static_cast<int>(idx % 3);
    const std::uint64_t seed = spec.base_seed + r * spec.seed_stride;
    rates[idx] = part == 0
                     ? fixed_transfer_rate(spec.profile, spec.total_segments, seed)
                     : fixed_transfer_rate(spec.profile, spec.total_segments / 2,
                                           small_flow_seed(seed, part - 1));
  });

  std::vector<MptcpComparison> out;
  out.reserve(spec.runs);
  for (std::uint64_t r = 0; r < spec.runs; ++r) {
    out.push_back(combine_fixed_transfer(rates[r * 3], rates[r * 3 + 1],
                                         rates[r * 3 + 2]));
  }
  return out;
}

}  // namespace hsr::workload
