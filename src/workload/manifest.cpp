#include "workload/manifest.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

namespace hsr::workload {

namespace {

util::Status manifest_error(std::size_t line, const std::string& what) {
  return util::Status::invalid_argument("manifest line " + std::to_string(line) +
                                        ": " + what);
}

bool parse_u64(std::string_view text, std::uint64_t* out, int base = 10) {
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, *out, base);
  return ec == std::errc() && ptr == last && !text.empty();
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  for (int i = 15; i >= 0; --i) {
    buf[i] = "0123456789abcdef"[v & 0xF];
    v >>= 4;
  }
  buf[16] = '\0';
  return buf;
}

std::string hex8(std::uint32_t v) {
  char buf[9];
  for (int i = 7; i >= 0; --i) {
    buf[i] = "0123456789abcdef"[v & 0xF];
    v >>= 4;
  }
  buf[8] = '\0';
  return buf;
}

}  // namespace

bool CampaignManifest::has_chunk(std::uint64_t index) const {
  return std::any_of(chunks.begin(), chunks.end(),
                     [index](const ChunkEntry& c) { return c.index == index; });
}

std::string CampaignManifest::to_text() const {
  std::vector<ChunkEntry> sorted = chunks;
  std::sort(sorted.begin(), sorted.end(),
            [](const ChunkEntry& a, const ChunkEntry& b) { return a.index < b.index; });
  std::ostringstream os;
  os << kManifestMagic << " spec=" << hex16(spec_digest) << " flows=" << total_flows
     << " chunk_flows=" << chunk_flows << " chunks=" << sorted.size() << "\n";
  for (const ChunkEntry& c : sorted) {
    os << "C " << c.index << ' ' << c.first_flow << ' ' << c.flow_count << ' '
       << c.flows << ' ' << c.quarantines << ' ' << c.bytes << ' '
       << hex8(c.crc32c) << "\n";
  }
  return os.str();
}

util::StatusOr<CampaignManifest> CampaignManifest::parse(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line)) {
    return util::Status::invalid_argument("empty manifest");
  }
  std::istringstream header(line);
  std::string magic;
  header >> magic;
  if (magic != kManifestMagic) {
    return util::Status::invalid_argument("not an " + std::string(kManifestMagic) +
                                          " file (got '" + magic + "')");
  }
  CampaignManifest manifest;
  std::uint64_t declared_chunks = 0;
  bool saw_spec = false, saw_flows = false, saw_chunk_flows = false, saw_chunks = false;
  std::string field;
  while (header >> field) {
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return manifest_error(1, "malformed header field '" + field + "'");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    std::uint64_t parsed = 0;
    const int base = key == "spec" ? 16 : 10;
    if (!parse_u64(value, &parsed, base)) {
      return manifest_error(1, "bad value for '" + key + "': '" + value + "'");
    }
    if (key == "spec") {
      manifest.spec_digest = parsed;
      saw_spec = true;
    } else if (key == "flows") {
      manifest.total_flows = parsed;
      saw_flows = true;
    } else if (key == "chunk_flows") {
      manifest.chunk_flows = parsed;
      saw_chunk_flows = true;
    } else if (key == "chunks") {
      declared_chunks = parsed;
      saw_chunks = true;
    } else {
      return manifest_error(1, "unknown header field '" + key + "'");
    }
  }
  if (!saw_spec || !saw_flows || !saw_chunk_flows || !saw_chunks) {
    return manifest_error(1, "header missing spec=/flows=/chunk_flows=/chunks=");
  }
  if (manifest.chunk_flows == 0) {
    return manifest_error(1, "chunk_flows must be positive");
  }

  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag != "C") {
      return manifest_error(line_no, "expected a 'C' chunk entry, got '" + tag + "'");
    }
    ChunkEntry entry;
    std::string crc_text;
    if (!(ls >> entry.index >> entry.first_flow >> entry.flow_count >>
          entry.flows >> entry.quarantines >> entry.bytes >> crc_text)) {
      return manifest_error(line_no, "truncated chunk entry");
    }
    std::string trailing;
    if (ls >> trailing) {
      return manifest_error(line_no, "trailing tokens after chunk entry");
    }
    std::uint64_t crc = 0;
    if (!parse_u64(crc_text, &crc, 16) || crc > 0xFFFFFFFFull) {
      return manifest_error(line_no, "bad crc '" + crc_text + "'");
    }
    entry.crc32c = static_cast<std::uint32_t>(crc);
    if (entry.flow_count == 0) {
      return manifest_error(line_no, "chunk declares zero flows");
    }
    if (entry.flows + entry.quarantines != entry.flow_count) {
      return manifest_error(line_no, "flows + quarantines != flow_count");
    }
    if (manifest.has_chunk(entry.index)) {
      return manifest_error(line_no, "duplicate chunk index " +
                                         std::to_string(entry.index));
    }
    manifest.chunks.push_back(entry);
  }
  if (manifest.chunks.size() != declared_chunks) {
    return util::Status::invalid_argument(
        "manifest declared " + std::to_string(declared_chunks) +
        " chunks but holds " + std::to_string(manifest.chunks.size()));
  }
  std::sort(manifest.chunks.begin(), manifest.chunks.end(),
            [](const ChunkEntry& a, const ChunkEntry& b) { return a.index < b.index; });
  return manifest;
}

std::uint64_t manifest_digest(std::string_view canonical_text) {
  // FNV-1a, 64-bit: deterministic across platforms, no dependencies.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : canonical_text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

util::Status save_campaign_manifest(util::Fs& fs, const std::string& path,
                                    const CampaignManifest& manifest) {
  return util::write_file_atomic(fs, path, manifest.to_text());
}

util::StatusOr<CampaignManifest> load_campaign_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::not_found("cannot open manifest: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return CampaignManifest::parse(buffer.str());
}

}  // namespace hsr::workload
