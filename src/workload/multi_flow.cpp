#include "workload/multi_flow.h"

#include <memory>
#include <string>
#include <utility>

#include "net/channel.h"
#include "radio/environment.h"
#include "sim/simulator.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"
#include "util/alloc_probe.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hsr::workload {

namespace {

net::LinkConfig downlink_config_for(const radio::ProviderProfile& p) {
  net::LinkConfig cfg;
  cfg.rate_bps = p.downlink_rate_bps;
  cfg.prop_delay = p.core_delay;
  cfg.queue_capacity = p.queue_capacity;
  cfg.name = p.name + "/down";
  return cfg;
}

net::LinkConfig uplink_config_for(const radio::ProviderProfile& p) {
  net::LinkConfig cfg;
  cfg.rate_bps = p.uplink_rate_bps;
  cfg.prop_delay = p.core_delay;
  cfg.queue_capacity = 64;
  cfg.name = p.name + "/up";
  return cfg;
}

// One flow's TCP endpoints. Heap-owned so the registered Link receivers can
// capture a stable raw pointer (the vector of stacks may move around).
struct FlowStack {
  std::unique_ptr<tcp::TcpReceiver> receiver;
  std::unique_ptr<tcp::TcpSender> sender;
};

}  // namespace

MultiFlowSenderSpec MultiFlowSpec::resolved_sender(unsigned i) const {
  if (!senders.empty()) {
    HSR_CHECK_MSG(i < senders.size(), "sender index out of range");
    return senders[i];
  }
  MultiFlowSenderSpec s;
  s.tcp = tcp;
  s.start_offset = start_stagger * static_cast<std::int64_t>(i);
  return s;
}

MultiFlowResult run_multi_flow(const MultiFlowSpec& spec) {
  const unsigned n = spec.flow_count();
  HSR_CHECK_MSG(n >= 1, "multi-flow scenario needs at least one sender");

  // Fresh ids per scenario: serialized captures must depend only on the
  // spec, not on which scenarios this worker thread ran before.
  net::reset_packet_ids();
  sim::Simulator sim;
  sim.set_event_budget(spec.max_sim_events);
  util::Rng rng(spec.seed);

  // ONE radio environment: all flows ride the same train through the same
  // cells, so handoffs and coverage gaps hit everyone together (which is
  // exactly what makes handoff-burst fairness interesting).
  radio::RadioEnvironment env(spec.profile.radio, rng.fork("radio"));

  const net::LinkConfig down_cfg = downlink_config_for(spec.profile);
  const net::LinkConfig up_cfg = uplink_config_for(spec.profile);

  MultiFlowResult out;
  out.duration = spec.duration;
  out.captures.resize(n);
  out.flows.resize(n);

  std::vector<MultiFlowSenderSpec> resolved;
  resolved.reserve(n);
  for (unsigned i = 0; i < n; ++i) resolved.push_back(spec.resolved_sender(i));

  // Per-flow access stubs behind one shared queue: each flow's channel pair
  // draws from its own fork of the scenario seed and carries its own
  // scripted faults. Flow 0 keeps the legacy single-flow fork labels
  // ("chan-down"/"chan-up", no index), which is what makes the run_flow
  // N=1 adapter byte-identical to the historical single-flow path — note
  // fork(label) and fork(label, 0) are DIFFERENT streams.
  auto down_demux = std::make_unique<net::FlowDemuxChannel>();
  auto up_demux = std::make_unique<net::FlowDemuxChannel>();
  for (unsigned i = 0; i < n; ++i) {
    const net::FlowId flow = i + 1;
    trace::FlowCapture& capture = out.captures[i];
    capture.flow = flow;
    // Pre-size for this flow's fair share of the bottleneck so steady-state
    // recording never reallocates mid-simulation (an over-estimate for
    // unfair flows is harmless — reserve_for clamps).
    capture.reserve_for(spec.duration,
                        down_cfg.rate_bps / static_cast<double>(n),
                        resolved[i].tcp.mss_bytes);
    // All flows draw packet ids from ONE shared counter, so every flow's
    // id→index table spans the whole scenario's traffic — data sends plus
    // ACKs, bounded by 2x the saturated-link segment count — not just this
    // flow's share. Undershooting here costs resize doublings mid-run,
    // which the steady-state zero-allocation contract forbids.
    const double total_segments =
        spec.duration.to_seconds() * down_cfg.rate_bps /
        (8.0 * static_cast<double>(resolved[i].tcp.mss_bytes));
    const double total_ids = total_segments * 2.5;
    capture.reserve_id_space(std::clamp(
        total_ids >= static_cast<double>(4 * trace::FlowCapture::kMaxReserveTx)
            ? 4 * trace::FlowCapture::kMaxReserveTx
            : static_cast<std::size_t>(total_ids),
        2 * trace::FlowCapture::kMinReserveTx,
        4 * trace::FlowCapture::kMaxReserveTx));

    std::unique_ptr<net::ChannelModel> down = env.make_channel(
        radio::Direction::kDownlink,
        i == 0 ? rng.fork("chan-down") : rng.fork("chan-down", i));
    std::unique_ptr<net::ChannelModel> up = env.make_channel(
        radio::Direction::kUplink,
        i == 0 ? rng.fork("chan-up") : rng.fork("chan-up", i));
    if (!resolved[i].downlink_faults.empty() ||
        !resolved[i].uplink_faults.empty()) {
      // The injectors append an audit record per triggered fault on the
      // packet drop/delay path; pre-size the trail so steady-state fault
      // churn (scripted blackout bursts) does not reallocate mid-run.
      // Overflow beyond the tranche falls back to geometric growth.
      capture.faults.reserve(4096);
    }
    if (!resolved[i].downlink_faults.empty()) {
      auto injector = std::make_unique<fault::FaultInjector>(
          resolved[i].downlink_faults, std::move(down));
      injector->set_audit(&capture.faults, 'D');
      down = std::move(injector);
    }
    if (!resolved[i].uplink_faults.empty()) {
      auto injector = std::make_unique<fault::FaultInjector>(
          resolved[i].uplink_faults, std::move(up));
      injector->set_audit(&capture.faults, 'A');
      up = std::move(injector);
    }
    down_demux->add_flow(flow, std::move(down));
    up_demux->add_flow(flow, std::move(up));
  }

  // The shared bottleneck pair: ONE DropTail queue and transmitter per
  // direction, multiplexing every flow.
  net::Link downlink(sim, down_cfg, std::move(down_demux));
  net::Link uplink(sim, up_cfg, std::move(up_demux));

  std::vector<FlowStack> stacks(n);
  // Peak pending-event estimate for the queue pre-size: every in-flight
  // data segment and every in-flight ACK carries one scheduled delivery
  // event (bounded per flow by the receiver window), plus each flow's RTO
  // and delayed-ACK timers and a margin for link-serialization and radio
  // bookkeeping events.
  std::size_t expected_pending = 128;
  for (unsigned i = 0; i < n; ++i) {
    const net::FlowId flow = i + 1;
    const tcp::TcpConfig tcfg = tcp::make_tcp_config(
        resolved[i].tcp, spec.profile.receiver_window_segments);
    expected_pending += 2 * static_cast<std::size_t>(tcfg.receiver_window) + 8;
    HSR_CHECK_MSG(tcfg.delayed_ack_b >= 1, "delayed_ack_b must be >= 1");
    auto ack_tx = [&uplink](net::Packet p) { uplink.send(std::move(p)); };
    static_assert(tcp::PacketSendFn::holds_inline<decltype(ack_tx)>(),
                  "ACK send closure outgrew the PacketSendFn SBO");
    stacks[i].receiver =
        std::make_unique<tcp::TcpReceiver>(sim, tcfg, flow, std::move(ack_tx));
    auto data_tx = [&downlink](net::Packet p) { downlink.send(std::move(p)); };
    static_assert(tcp::PacketSendFn::holds_inline<decltype(data_tx)>(),
                  "data send closure outgrew the PacketSendFn SBO");
    stacks[i].sender =
        std::make_unique<tcp::TcpSender>(sim, tcfg, flow, std::move(data_tx));

    // Pre-size the endpoints' diagnostic series for this flow's fair share
    // of the bottleneck — same contract as the capture reserve above: no
    // vector growth once the flow reaches steady state.
    const double share = down_cfg.rate_bps / static_cast<double>(n);
    stacks[i].sender->reserve_for(spec.duration, share);
    stacks[i].receiver->reserve_for(spec.duration, share);

    // Per-flow demux endpoints. The closures must stay inside the Receiver
    // SBO: a heap fallback here would put an allocation on every delivery.
    auto data_endpoint = [r = stacks[i].receiver.get()](const net::Packet& p) {
      r->on_data(p);
    };
    static_assert(net::Link::Receiver::holds_inline<decltype(data_endpoint)>(),
                  "demux data endpoint outgrew the Link::Receiver SBO; "
                  "per-packet delivery would heap-allocate");
    downlink.register_endpoint(flow, std::move(data_endpoint), &out.captures[i].data);

    auto ack_endpoint = [s = stacks[i].sender.get()](const net::Packet& p) {
      s->on_ack(p);
    };
    static_assert(net::Link::Receiver::holds_inline<decltype(ack_endpoint)>(),
                  "demux ACK endpoint outgrew the Link::Receiver SBO; "
                  "per-packet delivery would heap-allocate");
    uplink.register_endpoint(flow, std::move(ack_endpoint), &out.captures[i].acks);
  }
  sim.reserve_events(expected_pending);

  // Staggered starts: offset-zero flows start synchronously before the
  // event loop (exactly like the legacy single-flow path), later arrivals
  // are scheduled into the simulation.
  for (unsigned i = 0; i < n; ++i) {
    tcp::TcpSender* sender = stacks[i].sender.get();
    if (resolved[i].start_offset.ns() <= 0) {
      sender->start();
    } else {
      sim.at(TimePoint::zero() + resolved[i].start_offset,
             [sender] { sender->start(); });
    }
  }

  // Steady-state allocation probe: snapshot the thread's AllocProbe counter
  // and the event count at the window edges. Scheduled AFTER the start
  // events so a probe_begin of zero measures from the first event on. The
  // counters only tick in binaries that install the counting allocator; the
  // two extra events never touch captures, so the recorded bytes are
  // unchanged whether or not the probe is armed.
  std::uint64_t probe_news0 = 0;
  std::uint64_t probe_events0 = 0;
  if (spec.probe_end > spec.probe_begin) {
    sim.at(spec.probe_begin, [&] {
      probe_news0 = util::AllocProbe::news;
      probe_events0 = sim.events_executed();
    });
    sim.at(spec.probe_end, [&] {
      out.steady_allocs = util::AllocProbe::news - probe_news0;
      out.steady_events = sim.events_executed() - probe_events0;
    });
  }

  sim.run_until(TimePoint::zero() + spec.duration);

  if (sim.budget_exhausted()) {
    out.status = util::Status::resource_exhausted(
        "flow watchdog: event budget of " + std::to_string(spec.max_sim_events) +
        " exhausted at t=" + std::to_string(sim.now().to_seconds()) +
        " s (of " + std::to_string(spec.duration.to_seconds()) +
        " s); flow aborted");
  }

  const double elapsed = sim.now().to_seconds();
  out.handoffs = env.handoff_count(sim.now());
  out.sim_events = sim.events_executed();
  out.sim_scheduled = sim.queue().scheduled_total();
  out.sim_tombstones = sim.queue().pruned_tombstones_total() +
                       sim.queue().tombstones_in_heap();
  out.downlink_aggregate = downlink.stats();
  out.uplink_aggregate = uplink.stats();

  for (unsigned i = 0; i < n; ++i) {
    MultiFlowFlowResult& f = out.flows[i];
    f.flow = i + 1;
    f.start_offset = resolved[i].start_offset;
    f.sender_stats = stacks[i].sender->stats();
    f.receiver_stats = stacks[i].receiver->stats();
    f.events = stacks[i].sender->events();
    f.cwnd_trace = stacks[i].sender->cwnd_trace();
    f.delivery_times = stacks[i].receiver->delivery_times();
    // Application goodput over [0, now] — same definition as the single-flow
    // path, and the numerator the fairness shares are computed from.
    HSR_DCHECK_MSG(f.receiver_stats.unique_segments <= f.sender_stats.segments_sent,
                   "receiver delivered more unique segments than were sent");
    f.goodput_pps = elapsed > 0.0
                        ? static_cast<double>(f.receiver_stats.unique_segments) / elapsed
                        : 0.0;
    f.goodput_bps =
        f.goodput_pps * static_cast<double>(resolved[i].tcp.mss_bytes) * 8.0;
    f.faults_injected = out.captures[i].faults.size();
    f.downlink_stats = downlink.endpoint_stats(f.flow);
    f.uplink_stats = uplink.endpoint_stats(f.flow);
    for (const auto& tx : out.captures[i].data.transmissions()) {
      f.bytes_captured += tx.packet.size_bytes;
    }
    for (const auto& tx : out.captures[i].acks.transmissions()) {
      f.bytes_captured += tx.packet.size_bytes;
    }
  }
  return out;
}

MultiFlowSpec MultiFlowSweepSpec::scenario(std::size_t s) const {
  HSR_CHECK_MSG(s < flow_counts.size(), "sweep scenario index out of range");
  MultiFlowSpec spec;
  spec.profile = profile;
  spec.flows = flow_counts[s];
  spec.duration = duration;
  spec.seed = base_seed + s * seed_stride;
  spec.start_stagger = start_stagger;
  spec.tcp = tcp;
  spec.max_sim_events = max_sim_events;
  if (burst_end > burst_begin) {
    // The scripted handoff burst blacks out every flow's access stub over
    // the window — the shared-cell outage the goodput-share tables study.
    // Resolve all senders BEFORE installing any: resolved_sender() switches
    // to the explicit list as soon as it is non-empty.
    std::vector<MultiFlowSenderSpec> senders;
    senders.reserve(spec.flows);
    for (unsigned i = 0; i < spec.flows; ++i) {
      MultiFlowSenderSpec sender = spec.resolved_sender(i);
      sender.downlink_faults.blackout(burst_begin, burst_end, "handoff-burst");
      senders.push_back(std::move(sender));
    }
    spec.senders = std::move(senders);
  }
  return spec;
}

std::vector<MultiFlowResult> run_multi_flow_sweep(const MultiFlowSweepSpec& spec) {
  // Shard scenarios across the pool; every scenario is fully determined by
  // the spec and its index and lands in a pre-sized slot, so claiming order
  // — and therefore thread count — cannot perturb the output bytes.
  std::vector<MultiFlowResult> out(spec.flow_counts.size());
  util::parallel_for(spec.threads, spec.flow_counts.size(), [&](std::uint64_t s) {
    out[s] = run_multi_flow(spec.scenario(s));
  });
  return out;
}

std::vector<trace::FlowCapture> sweep_captures(std::vector<MultiFlowResult>&& results) {
  std::size_t total = 0;
  for (const auto& r : results) total += r.captures.size();
  std::vector<trace::FlowCapture> out;
  out.reserve(total);
  for (auto& r : results) {
    for (auto& c : r.captures) out.push_back(std::move(c));
    r.captures.clear();
  }
  return out;
}

}  // namespace hsr::workload
