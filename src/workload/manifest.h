// Campaign manifest ("hsrmanifest-v1"): the durable record of which chunks
// of a streaming campaign have been committed, and how to trust them.
//
// A streaming campaign partitions its flow range into fixed chunks; each
// chunk is committed as its own hsrtrace-b2 file (tmp + fsync + atomic
// rename), and immediately afterwards the manifest is rewritten atomically
// with the new chunk's entry. After a SIGKILL or an ENOSPC, the manifest is
// therefore the exact set of chunks that are durably complete — resume
// verifies each listed chunk against its recorded size and CRC-32C, re-runs
// only the missing or damaged ranges, and the merged corpus comes out
// byte-identical to an uninterrupted run.
//
// The spec digest in the header pins the manifest to one (spec, seed,
// chunking) configuration: resuming with a different scale, seed or chunk
// size would silently splice incompatible flows, so a digest mismatch
// rejects the resume instead.
//
// Wire format (one entry per committed chunk, any order on disk; load()
// sorts by index):
//   hsrmanifest-v1 spec=<hex16> flows=<N> chunk_flows=<C> chunks=<K>
//   C <index> <first_flow> <flow_count> <flows> <quarantines> <bytes> <crc-hex8>
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/fs.h"
#include "util/status.h"

namespace hsr::workload {

inline constexpr char kManifestMagic[] = "hsrmanifest-v1";

// One committed chunk: its planned flow range plus the digest of the file
// that holds it.
struct ChunkEntry {
  std::uint64_t index = 0;       // chunk ordinal within the campaign
  std::uint64_t first_flow = 0;  // first planned flow index in the chunk
  std::uint64_t flow_count = 0;  // planned flows in the chunk (incl. quarantined)
  std::uint64_t flows = 0;       // 'F' frames the chunk file holds
  std::uint64_t quarantines = 0; // 'Q' frames
  std::uint64_t bytes = 0;       // committed file size
  std::uint32_t crc32c = 0;      // CRC-32C of the whole file's bytes

  friend bool operator==(const ChunkEntry&, const ChunkEntry&) = default;
};

struct CampaignManifest {
  std::uint64_t spec_digest = 0;  // manifest_digest() of the canonical spec text
  std::uint64_t total_flows = 0;  // planned flows in the whole campaign
  std::uint64_t chunk_flows = 0;  // planned flows per chunk (last may be short)
  std::vector<ChunkEntry> chunks; // committed chunks, sorted by index

  // True when a chunk with this index is already committed.
  [[nodiscard]] bool has_chunk(std::uint64_t index) const;

  // Deterministic round-trip text ("hsrmanifest-v1"). parse() validates the
  // declared entry count against the lines present and rejects duplicate
  // chunk indices.
  std::string to_text() const;
  [[nodiscard]] static util::StatusOr<CampaignManifest> parse(const std::string& text);

  friend bool operator==(const CampaignManifest&, const CampaignManifest&) = default;
};

// 64-bit FNV-1a over the canonical spec text — the pin that stops a resume
// from splicing chunks generated under a different configuration.
std::uint64_t manifest_digest(std::string_view canonical_text);

// Atomic save (write_file_atomic through the seam: tmp + fsync + rename) and
// load. The manifest on disk is always a complete, parseable snapshot.
[[nodiscard]] util::Status save_campaign_manifest(util::Fs& fs, const std::string& path,
                                                  const CampaignManifest& manifest);
[[nodiscard]] util::StatusOr<CampaignManifest> load_campaign_manifest(const std::string& path);

}  // namespace hsr::workload
