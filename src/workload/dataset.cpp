#include "workload/dataset.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <exception>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "trace/corpus_writer.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hsr::workload {

DatasetSpec DatasetSpec::paper_table1(double scale) {
  scale = std::clamp(scale, 0.01, 1.0);
  const auto scaled = [scale](unsigned n) {
    return std::max(1u, static_cast<unsigned>(n * scale));
  };

  DatasetSpec spec;
  spec.campaigns = {
      {"January 2015", "Samsung Note 3", radio::mobile_lte_highspeed(), scaled(52), 8},
      {"October 2015", "Samsung Note 3", radio::mobile_lte_highspeed(), scaled(73), 24},
      {"October 2015", "Samsung Galaxy S4", radio::unicom_3g_highspeed(), scaled(65), 24},
      {"October 2015", "Samsung Galaxy S4", radio::telecom_3g_highspeed(), scaled(65), 24},
  };
  spec.stationary_flows_per_provider = std::max(3u, scaled(12));
  return spec;
}

DatasetPlan::DatasetPlan(const DatasetSpec& spec)
    : seed_(spec.seed),
      duration_min_s_(spec.flow_duration_min.to_seconds()),
      duration_max_s_(spec.flow_duration_max.to_seconds()) {
  // Same layout the legacy planning loop produced: campaign blocks in spec
  // order, then one stationary block per distinct provider.
  for (const auto& campaign : spec.campaigns) {
    blocks_.push_back(Block{flow_count_, campaign.flows, campaign.profile,
                            campaign.campaign, campaign.phone, false});
    flow_count_ += campaign.flows;
  }
  std::vector<radio::ProviderProfile> seen;
  for (const auto& campaign : spec.campaigns) {
    const bool dup = std::any_of(seen.begin(), seen.end(), [&](const auto& p) {
      return p.provider == campaign.profile.provider;
    });
    if (dup) continue;
    seen.push_back(campaign.profile);
    blocks_.push_back(Block{flow_count_, spec.stationary_flows_per_provider,
                            radio::stationary_of(campaign.profile),
                            "stationary control", "Samsung Galaxy S4", true});
    flow_count_ += spec.stationary_flows_per_provider;
  }
}

FlowTask DatasetPlan::task(std::uint64_t flow_index) const {
  const Block* block = nullptr;
  for (const auto& b : blocks_) {
    if (flow_index >= b.start && flow_index < b.start + b.count) {
      block = &b;
      break;
    }
  }
  HSR_CHECK_MSG(block != nullptr, "flow index out of plan range");

  // Rng::fork is pure in (seed, label, index), so deriving here on demand
  // yields the exact stream the sequential planning loop drew.
  const util::Rng rng(seed_);
  util::Rng flow_rng =
      rng.fork(block->stationary ? "stationary-flow" : "flow", flow_index);
  const double span_s = flow_rng.uniform(duration_min_s_, duration_max_s_);
  const std::uint64_t seed =
      block->stationary
          ? util::splitmix64(seed_ ^ 0xABCDEF ^
                             (flow_index * 0x9e3779b97f4a7c15ULL))
          : util::splitmix64(seed_ ^ (flow_index * 0x9e3779b97f4a7c15ULL));
  return FlowTask{block->profile, block->campaign, block->phone,
                  util::Duration::from_seconds(span_s), seed};
}

namespace {

// Per-flow outcome beyond the record itself: the Status and, for flows with
// scripted faults, the portable plan text snapshotted after configure_flow
// (so a quarantined casualty can be re-run from its plans alone).
struct FlowOutcome {
  util::Status status;
  std::string downlink_plan;
  std::string uplink_plan;
};

// Runs one planned flow and reduces it to a record. Returns the flow's
// Status in `*outcome` (never throws past here): exceptions and watchdog
// aborts become per-flow diagnostics for the quarantine list. When
// `capture_out` is non-null, a successful flow's capture is moved there
// (streaming spill path) instead of being discarded with the run.
FlowRecord run_and_analyze(const DatasetSpec& spec, std::uint64_t flow_index,
                           const FlowTask& task, FlowOutcome* outcome,
                           trace::FlowCapture* capture_out = nullptr) {
  FlowRecord rec;
  util::Status* status = &outcome->status;
  try {
    FlowRunConfig cfg;
    cfg.profile = task.profile;
    cfg.duration = task.duration;
    cfg.seed = task.seed;
    cfg.max_sim_events = spec.max_sim_events_per_flow;
    if (spec.configure_flow) spec.configure_flow(flow_index, cfg);
    if (!cfg.downlink_faults.empty()) {
      outcome->downlink_plan = cfg.downlink_faults.to_text();
    }
    if (!cfg.uplink_faults.empty()) {
      outcome->uplink_plan = cfg.uplink_faults.to_text();
    }

    FlowRunResult run = run_flow(cfg);
    if (!run.status.is_ok()) {
      *status = run.status;
      return rec;
    }
    if (spec.observe_flow) spec.observe_flow(flow_index, run);

    rec.provider = radio::provider_name(cfg.profile.provider);
    rec.campaign = task.campaign;
    rec.phone = task.phone;
    rec.high_speed = cfg.profile.mobility == radio::Mobility::kHighSpeed;
    rec.analysis = analysis::analyze_flow(run.capture);
    rec.breakdown = analysis::loss_breakdown(run.capture);
    rec.goodput_pps = run.goodput_pps;
    rec.bytes_captured = run.bytes_captured;
    rec.duration = cfg.duration;
    rec.receiver_window = cfg.profile.receiver_window_segments;
    rec.delayed_ack_b = cfg.delayed_ack_b;
    rec.sim_events = run.sim_events;
    rec.sim_scheduled = run.sim_scheduled;
    rec.sim_tombstones = run.sim_tombstones;
    if (capture_out != nullptr) *capture_out = std::move(run.capture);
    *status = util::Status::ok();
  } catch (const std::exception& e) {
    *status = util::Status::internal(std::string("flow simulation threw: ") + e.what());
  } catch (...) {
    *status = util::Status::internal("flow simulation threw a non-std exception");
  }
  return rec;
}

}  // namespace

util::StatusOr<unsigned> parse_bench_threads(const char* text) {
  const std::string value = text == nullptr ? "" : text;
  unsigned parsed = 0;
  const char* first = value.data();
  const char* last = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, parsed);
  if (value.empty() || ec != std::errc() || ptr != last) {
    return util::Status::invalid_argument(
        "HSR_BENCH_THREADS='" + value + "' is not a plain decimal thread count");
  }
  if (parsed == 0) {
    return util::Status::invalid_argument(
        "HSR_BENCH_THREADS=0 is meaningless (use 1 for sequential, unset for "
        "hardware concurrency)");
  }
  if (parsed > kMaxBenchThreads) {
    return util::Status::invalid_argument(
        "HSR_BENCH_THREADS=" + value + " is absurd (max " +
        std::to_string(kMaxBenchThreads) + ")");
  }
  return parsed;
}

namespace {

// Resolves the worker count, or an error when HSR_BENCH_THREADS is set but
// malformed (the run is rejected rather than silently falling back).
util::StatusOr<unsigned> resolve_dataset_threads(unsigned requested) {
  if (requested == 0) {
    if (const char* env = std::getenv("HSR_BENCH_THREADS")) {
      auto parsed = parse_bench_threads(env);
      if (!parsed.is_ok()) return parsed.status();
      return parsed.value();
    }
  }
  return util::resolve_thread_count(requested);
}

}  // namespace

DatasetResult generate_dataset(const DatasetSpec& spec) {
  // Plan phase: the campaign layout is a pure function of the spec
  // (DatasetPlan), so per-flow tasks are derived on demand in the workers —
  // no O(flows) task vector, and byte-identical to the legacy loop.
  const DatasetPlan plan(spec);
  const std::uint64_t n = plan.flow_count();

  DatasetResult out;
  auto threads = resolve_dataset_threads(spec.threads);
  if (!threads.is_ok()) {
    out.config_status = threads.status();
    return out;
  }

  // Simulate phase (parallel shards): each flow runs its own Simulator with
  // the planned seed and writes its record into a pre-sized slot by index.
  // No shared mutable state between shards, so thread count and scheduling
  // cannot perturb the result; threads == 1 is the plain sequential loop.
  // Workers never throw (run_and_analyze absorbs failures into per-index
  // statuses), so one sick flow cannot abort its siblings mid-flight.
  std::vector<FlowRecord> records(n);
  std::vector<FlowOutcome> outcomes(n);
  util::ThreadPool pool(threads.value());
  pool.parallel_for(n, [&](std::uint64_t i) {
    records[i] = run_and_analyze(spec, i, plan.task(i), &outcomes[i]);
  });

  // Aggregate phase (sequential, in flow order, after the join): compact the
  // healthy flows into the corpus and quarantine the casualties with their
  // diagnostics. Index order makes the result independent of thread count
  // and makes `stats` bitwise-reproducible by the streaming path.
  out.flows.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (outcomes[i].status.is_ok()) {
      const FlowRecord& rec = records[i];
      out.corpus.add(rec.provider, rec.high_speed, rec.analysis);
      out.stats.absorb(analysis::FlowStatsSample::from_flow(
          rec.analysis, rec.breakdown, rec.high_speed, rec.bytes_captured));
      out.flows.push_back(std::move(records[i]));
    } else {
      const FlowTask task = plan.task(i);
      out.stats.absorb_quarantine();
      out.quarantined.push_back(QuarantinedFlow{
          i, radio::provider_name(task.profile.provider), task.campaign,
          std::move(outcomes[i].status), std::move(outcomes[i].downlink_plan),
          std::move(outcomes[i].uplink_plan)});
    }
  }
  return out;
}

namespace {

// What one streaming worker hands to the in-order absorber. Captures are
// already on disk by the time this exists; it is a few hundred bytes.
struct StreamedOutcome {
  bool ok = false;
  analysis::FlowStatsSample sample;  // when ok
  QuarantinedFlow casualty;          // when !ok
  std::uint64_t sim_events = 0;
};

// Applies per-flow outcomes to the CorpusStats in strict flow-index order,
// regardless of completion order. Welford updates are not associative in
// floating point, so in-order absorption is what buys the cross-thread-count
// byte-identity of the stats digest. Out-of-order arrivals wait in `pending_`
// — bounded by scheduling skew (roughly the worker count), not flow count;
// the high-water mark is reported so tests and campaigns can verify that.
class OrderedAbsorber {
 public:
  explicit OrderedAbsorber(StreamingDatasetResult& out) : out_(out) {}

  void submit(std::uint64_t flow_index, StreamedOutcome outcome) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (flow_index != next_) {
      pending_.emplace(flow_index, std::move(outcome));
      peak_ = std::max(peak_, static_cast<std::uint64_t>(pending_.size()));
      return;
    }
    apply(std::move(outcome));
    ++next_;
    while (!pending_.empty() && pending_.begin()->first == next_) {
      apply(std::move(pending_.begin()->second));
      pending_.erase(pending_.begin());
      ++next_;
    }
  }

  std::uint64_t pending_peak() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

 private:
  void apply(StreamedOutcome outcome) {
    if (outcome.ok) {
      out_.stats.absorb(outcome.sample);
    } else {
      out_.stats.absorb_quarantine();
      out_.quarantined.push_back(std::move(outcome.casualty));
    }
    out_.total_sim_events += outcome.sim_events;
  }

  StreamingDatasetResult& out_;
  mutable std::mutex mu_;
  std::uint64_t next_ = 0;
  std::uint64_t peak_ = 0;
  std::map<std::uint64_t, StreamedOutcome> pending_;
};

}  // namespace

StreamingDatasetResult generate_dataset_streaming(
    const DatasetSpec& spec, const StreamingDatasetOptions& options) {
  StreamingDatasetResult out;
  out.corpus_path = options.corpus_path;

  auto threads = resolve_dataset_threads(spec.threads);
  if (!threads.is_ok()) {
    out.config_status = threads.status();
    return out;
  }
  if (options.corpus_path.empty()) {
    out.config_status =
        util::Status::invalid_argument("streaming dataset needs a corpus_path");
    return out;
  }

  const DatasetPlan plan(spec);
  util::ThreadPool pool(threads.value());

  trace::StreamingCorpusWriter writer(trace::StreamingCorpusWriter::Options{
      options.corpus_path, options.spill_dir, pool.thread_count()});
  out.io_status = writer.open();
  if (!out.io_status.is_ok()) return out;

  OrderedAbsorber absorber(out);
  std::mutex io_mu;
  bool io_failed = false;
  const auto record_io_failure = [&](util::Status status) {
    const std::lock_guard<std::mutex> lock(io_mu);
    if (!io_failed) {
      io_failed = true;
      out.io_status = std::move(status);
    }
  };

  // Worker loop: run flow i, reduce to a stats sample, spill the capture to
  // this worker's shard, free it, then hand the sample to the absorber.
  // Peak capture memory is one flow per worker — O(threads), not O(flows).
  pool.parallel_for_worker(plan.flow_count(), [&](unsigned worker, std::uint64_t i) {
    const FlowTask task = plan.task(i);
    FlowOutcome flow_outcome;
    trace::FlowCapture capture;
    FlowRecord rec = run_and_analyze(spec, i, task, &flow_outcome, &capture);

    StreamedOutcome streamed;
    streamed.sim_events = rec.sim_events;
    if (flow_outcome.status.is_ok()) {
      streamed.ok = true;
      streamed.sample = analysis::FlowStatsSample::from_flow(
          rec.analysis, rec.breakdown, rec.high_speed, rec.bytes_captured);
      // Archived frames carry the campaign-wide flow index as their FlowId
      // (run_flow numbers every capture 1, which would be useless in a
      // 100k-flow corpus).
      capture.flow = static_cast<net::FlowId>(i);
      bool skip_io;
      {
        const std::lock_guard<std::mutex> lock(io_mu);
        skip_io = io_failed;
      }
      if (!skip_io) {
        util::Status spilled = writer.spill_flow(worker, i, capture);
        if (!spilled.is_ok()) record_io_failure(std::move(spilled));
      }
      capture = trace::FlowCapture{};  // freed before the next claim
    } else {
      streamed.casualty = QuarantinedFlow{
          i, radio::provider_name(task.profile.provider), task.campaign,
          flow_outcome.status, flow_outcome.downlink_plan, flow_outcome.uplink_plan};
      trace::QuarantineRecord qrec;
      qrec.flow_index = i;
      qrec.provider = streamed.casualty.provider;
      qrec.campaign = streamed.casualty.campaign;
      qrec.status_code = static_cast<std::int32_t>(flow_outcome.status.code());
      qrec.message = flow_outcome.status.message();
      qrec.downlink_plan = flow_outcome.downlink_plan;
      qrec.uplink_plan = flow_outcome.uplink_plan;
      bool skip_io;
      {
        const std::lock_guard<std::mutex> lock(io_mu);
        skip_io = io_failed;
      }
      if (!skip_io) {
        util::Status spilled = writer.spill_quarantine(worker, i, qrec);
        if (!spilled.is_ok()) record_io_failure(std::move(spilled));
      }
    }
    absorber.submit(i, std::move(streamed));
  });

  out.stats_pending_peak = absorber.pending_peak();
  if (!out.io_status.is_ok()) return out;

  auto merged = writer.merge();
  if (!merged.is_ok()) {
    out.io_status = merged.status();
    return out;
  }
  out.flows_completed = merged.value().flows;
  out.corpus_bytes = merged.value().bytes;
  return out;
}

double DatasetResult::total_capture_gb() const {
  double bytes = 0.0;
  for (const auto& f : flows) bytes += static_cast<double>(f.bytes_captured);
  return bytes / 1e9;
}

unsigned DatasetResult::flow_count(const std::string& provider, bool high_speed) const {
  unsigned n = 0;
  for (const auto& f : flows) {
    if (f.provider == provider && f.high_speed == high_speed) ++n;
  }
  return n;
}

std::uint64_t DatasetResult::total_sim_events() const {
  std::uint64_t n = 0;
  for (const auto& f : flows) n += f.sim_events;
  return n;
}

std::uint64_t DatasetResult::total_sim_scheduled() const {
  std::uint64_t n = 0;
  for (const auto& f : flows) n += f.sim_scheduled;
  return n;
}

std::uint64_t DatasetResult::total_sim_tombstones() const {
  std::uint64_t n = 0;
  for (const auto& f : flows) n += f.sim_tombstones;
  return n;
}

}  // namespace hsr::workload
