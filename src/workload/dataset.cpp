#include "workload/dataset.h"

#include <algorithm>
#include <cstdlib>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace hsr::workload {

DatasetSpec DatasetSpec::paper_table1(double scale) {
  scale = std::clamp(scale, 0.01, 1.0);
  const auto scaled = [scale](unsigned n) {
    return std::max(1u, static_cast<unsigned>(n * scale));
  };

  DatasetSpec spec;
  spec.campaigns = {
      {"January 2015", "Samsung Note 3", radio::mobile_lte_highspeed(), scaled(52), 8},
      {"October 2015", "Samsung Note 3", radio::mobile_lte_highspeed(), scaled(73), 24},
      {"October 2015", "Samsung Galaxy S4", radio::unicom_3g_highspeed(), scaled(65), 24},
      {"October 2015", "Samsung Galaxy S4", radio::telecom_3g_highspeed(), scaled(65), 24},
  };
  spec.stationary_flows_per_provider = std::max(3u, scaled(12));
  return spec;
}

namespace {

// One planned flow simulation: everything run_and_analyze needs, derived
// sequentially up front so the parallel phase is pure fan-out.
struct FlowTask {
  radio::ProviderProfile profile;
  std::string campaign;
  std::string phone;
  util::Duration duration;
  std::uint64_t seed = 0;
};

FlowRecord run_and_analyze(const FlowTask& task) {
  FlowRunConfig cfg;
  cfg.profile = task.profile;
  cfg.duration = task.duration;
  cfg.seed = task.seed;

  FlowRunResult run = run_flow(cfg);

  FlowRecord rec;
  rec.provider = radio::provider_name(task.profile.provider);
  rec.campaign = task.campaign;
  rec.phone = task.phone;
  rec.high_speed = task.profile.mobility == radio::Mobility::kHighSpeed;
  rec.analysis = analysis::analyze_flow(run.capture);
  rec.goodput_pps = run.goodput_pps;
  rec.bytes_captured = run.bytes_captured;
  rec.duration = task.duration;
  rec.receiver_window = task.profile.receiver_window_segments;
  rec.delayed_ack_b = cfg.delayed_ack_b;
  rec.sim_events = run.sim_events;
  rec.sim_scheduled = run.sim_scheduled;
  rec.sim_tombstones = run.sim_tombstones;
  return rec;
}

unsigned resolve_dataset_threads(unsigned requested) {
  if (requested == 0) {
    if (const char* env = std::getenv("HSR_BENCH_THREADS")) {
      const unsigned long v = std::strtoul(env, nullptr, 10);
      if (v > 0) return static_cast<unsigned>(v);
    }
  }
  return util::resolve_thread_count(requested);
}

}  // namespace

DatasetResult generate_dataset(const DatasetSpec& spec) {
  // Plan phase (sequential): derive every flow's profile, duration and seed
  // exactly as the legacy sequential loop did. Forked streams depend only on
  // (spec.seed, flow_index), never on execution order.
  std::vector<FlowTask> tasks;
  util::Rng rng(spec.seed);

  std::uint64_t flow_index = 0;
  for (const auto& campaign : spec.campaigns) {
    for (unsigned i = 0; i < campaign.flows; ++i, ++flow_index) {
      util::Rng flow_rng = rng.fork("flow", flow_index);
      const double span_s = flow_rng.uniform(spec.flow_duration_min.to_seconds(),
                                             spec.flow_duration_max.to_seconds());
      tasks.push_back(FlowTask{
          campaign.profile, campaign.campaign, campaign.phone,
          util::Duration::from_seconds(span_s),
          util::splitmix64(spec.seed ^ (flow_index * 0x9e3779b97f4a7c15ULL))});
    }
  }

  // Stationary control corpus: one batch per distinct provider profile.
  std::vector<radio::ProviderProfile> seen;
  for (const auto& campaign : spec.campaigns) {
    const bool dup = std::any_of(seen.begin(), seen.end(), [&](const auto& p) {
      return p.provider == campaign.profile.provider;
    });
    if (dup) continue;
    seen.push_back(campaign.profile);

    const radio::ProviderProfile stat = radio::stationary_of(campaign.profile);
    for (unsigned i = 0; i < spec.stationary_flows_per_provider; ++i, ++flow_index) {
      util::Rng flow_rng = rng.fork("stationary-flow", flow_index);
      const double span_s = flow_rng.uniform(spec.flow_duration_min.to_seconds(),
                                             spec.flow_duration_max.to_seconds());
      tasks.push_back(FlowTask{
          stat, "stationary control", "Samsung Galaxy S4",
          util::Duration::from_seconds(span_s),
          util::splitmix64(spec.seed ^ 0xABCDEF ^ (flow_index * 0x9e3779b97f4a7c15ULL))});
    }
  }

  // Simulate phase (parallel shards): each flow runs its own Simulator with
  // the planned seed and writes its record into a pre-sized slot by index.
  // No shared mutable state between shards, so thread count and scheduling
  // cannot perturb the result; threads == 1 is the plain sequential loop.
  DatasetResult out;
  out.flows.resize(tasks.size());
  util::ThreadPool pool(resolve_dataset_threads(spec.threads));
  pool.parallel_for(tasks.size(), [&](std::uint64_t i) {
    out.flows[i] = run_and_analyze(tasks[i]);
  });

  // Aggregate phase (sequential, in flow order, after the join).
  for (const auto& rec : out.flows) {
    out.corpus.add(rec.provider, rec.high_speed, rec.analysis);
  }
  return out;
}

double DatasetResult::total_capture_gb() const {
  double bytes = 0.0;
  for (const auto& f : flows) bytes += static_cast<double>(f.bytes_captured);
  return bytes / 1e9;
}

unsigned DatasetResult::flow_count(const std::string& provider, bool high_speed) const {
  unsigned n = 0;
  for (const auto& f : flows) {
    if (f.provider == provider && f.high_speed == high_speed) ++n;
  }
  return n;
}

std::uint64_t DatasetResult::total_sim_events() const {
  std::uint64_t n = 0;
  for (const auto& f : flows) n += f.sim_events;
  return n;
}

std::uint64_t DatasetResult::total_sim_scheduled() const {
  std::uint64_t n = 0;
  for (const auto& f : flows) n += f.sim_scheduled;
  return n;
}

std::uint64_t DatasetResult::total_sim_tombstones() const {
  std::uint64_t n = 0;
  for (const auto& f : flows) n += f.sim_tombstones;
  return n;
}

}  // namespace hsr::workload
