#include "workload/dataset.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "trace/corpus_writer.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/manifest.h"

namespace hsr::workload {

DatasetSpec DatasetSpec::paper_table1(double scale) {
  scale = std::clamp(scale, 0.01, 1.0);
  const auto scaled = [scale](unsigned n) {
    return std::max(1u, static_cast<unsigned>(n * scale));
  };

  DatasetSpec spec;
  spec.campaigns = {
      {"January 2015", "Samsung Note 3", radio::mobile_lte_highspeed(), scaled(52), 8},
      {"October 2015", "Samsung Note 3", radio::mobile_lte_highspeed(), scaled(73), 24},
      {"October 2015", "Samsung Galaxy S4", radio::unicom_3g_highspeed(), scaled(65), 24},
      {"October 2015", "Samsung Galaxy S4", radio::telecom_3g_highspeed(), scaled(65), 24},
  };
  spec.stationary_flows_per_provider = std::max(3u, scaled(12));
  return spec;
}

DatasetPlan::DatasetPlan(const DatasetSpec& spec)
    : seed_(spec.seed),
      duration_min_s_(spec.flow_duration_min.to_seconds()),
      duration_max_s_(spec.flow_duration_max.to_seconds()) {
  // Same layout the legacy planning loop produced: campaign blocks in spec
  // order, then one stationary block per distinct provider.
  for (const auto& campaign : spec.campaigns) {
    blocks_.push_back(Block{flow_count_, campaign.flows, campaign.profile,
                            campaign.campaign, campaign.phone, false});
    flow_count_ += campaign.flows;
  }
  std::vector<radio::ProviderProfile> seen;
  for (const auto& campaign : spec.campaigns) {
    const bool dup = std::any_of(seen.begin(), seen.end(), [&](const auto& p) {
      return p.provider == campaign.profile.provider;
    });
    if (dup) continue;
    seen.push_back(campaign.profile);
    blocks_.push_back(Block{flow_count_, spec.stationary_flows_per_provider,
                            radio::stationary_of(campaign.profile),
                            "stationary control", "Samsung Galaxy S4", true});
    flow_count_ += spec.stationary_flows_per_provider;
  }
}

FlowTask DatasetPlan::task(std::uint64_t flow_index) const {
  const Block* block = nullptr;
  for (const auto& b : blocks_) {
    if (flow_index >= b.start && flow_index < b.start + b.count) {
      block = &b;
      break;
    }
  }
  HSR_CHECK_MSG(block != nullptr, "flow index out of plan range");

  // Rng::fork is pure in (seed, label, index), so deriving here on demand
  // yields the exact stream the sequential planning loop drew.
  const util::Rng rng(seed_);
  util::Rng flow_rng =
      rng.fork(block->stationary ? "stationary-flow" : "flow", flow_index);
  const double span_s = flow_rng.uniform(duration_min_s_, duration_max_s_);
  const std::uint64_t seed =
      block->stationary
          ? util::splitmix64(seed_ ^ 0xABCDEF ^
                             (flow_index * 0x9e3779b97f4a7c15ULL))
          : util::splitmix64(seed_ ^ (flow_index * 0x9e3779b97f4a7c15ULL));
  return FlowTask{block->profile, block->campaign, block->phone,
                  util::Duration::from_seconds(span_s), seed};
}

namespace {

// Per-flow outcome beyond the record itself: the Status and, for flows with
// scripted faults, the portable plan text snapshotted after configure_flow
// (so a quarantined casualty can be re-run from its plans alone).
struct FlowOutcome {
  util::Status status;
  std::string downlink_plan;
  std::string uplink_plan;
};

// Runs one planned flow and reduces it to a record. Returns the flow's
// Status in `*outcome` (never throws past here): exceptions and watchdog
// aborts become per-flow diagnostics for the quarantine list. When
// `capture_out` is non-null, a successful flow's capture is moved there
// (streaming spill path) instead of being discarded with the run.
FlowRecord run_and_analyze(const DatasetSpec& spec, std::uint64_t flow_index,
                           const FlowTask& task, FlowOutcome* outcome,
                           trace::FlowCapture* capture_out = nullptr) {
  FlowRecord rec;
  util::Status* status = &outcome->status;
  try {
    FlowRunConfig cfg;
    cfg.profile = task.profile;
    cfg.duration = task.duration;
    cfg.seed = task.seed;
    cfg.max_sim_events = spec.max_sim_events_per_flow;
    if (spec.configure_flow) spec.configure_flow(flow_index, cfg);
    if (!cfg.downlink_faults.empty()) {
      outcome->downlink_plan = cfg.downlink_faults.to_text();
    }
    if (!cfg.uplink_faults.empty()) {
      outcome->uplink_plan = cfg.uplink_faults.to_text();
    }

    FlowRunResult run = run_flow(cfg);
    if (!run.status.is_ok()) {
      *status = run.status;
      return rec;
    }
    if (spec.observe_flow) spec.observe_flow(flow_index, run);

    rec.provider = radio::provider_name(cfg.profile.provider);
    rec.campaign = task.campaign;
    rec.phone = task.phone;
    rec.high_speed = cfg.profile.mobility == radio::Mobility::kHighSpeed;
    rec.analysis = analysis::analyze_flow(run.capture);
    rec.breakdown = analysis::loss_breakdown(run.capture);
    rec.goodput_pps = run.goodput_pps;
    rec.bytes_captured = run.bytes_captured;
    rec.duration = cfg.duration;
    rec.receiver_window = cfg.profile.receiver_window_segments;
    rec.delayed_ack_b = cfg.tcp.delayed_ack_b;
    rec.sim_events = run.sim_events;
    rec.sim_scheduled = run.sim_scheduled;
    rec.sim_tombstones = run.sim_tombstones;
    if (capture_out != nullptr) *capture_out = std::move(run.capture);
    *status = util::Status::ok();
  } catch (const std::exception& e) {
    *status = util::Status::internal(std::string("flow simulation threw: ") + e.what());
  } catch (...) {
    *status = util::Status::internal("flow simulation threw a non-std exception");
  }
  return rec;
}

}  // namespace

util::StatusOr<unsigned> parse_bench_threads(const char* text) {
  const std::string value = text == nullptr ? "" : text;
  unsigned parsed = 0;
  const char* first = value.data();
  const char* last = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, parsed);
  if (value.empty() || ec != std::errc() || ptr != last) {
    return util::Status::invalid_argument(
        "HSR_BENCH_THREADS='" + value + "' is not a plain decimal thread count");
  }
  if (parsed == 0) {
    return util::Status::invalid_argument(
        "HSR_BENCH_THREADS=0 is meaningless (use 1 for sequential, unset for "
        "hardware concurrency)");
  }
  if (parsed > kMaxBenchThreads) {
    return util::Status::invalid_argument(
        "HSR_BENCH_THREADS=" + value + " is absurd (max " +
        std::to_string(kMaxBenchThreads) + ")");
  }
  return parsed;
}

namespace {

// Resolves the worker count, or an error when HSR_BENCH_THREADS is set but
// malformed (the run is rejected rather than silently falling back).
util::StatusOr<unsigned> resolve_dataset_threads(unsigned requested) {
  if (requested == 0) {
    if (const char* env = std::getenv("HSR_BENCH_THREADS")) {
      auto parsed = parse_bench_threads(env);
      if (!parsed.is_ok()) return parsed.status();
      return parsed.value();
    }
  }
  return util::resolve_thread_count(requested);
}

}  // namespace

DatasetResult generate_dataset(const DatasetSpec& spec) {
  // Plan phase: the campaign layout is a pure function of the spec
  // (DatasetPlan), so per-flow tasks are derived on demand in the workers —
  // no O(flows) task vector, and byte-identical to the legacy loop.
  const DatasetPlan plan(spec);
  const std::uint64_t n = plan.flow_count();

  DatasetResult out;
  auto threads = resolve_dataset_threads(spec.threads);
  if (!threads.is_ok()) {
    out.config_status = threads.status();
    return out;
  }

  // Simulate phase (parallel shards): each flow runs its own Simulator with
  // the planned seed and writes its record into a pre-sized slot by index.
  // No shared mutable state between shards, so thread count and scheduling
  // cannot perturb the result; threads == 1 is the plain sequential loop.
  // Workers never throw (run_and_analyze absorbs failures into per-index
  // statuses), so one sick flow cannot abort its siblings mid-flight.
  std::vector<FlowRecord> records(n);
  std::vector<FlowOutcome> outcomes(n);
  util::ThreadPool pool(threads.value());
  pool.parallel_for(n, [&](std::uint64_t i) {
    records[i] = run_and_analyze(spec, i, plan.task(i), &outcomes[i]);
  });

  // Aggregate phase (sequential, in flow order, after the join): compact the
  // healthy flows into the corpus and quarantine the casualties with their
  // diagnostics. Index order makes the result independent of thread count
  // and makes `stats` bitwise-reproducible by the streaming path.
  out.flows.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (outcomes[i].status.is_ok()) {
      const FlowRecord& rec = records[i];
      out.corpus.add(rec.provider, rec.high_speed, rec.analysis);
      out.stats.absorb(analysis::FlowStatsSample::from_flow(
          rec.analysis, rec.breakdown, rec.high_speed, rec.bytes_captured));
      out.flows.push_back(std::move(records[i]));
    } else {
      const FlowTask task = plan.task(i);
      out.stats.absorb_quarantine();
      out.quarantined.push_back(QuarantinedFlow{
          i, radio::provider_name(task.profile.provider), task.campaign,
          std::move(outcomes[i].status), std::move(outcomes[i].downlink_plan),
          std::move(outcomes[i].uplink_plan)});
    }
  }
  return out;
}

namespace {

// Sidecar frame type carried by chunk files next to each 'F' frame: the
// flow's FlowStatsSample plus its simulator event count, in raw IEEE-754
// bit patterns so merge-time absorption reproduces the in-memory stats
// digest BITWISE. Stripped from the merged corpus.
constexpr char kSampleFrame = 'S';

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

struct SampleCursor {
  const std::string& s;
  std::size_t pos = 0;
  bool fail = false;

  std::uint64_t get_u64() {
    if (pos + 8 > s.size()) {
      fail = true;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(s[pos + i])) << (8 * i);
    }
    pos += 8;
    return v;
  }
  double get_f64() {
    const std::uint64_t bits = get_u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::uint8_t get_u8() {
    if (pos >= s.size()) {
      fail = true;
      return 0;
    }
    return static_cast<std::uint8_t>(s[pos++]);
  }
};

void encode_sample_payload(const analysis::FlowStatsSample& sample,
                           std::uint64_t sim_events, std::string& out) {
  out.clear();
  out.push_back(static_cast<char>((sample.high_speed ? 1 : 0) |
                                  (sample.has_timeouts ? 2 : 0)));
  put_f64(out, sample.ack_loss_rate);
  put_f64(out, sample.data_loss_rate);
  put_f64(out, sample.first_tx_loss_rate);
  put_f64(out, sample.recovery_retx_loss_rate);
  put_f64(out, sample.goodput_pps);
  put_u64(out, sample.bytes_captured);
  put_u64(out, sim_events);
  const auto& b = sample.breakdown;
  put_u64(out, b.data_sent);
  put_u64(out, b.data_lost);
  put_u64(out, b.ack_sent);
  put_u64(out, b.ack_lost);
  put_u64(out, b.data_unattributed);
  put_u64(out, b.ack_unattributed);
  put_u64(out, b.scripted_drops);
  put_u64(out, net::kDropCategoryCount);
  for (const std::uint64_t v : b.data_by_category) put_u64(out, v);
  for (const std::uint64_t v : b.ack_by_category) put_u64(out, v);
  put_u64(out, sample.sequences.size());
  for (const auto& seq : sample.sequences) {
    put_f64(out, seq.duration_s);
    out.push_back(static_cast<char>((seq.spurious ? 1 : 0) | (seq.recovered ? 2 : 0)));
  }
}

util::Status decode_sample_payload(const std::string& payload,
                                   analysis::FlowStatsSample* sample,
                                   std::uint64_t* sim_events) {
  SampleCursor c{payload};
  const std::uint8_t flags = c.get_u8();
  sample->high_speed = (flags & 1) != 0;
  sample->has_timeouts = (flags & 2) != 0;
  sample->ack_loss_rate = c.get_f64();
  sample->data_loss_rate = c.get_f64();
  sample->first_tx_loss_rate = c.get_f64();
  sample->recovery_retx_loss_rate = c.get_f64();
  sample->goodput_pps = c.get_f64();
  sample->bytes_captured = c.get_u64();
  *sim_events = c.get_u64();
  auto& b = sample->breakdown;
  b.data_sent = c.get_u64();
  b.data_lost = c.get_u64();
  b.ack_sent = c.get_u64();
  b.ack_lost = c.get_u64();
  b.data_unattributed = c.get_u64();
  b.ack_unattributed = c.get_u64();
  b.scripted_drops = c.get_u64();
  if (c.get_u64() != net::kDropCategoryCount) {
    return util::Status::invalid_argument(
        "stats sample frame has a foreign drop-category count");
  }
  for (auto& v : b.data_by_category) v = c.get_u64();
  for (auto& v : b.ack_by_category) v = c.get_u64();
  const std::uint64_t sequences = c.get_u64();
  if (c.fail || sequences > payload.size()) {  // 9 bytes each; cheap sanity bound
    return util::Status::invalid_argument("truncated stats sample frame");
  }
  sample->sequences.resize(static_cast<std::size_t>(sequences));
  for (auto& seq : sample->sequences) {
    seq.duration_s = c.get_f64();
    const std::uint8_t sflags = c.get_u8();
    seq.spurious = (sflags & 1) != 0;
    seq.recovered = (sflags & 2) != 0;
  }
  if (c.fail || c.pos != payload.size()) {
    return util::Status::invalid_argument("malformed stats sample frame");
  }
  return util::Status::ok();
}

// The configuration fingerprint a resume must match: everything that shapes
// flow content or chunk boundaries. configure_flow/observe_flow hooks are
// not digestible — the caller owns passing identical ones.
std::string canonical_spec_text(const DatasetSpec& spec, std::uint64_t flow_count,
                                std::uint64_t chunk_flows) {
  std::ostringstream os;
  os << "seed=" << spec.seed << " flows=" << flow_count
     << " chunk_flows=" << chunk_flows
     << " stationary=" << spec.stationary_flows_per_provider
     << " dur_s=" << spec.flow_duration_min.to_seconds() << ".."
     << spec.flow_duration_max.to_seconds()
     << " max_events=" << spec.max_sim_events_per_flow;
  for (const auto& c : spec.campaigns) {
    os << " campaign=" << c.campaign << '|' << c.phone << '|'
       << radio::provider_name(c.profile.provider) << '|' << c.flows << '|'
       << c.trips;
  }
  return os.str();
}

std::string chunk_file_path(const std::string& work_dir, std::uint64_t index) {
  return work_dir + "/chunk-" + std::to_string(index) + ".hsrb";
}

}  // namespace

StreamingDatasetResult generate_dataset_streaming(
    const DatasetSpec& spec, const StreamingDatasetOptions& options) {
  StreamingDatasetResult out;
  out.corpus_path = options.corpus_path;

  auto threads = resolve_dataset_threads(spec.threads);
  if (!threads.is_ok()) {
    out.config_status = threads.status();
    return out;
  }
  if (options.corpus_path.empty()) {
    out.config_status =
        util::Status::invalid_argument("streaming dataset needs a corpus_path");
    return out;
  }

  util::Fs& fs = options.fs != nullptr ? *options.fs : util::Fs::real();
  const std::string work_dir =
      options.work_dir.empty() ? options.corpus_path + ".work" : options.work_dir;
  const std::uint64_t chunk_flows = options.chunk_flows == 0
                                        ? StreamingDatasetOptions::kDefaultChunkFlows
                                        : options.chunk_flows;
  const std::string manifest_path = work_dir + "/manifest.hsrman";

  const DatasetPlan plan(spec);
  const std::uint64_t n = plan.flow_count();
  const std::uint64_t chunk_count = (n + chunk_flows - 1) / chunk_flows;
  out.chunks_total = chunk_count;

  CampaignManifest manifest;
  manifest.spec_digest = manifest_digest(canonical_spec_text(spec, n, chunk_flows));
  manifest.total_flows = n;
  manifest.chunk_flows = chunk_flows;

  if (options.resume) {
    // Resume: the manifest is the source of truth for what survived. Every
    // listed chunk is re-verified against its recorded size and CRC before
    // being trusted; anything missing or damaged is simply re-run.
    if (fs.exists(manifest_path)) {
      auto loaded = load_campaign_manifest(manifest_path);
      if (!loaded.is_ok()) {
        out.config_status = util::Status::invalid_argument(
            "resume rejected: " + loaded.status().message());
        return out;
      }
      if (loaded.value().spec_digest != manifest.spec_digest) {
        out.config_status = util::Status::invalid_argument(
            "resume rejected: manifest was written under a different spec/seed/"
            "chunking (digest mismatch)");
        return out;
      }
      for (const ChunkEntry& entry : loaded.value().chunks) {
        if (entry.index >= chunk_count ||
            entry.first_flow != entry.index * chunk_flows ||
            entry.flow_count != std::min(chunk_flows, n - entry.first_flow)) {
          continue;  // foreign range: re-run it
        }
        const std::string path = chunk_file_path(work_dir, entry.index);
        auto size = fs.file_size(path);
        if (!size.is_ok() || size.value() != entry.bytes) continue;
        auto crc = trace::crc32c_of_file(path);
        if (!crc.is_ok() || crc.value() != entry.crc32c) continue;
        manifest.chunks.push_back(entry);
      }
      out.chunks_reused = manifest.chunks.size();
    }
  } else {
    // Fresh run: any previous work state is stale by definition.
    util::Status wiped = fs.remove_all(work_dir);
    if (!wiped.is_ok()) {
      out.io_status = std::move(wiped);
      return out;
    }
  }

  out.io_status = util::retry_transient([&] { return fs.create_directories(work_dir); });
  if (!out.io_status.is_ok()) return out;
  out.io_status = save_campaign_manifest(fs, manifest_path, manifest);
  if (!out.io_status.is_ok()) return out;

  std::vector<std::uint64_t> pending;
  pending.reserve(static_cast<std::size_t>(chunk_count - manifest.chunks.size()));
  for (std::uint64_t ci = 0; ci < chunk_count; ++ci) {
    if (!manifest.has_chunk(ci)) pending.push_back(ci);
  }

  std::mutex io_mu;
  bool io_failed = false;
  const auto record_io_failure = [&](util::Status status) {
    const std::lock_guard<std::mutex> lock(io_mu);
    if (!io_failed) {
      io_failed = true;
      out.io_status = std::move(status);
    }
  };
  std::mutex manifest_mu;

  // Worker loop: one CLAIM is one chunk. The worker simulates the chunk's
  // flows in index order, appending each 'F' capture (freed immediately)
  // plus its 'S' stats sidecar — or a 'Q' record — then commits the chunk
  // atomically and checkpoints the manifest. A chunk's bytes are a pure
  // function of (spec, chunk index): thread count only decides who runs it.
  util::ThreadPool pool(threads.value());
  pool.parallel_for(pending.size(), [&](std::uint64_t pi) {
    {
      const std::lock_guard<std::mutex> lock(io_mu);
      if (io_failed) return;  // disk is sick; stop claiming work
    }
    const std::uint64_t ci = pending[pi];
    const std::uint64_t first = ci * chunk_flows;
    const std::uint64_t count = std::min(chunk_flows, n - first);

    trace::ChunkFileWriter writer(fs, chunk_file_path(work_dir, ci));
    util::Status status = writer.open();
    std::string sidecar;
    for (std::uint64_t i = first; status.is_ok() && i < first + count; ++i) {
      const FlowTask task = plan.task(i);
      FlowOutcome flow_outcome;
      trace::FlowCapture capture;
      FlowRecord rec = run_and_analyze(spec, i, task, &flow_outcome, &capture);
      if (flow_outcome.status.is_ok()) {
        // Archived frames carry the campaign-wide flow index as their FlowId
        // (run_flow numbers every capture 1, which would be useless in a
        // 100k-flow corpus).
        capture.flow = static_cast<net::FlowId>(i);
        status = writer.append_flow(capture);
        capture = trace::FlowCapture{};  // freed before the next flow
        if (status.is_ok()) {
          encode_sample_payload(
              analysis::FlowStatsSample::from_flow(rec.analysis, rec.breakdown,
                                                   rec.high_speed,
                                                   rec.bytes_captured),
              rec.sim_events, sidecar);
          status = writer.append_raw(kSampleFrame, sidecar);
        }
      } else {
        trace::QuarantineRecord qrec;
        qrec.flow_index = i;
        qrec.provider = radio::provider_name(task.profile.provider);
        qrec.campaign = task.campaign;
        qrec.status_code = static_cast<std::int32_t>(flow_outcome.status.code());
        qrec.message = flow_outcome.status.message();
        qrec.downlink_plan = flow_outcome.downlink_plan;
        qrec.uplink_plan = flow_outcome.uplink_plan;
        status = writer.append_quarantine(qrec);
      }
    }
    if (!status.is_ok()) {
      writer.abandon();
      record_io_failure(std::move(status));
      return;
    }
    auto info = writer.commit();
    if (!info.is_ok()) {
      writer.abandon();
      record_io_failure(info.status());
      return;
    }
    // Checkpoint: the committed chunk becomes durable resume state the
    // moment the manifest rewrite lands.
    const std::lock_guard<std::mutex> lock(manifest_mu);
    manifest.chunks.push_back(ChunkEntry{ci, first, count, info.value().flows,
                                         info.value().quarantines,
                                         info.value().bytes,
                                         info.value().crc32c});
    util::Status saved = save_campaign_manifest(fs, manifest_path, manifest);
    if (!saved.is_ok()) record_io_failure(std::move(saved));
  });

  if (!out.io_status.is_ok()) return out;  // chunks + manifest left for resume

  std::sort(manifest.chunks.begin(), manifest.chunks.end(),
            [](const ChunkEntry& a, const ChunkEntry& b) { return a.index < b.index; });
  std::vector<std::string> chunk_paths;
  chunk_paths.reserve(manifest.chunks.size());
  std::uint64_t total_flow_frames = 0;
  for (const ChunkEntry& entry : manifest.chunks) {
    chunk_paths.push_back(chunk_file_path(work_dir, entry.index));
    total_flow_frames += entry.flows;
  }

  // Merge phase: chunks concatenate in index order, so the sidecar/quarantine
  // frames stream past this hook in strict flow order — exactly the absorb
  // sequence the in-memory path performs, whichever run produced each chunk.
  const auto absorb_frame = [&](char type, const std::string& payload) -> util::Status {
    if (type == kSampleFrame) {
      analysis::FlowStatsSample sample;
      std::uint64_t sim_events = 0;
      util::Status status = decode_sample_payload(payload, &sample, &sim_events);
      if (!status.is_ok()) return status;
      out.stats.absorb(sample);
      out.total_sim_events += sim_events;
    } else if (type == 'Q') {
      trace::QuarantineRecord qrec;
      util::Status status = trace::decode_quarantine_frame_payload(payload, &qrec);
      if (!status.is_ok()) return status;
      out.stats.absorb_quarantine();
      out.quarantined.push_back(QuarantinedFlow{
          qrec.flow_index, qrec.provider, qrec.campaign,
          util::Status(static_cast<util::StatusCode>(qrec.status_code), qrec.message),
          qrec.downlink_plan, qrec.uplink_plan});
    }
    return util::Status::ok();
  };

  auto merged = trace::merge_corpus_chunks(fs, chunk_paths, options.corpus_path,
                                           total_flow_frames, absorb_frame);
  if (!merged.is_ok()) {
    // Partial absorption is garbage; the chunks and manifest remain valid
    // resume state, so a retry redoes only the merge.
    out.stats = analysis::CorpusStats{};
    out.quarantined.clear();
    out.total_sim_events = 0;
    out.io_status = merged.status();
    return out;
  }
  out.flows_completed = merged.value().flows;
  out.corpus_bytes = merged.value().bytes;
  // The corpus is durable; the work state is now redundant (best-effort).
  (void)fs.remove_all(work_dir);
  return out;
}

double DatasetResult::total_capture_gb() const {
  double bytes = 0.0;
  for (const auto& f : flows) bytes += static_cast<double>(f.bytes_captured);
  return bytes / 1e9;
}

unsigned DatasetResult::flow_count(const std::string& provider, bool high_speed) const {
  unsigned n = 0;
  for (const auto& f : flows) {
    if (f.provider == provider && f.high_speed == high_speed) ++n;
  }
  return n;
}

std::uint64_t DatasetResult::total_sim_events() const {
  std::uint64_t n = 0;
  for (const auto& f : flows) n += f.sim_events;
  return n;
}

std::uint64_t DatasetResult::total_sim_scheduled() const {
  std::uint64_t n = 0;
  for (const auto& f : flows) n += f.sim_scheduled;
  return n;
}

std::uint64_t DatasetResult::total_sim_tombstones() const {
  std::uint64_t n = 0;
  for (const auto& f : flows) n += f.sim_tombstones;
  return n;
}

}  // namespace hsr::workload
