#include "workload/dataset.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <exception>
#include <string>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace hsr::workload {

DatasetSpec DatasetSpec::paper_table1(double scale) {
  scale = std::clamp(scale, 0.01, 1.0);
  const auto scaled = [scale](unsigned n) {
    return std::max(1u, static_cast<unsigned>(n * scale));
  };

  DatasetSpec spec;
  spec.campaigns = {
      {"January 2015", "Samsung Note 3", radio::mobile_lte_highspeed(), scaled(52), 8},
      {"October 2015", "Samsung Note 3", radio::mobile_lte_highspeed(), scaled(73), 24},
      {"October 2015", "Samsung Galaxy S4", radio::unicom_3g_highspeed(), scaled(65), 24},
      {"October 2015", "Samsung Galaxy S4", radio::telecom_3g_highspeed(), scaled(65), 24},
  };
  spec.stationary_flows_per_provider = std::max(3u, scaled(12));
  return spec;
}

namespace {

// One planned flow simulation: everything run_and_analyze needs, derived
// sequentially up front so the parallel phase is pure fan-out.
struct FlowTask {
  radio::ProviderProfile profile;
  std::string campaign;
  std::string phone;
  util::Duration duration;
  std::uint64_t seed = 0;
};

// Per-flow outcome beyond the record itself: the Status and, for flows with
// scripted faults, the portable plan text snapshotted after configure_flow
// (so a quarantined casualty can be re-run from its plans alone).
struct FlowOutcome {
  util::Status status;
  std::string downlink_plan;
  std::string uplink_plan;
};

// Runs one planned flow and reduces it to a record. Returns the flow's
// Status in `*outcome` (never throws past here): exceptions and watchdog
// aborts become per-flow diagnostics for the quarantine list.
FlowRecord run_and_analyze(const DatasetSpec& spec, std::uint64_t flow_index,
                           const FlowTask& task, FlowOutcome* outcome) {
  FlowRecord rec;
  util::Status* status = &outcome->status;
  try {
    FlowRunConfig cfg;
    cfg.profile = task.profile;
    cfg.duration = task.duration;
    cfg.seed = task.seed;
    cfg.max_sim_events = spec.max_sim_events_per_flow;
    if (spec.configure_flow) spec.configure_flow(flow_index, cfg);
    if (!cfg.downlink_faults.empty()) {
      outcome->downlink_plan = cfg.downlink_faults.to_text();
    }
    if (!cfg.uplink_faults.empty()) {
      outcome->uplink_plan = cfg.uplink_faults.to_text();
    }

    FlowRunResult run = run_flow(cfg);
    if (!run.status.is_ok()) {
      *status = run.status;
      return rec;
    }
    if (spec.observe_flow) spec.observe_flow(flow_index, run);

    rec.provider = radio::provider_name(cfg.profile.provider);
    rec.campaign = task.campaign;
    rec.phone = task.phone;
    rec.high_speed = cfg.profile.mobility == radio::Mobility::kHighSpeed;
    rec.analysis = analysis::analyze_flow(run.capture);
    rec.goodput_pps = run.goodput_pps;
    rec.bytes_captured = run.bytes_captured;
    rec.duration = cfg.duration;
    rec.receiver_window = cfg.profile.receiver_window_segments;
    rec.delayed_ack_b = cfg.delayed_ack_b;
    rec.sim_events = run.sim_events;
    rec.sim_scheduled = run.sim_scheduled;
    rec.sim_tombstones = run.sim_tombstones;
    *status = util::Status::ok();
  } catch (const std::exception& e) {
    *status = util::Status::internal(std::string("flow simulation threw: ") + e.what());
  } catch (...) {
    *status = util::Status::internal("flow simulation threw a non-std exception");
  }
  return rec;
}

}  // namespace

util::StatusOr<unsigned> parse_bench_threads(const char* text) {
  const std::string value = text == nullptr ? "" : text;
  unsigned parsed = 0;
  const char* first = value.data();
  const char* last = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, parsed);
  if (value.empty() || ec != std::errc() || ptr != last) {
    return util::Status::invalid_argument(
        "HSR_BENCH_THREADS='" + value + "' is not a plain decimal thread count");
  }
  if (parsed == 0) {
    return util::Status::invalid_argument(
        "HSR_BENCH_THREADS=0 is meaningless (use 1 for sequential, unset for "
        "hardware concurrency)");
  }
  if (parsed > kMaxBenchThreads) {
    return util::Status::invalid_argument(
        "HSR_BENCH_THREADS=" + value + " is absurd (max " +
        std::to_string(kMaxBenchThreads) + ")");
  }
  return parsed;
}

namespace {

// Resolves the worker count, or an error when HSR_BENCH_THREADS is set but
// malformed (the run is rejected rather than silently falling back).
util::StatusOr<unsigned> resolve_dataset_threads(unsigned requested) {
  if (requested == 0) {
    if (const char* env = std::getenv("HSR_BENCH_THREADS")) {
      auto parsed = parse_bench_threads(env);
      if (!parsed.is_ok()) return parsed.status();
      return parsed.value();
    }
  }
  return util::resolve_thread_count(requested);
}

}  // namespace

DatasetResult generate_dataset(const DatasetSpec& spec) {
  // Plan phase (sequential): derive every flow's profile, duration and seed
  // exactly as the legacy sequential loop did. Forked streams depend only on
  // (spec.seed, flow_index), never on execution order.
  std::vector<FlowTask> tasks;
  util::Rng rng(spec.seed);

  std::uint64_t flow_index = 0;
  for (const auto& campaign : spec.campaigns) {
    for (unsigned i = 0; i < campaign.flows; ++i, ++flow_index) {
      util::Rng flow_rng = rng.fork("flow", flow_index);
      const double span_s = flow_rng.uniform(spec.flow_duration_min.to_seconds(),
                                             spec.flow_duration_max.to_seconds());
      tasks.push_back(FlowTask{
          campaign.profile, campaign.campaign, campaign.phone,
          util::Duration::from_seconds(span_s),
          util::splitmix64(spec.seed ^ (flow_index * 0x9e3779b97f4a7c15ULL))});
    }
  }

  // Stationary control corpus: one batch per distinct provider profile.
  std::vector<radio::ProviderProfile> seen;
  for (const auto& campaign : spec.campaigns) {
    const bool dup = std::any_of(seen.begin(), seen.end(), [&](const auto& p) {
      return p.provider == campaign.profile.provider;
    });
    if (dup) continue;
    seen.push_back(campaign.profile);

    const radio::ProviderProfile stat = radio::stationary_of(campaign.profile);
    for (unsigned i = 0; i < spec.stationary_flows_per_provider; ++i, ++flow_index) {
      util::Rng flow_rng = rng.fork("stationary-flow", flow_index);
      const double span_s = flow_rng.uniform(spec.flow_duration_min.to_seconds(),
                                             spec.flow_duration_max.to_seconds());
      tasks.push_back(FlowTask{
          stat, "stationary control", "Samsung Galaxy S4",
          util::Duration::from_seconds(span_s),
          util::splitmix64(spec.seed ^ 0xABCDEF ^ (flow_index * 0x9e3779b97f4a7c15ULL))});
    }
  }

  DatasetResult out;
  auto threads = resolve_dataset_threads(spec.threads);
  if (!threads.is_ok()) {
    out.config_status = threads.status();
    return out;
  }

  // Simulate phase (parallel shards): each flow runs its own Simulator with
  // the planned seed and writes its record into a pre-sized slot by index.
  // No shared mutable state between shards, so thread count and scheduling
  // cannot perturb the result; threads == 1 is the plain sequential loop.
  // Workers never throw (run_and_analyze absorbs failures into per-index
  // statuses), so one sick flow cannot abort its siblings mid-flight.
  std::vector<FlowRecord> records(tasks.size());
  std::vector<FlowOutcome> outcomes(tasks.size());
  util::ThreadPool pool(threads.value());
  pool.parallel_for(tasks.size(), [&](std::uint64_t i) {
    records[i] = run_and_analyze(spec, i, tasks[i], &outcomes[i]);
  });

  // Aggregate phase (sequential, in flow order, after the join): compact the
  // healthy flows into the corpus and quarantine the casualties with their
  // diagnostics. Index order makes the result independent of thread count.
  out.flows.reserve(tasks.size());
  for (std::uint64_t i = 0; i < tasks.size(); ++i) {
    if (outcomes[i].status.is_ok()) {
      out.corpus.add(records[i].provider, records[i].high_speed, records[i].analysis);
      out.flows.push_back(std::move(records[i]));
    } else {
      out.quarantined.push_back(QuarantinedFlow{
          i, radio::provider_name(tasks[i].profile.provider), tasks[i].campaign,
          std::move(outcomes[i].status), std::move(outcomes[i].downlink_plan),
          std::move(outcomes[i].uplink_plan)});
    }
  }
  return out;
}

double DatasetResult::total_capture_gb() const {
  double bytes = 0.0;
  for (const auto& f : flows) bytes += static_cast<double>(f.bytes_captured);
  return bytes / 1e9;
}

unsigned DatasetResult::flow_count(const std::string& provider, bool high_speed) const {
  unsigned n = 0;
  for (const auto& f : flows) {
    if (f.provider == provider && f.high_speed == high_speed) ++n;
  }
  return n;
}

std::uint64_t DatasetResult::total_sim_events() const {
  std::uint64_t n = 0;
  for (const auto& f : flows) n += f.sim_events;
  return n;
}

std::uint64_t DatasetResult::total_sim_scheduled() const {
  std::uint64_t n = 0;
  for (const auto& f : flows) n += f.sim_scheduled;
  return n;
}

std::uint64_t DatasetResult::total_sim_tombstones() const {
  std::uint64_t n = 0;
  for (const auto& f : flows) n += f.sim_tombstones;
  return n;
}

}  // namespace hsr::workload
