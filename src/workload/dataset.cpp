#include "workload/dataset.h"

#include <algorithm>

#include "util/rng.h"

namespace hsr::workload {

DatasetSpec DatasetSpec::paper_table1(double scale) {
  scale = std::clamp(scale, 0.01, 1.0);
  const auto scaled = [scale](unsigned n) {
    return std::max(1u, static_cast<unsigned>(n * scale));
  };

  DatasetSpec spec;
  spec.campaigns = {
      {"January 2015", "Samsung Note 3", radio::mobile_lte_highspeed(), scaled(52), 8},
      {"October 2015", "Samsung Note 3", radio::mobile_lte_highspeed(), scaled(73), 24},
      {"October 2015", "Samsung Galaxy S4", radio::unicom_3g_highspeed(), scaled(65), 24},
      {"October 2015", "Samsung Galaxy S4", radio::telecom_3g_highspeed(), scaled(65), 24},
  };
  spec.stationary_flows_per_provider = std::max(3u, scaled(12));
  return spec;
}

namespace {

FlowRecord run_and_analyze(const radio::ProviderProfile& profile,
                           const std::string& campaign, const std::string& phone,
                           util::Duration duration, std::uint64_t seed) {
  FlowRunConfig cfg;
  cfg.profile = profile;
  cfg.duration = duration;
  cfg.seed = seed;

  FlowRunResult run = run_flow(cfg);

  FlowRecord rec;
  rec.provider = radio::provider_name(profile.provider);
  rec.campaign = campaign;
  rec.phone = phone;
  rec.high_speed = profile.mobility == radio::Mobility::kHighSpeed;
  rec.analysis = analysis::analyze_flow(run.capture);
  rec.goodput_pps = run.goodput_pps;
  rec.bytes_captured = run.bytes_captured;
  rec.duration = duration;
  rec.receiver_window = profile.receiver_window_segments;
  rec.delayed_ack_b = cfg.delayed_ack_b;
  return rec;
}

}  // namespace

DatasetResult generate_dataset(const DatasetSpec& spec) {
  DatasetResult out;
  util::Rng rng(spec.seed);

  std::uint64_t flow_index = 0;
  for (const auto& campaign : spec.campaigns) {
    for (unsigned i = 0; i < campaign.flows; ++i, ++flow_index) {
      util::Rng flow_rng = rng.fork("flow", flow_index);
      const double span_s = flow_rng.uniform(spec.flow_duration_min.to_seconds(),
                                             spec.flow_duration_max.to_seconds());
      FlowRecord rec = run_and_analyze(
          campaign.profile, campaign.campaign, campaign.phone,
          util::Duration::from_seconds(span_s),
          util::splitmix64(spec.seed ^ (flow_index * 0x9e3779b97f4a7c15ULL)));
      out.corpus.add(rec.provider, rec.high_speed, rec.analysis);
      out.flows.push_back(std::move(rec));
    }
  }

  // Stationary control corpus: one batch per distinct provider profile.
  std::vector<radio::ProviderProfile> seen;
  for (const auto& campaign : spec.campaigns) {
    const bool dup = std::any_of(seen.begin(), seen.end(), [&](const auto& p) {
      return p.provider == campaign.profile.provider;
    });
    if (dup) continue;
    seen.push_back(campaign.profile);

    const radio::ProviderProfile stat = radio::stationary_of(campaign.profile);
    for (unsigned i = 0; i < spec.stationary_flows_per_provider; ++i, ++flow_index) {
      util::Rng flow_rng = rng.fork("stationary-flow", flow_index);
      const double span_s = flow_rng.uniform(spec.flow_duration_min.to_seconds(),
                                             spec.flow_duration_max.to_seconds());
      FlowRecord rec = run_and_analyze(
          stat, "stationary control", "Samsung Galaxy S4",
          util::Duration::from_seconds(span_s),
          util::splitmix64(spec.seed ^ 0xABCDEF ^ (flow_index * 0x9e3779b97f4a7c15ULL)));
      out.corpus.add(rec.provider, rec.high_speed, rec.analysis);
      out.flows.push_back(std::move(rec));
    }
  }
  return out;
}

double DatasetResult::total_capture_gb() const {
  double bytes = 0.0;
  for (const auto& f : flows) bytes += static_cast<double>(f.bytes_captured);
  return bytes / 1e9;
}

unsigned DatasetResult::flow_count(const std::string& provider, bool high_speed) const {
  unsigned n = 0;
  for (const auto& f : flows) {
    if (f.provider == provider && f.high_speed == high_speed) ++n;
  }
  return n;
}

}  // namespace hsr::workload
