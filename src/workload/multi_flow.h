// Shared-bottleneck multi-flow scenarios: N concurrent TCP senders pushing
// through ONE bottleneck link pair — the cell every passenger's flow shares.
// One real DropTail queue multiplexes all flows (net::Link's demuxed
// endpoint registry), each flow keeps its own TCP state, its own capture,
// its own "access stub" channel (private radio randomness and scripted
// faults, via net::FlowDemuxChannel), and its own per-flow LinkStats
// breakdown of the shared queue — so fairness and queue-overflow
// attribution are measurable per flow.
//
// run_flow (scenario.h) is a thin adapter over this path at N=1: flow 0
// uses the exact legacy seeding ("radio"/"chan-down"/"chan-up" forks), so
// single-flow captures are byte-identical to the pre-multi-flow output.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "net/link.h"
#include "radio/profiles.h"
#include "tcp/types.h"
#include "trace/capture.h"
#include "util/status.h"
#include "util/time.h"

namespace hsr::workload {

using util::Duration;
using util::TimePoint;

// Per-sender knobs of one flow in a shared-bottleneck scenario.
struct MultiFlowSenderSpec {
  // Protocol knobs — the same shared struct FlowRunConfig carries.
  tcp::TcpOptions tcp;
  // When this sender starts relative to t=0 (staggered arrivals). Flows
  // starting at zero begin synchronously, exactly like run_flow.
  Duration start_offset = Duration::zero();
  // Scripted faults on this flow's OWN access stub (not the shared queue).
  fault::FaultPlan downlink_faults;  // data direction
  fault::FaultPlan uplink_faults;    // ACK direction
};

struct MultiFlowSpec {
  radio::ProviderProfile profile;
  // Number of concurrent senders when `senders` is empty (all defaults);
  // otherwise senders.size() rules.
  unsigned flows = 2;
  Duration duration = Duration::seconds(60);
  std::uint64_t seed = 1;
  // Default stagger when `senders` is empty: flow i starts at i * stagger.
  // With explicit `senders`, each spec's start_offset is used as given.
  Duration start_stagger = Duration::zero();
  // Protocol knobs shared by all default-built senders.
  tcp::TcpOptions tcp;
  // Per-flow overrides; empty = `flows` identical senders.
  std::vector<MultiFlowSenderSpec> senders;
  // Watchdog: abort once the simulator executed this many events; 0 = off.
  std::uint64_t max_sim_events = 0;

  // Steady-state allocation probe: when probe_end > probe_begin, the heap
  // allocations (util::AllocProbe news) and simulator events executed
  // inside [probe_begin, probe_end] are reported in
  // MultiFlowResult::steady_allocs / steady_events. The probe counters only
  // tick in binaries that install the counting allocator
  // (HSRTCP_ALLOC_PROBE_DEFINE_GLOBALS — the alloc tests and
  // bench_hotpath); elsewhere steady_allocs reads 0 and only steady_events
  // is meaningful. The two probe events do not touch captures, so enabling
  // the window never perturbs the recorded bytes.
  TimePoint probe_begin = TimePoint::zero();
  TimePoint probe_end = TimePoint::zero();

  unsigned flow_count() const {
    return senders.empty() ? flows : static_cast<unsigned>(senders.size());
  }
  // The fully-resolved spec of flow i (defaults + stagger applied).
  MultiFlowSenderSpec resolved_sender(unsigned i) const;
};

// Ground truth and accounting of one flow in a finished scenario. The
// capture itself lives in MultiFlowResult::captures (same index) so the
// capture set can be serialized or analyzed as one contiguous archive.
struct MultiFlowFlowResult {
  net::FlowId flow = 0;  // wire id (1-based, == index + 1)
  Duration start_offset;
  tcp::SenderStats sender_stats;
  tcp::ReceiverStats receiver_stats;
  std::vector<tcp::SenderEvent> events;
  std::vector<std::pair<TimePoint, double>> cwnd_trace;
  std::vector<TimePoint> delivery_times;
  double goodput_pps = 0.0;
  double goodput_bps = 0.0;
  std::uint64_t bytes_captured = 0;
  std::uint64_t faults_injected = 0;
  // This flow's share of the shared bottleneck (drops per cause included).
  net::LinkStats downlink_stats;
  net::LinkStats uplink_stats;
};

struct MultiFlowResult {
  // OK for a completed run; kResourceExhausted on a watchdog abort (partial
  // results below are still populated).
  util::Status status;
  std::vector<MultiFlowFlowResult> flows;
  // Per-flow captures, parallel to `flows` (captures[i].flow == i + 1).
  std::vector<trace::FlowCapture> captures;
  // Aggregate stats of the shared links (sum over flows by construction).
  net::LinkStats downlink_aggregate;
  net::LinkStats uplink_aggregate;
  Duration duration;
  std::uint64_t handoffs = 0;
  std::uint64_t sim_events = 0;
  std::uint64_t sim_scheduled = 0;
  std::uint64_t sim_tombstones = 0;
  // Deltas over the spec's [probe_begin, probe_end] window (zero when the
  // probe is disabled): heap allocations observed by util::AllocProbe and
  // events the simulator executed. The zero-allocs-per-event gates divide
  // these two.
  std::uint64_t steady_allocs = 0;
  std::uint64_t steady_events = 0;
};

// Runs the scenario: one Simulator, one RadioEnvironment (all flows ride the
// same train — handoffs and coverage gaps hit everyone together), one
// bottleneck link pair, N sender/receiver stacks. Deterministic: the result
// is a pure function of the spec.
MultiFlowResult run_multi_flow(const MultiFlowSpec& spec);

// --- Fairness sweeps (Jain-vs-N corpora) -----------------------------------

// One scenario per entry of flow_counts, sharded across a thread pool.
// Scenario s runs flow_counts[s] flows at seed base_seed + s * seed_stride.
// Results land in pre-sized slots, so the output — and any corpus written
// from it — is byte-identical for EVERY thread count.
struct MultiFlowSweepSpec {
  radio::ProviderProfile profile;
  std::vector<unsigned> flow_counts;  // e.g. {2, 4, 8, 16}
  Duration duration = Duration::seconds(30);
  std::uint64_t base_seed = 1;
  std::uint64_t seed_stride = 101;
  Duration start_stagger = Duration::zero();
  tcp::TcpOptions tcp;
  // Optional scripted handoff burst: a downlink blackout hitting every
  // flow's access stub over [burst_begin, burst_end). Equal bounds = none.
  TimePoint burst_begin = TimePoint::zero();
  TimePoint burst_end = TimePoint::zero();
  std::uint64_t max_sim_events = 0;
  // Worker threads (0 = all hardware threads); does not affect the bytes.
  unsigned threads = 0;

  // The spec of scenario s — exposed so single scenarios can be reproduced.
  MultiFlowSpec scenario(std::size_t s) const;
};

std::vector<MultiFlowResult> run_multi_flow_sweep(const MultiFlowSweepSpec& spec);

// Flattens the sweep's captures in scenario order (scenario boundaries are
// recoverable: each scenario restarts flow ids at 1), ready for
// trace::save_capture_archive.
std::vector<trace::FlowCapture> sweep_captures(std::vector<MultiFlowResult>&& results);

}  // namespace hsr::workload
