// Dataset generation mirroring Table I of the paper: two measurement
// campaigns (January and October 2015) on the Beijing-Tianjin Intercity
// Railway, three providers, 255 flows, 40.47 GB of captures — plus a
// stationary control corpus for the §III comparisons.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/corpus.h"
#include "analysis/corpus_stats.h"
#include "radio/profiles.h"
#include "util/fs.h"
#include "util/status.h"
#include "workload/scenario.h"

namespace hsr::workload {

struct CampaignSpec {
  std::string campaign;        // "January 2015" / "October 2015"
  std::string phone;           // "Samsung Note 3" / "Samsung Galaxy S4"
  radio::ProviderProfile profile;
  unsigned flows = 0;
  unsigned trips = 0;
};

struct DatasetSpec {
  std::vector<CampaignSpec> campaigns;
  // Stationary control flows generated per provider.
  unsigned stationary_flows_per_provider = 12;
  // Per-flow duration is uniform in [min, max].
  // The paper's flows span minutes (40.47 GB over 255 flows); minute-scale
  // durations also give each flow enough timeout samples for stable
  // parameter estimates.
  util::Duration flow_duration_min = util::Duration::seconds(180);
  util::Duration flow_duration_max = util::Duration::seconds(300);
  std::uint64_t seed = 2015;
  // Worker threads for flow simulation. 0 = the HSR_BENCH_THREADS env knob
  // if set, else std::thread::hardware_concurrency(); 1 = fully sequential
  // (the legacy single-threaded path). Every flow is an independent,
  // fork-seeded simulation whose record lands in a pre-sized slot, so the
  // result is byte-identical for ANY thread count (enforced by tests).
  // A malformed HSR_BENCH_THREADS value REJECTS the run: generate_dataset
  // returns immediately with config_status set and zero flows.
  unsigned threads = 0;

  // Per-flow watchdog: a flow whose simulator executes more events than this
  // is aborted with a diagnostic Status and quarantined instead of spinning
  // the whole campaign forever. 0 = unlimited. The default is ~2 orders of
  // magnitude above what a paper-scale flow needs (see ROADMAP tunables).
  std::uint64_t max_sim_events_per_flow = kDefaultFlowEventBudget;
  static constexpr std::uint64_t kDefaultFlowEventBudget = 200'000'000;

  // Test/experiment hook: invoked in the worker before each flow runs, with
  // the flow's planned index and its fully derived config — mutate it to
  // inject fault plans, swap profiles, or shrink budgets per flow. MUST be
  // safe to call concurrently for distinct indices and deterministic in
  // (index, cfg) for the byte-identical-corpus contract to hold.
  std::function<void(std::uint64_t flow_index, FlowRunConfig& cfg)> configure_flow;
  // Observation hook: invoked in the worker with each SUCCESSFUL flow's full
  // result (captures included) before it is reduced to a FlowRecord. Same
  // concurrency/determinism contract as configure_flow.
  std::function<void(std::uint64_t flow_index, const FlowRunResult& run)> observe_flow;

  // Table I of the paper. `scale` in (0, 1] shrinks the flow counts
  // proportionally (floor, at least 1 per campaign) for quick runs.
  static DatasetSpec paper_table1(double scale = 1.0);
};

// One planned flow simulation: everything the worker needs to run flow
// `flow_index`, derived purely from (spec, flow_index).
struct FlowTask {
  radio::ProviderProfile profile;
  std::string campaign;
  std::string phone;
  util::Duration duration;
  std::uint64_t seed = 0;
};

// The campaign layout as a pure function of the spec: task(i) derives flow
// i's profile, duration and seed on demand, in O(campaigns + providers)
// memory — nothing is stored per flow, which is what lets a 10^6-flow
// campaign plan itself without a 10^6-element task vector. Derivation is
// identical to the legacy sequential planning loop (same fork labels, same
// seed mixing), so corpora are byte-for-byte unchanged.
class DatasetPlan {
 public:
  explicit DatasetPlan(const DatasetSpec& spec);

  std::uint64_t flow_count() const { return flow_count_; }
  // Pure in (spec, flow_index): callable concurrently, any order.
  FlowTask task(std::uint64_t flow_index) const;

 private:
  struct Block {
    std::uint64_t start = 0;
    std::uint64_t count = 0;
    radio::ProviderProfile profile;
    std::string campaign;
    std::string phone;
    bool stationary = false;
  };
  std::vector<Block> blocks_;
  std::uint64_t flow_count_ = 0;
  std::uint64_t seed_ = 0;
  double duration_min_s_ = 0.0;
  double duration_max_s_ = 0.0;
};

// Strict parser for the HSR_BENCH_THREADS environment knob: accepts only a
// plain decimal in [1, kMaxBenchThreads]; anything else (empty, non-numeric,
// trailing garbage, zero, absurd counts) is an InvalidArgument naming the
// offending text. Exposed for tests and bench binaries.
inline constexpr unsigned kMaxBenchThreads = 512;
[[nodiscard]] util::StatusOr<unsigned> parse_bench_threads(const char* text);

struct FlowRecord {
  std::string provider;   // short provider name ("China Mobile", ...)
  std::string campaign;
  std::string phone;
  bool high_speed = true;
  analysis::FlowAnalysis analysis;
  // Per-cause loss totals for this flow (integer counters; feeds the
  // corpus-wide loss breakdown in CorpusStats).
  analysis::LossBreakdown breakdown;
  double goodput_pps = 0.0;
  std::uint64_t bytes_captured = 0;
  util::Duration duration;
  unsigned receiver_window = 64;  // W_m used by this flow
  unsigned delayed_ack_b = 2;     // b used by this flow

  // Simulator-core cost accounting for this flow (perf tracking: events/sec
  // and tombstone ratio reported by bench_scaling).
  std::uint64_t sim_events = 0;      // events executed
  std::uint64_t sim_scheduled = 0;   // events ever scheduled
  std::uint64_t sim_tombstones = 0;  // cancelled/superseded entries pruned
};

// A flow that failed in the simulate phase (exception, watchdog abort) and
// was excluded from the corpus instead of killing the whole campaign.
struct QuarantinedFlow {
  std::uint64_t flow_index = 0;  // planned index within the spec
  std::string provider;
  std::string campaign;
  util::Status status;  // why the flow was quarantined (never OK)
  // Portable fault-plan text ("hsrfaultplan-v1") for each direction, as
  // derived by configure_flow for THIS flow — empty when the direction had
  // no scripted faults. Feeding these back through fault::FaultPlan::parse()
  // re-runs the casualty bit-identically for post-mortem debugging.
  std::string downlink_plan;
  std::string uplink_plan;
};

struct DatasetResult {
  std::vector<FlowRecord> flows;
  analysis::Corpus corpus;  // built from `flows`
  // Online accumulators over the same flows, absorbed in flow order — the
  // digest (stats.to_text()) the streaming path must reproduce byte for
  // byte. stats.headline() is bitwise equal to corpus.headline().
  analysis::CorpusStats stats;

  // Partial-corpus semantics: `flows`/`corpus` hold every flow that
  // completed; failures are quarantined here with their diagnostics. An
  // empty list means the campaign was complete.
  std::vector<QuarantinedFlow> quarantined;
  // Spec/environment rejection (e.g. malformed HSR_BENCH_THREADS). When not
  // OK the simulate phase never ran and `flows` is empty.
  util::Status config_status;

  [[nodiscard]] bool complete() const { return config_status.is_ok() && quarantined.empty(); }

  double total_capture_gb() const;
  unsigned flow_count(const std::string& provider, bool high_speed) const;
  // Sums of the per-flow simulator counters (bench_scaling reporting).
  std::uint64_t total_sim_events() const;
  std::uint64_t total_sim_scheduled() const;
  std::uint64_t total_sim_tombstones() const;
};

// Runs every flow of the spec (each with its own derived seed) and analyzes
// the captures. Deterministic for a given spec: flows are sharded across
// `spec.threads` workers, but each flow's simulation is seeded purely from
// (spec.seed, flow index), so the output does not depend on thread count or
// scheduling. Corpus aggregation happens sequentially after the join.
//
// Degrades gracefully instead of dying: a flow that throws or trips the
// event-budget watchdog is captured as a per-flow Status and quarantined in
// the result; every other flow still completes and aggregates.
DatasetResult generate_dataset(const DatasetSpec& spec);

// --- Streaming generation (bounded memory, crash-safe, resumable) ------------

struct StreamingDatasetOptions {
  // Final corpus file (hsrtrace-b2). Written atomically by the merge step.
  std::string corpus_path;
  // Work directory holding committed chunk files and the campaign manifest
  // while the run is in flight; "" = "<corpus_path>.work". A fresh run wipes
  // it; after an interrupted run it survives as the resume state, and a
  // successful merge cleans it up.
  std::string work_dir;
  // Planned flows per chunk (the unit of durability and of resume). The
  // final corpus bytes do NOT depend on this — merge re-stamps frame
  // sequence numbers — but the manifest pins it so a resume re-runs exactly
  // the missing ranges. 0 = kDefaultChunkFlows.
  std::uint64_t chunk_flows = 0;
  static constexpr std::uint64_t kDefaultChunkFlows = 256;
  // Resume from the work directory's manifest: verify every chunk it lists
  // (size + CRC-32C), keep the intact ones, re-run only the rest. The
  // manifest's spec digest must match this run's — a mismatched spec, seed
  // or chunking rejects the resume via config_status. configure_flow /
  // observe_flow hooks cannot be digested; callers must pass the same hooks
  // they ran with originally.
  bool resume = false;
  // I/O seam for every durable write (chunks, manifest, merge). nullptr =
  // util::Fs::real(); tests inject fault::FaultInjectingFs here.
  util::Fs* fs = nullptr;
};

// What a streaming campaign returns: online statistics and diagnostics, but
// NO captures and NO per-flow records — those live in the corpus file.
struct StreamingDatasetResult {
  analysis::CorpusStats stats;
  std::vector<QuarantinedFlow> quarantined;  // flow-index order
  // Spec/environment rejection (same contract as DatasetResult); also a
  // resume whose manifest was written under a different spec digest.
  util::Status config_status;
  // First chunk/manifest/merge I/O failure. When not OK the corpus file was
  // not produced — but every chunk committed before the failure is durable
  // and the manifest describes it, so a `resume` run picks up from there.
  util::Status io_status;

  std::string corpus_path;
  std::uint64_t flows_completed = 0;  // flow frames in the corpus
  std::uint64_t corpus_bytes = 0;     // final corpus file size
  std::uint64_t total_sim_events = 0;
  std::uint64_t chunks_total = 0;   // chunks the campaign spans
  std::uint64_t chunks_reused = 0;  // verified and skipped by a resume

  [[nodiscard]] bool complete() const {
    return config_status.is_ok() && io_status.is_ok() && quarantined.empty();
  }
};

// generate_dataset with O(threads) instead of O(flows) capture memory, and
// crash-safe: the flow range is partitioned into chunks, each worker runs a
// chunk at a time and commits it as its own hsrtrace-b2 file (tmp + fsync +
// atomic rename) with per-flow 'S' stats-sample sidecar frames, and the
// manifest is atomically rewritten after every commit. The final merge
// concatenates chunks in index order, strips the sidecars while absorbing
// them into `stats` in strict flow order, and re-stamps frame sequence
// numbers — so corpus bytes AND stats.to_text() are byte-identical for any
// thread count, any chunk size, and any interruption/resume history, and
// bitwise equal to the in-memory path's DatasetResult::stats. Flow frames
// carry their campaign flow index as the FlowId.
StreamingDatasetResult generate_dataset_streaming(const DatasetSpec& spec,
                                                  const StreamingDatasetOptions& options);

}  // namespace hsr::workload
