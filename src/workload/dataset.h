// Dataset generation mirroring Table I of the paper: two measurement
// campaigns (January and October 2015) on the Beijing-Tianjin Intercity
// Railway, three providers, 255 flows, 40.47 GB of captures — plus a
// stationary control corpus for the §III comparisons.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/corpus.h"
#include "radio/profiles.h"
#include "workload/scenario.h"

namespace hsr::workload {

struct CampaignSpec {
  std::string campaign;        // "January 2015" / "October 2015"
  std::string phone;           // "Samsung Note 3" / "Samsung Galaxy S4"
  radio::ProviderProfile profile;
  unsigned flows = 0;
  unsigned trips = 0;
};

struct DatasetSpec {
  std::vector<CampaignSpec> campaigns;
  // Stationary control flows generated per provider.
  unsigned stationary_flows_per_provider = 12;
  // Per-flow duration is uniform in [min, max].
  // The paper's flows span minutes (40.47 GB over 255 flows); minute-scale
  // durations also give each flow enough timeout samples for stable
  // parameter estimates.
  util::Duration flow_duration_min = util::Duration::seconds(180);
  util::Duration flow_duration_max = util::Duration::seconds(300);
  std::uint64_t seed = 2015;
  // Worker threads for flow simulation. 0 = the HSR_BENCH_THREADS env knob
  // if set, else std::thread::hardware_concurrency(); 1 = fully sequential
  // (the legacy single-threaded path). Every flow is an independent,
  // fork-seeded simulation whose record lands in a pre-sized slot, so the
  // result is byte-identical for ANY thread count (enforced by tests).
  unsigned threads = 0;

  // Table I of the paper. `scale` in (0, 1] shrinks the flow counts
  // proportionally (floor, at least 1 per campaign) for quick runs.
  static DatasetSpec paper_table1(double scale = 1.0);
};

struct FlowRecord {
  std::string provider;   // short provider name ("China Mobile", ...)
  std::string campaign;
  std::string phone;
  bool high_speed = true;
  analysis::FlowAnalysis analysis;
  double goodput_pps = 0.0;
  std::uint64_t bytes_captured = 0;
  util::Duration duration;
  unsigned receiver_window = 64;  // W_m used by this flow
  unsigned delayed_ack_b = 2;     // b used by this flow

  // Simulator-core cost accounting for this flow (perf tracking: events/sec
  // and tombstone ratio reported by bench_scaling).
  std::uint64_t sim_events = 0;      // events executed
  std::uint64_t sim_scheduled = 0;   // events ever scheduled
  std::uint64_t sim_tombstones = 0;  // cancelled/superseded entries pruned
};

struct DatasetResult {
  std::vector<FlowRecord> flows;
  analysis::Corpus corpus;  // built from `flows`

  double total_capture_gb() const;
  unsigned flow_count(const std::string& provider, bool high_speed) const;
  // Sums of the per-flow simulator counters (bench_scaling reporting).
  std::uint64_t total_sim_events() const;
  std::uint64_t total_sim_scheduled() const;
  std::uint64_t total_sim_tombstones() const;
};

// Runs every flow of the spec (each with its own derived seed) and analyzes
// the captures. Deterministic for a given spec: flows are sharded across
// `spec.threads` workers, but each flow's simulation is seeded purely from
// (spec.seed, flow index), so the output does not depend on thread count or
// scheduling. Corpus aggregation happens sequentially after the join.
DatasetResult generate_dataset(const DatasetSpec& spec);

}  // namespace hsr::workload
