#include "analysis/flow_analysis.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/logging.h"

namespace hsr::analysis {

namespace {

struct AckArrival {
  TimePoint when;
  SeqNo ack_next;
};

// ACKs that actually reached the sender, in arrival order.
std::vector<AckArrival> collect_ack_arrivals(const trace::FlowCapture& capture) {
  std::vector<AckArrival> arrivals;
  for (const auto& tx : capture.acks.transmissions()) {
    if (tx.arrived) arrivals.push_back({*tx.arrived, tx.packet.ack_next});
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const AckArrival& a, const AckArrival& b) { return a.when < b.when; });
  return arrivals;
}

// Index of the first arrival with when > t.
std::size_t first_arrival_after(const std::vector<AckArrival>& arrivals, TimePoint t) {
  return static_cast<std::size_t>(
      std::upper_bound(arrivals.begin(), arrivals.end(), t,
                       [](TimePoint value, const AckArrival& a) { return value < a.when; }) -
      arrivals.begin());
}

// True if some ACK arrived in (t - window, t].
bool ack_arrived_just_before(const std::vector<AckArrival>& arrivals, TimePoint t,
                             Duration window) {
  const std::size_t after = first_arrival_after(arrivals, t);
  if (after == 0) return false;
  return arrivals[after - 1].when > t - window;
}

// Classification of every data transmission.
enum class TxClass { kFirstSend, kRtoRetx, kFastRetx, kAckDrivenResend };

std::vector<TxClass> classify_transmissions(const trace::FlowCapture& capture,
                                            const std::vector<AckArrival>& arrivals,
                                            const AnalysisConfig& cfg) {
  const auto& txs = capture.data.transmissions();
  std::vector<TxClass> classes(txs.size(), TxClass::kFirstSend);
  std::map<SeqNo, std::size_t> last_send_of;

  for (std::size_t i = 0; i < txs.size(); ++i) {
    const SeqNo s = txs[i].packet.seq;
    const TimePoint t = txs[i].sent;
    const auto prev = last_send_of.find(s);
    if (prev != last_send_of.end()) {
      if (!ack_arrived_just_before(arrivals, t, cfg.ack_trigger_window)) {
        classes[i] = TxClass::kRtoRetx;
      } else {
        // ACK-driven: fast retransmit iff enough duplicate ACKs for `s`
        // arrived since the previous send of `s`.
        const TimePoint prev_t = txs[prev->second].sent;
        unsigned dupacks = 0;
        for (std::size_t k = first_arrival_after(arrivals, prev_t);
             k < arrivals.size() && arrivals[k].when <= t; ++k) {
          if (arrivals[k].ack_next == s) ++dupacks;
        }
        classes[i] = dupacks >= cfg.dupack_threshold ? TxClass::kFastRetx
                                                     : TxClass::kAckDrivenResend;
      }
    }
    last_send_of[s] = i;
  }
  return classes;
}

}  // namespace

std::vector<std::size_t> find_rto_retransmissions(const trace::FlowCapture& capture,
                                                  AnalysisConfig config) {
  const auto arrivals = collect_ack_arrivals(capture);
  const auto classes = classify_transmissions(capture, arrivals, config);
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (classes[i] == TxClass::kRtoRetx) out.push_back(i);
  }
  return out;
}

unsigned count_fast_retransmissions(const trace::FlowCapture& capture,
                                    AnalysisConfig config) {
  const auto arrivals = collect_ack_arrivals(capture);
  const auto classes = classify_transmissions(capture, arrivals, config);
  unsigned n = 0;
  for (const TxClass c : classes) {
    if (c == TxClass::kFastRetx) ++n;
  }
  return n;
}

double estimate_ack_burst_loss(const trace::FlowCapture& capture, Duration rtt) {
  if (rtt <= Duration::zero()) return 0.0;
  const auto& txs = capture.acks.transmissions();
  if (txs.empty()) return 0.0;

  // Bucket ACK transmissions into RTT-sized rounds anchored at the first
  // ACK's send time; a round contributes when it contains at least one ACK.
  const TimePoint origin = txs.front().sent;
  std::map<std::int64_t, std::pair<unsigned, unsigned>> rounds;  // round -> (sent, lost)
  for (const auto& tx : txs) {
    const std::int64_t round = (tx.sent - origin).ns() / rtt.ns();
    auto& [sent, lost] = rounds[round];
    ++sent;
    if (tx.lost()) ++lost;
  }
  unsigned with_acks = 0;
  unsigned all_lost = 0;
  for (const auto& [round, counts] : rounds) {
    (void)round;
    ++with_acks;
    if (counts.second == counts.first) ++all_lost;
  }
  return with_acks == 0 ? 0.0
                        : static_cast<double>(all_lost) / static_cast<double>(with_acks);
}

LossBreakdown loss_breakdown(const trace::FlowCapture& capture) {
  LossBreakdown out;
  auto tally = [](const trace::DirectionCapture& dir, std::uint64_t& sent,
                  std::uint64_t& lost,
                  std::array<std::uint64_t, net::kDropCategoryCount>& by_category,
                  std::uint64_t& unattributed, std::uint64_t& scripted) {
    for (const auto& tx : dir.transmissions()) {
      ++sent;
      if (!tx.lost()) continue;
      ++lost;
      if (!tx.drop_cause) {
        ++unattributed;
        continue;
      }
      ++by_category[static_cast<std::size_t>(tx.drop_cause->category)];
      if (tx.drop_cause->is_scripted()) ++scripted;
    }
  };
  tally(capture.data, out.data_sent, out.data_lost, out.data_by_category,
        out.data_unattributed, out.scripted_drops);
  tally(capture.acks, out.ack_sent, out.ack_lost, out.ack_by_category,
        out.ack_unattributed, out.scripted_drops);
  return out;
}

FlowAnalysis analyze_flow(const trace::FlowCapture& capture, AnalysisConfig config) {
  FlowAnalysis out;
  const auto& data_txs = capture.data.transmissions();
  const auto arrivals = collect_ack_arrivals(capture);
  const auto classes = classify_transmissions(capture, arrivals, config);

  out.data_loss_rate = capture.data.loss_rate();
  out.ack_loss_rate = capture.acks.loss_rate();
  {
    // First-transmission loss rate: the first send of each distinct segment.
    std::map<SeqNo, bool> seen_first;
    std::uint64_t firsts = 0, firsts_lost = 0;
    for (const auto& tx : data_txs) {
      auto [it2, inserted] = seen_first.emplace(tx.packet.seq, true);
      (void)it2;
      if (!inserted) continue;
      ++firsts;
      if (tx.lost()) ++firsts_lost;
    }
    out.first_tx_loss_rate =
        firsts == 0 ? 0.0 : static_cast<double>(firsts_lost) / static_cast<double>(firsts);
    out.first_transmissions = firsts;
  }
  out.unique_segments = capture.unique_segments_delivered();
  out.span = capture.span();
  out.mean_rtt = capture.estimated_rtt();
  out.goodput_pps = out.span > Duration::zero()
                        ? static_cast<double>(out.unique_segments) / out.span.to_seconds()
                        : 0.0;
  out.mean_window_segments = out.goodput_pps * out.mean_rtt.to_seconds();
  out.ack_burst_loss_probability = estimate_ack_burst_loss(capture, out.mean_rtt);

  for (const TxClass c : classes) {
    if (c == TxClass::kFastRetx) ++out.fast_retransmits;
  }

  // --- Timeout sequences -----------------------------------------------------
  // Per segment: all transmission indices, in time order (captures are
  // chronological per direction).
  std::map<SeqNo, std::vector<std::size_t>> sends_of;
  for (std::size_t i = 0; i < data_txs.size(); ++i) {
    sends_of[data_txs[i].packet.seq].push_back(i);
  }

  std::vector<bool> consumed(data_txs.size(), false);
  for (std::size_t i = 0; i < data_txs.size(); ++i) {
    if (classes[i] != TxClass::kRtoRetx || consumed[i]) continue;

    const SeqNo s = data_txs[i].packet.seq;
    TimeoutSequence seq_info;
    seq_info.seq = s;
    seq_info.first_retx = data_txs[i].sent;

    const auto& sends = sends_of[s];
    // Previous transmission of s (the "original" whose timer expired).
    const auto it = std::find(sends.begin(), sends.end(), i);
    HSR_CHECK(it != sends.begin() && it != sends.end());
    const std::size_t original_idx = *(it - 1);
    seq_info.ca_end = data_txs[original_idx].sent;

    // Spurious iff any copy of s put on the wire before the first RTO
    // retransmission actually reached the receiver.
    for (auto jt = sends.begin(); jt != it; ++jt) {
      if (data_txs[*jt].arrived) {
        seq_info.spurious = true;
        break;
      }
    }

    // Recovery: first ACK arriving after the first retransmission that
    // acknowledges past s.
    TimePoint recovered = TimePoint::max();
    for (std::size_t k = first_arrival_after(arrivals, seq_info.first_retx);
         k < arrivals.size(); ++k) {
      if (arrivals[k].ack_next > s) {
        recovered = arrivals[k].when;
        break;
      }
    }
    seq_info.recovered_observed = recovered != TimePoint::max();
    seq_info.recovered = seq_info.recovered_observed
                             ? recovered
                             : (data_txs.back().sent);  // trace truncated mid-recovery

    // All RTO retransmissions of s within [first_retx, recovered] belong to
    // this sequence; count their fates.
    TimePoint second_retx = TimePoint::max();
    for (auto jt = it; jt != sends.end(); ++jt) {
      const std::size_t idx = *jt;
      if (data_txs[idx].sent > seq_info.recovered) break;
      if (classes[idx] != TxClass::kRtoRetx) continue;
      consumed[idx] = true;
      ++seq_info.num_timeouts;
      ++seq_info.retx_sent;
      if (seq_info.num_timeouts == 2) second_retx = data_txs[idx].sent;
      if (data_txs[idx].lost()) ++seq_info.retx_lost;
    }
    if (second_retx != TimePoint::max()) {
      seq_info.backoff_gap = second_retx - seq_info.first_retx;
    }
    out.timeout_sequences.push_back(std::move(seq_info));
  }

  std::sort(out.timeout_sequences.begin(), out.timeout_sequences.end(),
            [](const TimeoutSequence& a, const TimeoutSequence& b) {
              return a.first_retx < b.first_retx;
            });

  // --- Aggregates ------------------------------------------------------------
  unsigned total_retx = 0;
  unsigned total_retx_lost = 0;
  unsigned spurious = 0;
  std::int64_t recovery_ns = 0;
  std::int64_t all_recovery_ns = 0;  // completed + truncated sequences
  std::int64_t first_rto_ns = 0;
  std::int64_t backoff_gap_ns = 0;
  unsigned with_backoff_gap = 0;
  unsigned completed = 0;
  for (const auto& ts : out.timeout_sequences) {
    total_retx += ts.retx_sent;
    total_retx_lost += ts.retx_lost;
    if (ts.spurious) ++spurious;
    first_rto_ns += (ts.first_retx - ts.ca_end).ns();
    if (ts.backoff_gap > Duration::zero()) {
      backoff_gap_ns += ts.backoff_gap.ns();
      ++with_backoff_gap;
    }
    all_recovery_ns += ts.duration().ns();
    if (ts.recovered_observed) {
      recovery_ns += ts.duration().ns();
      ++completed;
    }
  }
  const auto n_seq = out.timeout_sequences.size();
  out.recovery_retx_loss_rate =
      total_retx == 0 ? 0.0
                      : static_cast<double>(total_retx_lost) / static_cast<double>(total_retx);
  out.spurious_fraction =
      n_seq == 0 ? 0.0 : static_cast<double>(spurious) / static_cast<double>(n_seq);
  out.mean_recovery_duration =
      completed == 0 ? Duration::zero() : Duration::nanos(recovery_ns / completed);
  if (with_backoff_gap > 0) {
    // gap between the 1st and 2nd retransmission is 2T under backoff.
    out.mean_first_rto =
        Duration::nanos(backoff_gap_ns / (2 * static_cast<std::int64_t>(with_backoff_gap)));
  } else {
    out.mean_first_rto =
        n_seq == 0 ? Duration::zero()
                   : Duration::nanos(first_rto_ns / static_cast<std::int64_t>(n_seq));
  }
  out.total_recovery_time = Duration::nanos(all_recovery_ns);
  out.recovery_time_fraction =
      out.span > Duration::zero()
          ? std::min(1.0, out.total_recovery_time.to_seconds() / out.span.to_seconds())
          : 0.0;
  out.loss_indications = static_cast<unsigned>(n_seq) + out.fast_retransmits;
  out.timeout_probability =
      out.loss_indications == 0
          ? 0.0
          : static_cast<double>(n_seq) / static_cast<double>(out.loss_indications);

  if (out.first_transmissions > 0) {
    const double n_first = static_cast<double>(out.first_transmissions);
    unsigned non_spurious = 0;
    for (const auto& ts : out.timeout_sequences) {
      if (!ts.spurious) ++non_spurious;
    }
    out.loss_event_rate_all = static_cast<double>(out.loss_indications) / n_first;
    out.loss_event_rate_data =
        static_cast<double>(out.fast_retransmits + non_spurious) / n_first;
  }

  // Episode-calibrated P̂_a: invert 1-(1-P_a)^X_P = spurious share of loss
  // indications, with X_P from the measured data-loss rate (model Eq. 1).
  if (out.loss_indications > 0 && spurious > 0 && out.loss_event_rate_data > 0.0) {
    const double frac = static_cast<double>(spurious) /
                        static_cast<double>(out.loss_indications);
    const double b_est = 2.0;  // inversion is insensitive to b; see Eq. 1
    const double k = (2.0 + b_est) / 6.0;
    const double x_p =
        k + std::sqrt(2.0 * b_est * (1.0 - out.loss_event_rate_data) /
                          (3.0 * out.loss_event_rate_data) +
                      k * k);
    out.ack_burst_loss_episode =
        1.0 - std::pow(1.0 - std::min(frac, 0.999), 1.0 / x_p);
  }
  return out;
}

}  // namespace hsr::analysis
