#include "analysis/corpus_stats.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace hsr::analysis {

FlowStatsSample FlowStatsSample::from_flow(const FlowAnalysis& flow,
                                           const LossBreakdown& breakdown,
                                           bool high_speed,
                                           std::uint64_t bytes_captured) {
  FlowStatsSample s;
  s.high_speed = high_speed;
  s.has_timeouts = flow.has_timeouts();
  s.ack_loss_rate = flow.ack_loss_rate;
  s.data_loss_rate = flow.data_loss_rate;
  s.first_tx_loss_rate = flow.first_tx_loss_rate;
  s.recovery_retx_loss_rate = flow.recovery_retx_loss_rate;
  s.goodput_pps = flow.goodput_pps;
  s.bytes_captured = bytes_captured;
  s.sequences.reserve(flow.timeout_sequences.size());
  for (const auto& ts : flow.timeout_sequences) {
    s.sequences.push_back(SequenceSample{ts.duration().to_seconds(), ts.spurious,
                                         ts.recovered_observed});
  }
  s.breakdown = breakdown;
  return s;
}

void CorpusStats::absorb(const FlowStatsSample& sample) {
  // The add order below mirrors Corpus::headline()'s per-entry adds exactly;
  // with absorb() called in flow order every accumulator sees the identical
  // floating-point sequence, which is what makes headline() bitwise equal.
  if (sample.high_speed) {
    ++flows_highspeed_;
    ack_loss_highspeed_.add(sample.ack_loss_rate);
    data_loss_highspeed_.add(sample.data_loss_rate);
    first_tx_loss_highspeed_.add(sample.first_tx_loss_rate);
    goodput_highspeed_.add(sample.goodput_pps);
    if (sample.has_timeouts) {
      recovery_loss_highspeed_.add(sample.recovery_retx_loss_rate);
      for (const auto& seq : sample.sequences) {
        ++timeout_sequences_highspeed_;
        if (seq.spurious) ++spurious_sequences_highspeed_;
        if (seq.recovered) recovery_highspeed_.add(seq.duration_s);
      }
    }
  } else {
    ++flows_stationary_;
    ack_loss_stationary_.add(sample.ack_loss_rate);
    data_loss_stationary_.add(sample.data_loss_rate);
    goodput_stationary_.add(sample.goodput_pps);
    for (const auto& seq : sample.sequences) {
      if (seq.recovered) recovery_stationary_.add(seq.duration_s);
    }
  }
  bytes_captured_ += sample.bytes_captured;

  const LossBreakdown& b = sample.breakdown;
  loss_totals_.data_sent += b.data_sent;
  loss_totals_.data_lost += b.data_lost;
  loss_totals_.ack_sent += b.ack_sent;
  loss_totals_.ack_lost += b.ack_lost;
  for (std::size_t c = 0; c < net::kDropCategoryCount; ++c) {
    loss_totals_.data_by_category[c] += b.data_by_category[c];
    loss_totals_.ack_by_category[c] += b.ack_by_category[c];
  }
  loss_totals_.data_unattributed += b.data_unattributed;
  loss_totals_.ack_unattributed += b.ack_unattributed;
  loss_totals_.scripted_drops += b.scripted_drops;
}

void CorpusStats::absorb_quarantine() { ++quarantined_; }

void CorpusStats::merge(const CorpusStats& other) {
  recovery_highspeed_.merge(other.recovery_highspeed_);
  recovery_stationary_.merge(other.recovery_stationary_);
  ack_loss_highspeed_.merge(other.ack_loss_highspeed_);
  ack_loss_stationary_.merge(other.ack_loss_stationary_);
  data_loss_highspeed_.merge(other.data_loss_highspeed_);
  data_loss_stationary_.merge(other.data_loss_stationary_);
  first_tx_loss_highspeed_.merge(other.first_tx_loss_highspeed_);
  recovery_loss_highspeed_.merge(other.recovery_loss_highspeed_);
  goodput_highspeed_.merge(other.goodput_highspeed_);
  goodput_stationary_.merge(other.goodput_stationary_);

  flows_highspeed_ += other.flows_highspeed_;
  flows_stationary_ += other.flows_stationary_;
  timeout_sequences_highspeed_ += other.timeout_sequences_highspeed_;
  spurious_sequences_highspeed_ += other.spurious_sequences_highspeed_;
  quarantined_ += other.quarantined_;
  bytes_captured_ += other.bytes_captured_;

  const LossBreakdown& b = other.loss_totals_;
  loss_totals_.data_sent += b.data_sent;
  loss_totals_.data_lost += b.data_lost;
  loss_totals_.ack_sent += b.ack_sent;
  loss_totals_.ack_lost += b.ack_lost;
  for (std::size_t c = 0; c < net::kDropCategoryCount; ++c) {
    loss_totals_.data_by_category[c] += b.data_by_category[c];
    loss_totals_.ack_by_category[c] += b.ack_by_category[c];
  }
  loss_totals_.data_unattributed += b.data_unattributed;
  loss_totals_.ack_unattributed += b.ack_unattributed;
  loss_totals_.scripted_drops += b.scripted_drops;
}

Corpus::Headline CorpusStats::headline() const {
  Corpus::Headline h;
  h.mean_recovery_s_highspeed = recovery_highspeed_.mean();
  h.mean_recovery_s_stationary = recovery_stationary_.mean();
  h.spurious_timeout_share =
      timeout_sequences_highspeed_ == 0
          ? 0.0
          : static_cast<double>(spurious_sequences_highspeed_) /
                static_cast<double>(timeout_sequences_highspeed_);
  h.mean_ack_loss_highspeed = ack_loss_highspeed_.mean();
  h.mean_ack_loss_stationary = ack_loss_stationary_.mean();
  h.mean_data_loss_highspeed = data_loss_highspeed_.mean();
  h.mean_recovery_loss_highspeed = recovery_loss_highspeed_.mean();
  h.flows_highspeed = static_cast<std::size_t>(flows_highspeed_);
  h.flows_stationary = static_cast<std::size_t>(flows_stationary_);
  h.timeout_sequences_highspeed = static_cast<std::size_t>(timeout_sequences_highspeed_);
  return h;
}

namespace {

constexpr char kStatsHeader[] = "hsrcorpusstats-v1";

// Shortest decimal that round-trips the exact double (std::to_chars default
// format), so a stats file re-parses to bitwise-identical accumulators.
void append_double(std::string& out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_stat(std::string& out, const char* name, const util::RunningStats& s) {
  out += "stat ";
  out += name;
  out += ' ';
  out += std::to_string(s.count());
  out += ' ';
  append_double(out, s.count() > 0 ? s.mean() : 0.0);
  out += ' ';
  append_double(out, s.m2());
  out += ' ';
  append_double(out, s.min());
  out += ' ';
  append_double(out, s.max());
  out += '\n';
}

// Whitespace tokenizer with exact numeric re-parsing via from_chars.
struct StatsParser {
  std::istringstream in;
  std::string token;
  bool failed = false;
  std::string error;

  explicit StatsParser(const std::string& text) : in(text) {}

  void fail(const std::string& why) {
    if (!failed) {
      failed = true;
      error = why;
    }
  }

  std::string next() {
    if (failed || !(in >> token)) {
      fail("unexpected end of stats text");
      return {};
    }
    return token;
  }

  void expect(const char* literal) {
    if (next() != literal) fail(std::string("expected '") + literal + "', got '" + token + "'");
  }

  std::uint64_t get_u64() {
    const std::string t = next();
    std::uint64_t v = 0;
    const auto res = std::from_chars(t.data(), t.data() + t.size(), v);
    if (failed) return 0;
    if (res.ec != std::errc() || res.ptr != t.data() + t.size()) {
      fail("bad integer '" + t + "'");
      return 0;
    }
    return v;
  }

  double get_double() {
    const std::string t = next();
    double v = 0.0;
    const auto res = std::from_chars(t.data(), t.data() + t.size(), v);
    if (failed) return 0.0;
    if (res.ec != std::errc() || res.ptr != t.data() + t.size()) {
      fail("bad number '" + t + "'");
      return 0.0;
    }
    return v;
  }

  util::RunningStats get_stat(const char* name) {
    expect("stat");
    expect(name);
    const std::uint64_t n = get_u64();
    const double mean = get_double();
    const double m2 = get_double();
    const double min = get_double();
    const double max = get_double();
    return util::RunningStats::from_parts(static_cast<std::size_t>(n), mean, m2, min,
                                          max);
  }
};

}  // namespace

std::string CorpusStats::to_text() const {
  std::string out;
  out += kStatsHeader;
  out += '\n';
  out += "flows " + std::to_string(flows_highspeed_) + ' ' +
         std::to_string(flows_stationary_) + '\n';
  out += "quarantined " + std::to_string(quarantined_) + '\n';
  out += "sequences " + std::to_string(timeout_sequences_highspeed_) + ' ' +
         std::to_string(spurious_sequences_highspeed_) + '\n';
  out += "bytes " + std::to_string(bytes_captured_) + '\n';

  append_stat(out, "recovery_hs", recovery_highspeed_);
  append_stat(out, "recovery_st", recovery_stationary_);
  append_stat(out, "ack_loss_hs", ack_loss_highspeed_);
  append_stat(out, "ack_loss_st", ack_loss_stationary_);
  append_stat(out, "data_loss_hs", data_loss_highspeed_);
  append_stat(out, "data_loss_st", data_loss_stationary_);
  append_stat(out, "first_tx_loss_hs", first_tx_loss_highspeed_);
  append_stat(out, "recovery_loss_hs", recovery_loss_highspeed_);
  append_stat(out, "goodput_hs", goodput_highspeed_);
  append_stat(out, "goodput_st", goodput_stationary_);

  out += "loss " + std::to_string(loss_totals_.data_sent) + ' ' +
         std::to_string(loss_totals_.data_lost) + ' ' +
         std::to_string(loss_totals_.ack_sent) + ' ' +
         std::to_string(loss_totals_.ack_lost) + ' ' +
         std::to_string(loss_totals_.data_unattributed) + ' ' +
         std::to_string(loss_totals_.ack_unattributed) + ' ' +
         std::to_string(loss_totals_.scripted_drops) + '\n';
  out += "losscat data";
  for (std::size_t c = 0; c < net::kDropCategoryCount; ++c) {
    out += ' ';
    out += std::to_string(loss_totals_.data_by_category[c]);
  }
  out += '\n';
  out += "losscat ack";
  for (std::size_t c = 0; c < net::kDropCategoryCount; ++c) {
    out += ' ';
    out += std::to_string(loss_totals_.ack_by_category[c]);
  }
  out += '\n';
  return out;
}

util::StatusOr<CorpusStats> CorpusStats::parse(const std::string& text) {
  StatsParser p(text);
  p.expect(kStatsHeader);

  CorpusStats s;
  p.expect("flows");
  s.flows_highspeed_ = p.get_u64();
  s.flows_stationary_ = p.get_u64();
  p.expect("quarantined");
  s.quarantined_ = p.get_u64();
  p.expect("sequences");
  s.timeout_sequences_highspeed_ = p.get_u64();
  s.spurious_sequences_highspeed_ = p.get_u64();
  p.expect("bytes");
  s.bytes_captured_ = p.get_u64();

  s.recovery_highspeed_ = p.get_stat("recovery_hs");
  s.recovery_stationary_ = p.get_stat("recovery_st");
  s.ack_loss_highspeed_ = p.get_stat("ack_loss_hs");
  s.ack_loss_stationary_ = p.get_stat("ack_loss_st");
  s.data_loss_highspeed_ = p.get_stat("data_loss_hs");
  s.data_loss_stationary_ = p.get_stat("data_loss_st");
  s.first_tx_loss_highspeed_ = p.get_stat("first_tx_loss_hs");
  s.recovery_loss_highspeed_ = p.get_stat("recovery_loss_hs");
  s.goodput_highspeed_ = p.get_stat("goodput_hs");
  s.goodput_stationary_ = p.get_stat("goodput_st");

  p.expect("loss");
  s.loss_totals_.data_sent = p.get_u64();
  s.loss_totals_.data_lost = p.get_u64();
  s.loss_totals_.ack_sent = p.get_u64();
  s.loss_totals_.ack_lost = p.get_u64();
  s.loss_totals_.data_unattributed = p.get_u64();
  s.loss_totals_.ack_unattributed = p.get_u64();
  s.loss_totals_.scripted_drops = p.get_u64();
  p.expect("losscat");
  p.expect("data");
  for (std::size_t c = 0; c < net::kDropCategoryCount; ++c) {
    s.loss_totals_.data_by_category[c] = p.get_u64();
  }
  p.expect("losscat");
  p.expect("ack");
  for (std::size_t c = 0; c < net::kDropCategoryCount; ++c) {
    s.loss_totals_.ack_by_category[c] = p.get_u64();
  }

  if (p.failed) {
    return util::Status::invalid_argument("corpus stats parse: " + p.error);
  }
  return s;
}

util::Status save_corpus_stats(util::Fs& fs, const std::string& path,
                               const CorpusStats& stats) {
  // Atomic write through the seam, same contract as trace_io::save_flow_capture:
  // a killed run never leaves a half-written digest under the real name.
  return util::write_file_atomic(fs, path, stats.to_text());
}

util::Status save_corpus_stats(const std::string& path, const CorpusStats& stats) {
  return save_corpus_stats(util::Fs::real(), path, stats);
}

util::StatusOr<CorpusStats> load_corpus_stats(const std::string& path) {
  std::ifstream f(path);
  if (!f) return util::Status::not_found("cannot open: " + path);
  std::ostringstream text;
  text << f.rdbuf();
  return CorpusStats::parse(text.str());
}

}  // namespace hsr::analysis
