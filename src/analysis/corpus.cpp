#include "analysis/corpus.h"

namespace hsr::analysis {

void Corpus::add(std::string provider, bool high_speed, FlowAnalysis flow) {
  entries_.push_back(CorpusEntry{std::move(provider), high_speed, std::move(flow)});
}

util::EmpiricalCdf Corpus::lifetime_data_loss_cdf(bool high_speed) const {
  util::EmpiricalCdf cdf;
  for (const auto& e : entries_) {
    if (e.high_speed == high_speed) cdf.add(e.flow.data_loss_rate);
  }
  return cdf;
}

util::EmpiricalCdf Corpus::recovery_loss_cdf(bool high_speed) const {
  util::EmpiricalCdf cdf;
  for (const auto& e : entries_) {
    if (e.high_speed == high_speed && e.flow.has_timeouts()) {
      cdf.add(e.flow.recovery_retx_loss_rate);
    }
  }
  return cdf;
}

std::vector<std::pair<double, double>> Corpus::ack_loss_vs_timeout(bool high_speed) const {
  std::vector<std::pair<double, double>> points;
  for (const auto& e : entries_) {
    if (e.high_speed == high_speed && e.flow.loss_indications > 0) {
      points.emplace_back(e.flow.ack_loss_rate, e.flow.timeout_probability);
    }
  }
  return points;
}

util::EmpiricalCdf Corpus::ack_loss_cdf(bool high_speed) const {
  util::EmpiricalCdf cdf;
  for (const auto& e : entries_) {
    if (e.high_speed == high_speed) cdf.add(e.flow.ack_loss_rate);
  }
  return cdf;
}

Corpus::Headline Corpus::headline() const {
  Headline h;
  util::RunningStats rec_hs, rec_st, ack_hs, ack_st, data_hs, q_hs;
  std::size_t seq_hs = 0, spurious_hs = 0;

  for (const auto& e : entries_) {
    const FlowAnalysis& f = e.flow;
    if (e.high_speed) {
      ++h.flows_highspeed;
      ack_hs.add(f.ack_loss_rate);
      data_hs.add(f.data_loss_rate);
      if (f.has_timeouts()) {
        q_hs.add(f.recovery_retx_loss_rate);
        for (const auto& ts : f.timeout_sequences) {
          ++seq_hs;
          if (ts.spurious) ++spurious_hs;
          if (ts.recovered_observed) rec_hs.add(ts.duration().to_seconds());
        }
      }
    } else {
      ++h.flows_stationary;
      ack_st.add(f.ack_loss_rate);
      for (const auto& ts : f.timeout_sequences) {
        if (ts.recovered_observed) rec_st.add(ts.duration().to_seconds());
      }
    }
  }

  h.mean_recovery_s_highspeed = rec_hs.mean();
  h.mean_recovery_s_stationary = rec_st.mean();
  h.spurious_timeout_share =
      seq_hs == 0 ? 0.0 : static_cast<double>(spurious_hs) / static_cast<double>(seq_hs);
  h.mean_ack_loss_highspeed = ack_hs.mean();
  h.mean_ack_loss_stationary = ack_st.mean();
  h.mean_data_loss_highspeed = data_hs.mean();
  h.mean_recovery_loss_highspeed = q_hs.mean();
  h.timeout_sequences_highspeed = seq_hs;
  return h;
}

}  // namespace hsr::analysis
