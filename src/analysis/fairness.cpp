#include "analysis/fairness.h"

#include <algorithm>

namespace hsr::analysis {

double jain_index(const std::vector<double>& values) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (values.empty() || sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

FairnessReport fairness_report(const std::vector<trace::FlowCapture>& captures,
                               Duration duration) {
  FairnessReport report;
  report.flows.reserve(captures.size());

  Duration norm = duration;
  if (norm.ns() <= 0) {
    for (const auto& c : captures) norm = std::max(norm, c.span());
  }
  const double seconds = norm.to_seconds();

  for (const auto& c : captures) {
    FlowFairness f;
    f.flow = c.flow;
    f.goodput_pps =
        seconds > 0.0
            ? static_cast<double>(c.unique_segments_delivered()) / seconds
            : 0.0;
    f.data_sent = c.data.sent_count();
    for (const auto& tx : c.data.transmissions()) {
      if (tx.packet.is_retransmission) ++f.retransmissions;
    }
    f.retransmission_rate =
        f.data_sent > 0 ? static_cast<double>(f.retransmissions) /
                              static_cast<double>(f.data_sent)
                        : 0.0;
    report.aggregate_goodput_pps += f.goodput_pps;
    report.aggregate_data_sent += f.data_sent;
    report.aggregate_retransmissions += f.retransmissions;
    report.flows.push_back(f);
  }

  std::vector<double> goodputs;
  goodputs.reserve(report.flows.size());
  for (auto& f : report.flows) {
    f.goodput_share = report.aggregate_goodput_pps > 0.0
                          ? f.goodput_pps / report.aggregate_goodput_pps
                          : 0.0;
    goodputs.push_back(f.goodput_pps);
  }
  report.jain = jain_index(goodputs);
  report.aggregate_retransmission_rate =
      report.aggregate_data_sent > 0
          ? static_cast<double>(report.aggregate_retransmissions) /
                static_cast<double>(report.aggregate_data_sent)
          : 0.0;
  return report;
}

std::vector<WindowShare> delivered_shares(const std::vector<trace::FlowCapture>& captures,
                                          TimePoint begin, TimePoint end) {
  std::vector<WindowShare> shares;
  shares.reserve(captures.size());
  std::uint64_t total = 0;
  for (const auto& c : captures) {
    WindowShare s;
    s.flow = c.flow;
    for (const auto& tx : c.data.transmissions()) {
      if (tx.arrived.has_value() && *tx.arrived >= begin && *tx.arrived < end) {
        ++s.delivered;
      }
    }
    total += s.delivered;
    shares.push_back(s);
  }
  for (auto& s : shares) {
    s.share = total > 0 ? static_cast<double>(s.delivered) /
                              static_cast<double>(total)
                        : 0.0;
  }
  return shares;
}

}  // namespace hsr::analysis
