// Per-flow measurement methodology (paper §III).
//
// Works ONLY from the packet captures (trace::FlowCapture) — never from the
// TCP stack's internal state — mirroring how the authors analyzed wireshark
// traces. Reconstruction steps:
//   1. classify every data re-send as timer-driven (RTO) or ACK-driven
//      (fast retransmit / go-back-N slow start),
//   2. group RTO retransmissions into timeout sequences and find each
//      sequence's recovery point,
//   3. classify each timeout sequence as spurious (the original copy reached
//      the receiver; the timeout was caused by ACK loss) or data-loss,
//   4. measure lifetime loss rates, in-recovery retransmit loss (q̂), ACK
//      burst loss (P̂_a), the loss-indication mix (Q̂) and goodput.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trace/capture.h"
#include "util/time.h"

namespace hsr::analysis {

using net::SeqNo;
using util::Duration;
using util::TimePoint;

struct AnalysisConfig {
  // A re-send not preceded by an ACK arrival within this window is
  // timer-driven (the simulator cascades ACK-driven sends at the arrival
  // instant; a real capture needs a small tolerance).
  Duration ack_trigger_window = Duration::millis(2);
  // Duplicate-ACK threshold for fast-retransmit classification.
  unsigned dupack_threshold = 3;
};

// One timeout sequence: the recovery episode following an RTO (paper Fig. 2),
// possibly containing several consecutive timeouts with backoff.
struct TimeoutSequence {
  SeqNo seq = 0;                 // the timed-out segment
  TimePoint ca_end;              // last pre-timeout transmission of `seq` (CA phase end)
  TimePoint first_retx;          // first RTO retransmission
  TimePoint recovered;           // first ACK > seq arriving back at the sender
  bool recovered_observed = false;  // false if the trace ends mid-recovery
  unsigned num_timeouts = 0;     // RTO retransmissions of `seq` in the sequence
  unsigned retx_sent = 0;        // == num_timeouts (one packet per timeout)
  unsigned retx_lost = 0;        // how many of those retransmissions were lost
  bool spurious = false;         // the original copy of `seq` was delivered
  // Gap between the 1st and 2nd RTO retransmission (zero when the sequence
  // has a single timeout). Under exponential backoff this gap equals 2T,
  // giving an unbiased estimate of the base timer T.
  Duration backoff_gap;

  // Recovery-phase duration: end of the CA phase to the start of slow start.
  Duration duration() const { return recovered - ca_end; }
  double retx_loss_rate() const {
    return retx_sent == 0 ? 0.0
                          : static_cast<double>(retx_lost) / static_cast<double>(retx_sent);
  }
};

struct FlowAnalysis {
  // --- Loss rates -----------------------------------------------------------
  double data_loss_rate = 0.0;       // lifetime, all data transmissions
  // p̂_d: loss rate of FIRST transmissions only. The paper separates q (the
  // retransmit loss inside recoveries) from p_d, so retransmissions must not
  // be double-counted into the data-loss parameter fed to the models.
  double first_tx_loss_rate = 0.0;
  double ack_loss_rate = 0.0;        // lifetime, all ACK transmissions
  double recovery_retx_loss_rate = 0.0;  // q̂: retransmit loss inside recoveries

  // Loss-EVENT rates (PFTK's empirical convention: a burst counts once).
  // `all` counts every loss indication (fast retransmits + every timeout
  // sequence — what a Padhye-model user measures, since that model assumes
  // all timeouts stem from data loss); `data` excludes spurious timeout
  // sequences (those belong to P_a in the enhanced model).
  double loss_event_rate_all = 0.0;
  double loss_event_rate_data = 0.0;
  std::uint64_t first_transmissions = 0;

  // --- Timeout structure ----------------------------------------------------
  std::vector<TimeoutSequence> timeout_sequences;
  unsigned fast_retransmits = 0;
  unsigned loss_indications = 0;     // timeout sequences + fast retransmits
  double timeout_probability = 0.0;  // Q̂ = sequences / indications
  double spurious_fraction = 0.0;    // spurious sequences / sequences
  Duration mean_recovery_duration;   // over completed sequences
  // Total time spent inside timeout sequences (unrecovered tails included),
  // and its share of the flow's span. Flows dominated by one giant dead
  // zone (share >> 0) violate the steady-state assumption behind BOTH
  // throughput models and are excluded from Fig. 10-style evaluations.
  Duration total_recovery_time;
  double recovery_time_fraction = 0.0;
  // T̂: base retransmission timer. Estimated from backoff gaps (gap/2) when
  // any sequence has >= 2 timeouts; otherwise from first_retx - ca_end
  // (which overestimates T by up to one RTT of timer restarts).
  Duration mean_first_rto;

  // --- Round / window estimates ---------------------------------------------
  Duration mean_rtt;
  double mean_window_segments = 0.0;     // ŵ ≈ goodput × RTT
  double ack_burst_loss_probability = 0.0;  // P̂_a: rounds with every ACK lost
  // P̂_a calibrated from episodes: the P_a for which the model's CA-phase
  // termination mix (1-(1-P_a)^X_P spurious-timeout share of loss
  // indications) matches the observed mix. Robust to burst clustering,
  // which makes the per-round estimator overshoot.
  double ack_burst_loss_episode = 0.0;

  // --- Throughput ------------------------------------------------------------
  double goodput_pps = 0.0;          // unique segments delivered per second
  std::uint64_t unique_segments = 0;
  Duration span;

  bool has_timeouts() const { return !timeout_sequences.empty(); }
};

// Per-cause loss accounting over one captured flow, split by direction
// (data vs ACK). Works from Transmission::drop_cause alone, so it applies
// to archived captures with no live simulator state. `*_unattributed`
// counts transmissions that never arrived but carry no cause — packets
// still in flight at capture end, plus lost records from pre-cause-code
// archives whose drop column was '-'.
struct LossBreakdown {
  std::uint64_t data_sent = 0;
  std::uint64_t data_lost = 0;       // no arrival (attributed or not)
  std::uint64_t ack_sent = 0;
  std::uint64_t ack_lost = 0;
  std::array<std::uint64_t, net::kDropCategoryCount> data_by_category{};
  std::array<std::uint64_t, net::kDropCategoryCount> ack_by_category{};
  std::uint64_t data_unattributed = 0;
  std::uint64_t ack_unattributed = 0;
  std::uint64_t scripted_drops = 0;  // both directions, kScriptedFault

  std::uint64_t data_dropped_by(net::DropCategory c) const {
    return data_by_category[static_cast<std::size_t>(c)];
  }
  std::uint64_t ack_dropped_by(net::DropCategory c) const {
    return ack_by_category[static_cast<std::size_t>(c)];
  }
};

// Tallies every transmission's fate by drop cause.
LossBreakdown loss_breakdown(const trace::FlowCapture& capture);

// Runs the full §III methodology over one captured flow.
FlowAnalysis analyze_flow(const trace::FlowCapture& capture, AnalysisConfig config = {});

// --- Lower-level pieces (exposed for tests and ablations) --------------------

// Indices into capture.data.transmissions() of re-sends classified as
// timer-driven (RTO) retransmissions.
std::vector<std::size_t> find_rto_retransmissions(const trace::FlowCapture& capture,
                                                  AnalysisConfig config = {});

// Count of ACK-driven re-sends with >= dupack_threshold duplicate ACKs seen
// (fast retransmissions).
unsigned count_fast_retransmissions(const trace::FlowCapture& capture,
                                    AnalysisConfig config = {});

// Fraction of RTT-sized rounds in which at least one ACK was sent and every
// ACK sent was lost (the direct P_a estimator).
double estimate_ack_burst_loss(const trace::FlowCapture& capture, Duration rtt);

}  // namespace hsr::analysis
