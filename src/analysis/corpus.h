// Corpus-level aggregation: turns per-flow analyses into the distributions
// and headline statistics reported in §III (Figs. 3, 4, 6 and the prose
// numbers: recovery 5.05 s vs 0.65 s, 49.24 % spurious, 0.661 % vs 0.0718 %
// ACK loss, 27.26 % vs 0.7526 % loss rates).
#pragma once

#include <string>
#include <vector>

#include "analysis/flow_analysis.h"
#include "util/stats.h"

namespace hsr::analysis {

struct CorpusEntry {
  std::string provider;   // e.g. "China Mobile"
  bool high_speed = true; // false = stationary control
  FlowAnalysis flow;
};

class Corpus {
 public:
  void add(std::string provider, bool high_speed, FlowAnalysis flow);

  std::size_t size() const { return entries_.size(); }
  const std::vector<CorpusEntry>& entries() const { return entries_; }

  // --- Fig. 3: two kinds of data loss rates (high-speed flows) --------------
  util::EmpiricalCdf lifetime_data_loss_cdf(bool high_speed = true) const;
  // Per-flow q̂, restricted to flows that had at least one timeout.
  util::EmpiricalCdf recovery_loss_cdf(bool high_speed = true) const;

  // --- Fig. 4: ACK loss rate vs timeout probability (per flow) --------------
  // Pairs (ack_loss_rate, timeout_probability) for flows with >= 1 loss
  // indication.
  std::vector<std::pair<double, double>> ack_loss_vs_timeout(bool high_speed = true) const;

  // --- Fig. 6: CDF of ACK loss rates -----------------------------------------
  util::EmpiricalCdf ack_loss_cdf(bool high_speed) const;

  // --- Headline statistics ----------------------------------------------------
  struct Headline {
    double mean_recovery_s_highspeed = 0.0;   // paper: 5.05 s
    double mean_recovery_s_stationary = 0.0;  // paper: 0.65 s
    double spurious_timeout_share = 0.0;      // paper: 49.24 % (high-speed)
    double mean_ack_loss_highspeed = 0.0;     // paper: 0.661 %
    double mean_ack_loss_stationary = 0.0;    // paper: 0.0718 %
    double mean_data_loss_highspeed = 0.0;    // paper: 0.7526 %
    double mean_recovery_loss_highspeed = 0.0;  // paper: 27.26 %
    std::size_t flows_highspeed = 0;
    std::size_t flows_stationary = 0;
    std::size_t timeout_sequences_highspeed = 0;
  };
  Headline headline() const;

 private:
  std::vector<CorpusEntry> entries_;
};

}  // namespace hsr::analysis
