// Fairness and aggregate-retransmission figures over shared-bottleneck
// captures — the multi-flow modeling targets (per-flow goodput share, Jain
// index vs N, aggregate retransmission rate vs N) from the multi-flow TCP
// literature cited in PAPERS.md.
//
// Everything here is computed from FlowCaptures ALONE (the wireshark view),
// so the same figures come out of a live MultiFlowResult or an archived
// hsrtrace-b2 corpus.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "trace/capture.h"
#include "util/time.h"

namespace hsr::analysis {

using util::Duration;
using util::TimePoint;

// Jain's fairness index over non-negative values:
//   J = (sum x)^2 / (n * sum x^2),  J in [1/n, 1].
// 1.0 = perfectly equal shares; 1/n = one flow hogs everything. An empty or
// all-zero input reports 1.0 (nothing was shared unfairly).
double jain_index(const std::vector<double>& values);

// One flow's slice of a shared-bottleneck scenario.
struct FlowFairness {
  net::FlowId flow = 0;
  double goodput_pps = 0.0;     // distinct data segments delivered / duration
  double goodput_share = 0.0;   // fraction of the aggregate goodput
  std::uint64_t data_sent = 0;  // data transmissions on the wire
  std::uint64_t retransmissions = 0;  // wire transmissions flagged retx
  double retransmission_rate = 0.0;   // retransmissions / data_sent
};

struct FairnessReport {
  std::vector<FlowFairness> flows;  // capture order
  double jain = 1.0;                // Jain index over goodput shares
  double aggregate_goodput_pps = 0.0;
  std::uint64_t aggregate_data_sent = 0;
  std::uint64_t aggregate_retransmissions = 0;
  // The "aggregate TCP retransmission rate" figure: total retransmissions
  // over total data transmissions, across all flows of the scenario.
  double aggregate_retransmission_rate = 0.0;
};

// Builds the report for one scenario's captures. `duration` is the scenario
// length the goodputs are normalized by; zero uses the longest capture span
// (the archived-corpus case, where the spec is not at hand).
FairnessReport fairness_report(const std::vector<trace::FlowCapture>& captures,
                               Duration duration = Duration::zero());

// Per-flow share of data DELIVERIES whose arrival falls inside
// [begin, end) — the goodput-share-during-handoff-burst figure. Shares are
// fractions of the window's total deliveries; an empty window reports
// zero deliveries and zero shares all around.
struct WindowShare {
  net::FlowId flow = 0;
  std::uint64_t delivered = 0;
  double share = 0.0;
};
std::vector<WindowShare> delivered_shares(const std::vector<trace::FlowCapture>& captures,
                                          TimePoint begin, TimePoint end);

}  // namespace hsr::analysis
