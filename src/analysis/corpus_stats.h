// Merge-able online corpus statistics.
//
// The in-memory aggregation path (analysis::Corpus) keeps every FlowAnalysis
// alive until the end of a campaign — at 10^5-10^6 flows that is exactly the
// memory wall the streaming pipeline removes. CorpusStats is the O(1)-space
// replacement: each finished flow is reduced to a FlowStatsSample (a handful
// of doubles plus integer loss counters) in the worker, the capture is
// spilled to disk and freed, and the sample is absorbed into count / sum /
// min / max / M2 accumulators per metric plus exact integer loss-breakdown
// totals.
//
// Determinism contract: Welford updates are not associative in floating
// point, so absorb() must be called in flow-index order — then every
// accumulator sees the identical add sequence the in-memory path produces
// and headline() is BITWISE equal to Corpus::headline(), for any thread
// count (tests pin this). merge() (Chan's method) is provided for combining
// independently-built partial stats — e.g. stats files from separate
// campaign runs — where bit-exactness against the sequential path is not
// required; the integer counters merge exactly either way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/corpus.h"
#include "analysis/flow_analysis.h"
#include "util/fs.h"
#include "util/stats.h"
#include "util/status.h"

namespace hsr::analysis {

// Everything corpus aggregation needs from one flow, with the capture gone.
struct FlowStatsSample {
  bool high_speed = true;
  bool has_timeouts = false;
  double ack_loss_rate = 0.0;
  double data_loss_rate = 0.0;
  double first_tx_loss_rate = 0.0;
  double recovery_retx_loss_rate = 0.0;  // q̂ (meaningful when has_timeouts)
  double goodput_pps = 0.0;
  std::uint64_t bytes_captured = 0;

  // Per-timeout-sequence summary, in sequence order (order matters for the
  // bitwise-identical recovery-duration accumulator).
  struct SequenceSample {
    double duration_s = 0.0;
    bool spurious = false;
    bool recovered = false;
  };
  std::vector<SequenceSample> sequences;

  LossBreakdown breakdown;

  static FlowStatsSample from_flow(const FlowAnalysis& flow,
                                   const LossBreakdown& breakdown, bool high_speed,
                                   std::uint64_t bytes_captured);
};

class CorpusStats {
 public:
  // Folds one flow in. MUST be called in flow-index order for the
  // bitwise-identity contract with the in-memory path (see header comment).
  void absorb(const FlowStatsSample& sample);
  // Counts a quarantined flow (no metrics — the flow never completed).
  void absorb_quarantine();

  // Chan's parallel merge. Integer counters combine exactly; floating-point
  // moments combine to full precision but NOT bitwise-identically to a
  // sequential absorb of the same flows.
  void merge(const CorpusStats& other);

  // The §III headline block, computed from the accumulators alone. Bitwise
  // equal to Corpus::headline() when absorb() ran in entry order.
  Corpus::Headline headline() const;

  std::uint64_t flows() const { return flows_highspeed_ + flows_stationary_; }
  std::uint64_t flows_highspeed() const { return flows_highspeed_; }
  std::uint64_t flows_stationary() const { return flows_stationary_; }
  std::uint64_t quarantined() const { return quarantined_; }
  std::uint64_t bytes_captured() const { return bytes_captured_; }
  const LossBreakdown& loss_totals() const { return loss_totals_; }

  const util::RunningStats& recovery_duration_s(bool high_speed) const {
    return high_speed ? recovery_highspeed_ : recovery_stationary_;
  }
  const util::RunningStats& ack_loss(bool high_speed) const {
    return high_speed ? ack_loss_highspeed_ : ack_loss_stationary_;
  }
  const util::RunningStats& data_loss(bool high_speed) const {
    return high_speed ? data_loss_highspeed_ : data_loss_stationary_;
  }
  const util::RunningStats& first_tx_loss_highspeed() const {
    return first_tx_loss_highspeed_;
  }
  const util::RunningStats& recovery_loss_highspeed() const {
    return recovery_loss_highspeed_;
  }
  const util::RunningStats& goodput_pps(bool high_speed) const {
    return high_speed ? goodput_highspeed_ : goodput_stationary_;
  }

  // Deterministic text serialization ("hsrcorpusstats-v1"). Doubles are
  // written shortest-round-trip, so parse(to_text()) reproduces the
  // accumulators bitwise — the digest two corpus paths can be compared by.
  std::string to_text() const;
  [[nodiscard]] static util::StatusOr<CorpusStats> parse(const std::string& text);

 private:
  util::RunningStats recovery_highspeed_;     // s, per completed sequence
  util::RunningStats recovery_stationary_;    // s, per completed sequence
  util::RunningStats ack_loss_highspeed_;
  util::RunningStats ack_loss_stationary_;
  util::RunningStats data_loss_highspeed_;
  util::RunningStats data_loss_stationary_;
  util::RunningStats first_tx_loss_highspeed_;
  util::RunningStats recovery_loss_highspeed_;  // q̂, flows with timeouts
  util::RunningStats goodput_highspeed_;
  util::RunningStats goodput_stationary_;

  std::uint64_t flows_highspeed_ = 0;
  std::uint64_t flows_stationary_ = 0;
  std::uint64_t timeout_sequences_highspeed_ = 0;
  std::uint64_t spurious_sequences_highspeed_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t bytes_captured_ = 0;
  LossBreakdown loss_totals_;
};

// File wrappers around to_text()/parse(). Saving is atomic (write to
// `<path>.tmp`, fsync, then rename) through the util::Fs seam, matching
// trace_io::save_flow_capture; the seamless overload uses util::Fs::real().
[[nodiscard]] util::Status save_corpus_stats(util::Fs& fs, const std::string& path,
                                             const CorpusStats& stats);
[[nodiscard]] util::Status save_corpus_stats(const std::string& path,
                                             const CorpusStats& stats);
[[nodiscard]] util::StatusOr<CorpusStats> load_corpus_stats(const std::string& path);

}  // namespace hsr::analysis
