// trace_query — packet-fate queries over archived trace files.
//
// Answers the questions the paper's workflow answered with wireshark filters,
// from a capture file alone (no live simulator state). Trace arguments accept
// BOTH formats transparently: text archives ("hsrtrace-v2"/"-v1") and binary
// corpora ("hsrtrace-b2"/"-b1"); multi-flow corpora are addressed with --flow N.
//   summary <trace> [--flow N]   counts, loss rates, fault totals
//   why <trace> <packet-id> [--flow N]  the fate of one packet, cause-coded
//   losses <trace> [--flow N]    per-cause loss breakdown, data vs ACK
//   ratios <trace> [--flow N]    headline ratios: q-hat, ACK-burst-loss
//                                rounds, spurious fraction
//   ls <trace>                   one line per flow / quarantine record
//   verify <trace>               integrity scan: every frame decoded and (b2)
//                                CRC- and sequence-checked; the first bad
//                                frame is NAMED and the exit status raised
//   convert <in> <out> --to-binary|--to-text [--flow N]
//                                lossless format conversion
//   replay [options]             re-run an experiment from fault-plan files
//                                (bit-identical)
//   selftest                     end-to-end smoke test (ctest hook)
//
// replay options:
//   --down-plan <file>   fault plan for the data direction (optional)
//   --up-plan <file>     fault plan for the ACK direction (optional)
//   --duration <s>       simulated seconds (default 65)
//   --save <file>        write the capture archive ("hsrtrace-v2")
// The replay path is deliberately RNG-free: perfect organic channels plus
// deterministic scripted faults, so the same plan files always reproduce the
// same capture byte for byte. Plans with an "hsrfaultplan-v2" parameter
// block replay over THEIR archived link/TCP topology (downlink plan's block
// wins if both carry one); parameterless v1 plans fall back to the fixed
// EXPERIMENTS.md recipe config (10 Mbit/s, 20 ms one-way).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/flow_analysis.h"
#include "fault/fault.h"
#include "fault/plan_io.h"
#include "net/channel.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "trace/capture.h"
#include "trace/trace_binary.h"
#include "trace/trace_io.h"
#include "util/fs.h"
#include "util/time.h"

namespace {

using hsr::net::DropCategory;
using hsr::util::Duration;
using hsr::util::TimePoint;

int usage() {
  std::cerr
      << "usage: trace_query <command> [args]\n"
         "  summary <trace> [--flow N]  counts, loss rates, fault totals\n"
         "  why <trace> <packet-id> [--flow N]  fate of one packet\n"
         "  losses <trace> [--flow N]   per-cause loss breakdown (data vs ACK)\n"
         "  ratios <trace> [--flow N]   q-hat, ACK-burst rounds, spurious share\n"
         "  ls <trace>                  list flows / quarantines in a corpus\n"
         "  verify <trace>              integrity scan, names the first bad frame\n"
         "  convert <in> <out> --to-binary|--to-text [--flow N]\n"
         "  replay [--down-plan F] [--up-plan F] [--duration S] [--save F]\n"
         "  selftest                    end-to-end smoke test\n"
         "trace files may be text (hsrtrace-v2/v1) or binary (hsrtrace-b2/b1).\n";
  return 2;
}

// Reads flow `nth` from a trace in either format (text archives hold one).
hsr::util::StatusOr<hsr::trace::FlowCapture> load(const std::string& path,
                                                  std::uint64_t nth = 0) {
  return hsr::trace::load_flow_capture_any(path, nth);
}

// --- summary -----------------------------------------------------------------

void print_summary(const hsr::trace::FlowCapture& cap, std::ostream& os) {
  os << "flow " << cap.flow << '\n'
     << "  data: sent " << cap.data.sent_count() << ", lost "
     << cap.data.lost_count() << " (" << cap.data.loss_rate() * 100.0 << " %)\n"
     << "  acks: sent " << cap.acks.sent_count() << ", lost "
     << cap.acks.lost_count() << " (" << cap.acks.loss_rate() * 100.0 << " %)\n"
     << "  span " << cap.span().to_seconds() << " s, est. RTT "
     << cap.estimated_rtt().to_seconds() * 1e3 << " ms\n"
     << "  scripted faults fired: " << cap.faults.size() << '\n';
}

// --- why ---------------------------------------------------------------------

// The fault-audit label for a scripted drop, when the archive carries one.
std::string scripted_label(const hsr::trace::FlowCapture& cap, char direction,
                           std::uint64_t packet_id) {
  for (const auto& f : cap.faults) {
    if (f.direction == direction && f.packet_id == packet_id && f.action == 'X') {
      return f.label;
    }
  }
  return "";
}

void print_fate(const hsr::trace::FlowCapture& cap, char direction,
                const hsr::trace::Transmission& tx, std::ostream& os) {
  const char* what = direction == 'D' ? "data" : "ack";
  os << what << " packet " << tx.packet.id << " (seq " << tx.packet.seq
     << ", ack_next " << tx.packet.ack_next << ", retx " << tx.packet.retx_count
     << ") sent at " << tx.sent.to_seconds() << " s: ";
  if (tx.arrived) {
    os << "DELIVERED at " << tx.arrived->to_seconds() << " s (transit "
       << tx.transit().to_seconds() * 1e3 << " ms)\n";
    return;
  }
  if (!tx.drop_cause) {
    os << "no fate recorded (in flight at capture end)\n";
    return;
  }
  os << "LOST: " << hsr::net::drop_category_name(tx.drop_cause->category);
  if (tx.drop_cause->has_component()) {
    os << ", channel component " << tx.drop_cause->component_path_string();
  }
  if (tx.drop_cause->directive >= 0) {
    os << ", fault directive " << tx.drop_cause->directive;
    const std::string label = scripted_label(cap, direction, tx.packet.id);
    if (!label.empty()) os << " (" << label << ")";
  }
  os << '\n';
}

int run_why(const hsr::trace::FlowCapture& cap, std::uint64_t packet_id,
            std::ostream& os) {
  bool found = false;
  for (const auto& tx : cap.data.transmissions()) {
    if (tx.packet.id == packet_id) {
      print_fate(cap, 'D', tx, os);
      found = true;
    }
  }
  for (const auto& tx : cap.acks.transmissions()) {
    if (tx.packet.id == packet_id) {
      print_fate(cap, 'A', tx, os);
      found = true;
    }
  }
  if (!found) {
    os << "packet " << packet_id << " not in capture\n";
    return 1;
  }
  return 0;
}

// --- losses ------------------------------------------------------------------

void print_losses(const hsr::trace::FlowCapture& cap, std::ostream& os) {
  const hsr::analysis::LossBreakdown b = hsr::analysis::loss_breakdown(cap);
  os << "data: " << b.data_lost << " of " << b.data_sent << " lost\n";
  for (std::size_t c = 0; c < hsr::net::kDropCategoryCount; ++c) {
    if (b.data_by_category[c] == 0) continue;
    os << "  " << hsr::net::drop_category_name(static_cast<DropCategory>(c))
       << ": " << b.data_by_category[c] << '\n';
  }
  if (b.data_unattributed > 0) {
    os << "  unattributed/in-flight: " << b.data_unattributed << '\n';
  }
  os << "acks: " << b.ack_lost << " of " << b.ack_sent << " lost\n";
  for (std::size_t c = 0; c < hsr::net::kDropCategoryCount; ++c) {
    if (b.ack_by_category[c] == 0) continue;
    os << "  " << hsr::net::drop_category_name(static_cast<DropCategory>(c))
       << ": " << b.ack_by_category[c] << '\n';
  }
  if (b.ack_unattributed > 0) {
    os << "  unattributed/in-flight: " << b.ack_unattributed << '\n';
  }
  os << "scripted drops (both directions): " << b.scripted_drops << '\n';
}

// --- ratios ------------------------------------------------------------------

void print_ratios(const hsr::trace::FlowCapture& cap, std::ostream& os) {
  const hsr::analysis::FlowAnalysis fa = hsr::analysis::analyze_flow(cap);
  os << "timeout sequences: " << fa.timeout_sequences.size()
     << ", fast retransmits: " << fa.fast_retransmits << '\n'
     << "q-hat (in-recovery retransmit loss): " << fa.recovery_retx_loss_rate
     << '\n'
     << "P_a-hat (rounds with every ACK lost): " << fa.ack_burst_loss_probability
     << '\n'
     << "spurious timeout fraction: " << fa.spurious_fraction << '\n'
     << "mean recovery duration: " << fa.mean_recovery_duration.to_seconds()
     << " s\n";
}

// --- ls ----------------------------------------------------------------------

int run_ls(const std::string& path, std::ostream& os) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::cerr << "cannot open: " << path << '\n';
    return 1;
  }
  if (!hsr::trace::sniff_binary_trace(f)) {
    const auto cap = hsr::trace::load_flow_capture(path);
    if (!cap.is_ok()) {
      std::cerr << cap.status().to_string() << '\n';
      return 1;
    }
    os << "text archive, 1 flow\n"
       << "flow " << cap.value().flow << "  data " << cap.value().data.sent_count()
       << "  acks " << cap.value().acks.sent_count() << "  faults "
       << cap.value().faults.size() << '\n';
    return 0;
  }

  hsr::trace::BinaryTraceReader reader(f);
  const auto opened = reader.open();
  if (!opened.is_ok()) {
    std::cerr << opened.to_string() << '\n';
    return 1;
  }
  if (reader.declared_flow_count() == hsr::trace::kUnknownFlowCount) {
    os << "binary corpus, streamed (flow count unknown)\n";
  } else {
    os << "binary corpus, " << reader.declared_flow_count() << " flows declared\n";
  }
  hsr::trace::FlowCapture flow;
  hsr::trace::QuarantineRecord quarantine;
  std::uint64_t quarantines = 0;
  bool torn = false;
  for (;;) {
    const auto frame = reader.next(&flow, &quarantine);
    if (!frame.is_ok()) {
      std::cerr << frame.status().to_string() << '\n';
      return 1;
    }
    if (frame.value() == hsr::trace::BinaryTraceReader::Frame::kEnd) break;
    if (frame.value() == hsr::trace::BinaryTraceReader::Frame::kTorn) {
      torn = true;
      break;
    }
    if (frame.value() == hsr::trace::BinaryTraceReader::Frame::kQuarantine) {
      ++quarantines;
      os << "quarantined flow " << quarantine.flow_index << " ("
         << quarantine.provider << ", " << quarantine.campaign
         << "): " << quarantine.message << '\n';
      continue;
    }
    os << "flow " << flow.flow << "  data " << flow.data.sent_count() << "  acks "
       << flow.acks.sent_count() << "  faults " << flow.faults.size() << '\n';
  }
  os << reader.flows_read() << " flow(s), " << quarantines << " quarantined\n";
  if (torn) os << "WARNING: torn trailing frame dropped (truncated archive)\n";
  return 0;
}

// --- verify ------------------------------------------------------------------

int run_verify(const std::string& path, std::ostream& os) {
  const auto report = hsr::trace::verify_trace_file(path);
  if (!report.is_ok()) {
    std::cerr << "corrupt: " << report.status().to_string() << '\n';
    return 1;
  }
  const auto& r = report.value();
  if (r.version == 0) {
    os << "text archive: 1 flow\n";
  } else {
    os << "hsrtrace-b" << r.version << ": " << r.frames << " frames, " << r.flows
       << " flows, " << r.quarantines << " quarantined, " << r.other_frames
       << " other\n";
    if (r.declared_flow_count != hsr::trace::kUnknownFlowCount) {
      os << "declared flows " << r.declared_flow_count << '\n';
    }
  }
  if (r.torn_tail) os << "torn tail: truncated final frame dropped\n";
  os << (r.intact ? "intact\n" : "NOT intact\n");
  return r.intact ? 0 : 1;
}

// --- convert -------------------------------------------------------------------

int run_convert(const std::string& in_path, const std::string& out_path,
                bool to_binary, std::uint64_t nth, std::ostream& os) {
  const auto cap = load(in_path, nth);
  if (!cap.is_ok()) {
    std::cerr << cap.status().to_string() << '\n';
    return 1;
  }
  const auto saved = to_binary
                         ? hsr::trace::save_flow_capture_binary(out_path, cap.value())
                         : hsr::trace::save_flow_capture(out_path, cap.value());
  if (!saved.is_ok()) {
    std::cerr << saved.to_string() << '\n';
    return 1;
  }
  os << "converted " << in_path << " -> " << out_path << " ("
     << (to_binary ? "hsrtrace-b2" : "hsrtrace-v2") << ")\n";
  return 0;
}

// --- replay ------------------------------------------------------------------

struct ReplayOptions {
  std::string down_plan_path;
  std::string up_plan_path;
  double duration_s = 65.0;
  std::string save_path;
};

// Re-runs an archived experiment from its plan files: perfect organic
// channels decorated with the parsed FaultPlans. No RNG anywhere, so the
// capture depends only on the plans, the duration, and the parameter block.
hsr::trace::FlowCapture replay(
    const hsr::fault::FaultPlan& down, const hsr::fault::FaultPlan& up,
    double duration_s,
    const std::optional<hsr::fault::ReplayParams>& params = std::nullopt) {
  hsr::net::reset_packet_ids();
  hsr::sim::Simulator sim;
  hsr::trace::FlowCapture capture;
  capture.flow = 1;

  hsr::tcp::ConnectionConfig cfg;
  if (params.has_value()) {
    // v2 plans carry the archived experiment's own topology.
    cfg.downlink.rate_bps = params->down_rate_bps;
    cfg.downlink.prop_delay = Duration::nanos(params->down_delay_ns);
    cfg.downlink.queue_capacity = static_cast<std::size_t>(params->down_queue);
    cfg.uplink.rate_bps = params->up_rate_bps;
    cfg.uplink.prop_delay = Duration::nanos(params->up_delay_ns);
    cfg.uplink.queue_capacity = static_cast<std::size_t>(params->up_queue);
    hsr::tcp::TcpOptions opts = params->tcp;
    // A zero min_rto means the plan predates recording it — keep the
    // stack's own default rather than clamping RTO to zero.
    if (opts.min_rto.ns() <= 0) opts.min_rto = cfg.tcp.rto.min_rto;
    cfg.tcp = hsr::tcp::make_tcp_config(opts, params->receiver_window);
  } else {
    // The EXPERIMENTS.md scripted-fault path: 10 Mbit/s, 20 ms one-way.
    cfg.downlink.rate_bps = 10e6;
    cfg.downlink.prop_delay = Duration::millis(20);
    cfg.uplink.rate_bps = 10e6;
    cfg.uplink.prop_delay = Duration::millis(20);
  }

  std::unique_ptr<hsr::net::ChannelModel> down_channel =
      std::make_unique<hsr::net::PerfectChannel>();
  std::unique_ptr<hsr::net::ChannelModel> up_channel =
      std::make_unique<hsr::net::PerfectChannel>();
  if (!down.empty()) {
    auto inj = std::make_unique<hsr::fault::FaultInjector>(down, std::move(down_channel));
    inj->set_audit(&capture.faults, 'D');
    down_channel = std::move(inj);
  }
  if (!up.empty()) {
    auto inj = std::make_unique<hsr::fault::FaultInjector>(up, std::move(up_channel));
    inj->set_audit(&capture.faults, 'A');
    up_channel = std::move(inj);
  }

  hsr::tcp::Connection conn(sim, 1, cfg, std::move(down_channel),
                            std::move(up_channel));
  conn.set_downlink_tap(&capture.data);
  conn.set_uplink_tap(&capture.acks);
  conn.start();
  sim.run_until(TimePoint::from_seconds(duration_s));
  return capture;
}

int run_replay(const ReplayOptions& opts, std::ostream& os) {
  hsr::fault::FaultPlan down;
  hsr::fault::FaultPlan up;
  std::optional<hsr::fault::ReplayParams> params;
  if (!opts.down_plan_path.empty()) {
    auto parsed = hsr::fault::load_plan_file(opts.down_plan_path);
    if (!parsed.is_ok()) {
      std::cerr << "down-plan: " << parsed.status().to_string() << '\n';
      return 1;
    }
    down = std::move(parsed.value().plan);
    params = parsed.value().params;
  }
  if (!opts.up_plan_path.empty()) {
    auto parsed = hsr::fault::load_plan_file(opts.up_plan_path);
    if (!parsed.is_ok()) {
      std::cerr << "up-plan: " << parsed.status().to_string() << '\n';
      return 1;
    }
    up = std::move(parsed.value().plan);
    // The downlink plan's parameter block wins when both carry one.
    if (!params.has_value()) params = parsed.value().params;
  }
  if (down.empty() && up.empty()) {
    std::cerr << "replay: need --down-plan and/or --up-plan\n";
    return 2;
  }
  if (params.has_value()) {
    os << "replaying with archived v2 parameters\n";
  }

  const hsr::trace::FlowCapture capture = replay(down, up, opts.duration_s, params);
  if (!opts.save_path.empty()) {
    const auto saved = hsr::trace::save_flow_capture(opts.save_path, capture);
    if (!saved.is_ok()) {
      std::cerr << saved.to_string() << '\n';
      return 1;
    }
    os << "saved " << opts.save_path << '\n';
  }
  print_summary(capture, os);
  print_ratios(capture, os);
  return 0;
}

// --- selftest ----------------------------------------------------------------

// End-to-end smoke: build a scripted plan, round-trip it through the text
// format, replay it twice (byte-identical captures), round-trip the capture
// through trace_io, and run every query over the result. Exercises the whole
// observability surface with no input files.
int run_selftest() {
  using hsr::fault::FaultPlan;

  FaultPlan down;
  down.blackout(TimePoint::from_seconds(2.0), TimePoint::from_seconds(2.25))
      .drop_retransmissions(1);

  // Plan text round-trip.
  const std::string text = down.to_text();
  const auto reparsed = FaultPlan::parse(text);
  if (!reparsed.is_ok() || !(reparsed.value() == down)) {
    std::cerr << "selftest: plan text round-trip failed\n";
    return 1;
  }

  // Replay determinism: same plans, byte-identical serialized captures.
  const hsr::trace::FlowCapture a = replay(reparsed.value(), FaultPlan{}, 10.0);
  const hsr::trace::FlowCapture b = replay(down, FaultPlan{}, 10.0);
  std::ostringstream sa;
  std::ostringstream sb;
  hsr::trace::write_flow_capture(sa, a);
  hsr::trace::write_flow_capture(sb, b);
  if (sa.str() != sb.str() || sa.str().empty()) {
    std::cerr << "selftest: replay is not byte-identical\n";
    return 1;
  }

  // Trace round-trip, then the queries over the reloaded capture.
  std::istringstream in(sa.str());
  const auto reloaded = hsr::trace::read_flow_capture(in);
  if (!reloaded.is_ok()) {
    std::cerr << "selftest: trace round-trip failed: "
              << reloaded.status().to_string() << '\n';
    return 1;
  }
  const hsr::trace::FlowCapture& cap = reloaded.value();

  // Every lost transmission must carry a non-unknown cause.
  const hsr::analysis::LossBreakdown lb = hsr::analysis::loss_breakdown(cap);
  if (lb.data_lost == 0 || lb.scripted_drops == 0) {
    std::cerr << "selftest: scripted blackout produced no attributed losses\n";
    return 1;
  }
  if (lb.data_by_category[static_cast<std::size_t>(DropCategory::kUnknown)] != 0 ||
      lb.ack_by_category[static_cast<std::size_t>(DropCategory::kUnknown)] != 0) {
    std::cerr << "selftest: lost packet with unknown cause\n";
    return 1;
  }

  // `why` must answer for a scripted casualty.
  std::uint64_t casualty = 0;
  for (const auto& tx : cap.data.transmissions()) {
    if (tx.lost() && tx.drop_cause && tx.drop_cause->is_scripted()) {
      casualty = tx.packet.id;
      break;
    }
  }
  std::ostringstream sink;
  if (casualty == 0 || run_why(cap, casualty, sink) != 0 ||
      sink.str().find("scripted-fault") == std::string::npos) {
    std::cerr << "selftest: 'why' did not attribute the scripted casualty\n";
    return 1;
  }
  print_summary(cap, sink);
  print_losses(cap, sink);
  print_ratios(cap, sink);
  if (sink.str().find("q-hat") == std::string::npos) {
    std::cerr << "selftest: ratios output incomplete\n";
    return 1;
  }

  // Binary round-trip: the hsrtrace-b2 reader must rebuild a capture whose
  // text serialization is byte-identical to the original's.
  std::ostringstream bin;
  hsr::trace::write_binary_trace_header(bin, 1);
  hsr::trace::write_flow_frame(bin, cap, 0);
  {
    std::istringstream bin_in(bin.str());
    const auto corpus = hsr::trace::read_binary_corpus(bin_in);
    if (!corpus.is_ok() || corpus.value().flows.size() != 1 ||
        corpus.value().torn_tail) {
      std::cerr << "selftest: binary corpus read failed\n";
      return 1;
    }
    std::ostringstream text_of_binary;
    hsr::trace::write_flow_capture(text_of_binary, corpus.value().flows[0]);
    if (text_of_binary.str() != sa.str()) {
      std::cerr << "selftest: binary->text round-trip not byte-identical\n";
      return 1;
    }
    if (static_cast<double>(sa.str().size()) <
        4.0 * static_cast<double>(bin.str().size())) {
      std::cerr << "selftest: binary format is not 4x smaller than text ("
                << bin.str().size() << " vs " << sa.str().size() << " bytes)\n";
      return 1;
    }
  }

  // Torn-tail tolerance: cutting the final frame short must drop it
  // gracefully, not error.
  {
    const std::string torn_bytes = bin.str().substr(0, bin.str().size() - 7);
    std::istringstream torn_in(torn_bytes);
    const auto torn = hsr::trace::read_binary_corpus(torn_in);
    if (!torn.is_ok() || !torn.value().torn_tail || !torn.value().flows.empty()) {
      std::cerr << "selftest: torn binary tail not tolerated\n";
      return 1;
    }
  }

  // v2 integrity: flipping one payload byte must be detected, named, and
  // attributed to the right frame — not silently decoded.
  {
    std::string corrupt = bin.str();
    corrupt[corrupt.size() - 3] ^= 0x01;
    std::istringstream corrupt_in(corrupt);
    const auto bad = hsr::trace::read_binary_corpus(corrupt_in);
    if (bad.is_ok() ||
        bad.status().message().find("crc32c mismatch") == std::string::npos ||
        bad.status().message().find("frame 0") == std::string::npos) {
      std::cerr << "selftest: corrupted v2 frame not named\n";
      return 1;
    }
  }

  // Legacy b1 archives must stay readable, losslessly.
  {
    std::ostringstream b1;
    hsr::trace::write_binary_trace_header(b1, 1, 1);
    hsr::trace::write_flow_frame(b1, cap, 0, 1);
    std::istringstream b1_in(b1.str());
    const auto legacy = hsr::trace::read_binary_corpus(b1_in);
    if (!legacy.is_ok() || legacy.value().flows.size() != 1) {
      std::cerr << "selftest: hsrtrace-b1 archive no longer readable\n";
      return 1;
    }
    std::ostringstream text_of_b1;
    hsr::trace::write_flow_capture(text_of_b1, legacy.value().flows[0]);
    if (text_of_b1.str() != sa.str()) {
      std::cerr << "selftest: b1 round-trip not byte-identical\n";
      return 1;
    }
  }

  // The verify scan end to end: an intact archive passes, a corrupted copy
  // fails naming the bad frame. Uses a scratch file in the working directory
  // (ctest runs in the build tree).
  {
    const std::string scratch = "trace_query_selftest_scratch.hsrb";
    auto& fs = hsr::util::Fs::real();
    if (!hsr::trace::save_flow_capture_binary(fs, scratch, cap).is_ok()) {
      std::cerr << "selftest: scratch binary save failed\n";
      return 1;
    }
    const auto good = hsr::trace::verify_trace_file(scratch);
    if (!good.is_ok() || !good.value().intact || good.value().flows != 1) {
      std::cerr << "selftest: verify rejected an intact archive\n";
      return 1;
    }
    std::ifstream scratch_in(scratch, std::ios::binary);
    std::ostringstream scratch_bytes;
    scratch_bytes << scratch_in.rdbuf();
    std::string mangled = scratch_bytes.str();
    mangled[mangled.size() / 2] ^= 0x10;
    if (!hsr::util::write_file_atomic(fs, scratch, mangled).is_ok()) {
      std::cerr << "selftest: scratch rewrite failed\n";
      return 1;
    }
    const auto bad = hsr::trace::verify_trace_file(scratch);
    if (bad.is_ok() ||
        bad.status().message().find("frame") == std::string::npos) {
      std::cerr << "selftest: verify did not name the corrupted frame\n";
      return 1;
    }
    (void)fs.remove_file(scratch);
  }

  // v2 plan files: the parameter block must round-trip and steer the replay.
  {
    hsr::fault::PlanFile file;
    file.plan = down;
    hsr::fault::ReplayParams params;
    params.down_rate_bps = 2e6;
    params.down_delay_ns = Duration::millis(20).ns();
    params.up_rate_bps = 2e6;
    params.up_delay_ns = Duration::millis(20).ns();
    file.params = params;
    std::ostringstream plan_os;
    hsr::fault::write_plan_file(plan_os, file);
    std::istringstream plan_is(plan_os.str());
    const auto reread = hsr::fault::read_plan_file(plan_is);
    if (!reread.is_ok() || !reread.value().params.has_value() ||
        !(reread.value().params.value() == params) ||
        !(reread.value().plan == down)) {
      std::cerr << "selftest: v2 plan round-trip failed\n";
      return 1;
    }
    std::istringstream plan_is2(plan_os.str());
    if (!hsr::fault::read_fault_plan(plan_is2).is_ok()) {
      std::cerr << "selftest: legacy reader rejected a v2 plan\n";
      return 1;
    }
    const hsr::trace::FlowCapture slow = replay(down, FaultPlan{}, 10.0, params);
    std::ostringstream slow_text;
    hsr::trace::write_flow_capture(slow_text, slow);
    if (slow_text.str() == sa.str()) {
      std::cerr << "selftest: v2 parameters did not change the replay\n";
      return 1;
    }
  }

  std::cout << "trace_query selftest ok (" << cap.data.sent_count()
            << " data transmissions, " << lb.scripted_drops
            << " scripted drops)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "selftest") return run_selftest();

  if (cmd == "replay") {
    ReplayOptions opts;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        return (i + 1 < argc) ? argv[++i] : nullptr;
      };
      if (arg == "--down-plan") {
        const char* v = next();
        if (v == nullptr) return usage();
        opts.down_plan_path = v;
      } else if (arg == "--up-plan") {
        const char* v = next();
        if (v == nullptr) return usage();
        opts.up_plan_path = v;
      } else if (arg == "--duration") {
        const char* v = next();
        if (v == nullptr) return usage();
        opts.duration_s = std::atof(v);
        if (opts.duration_s <= 0.0) {
          std::cerr << "replay: bad --duration '" << v << "'\n";
          return 2;
        }
      } else if (arg == "--save") {
        const char* v = next();
        if (v == nullptr) return usage();
        opts.save_path = v;
      } else {
        std::cerr << "replay: unknown option '" << arg << "'\n";
        return usage();
      }
    }
    return run_replay(opts, std::cout);
  }

  if (argc < 3) return usage();

  if (cmd == "ls") return run_ls(argv[2], std::cout);

  if (cmd == "verify") return run_verify(argv[2], std::cout);

  if (cmd == "convert") {
    if (argc < 5) return usage();
    const std::string in_path = argv[2];
    const std::string out_path = argv[3];
    bool to_binary = false;
    bool have_direction = false;
    std::uint64_t nth = 0;
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--to-binary") {
        to_binary = true;
        have_direction = true;
      } else if (arg == "--to-text") {
        to_binary = false;
        have_direction = true;
      } else if (arg == "--flow" && i + 1 < argc) {
        char* end = nullptr;
        nth = std::strtoull(argv[++i], &end, 10);
        if (end == argv[i] || *end != '\0') {
          std::cerr << "convert: bad --flow '" << argv[i] << "'\n";
          return 2;
        }
      } else {
        std::cerr << "convert: unknown option '" << arg << "'\n";
        return usage();
      }
    }
    if (!have_direction) {
      std::cerr << "convert: need --to-binary or --to-text\n";
      return 2;
    }
    return run_convert(in_path, out_path, to_binary, nth, std::cout);
  }

  // The query commands share "<trace> [args] [--flow N]" argument handling.
  std::uint64_t nth = 0;
  std::vector<std::string> positional;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--flow" && i + 1 < argc) {
      char* end = nullptr;
      nth = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::cerr << cmd << ": bad --flow '" << argv[i] << "'\n";
        return 2;
      }
    } else {
      positional.push_back(arg);
    }
  }

  const auto cap = load(argv[2], nth);
  if (!cap.is_ok()) {
    std::cerr << cap.status().to_string() << '\n';
    return 1;
  }

  if (cmd == "summary" && positional.empty()) {
    print_summary(cap.value(), std::cout);
    return 0;
  }
  if (cmd == "why") {
    if (positional.size() != 1) return usage();
    char* end = nullptr;
    const std::uint64_t id = std::strtoull(positional[0].c_str(), &end, 10);
    if (end == positional[0].c_str() || *end != '\0') {
      std::cerr << "why: bad packet id '" << positional[0] << "'\n";
      return 2;
    }
    return run_why(cap.value(), id, std::cout);
  }
  if (cmd == "losses" && positional.empty()) {
    print_losses(cap.value(), std::cout);
    return 0;
  }
  if (cmd == "ratios" && positional.empty()) {
    print_ratios(cap.value(), std::cout);
    return 0;
  }
  return usage();
}
