// trace_query — packet-fate queries over archived trace files.
//
// Answers the questions the paper's workflow answered with wireshark filters,
// from a capture file alone (no live simulator state):
//   summary <trace>            counts, loss rates, fault totals
//   why <trace> <packet-id>    the fate of one packet, cause-coded
//   losses <trace>             per-cause loss breakdown, data vs ACK
//   ratios <trace>             headline ratios: q-hat, ACK-burst-loss rounds,
//                              spurious fraction
//   replay [options]           re-run an experiment from fault-plan files
//                              over perfect channels (bit-identical)
//   selftest                   end-to-end smoke test (ctest hook)
//
// replay options:
//   --down-plan <file>   fault plan for the data direction (optional)
//   --up-plan <file>     fault plan for the ACK direction (optional)
//   --duration <s>       simulated seconds (default 65)
//   --save <file>        write the capture archive ("hsrtrace-v2")
// The replay path is deliberately RNG-free: perfect organic channels plus
// deterministic scripted faults, so the same plan files always reproduce the
// same capture byte for byte.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/flow_analysis.h"
#include "fault/fault.h"
#include "fault/plan_io.h"
#include "net/channel.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "trace/capture.h"
#include "trace/trace_io.h"
#include "util/time.h"

namespace {

using hsr::net::DropCategory;
using hsr::util::Duration;
using hsr::util::TimePoint;

int usage() {
  std::cerr
      << "usage: trace_query <command> [args]\n"
         "  summary <trace>          counts, loss rates, fault totals\n"
         "  why <trace> <packet-id>  fate of one packet, cause-coded\n"
         "  losses <trace>           per-cause loss breakdown (data vs ACK)\n"
         "  ratios <trace>           q-hat, ACK-burst rounds, spurious share\n"
         "  replay [--down-plan F] [--up-plan F] [--duration S] [--save F]\n"
         "  selftest                 end-to-end smoke test\n";
  return 2;
}

hsr::util::StatusOr<hsr::trace::FlowCapture> load(const std::string& path) {
  return hsr::trace::load_flow_capture(path);
}

// --- summary -----------------------------------------------------------------

void print_summary(const hsr::trace::FlowCapture& cap, std::ostream& os) {
  os << "flow " << cap.flow << '\n'
     << "  data: sent " << cap.data.sent_count() << ", lost "
     << cap.data.lost_count() << " (" << cap.data.loss_rate() * 100.0 << " %)\n"
     << "  acks: sent " << cap.acks.sent_count() << ", lost "
     << cap.acks.lost_count() << " (" << cap.acks.loss_rate() * 100.0 << " %)\n"
     << "  span " << cap.span().to_seconds() << " s, est. RTT "
     << cap.estimated_rtt().to_seconds() * 1e3 << " ms\n"
     << "  scripted faults fired: " << cap.faults.size() << '\n';
}

// --- why ---------------------------------------------------------------------

// The fault-audit label for a scripted drop, when the archive carries one.
std::string scripted_label(const hsr::trace::FlowCapture& cap, char direction,
                           std::uint64_t packet_id) {
  for (const auto& f : cap.faults) {
    if (f.direction == direction && f.packet_id == packet_id && f.action == 'X') {
      return f.label;
    }
  }
  return "";
}

void print_fate(const hsr::trace::FlowCapture& cap, char direction,
                const hsr::trace::Transmission& tx, std::ostream& os) {
  const char* what = direction == 'D' ? "data" : "ack";
  os << what << " packet " << tx.packet.id << " (seq " << tx.packet.seq
     << ", ack_next " << tx.packet.ack_next << ", retx " << tx.packet.retx_count
     << ") sent at " << tx.sent.to_seconds() << " s: ";
  if (tx.arrived) {
    os << "DELIVERED at " << tx.arrived->to_seconds() << " s (transit "
       << tx.transit().to_seconds() * 1e3 << " ms)\n";
    return;
  }
  if (!tx.drop_cause) {
    os << "no fate recorded (in flight at capture end)\n";
    return;
  }
  os << "LOST: " << hsr::net::drop_category_name(tx.drop_cause->category);
  if (tx.drop_cause->has_component()) {
    os << ", channel component " << tx.drop_cause->component_path_string();
  }
  if (tx.drop_cause->directive >= 0) {
    os << ", fault directive " << tx.drop_cause->directive;
    const std::string label = scripted_label(cap, direction, tx.packet.id);
    if (!label.empty()) os << " (" << label << ")";
  }
  os << '\n';
}

int run_why(const hsr::trace::FlowCapture& cap, std::uint64_t packet_id,
            std::ostream& os) {
  bool found = false;
  for (const auto& tx : cap.data.transmissions()) {
    if (tx.packet.id == packet_id) {
      print_fate(cap, 'D', tx, os);
      found = true;
    }
  }
  for (const auto& tx : cap.acks.transmissions()) {
    if (tx.packet.id == packet_id) {
      print_fate(cap, 'A', tx, os);
      found = true;
    }
  }
  if (!found) {
    os << "packet " << packet_id << " not in capture\n";
    return 1;
  }
  return 0;
}

// --- losses ------------------------------------------------------------------

void print_losses(const hsr::trace::FlowCapture& cap, std::ostream& os) {
  const hsr::analysis::LossBreakdown b = hsr::analysis::loss_breakdown(cap);
  os << "data: " << b.data_lost << " of " << b.data_sent << " lost\n";
  for (std::size_t c = 0; c < hsr::net::kDropCategoryCount; ++c) {
    if (b.data_by_category[c] == 0) continue;
    os << "  " << hsr::net::drop_category_name(static_cast<DropCategory>(c))
       << ": " << b.data_by_category[c] << '\n';
  }
  if (b.data_unattributed > 0) {
    os << "  unattributed/in-flight: " << b.data_unattributed << '\n';
  }
  os << "acks: " << b.ack_lost << " of " << b.ack_sent << " lost\n";
  for (std::size_t c = 0; c < hsr::net::kDropCategoryCount; ++c) {
    if (b.ack_by_category[c] == 0) continue;
    os << "  " << hsr::net::drop_category_name(static_cast<DropCategory>(c))
       << ": " << b.ack_by_category[c] << '\n';
  }
  if (b.ack_unattributed > 0) {
    os << "  unattributed/in-flight: " << b.ack_unattributed << '\n';
  }
  os << "scripted drops (both directions): " << b.scripted_drops << '\n';
}

// --- ratios ------------------------------------------------------------------

void print_ratios(const hsr::trace::FlowCapture& cap, std::ostream& os) {
  const hsr::analysis::FlowAnalysis fa = hsr::analysis::analyze_flow(cap);
  os << "timeout sequences: " << fa.timeout_sequences.size()
     << ", fast retransmits: " << fa.fast_retransmits << '\n'
     << "q-hat (in-recovery retransmit loss): " << fa.recovery_retx_loss_rate
     << '\n'
     << "P_a-hat (rounds with every ACK lost): " << fa.ack_burst_loss_probability
     << '\n'
     << "spurious timeout fraction: " << fa.spurious_fraction << '\n'
     << "mean recovery duration: " << fa.mean_recovery_duration.to_seconds()
     << " s\n";
}

// --- replay ------------------------------------------------------------------

struct ReplayOptions {
  std::string down_plan_path;
  std::string up_plan_path;
  double duration_s = 65.0;
  std::string save_path;
};

// Re-runs an archived experiment from its plan files: perfect organic
// channels decorated with the parsed FaultPlans. No RNG anywhere, so the
// capture depends only on the plans and the duration.
hsr::trace::FlowCapture replay(const hsr::fault::FaultPlan& down,
                               const hsr::fault::FaultPlan& up,
                               double duration_s) {
  hsr::net::reset_packet_ids();
  hsr::sim::Simulator sim;
  hsr::trace::FlowCapture capture;
  capture.flow = 1;

  // The EXPERIMENTS.md scripted-fault path: 10 Mbit/s, 20 ms one-way.
  hsr::tcp::ConnectionConfig cfg;
  cfg.downlink.rate_bps = 10e6;
  cfg.downlink.prop_delay = Duration::millis(20);
  cfg.uplink.rate_bps = 10e6;
  cfg.uplink.prop_delay = Duration::millis(20);

  std::unique_ptr<hsr::net::ChannelModel> down_channel =
      std::make_unique<hsr::net::PerfectChannel>();
  std::unique_ptr<hsr::net::ChannelModel> up_channel =
      std::make_unique<hsr::net::PerfectChannel>();
  if (!down.empty()) {
    auto inj = std::make_unique<hsr::fault::FaultInjector>(down, std::move(down_channel));
    inj->set_audit(&capture.faults, 'D');
    down_channel = std::move(inj);
  }
  if (!up.empty()) {
    auto inj = std::make_unique<hsr::fault::FaultInjector>(up, std::move(up_channel));
    inj->set_audit(&capture.faults, 'A');
    up_channel = std::move(inj);
  }

  hsr::tcp::Connection conn(sim, 1, cfg, std::move(down_channel),
                            std::move(up_channel));
  conn.set_downlink_tap(&capture.data);
  conn.set_uplink_tap(&capture.acks);
  conn.start();
  sim.run_until(TimePoint::from_seconds(duration_s));
  return capture;
}

int run_replay(const ReplayOptions& opts, std::ostream& os) {
  hsr::fault::FaultPlan down;
  hsr::fault::FaultPlan up;
  if (!opts.down_plan_path.empty()) {
    auto parsed = hsr::fault::load_fault_plan(opts.down_plan_path);
    if (!parsed.is_ok()) {
      std::cerr << "down-plan: " << parsed.status().to_string() << '\n';
      return 1;
    }
    down = parsed.value();
  }
  if (!opts.up_plan_path.empty()) {
    auto parsed = hsr::fault::load_fault_plan(opts.up_plan_path);
    if (!parsed.is_ok()) {
      std::cerr << "up-plan: " << parsed.status().to_string() << '\n';
      return 1;
    }
    up = parsed.value();
  }
  if (down.empty() && up.empty()) {
    std::cerr << "replay: need --down-plan and/or --up-plan\n";
    return 2;
  }

  const hsr::trace::FlowCapture capture = replay(down, up, opts.duration_s);
  if (!opts.save_path.empty()) {
    const auto saved = hsr::trace::save_flow_capture(opts.save_path, capture);
    if (!saved.is_ok()) {
      std::cerr << saved.to_string() << '\n';
      return 1;
    }
    os << "saved " << opts.save_path << '\n';
  }
  print_summary(capture, os);
  print_ratios(capture, os);
  return 0;
}

// --- selftest ----------------------------------------------------------------

// End-to-end smoke: build a scripted plan, round-trip it through the text
// format, replay it twice (byte-identical captures), round-trip the capture
// through trace_io, and run every query over the result. Exercises the whole
// observability surface with no input files.
int run_selftest() {
  using hsr::fault::FaultPlan;

  FaultPlan down;
  down.blackout(TimePoint::from_seconds(2.0), TimePoint::from_seconds(2.25))
      .drop_retransmissions(1);

  // Plan text round-trip.
  const std::string text = down.to_text();
  const auto reparsed = FaultPlan::parse(text);
  if (!reparsed.is_ok() || !(reparsed.value() == down)) {
    std::cerr << "selftest: plan text round-trip failed\n";
    return 1;
  }

  // Replay determinism: same plans, byte-identical serialized captures.
  const hsr::trace::FlowCapture a = replay(reparsed.value(), FaultPlan{}, 10.0);
  const hsr::trace::FlowCapture b = replay(down, FaultPlan{}, 10.0);
  std::ostringstream sa;
  std::ostringstream sb;
  hsr::trace::write_flow_capture(sa, a);
  hsr::trace::write_flow_capture(sb, b);
  if (sa.str() != sb.str() || sa.str().empty()) {
    std::cerr << "selftest: replay is not byte-identical\n";
    return 1;
  }

  // Trace round-trip, then the queries over the reloaded capture.
  std::istringstream in(sa.str());
  const auto reloaded = hsr::trace::read_flow_capture(in);
  if (!reloaded.is_ok()) {
    std::cerr << "selftest: trace round-trip failed: "
              << reloaded.status().to_string() << '\n';
    return 1;
  }
  const hsr::trace::FlowCapture& cap = reloaded.value();

  // Every lost transmission must carry a non-unknown cause.
  const hsr::analysis::LossBreakdown lb = hsr::analysis::loss_breakdown(cap);
  if (lb.data_lost == 0 || lb.scripted_drops == 0) {
    std::cerr << "selftest: scripted blackout produced no attributed losses\n";
    return 1;
  }
  if (lb.data_by_category[static_cast<std::size_t>(DropCategory::kUnknown)] != 0 ||
      lb.ack_by_category[static_cast<std::size_t>(DropCategory::kUnknown)] != 0) {
    std::cerr << "selftest: lost packet with unknown cause\n";
    return 1;
  }

  // `why` must answer for a scripted casualty.
  std::uint64_t casualty = 0;
  for (const auto& tx : cap.data.transmissions()) {
    if (tx.lost() && tx.drop_cause && tx.drop_cause->is_scripted()) {
      casualty = tx.packet.id;
      break;
    }
  }
  std::ostringstream sink;
  if (casualty == 0 || run_why(cap, casualty, sink) != 0 ||
      sink.str().find("scripted-fault") == std::string::npos) {
    std::cerr << "selftest: 'why' did not attribute the scripted casualty\n";
    return 1;
  }
  print_summary(cap, sink);
  print_losses(cap, sink);
  print_ratios(cap, sink);
  if (sink.str().find("q-hat") == std::string::npos) {
    std::cerr << "selftest: ratios output incomplete\n";
    return 1;
  }

  std::cout << "trace_query selftest ok (" << cap.data.sent_count()
            << " data transmissions, " << lb.scripted_drops
            << " scripted drops)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "selftest") return run_selftest();

  if (cmd == "replay") {
    ReplayOptions opts;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        return (i + 1 < argc) ? argv[++i] : nullptr;
      };
      if (arg == "--down-plan") {
        const char* v = next();
        if (v == nullptr) return usage();
        opts.down_plan_path = v;
      } else if (arg == "--up-plan") {
        const char* v = next();
        if (v == nullptr) return usage();
        opts.up_plan_path = v;
      } else if (arg == "--duration") {
        const char* v = next();
        if (v == nullptr) return usage();
        opts.duration_s = std::atof(v);
        if (opts.duration_s <= 0.0) {
          std::cerr << "replay: bad --duration '" << v << "'\n";
          return 2;
        }
      } else if (arg == "--save") {
        const char* v = next();
        if (v == nullptr) return usage();
        opts.save_path = v;
      } else {
        std::cerr << "replay: unknown option '" << arg << "'\n";
        return usage();
      }
    }
    return run_replay(opts, std::cout);
  }

  if (argc < 3) return usage();
  const auto cap = load(argv[2]);
  if (!cap.is_ok()) {
    std::cerr << cap.status().to_string() << '\n';
    return 1;
  }

  if (cmd == "summary") {
    print_summary(cap.value(), std::cout);
    return 0;
  }
  if (cmd == "why") {
    if (argc < 4) return usage();
    char* end = nullptr;
    const std::uint64_t id = std::strtoull(argv[3], &end, 10);
    if (end == argv[3] || *end != '\0') {
      std::cerr << "why: bad packet id '" << argv[3] << "'\n";
      return 2;
    }
    return run_why(cap.value(), id, std::cout);
  }
  if (cmd == "losses") {
    print_losses(cap.value(), std::cout);
    return 0;
  }
  if (cmd == "ratios") {
    print_ratios(cap.value(), std::cout);
    return 0;
  }
  return usage();
}
