// fairness_sweep — shared-bottleneck multi-flow campaigns and their figures:
// Jain's fairness index vs N, aggregate retransmission rate vs N, and
// per-flow goodput shares during a scripted handoff burst.
//
//   fairness_sweep run   --flows N [--profile P] [--duration S] [--seed X]
//                        [--stagger MS] [--burst B E] [--out FILE]
//   fairness_sweep sweep --ns 2,4,8,16 [--profile P] [--duration S]
//                        [--seed X] [--stride K] [--stagger MS]
//                        [--burst B E] [--threads K] [--out FILE]
//   fairness_sweep table --in FILE [--burst B E]
//   fairness_sweep selftest
//
// `run` executes ONE scenario of N concurrent senders through one bottleneck
// pair and prints its fairness report; `sweep` runs one scenario per entry
// of --ns (sharded across threads; the corpus bytes are identical for every
// --threads value) and prints the Jain-vs-N table. Both archive their
// captures as a single hsrtrace-b2 corpus when --out is given. `table`
// recomputes the same figures from an archived corpus alone — scenario
// boundaries are recovered from flow ids restarting at 1 — so the figures
// of a corpus shipped to another machine reproduce without the spec.
// --burst B E (seconds) scripts a downlink blackout over [B, E) on every
// flow's access stub and adds the goodput-share-during-burst table.
// `--profile` is telecom (default), unicom, or mobile.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/fairness.h"
#include "radio/profiles.h"
#include "trace/trace_binary.h"
#include "util/status.h"
#include "util/time.h"
#include "workload/multi_flow.h"

namespace {

using hsr::util::Duration;
using hsr::util::TimePoint;

int usage() {
  std::cerr << "usage: fairness_sweep run   --flows N [--profile P] [--duration S]\n"
               "                            [--seed X] [--stagger MS] [--burst B E]\n"
               "                            [--out FILE]\n"
               "       fairness_sweep sweep --ns 2,4,8,16 [--profile P] [--duration S]\n"
               "                            [--seed X] [--stride K] [--stagger MS]\n"
               "                            [--burst B E] [--threads K] [--out FILE]\n"
               "       fairness_sweep table --in FILE [--burst B E]\n"
               "       fairness_sweep selftest\n";
  return 2;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return end != text.c_str() && *end == '\0';
}

bool parse_seconds(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != text.c_str() && *end == '\0' && out >= 0.0;
}

bool parse_flow_counts(const std::string& text, std::vector<unsigned>& out) {
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    std::uint64_t n = 0;
    if (!parse_u64(item, n) || n == 0) return false;
    out.push_back(static_cast<unsigned>(n));
  }
  return !out.empty();
}

bool parse_profile(const std::string& name, hsr::radio::ProviderProfile& out) {
  if (name == "telecom") {
    out = hsr::radio::telecom_3g_highspeed();
  } else if (name == "unicom") {
    out = hsr::radio::unicom_3g_highspeed();
  } else if (name == "mobile") {
    out = hsr::radio::mobile_lte_highspeed();
  } else {
    return false;
  }
  return true;
}

// One scenario's rows: the per-flow breakdown, then the summary line the
// Jain-vs-N table is built from.
void print_report(std::ostream& os, const hsr::analysis::FairnessReport& report) {
  os << "  flow  goodput_pps    share  data_sent  retx  retx_rate\n";
  for (const auto& f : report.flows) {
    os << "  " << std::setw(4) << f.flow << "  " << std::setw(11) << std::fixed
       << std::setprecision(3) << f.goodput_pps << "  " << std::setw(7)
       << std::setprecision(4) << f.goodput_share << "  " << std::setw(9)
       << f.data_sent << "  " << std::setw(4) << f.retransmissions << "  "
       << std::setw(9) << std::setprecision(4) << f.retransmission_rate << "\n";
  }
  os << "  N=" << report.flows.size() << " jain=" << std::setprecision(4)
     << report.jain << " aggregate_goodput_pps=" << std::setprecision(3)
     << report.aggregate_goodput_pps
     << " aggregate_retx_rate=" << std::setprecision(4)
     << report.aggregate_retransmission_rate << "\n";
}

void print_burst_shares(std::ostream& os,
                        const std::vector<hsr::trace::FlowCapture>& captures,
                        TimePoint begin, TimePoint end) {
  const auto shares = hsr::analysis::delivered_shares(captures, begin, end);
  os << "  burst [" << begin.to_seconds() << ", " << end.to_seconds()
     << ") s goodput shares:";
  for (const auto& s : shares) {
    os << " " << s.flow << ":" << std::fixed << std::setprecision(4) << s.share;
  }
  os << "\n";
}

// Jain-vs-N summary across scenarios — the figure tables EXPERIMENTS.md
// plots (fairness degrades and aggregate retransmissions climb with N).
void print_sweep_table(std::ostream& os,
                       const std::vector<hsr::analysis::FairnessReport>& reports) {
  os << "     N    jain  agg_goodput_pps  agg_retx_rate\n";
  for (const auto& r : reports) {
    os << "  " << std::setw(4) << r.flows.size() << "  " << std::setw(6)
       << std::fixed << std::setprecision(4) << r.jain << "  " << std::setw(15)
       << std::setprecision(3) << r.aggregate_goodput_pps << "  " << std::setw(13)
       << std::setprecision(4) << r.aggregate_retransmission_rate << "\n";
  }
}

// Splits an archived corpus back into scenarios: each scenario's captures
// start at flow id 1 (run_multi_flow numbers flows 1..N, and sweep_captures
// concatenates scenarios in order).
std::vector<std::vector<hsr::trace::FlowCapture>> group_scenarios(
    std::vector<hsr::trace::FlowCapture>&& captures) {
  std::vector<std::vector<hsr::trace::FlowCapture>> groups;
  for (auto& c : captures) {
    if (c.flow == 1 || groups.empty()) groups.emplace_back();
    groups.back().push_back(std::move(c));
  }
  return groups;
}

struct Options {
  hsr::radio::ProviderProfile profile = hsr::radio::telecom_3g_highspeed();
  std::vector<unsigned> flow_counts;
  double duration_s = 30.0;
  std::uint64_t seed = 1;
  std::uint64_t stride = 101;
  double stagger_ms = 0.0;
  double burst_begin_s = 0.0;
  double burst_end_s = 0.0;
  std::uint64_t threads = 0;
  std::string out_path;
  std::string in_path;

  bool has_burst() const { return burst_end_s > burst_begin_s; }
};

bool parse_options(int argc, char** argv, int first, Options& opt) {
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    std::uint64_t n = 0;
    if (arg == "--flows" && has_value) {
      if (!parse_u64(argv[++i], n) || n == 0) return false;
      opt.flow_counts = {static_cast<unsigned>(n)};
    } else if (arg == "--ns" && has_value) {
      if (!parse_flow_counts(argv[++i], opt.flow_counts)) return false;
    } else if (arg == "--profile" && has_value) {
      if (!parse_profile(argv[++i], opt.profile)) return false;
    } else if (arg == "--duration" && has_value) {
      if (!parse_seconds(argv[++i], opt.duration_s) || opt.duration_s <= 0.0) return false;
    } else if (arg == "--seed" && has_value) {
      if (!parse_u64(argv[++i], opt.seed)) return false;
    } else if (arg == "--stride" && has_value) {
      if (!parse_u64(argv[++i], opt.stride)) return false;
    } else if (arg == "--stagger" && has_value) {
      if (!parse_seconds(argv[++i], opt.stagger_ms)) return false;
    } else if (arg == "--burst" && i + 2 < argc) {
      if (!parse_seconds(argv[i + 1], opt.burst_begin_s) ||
          !parse_seconds(argv[i + 2], opt.burst_end_s) ||
          opt.burst_end_s <= opt.burst_begin_s) {
        return false;
      }
      i += 2;
    } else if (arg == "--threads" && has_value) {
      if (!parse_u64(argv[++i], opt.threads)) return false;
    } else if (arg == "--out" && has_value) {
      opt.out_path = argv[++i];
    } else if (arg == "--in" && has_value) {
      opt.in_path = argv[++i];
    } else {
      std::cerr << "fairness_sweep: bad argument '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

hsr::workload::MultiFlowSweepSpec sweep_spec(const Options& opt) {
  hsr::workload::MultiFlowSweepSpec spec;
  spec.profile = opt.profile;
  spec.flow_counts = opt.flow_counts;
  spec.duration = Duration::from_seconds(opt.duration_s);
  spec.base_seed = opt.seed;
  spec.seed_stride = opt.stride;
  spec.start_stagger = Duration::from_seconds(opt.stagger_ms / 1000.0);
  if (opt.has_burst()) {
    spec.burst_begin = TimePoint::from_seconds(opt.burst_begin_s);
    spec.burst_end = TimePoint::from_seconds(opt.burst_end_s);
  }
  spec.threads = static_cast<unsigned>(opt.threads);
  return spec;
}

int run_or_sweep(const Options& opt, bool single) {
  if (opt.flow_counts.empty()) {
    std::cerr << "fairness_sweep: " << (single ? "--flows" : "--ns")
              << " is required\n";
    return usage();
  }
  const hsr::workload::MultiFlowSweepSpec spec = sweep_spec(opt);
  std::vector<hsr::workload::MultiFlowResult> results =
      hsr::workload::run_multi_flow_sweep(spec);
  for (const auto& r : results) {
    if (!r.status.is_ok()) {
      std::cerr << "fairness_sweep: scenario failed: " << r.status.message() << "\n";
      return 1;
    }
  }

  std::vector<hsr::analysis::FairnessReport> reports;
  reports.reserve(results.size());
  for (std::size_t s = 0; s < results.size(); ++s) {
    reports.push_back(
        hsr::analysis::fairness_report(results[s].captures, spec.duration));
    std::cout << "scenario " << s << " (N=" << opt.flow_counts[s]
              << ", seed=" << (opt.seed + s * opt.stride)
              << ", handoffs=" << results[s].handoffs << ")\n";
    print_report(std::cout, reports.back());
    if (opt.has_burst()) {
      print_burst_shares(std::cout, results[s].captures, spec.burst_begin,
                         spec.burst_end);
    }
  }
  if (!single && reports.size() > 1) {
    std::cout << "sweep summary\n";
    print_sweep_table(std::cout, reports);
  }

  if (!opt.out_path.empty()) {
    const std::vector<hsr::trace::FlowCapture> captures =
        hsr::workload::sweep_captures(std::move(results));
    const hsr::util::Status saved =
        hsr::trace::save_capture_archive(opt.out_path, captures);
    if (!saved.is_ok()) {
      std::cerr << "fairness_sweep: save failed: " << saved.message() << "\n";
      return 1;
    }
    std::cout << "wrote " << captures.size() << " captures -> " << opt.out_path
              << "\n";
  }
  return 0;
}

int table_from_corpus(const Options& opt) {
  if (opt.in_path.empty()) {
    std::cerr << "fairness_sweep: table needs --in FILE\n";
    return usage();
  }
  std::ifstream is(opt.in_path, std::ios::binary);
  if (!is) {
    std::cerr << "fairness_sweep: cannot open " << opt.in_path << "\n";
    return 1;
  }
  auto corpus = hsr::trace::read_binary_corpus(is);
  if (!corpus.is_ok()) {
    std::cerr << "fairness_sweep: " << corpus.status().message() << "\n";
    return 1;
  }
  const auto groups = group_scenarios(std::move(corpus.value().flows));
  std::vector<hsr::analysis::FairnessReport> reports;
  reports.reserve(groups.size());
  for (std::size_t s = 0; s < groups.size(); ++s) {
    // No spec at hand: goodputs normalize over the longest capture span.
    reports.push_back(hsr::analysis::fairness_report(groups[s]));
    std::cout << "scenario " << s << " (N=" << groups[s].size() << ")\n";
    print_report(std::cout, reports.back());
    if (opt.has_burst()) {
      print_burst_shares(std::cout, groups[s],
                         TimePoint::from_seconds(opt.burst_begin_s),
                         TimePoint::from_seconds(opt.burst_end_s));
    }
  }
  if (reports.size() > 1) {
    std::cout << "sweep summary\n";
    print_sweep_table(std::cout, reports);
  }
  return 0;
}

int selftest() {
  // Jain bounds: equal shares pin 1.0, one hog pins 1/n.
  {
    const double equal = hsr::analysis::jain_index({5.0, 5.0, 5.0, 5.0});
    const double hog = hsr::analysis::jain_index({1.0, 0.0, 0.0, 0.0});
    if (equal < 0.999999 || equal > 1.000001) {
      std::cerr << "selftest: jain(equal) != 1 (" << equal << ")\n";
      return 1;
    }
    if (hog < 0.249999 || hog > 0.250001) {
      std::cerr << "selftest: jain(hog) != 1/4 (" << hog << ")\n";
      return 1;
    }
  }

  // A small sweep is byte-identical across thread counts, and its corpus
  // round-trips through the archive format.
  hsr::workload::MultiFlowSweepSpec spec;
  spec.profile = hsr::radio::telecom_3g_highspeed();
  spec.flow_counts = {1, 2, 3};
  spec.duration = Duration::from_seconds(3.0);
  spec.base_seed = 42;
  spec.burst_begin = TimePoint::from_seconds(1.0);
  spec.burst_end = TimePoint::from_seconds(2.0);

  std::ostringstream archives[2];
  for (int pass = 0; pass < 2; ++pass) {
    spec.threads = pass == 0 ? 1 : 2;
    std::vector<hsr::workload::MultiFlowResult> results =
        hsr::workload::run_multi_flow_sweep(spec);
    for (const auto& r : results) {
      if (!r.status.is_ok()) {
        std::cerr << "selftest: scenario failed: " << r.status.message() << "\n";
        return 1;
      }
    }
    if (pass == 0) {
      // Sanity on the live results: group sizes, shares summing to one,
      // Jain within its mathematical bounds.
      for (std::size_t s = 0; s < results.size(); ++s) {
        const auto report =
            hsr::analysis::fairness_report(results[s].captures, spec.duration);
        const std::size_t n = spec.flow_counts[s];
        if (report.flows.size() != n) {
          std::cerr << "selftest: report has " << report.flows.size()
                    << " flows, want " << n << "\n";
          return 1;
        }
        if (report.jain < 1.0 / static_cast<double>(n) - 1e-9 ||
            report.jain > 1.0 + 1e-9) {
          std::cerr << "selftest: jain out of bounds: " << report.jain << "\n";
          return 1;
        }
        double share_sum = 0.0;
        for (const auto& f : report.flows) share_sum += f.goodput_share;
        if (report.aggregate_goodput_pps > 0.0 &&
            (share_sum < 0.999999 || share_sum > 1.000001)) {
          std::cerr << "selftest: shares sum to " << share_sum << "\n";
          return 1;
        }
      }
    }
    hsr::trace::write_capture_archive(
        archives[pass],
        hsr::workload::sweep_captures(std::move(results)));
  }
  if (archives[0].str() != archives[1].str()) {
    std::cerr << "selftest: corpus bytes differ across thread counts\n";
    return 1;
  }

  // Archive round trip: the reader recovers the same scenarios and figures.
  std::istringstream is(archives[0].str());
  auto corpus = hsr::trace::read_binary_corpus(is);
  if (!corpus.is_ok()) {
    std::cerr << "selftest: corpus reread failed: " << corpus.status().message()
              << "\n";
    return 1;
  }
  const auto groups = group_scenarios(std::move(corpus.value().flows));
  if (groups.size() != spec.flow_counts.size()) {
    std::cerr << "selftest: recovered " << groups.size() << " scenarios, want "
              << spec.flow_counts.size() << "\n";
    return 1;
  }
  for (std::size_t s = 0; s < groups.size(); ++s) {
    if (groups[s].size() != spec.flow_counts[s]) {
      std::cerr << "selftest: scenario " << s << " has " << groups[s].size()
                << " captures, want " << spec.flow_counts[s] << "\n";
      return 1;
    }
    const auto shares = hsr::analysis::delivered_shares(
        groups[s], spec.burst_begin, spec.burst_end);
    if (shares.size() != groups[s].size()) {
      std::cerr << "selftest: burst shares missing flows\n";
      return 1;
    }
  }

  std::cout << "selftest: ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "selftest") return selftest();

  Options opt;
  if (!parse_options(argc, argv, 2, opt)) return usage();
  if (cmd == "run") return run_or_sweep(opt, /*single=*/true);
  if (cmd == "sweep") return run_or_sweep(opt, /*single=*/false);
  if (cmd == "table") return table_from_corpus(opt);
  std::cerr << "fairness_sweep: unknown command '" << cmd << "'\n";
  return usage();
}
