#!/usr/bin/env python3
"""Diff two BENCH_*.json files and fail on perf regression.

The per-PR perf trajectory works like this: every bench binary that matters
emits a machine-readable ``bench_out/BENCH_<name>.json`` whose ``metrics``
object holds flat numeric fields. This tool compares a baseline file against
a current file metric by metric and exits non-zero when any metric got more
than ``--threshold`` (default 10 %) WORSE.

Direction is inferred from the metric name, which is a schema contract
(see bench/bench_hotpath.cpp):

  * names ending in ``_per_s`` are throughputs  -> higher is better
  * names containing ``allocs_per``             -> lower is better
  * anything else is reported but never gates (direction unknown)

Allocation ratios near zero are compared with an absolute tolerance
(``--alloc-epsilon``): a baseline of exactly 0 allocs/op must stay 0 within
the epsilon, where a relative threshold would be meaningless.

Schema v2 bench files additionally carry a top-level ``spread`` object with
per-rep ``{min, max, mean, stddev}`` for the throughput metrics. When both
files record a spread for a metric, the gate widens to the observed
run-to-run noise: the effective threshold becomes
``max(--threshold, rel_spread(base) + rel_spread(cur))`` where
``rel_spread = (max - min) / max``. Two noisy best-of-N point samples then
can't fail the gate on noise alone, while a genuine regression larger than
both machines' jitter still does. Files without a ``spread`` object (schema
v1) gate on the plain threshold as before.

Usage:
  bench_compare.py baseline.json current.json [--threshold 0.10]
  bench_compare.py --self-check

Exit status: 0 OK / within threshold, 1 regression found, 2 usage or
self-check failure.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 0.10
DEFAULT_ALLOC_EPSILON = 0.01


def metric_direction(name: str) -> str:
    """'up' = higher is better, 'down' = lower is better, 'info' = no gate."""
    if "allocs_per" in name:
        return "down"
    if name.endswith("_per_s"):
        return "up"
    return "info"


def rel_spread(spread: dict | None) -> float:
    """Relative run-to-run noise of one metric: (max - min) / max, or 0."""
    if not isinstance(spread, dict):
        return 0.0
    try:
        lo = float(spread["min"])
        hi = float(spread["max"])
    except (KeyError, TypeError, ValueError):
        return 0.0
    if not (math.isfinite(lo) and math.isfinite(hi)) or hi <= 0 or lo > hi:
        return 0.0
    return (hi - lo) / hi


def compare_metric(name: str, base: float, cur: float, threshold: float,
                   alloc_epsilon: float, base_spread: dict | None = None,
                   cur_spread: dict | None = None):
    """Returns (status, detail); status in {'ok', 'regression', 'info'}."""
    direction = metric_direction(name)
    if direction == "info":
        return "info", f"{name}: {base:g} -> {cur:g} (not gated)"
    noise = rel_spread(base_spread) + rel_spread(cur_spread)
    if noise > 0.0:
        threshold = max(threshold, noise)
    if direction == "down":
        # Ratios hugging zero: relative change is noise, use absolute slack.
        if max(abs(base), abs(cur)) <= alloc_epsilon:
            return "ok", f"{name}: {base:g} -> {cur:g} (within alloc epsilon)"
        if base <= alloc_epsilon < cur:
            return "regression", (f"{name}: {base:g} -> {cur:g} "
                                  f"(was ~zero, now above epsilon {alloc_epsilon:g})")
        worse = (cur - base) / abs(base)
        if worse > threshold:
            return "regression", (f"{name}: {base:g} -> {cur:g} "
                                  f"(+{worse * 100:.1f} %, limit {threshold * 100:.0f} %)")
        return "ok", f"{name}: {base:g} -> {cur:g} ({worse * 100:+.1f} %)"
    # direction == "up"
    if base <= 0:
        return "info", f"{name}: non-positive baseline {base:g} (not gated)"
    drop = (base - cur) / base
    if drop > threshold:
        return "regression", (f"{name}: {base:g} -> {cur:g} "
                              f"(-{drop * 100:.1f} %, limit {threshold * 100:.0f} %)")
    return "ok", f"{name}: {base:g} -> {cur:g} ({-drop * 100:+.1f} %)"


def load_metrics(path: Path) -> tuple[dict, dict]:
    """Returns (metrics, spreads); spreads is {} for schema-v1 files."""
    with path.open() as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError(f"{path}: no 'metrics' object (is this a BENCH_*.json?)")
    bad = [k for k, v in metrics.items()
           if not isinstance(v, (int, float)) or isinstance(v, bool)
           or not math.isfinite(float(v))]
    if bad:
        raise ValueError(f"{path}: non-numeric or non-finite metric(s): {', '.join(bad)}")
    spreads = doc.get("spread")
    if not isinstance(spreads, dict):
        spreads = {}
    return {k: float(v) for k, v in metrics.items()}, spreads


def run_compare(baseline: Path, current: Path, threshold: float,
                alloc_epsilon: float) -> int:
    try:
        base, base_spreads = load_metrics(baseline)
        cur, cur_spreads = load_metrics(current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2
    regressions = 0
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"  NEW  {name}: {cur[name]:g} (no baseline, not gated)")
            continue
        if name not in cur:
            print(f"  GONE {name}: metric present in baseline only")
            regressions += 1
            continue
        status, detail = compare_metric(name, base[name], cur[name], threshold,
                                        alloc_epsilon,
                                        base_spreads.get(name),
                                        cur_spreads.get(name))
        tag = {"ok": "  ok  ", "regression": "  FAIL ", "info": "  info "}[status]
        print(tag + detail)
        if status == "regression":
            regressions += 1
    if regressions:
        print(f"bench_compare: {regressions} regression(s) beyond "
              f"{threshold * 100:.0f} % vs {baseline}")
        return 1
    print(f"bench_compare: OK ({len(base)} metrics within {threshold * 100:.0f} %)")
    return 0


# --- self-check -------------------------------------------------------------

SELF_CHECK_CASES = [
    # (name, baseline, current, expected status)
    ("schedule_fire_events_per_s", 100.0, 95.0, "ok"),          # -5 % throughput
    ("schedule_fire_events_per_s", 100.0, 89.0, "regression"),  # -11 % throughput
    ("schedule_fire_events_per_s", 100.0, 150.0, "ok"),         # improvement
    ("flow_allocs_per_event", 1.0, 1.05, "ok"),                 # +5 % allocs
    ("flow_allocs_per_event", 1.0, 1.2, "regression"),          # +20 % allocs
    ("flow_allocs_per_event", 0.0, 0.0, "ok"),                  # zero stays zero
    ("flow_allocs_per_event", 0.0, 0.005, "ok"),                # within epsilon
    ("flow_allocs_per_event", 0.0, 0.5, "regression"),          # zero-alloc lost
    ("flow_allocs_per_event", 2.0, 1.0, "ok"),                  # fewer allocs
    ("flow_sim_events", 1000.0, 1.0, "info"),                   # unknown direction
]

# (name, baseline, current, base_spread, cur_spread, expected status)
SPREAD_CASES = [
    # -15 % drop, but each side is ~10 % noisy -> gate widens to 20 %, passes.
    ("flow_events_per_s", 100.0, 85.0,
     {"min": 90.0, "max": 100.0}, {"min": 76.5, "max": 85.0}, "ok"),
    # -15 % drop with tight spreads -> still a regression.
    ("flow_events_per_s", 100.0, 85.0,
     {"min": 99.0, "max": 100.0}, {"min": 84.5, "max": 85.0}, "regression"),
    # -30 % drop dwarfs the combined ~20 % noise -> regression.
    ("flow_events_per_s", 100.0, 70.0,
     {"min": 90.0, "max": 100.0}, {"min": 63.0, "max": 70.0}, "regression"),
    # Spread only on one side still widens the gate by that side's noise.
    ("flow_events_per_s", 100.0, 88.0,
     {"min": 85.0, "max": 100.0}, None, "ok"),
    # Degenerate spreads never tighten the gate below --threshold.
    ("flow_events_per_s", 100.0, 95.0,
     {"min": 100.0, "max": 100.0}, {"max": "nan"}, "ok"),
]


def run_self_check() -> int:
    failures = []
    for name, base, cur, expected in SELF_CHECK_CASES:
        status, detail = compare_metric(name, base, cur, DEFAULT_THRESHOLD,
                                        DEFAULT_ALLOC_EPSILON)
        if status != expected:
            failures.append(f"{detail}: got {status}, expected {expected}")
    for name, base, cur, bs, cs, expected in SPREAD_CASES:
        status, detail = compare_metric(name, base, cur, DEFAULT_THRESHOLD,
                                        DEFAULT_ALLOC_EPSILON, bs, cs)
        if status != expected:
            failures.append(f"[spread] {detail}: got {status}, expected {expected}")
    # A file compared against itself can never regress.
    identical = {f"m{i}_per_s": float(i + 1) for i in range(4)}
    for name, value in identical.items():
        status, _ = compare_metric(name, value, value, DEFAULT_THRESHOLD,
                                   DEFAULT_ALLOC_EPSILON)
        if status != "ok":
            failures.append(f"self-compare of {name} not ok: {status}")
    if failures:
        for f in failures:
            print(f"self-check FAIL: {f}")
        return 2
    print(f"self-check OK ({len(SELF_CHECK_CASES) + len(SPREAD_CASES)} cases)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?", type=Path,
                        help="baseline BENCH_*.json")
    parser.add_argument("current", nargs="?", type=Path,
                        help="current BENCH_*.json to gate")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed relative worsening (default 0.10 = 10 %%)")
    parser.add_argument("--alloc-epsilon", type=float, default=DEFAULT_ALLOC_EPSILON,
                        help="absolute slack for near-zero allocation ratios")
    parser.add_argument("--self-check", action="store_true",
                        help="verify the comparison logic against embedded cases")
    args = parser.parse_args()

    if args.self_check:
        return run_self_check()
    if args.baseline is None or args.current is None:
        parser.error("baseline and current files are required (or --self-check)")
    return run_compare(args.baseline, args.current, args.threshold,
                       args.alloc_epsilon)


if __name__ == "__main__":
    sys.exit(main())
