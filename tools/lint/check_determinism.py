#!/usr/bin/env python3
"""Determinism lint for the hsrtcp simulation core.

Experiments must be bit-reproducible given a seed: every stochastic component
derives its stream from the experiment seed via hsr::util::Rng::fork()
(src/util/rng.h), and all time is virtual (hsr::util::TimePoint). This lint
bans the constructs that silently break that discipline inside the simulation
core directories:

  * wall-clock time:   std::chrono::{system,steady,high_resolution}_clock,
                       time(nullptr)/time(0)/std::time, clock(), gettimeofday,
                       clock_gettime, localtime, gmtime
  * C randomness:      rand(), srand(), random(), drand48 and friends
  * ambient entropy:   std::random_device
  * unseeded engines:  std::mt19937 e;  std::default_random_engine e;  ...
                       (engines must be obtained through Rng, never built raw)
  * sleep-based sync:  std::this_thread::sleep_for/sleep_until, usleep,
                       nanosleep (parallel shards synchronize with the
                       ThreadPool's join, never by waiting wall time)
  * thread identity:   std::this_thread::get_id, pthread_self (seeds and
                       stream forks must derive from (seed, index), never
                       from which thread happens to run a shard)

Python tooling that participates in the reproducibility story (listed in
CHECKED_PYTHON_FILES, e.g. tools/bench_compare.py, which gates perf from
deterministic BENCH_*.json inputs) is held to the same bar with
Python-flavored rules: no `random` module, no wall-clock reads
(time.time/monotonic/perf_counter, datetime.now/utcnow/today), no ambient
entropy (os.urandom, secrets, uuid1/uuid4), no sleeping.

A line may be exempted with a trailing `// determinism-ok: <reason>` marker
(`# determinism-ok: <reason>` in Python) — grep for the marker to audit
every exemption.

Exit status: 0 clean, 1 violations found, 2 usage/self-test failure.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Directories holding the deterministic simulation core, relative to repo root.
CHECKED_DIRS = (
    "src/sim",
    "src/tcp",
    "src/net",
    "src/radio",
    "src/workload",
    "src/util",
    "src/fault",
    "src/analysis",
    "tools/trace_query",
)

SOURCE_SUFFIXES = {".cpp", ".h", ".cc", ".hpp"}

# Python tools that feed the reproducibility pipeline, relative to repo root.
# These are linted with PYTHON_RULES; directories stay C++-only on purpose —
# opt Python files in one by one so throwaway scripts aren't conscripted.
CHECKED_PYTHON_FILES = (
    "tools/bench_compare.py",
)

EXEMPT_MARKER = "determinism-ok"

# (rule name, compiled regex, human explanation)
RULES = [
    (
        "wall-clock",
        re.compile(
            r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
            r"|\bchrono::(system_clock|steady_clock|high_resolution_clock)"
        ),
        "wall-clock time breaks reproducibility; use sim::Simulator::now()",
    ),
    (
        "c-time",
        re.compile(
            r"(\bstd::time\s*\(|(?<![\w:])time\s*\(\s*(nullptr|NULL|0)\s*\)"
            r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|(?<![\w:.])clock\s*\(\s*\)"
            r"|\blocaltime\s*\(|\bgmtime\s*\()"
        ),
        "C wall-clock time breaks reproducibility; use sim::Simulator::now()",
    ),
    (
        "c-rand",
        re.compile(r"(?<![\w:])(s?rand|random|s?rand48|[dlm]rand48)\s*\("),
        "C randomness is unseeded global state; fork an hsr::util::Rng instead",
    ),
    (
        "random-device",
        re.compile(r"\brandom_device\b"),
        "ambient entropy defeats seeded reproduction; fork an hsr::util::Rng",
    ),
    (
        "unseeded-engine",
        re.compile(
            r"\bstd::(mt19937(_64)?|minstd_rand0?|default_random_engine|"
            r"ranlux(24|48)(_base)?|knuth_b)\s+\w+\s*(;|\{\s*\}|\(\s*\))"
        ),
        "raw/unseeded engine construction; obtain engines via Rng::fork()",
    ),
    (
        "sleep-sync",
        re.compile(
            r"(\bthis_thread::sleep_(for|until)\b"
            r"|(?<![\w:])(usleep|nanosleep)\s*\("
            r"|(?<![\w:.])sleep\s*\(\s*\d)"
        ),
        "sleeping is not synchronization and adds wall-time dependence; "
        "join via ThreadPool::parallel_for or block on a condition variable",
    ),
    (
        "thread-id",
        re.compile(r"(\bthis_thread::get_id\s*\(|\bpthread_self\s*\()"),
        "thread identity must never feed seeds or control flow; derive "
        "per-shard streams from (seed, index) via Rng::fork()",
    ),
]

# Python-flavored rules for CHECKED_PYTHON_FILES. Same philosophy, different
# spellings: a tool that gates benches or corpora must be a pure function of
# its inputs.
PYTHON_RULES = [
    (
        "py-random",
        re.compile(r"(\bimport\s+random\b|\bfrom\s+random\s+import\b|\brandom\.\w+\s*\()"),
        "the random module breaks tool reproducibility; thread an explicit "
        "seed through inputs if randomness is ever needed",
    ),
    (
        "py-wall-clock",
        re.compile(
            r"(\btime\.(time|time_ns|monotonic|monotonic_ns|perf_counter|"
            r"perf_counter_ns|process_time)\s*\("
            r"|\bdatetime\.(now|utcnow|today)\s*\("
            r"|\bdate\.today\s*\()"
        ),
        "wall-clock reads make tool output time-dependent; timestamps belong "
        "in the bench JSON inputs, not in the comparator",
    ),
    (
        "py-entropy",
        re.compile(r"(\bos\.urandom\s*\(|\bimport\s+secrets\b|\buuid\.uuid[14]\s*\()"),
        "ambient entropy defeats reproduction; derive identifiers from inputs",
    ),
    (
        "py-sleep",
        re.compile(r"\btime\.sleep\s*\("),
        "sleeping adds wall-time dependence; tools must not wait on the clock",
    ),
]

# Embedded corpus for --self-test: each snippet must trip the named rule.
SELF_TEST_BAD = [
    ("wall-clock", "auto t = std::chrono::steady_clock::now();"),
    ("wall-clock", "using clk = std::chrono::high_resolution_clock;"),
    ("c-time", "std::time(nullptr);"),
    ("c-time", "long s = time(0);"),
    ("c-time", "double el = clock() / CLOCKS_PER_SEC;"),
    ("c-rand", "int x = rand() % 6;"),
    ("c-rand", "srand(42);"),
    ("c-rand", "double d = drand48();"),
    ("random-device", "std::random_device rd;"),
    ("unseeded-engine", "std::mt19937_64 engine;"),
    ("unseeded-engine", "std::mt19937 gen{};"),
    ("unseeded-engine", "std::default_random_engine eng();"),
    # Raw engine members are banned in the core too: components hold an Rng,
    # never a bare engine, so substreams stay fork-derived.
    ("unseeded-engine", "std::mt19937_64 engine_;"),
    ("sleep-sync", "std::this_thread::sleep_for(std::chrono::milliseconds(10));"),
    ("sleep-sync", "this_thread::sleep_until(deadline);"),
    ("sleep-sync", "usleep(1000);"),
    ("sleep-sync", "nanosleep(&ts, nullptr);"),
    ("sleep-sync", "sleep(1);"),
    ("thread-id", "auto seed = std::hash<std::thread::id>{}(std::this_thread::get_id());"),
    ("thread-id", "std::uint64_t tid = pthread_self();"),
]

# Idioms the lint must NOT flag (the repo's own discipline).
SELF_TEST_GOOD = [
    "auto rng = root.fork(\"channel\", flow_id);",
    "std::mt19937_64& engine() { return engine_; }",
    "return rng.uniform() < p;",
    "const TimePoint when = sim_.now();",
    "double jitter = rng_.exponential(mean);",
    "retransmission_timer_.arm(rto);",
    "std::random_device rd;  // determinism-ok: test-only entropy audit",
    # Blocking primitives and fork-by-index parallelism are the sanctioned
    # idioms — they must never trip the sleep/thread-id rules.
    "done_cv_.wait(lock, [&] { return workers_running_ == 0; });",
    "pool.parallel_for(tasks.size(), [&](std::uint64_t i) {",
    "util::Rng flow_rng = rng.fork(\"flow\", flow_index);",
    "std::thread worker([this] { worker_loop(); });",
    "// threads sleep on the condition variable until a job is published",
]

# Python corpus: bad snippets assembled from halves so this file never
# contains a matchable banned construct itself.
SELF_TEST_PY_BAD = [
    ("py-random", "import " + "random"),
    ("py-random", "x = " + "random" + ".randint(0, 6)"),
    ("py-wall-clock", "t0 = " + "time" + ".time()"),
    ("py-wall-clock", "t0 = " + "time" + ".perf_counter()"),
    ("py-wall-clock", "stamp = " + "datetime" + ".now().isoformat()"),
    ("py-entropy", "salt = " + "os" + ".urandom(16)"),
    ("py-entropy", "run_id = " + "uuid" + ".uuid4()"),
    ("py-sleep", "time" + ".sleep(0.5)"),
]

SELF_TEST_PY_GOOD = [
    "metrics = {k: float(v) for k, v in metrics.items()}",
    "worse = (cur - base) / abs(base)",
    "parser.add_argument('--threshold', type=float, default=0.10)",
    "# comparing time.time() results would be wrong — prose, not code",
    "elapsed = doc['wall_s']  # wall time read from the JSON input",
    "seed = int(doc['seed'])",
]


def lint_line(line: str, rules=RULES, comment: str = "//"):
    """Returns (rule, explanation) for the first violated rule, else None."""
    if EXEMPT_MARKER in line:
        return None
    code = line.split(comment, 1)[0]  # prose in comments is not a violation
    for name, rx, why in rules:
        if rx.search(code):
            return name, why
    return None


def iter_source_files(root: Path):
    for rel in CHECKED_DIRS:
        base = root / rel
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                yield path


def run_lint(root: Path) -> int:
    violations = 0
    files = 0

    def lint_file(path: Path, rules, comment: str) -> None:
        nonlocal violations
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            hit = lint_line(line, rules, comment)
            if hit:
                rule, why = hit
                print(f"{path.relative_to(root)}:{lineno}: [{rule}] {line.strip()}")
                print(f"    {why}")
                violations += 1

    for path in iter_source_files(root):
        files += 1
        lint_file(path, RULES, "//")
    for rel in CHECKED_PYTHON_FILES:
        path = root / rel
        if not path.is_file():
            print(f"determinism lint: missing checked Python file {rel}",
                  file=sys.stderr)
            return 2
        files += 1
        lint_file(path, PYTHON_RULES, "#")
    if files == 0:
        print(f"determinism lint: no source files found under {CHECKED_DIRS}", file=sys.stderr)
        return 2
    if violations:
        print(f"determinism lint: {violations} violation(s) in {files} file(s)")
        return 1
    print(f"determinism lint: OK ({files} files clean)")
    return 0


def run_self_test() -> int:
    failures = []
    for expected_rule, snippet in SELF_TEST_BAD:
        hit = lint_line(snippet)
        if hit is None:
            failures.append(f"missed [{expected_rule}]: {snippet}")
        elif hit[0] != expected_rule:
            failures.append(f"wrong rule ({hit[0]} != {expected_rule}): {snippet}")
    for snippet in SELF_TEST_GOOD:
        hit = lint_line(snippet)
        if hit is not None:
            failures.append(f"false positive [{hit[0]}]: {snippet}")
    for expected_rule, snippet in SELF_TEST_PY_BAD:
        hit = lint_line(snippet, PYTHON_RULES, "#")
        if hit is None:
            failures.append(f"missed [{expected_rule}]: {snippet}")
        elif hit[0] != expected_rule:
            failures.append(f"wrong rule ({hit[0]} != {expected_rule}): {snippet}")
    for snippet in SELF_TEST_PY_GOOD:
        hit = lint_line(snippet, PYTHON_RULES, "#")
        if hit is not None:
            failures.append(f"false positive [{hit[0]}]: {snippet}")
    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}")
        return 2
    print(f"self-test OK ({len(SELF_TEST_BAD) + len(SELF_TEST_PY_BAD)} bad + "
          f"{len(SELF_TEST_GOOD) + len(SELF_TEST_PY_GOOD)} good snippets)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root (default: two levels above this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the lint catches its embedded bad-construct corpus")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test()
    root = args.root or Path(__file__).resolve().parents[2]
    return run_lint(root)


if __name__ == "__main__":
    sys.exit(main())
