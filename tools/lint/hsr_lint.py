#!/usr/bin/env python3
"""hsr-lint: token/AST-aware static analysis for the hsrtcp tree.

The repo's headline guarantee — same seed => byte-identical corpus on any
thread count — is defended statically by this engine. It replaces the old
regex/line determinism lint (tools/lint/check_determinism.py) with a real
C++ lexer (comment / string / raw-string stripping, `#if 0` elision,
preprocessor awareness), `using`/`typedef`/namespace-alias resolution, and a
pluggable rule framework. Five rule families ship today:

  determinism    wall-clock time, C randomness, ambient entropy, unseeded
                 engines, sleep-based sync and thread identity are banned in
                 the simulation core — now ALIAS-AWARE, so
                 `using Clk = std::chrono::system_clock;` and every later
                 `Clk::now()` are both caught, through multi-level chains.
                 Python tools that gate reproducibility (bench_compare.py)
                 are held to the same bar with Python-flavored rules.

  serialization  iteration order of std::unordered_{map,set} is
                 implementation-defined, so any use of an unordered
                 container (including via alias) inside the modules that
                 write archives or aggregate stats (src/trace, src/analysis,
                 src/fault, src/mptcp, src/workload) — or inside ANY
                 function named like a writer (write_*/save_*/serialize*/
                 to_text/dump*/emit*/report*) — is flagged. Use std::map /
                 std::set / sorted vectors instead.

  layering       the `#include` graph of src/ must match the architecture
                 DAG checked into tools/lint/layers.toml (util depends on
                 nothing in src/; sim never includes tcp/workload; net never
                 includes workload; ...). tools/tests/bench/examples are
                 exempt. Macro-spelled includes (`#include HDR_MACRO`)
                 cannot be layer-checked and are rejected inside src/.

  hotpath        named allocation constructs (`new`, make_unique/shared,
                 push_back/emplace/insert/resize/reserve, std::function)
                 are banned between `HSR_HOT_PATH_BEGIN` and
                 `HSR_HOT_PATH_END` comment markers — the EventQueue / Link
                 / Timer regions whose zero-allocation behaviour PR 5's
                 alloc probe pins dynamically are annotated, so an
                 allocation regression fails at lint time, not bench time.
                 Placement new (`new (addr) T`) is allowed: it constructs,
                 it does not allocate.

  ioseam         durable-write APIs — std::ofstream/std::fstream (including
                 via alias), fopen/freopen, std::rename/std::remove, and
                 std::filesystem mutations — are banned in src/trace,
                 src/fault and src/workload: every archive, chunk and
                 manifest byte must route through the util::Fs seam so
                 fault::FaultInjectingFs can script ENOSPC, torn renames
                 and transient EIO against it, and so the crash-safety
                 tests mean what they claim. Reads (std::ifstream,
                 std::filesystem queries) stay unrestricted.

A line may be exempted with a trailing `// hsr-lint-ok: <reason>` marker
(`# hsr-lint-ok: <reason>` in Python); the legacy `determinism-ok` marker is
honored as a synonym. Grep for the markers to audit every exemption.

Self-testing: `--self-test` runs the engine over the fixture corpus in
tests/lint/fixtures/. Each fixture declares its rule families and virtual
path in a `lint-fixture:` header and annotates every line that must fire
with `expect: <rule>`; the run fails unless the produced diagnostics match
the annotations EXACTLY (positive fixtures prove rules fire, negative
fixtures prove they stay quiet).

Exit status: 0 clean, 1 violations found, 2 usage/self-test/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

try:
    import tomllib  # Python >= 3.11
except ModuleNotFoundError:  # pragma: no cover - dev containers run 3.11+
    tomllib = None

# --- Configuration -----------------------------------------------------------

SOURCE_SUFFIXES = {".cpp", ".h", ".cc", ".hpp"}

# Directories holding the deterministic simulation core (determinism family).
DETERMINISM_DIRS = ("src", "tools/trace_query")

# Modules whose output feeds archives or corpus statistics (serialization
# family): any unordered-container use here risks nondeterministic bytes.
SERIALIZATION_DIRS = (
    "src/trace",
    "src/analysis",
    "src/fault",
    "src/mptcp",
    "src/workload",
)

# Functions named like writers are serialization-sensitive wherever they live.
WRITER_FN_RE = re.compile(
    r"^(write|save|serialize|to_text|dump|emit|report)\w*$")

# The include-layering DAG lives next to this script.
LAYERS_TOML = "layers.toml"

# Python tools that feed the reproducibility pipeline, relative to repo root.
CHECKED_PYTHON_FILES = ("tools/bench_compare.py",)

FIXTURE_DIR = "tests/lint/fixtures"

EXEMPT_MARKERS = ("hsr-lint-ok", "determinism-ok")

HOT_BEGIN = "HSR_HOT_PATH_BEGIN"
HOT_END = "HSR_HOT_PATH_END"

ALL_FAMILIES = ("determinism", "serialization", "layering", "hotpath", "ioseam")

# Modules whose durable writes must route through util::Fs (ioseam family):
# these are the crash-safety-tested writers — a raw ofstream/rename here is
# invisible to fault injection and voids the resume guarantees.
IOSEAM_DIRS = ("src/trace", "src/fault", "src/workload")

# --- Lexer -------------------------------------------------------------------

_RAW_PREFIXES = {"R", "uR", "UR", "LR", "u8R"}
_PP_DIRECTIVE_RE = re.compile(r"^\s*#\s*(\w+)(.*)$")
_INCLUDE_RE = re.compile(r'^\s*(?:"([^"]+)"|<([^>]+)>|([A-Za-z_]\w*))')


@dataclass
class Include:
    line: int
    target: str
    kind: str  # "quote" | "angle" | "macro"


@dataclass
class LexedFile:
    """A C++ translation unit after lexical analysis.

    `code_lines[i]` is line i+1 with comments, string/char-literal contents,
    raw-string contents and preprocessor-disabled (`#if 0`) regions replaced
    by spaces — column positions are preserved, so regexes report true
    locations. `tokens` is the identifier/punctuator stream of that cleaned
    text with 1-based line numbers.
    """
    raw_lines: list[str] = field(default_factory=list)
    code_lines: list[str] = field(default_factory=list)
    tokens: list[tuple[int, str]] = field(default_factory=list)
    includes: list[Include] = field(default_factory=list)


def _blank_keep_layout(text: str) -> str:
    """Replaces every non-whitespace char with a space (layout preserved)."""
    return "".join(c if c in "\n\t" else " " for c in text)


def lex_cpp(text: str) -> LexedFile:
    out = LexedFile()
    out.raw_lines = text.splitlines()

    n = len(text)
    i = 0
    cleaned: list[str] = []  # characters of the cleaned text
    line = 1
    bol = True              # at beginning of (logical) line, ws allowed
    # Preprocessor conditional stack: one entry per open #if, True when the
    # branch being scanned is DISABLED (i.e. `#if 0` / `#if false`).
    pp_stack: list[bool] = []

    def disabled() -> bool:
        return any(pp_stack)

    def emit(c: str) -> None:
        cleaned.append(c if not disabled() or c == "\n" else (" " if c != "\n" else c))

    while i < n:
        c = text[i]

        if c == "\n":
            cleaned.append("\n")
            line += 1
            bol = True
            i += 1
            continue

        # Preprocessor directives are recognized even inside `#if 0` regions
        # (nesting must balance), but their text is blanked when disabled.
        if bol and c == "#":
            j = text.find("\n", i)
            if j == -1:
                j = n
            directive = text[i:j]
            m = _PP_DIRECTIVE_RE.match(directive)
            name = m.group(1) if m else ""
            rest = (m.group(2) or "").strip() if m else ""
            was_disabled = disabled()
            if name in ("if", "ifdef", "ifndef"):
                dead = name == "if" and rest.split("//")[0].split("/*")[0].strip() in ("0", "false")
                pp_stack.append(dead)
            elif name in ("else", "elif") and pp_stack:
                # `#if 0 ... #else LIVE #endif`: the else-branch compiles.
                # `#if X ... #else ...`: lint both branches (conservative).
                if pp_stack[-1]:
                    pp_stack[-1] = False
                elif name == "elif":
                    pass  # stays live: we cannot evaluate the condition
            elif name == "endif" and pp_stack:
                pp_stack.pop()
            # The directive line itself never contributes code tokens, but
            # live #include lines are recorded for the layering family.
            if name == "include" and not was_disabled:
                im = _INCLUDE_RE.match(rest)
                if im:
                    if im.group(1):
                        out.includes.append(Include(line, im.group(1), "quote"))
                    elif im.group(2):
                        out.includes.append(Include(line, im.group(2), "angle"))
                    else:
                        out.includes.append(Include(line, im.group(3), "macro"))
            cleaned.append(_blank_keep_layout(directive))
            line += directive.count("\n")
            i = j
            continue

        if not c.isspace():
            bol = False

        if disabled():
            emit(c)
            i += 1
            continue

        # Comments.
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                if j == -1:
                    j = n
                cleaned.append(" " * (j - i))
                i = j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                j = n if j == -1 else j + 2
                chunk = text[i:j]
                cleaned.append(_blank_keep_layout(chunk))
                line += chunk.count("\n")
                i = j
                continue

        # Raw strings: R"delim( ... )delim"  (with optional u8/u/U/L prefix).
        if c == '"':
            k = len(cleaned)
            ident = []
            while k > 0 and (cleaned[k - 1].isalnum() or cleaned[k - 1] == "_"):
                ident.append(cleaned[k - 1])
                k -= 1
            prefix = "".join(reversed(ident))
            if prefix in _RAW_PREFIXES or (prefix and prefix[-1] == "R" and prefix in _RAW_PREFIXES):
                close = text.find("(", i)
                delim = text[i + 1:close] if close != -1 else ""
                terminator = ")" + delim + '"'
                j = text.find(terminator, close + 1) if close != -1 else -1
                j = n if j == -1 else j + len(terminator)
                chunk = text[i:j]
                cleaned.append('"')
                cleaned.append(_blank_keep_layout(chunk[1:-1]) if len(chunk) >= 2 else "")
                cleaned.append('"')
                line += chunk.count("\n")
                i = j
                continue
            # Ordinary string literal.
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                if j < n and text[j] == "\n":
                    line += 1
                j += 1
            j = min(j + 1, n)
            chunk = text[i:j]
            cleaned.append('"')
            cleaned.append(_blank_keep_layout(chunk[1:-1]) if len(chunk) >= 2 else "")
            cleaned.append('"')
            i = j
            continue

        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            cleaned.append("' '" if j - i >= 2 else "'")
            cleaned.append(" " * max(0, (j - i) - len("' '")))
            i = j
            continue

        emit(c)
        i += 1

    cleaned_text = "".join(cleaned)
    out.code_lines = cleaned_text.splitlines()
    # Pad so raw/code line counts agree even without a trailing newline.
    while len(out.code_lines) < len(out.raw_lines):
        out.code_lines.append("")

    token_re = re.compile(r"[A-Za-z_]\w*|::|[0-9][\w.]*|[{}()\[\];,=&*<>.~!+-/%|^?:]")
    for lineno, code in enumerate(out.code_lines, start=1):
        for m in token_re.finditer(code):
            out.tokens.append((lineno, m.group(0)))
    return out


# --- Qualified names & alias resolution --------------------------------------

@dataclass
class QualifiedName:
    line: int
    text: str          # e.g. "std::chrono::system_clock"
    next_tokens: list[str] = field(default_factory=list)  # up to 3 following


def collect_qualified_names(tokens: list[tuple[int, str]]) -> list[QualifiedName]:
    """Merges runs of identifier/`::` tokens into qualified names.

    Template arguments are folded into the name text (with <...> contents
    kept) so `std::unordered_map<K, V>` scans as one name; line number is
    the run's first line, which also catches names split across lines.
    """
    names: list[QualifiedName] = []
    i = 0
    n = len(tokens)
    while i < n:
        line, tok = tokens[i]
        if re.fullmatch(r"[A-Za-z_]\w*", tok) or tok == "::":
            j = i
            parts = []
            while j < n and (re.fullmatch(r"[A-Za-z_]\w*", tokens[j][1]) or tokens[j][1] == "::"):
                # Two adjacent identifiers (no ::) end the qualified name:
                # `system_clock now` is a declaration, not one name.
                if parts and parts[-1] != "::" and tokens[j][1] != "::" and \
                        re.fullmatch(r"[A-Za-z_]\w*", tokens[j][1]):
                    break
                parts.append(tokens[j][1])
                j += 1
            text = "".join(parts)
            following = [t for (_, t) in tokens[j:j + 4]]
            names.append(QualifiedName(line, text, following))
            i = j
        else:
            i += 1
    return names


def _join_tokens(parts: list[str]) -> str:
    """Rebuilds type text; a space only between adjacent word tokens, so
    `typedef std::chrono::system_clock SysClk` keeps its name separable."""
    out: list[str] = []
    for p in parts:
        if out and p[:1].isidentifier() and (out[-1][-1].isalnum() or out[-1][-1] == "_"):
            out.append(" ")
        out.append(p)
    return "".join(out)


class AliasTable:
    """`using X = T;` / `typedef T X;` / `namespace n = m;` / `using a::b;`

    Maps a (possibly unqualified) name to its declared right-hand side and
    resolves chains transitively so `using B = A;` with
    `using A = std::chrono::steady_clock;` resolves B to the clock.
    """

    def __init__(self) -> None:
        self.aliases: dict[str, tuple[int, str]] = {}  # name -> (line, rhs)

    @staticmethod
    def build(tokens: list[tuple[int, str]]) -> "AliasTable":
        table = AliasTable()
        toks = tokens
        n = len(toks)
        i = 0

        def take_until_semi(start: int) -> tuple[str, int]:
            parts = []
            j = start
            while j < n and toks[j][1] != ";":
                parts.append(toks[j][1])
                j += 1
            return _join_tokens(parts), j

        while i < n:
            line, tok = toks[i]
            if tok == "using" and i + 2 < n:
                name = toks[i + 1][1]
                if toks[i + 2][1] == "=" and re.fullmatch(r"[A-Za-z_]\w*", name):
                    rhs, j = take_until_semi(i + 3)
                    table.aliases[name] = (line, rhs)
                    i = j
                    continue
                # using-declaration: `using std::chrono::system_clock;`
                rhs, j = take_until_semi(i + 1)
                if "::" in rhs and re.fullmatch(r"[\w:<>,\s]*", rhs):
                    leaf = rhs.rstrip(":").split("::")[-1].split("<")[0]
                    if re.fullmatch(r"[A-Za-z_]\w*", leaf):
                        table.aliases[leaf] = (line, rhs)
                i = j
                continue
            if tok == "typedef":
                rhs, j = take_until_semi(i + 1)
                m = re.match(r"^(.*?)\s+([A-Za-z_]\w*)$", rhs)
                if m and m.group(1).strip():
                    table.aliases[m.group(2)] = (line, m.group(1).strip())
                i = j
                continue
            if tok == "namespace" and i + 2 < n and toks[i + 2][1] == "=":
                name = toks[i + 1][1]
                rhs, j = take_until_semi(i + 3)
                table.aliases[name] = (line, rhs)
                i = j
                continue
            i += 1
        return table

    def resolve(self, name: str) -> str:
        """Expands leading alias components transitively (depth-capped)."""
        seen = set()
        current = name
        for _ in range(8):
            head = current.split("::")[0].split("<")[0]
            if head in seen or head not in self.aliases:
                return current
            seen.add(head)
            rhs = self.aliases[head][1]
            current = rhs + current[len(head):]
        return current


# --- Diagnostics & rule framework --------------------------------------------

@dataclass(frozen=True)
class Diagnostic:
    path: str   # repo-relative
    line: int
    rule: str
    message: str


@dataclass
class FileContext:
    path: str                       # repo-relative virtual path (layering/dirs)
    lexed: LexedFile
    aliases: AliasTable
    names: list[QualifiedName]
    families: tuple[str, ...]
    layers: "Layers"

    def exempt(self, line: int) -> bool:
        if 1 <= line <= len(self.lexed.raw_lines):
            raw = self.lexed.raw_lines[line - 1]
            return any(marker in raw for marker in EXEMPT_MARKERS)
        return False


class Rule:
    family = ""

    def check(self, ctx: FileContext):
        raise NotImplementedError


# --- Layers config -----------------------------------------------------------

class Layers:
    def __init__(self, allowed: dict[str, set[str]]) -> None:
        self.allowed = allowed

    @property
    def modules(self) -> set[str]:
        return set(self.allowed)

    @staticmethod
    def load(path: Path) -> "Layers":
        text = path.read_text()
        if tomllib is not None:
            doc = tomllib.loads(text)
            allowed_doc = doc.get("allowed", {})
        else:  # minimal fallback: `name = ["a", "b"]` lines under [allowed]
            allowed_doc = {}
            in_allowed = False
            for raw in text.splitlines():
                stripped = raw.split("#", 1)[0].strip()
                if not stripped:
                    continue
                if stripped.startswith("["):
                    in_allowed = stripped == "[allowed]"
                    continue
                if in_allowed and "=" in stripped:
                    key, _, rhs = stripped.partition("=")
                    allowed_doc[key.strip()] = re.findall(r'"([^"]+)"', rhs)
        allowed = {k: set(v) for k, v in allowed_doc.items()}
        if not allowed:
            raise ValueError(f"{path}: no [allowed] table")
        return Layers(allowed)


# --- determinism family ------------------------------------------------------

WALL_CLOCK_RE = re.compile(
    r"(?:std::)?chrono::(?:system_clock|steady_clock|high_resolution_clock)\b")
ENGINE_RE = re.compile(
    r"std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
    r"ranlux(?:24|48)(?:_base)?|knuth_b)\b")
RANDOM_DEVICE_RE = re.compile(r"\brandom_device\b")

# Line-regex rules for C spellings that aliases cannot disguise.
DET_LINE_RULES = [
    ("c-time",
     re.compile(r"(\bstd::time\s*\(|(?<![\w:])time\s*\(\s*(nullptr|NULL|0)\s*\)"
                r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
                r"|(?:\bstd::|(?<![\w:.]))clock\s*\(\s*\)"
                r"|\blocaltime\s*\(|\bgmtime\s*\()"),
     "C wall-clock time breaks reproducibility; use sim::Simulator::now()"),
    ("c-rand",
     re.compile(r"(?:\bstd::|(?<![\w:.]))(s?rand|random|srand48|[dlm]rand48)\s*\("),
     "C randomness is unseeded global state; fork an hsr::util::Rng instead"),
    ("sleep-sync",
     re.compile(r"(\bthis_thread::sleep_(for|until)\b"
                r"|(?<![\w:])(usleep|nanosleep)\s*\("
                r"|(?<![\w:.])sleep\s*\(\s*\d)"),
     "sleeping is not synchronization and adds wall-time dependence; "
     "join via ThreadPool::parallel_for or block on a condition variable"),
    ("thread-id",
     re.compile(r"(\bthis_thread::get_id\s*\(|\bpthread_self\s*\()"),
     "thread identity must never feed seeds or control flow; derive "
     "per-shard streams from (seed, index) via Rng::fork()"),
]


class DeterminismRule(Rule):
    family = "determinism"

    def check(self, ctx: FileContext):
        reported: set[tuple[int, str]] = set()

        def report(line: int, rule: str, message: str):
            if (line, rule) in reported or ctx.exempt(line):
                return
            reported.add((line, rule))
            yield Diagnostic(ctx.path, line, rule, message)

        for lineno, code in enumerate(ctx.lexed.code_lines, start=1):
            for rule, rx, why in DET_LINE_RULES:
                if rx.search(code):
                    yield from report(lineno, rule, why)

        # Qualified-name rules, alias-resolved: catches `using Clk = ...;`
        # definitions (the RHS is itself a qualified name), every later use
        # of the alias, and multi-level chains.
        names = ctx.names
        for idx, qn in enumerate(names):
            resolved = ctx.aliases.resolve(qn.text)
            via = "" if resolved == qn.text else f" ('{qn.text}' resolves to '{resolved}')"
            if WALL_CLOCK_RE.search(resolved):
                yield from report(
                    qn.line, "wall-clock",
                    "wall-clock time breaks reproducibility; use "
                    "sim::Simulator::now()" + via)
            if RANDOM_DEVICE_RE.search(resolved):
                yield from report(
                    qn.line, "random-device",
                    "ambient entropy defeats seeded reproduction; fork an "
                    "hsr::util::Rng" + via)
            if ENGINE_RE.search(resolved):
                # Engine NAME use is fine in a few shapes (return type of
                # Rng::engine(), reference binding); the ban is on holding /
                # constructing a raw engine: `Engine e;`, `Engine e{};`,
                # `Engine e();`, members `Engine e_;`.
                nxt = qn.next_tokens
                decl = (len(nxt) >= 2
                        and re.fullmatch(r"[A-Za-z_]\w*", nxt[0]) is not None
                        and (nxt[1] == ";"
                             or (len(nxt) >= 3 and nxt[1] + nxt[2] in ("{}", "()"))))
                if decl:
                    yield from report(
                        qn.line, "unseeded-engine",
                        "raw/unseeded engine construction; obtain engines via "
                        "Rng::fork()" + via)


# --- serialization family ----------------------------------------------------

UNORDERED_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\b")
UNORDERED_HEADERS = {"unordered_map", "unordered_set"}


def function_scopes(tokens: list[tuple[int, str]]) -> list[tuple[int, int, str]]:
    """Best-effort (start_line, end_line, name) spans for function bodies.

    Heuristic brace matching: a `{` preceded by `)` (allowing const /
    noexcept / override / trailing-return tokens in between) opens a
    function whose name is the identifier before the matching `(`.
    """
    spans: list[tuple[int, int, str]] = []
    stack: list[tuple[str | None, int]] = []
    n = len(tokens)
    for i, (line, tok) in enumerate(tokens):
        if tok == "{":
            name = None
            j = i - 1
            skippable = {"const", "noexcept", "override", "final", "mutable", "->"}
            while j >= 0 and tokens[j][1] in skippable:
                j -= 1
            if j >= 0 and tokens[j][1] == ")":
                depth = 1
                j -= 1
                while j >= 0 and depth:
                    if tokens[j][1] == ")":
                        depth += 1
                    elif tokens[j][1] == "(":
                        depth -= 1
                    j -= 1
                if j >= 0 and re.fullmatch(r"[A-Za-z_]\w*", tokens[j][1]):
                    name = tokens[j][1]
            stack.append((name, line))
        elif tok == "}" and stack:
            name, start = stack.pop()
            if name is not None:
                spans.append((start, line, name))
    # Unclosed scopes (truncated file): extend to EOF.
    last_line = tokens[-1][0] if tokens else 0
    for name, start in stack:
        if name is not None:
            spans.append((start, last_line, name))
    return spans


class SerializationRule(Rule):
    family = "serialization"

    def check(self, ctx: FileContext):
        in_dir = any(ctx.path.startswith(d + "/") for d in SERIALIZATION_DIRS)
        writer_spans = [
            (a, b) for (a, b, name) in function_scopes(ctx.lexed.tokens)
            if WRITER_FN_RE.match(name)
        ] if not in_dir else []

        def sensitive(line: int) -> str | None:
            if in_dir:
                return "serialization-sensitive module"
            for a, b in writer_spans:
                if a <= line <= b:
                    return "writer function"
            return None

        if in_dir:
            for inc in ctx.lexed.includes:
                if inc.kind == "angle" and inc.target in UNORDERED_HEADERS:
                    if not ctx.exempt(inc.line):
                        yield Diagnostic(
                            ctx.path, inc.line, "unordered-include",
                            f"<{inc.target}> included in a serialization-"
                            "sensitive module; iteration order is "
                            "implementation-defined — use std::map/std::set "
                            "or sorted vectors")

        reported: set[int] = set()
        for qn in ctx.names:
            resolved = ctx.aliases.resolve(qn.text)
            if not UNORDERED_RE.search(resolved):
                continue
            where = sensitive(qn.line)
            if where is None or qn.line in reported or ctx.exempt(qn.line):
                continue
            reported.add(qn.line)
            via = "" if resolved == qn.text else f" ('{qn.text}' resolves to '{resolved}')"
            yield Diagnostic(
                ctx.path, qn.line, "unordered-container",
                f"unordered container in a {where}: iteration order is "
                "implementation-defined and can leak into archives/stats; "
                "use std::map/std::set or a sorted vector" + via)


# --- layering family ---------------------------------------------------------

class LayeringRule(Rule):
    family = "layering"

    def check(self, ctx: FileContext):
        parts = ctx.path.split("/")
        if len(parts) < 3 or parts[0] != "src":
            return  # tools/tests/bench/examples are exempt
        module = parts[1]
        layers = ctx.layers
        if module not in layers.modules:
            yield Diagnostic(
                ctx.path, 1, "unknown-module",
                f"module 'src/{module}' has no entry in tools/lint/{LAYERS_TOML}; "
                "add its allowed dependencies to the [allowed] table")
            return
        allowed = layers.allowed[module]
        for inc in ctx.lexed.includes:
            if ctx.exempt(inc.line):
                continue
            if inc.kind == "macro":
                yield Diagnostic(
                    ctx.path, inc.line, "macro-include",
                    f"macro-spelled include '#include {inc.target}' cannot be "
                    "layer-checked; spell the header path literally")
                continue
            if inc.kind != "quote" or "/" not in inc.target:
                continue
            dep = inc.target.split("/")[0]
            if dep not in layers.modules:
                continue  # not a src/ module header (e.g. bench/common.h)
            if dep == module or dep in allowed:
                continue
            yield Diagnostic(
                ctx.path, inc.line, "layer-violation",
                f"src/{module} must not include {inc.target}: the "
                f"architecture DAG ({LAYERS_TOML}) allows src/{module} -> "
                f"{{{', '.join(sorted(allowed)) or 'nothing'}}} only")


# --- hotpath family ----------------------------------------------------------

HOT_BANNED_CALLS = {
    "make_unique": "heap allocation",
    "make_shared": "heap allocation",
    "push_back": "potential reallocation",
    "emplace_back": "potential reallocation",
    "insert": "node allocation / reallocation",
    "emplace": "node allocation / reallocation",
    "resize": "potential reallocation",
    "reserve": "allocation",
}
HOT_BANNED_TYPES_RE = re.compile(r"std::function\b")


def hot_regions(raw_lines: list[str]) -> tuple[list[tuple[int, int]], list[Diagnostic] | None]:
    """Extracts (begin_line, end_line) marker regions; None diags if balanced."""
    regions: list[tuple[int, int]] = []
    problems: list[tuple[int, str]] = []
    open_line: int | None = None
    for lineno, raw in enumerate(raw_lines, start=1):
        if HOT_BEGIN in raw:
            if open_line is not None:
                problems.append((lineno, f"nested {HOT_BEGIN} (region opened at "
                                         f"line {open_line} is still open)"))
            else:
                open_line = lineno
        elif HOT_END in raw:
            if open_line is None:
                problems.append((lineno, f"{HOT_END} without a matching {HOT_BEGIN}"))
            else:
                regions.append((open_line, lineno))
                open_line = None
    if open_line is not None:
        problems.append((open_line, f"{HOT_BEGIN} never closed by {HOT_END}"))
    return regions, problems or None


class HotPathRule(Rule):
    family = "hotpath"

    def check(self, ctx: FileContext):
        regions, problems = hot_regions(ctx.lexed.raw_lines)
        if problems:
            for line, why in problems:
                yield Diagnostic(ctx.path, line, "hot-marker", why)
        if not regions:
            return

        def in_region(line: int) -> bool:
            return any(a <= line <= b for a, b in regions)

        reported: set[tuple[int, str]] = set()

        def report(line: int, what: str, why: str):
            if (line, what) in reported or ctx.exempt(line):
                return
            reported.add((line, what))
            yield Diagnostic(
                ctx.path, line, "hot-alloc",
                f"'{what}' inside an {HOT_BEGIN}/{HOT_END} region ({why}); "
                "the hot path must not allocate — restructure, or exempt an "
                "amortized growth line with 'hsr-lint-ok: <reason>'")

        tokens = ctx.lexed.tokens
        for i, (line, tok) in enumerate(tokens):
            if not in_region(line):
                continue
            if tok == "new":
                # Placement new constructs into existing storage: allowed.
                if i + 1 < len(tokens) and tokens[i + 1][1] == "(":
                    continue
                yield from report(line, "new", "heap allocation")
            elif tok == "delete":
                yield from report(line, "delete", "heap deallocation")
            elif tok in HOT_BANNED_CALLS:
                # Only calls: `x.push_back(...)`, `make_unique<...>`.
                nxt = tokens[i + 1][1] if i + 1 < len(tokens) else ""
                if nxt in ("(", "<"):
                    yield from report(line, tok, HOT_BANNED_CALLS[tok])
        for qn in ctx.names:
            if not in_region(qn.line):
                continue
            resolved = ctx.aliases.resolve(qn.text)
            if HOT_BANNED_TYPES_RE.search(resolved):
                yield from report(qn.line, "std::function",
                                  "type-erased callable may heap-allocate; "
                                  "use util::InlineFunction")


# --- ioseam family -----------------------------------------------------------

# Write-capable stream types. std::ifstream is deliberately NOT here: reads
# carry no durability contract, so the load paths keep their plain streams.
WRITE_STREAM_RE = re.compile(r"\bstd::(?:basic_)?(?:ofstream|fstream)\b")

# std::filesystem calls that MUTATE the tree. Queries (exists, file_size,
# status, ...) stay allowed.
FILESYSTEM_WRITE_RE = re.compile(
    r"\bstd::filesystem::(?:rename|remove|remove_all|copy|copy_file|"
    r"create_director(?:y|ies)|create_symlink|create_hard_link|"
    r"resize_file|permissions|last_write_time)\b")

IOSEAM_HINT = (
    "; durable writes in src/{trace,fault,workload} must go through the "
    "util::Fs seam (write_file_atomic / open_writable / rename_file / "
    "remove_file) so fault injection can script ENOSPC and torn renames "
    "against them")

# C spellings that aliases cannot disguise. Member calls (`fs.rename_file`,
# `list.remove`) and identifiers that merely contain the word
# (`rename_file(`) do not match.
IOSEAM_LINE_RULES = [
    ("raw-cio-write",
     re.compile(r"(?:\bstd::|(?<![\w:.]))(?:fopen|freopen)\s*\("),
     "C stdio opens a file handle the I/O seam cannot see" + IOSEAM_HINT),
    ("raw-cio-write",
     re.compile(r"(?:\bstd::|(?<![\w:.]))(?:rename|remove|unlink)\s*\("),
     "C rename/remove mutates the filesystem behind the I/O seam"
     + IOSEAM_HINT + " (for erase-remove on containers use std::remove_if "
     "or std::erase)"),
]


class IoSeamRule(Rule):
    family = "ioseam"

    def check(self, ctx: FileContext):
        if not any(ctx.path.startswith(d + "/") for d in IOSEAM_DIRS):
            return
        reported: set[tuple[int, str]] = set()

        def report(line: int, rule: str, message: str):
            if (line, rule) in reported or ctx.exempt(line):
                return
            reported.add((line, rule))
            yield Diagnostic(ctx.path, line, rule, message)

        for lineno, code in enumerate(ctx.lexed.code_lines, start=1):
            for rule, rx, why in IOSEAM_LINE_RULES:
                if rx.search(code):
                    yield from report(lineno, rule, why)

        # Alias-resolved qualified names: `using Sink = std::ofstream;` and
        # `namespace sfs = std::filesystem;` are both seen through.
        for qn in ctx.names:
            resolved = ctx.aliases.resolve(qn.text)
            via = "" if resolved == qn.text else f" ('{qn.text}' resolves to '{resolved}')"
            if WRITE_STREAM_RE.search(resolved):
                yield from report(
                    qn.line, "raw-write-stream",
                    "write-capable stream bypasses the I/O seam"
                    + IOSEAM_HINT + via)
            if FILESYSTEM_WRITE_RE.search(resolved):
                yield from report(
                    qn.line, "raw-filesystem-write",
                    "std::filesystem mutation bypasses the I/O seam"
                    + IOSEAM_HINT + via)


RULES: dict[str, Rule] = {
    "determinism": DeterminismRule(),
    "serialization": SerializationRule(),
    "layering": LayeringRule(),
    "hotpath": HotPathRule(),
    "ioseam": IoSeamRule(),
}


# --- Python rules (determinism family, tools) --------------------------------

PYTHON_RULES = [
    ("py-random",
     re.compile(r"(\bimport\s+random\b|\bfrom\s+random\s+import\b|\brandom\.\w+\s*\()"),
     "the random module breaks tool reproducibility; thread an explicit "
     "seed through inputs if randomness is ever needed"),
    ("py-wall-clock",
     re.compile(r"(\btime\.(time|time_ns|monotonic|monotonic_ns|perf_counter|"
                r"perf_counter_ns|process_time)\s*\("
                r"|\bdatetime\.(now|utcnow|today)\s*\("
                r"|\bdate\.today\s*\()"),
     "wall-clock reads make tool output time-dependent; timestamps belong "
     "in the bench JSON inputs, not in the comparator"),
    ("py-entropy",
     re.compile(r"(\bos\.urandom\s*\(|\bimport\s+secrets\b|\buuid\.uuid[14]\s*\()"),
     "ambient entropy defeats reproduction; derive identifiers from inputs"),
    ("py-sleep",
     re.compile(r"\btime\.sleep\s*\("),
     "sleeping adds wall-time dependence; tools must not wait on the clock"),
]


def lint_python_file(root: Path, rel: str) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    path = root / rel
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        if any(marker in raw for marker in EXEMPT_MARKERS):
            continue
        code = raw.split("#", 1)[0]
        for rule, rx, why in PYTHON_RULES:
            if rx.search(code):
                diags.append(Diagnostic(rel, lineno, rule, why))
    return diags


# --- Driver ------------------------------------------------------------------

def lint_cpp_text(text: str, virtual_path: str, families: tuple[str, ...],
                  layers: Layers) -> list[Diagnostic]:
    lexed = lex_cpp(text)
    ctx = FileContext(
        path=virtual_path,
        lexed=lexed,
        aliases=AliasTable.build(lexed.tokens),
        names=collect_qualified_names(lexed.tokens),
        families=families,
        layers=layers,
    )
    diags: list[Diagnostic] = []
    for family in families:
        diags.extend(RULES[family].check(ctx))
    return sorted(diags, key=lambda d: (d.line, d.rule))


def iter_tree_files(root: Path, families: tuple[str, ...]):
    """Yields (path, families-to-apply) for the full-tree run."""
    dirs: dict[str, set[str]] = {}

    def add(rel_dir: str, family: str):
        dirs.setdefault(rel_dir, set()).add(family)

    if "determinism" in families:
        for d in DETERMINISM_DIRS:
            add(d, "determinism")
    if "ioseam" in families:
        for d in IOSEAM_DIRS:
            add(d, "ioseam")
    for d in ("src",):
        for fam in ("serialization", "layering", "hotpath"):
            if fam in families:
                add(d, fam)

    seen: dict[Path, set[str]] = {}
    for rel_dir, fams in dirs.items():
        base = root / rel_dir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                seen.setdefault(path, set()).update(fams)
    for path in sorted(seen):
        yield path, tuple(sorted(seen[path]))


def run_lint(root: Path, families: tuple[str, ...]) -> int:
    try:
        layers = Layers.load(Path(__file__).resolve().parent / LAYERS_TOML)
    except (OSError, ValueError) as e:
        print(f"hsr-lint: cannot load layers config: {e}", file=sys.stderr)
        return 2

    diags: list[Diagnostic] = []
    files = 0
    for path, fams in iter_tree_files(root, families):
        files += 1
        rel = path.relative_to(root).as_posix()
        diags.extend(lint_cpp_text(path.read_text(), rel, fams, layers))
    if "determinism" in families:
        for rel in CHECKED_PYTHON_FILES:
            if not (root / rel).is_file():
                print(f"hsr-lint: missing checked Python file {rel}", file=sys.stderr)
                return 2
            files += 1
            diags.extend(lint_python_file(root, rel))

    if files == 0:
        print("hsr-lint: no source files found", file=sys.stderr)
        return 2
    for d in sorted(diags, key=lambda d: (d.path, d.line, d.rule)):
        print(f"{d.path}:{d.line}: [{d.rule}] {d.message}")
    if diags:
        print(f"hsr-lint: {len(diags)} violation(s) in {files} file(s) "
              f"(families: {', '.join(families)})")
        return 1
    print(f"hsr-lint: OK ({files} files clean; families: {', '.join(families)})")
    return 0


# --- Self-test over the fixture corpus ---------------------------------------

FIXTURE_HEADER_RE = re.compile(
    r"lint-fixture:\s*rules=([\w,]+)(?:\s+path=(\S+))?")
EXPECT_RE = re.compile(r"expect:\s*([\w,\s-]+?)\s*(?:\*/)?\s*$")


def run_self_test(root: Path, families: tuple[str, ...]) -> int:
    fixture_dir = root / FIXTURE_DIR
    if not fixture_dir.is_dir():
        print(f"hsr-lint: fixture directory {FIXTURE_DIR} missing", file=sys.stderr)
        return 2
    try:
        layers = Layers.load(Path(__file__).resolve().parent / LAYERS_TOML)
    except (OSError, ValueError) as e:
        print(f"hsr-lint: cannot load layers config: {e}", file=sys.stderr)
        return 2

    failures: list[str] = []
    fixtures = 0
    checked_expectations = 0
    for path in sorted(fixture_dir.iterdir()):
        if path.suffix not in SOURCE_SUFFIXES:
            continue
        text = path.read_text()
        header = FIXTURE_HEADER_RE.search(text)
        if not header:
            failures.append(f"{path.name}: missing 'lint-fixture: rules=...' header")
            continue
        fams = tuple(f for f in header.group(1).split(",") if f)
        unknown = [f for f in fams if f not in RULES]
        if unknown:
            failures.append(f"{path.name}: unknown rule families {unknown}")
            continue
        if not set(fams) & set(families):
            continue  # family-filtered self-test run
        fams = tuple(f for f in fams if f in families)
        virtual = header.group(2) or f"{FIXTURE_DIR}/{path.name}"
        fixtures += 1

        expected: set[tuple[int, str]] = set()
        for lineno, raw in enumerate(text.splitlines(), start=1):
            m = EXPECT_RE.search(raw)
            if m and ("//" in raw or "/*" in raw):
                for rule in re.split(r"[,\s]+", m.group(1).strip()):
                    if rule:
                        expected.add((lineno, rule))

        actual = {(d.line, d.rule)
                  for d in lint_cpp_text(text, virtual, fams, layers)}
        checked_expectations += len(expected)
        for line, rule in sorted(expected - actual):
            failures.append(f"{path.name}:{line}: expected [{rule}] did not fire")
        for line, rule in sorted(actual - expected):
            failures.append(f"{path.name}:{line}: unexpected [{rule}]")

    if fixtures == 0:
        print(f"hsr-lint: no fixtures matched families {families} under "
              f"{FIXTURE_DIR}", file=sys.stderr)
        return 2

    # Python rule corpus (snippets assembled so this file stays clean).
    py_bad = [
        ("py-random", "import " + "random"),
        ("py-random", "x = " + "random" + ".randint(0, 6)"),
        ("py-wall-clock", "t0 = " + "time" + ".time()"),
        ("py-wall-clock", "t0 = " + "time" + ".perf_counter()"),
        ("py-wall-clock", "stamp = " + "datetime" + ".now().isoformat()"),
        ("py-entropy", "salt = " + "os" + ".urandom(16)"),
        ("py-entropy", "run_id = " + "uuid" + ".uuid4()"),
        ("py-sleep", "time" + ".sleep(0.5)"),
    ]
    py_good = [
        "metrics = {k: float(v) for k, v in metrics.items()}",
        "worse = (cur - base) / abs(base)",
        "# comparing time.time() results would be wrong — prose, not code",
        "elapsed = doc['wall_s']  # wall time read from the JSON input",
        "seed = int(doc['seed'])",
    ]
    if "determinism" in families:
        for expected_rule, snippet in py_bad:
            code = snippet.split("#", 1)[0]
            hits = [r for r, rx, _ in PYTHON_RULES if rx.search(code)]
            checked_expectations += 1
            if not hits:
                failures.append(f"python corpus: missed [{expected_rule}]: {snippet}")
            elif hits[0] != expected_rule:
                failures.append(f"python corpus: wrong rule ({hits[0]} != "
                                f"{expected_rule}): {snippet}")
        for snippet in py_good:
            code = snippet.split("#", 1)[0]
            hits = [r for r, rx, _ in PYTHON_RULES if rx.search(code)]
            if hits:
                failures.append(f"python corpus: false positive [{hits[0]}]: {snippet}")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}")
        return 2
    print(f"self-test OK ({fixtures} fixtures, {checked_expectations} "
          f"expectations; families: {', '.join(families)})")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root (default: two levels above this script)")
    parser.add_argument("--rules", default=",".join(ALL_FAMILIES),
                        help="comma-separated rule families to run "
                             f"(default: {','.join(ALL_FAMILIES)})")
    parser.add_argument("--self-test", action="store_true",
                        help="run the engine against the fixture corpus in "
                             f"{FIXTURE_DIR} and verify expected diagnostics")
    args = parser.parse_args()

    families = tuple(f for f in args.rules.split(",") if f)
    unknown = [f for f in families if f not in RULES]
    if unknown:
        print(f"hsr-lint: unknown rule families: {', '.join(unknown)} "
              f"(known: {', '.join(ALL_FAMILIES)})", file=sys.stderr)
        return 2

    root = args.root or Path(__file__).resolve().parents[2]
    if args.self_test:
        return run_self_test(root, families)
    return run_lint(root, families)


if __name__ == "__main__":
    sys.exit(main())
