#!/bin/sh
# Installs (or explains how to install) the clang tooling the repo's style
# and tidy gates use: clang-format (.clang-format) and clang-tidy
# (.clang-tidy, `cmake --build build --target tidy`).
#
# The minimal dev containers this repo builds in ship only the compiler
# toolchain — no clang-format/clang-tidy — which is why those gates are
# CI-only (see README "Linting"). This script is the documented fallback
# for getting them locally; it is deliberately dependency-light, needs to
# be run once, and is a no-op when both tools are already on PATH.
#
# Usage: tools/dev/install_clang_tools.sh [--check]
#   --check   only report what is present/missing; never install (exit 1
#             when something is missing). CI-friendly.
set -eu

check_only=0
[ "${1:-}" = "--check" ] && check_only=1

have() { command -v "$1" >/dev/null 2>&1; }

missing=""
for tool in clang-format clang-tidy; do
  if have "$tool"; then
    echo "found: $tool ($($tool --version | head -n1))"
  else
    missing="$missing $tool"
  fi
done

if [ -z "$missing" ]; then
  echo "clang tooling complete."
  exit 0
fi

echo "missing:$missing"
if [ "$check_only" = 1 ]; then
  exit 1
fi

# Try the host's package manager. Each branch installs only the missing
# tools; sudo is used when we are not root and it exists.
run_priv() {
  if [ "$(id -u)" = 0 ]; then
    "$@"
  elif have sudo; then
    sudo "$@"
  else
    echo "need root (or sudo) to run: $*" >&2
    return 1
  fi
}

if have apt-get; then
  run_priv apt-get update
  # shellcheck disable=SC2086  # word-splitting the tool list is intended
  run_priv apt-get install -y $missing
elif have dnf; then
  run_priv dnf install -y clang-tools-extra
elif have apk; then
  run_priv apk add clang-extra-tools
elif have brew; then
  brew install llvm
  echo "note: brew installs the tools under \$(brew --prefix llvm)/bin —"
  echo "add that to PATH."
else
  cat >&2 <<'EOF'
No supported package manager found. Options:
  * Debian/Ubuntu:  apt-get install clang-format clang-tidy
  * Fedora/RHEL:    dnf install clang-tools-extra
  * Alpine:         apk add clang-extra-tools
  * Any Linux:      download an LLVM release tarball from
                    https://github.com/llvm/llvm-project/releases and put
                    its bin/ on PATH (clang-format and clang-tidy are
                    self-contained binaries).
The repo's own gates (hsr-lint, tests, benches) need none of this; the
clang tools only back the CI style/tidy jobs.
EOF
  exit 1
fi

for tool in clang-format clang-tidy; do
  have "$tool" || { echo "still missing after install: $tool" >&2; exit 1; }
done
echo "clang tooling complete."
