#!/usr/bin/env python3
"""Run a command and fail if its peak RSS exceeds a ceiling.

    python3 tools/rss_gate.py --max-rss-mb 512 -- ./corpus_campaign --flows 10000 ...

The streaming-corpus contract is that campaign memory is bounded by the
worker/shard count, not the flow count; CI proves it by running a ~10k-flow
campaign under a ceiling a capture-hoarding implementation could not meet.
Peak RSS is read portably from resource.getrusage(RUSAGE_CHILDREN) (the same
number /usr/bin/time -v reports as "Maximum resident set size"), so the gate
works in containers without the GNU time binary.
"""

import argparse
import resource
import subprocess
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-rss-mb", type=float, required=True,
                        help="fail when the child's peak RSS exceeds this many MB")
    parser.add_argument("command", nargs=argparse.REMAINDER,
                        help="command to run (prefix with --)")
    args = parser.parse_args()

    command = args.command
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        parser.error("no command given")

    proc = subprocess.run(command)
    # ru_maxrss is KB on Linux (bytes on macOS; this repo's CI is Linux).
    peak_mb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / 1024.0
    print(f"rss_gate: peak RSS {peak_mb:.1f} MB (ceiling {args.max_rss_mb:.1f} MB)")
    if proc.returncode != 0:
        print(f"rss_gate: command failed with exit {proc.returncode}", file=sys.stderr)
        return proc.returncode
    if peak_mb > args.max_rss_mb:
        print(f"rss_gate: FAIL — peak RSS {peak_mb:.1f} MB exceeds ceiling "
              f"{args.max_rss_mb:.1f} MB", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
