// corpus_campaign — run a paper-shaped flow campaign of arbitrary size in
// bounded memory and archive it as a single hsrtrace-b2 corpus file,
// crash-safely.
//
// The in-memory generate_dataset() keeps every FlowCapture alive until the
// aggregation pass, which caps campaigns at whatever RAM holds; this tool
// drives generate_dataset_streaming() instead: workers run fixed chunks of
// flows, commit each chunk atomically (tmp + fsync + rename) with a manifest
// checkpoint, and a deterministic merge produces a corpus byte-identical for
// ANY --threads value. A campaign killed or starved of disk mid-run leaves
// its committed chunks and manifest behind; re-running with --resume
// verifies them (size + CRC-32C), re-runs only the missing flows, and yields
// the same corpus and stats digest an uninterrupted run would have.
//
//   corpus_campaign --flows N [--duration S] [--threads K]
//                   --out corpus.hsrb [--stats-out stats.txt] [--seed X]
//                   [--chunk-flows C] [--work-dir DIR] [--resume]
//                   [--io-fault plan.txt]
//
// --io-fault loads an hsriofaultplan-v1 script and injects it into every
// durable write the campaign performs (chunks, manifest, merge, stats) —
// the deterministic harness the crash-safety CI jobs drive.
//
// Flow counts are distributed over the paper's four Table I campaigns in
// proportion (52:73:65:65) with ~1/8 of flows reserved for the stationary
// control corpus, so a scaled campaign keeps the published mix. The exit
// status is non-zero when the campaign is incomplete (config rejection,
// chunk/merge I/O failure, or any quarantined flow); on failure no partial
// corpus or stats file appears under the output names.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "analysis/corpus_stats.h"
#include "fault/io_fault.h"
#include "util/fs.h"
#include "util/status.h"
#include "util/time.h"
#include "workload/dataset.h"

namespace {

int usage() {
  std::cerr << "usage: corpus_campaign --flows N --out FILE\n"
               "                       [--duration S] [--threads K]\n"
               "                       [--stats-out FILE] [--seed X]\n"
               "                       [--chunk-flows C] [--work-dir DIR]\n"
               "                       [--resume] [--io-fault PLAN]\n";
  return 2;
}

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != text && *end == '\0' && out > 0.0;
}

// Shapes a DatasetSpec with exactly `flows` planned flows: the stationary
// control corpus gets ~1/8 (at least one per provider), and the remainder is
// split over the four Table I campaigns by largest-remainder apportionment
// of the paper's 52:73:65:65 mix.
hsr::workload::DatasetSpec shape_spec(std::uint64_t flows) {
  using hsr::workload::DatasetSpec;
  DatasetSpec spec = DatasetSpec::paper_table1(1.0);
  constexpr unsigned kProviders = 3;  // distinct providers -> stationary blocks

  std::uint64_t stationary_pp = flows / (8 * kProviders);
  if (stationary_pp == 0) stationary_pp = 1;
  if (flows <= kProviders + spec.campaigns.size()) stationary_pp = 1;
  std::uint64_t remaining = flows > stationary_pp * kProviders
                                ? flows - stationary_pp * kProviders
                                : spec.campaigns.size();

  const std::uint64_t weights[] = {52, 73, 65, 65};
  const std::uint64_t weight_sum = 255;
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < spec.campaigns.size(); ++i) {
    std::uint64_t share = remaining * weights[i] / weight_sum;
    if (share == 0) share = 1;
    spec.campaigns[i].flows = static_cast<unsigned>(share);
    assigned += share;
  }
  // Largest campaign absorbs the apportionment remainder (either sign).
  auto& top = spec.campaigns[1];
  if (assigned < remaining) {
    top.flows += static_cast<unsigned>(remaining - assigned);
  } else if (assigned > remaining && top.flows > assigned - remaining) {
    top.flows -= static_cast<unsigned>(assigned - remaining);
  }
  spec.stationary_flows_per_provider = static_cast<unsigned>(stationary_pp);
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t flows = 0;
  double duration_s = 0.0;  // 0 = keep the spec's paper-scale default
  std::uint64_t threads = 0;
  std::uint64_t seed = 0;
  bool have_seed = false;
  std::uint64_t chunk_flows = 0;
  bool resume = false;
  std::string out_path;
  std::string stats_path;
  std::string work_dir;
  std::string io_fault_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--flows" && has_value) {
      if (!parse_u64(argv[++i], flows) || flows == 0) return usage();
    } else if (arg == "--duration" && has_value) {
      if (!parse_double(argv[++i], duration_s)) return usage();
    } else if (arg == "--threads" && has_value) {
      if (!parse_u64(argv[++i], threads)) return usage();
    } else if (arg == "--seed" && has_value) {
      if (!parse_u64(argv[++i], seed)) return usage();
      have_seed = true;
    } else if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else if (arg == "--stats-out" && has_value) {
      stats_path = argv[++i];
    } else if (arg == "--chunk-flows" && has_value) {
      if (!parse_u64(argv[++i], chunk_flows) || chunk_flows == 0) return usage();
    } else if (arg == "--work-dir" && has_value) {
      work_dir = argv[++i];
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--io-fault" && has_value) {
      io_fault_path = argv[++i];
    } else {
      std::cerr << "corpus_campaign: unknown option '" << arg << "'\n";
      return usage();
    }
  }
  if (flows == 0 || out_path.empty()) return usage();

  hsr::workload::DatasetSpec spec = shape_spec(flows);
  if (duration_s > 0.0) {
    spec.flow_duration_min = hsr::util::Duration::from_seconds(duration_s);
    spec.flow_duration_max = spec.flow_duration_min;
  }
  spec.threads = static_cast<unsigned>(threads);
  if (have_seed) spec.seed = seed;

  hsr::workload::StreamingDatasetOptions options;
  options.corpus_path = out_path;
  options.work_dir = work_dir;
  options.chunk_flows = chunk_flows;
  options.resume = resume;

  // With --io-fault every durable write (chunks, manifest, merge, stats)
  // goes through the scripted fault backend instead of the real fs.
  std::unique_ptr<hsr::fault::FaultInjectingFs> faulty_fs;
  if (!io_fault_path.empty()) {
    auto plan = hsr::fault::IoFaultPlan::load(io_fault_path);
    if (!plan.is_ok()) {
      std::cerr << "io-fault: " << plan.status().to_string() << '\n';
      return 2;
    }
    faulty_fs = std::make_unique<hsr::fault::FaultInjectingFs>(
        std::move(plan.value()), hsr::util::Fs::real());
    options.fs = faulty_fs.get();
  }
  hsr::util::Fs& fs = options.fs != nullptr ? *options.fs : hsr::util::Fs::real();

  const auto result = hsr::workload::generate_dataset_streaming(spec, options);

  if (!result.config_status.is_ok()) {
    std::cerr << "config: " << result.config_status.to_string() << '\n';
    return 1;
  }
  if (!result.io_status.is_ok()) {
    std::cerr << "io: " << result.io_status.to_string() << '\n';
    return 1;
  }

  std::cout << "corpus " << result.corpus_path << '\n'
            << "flows " << result.flows_completed << " quarantined "
            << result.quarantined.size() << '\n'
            << "corpus_bytes " << result.corpus_bytes;
  if (result.flows_completed > 0) {
    std::cout << " bytes_per_flow " << result.corpus_bytes / result.flows_completed;
  }
  std::cout << '\n'
            << "sim_events " << result.total_sim_events << '\n'
            << "chunks " << result.chunks_total << " reused "
            << result.chunks_reused << '\n';

  const std::string digest = result.stats.to_text();
  if (!stats_path.empty()) {
    const auto saved = hsr::analysis::save_corpus_stats(fs, stats_path, result.stats);
    if (!saved.is_ok()) {
      std::cerr << "stats-out: " << saved.to_string() << '\n';
      return 1;
    }
    std::cout << "stats " << stats_path << '\n';
  } else {
    std::cout << digest;
  }

  for (const auto& q : result.quarantined) {
    std::cerr << "quarantined flow " << q.flow_index << " (" << q.provider << ", "
              << q.campaign << "): " << q.status.to_string() << '\n';
  }
  return result.complete() ? 0 : 1;
}
