// Interactive model calculator: evaluate the enhanced throughput model
// (Eq. 21) and the Padhye baseline for a chosen operating point, print the
// full derivation breakdown, and sweep the two HSR parameters (P_a, q).
//
//   $ ./model_explorer [p_d] [P_a] [q] [rtt_s] [T_s] [b] [W_m]
//   $ ./model_explorer 0.0075 0.01 0.3 0.1 0.5 2 256
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "model/enhanced.h"

int main(int argc, char** argv) {
  using namespace hsr::model;

  EnhancedInputs in;
  in.p_d = argc > 1 ? std::atof(argv[1]) : 0.0075;
  in.P_a = argc > 2 ? std::atof(argv[2]) : 0.01;
  in.q = argc > 3 ? std::atof(argv[3]) : 0.3;
  in.path.rtt_s = argc > 4 ? std::atof(argv[4]) : 0.1;
  in.path.t0_s = argc > 5 ? std::atof(argv[5]) : 0.5;
  in.path.b = argc > 6 ? std::atof(argv[6]) : 2.0;
  in.path.w_m = argc > 7 ? std::atof(argv[7]) : 256.0;

  std::cout << std::fixed << std::setprecision(4);
  std::cout << "inputs: p_d=" << in.p_d << " P_a=" << in.P_a << " q=" << in.q
            << " RTT=" << in.path.rtt_s << "s T=" << in.path.t0_s << "s b="
            << in.path.b << " W_m=" << in.path.w_m << "\n\n";

  const EnhancedBreakdown bd = enhanced_model(in);
  std::cout << "--- derivation (paper §IV) ---\n"
            << "X_P   (Eq. 1,  first-loss round)        = " << bd.x_p << "\n"
            << "E[X]  (Eq. 2,  rounds per CA phase)     = " << bd.e_x << "\n"
            << "E[W]  (Eq. 4,  window at CA end)        = " << bd.e_w << "\n"
            << "E[Y]  (Eq. 6,  segments per CA phase)   = " << bd.e_y << "\n"
            << "Q_P   (Eq. 9)                           = " << bd.q_p << "\n"
            << "Q     (Eq. 10, P(indication=timeout))   = " << bd.q_timeout << "\n"
            << "p     (consecutive-timeout probability) = " << bd.p_consec << "\n"
            << "E[R]  (Eq. 11, timeouts per sequence)   = " << bd.e_r << "\n"
            << "E[Y^TO] (Eq. 12)                        = " << bd.e_y_to << "\n"
            << "E[A^TO] (Eq. 13, sequence duration)     = " << bd.e_a_to_s << " s\n"
            << "window-limited branch:                    "
            << (bd.window_limited ? "yes (Eq. 16-20)" : "no") << "\n"
            << "THROUGHPUT (Eq. 21)                     = " << bd.throughput_pps
            << " segments/s\n\n";

  PadhyeInputs pin;
  pin.p = in.p_d;
  pin.path = in.path;
  const double padhye = padhye_throughput_pps(pin);
  std::cout << "Padhye baseline at the same p_d:          " << padhye
            << " segments/s\n"
            << "HSR penalty captured by the enhancement:  "
            << (1.0 - bd.throughput_pps / padhye) * 100 << " %\n\n";

  std::cout << "--- sensitivity: throughput vs P_a (rows) and q (cols) ---\n    q:";
  for (double q : {0.0, 0.1, 0.25, 0.4, 0.6}) std::cout << std::setw(10) << q;
  std::cout << "\n";
  for (double pa : {0.0, 0.005, 0.01, 0.05, 0.1}) {
    std::cout << "P_a=" << std::setw(5) << pa << ":";
    for (double q : {0.0, 0.1, 0.25, 0.4, 0.6}) {
      EnhancedInputs x = in;
      x.P_a = pa;
      x.q = q;
      std::cout << std::setw(10) << std::setprecision(1)
                << enhanced_throughput_pps(x) << std::setprecision(4);
    }
    std::cout << "\n";
  }
  std::cout << "\n(ACK-latency optimization lowers P_a — move up the rows;\n"
               " reliable retransmission like MPTCP lowers q — move left.)\n";
  return 0;
}
