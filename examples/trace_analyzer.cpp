// Trace workflow example: simulate an HSR flow, archive its packet capture
// to a trace file (the role pcaps played in the paper), reload it, and run
// the full §III measurement methodology on it — a miniature tcptrace for
// hsrtrace files.
//
//   $ ./trace_analyzer [provider: mobile|unicom|telecom] [seconds] [seed]
//   $ ./trace_analyzer existing_trace.hsrtrace        # analyze a saved file
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "analysis/flow_analysis.h"
#include "model/params.h"
#include "radio/profiles.h"
#include "trace/trace_io.h"
#include "workload/scenario.h"

using namespace hsr;

namespace {

void report(const trace::FlowCapture& capture, unsigned w_m, unsigned b) {
  const analysis::FlowAnalysis a = analysis::analyze_flow(capture);
  std::cout << std::fixed << std::setprecision(3);
  std::cout << "--- flow report ---\n"
            << "span:                   " << a.span.to_seconds() << " s\n"
            << "unique segments:        " << a.unique_segments << "\n"
            << "goodput:                " << a.goodput_pps << " segments/s\n"
            << "mean RTT:               " << a.mean_rtt.to_millis() << " ms\n"
            << "data loss (all tx):     " << a.data_loss_rate * 100 << " %\n"
            << "data loss (first tx):   " << a.first_tx_loss_rate * 100 << " %\n"
            << "loss events (all/data): " << a.loss_event_rate_all * 100 << " % / "
            << a.loss_event_rate_data * 100 << " %\n"
            << "ACK loss:               " << a.ack_loss_rate * 100 << " %\n"
            << "fast retransmits:       " << a.fast_retransmits << "\n"
            << "timeout sequences:      " << a.timeout_sequences.size() << "\n";
  for (const auto& ts : a.timeout_sequences) {
    std::cout << "   seq " << std::setw(7) << ts.seq << "  at " << std::setw(8)
              << ts.first_retx.to_seconds() << " s  " << ts.num_timeouts
              << " timeout(s), recovery " << ts.duration().to_seconds() << " s  "
              << (ts.spurious ? "[spurious]" : "[data loss]") << "\n";
  }
  std::cout << "spurious share:         " << a.spurious_fraction * 100 << " %\n"
            << "q (in-recovery loss):   " << a.recovery_retx_loss_rate * 100 << " %\n"
            << "T (base RTO estimate):  " << a.mean_first_rto.to_seconds() << " s\n"
            << "P_a (episode estimate): " << a.ack_burst_loss_episode * 100 << " %\n\n";

  model::EstimationOptions opt;
  opt.b = b;
  opt.w_m = w_m;
  const model::FlowEvaluation ev = model::evaluate_flow(a, opt);
  std::cout << "--- model comparison (Eq. 22) ---\n"
            << "measured:  " << ev.trace_pps << " seg/s\n"
            << "Padhye:    " << ev.padhye_pps << " seg/s (D=" << ev.d_padhye * 100
            << " %)\n"
            << "enhanced:  " << ev.enhanced_pps << " seg/s (D=" << ev.d_enhanced * 100
            << " %)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string arg = argc > 1 ? argv[1] : "unicom";

  // Analyzing an existing trace file?
  if (arg.find('.') != std::string::npos) {
    auto loaded = trace::load_flow_capture(arg);
    if (!loaded.is_ok()) {
      std::cerr << "cannot load trace: " << loaded.status().to_string() << "\n";
      return 1;
    }
    std::cout << "loaded " << arg << "\n";
    report(loaded.value(), /*w_m=*/224, /*b=*/2);
    return 0;
  }

  workload::FlowRunConfig cfg;
  if (arg == "mobile") cfg.profile = radio::mobile_lte_highspeed();
  else if (arg == "telecom") cfg.profile = radio::telecom_3g_highspeed();
  else cfg.profile = radio::unicom_3g_highspeed();
  cfg.duration = util::Duration::from_seconds(argc > 2 ? std::atof(argv[2]) : 90.0);
  cfg.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  std::cout << "simulating " << cfg.profile.name << " for "
            << cfg.duration.to_seconds() << " s (seed " << cfg.seed << ") ...\n";
  const workload::FlowRunResult run = workload::run_flow(cfg);

  const std::string path = "flow.hsrtrace";
  if (auto st = trace::save_flow_capture(path, run.capture); !st.is_ok()) {
    std::cerr << "warning: could not archive trace: " << st.to_string() << "\n";
  } else {
    std::cout << "capture archived to " << path << " (re-run with that path to "
              << "re-analyze offline)\n\n";
  }
  report(run.capture, cfg.profile.receiver_window_segments, cfg.tcp.delayed_ack_b);
  return 0;
}
