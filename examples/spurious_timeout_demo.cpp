// Walk-through of the paper's core mechanism: how ACK burst loss turns into
// a spurious retransmission timeout, and why a single surviving cumulative
// ACK prevents it (paper Figs. 5 and 11).
//
// Builds a tiny deterministic scenario — perfect data path, a scripted
// FaultPlan on the ACK path — and narrates every transport-layer event,
// including the fault audit trail that explains each ACK's death.
//
//   $ ./spurious_timeout_demo
#include <iostream>
#include <memory>

#include "fault/fault.h"
#include "net/channel.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "trace/capture.h"

using namespace hsr;

namespace {

void narrate(const char* title, fault::FaultPlan plan) {
  std::cout << "=== " << title << " ===\n";

  sim::Simulator sim;
  tcp::ConnectionConfig cfg;
  cfg.tcp.receiver_window = 6;
  cfg.tcp.delayed_ack_b = 1;
  cfg.tcp.initial_cwnd = 6.0;
  cfg.tcp.total_segments = 18;
  cfg.downlink.rate_bps = 10e6;
  cfg.downlink.prop_delay = util::Duration::millis(20);
  cfg.uplink.rate_bps = 10e6;
  cfg.uplink.prop_delay = util::Duration::millis(20);

  // Perfect channels everywhere; only the scripted plan kills packets, and
  // every kill is audited into the capture.
  trace::FlowCapture capture;
  capture.flow = 1;
  auto uplink = std::make_unique<fault::FaultInjector>(
      std::move(plan), std::make_unique<net::PerfectChannel>());
  uplink->set_audit(&capture.faults, 'A');

  tcp::Connection conn(sim, 1, cfg, std::make_unique<net::PerfectChannel>(),
                       std::move(uplink));
  conn.start();
  sim.run_until(util::TimePoint::from_seconds(6));

  std::cout << "  round of 6 data packets sent; all DELIVERED (data path is perfect)\n";
  std::cout << "  ACKs lost on the uplink: " << conn.uplink().stats().dropped_total()
            << " of " << conn.uplink().stats().sent << "\n";
  for (const auto& f : capture.faults) {
    std::cout << "  t=" << f.when.to_seconds() << " s  scripted kill of ACK "
              << f.seq << "  [" << f.label << "]\n";
  }
  for (const auto& e : conn.sender().events()) {
    switch (e.type) {
      case tcp::SenderEventType::kTimeout:
        std::cout << "  t=" << e.when.to_seconds() << " s  RETRANSMISSION TIMEOUT for seq "
                  << e.seq << " — spurious: the receiver already has it\n";
        break;
      case tcp::SenderEventType::kRecoveryExit:
        std::cout << "  t=" << e.when.to_seconds()
                  << " s  cumulative ACK " << e.seq << " arrives; recovery over\n";
        break;
      default:
        break;
    }
  }
  std::cout << "  duplicate payloads seen by the receiver: "
            << conn.receiver().stats().duplicate_segments << "\n";
  std::cout << "  total timeouts: " << conn.sender().stats().timeouts << "\n\n";
}

}  // namespace

int main() {
  std::cout << "The paper's §III-B mechanism, step by step.\n\n";

  // Case 1: every ACK of the first round dies. The first round's ACKs reach
  // the uplink around t = 40 ms; killing everything before 100 ms wipes the
  // round while sparing the post-RTO recovery ACK.
  fault::FaultPlan kill_all;
  kill_all.kill_acks(util::TimePoint::zero(), util::TimePoint::from_seconds(0.1));
  narrate("Case 1 (Fig. 5a): ALL six ACKs of the round are lost",
          std::move(kill_all));

  // Case 2: ACKs 2..6 die but the round's LAST cumulative ACK (ack_next = 7)
  // survives — and acknowledges the whole round on its own.
  fault::FaultPlan kill_most;
  kill_most.kill_ack_range(2, 6);
  narrate("Case 2 (Fig. 11): the LAST ACK of the round survives",
          std::move(kill_most));

  std::cout
      << "Takeaway: one surviving cumulative ACK acknowledges the whole round\n"
         "(\"ACKs are precious\"); only the loss of EVERY ACK in a round —\n"
         "probability P_a in the enhanced model — produces the spurious RTO.\n";
  return 0;
}
