// Walk-through of the paper's core mechanism: how ACK burst loss turns into
// a spurious retransmission timeout, and why a single surviving cumulative
// ACK prevents it (paper Figs. 5 and 11).
//
// Builds a tiny deterministic scenario — perfect data path, scripted ACK
// deaths — and narrates every transport-layer event.
//
//   $ ./spurious_timeout_demo
#include <iostream>
#include <memory>

#include "net/channel.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "util/rng.h"

using namespace hsr;

namespace {

void narrate(const char* title, int surviving_ack_index) {
  std::cout << "=== " << title << " ===\n";

  sim::Simulator sim;
  tcp::ConnectionConfig cfg;
  cfg.tcp.receiver_window = 6;
  cfg.tcp.delayed_ack_b = 1;
  cfg.tcp.initial_cwnd = 6.0;
  cfg.tcp.total_segments = 18;
  cfg.downlink.rate_bps = 10e6;
  cfg.downlink.prop_delay = util::Duration::millis(20);
  cfg.uplink.rate_bps = 10e6;
  cfg.uplink.prop_delay = util::Duration::millis(20);

  // Kill the first round's ACKs, except possibly one survivor.
  int ack_index = 0;
  auto uplink_channel = std::make_unique<net::FunctionalChannel>(
      [&ack_index, surviving_ack_index](const net::Packet&, util::TimePoint) {
        ++ack_index;
        if (ack_index > 6) return 0.0;
        return ack_index == surviving_ack_index ? 0.0 : 1.0;
      },
      [](const net::Packet&, util::TimePoint) { return util::Duration::zero(); },
      util::Rng(1));

  tcp::Connection conn(sim, 1, cfg, std::make_unique<net::PerfectChannel>(),
                       std::move(uplink_channel));
  conn.start();
  sim.run_until(util::TimePoint::from_seconds(6));

  std::cout << "  round of 6 data packets sent; all DELIVERED (data path is perfect)\n";
  std::cout << "  ACKs lost on the uplink: " << conn.uplink().stats().dropped_total()
            << " of " << conn.uplink().stats().sent << "\n";
  for (const auto& e : conn.sender().events()) {
    switch (e.type) {
      case tcp::SenderEventType::kTimeout:
        std::cout << "  t=" << e.when.to_seconds() << " s  RETRANSMISSION TIMEOUT for seq "
                  << e.seq << " — spurious: the receiver already has it\n";
        break;
      case tcp::SenderEventType::kRecoveryExit:
        std::cout << "  t=" << e.when.to_seconds()
                  << " s  cumulative ACK " << e.seq << " arrives; recovery over\n";
        break;
      default:
        break;
    }
  }
  std::cout << "  duplicate payloads seen by the receiver: "
            << conn.receiver().stats().duplicate_segments << "\n";
  std::cout << "  total timeouts: " << conn.sender().stats().timeouts << "\n\n";
}

}  // namespace

int main() {
  std::cout << "The paper's §III-B mechanism, step by step.\n\n";
  narrate("Case 1 (Fig. 5a): ALL six ACKs of the round are lost",
          /*surviving_ack_index=*/0);
  narrate("Case 2 (Fig. 11): the LAST ACK of the round survives",
          /*surviving_ack_index=*/6);
  std::cout
      << "Takeaway: one surviving cumulative ACK acknowledges the whole round\n"
         "(\"ACKs are precious\"); only the loss of EVERY ACK in a round —\n"
         "probability P_a in the enhanced model — produces the spurious RTO.\n";
  return 0;
}
