// Corpus report: generates a (scaled) synthetic replica of the paper's
// Table I dataset, runs the §III measurement methodology over every flow,
// and prints the headline statistics side by side with the paper's numbers.
//
//   $ ./corpus_report [scale] [seed]
//
// scale in (0,1] shrinks the 255-flow corpus proportionally (default 0.2
// for a quick run; use 1.0 to regenerate the full corpus).
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "model/params.h"
#include "util/stats.h"
#include "workload/dataset.h"

int main(int argc, char** argv) {
  using namespace hsr;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  workload::DatasetSpec spec = workload::DatasetSpec::paper_table1(scale);
  if (argc > 2) spec.seed = std::strtoull(argv[2], nullptr, 10);

  std::cout << "Generating corpus (scale " << scale << ", seed " << spec.seed
            << ") ...\n";
  const workload::DatasetResult ds = workload::generate_dataset(spec);
  const analysis::Corpus::Headline h = ds.corpus.headline();

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "\nflows: " << ds.flows.size() << " ("
            << h.flows_highspeed << " high-speed + " << h.flows_stationary
            << " stationary), captures " << ds.total_capture_gb() << " GB\n\n";

  const auto row = [](const char* name, double paper, double measured,
                      const char* unit) {
    std::cout << std::left << std::setw(38) << name << " paper=" << std::setw(9)
              << paper << " measured=" << std::setw(9) << measured << " " << unit
              << "\n";
  };
  row("mean recovery duration (high-speed)", 5.05, h.mean_recovery_s_highspeed, "s");
  row("mean recovery duration (stationary)", 0.65, h.mean_recovery_s_stationary, "s");
  row("spurious timeout share", 49.24, h.spurious_timeout_share * 100, "%");
  row("mean ACK loss (high-speed)", 0.661, h.mean_ack_loss_highspeed * 100, "%");
  row("mean ACK loss (stationary)", 0.0718, h.mean_ack_loss_stationary * 100, "%");
  row("mean data loss (high-speed)", 0.7526, h.mean_data_loss_highspeed * 100, "%");
  row("mean in-recovery retx loss (q)", 27.26, h.mean_recovery_loss_highspeed * 100, "%");

  // Model accuracy over the high-speed corpus (Fig. 10 aggregate).
  util::RunningStats d_padhye, d_enhanced;
  for (const auto& f : ds.flows) {
    // Exclude non-steady-state flows (dominated by one dead zone; see
    // bench_fig10 for the rationale).
    if (!f.high_speed || f.goodput_pps < 2.0 ||
        f.analysis.recovery_time_fraction > 0.5) {
      continue;
    }
    model::EstimationOptions opt;
    opt.b = f.delayed_ack_b;
    opt.w_m = f.receiver_window;
    const model::FlowEvaluation ev = model::evaluate_flow(f.analysis, opt);
    d_padhye.add(ev.d_padhye);
    d_enhanced.add(ev.d_enhanced);
  }
  std::cout << "\n--- model deviation D (high-speed corpus) ---\n";
  row("mean D, Padhye model", 21.96, d_padhye.mean() * 100, "%");
  row("mean D, enhanced model", 5.66, d_enhanced.mean() * 100, "%");
  row("accuracy improvement", 16.30,
      (d_padhye.mean() - d_enhanced.mean()) * 100, "pp");

  // Per-provider flow counts (Table I sanity).
  std::cout << "\n--- per-provider (high-speed) ---\n";
  for (const char* prov : {"China Mobile", "China Unicom", "China Telecom"}) {
    util::RunningStats goodput, ack_loss, recovery;
    for (const auto& f : ds.flows) {
      if (!f.high_speed || f.provider != prov) continue;
      goodput.add(f.goodput_pps);
      ack_loss.add(f.analysis.ack_loss_rate);
      if (f.analysis.has_timeouts())
        recovery.add(f.analysis.mean_recovery_duration.to_seconds());
    }
    std::cout << std::left << std::setw(14) << prov << " flows=" << std::setw(4)
              << goodput.count() << " goodput=" << std::setw(8) << goodput.mean()
              << " seg/s  ack_loss=" << std::setw(7) << ack_loss.mean() * 100
              << "%  recovery=" << recovery.mean() << " s\n";
  }
  return 0;
}
