// Quickstart: simulate one TCP flow on a high-speed train, analyze the
// capture exactly as the paper's methodology does, and compare the measured
// goodput against the Padhye model and the enhanced model.
//
//   $ ./quickstart [seed] [duration_s]
#include <cstdlib>
#include <iostream>

#include "analysis/flow_analysis.h"
#include "model/params.h"
#include "radio/profiles.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace hsr;

  workload::FlowRunConfig cfg;
  cfg.profile = radio::mobile_lte_highspeed();
  cfg.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  cfg.duration = util::Duration::from_seconds(argc > 2 ? std::atof(argv[2]) : 60.0);

  std::cout << "=== hsrtcp quickstart ===\n"
            << "profile:  " << cfg.profile.name << " (300 km/h)\n"
            << "duration: " << cfg.duration.to_seconds() << " s, seed " << cfg.seed
            << "\n\n";

  // 1. Run the flow on the simulated HSR path.
  const workload::FlowRunResult run = workload::run_flow(cfg);
  std::cout << "--- ground truth (TCP stack) ---\n"
            << "segments sent:     " << run.sender_stats.segments_sent << "\n"
            << "retransmissions:   " << run.sender_stats.retransmissions << "\n"
            << "timeouts:          " << run.sender_stats.timeouts << "\n"
            << "fast retransmits:  " << run.sender_stats.fast_retransmits << "\n"
            << "max RTO backoff:   " << run.sender_stats.max_backoff_seen << "x\n"
            << "unique delivered:  " << run.receiver_stats.unique_segments << "\n"
            << "duplicates:        " << run.receiver_stats.duplicate_segments << "\n"
            << "handoffs crossed:  " << run.handoffs << "\n"
            << "goodput:           " << run.goodput_bps / 1e6 << " Mbit/s\n\n";

  // 2. Analyze the packet capture (methodology of paper §III).
  const analysis::FlowAnalysis a = analysis::analyze_flow(run.capture);
  std::cout << "--- trace analysis (paper §III methodology) ---\n"
            << "data loss rate:         " << a.data_loss_rate * 100 << " %\n"
            << "ACK loss rate:          " << a.ack_loss_rate * 100 << " %\n"
            << "timeout sequences:      " << a.timeout_sequences.size() << "\n"
            << "spurious timeouts:      " << a.spurious_fraction * 100 << " %\n"
            << "recovery retx loss (q): " << a.recovery_retx_loss_rate * 100 << " %\n"
            << "mean recovery duration: " << a.mean_recovery_duration.to_seconds()
            << " s\n"
            << "mean RTT:               " << a.mean_rtt.to_millis() << " ms\n"
            << "ACK burst loss (P_a):   " << a.ack_burst_loss_probability * 100
            << " %\n\n";

  // 3. Model comparison (paper §IV-E).
  model::EstimationOptions opt;
  opt.b = cfg.tcp.delayed_ack_b;
  opt.w_m = cfg.profile.receiver_window_segments;
  const model::FlowEvaluation ev = model::evaluate_flow(a, opt);
  std::cout << "--- model vs trace (Eq. 22 deviation) ---\n"
            << "measured goodput:  " << ev.trace_pps << " segments/s\n"
            << "Padhye model:      " << ev.padhye_pps << " segments/s  (D = "
            << ev.d_padhye * 100 << " %)\n"
            << "enhanced model:    " << ev.enhanced_pps << " segments/s  (D = "
            << ev.d_enhanced * 100 << " %)\n";
  return 0;
}
