// Simulates a complete Beijing South -> Tianjin trip on the Beijing-Tianjin
// Intercity Railway (the paper's testbed): ~120 km in ~33 minutes, with
// acceleration out of Beijing South, a 300 km/h cruise, the Wuqing stop,
// and deceleration into Tianjin — while one TCP bulk download runs the
// whole way. Prints a per-interval goodput timeline with the train's speed
// and the radio events, and writes the full series to btr_journey.csv.
//
//   $ ./btr_journey [seed] [provider: mobile|unicom|telecom]
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>

#include "radio/profiles.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "trace/capture.h"
#include "util/csv.h"
#include "workload/scenario.h"

using namespace hsr;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2015;
  const std::string prov = argc > 2 ? argv[2] : "mobile";

  radio::ProviderProfile profile;
  if (prov == "telecom") profile = radio::telecom_3g_highspeed();
  else if (prov == "unicom") profile = radio::unicom_3g_highspeed();
  else profile = radio::mobile_lte_highspeed();

  // The BTR timetable, as a piecewise speed profile (~120 km total):
  //   accelerate out of Beijing South, cruise at 300 km/h,
  //   brake + 2 min dwell at Wuqing (~70 km), accelerate,
  //   cruise, brake into Tianjin.
  profile.radio.speed_profile = {
      {180.0, 150.0 / 3.6},  // 3 min pulling out + suburban running
      {120.0, 300.0 / 3.6},  // up to speed
      {540.0, 300.0 / 3.6},  // cruise leg 1
      {90.0, 120.0 / 3.6},   // braking for Wuqing
      {120.0, 0.0},          // Wuqing dwell
      {120.0, 200.0 / 3.6},  // pulling out
      {540.0, 300.0 / 3.6},  // cruise leg 2
      {150.0, 120.0 / 3.6},  // braking into Tianjin
      {60.0, 0.0},           // arrived
  };
  double total_s = 0.0;
  for (const auto& ph : profile.radio.speed_profile) total_s += ph.duration_s;

  std::cout << "=== Beijing South -> Tianjin, " << profile.name << ", seed "
            << seed << " ===\n"
            << "journey: " << total_s / 60.0 << " min\n\n";

  sim::Simulator sim;
  util::Rng rng(seed);
  radio::RadioEnvironment env(profile.radio, rng.fork("radio"));

  workload::FlowRunConfig base;
  base.profile = profile;
  tcp::ConnectionConfig cfg;
  cfg.tcp = workload::tcp_config_for(base);
  cfg.downlink.rate_bps = profile.downlink_rate_bps;
  cfg.downlink.prop_delay = profile.core_delay;
  cfg.downlink.queue_capacity = profile.queue_capacity;
  cfg.uplink.rate_bps = profile.uplink_rate_bps;
  cfg.uplink.prop_delay = profile.core_delay;

  tcp::Connection conn(sim, 1, cfg,
                       env.make_channel(radio::Direction::kDownlink, rng.fork("d")),
                       env.make_channel(radio::Direction::kUplink, rng.fork("u")));
  conn.start();

  std::ofstream csv_file("btr_journey.csv");
  util::CsvWriter csv(csv_file);
  csv.row("t_s", "position_km", "speed_kmh", "goodput_mbps", "timeouts_so_far");

  std::cout << std::fixed << std::setprecision(1);
  std::cout << "  time   position   speed      goodput   events\n";
  std::uint64_t prev_delivered = 0;
  std::uint64_t prev_handoffs = 0;
  const double step_s = 30.0;
  for (double t = step_s; t <= total_s; t += step_s) {
    sim.run_until(util::TimePoint::from_seconds(t));
    const std::uint64_t delivered = conn.receiver().stats().unique_segments;
    const double goodput_mbps =
        static_cast<double>(delivered - prev_delivered) * 1400 * 8 / step_s / 1e6;
    const double pos_km = env.position_m(sim.now()) / 1000.0;
    const double speed_kmh = env.speed_at(sim.now()) * 3.6;
    const std::uint64_t handoffs = env.handoff_count(sim.now());

    csv.row(t, pos_km, speed_kmh, goodput_mbps, conn.sender().stats().timeouts);
    if (static_cast<int>(t) % 60 == 0) {  // print one line per minute
      std::cout << "  " << std::setw(5) << t / 60.0 << "m  " << std::setw(6)
                << pos_km << " km  " << std::setw(4) << speed_kmh << " km/h  "
                << std::setw(6) << goodput_mbps << " Mb/s  "
                << (handoffs > prev_handoffs ? "handoff " : "")
                << (speed_kmh == 0.0 ? "[station]" : "") << "\n";
    }
    prev_delivered = delivered;
    prev_handoffs = handoffs;
  }

  const auto& s = conn.sender().stats();
  const auto& r = conn.receiver().stats();
  std::cout << "\n--- journey summary ---\n"
            << "distance covered:   " << env.position_m(sim.now()) / 1000.0 << " km\n"
            << "data delivered:     "
            << static_cast<double>(r.unique_segments) * 1400 / 1e6 << " MB\n"
            << "mean goodput:       " << conn.goodput_bps() / 1e6 << " Mb/s\n"
            << "handoffs crossed:   " << env.handoff_count(sim.now()) << "\n"
            << "timeouts:           " << s.timeouts << "\n"
            << "fast retransmits:   " << s.fast_retransmits << "\n"
            << "duplicate payloads: " << r.duplicate_segments << "\n"
            << "full series:        btr_journey.csv\n";
  return 0;
}
