// Table I: the dataset inventory — campaigns, handsets, providers, flow
// counts and capture sizes. Regenerates the (scaled) synthetic corpus and
// prints the same rows the paper's Table I reports.
#include <iostream>
#include <map>

#include "bench/common.h"

int main() {
  using namespace hsr;
  bench::header("Table I: dataset");

  const auto& ds = bench::corpus();

  struct Row {
    unsigned flows = 0;
    double gb = 0.0;
  };
  std::map<std::pair<std::string, std::string>, Row> rows;  // (campaign|phone, provider)
  for (const auto& f : ds.flows) {
    if (!f.high_speed) continue;
    auto& row = rows[{f.campaign + " / " + f.phone, f.provider}];
    ++row.flows;
    row.gb += static_cast<double>(f.bytes_captured) / 1e9;
  }

  std::cout << std::left << std::setw(36) << "Campaign / Handset" << std::setw(16)
            << "Provider" << std::setw(8) << "Flows" << "Trace (GB)\n";
  unsigned total_flows = 0;
  double total_gb = 0.0;
  for (const auto& [key, row] : rows) {
    std::cout << std::left << std::setw(36) << key.first << std::setw(16)
              << key.second << std::setw(8) << row.flows << row.gb << "\n";
    total_flows += row.flows;
    total_gb += row.gb;
  }
  std::cout << "\n";
  const double s = bench::scale();
  bench::compare_row("total high-speed flows", 255 * s, total_flows, "flows (scaled)");
  bench::compare_row("total captures", 40.47 * s, total_gb,
                     "GB (scaled; capture volume tracks flow durations)");
  std::cout << "note: paper flow counts per cell: 52 / 73 / 65 / 65 at scale 1.0\n";
  return 0;
}
