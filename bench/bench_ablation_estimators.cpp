// Ablation: the estimation choices documented in DESIGN.md §5b.
// Evaluates Fig. 10 (mean deviation D of both models) under each estimator
// variant, so the defaults' contribution is measurable:
//   * loss input: event rate (default) vs first-transmission rate vs raw
//     all-transmission rate,
//   * P_a source: episode-calibrated (default) vs per-round measured vs the
//     paper's analytic p_a^(w/b),
//   * q source: recommended constant 0.3 (default) vs per-flow measured.
#include <iostream>

#include "bench/common.h"
#include "model/params.h"
#include "util/stats.h"

using namespace hsr;

namespace {

struct Result {
  double d_padhye = 0.0;
  double d_enhanced = 0.0;
  unsigned flows = 0;
};

Result evaluate(const model::EstimationOptions& base_opt) {
  util::RunningStats dp, de;
  for (const auto& f : bench::corpus().flows) {
    if (!f.high_speed || f.goodput_pps < 2.0 ||
        f.analysis.recovery_time_fraction > 0.5) {
      continue;
    }
    model::EstimationOptions opt = base_opt;
    opt.b = f.delayed_ack_b;
    opt.w_m = f.receiver_window;
    const model::FlowEvaluation ev = model::evaluate_flow(f.analysis, opt);
    dp.add(ev.d_padhye);
    de.add(ev.d_enhanced);
  }
  return {dp.mean(), de.mean(), static_cast<unsigned>(dp.count())};
}

void report(const char* name, const Result& r) {
  std::cout << std::left << std::setw(44) << name << " D(Padhye)=" << std::setw(8)
            << r.d_padhye * 100 << " D(enhanced)=" << std::setw(8)
            << r.d_enhanced * 100 << " (" << r.flows << " flows)\n";
}

}  // namespace

int main() {
  bench::header("Ablation: estimator choices (DESIGN.md 5b)");

  model::EstimationOptions defaults;
  report("defaults (event rate, episode P_a, q=0.3)", evaluate(defaults));

  std::cout << "\n-- loss-rate input --\n";
  {
    model::EstimationOptions o = defaults;
    o.loss_source = model::EstimationOptions::LossSource::kFirstTxRate;
    report("first-transmission loss rate", evaluate(o));
    o.loss_source = model::EstimationOptions::LossSource::kAllTxRate;
    report("raw all-transmission loss rate", evaluate(o));
  }

  std::cout << "\n-- P_a source --\n";
  {
    model::EstimationOptions o = defaults;
    o.pa_source = model::EstimationOptions::PaSource::kRoundMeasured;
    report("per-round burst estimator", evaluate(o));
    o.pa_source = model::EstimationOptions::PaSource::kDerived;
    report("analytic p_a^(w/b) fixed point", evaluate(o));
  }

  std::cout << "\n-- q source --\n";
  {
    model::EstimationOptions o = defaults;
    o.use_measured_q = true;
    report("per-flow measured q-hat", evaluate(o));
    o.use_measured_q = false;
    o.recommended_q = 0.25;
    report("constant q = 0.25 (paper lower bound)", evaluate(o));
    o.recommended_q = 0.4;
    report("constant q = 0.40 (paper upper bound)", evaluate(o));
  }

  std::cout << "\nexpected: the D(Padhye) column only responds to the loss\n"
               "input (the baseline ignores P_a and q); the enhanced model is\n"
               "most sensitive to the P_a source, where clustered bursts make\n"
               "the naive per-round estimator overshoot.\n";
  return 0;
}
