// Fig. 5: the two mechanism cases where ACK loss triggers a (spurious)
// timeout, reproduced as deterministic scripted scenarios:
//   (a) every ACK of a round is lost -> the sender mistakes ACK loss for
//       data loss and retransmits after T;
//   (b) some ACKs survive, the window slides, the next round shrinks to a
//       single ACK — losing that one ACK also triggers a timeout.
#include <iostream>
#include <memory>

#include "bench/common.h"
#include "net/channel.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "util/rng.h"

using namespace hsr;

namespace {

// Runs a scenario whose uplink drops ACKs per `drop_nth` (called with the
// 1-based ACK index; return true to drop).
void run_case(const char* title, std::function<bool(int)> drop_nth) {
  sim::Simulator sim;
  tcp::ConnectionConfig cfg;
  cfg.tcp.receiver_window = 6;  // the 6-packet round of the paper's figure
  cfg.tcp.delayed_ack_b = 1;    // paper: "if delayed ACKs are not used"
  cfg.tcp.initial_cwnd = 6.0;
  cfg.tcp.total_segments = 40;
  cfg.downlink.rate_bps = 10e6;
  cfg.downlink.prop_delay = util::Duration::millis(20);
  cfg.uplink.rate_bps = 10e6;
  cfg.uplink.prop_delay = util::Duration::millis(20);

  int ack_index = 0;
  auto up = std::make_unique<net::FunctionalChannel>(
      [&ack_index, drop_nth](const net::Packet&, util::TimePoint) {
        return drop_nth(++ack_index) ? 1.0 : 0.0;
      },
      [](const net::Packet&, util::TimePoint) { return util::Duration::zero(); },
      util::Rng(1));

  tcp::Connection conn(sim, 1, cfg, std::make_unique<net::PerfectChannel>(),
                       std::move(up));
  conn.start();
  sim.run_until(util::TimePoint::from_seconds(10));

  std::cout << title << "\n";
  std::cout << "  data delivered (unique): " << conn.receiver().stats().unique_segments
            << ", data lost: " << conn.downlink().stats().dropped_total() << "\n";
  std::cout << "  ACKs sent: " << conn.uplink().stats().sent << ", ACKs lost: "
            << conn.uplink().stats().dropped_total() << "\n";
  std::cout << "  timeouts: " << conn.sender().stats().timeouts
            << ", duplicate payloads at receiver: "
            << conn.receiver().stats().duplicate_segments << "\n";
  for (const auto& e : conn.sender().events()) {
    if (e.type == tcp::SenderEventType::kTimeout) {
      std::cout << "  -> spurious RTO at t=" << e.when.to_seconds() << " s for seq "
                << e.seq << " (timer " << e.rto_value.to_seconds() << " s)\n";
    }
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::header("Fig. 5: two cases where ACK loss triggers a timeout");

  // Case (a): the whole first round of 6 ACKs is lost; no data loss at all.
  run_case("case (a): all 6 ACKs of round k lost",
           [](int ack) { return ack <= 6; });

  // Case (b): 5 of 6 ACKs of round k lost -> window slides by what the one
  // surviving (cumulative) ACK covers; the follow-up round's ACKs are then
  // all lost, stalling the sender into a timeout.
  run_case("case (b): one ACK of round k survives, the next round's are lost",
           [](int ack) { return ack != 3 && ack <= 9; });

  std::cout << "expected: both cases end with >= 1 timeout and duplicate\n"
               "payloads at the receiver, with ZERO data-packet loss —\n"
               "ACK (burst) loss alone finished the CA phase.\n";
  return 0;
}
