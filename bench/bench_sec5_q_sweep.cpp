// §V-B: reliable retransmission (MPTCP's double retransmission) works by
// reducing q, the retransmit loss rate during timeout recovery. Model sweep
// of throughput vs q, plus the measured rescue effect in backup mode.
#include <iostream>

#include "bench/common.h"
#include "model/enhanced.h"
#include "radio/profiles.h"
#include "util/csv.h"
#include "workload/scenario.h"

int main() {
  using namespace hsr;
  bench::header("Section V-B: throughput vs q (reliable retransmission)");

  auto csv = bench::open_csv("sec5_q_sweep.csv");
  util::CsvWriter w(csv);
  w.row("q", "throughput_pps", "expected_timeouts_per_seq", "seq_duration_s");

  std::cout << "--- model sweep (p_d=0.75 %, P_a=1 %, RTT=100 ms, T=1 s) ---\n";
  std::cout << "  q       TP (seg/s)   E[R]      E[A_TO] (s)\n";
  double tp_at_0 = 0.0, tp_at_04 = 0.0;
  for (double q : {0.0, 0.1, 0.2, 0.25, 0.3, 0.4, 0.5, 0.7, 0.9}) {
    model::EnhancedInputs in;
    in.p_d = 0.0075;
    in.P_a = 0.01;
    in.q = q;
    in.path = model::PathParams{0.1, 1.0, 2.0, 512.0};
    const auto bd = model::enhanced_model(in);
    if (q == 0.0) tp_at_0 = bd.throughput_pps;
    if (q == 0.4) tp_at_04 = bd.throughput_pps;
    std::cout << "  " << std::setw(5) << q << "   " << std::setw(9)
              << bd.throughput_pps << "   " << std::setw(7) << bd.e_r << "   "
              << bd.e_a_to_s << "\n";
    w.row(q, bd.throughput_pps, bd.e_r, bd.e_a_to_s);
  }
  std::cout << "reducing q from 0.4 (paper's upper bound) to ~0 recovers "
            << (tp_at_0 / tp_at_04 - 1.0) * 100 << " % throughput in the model\n\n";

  // --- Measured: MPTCP backup-mode rescues on the worst provider. -----------
  std::cout << "--- measured: backup-mode double retransmission (Telecom) ---\n";
  const auto cmp = workload::run_mptcp_comparison(radio::telecom_3g_highspeed(),
                                                  util::Duration::seconds(90),
                                                  bench::seed(), mptcp::Mode::kBackup);
  std::cout << "single-path TCP: " << cmp.tcp_pps << " seg/s\n"
            << "MPTCP backup:    " << cmp.mptcp_pps << " seg/s  ("
            << cmp.improvement * 100 << " % better)\n"
            << "rescue retransmissions: " << cmp.rescues << " (useful: "
            << cmp.useful_rescues << ")\n";
  std::cout << "\nexpected: even in BACKUP mode (secondary path idle), rescuing\n"
               "only the timed-out packets on the second subflow improves the\n"
               "user's experience — the q-reduction mechanism of §V-B.\n";
  return 0;
}
