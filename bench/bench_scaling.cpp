// Parallel-runner scaling bench: wall time of generate_dataset at 1/2/4/8
// threads. Determinism makes the comparison exact — every thread count
// produces the identical corpus, so the only thing that varies is time.
//
// Emits:
//   bench_out/scaling.csv       one row per thread count
//   bench_out/BENCH_parallel.json  machine-readable summary
//
// Knobs: HSR_BENCH_SCALE / HSR_BENCH_SEED as everywhere else. Thread counts
// above the machine's core count are still measured (they must be correct,
// just not faster); the JSON records hardware_concurrency for context.
//
// Each thread count runs HSR_BENCH_REPS times (default 3): the row reports the
// best (minimum) wall time and the JSON carries the per-rep wall-time spread
// so bench_compare.py can widen its regression gate by the observed run-to-run
// noise instead of comparing two point samples (schema_version 3).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/common.h"

int main() {
  using namespace hsr;
  bench::header("Parallel corpus sharding: scaling");

  workload::DatasetSpec spec = workload::DatasetSpec::paper_table1(bench::scale());
  spec.seed = bench::seed();

  int reps = 3;
  if (const char* e = std::getenv("HSR_BENCH_REPS")) reps = std::max(1, std::atoi(e));

  struct Row {
    unsigned threads = 0;
    double wall_s = 0.0;  // best (minimum) across reps
    double wall_min_s = 0.0;
    double wall_max_s = 0.0;
    double wall_mean_s = 0.0;
    double wall_stddev_s = 0.0;
    std::uint64_t events = 0;
    double events_per_s = 0.0;
    double tombstone_ratio = 0.0;
    double speedup = 0.0;
  };
  std::vector<Row> rows;

  double base_wall = 0.0;
  std::uint64_t base_bytes = 0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    spec.threads = threads;
    Row row;
    row.threads = threads;
    std::vector<double> walls;
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const workload::DatasetResult ds = workload::generate_dataset(spec);
      const auto t1 = std::chrono::steady_clock::now();
      walls.push_back(std::chrono::duration<double>(t1 - t0).count());

      row.events = ds.total_sim_events();
      row.tombstone_ratio = static_cast<double>(ds.total_sim_tombstones()) /
                            static_cast<double>(ds.total_sim_scheduled());

      // Cross-check: every run — any thread count, any rep — must produce the
      // identical corpus.
      std::uint64_t bytes = 0;
      for (const auto& f : ds.flows) bytes += f.bytes_captured;
      if (base_bytes == 0) {
        base_bytes = bytes;
      } else if (bytes != base_bytes) {
        std::cerr << "DETERMINISM VIOLATION: threads=" << threads
                  << " rep=" << rep << " corpus differs\n";
        return 1;
      }
    }

    row.wall_min_s = *std::min_element(walls.begin(), walls.end());
    row.wall_max_s = *std::max_element(walls.begin(), walls.end());
    double sum = 0.0;
    for (double w : walls) sum += w;
    row.wall_mean_s = sum / static_cast<double>(walls.size());
    double var = 0.0;
    for (double w : walls) var += (w - row.wall_mean_s) * (w - row.wall_mean_s);
    row.wall_stddev_s = std::sqrt(var / static_cast<double>(walls.size()));
    row.wall_s = row.wall_min_s;
    row.events_per_s = static_cast<double>(row.events) / row.wall_s;
    if (threads == 1) base_wall = row.wall_s;
    row.speedup = base_wall / row.wall_s;
    rows.push_back(row);

    std::cout << "threads=" << threads << "  wall=" << row.wall_s << " s"
              << " (spread " << row.wall_min_s << ".." << row.wall_max_s << ")"
              << "  events/s=" << row.events_per_s
              << "  speedup=" << row.speedup
              << "  tombstone_ratio=" << row.tombstone_ratio << "\n";
  }

  auto csv = bench::open_csv("scaling.csv");
  csv << "threads,wall_s,sim_events,events_per_s,speedup,tombstone_ratio\n";
  for (const auto& r : rows) {
    csv << r.threads << "," << r.wall_s << "," << r.events << ","
        << r.events_per_s << "," << r.speedup << "," << r.tombstone_ratio << "\n";
  }

  // Honest hardware context: speedup is bounded by the cores actually
  // available, so a curve recorded on a small container must say so —
  // otherwise a future diff on a bigger box reads as a regression (or this
  // one as a parallelism bug). max_meaningful_speedup makes the bound
  // explicit and core_limited flags every thread count the host can't back
  // with real parallelism.
  const unsigned hw = std::thread::hardware_concurrency();
  std::ofstream json(bench::out_dir() / "BENCH_parallel.json");
  json << "{\n  \"bench\": \"parallel_corpus_sharding\",\n"
       << "  \"schema_version\": 3,\n"
       << "  \"scale\": " << bench::scale() << ",\n"
       << "  \"seed\": " << bench::seed() << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"max_meaningful_speedup\": " << (hw == 0 ? 1 : hw) << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"threads\": " << r.threads << ", \"wall_s\": " << r.wall_s
         << ", \"wall_spread\": {\"min\": " << r.wall_min_s
         << ", \"max\": " << r.wall_max_s
         << ", \"mean\": " << r.wall_mean_s
         << ", \"stddev\": " << r.wall_stddev_s << "}"
         << ", \"sim_events\": " << r.events
         << ", \"events_per_s\": " << r.events_per_s
         << ", \"speedup\": " << r.speedup
         << ", \"core_limited\": " << (r.threads > hw ? "true" : "false")
         << ", \"tombstone_ratio\": " << r.tombstone_ratio << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "[json] summary -> " << (bench::out_dir() / "BENCH_parallel.json").string()
            << "\n";
  return 0;
}
