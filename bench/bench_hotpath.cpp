// Canonical hot-path benchmark: the per-PR perf trajectory record.
//
// Measures the simulation core's steady-state costs — event schedule/fire,
// timer reschedule, cancel churn (all in events or ops per second, with
// allocations per operation counted by the alloc probe), and an end-to-end
// paper-scale flow (events/sec and flows/sec) — and emits a machine-
// readable bench_out/BENCH_hotpath.json in a stable schema.
//
// Compare two runs with tools/bench_compare.py:
//   ./bench_hotpath                 # full run, ~seconds
//   ./bench_hotpath --quick         # CI smoke: small op counts, short flow
//   python3 tools/bench_compare.py baseline.json current.json
//
// JSON schema (schema_version 3; v3 added the lossy-flow metrics — a
// SACK-enabled flow under scripted burst loss — and made the flow
// allocation ratios steady-state probe-window measurements, pinned at
// exactly 0): top-level run metadata, a flat
// "metrics" object holding the best-of-N values, and a "spread" object
// recording min/max/mean/stddev of every throughput metric across the N
// reps. Keys ending in "_per_s" are throughputs (higher is better); keys
// containing "allocs_per" are allocation ratios (lower is better; their
// counts are deterministic, so they carry no spread entry). bench_compare.py
// keys off these suffixes and widens its regression gate by the recorded
// relative spread, so additions must follow the same naming convention.
#define HSRTCP_ALLOC_PROBE_DEFINE_GLOBALS
#include "util/alloc_probe.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <vector>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "bench/common.h"
#include "radio/profiles.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

namespace {

using hsr::sim::EventQueue;
using hsr::util::AllocProbe;
using hsr::util::TimePoint;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct SectionResult {
  double ops_per_s = 0.0;
  double allocs_per_op = 0.0;
};

// Per-rep dispersion of a throughput metric. Recorded alongside the
// best-of-N value so bench_compare.py can tell "this box is noisy" from
// "this change is slow" and widen its gate accordingly.
struct Spread {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;

  static Spread of(const std::vector<double>& xs) {
    Spread s;
    if (xs.empty()) return s;
    s.min = s.max = xs[0];
    double sum = 0.0;
    for (double x : xs) {
      s.min = std::min(s.min, x);
      s.max = std::max(s.max, x);
      sum += x;
    }
    s.mean = sum / static_cast<double>(xs.size());
    double sq = 0.0;
    for (double x : xs) sq += (x - s.mean) * (x - s.mean);
    // Population stddev: the reps ARE the whole sample being described.
    s.stddev = std::sqrt(sq / static_cast<double>(xs.size()));
    return s;
  }
};

// Best-of-N wrapper: peak throughput is the stable statistic on a shared/
// noisy box (allocation counts are deterministic — every rep agrees), but
// every rep's throughput is kept so the JSON can record the spread.
struct SectionRuns {
  SectionResult best;
  Spread ops;
};

template <class Fn>
SectionRuns best_of(int reps, Fn fn) {
  SectionRuns out;
  std::vector<double> xs;
  out.best = fn();
  xs.push_back(out.best.ops_per_s);
  for (int i = 1; i < reps; ++i) {
    auto r = fn();
    xs.push_back(r.ops_per_s);
    if (r.ops_per_s > out.best.ops_per_s) out.best = r;
  }
  out.ops = Spread::of(xs);
  return out;
}

// One pending event at a time: the pure schedule→fire cycle.
SectionResult bench_schedule_fire(std::uint64_t ops) {
  EventQueue q;
  std::uint64_t fired = 0;
  auto cycle = [&](std::uint64_t i) {
    q.schedule(TimePoint::from_ns(static_cast<std::int64_t>(i)), [&fired] { ++fired; });
    q.pop_and_run();
  };
  for (std::uint64_t i = 0; i < 1024; ++i) cycle(i);  // warm-up: slab growth
  AllocProbe::Scope scope;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 1024; i < ops; ++i) cycle(i);
  const double wall = seconds_since(t0);
  SectionResult r;
  r.ops_per_s = static_cast<double>(ops - 1024) / wall;
  r.allocs_per_op =
      static_cast<double>(scope.news_delta()) / static_cast<double>(ops - 1024);
  return r;
}

// Standing population of in-flight events (a busy link) with FIFO drain:
// stresses heap sift costs at realistic depths.
SectionResult bench_burst_fire(std::uint64_t ops) {
  constexpr std::uint64_t kBatch = 512;
  EventQueue q;
  std::uint64_t fired = 0;
  std::int64_t stamp = 0;
  auto burst = [&] {
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      q.schedule(TimePoint::from_ns(++stamp), [&fired] { ++fired; });
    }
    while (!q.empty()) q.pop_and_run();
  };
  burst();  // warm-up
  AllocProbe::Scope scope;
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t bursts = ops / kBatch;
  for (std::uint64_t b = 0; b < bursts; ++b) burst();
  const double wall = seconds_since(t0);
  SectionResult r;
  r.ops_per_s = static_cast<double>(bursts * kBatch) / wall;
  r.allocs_per_op =
      static_cast<double>(scope.news_delta()) / static_cast<double>(bursts * kBatch);
  return r;
}

// ACK-clocked RTO re-arm: one live timer moved in place over a background
// population (the EventQueue::reschedule fast path).
SectionResult bench_reschedule(std::uint64_t ops) {
  EventQueue q;
  for (int i = 0; i < 256; ++i) {
    q.schedule(TimePoint::from_ns(1'000'000 + i), [] {});
  }
  const hsr::sim::EventHandle timer = q.schedule(TimePoint::from_ns(2'000'000), [] {});
  for (std::uint64_t i = 1; i <= 1024; ++i) {  // warm-up: compaction high-water
    q.reschedule(timer, TimePoint::from_ns(2'000'000 + static_cast<std::int64_t>(i)));
  }
  AllocProbe::Scope scope;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 1025; i <= ops; ++i) {
    q.reschedule(timer, TimePoint::from_ns(2'000'000 + static_cast<std::int64_t>(i)));
  }
  const double wall = seconds_since(t0);
  SectionResult r;
  r.ops_per_s = static_cast<double>(ops - 1024) / wall;
  r.allocs_per_op =
      static_cast<double>(scope.news_delta()) / static_cast<double>(ops - 1024);
  return r;
}

// Schedule + cancel under a long-lived survivor: the tombstone/compaction
// path.
SectionResult bench_cancel_churn(std::uint64_t ops) {
  EventQueue q;
  q.schedule(TimePoint::from_ns(std::int64_t{1} << 60), [] {});
  auto churn = [&](std::uint64_t i) {
    hsr::sim::EventHandle h =
        q.schedule(TimePoint::from_ns(2'000'000 + static_cast<std::int64_t>(i)), [] {});
    h.cancel();
  };
  for (std::uint64_t i = 0; i < 1024; ++i) churn(i);  // warm-up
  AllocProbe::Scope scope;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 1024; i < ops; ++i) churn(i);
  const double wall = seconds_since(t0);
  SectionResult r;
  r.ops_per_s = static_cast<double>(ops - 1024) / wall;
  r.allocs_per_op =
      static_cast<double>(scope.news_delta()) / static_cast<double>(ops - 1024);
  return r;
}

struct FlowResult {
  double events_per_s = 0.0;   // simulated events per wall second
  double flows_per_s = 0.0;    // whole flows per wall second
  double allocs_per_event = 0.0;  // steady-state: probe window, exactly 0
  std::uint64_t sim_events = 0;
  double sim_duration_s = 0.0;
};

// End-to-end: one paper-scale bulk-download flow (links, radio channels,
// capture taps, the full TCP stack). The allocation ratio is measured over
// the steady-state probe window [10% of the flow, end]: setup and the
// one-time high-water growth of queue/capture storage happen before the
// window opens, so the ratio is EXACTLY zero — the endpoint layer's flat
// scoreboards and segment rings never touch the allocator per event.
FlowResult measure_flow(hsr::workload::FlowRunConfig cfg, double sim_seconds) {
  cfg.duration = hsr::util::Duration::from_seconds(sim_seconds);
  cfg.probe_begin = TimePoint::zero() + cfg.duration / 10;
  cfg.probe_end = TimePoint::zero() + cfg.duration;
  (void)hsr::workload::run_flow(cfg);  // warm-up run
  const auto t0 = std::chrono::steady_clock::now();
  const hsr::workload::FlowRunResult run = hsr::workload::run_flow(cfg);
  const double wall = seconds_since(t0);
  FlowResult r;
  r.sim_events = run.sim_events;
  r.sim_duration_s = sim_seconds;
  r.events_per_s = static_cast<double>(run.sim_events) / wall;
  r.flows_per_s = 1.0 / wall;
  r.allocs_per_event = static_cast<double>(run.steady_allocs) /
                       static_cast<double>(run.steady_events);
  return r;
}

FlowResult bench_flow(double sim_seconds, std::uint64_t seed) {
  hsr::workload::FlowRunConfig cfg;
  cfg.profile = hsr::radio::mobile_lte_highspeed();
  cfg.seed = seed;
  return measure_flow(std::move(cfg), sim_seconds);
}

// Loss-recovery hot path: the same paper-scale flow with SACK enabled and a
// scripted burst-loss plan (periodic 250 ms downlink blackouts — handoff-
// style outages). Every blackout forces scoreboard marks, hole
// retransmission scans and RTO churn, so this measures the endpoints'
// recovery machinery — where the former std::set scoreboard did its
// per-ACK node walks — rather than the in-order fast path.
FlowResult bench_lossy_flow(double sim_seconds, std::uint64_t seed) {
  hsr::workload::FlowRunConfig cfg;
  cfg.profile = hsr::radio::mobile_lte_highspeed();
  cfg.seed = seed;
  cfg.tcp.enable_sack = true;
  for (double t = 2.0; t < sim_seconds; t += 5.0) {
    cfg.downlink_faults.blackout(
        TimePoint::from_seconds(t),
        TimePoint::from_seconds(t + 0.25),
        "bench-burst");
  }
  return measure_flow(std::move(cfg), sim_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsr;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::cerr << "usage: bench_hotpath [--quick]\n";
      return 2;
    }
  }
  bench::header(quick ? "Simulation hot path (quick smoke)"
                      : "Simulation hot path");

  const std::uint64_t ops = quick ? 200'000 : 4'000'000;
  const double flow_secs = quick ? 30.0 : 300.0;
  const int reps = quick ? 1 : 3;

  const SectionRuns sf = best_of(reps, [&] { return bench_schedule_fire(ops); });
  std::cout << "schedule+fire      " << sf.best.ops_per_s << " events/s  "
            << sf.best.allocs_per_op << " allocs/event\n";
  const SectionRuns bf = best_of(reps, [&] { return bench_burst_fire(ops); });
  std::cout << "burst(512)+drain   " << bf.best.ops_per_s << " events/s  "
            << bf.best.allocs_per_op << " allocs/event\n";
  const SectionRuns rs = best_of(reps, [&] { return bench_reschedule(ops); });
  std::cout << "reschedule         " << rs.best.ops_per_s << " ops/s     "
            << rs.best.allocs_per_op << " allocs/op\n";
  const SectionRuns cc = best_of(reps, [&] { return bench_cancel_churn(ops); });
  std::cout << "cancel churn       " << cc.best.ops_per_s << " ops/s     "
            << cc.best.allocs_per_op << " allocs/op\n";
  FlowResult fl = bench_flow(flow_secs, bench::seed());
  std::vector<double> flow_events_reps{fl.events_per_s};
  std::vector<double> flow_flows_reps{fl.flows_per_s};
  for (int i = 1; i < reps; ++i) {
    const FlowResult r = bench_flow(flow_secs, bench::seed());
    flow_events_reps.push_back(r.events_per_s);
    flow_flows_reps.push_back(r.flows_per_s);
    if (r.events_per_s > fl.events_per_s) fl = r;
  }
  const Spread flow_events_spread = Spread::of(flow_events_reps);
  const Spread flow_flows_spread = Spread::of(flow_flows_reps);
  std::cout << "flow (" << flow_secs << " s sim)  " << fl.events_per_s
            << " events/s  " << fl.flows_per_s << " flows/s  "
            << fl.allocs_per_event << " allocs/event ("
            << fl.sim_events << " events)\n";
  FlowResult lf = bench_lossy_flow(flow_secs, bench::seed());
  std::vector<double> lossy_events_reps{lf.events_per_s};
  for (int i = 1; i < reps; ++i) {
    const FlowResult r = bench_lossy_flow(flow_secs, bench::seed());
    lossy_events_reps.push_back(r.events_per_s);
    if (r.events_per_s > lf.events_per_s) lf = r;
  }
  const Spread lossy_events_spread = Spread::of(lossy_events_reps);
  std::cout << "lossy flow (" << flow_secs << " s sim, SACK+bursts)  "
            << lf.events_per_s << " events/s  " << lf.allocs_per_event
            << " allocs/event (" << lf.sim_events << " events)\n";

  const auto path = bench::out_dir() / "BENCH_hotpath.json";
  std::ofstream json(path);
  json.precision(10);
  const auto spread_entry = [&json](const char* name, const Spread& s,
                                    const char* trailer) {
    json << "    \"" << name << "\": {\"min\": " << s.min
         << ", \"max\": " << s.max << ", \"mean\": " << s.mean
         << ", \"stddev\": " << s.stddev << "}" << trailer << "\n";
  };
  json << "{\n"
       << "  \"bench\": \"hotpath\",\n"
       << "  \"schema_version\": 3,\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"seed\": " << bench::seed() << ",\n"
       << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"ops\": " << ops << ",\n"
       << "  \"flow_sim_duration_s\": " << fl.sim_duration_s << ",\n"
       << "  \"flow_sim_events\": " << fl.sim_events << ",\n"
       << "  \"metrics\": {\n"
       << "    \"schedule_fire_events_per_s\": " << sf.best.ops_per_s << ",\n"
       << "    \"schedule_fire_allocs_per_event\": " << sf.best.allocs_per_op << ",\n"
       << "    \"burst_fire_events_per_s\": " << bf.best.ops_per_s << ",\n"
       << "    \"burst_fire_allocs_per_event\": " << bf.best.allocs_per_op << ",\n"
       << "    \"reschedule_ops_per_s\": " << rs.best.ops_per_s << ",\n"
       << "    \"reschedule_allocs_per_op\": " << rs.best.allocs_per_op << ",\n"
       << "    \"cancel_churn_ops_per_s\": " << cc.best.ops_per_s << ",\n"
       << "    \"cancel_churn_allocs_per_op\": " << cc.best.allocs_per_op << ",\n"
       << "    \"flow_events_per_s\": " << fl.events_per_s << ",\n"
       << "    \"flows_per_s\": " << fl.flows_per_s << ",\n"
       << "    \"flow_allocs_per_event\": " << fl.allocs_per_event << ",\n"
       << "    \"lossy_flow_events_per_s\": " << lf.events_per_s << ",\n"
       << "    \"lossy_flow_allocs_per_event\": " << lf.allocs_per_event << "\n"
       << "  },\n"
       << "  \"spread\": {\n";
  spread_entry("schedule_fire_events_per_s", sf.ops, ",");
  spread_entry("burst_fire_events_per_s", bf.ops, ",");
  spread_entry("reschedule_ops_per_s", rs.ops, ",");
  spread_entry("cancel_churn_ops_per_s", cc.ops, ",");
  spread_entry("flow_events_per_s", flow_events_spread, ",");
  spread_entry("flows_per_s", flow_flows_spread, ",");
  spread_entry("lossy_flow_events_per_s", lossy_events_spread, "");
  json << "  }\n"
       << "}\n";
  std::cout << "[json] summary -> " << path.string() << "\n";
  return 0;
}
