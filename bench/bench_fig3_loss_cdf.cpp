// Fig. 3: CDFs of the two kinds of data loss rates — lifetime loss
// (paper mean 0.7526 %) vs in-recovery retransmit loss (paper mean 27.26 %).
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

int main() {
  using namespace hsr;
  bench::header("Fig. 3: CDF of two kinds of loss rates");

  auto lifetime = bench::corpus().corpus.lifetime_data_loss_cdf(true);
  auto recovery = bench::corpus().corpus.recovery_loss_cdf(true);

  auto csv = bench::open_csv("fig3_loss_cdf.csv");
  util::CsvWriter w(csv);
  w.row("series", "loss_rate", "cdf");
  for (const auto& [x, f] : lifetime.curve(200)) w.row("lifetime", x, f);
  for (const auto& [x, f] : recovery.curve(200)) w.row("recovery", x, f);

  std::cout << "series: lifetime data loss (x) vs in-recovery retransmit loss\n";
  std::cout << "      p    CDF_lifetime   CDF_recovery\n";
  for (double x : {0.001, 0.0025, 0.005, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    std::cout << "  " << std::setw(6) << x << "   " << std::setw(10) << lifetime.cdf(x)
              << "   " << std::setw(10) << recovery.cdf(x) << "\n";
  }
  std::cout << "\n";
  bench::compare_row("mean lifetime data loss", 0.7526, lifetime.mean() * 100, "%");
  bench::compare_row("mean in-recovery retransmit loss", 27.26, recovery.mean() * 100, "%");
  bench::compare_row("separation (recovery / lifetime)", 27.26 / 0.7526,
                     recovery.mean() / std::max(lifetime.mean(), 1e-9), "x");
  return 0;
}
