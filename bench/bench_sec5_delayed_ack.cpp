// §V-A: the traditional delayed-ACK technique aggravates spurious timeouts
// in high-speed mobility — fewer ACKs per round raise P_a = p_a^(w/b).
// Model sweep over b, plus a simulation sweep counting timeouts.
#include <iostream>

#include "bench/common.h"
#include "model/enhanced.h"
#include "radio/profiles.h"
#include "util/csv.h"
#include "util/stats.h"
#include "workload/scenario.h"

int main() {
  using namespace hsr;
  bench::header("Section V-A: delayed acknowledgements vs spurious timeouts");

  // --- Model view: P_a and throughput as b grows. ---------------------------
  std::cout << "--- model sweep (p_a = 2 %, w = 16 segments) ---\n";
  std::cout << "  b    ACKs/round    P_a           predicted TP (seg/s)\n";
  for (double b : {1.0, 2.0, 4.0, 8.0}) {
    const double pa = model::ack_burst_probability(0.02, 16.0, b);
    model::EnhancedInputs in;
    in.p_d = 0.0075;
    in.q = 0.3;
    in.P_a = pa;
    in.path = model::PathParams{0.1, 0.5, b, 256.0};
    std::cout << "  " << b << "    " << std::setw(10) << 16.0 / b << "  "
              << std::setw(12) << pa << "  " << model::enhanced_throughput_pps(in)
              << "\n";
  }
  std::cout << "expected: P_a rises steeply with b (fewer, more precious ACKs).\n\n";

  // --- Simulation view: timeouts and spurious share vs b. -------------------
  std::cout << "--- simulation sweep (Unicom 3G profile, 60 s x 4 seeds) ---\n";
  auto csv = bench::open_csv("sec5_delayed_ack.csv");
  util::CsvWriter w(csv);
  w.row("b", "seed", "timeouts", "duplicates", "goodput_pps");
  std::cout << "  b    timeouts/flow   duplicate payloads/flow   goodput\n";
  double prev_timeouts = -1.0;
  bool monotone = true;
  for (unsigned b : {1u, 2u, 4u}) {
    util::RunningStats timeouts, dups, goodput;
    for (int s = 0; s < 4; ++s) {
      workload::FlowRunConfig cfg;
      cfg.profile = radio::unicom_3g_highspeed();
      cfg.duration = util::Duration::seconds(60);
      cfg.seed = bench::seed() + 7 * s;
      cfg.tcp.delayed_ack_b = b;
      const auto run = workload::run_flow(cfg);
      timeouts.add(run.sender_stats.timeouts);
      dups.add(run.receiver_stats.duplicate_segments);
      goodput.add(run.goodput_pps);
      w.row(b, cfg.seed, run.sender_stats.timeouts,
            run.receiver_stats.duplicate_segments, run.goodput_pps);
    }
    std::cout << "  " << b << "    " << std::setw(12) << timeouts.mean() << "  "
              << std::setw(22) << dups.mean() << "  " << goodput.mean() << "\n";
    if (prev_timeouts >= 0.0 && timeouts.mean() < prev_timeouts - 1.5) {
      monotone = false;
    }
    prev_timeouts = timeouts.mean();
  }
  std::cout << "\nexpected (paper, citing TCP-DCA): fewer ACKs per round make\n"
               "timeouts more likely; the model's P_a term captures this.\n"
            << (monotone ? "[OK] timeout burden does not shrink with b\n"
                         : "[NOTE] simulation noise exceeded the trend at this scale\n");
  return 0;
}
