// Google-benchmark microbenchmarks for the hot paths of the simulator and
// the models: event queue churn, link forwarding, full TCP second-of-sim,
// model evaluation and the trace analyzer.
#include <benchmark/benchmark.h>

#include <iterator>
#include <memory>
#include <set>

#include "analysis/flow_analysis.h"
#include "model/enhanced.h"
#include "model/padhye.h"
#include "net/link.h"
#include "radio/profiles.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "tcp/seq_window.h"
#include "util/rng.h"
#include "workload/scenario.h"

using namespace hsr;

static void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < batch; ++i) {
      sim.after(util::Duration::micros(i % 997), [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

namespace {

// Shared shape of the RTO re-arm workload: a standing population of
// in-flight events (a busy link's transmissions) plus one timer that is
// re-armed once per simulated ACK. `rearm` is the number of ACK-clocked
// re-arms; the two variants below differ only in how the re-arm is done.
constexpr int kRearmBackground = 256;

sim::EventHandle rearm_setup(sim::EventQueue& q) {
  for (int i = 0; i < kRearmBackground; ++i) {
    q.schedule(util::TimePoint::from_ns(1'000'000 + i), [] {});
  }
  return q.schedule(util::TimePoint::from_ns(2'000'000), [] {});
}

void rearm_drain(sim::EventQueue& q, benchmark::State& state) {
  while (!q.empty()) q.pop_and_run();
  state.counters["tombstone_ratio"] = benchmark::Counter(
      static_cast<double>(q.pruned_tombstones_total()) /
      static_cast<double>(q.scheduled_total()));
  state.counters["compactions"] =
      benchmark::Counter(static_cast<double>(q.compactions_total()));
}

}  // namespace

// Baseline re-arm: cancel the pending timer and schedule a replacement.
// Every re-arm allocates a fresh std::function and leaves a tombstone.
static void BM_EventQueueRearmCancelSchedule(benchmark::State& state) {
  const int rearm = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    sim::EventHandle timer = rearm_setup(q);
    for (int i = 1; i <= rearm; ++i) {
      timer.cancel();
      timer = q.schedule(util::TimePoint::from_ns(2'000'000 + i), [] {});
    }
    rearm_drain(q, state);
  }
  state.SetItemsProcessed(state.iterations() * rearm);
}
BENCHMARK(BM_EventQueueRearmCancelSchedule)->Arg(10000);

// Fast-path re-arm: reschedule() moves the pending event in place — no
// allocation, no action re-construction, same tombstone accounting.
static void BM_EventQueueRearmReschedule(benchmark::State& state) {
  const int rearm = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    const sim::EventHandle timer = rearm_setup(q);
    for (int i = 1; i <= rearm; ++i) {
      q.reschedule(timer, util::TimePoint::from_ns(2'000'000 + i));
    }
    rearm_drain(q, state);
  }
  state.SetItemsProcessed(state.iterations() * rearm);
}
BENCHMARK(BM_EventQueueRearmReschedule)->Arg(10000);

// Cancel-heavy churn without re-arm: every event is scheduled then killed
// under a long-lived survivor, the pattern that makes lazy cancellation
// degenerate without compaction.
static void BM_EventQueueCancelChurn(benchmark::State& state) {
  const int churn = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    q.schedule(util::TimePoint::from_ns(10'000'000), [] {});
    for (int i = 0; i < churn; ++i) {
      sim::EventHandle h =
          q.schedule(util::TimePoint::from_ns(20'000'000 + i), [] {});
      h.cancel();
    }
    rearm_drain(q, state);
  }
  state.SetItemsProcessed(state.iterations() * churn);
}
BENCHMARK(BM_EventQueueCancelChurn)->Arg(10000);

// The pipe estimate the sender runs on EVERY ACK: how many segments below
// snd_next are SACKed. Both variants build a half-full scoreboard over a
// `window`-segment in-flight span (every other sequence marked — the worst
// case for both layouts) and time one rank query.
//
// The historical std::set implementation answered with
// std::distance(begin, lower_bound(snd_next)) — a node walk linear in the
// scoreboard population, so each ACK cost O(window) pointer chases and the
// per-round-trip total was O(window^2) at large windows.
static void BM_PipeEstimateSetDistance(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  const net::SeqNo base = 1'000'000;
  std::set<net::SeqNo> board;
  for (net::SeqNo s = base + 1; s <= base + static_cast<net::SeqNo>(window);
       s += 2) {
    board.insert(s);
  }
  // Query just below the highest mark: rank_below's early-outs (empty, at
  // or below the floor, above the top mark) must not trivialize the scan.
  const net::SeqNo snd_next = base + static_cast<net::SeqNo>(window) - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(board);  // defeat hoisting of the pure query
    benchmark::DoNotOptimize(static_cast<std::size_t>(
        std::distance(board.begin(), board.lower_bound(snd_next))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PipeEstimateSetDistance)->Arg(64)->Arg(1024)->Arg(16384);

// The replacement: SeqScoreboard::rank_below popcounts the bitmap — 64
// sequences per word, contiguous memory, no nodes.
static void BM_PipeEstimateScoreboardRank(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  const net::SeqNo base = 1'000'000;
  tcp::SeqScoreboard board(base, static_cast<std::size_t>(window) * 2);
  for (net::SeqNo s = base + 1; s <= base + static_cast<net::SeqNo>(window);
       s += 2) {
    board.mark(s);
  }
  const net::SeqNo snd_next = base + static_cast<net::SeqNo>(window) - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(board);  // defeat hoisting of the pure query
    benchmark::DoNotOptimize(board.rank_below(snd_next));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PipeEstimateScoreboardRank)->Arg(64)->Arg(1024)->Arg(16384);

static void BM_RngBernoulli(benchmark::State& state) {
  util::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.bernoulli(0.01));
  }
}
BENCHMARK(BM_RngBernoulli);

static void BM_LinkForwarding(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::LinkConfig cfg;
    cfg.rate_bps = 100e6;
    cfg.queue_capacity = 10000;
    net::Link link(sim, cfg, std::make_unique<net::BernoulliChannel>(0.01, util::Rng(1)));
    link.set_receiver([](const net::Packet&) {});
    for (int i = 0; i < 1000; ++i) {
      net::Packet p;
      p.id = net::allocate_packet_id();
      p.size_bytes = 1400;
      link.send(std::move(p));
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LinkForwarding);

static void BM_TcpSecondOfSimulation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    tcp::ConnectionConfig cfg;
    cfg.tcp.receiver_window = 64;
    cfg.downlink.rate_bps = 20e6;
    cfg.uplink.rate_bps = 20e6;
    tcp::Connection conn(sim, 1, cfg,
                         std::make_unique<net::BernoulliChannel>(0.005, util::Rng(7)),
                         std::make_unique<net::PerfectChannel>());
    conn.start();
    sim.run_until(util::TimePoint::from_seconds(1));
    benchmark::DoNotOptimize(conn.goodput_segments_per_s());
  }
}
BENCHMARK(BM_TcpSecondOfSimulation);

static void BM_PadhyeModel(benchmark::State& state) {
  model::PadhyeInputs in;
  in.p = 0.0075;
  in.path = model::PathParams{0.1, 0.5, 2.0, 256.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::padhye_throughput_pps(in));
  }
}
BENCHMARK(BM_PadhyeModel);

static void BM_EnhancedModel(benchmark::State& state) {
  model::EnhancedInputs in;
  in.p_d = 0.0075;
  in.P_a = 0.01;
  in.q = 0.3;
  in.path = model::PathParams{0.1, 0.5, 2.0, 256.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::enhanced_throughput_pps(in));
  }
}
BENCHMARK(BM_EnhancedModel);

static void BM_FlowAnalysis(benchmark::State& state) {
  workload::FlowRunConfig cfg;
  cfg.profile = radio::unicom_3g_highspeed();
  cfg.duration = util::Duration::seconds(30);
  cfg.seed = 5;
  const auto run = workload::run_flow(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_flow(run.capture));
  }
  state.SetItemsProcessed(state.iterations() *
                          run.capture.data.sent_count());
}
BENCHMARK(BM_FlowAnalysis);

static void BM_RadioEnvironmentQuery(benchmark::State& state) {
  radio::RadioEnvironment env(radio::unicom_3g_highspeed().radio, util::Rng(3));
  double t = 0.0;
  for (auto _ : state) {
    t += 0.001;
    benchmark::DoNotOptimize(
        env.drop_probability(radio::Direction::kDownlink,
                             util::TimePoint::from_seconds(t)));
  }
}
BENCHMARK(BM_RadioEnvironmentQuery);

BENCHMARK_MAIN();
