// §III headline statistics: the measurement findings that motivate the
// model — long recoveries (5.05 s vs 0.65 s), ~49 % spurious timeouts,
// elevated ACK loss (0.661 % vs 0.0718 %), and q >> p_d (27.26 % vs 0.75 %).
#include <iostream>

#include "bench/common.h"

int main() {
  using namespace hsr;
  bench::header("Section III: headline measurement statistics");

  const auto h = bench::corpus().corpus.headline();
  std::cout << "corpus: " << h.flows_highspeed << " high-speed + "
            << h.flows_stationary << " stationary flows, "
            << h.timeout_sequences_highspeed << " timeout sequences, "
            << bench::corpus().total_capture_gb() << " GB captured\n\n";

  bench::compare_row("mean recovery duration, high-speed", 5.05,
                     h.mean_recovery_s_highspeed, "s");
  bench::compare_row("mean recovery duration, stationary", 0.65,
                     h.mean_recovery_s_stationary, "s");
  bench::compare_row("spurious timeout share", 49.24,
                     h.spurious_timeout_share * 100, "%");
  bench::compare_row("mean ACK loss, high-speed", 0.661,
                     h.mean_ack_loss_highspeed * 100, "%");
  bench::compare_row("mean ACK loss, stationary", 0.0718,
                     h.mean_ack_loss_stationary * 100, "%");
  bench::compare_row("mean data loss, high-speed", 0.7526,
                     h.mean_data_loss_highspeed * 100, "%");
  bench::compare_row("mean in-recovery retransmit loss (q)", 27.26,
                     h.mean_recovery_loss_highspeed * 100, "%");

  std::cout << "\nshape checks:\n";
  const bool recovery_gap =
      h.mean_recovery_s_highspeed > 2.0 * h.mean_recovery_s_stationary;
  const bool ack_gap = h.mean_ack_loss_highspeed > 4.0 * h.mean_ack_loss_stationary;
  const bool q_gap = h.mean_recovery_loss_highspeed > 10.0 * h.mean_data_loss_highspeed;
  std::cout << "  recovery much longer on HSR:  " << (recovery_gap ? "yes" : "NO") << "\n"
            << "  ACK loss much higher on HSR:  " << (ack_gap ? "yes" : "NO") << "\n"
            << "  q dwarfs lifetime data loss:  " << (q_gap ? "yes" : "NO") << "\n";
  return (recovery_gap && ack_gap && q_gap) ? 0 : 1;
}
