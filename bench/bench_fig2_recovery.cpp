// Fig. 2: the retransmission process inside a timeout recovery phase —
// the cautious one-packet-per-timer retransmissions with exponential
// backoff (T, 2T, 4T, ...) until the lost packet finally gets through.
#include <iostream>

#include "analysis/flow_analysis.h"
#include "bench/common.h"
#include "radio/profiles.h"
#include "workload/scenario.h"

int main() {
  using namespace hsr;
  bench::header("Fig. 2: retransmission process in a timeout recovery phase");

  // Search seeds until a flow exhibits a multi-timeout recovery phase.
  for (std::uint64_t seed = bench::seed(); seed < bench::seed() + 60; ++seed) {
    workload::FlowRunConfig cfg;
    cfg.profile = radio::unicom_3g_highspeed();
    cfg.duration = util::Duration::seconds(90);
    cfg.seed = seed;
    const auto run = workload::run_flow(cfg);
    const auto a = analysis::analyze_flow(run.capture);

    for (const auto& ts : a.timeout_sequences) {
      if (ts.num_timeouts < 2 || !ts.recovered_observed) continue;

      std::cout << "flow seed " << seed << ", segment " << ts.seq << ":\n";
      std::cout << "  t=" << ts.ca_end.to_seconds()
                << " s  CA phase ends (last regular transmission of the segment)\n";
      // Reconstruct the retransmission timeline from the capture.
      int k = 0;
      util::TimePoint prev = ts.ca_end;
      for (const auto& tx : run.capture.data.transmissions()) {
        if (tx.packet.seq != ts.seq || tx.sent < ts.first_retx ||
            tx.sent > ts.recovered) {
          continue;
        }
        ++k;
        std::cout << "  t=" << tx.sent.to_seconds() << " s  retransmission #" << k
                  << " (timer waited " << (tx.sent - prev).to_seconds() << " s)  "
                  << (tx.lost() ? "LOST" : "delivered") << "\n";
        prev = tx.sent;
      }
      std::cout << "  t=" << ts.recovered.to_seconds()
                << " s  ACK returns; sender enters slow start\n";
      std::cout << "  recovery phase duration: " << ts.duration().to_seconds()
                << " s;  in-phase retransmit loss: " << ts.retx_loss_rate() * 100
                << " % (paper's example: 66.6 %)\n\n";

      bench::compare_row("backoff doubling observed (gap2/gap1)", 2.0,
                         ts.backoff_gap > util::Duration::zero()
                             ? ts.backoff_gap.to_seconds() /
                                   std::max((ts.first_retx - ts.ca_end).to_seconds(), 1e-9)
                             : 0.0,
                         "x (approximate: first gap includes timer restarts)");
      return 0;
    }
  }
  std::cout << "no multi-timeout recovery phase found in the seed range\n";
  return 1;
}
