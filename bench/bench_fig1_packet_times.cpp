// Fig. 1: per-packet one-way transit times of data packets and ACKs over a
// flow's lifetime, with lost packets plotted at -1, and the flow's timeout
// events marked — the figure that motivates the whole paper.
#include <iostream>

#include "analysis/flow_analysis.h"
#include "bench/common.h"
#include "radio/profiles.h"
#include "util/csv.h"
#include "workload/scenario.h"

int main() {
  using namespace hsr;
  bench::header("Fig. 1: time for ACKs / data packets to arrive");

  workload::FlowRunConfig cfg;
  cfg.profile = radio::mobile_lte_highspeed();
  cfg.duration = util::Duration::seconds(120);
  cfg.seed = bench::seed() + 17;
  const workload::FlowRunResult run = workload::run_flow(cfg);

  // Full-resolution dump (one row per transmission).
  auto csv = bench::open_csv("fig1_packet_times.csv");
  util::CsvWriter w(csv);
  w.row("kind", "sent_s", "transit_ms_or_minus1");
  auto dump = [&w](const char* kind, const trace::DirectionCapture& cap) {
    for (const auto& tx : cap.transmissions()) {
      w.row(kind, tx.sent.to_seconds(), tx.lost() ? -1.0 : tx.transit().to_millis());
    }
  };
  dump("DATA", run.capture.data);
  dump("ACK", run.capture.acks);

  // Terminal preview: 100-ms buckets of mean transit + loss marks.
  const analysis::FlowAnalysis a = analysis::analyze_flow(run.capture);
  std::cout << "flow: " << cfg.profile.name << ", " << cfg.duration.to_seconds()
            << " s, goodput " << run.goodput_pps << " seg/s\n"
            << "data transmissions: " << run.capture.data.sent_count()
            << " (lost " << run.capture.data.lost_count() << ")\n"
            << "ACK transmissions:  " << run.capture.acks.sent_count()
            << " (lost " << run.capture.acks.lost_count() << ")\n"
            << "typical data transit: " << run.capture.data.mean_transit().to_millis()
            << " ms (paper: ~30 ms for most packets)\n\n";

  std::cout << "timeout events in the flow (paper's example flow had 10):\n";
  int i = 0;
  for (const auto& ts : a.timeout_sequences) {
    std::cout << "  #" << ++i << "  t=" << ts.first_retx.to_seconds()
              << " s  seq=" << ts.seq << "  blank=" << ts.duration().to_seconds()
              << " s  " << (ts.spurious ? "[spurious]" : "[data loss]") << "\n";
  }
  bench::compare_row("timeouts in a 2-minute flow", 10, i, "events");
  return 0;
}
