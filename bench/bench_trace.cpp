// Trace-format benchmark: text ("hsrtrace-v2") vs binary columnar
// ("hsrtrace-b1") serialization throughput and size.
//
// At 10^5-10^6-flow campaign scale the corpus I/O — not the simulator — is
// the wall, so this bench records the numbers that justify the binary
// format: write and read throughput (flows/s and MB/s of the format's own
// bytes) and bytes per flow for both formats, over identical captures.
//
//   ./bench_trace                 # full run: 16 flows x 60 s sim, best of 3
//   ./bench_trace --quick         # CI smoke: 4 flows x 10 s sim, 1 rep
//   python3 tools/bench_compare.py baseline.json current.json
//
// Emits bench_out/BENCH_trace.json (schema_version 2: flat best-of-N
// "metrics", per-metric "spread"; "_per_s" keys are throughputs — see
// bench_hotpath.cpp for the conventions bench_compare.py keys off).
//
// The size ratio is deterministic for a given seed, so the bench FAILS
// (exit 1) if the binary format is not at least 4x smaller than text —
// the corpus-scale storage contract, pinned here and in the trace_query
// selftest.
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "radio/profiles.h"
#include "trace/trace_binary.h"
#include "trace/trace_io.h"
#include "workload/scenario.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Spread {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;

  static Spread of(const std::vector<double>& xs) {
    Spread s;
    if (xs.empty()) return s;
    s.min = s.max = xs[0];
    double sum = 0.0;
    for (double x : xs) {
      s.min = std::min(s.min, x);
      s.max = std::max(s.max, x);
      sum += x;
    }
    s.mean = sum / static_cast<double>(xs.size());
    double sq = 0.0;
    for (double x : xs) sq += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(xs.size()));
    return s;
  }
};

// flows/s plus MB/s of the format's own bytes, best of N with spread kept
// for both throughput readings.
struct Throughput {
  double flows_per_s = 0.0;
  double mb_per_s = 0.0;
  Spread flows_spread;
  Spread mb_spread;
};

template <class Fn>
Throughput best_of(int reps, std::uint64_t flows, std::uint64_t bytes, Fn fn) {
  std::vector<double> flows_reps;
  std::vector<double> mb_reps;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double wall = seconds_since(t0);
    flows_reps.push_back(static_cast<double>(flows) / wall);
    mb_reps.push_back(static_cast<double>(bytes) / wall / 1e6);
  }
  Throughput t;
  t.flows_spread = Spread::of(flows_reps);
  t.mb_spread = Spread::of(mb_reps);
  t.flows_per_s = t.flows_spread.max;
  t.mb_per_s = t.mb_spread.max;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  hsr::bench::header(quick ? "Trace formats: text vs binary (quick smoke)"
                           : "Trace formats: text vs binary");

  const std::uint64_t flow_count = quick ? 4 : 16;
  const double flow_secs = quick ? 10.0 : 60.0;
  const int reps = quick ? 1 : 3;

  // Identical captures feed both formats: organic high-speed LTE flows,
  // deterministically seeded off HSR_BENCH_SEED.
  std::cerr << "[bench] simulating " << flow_count << " flows x " << flow_secs
            << " s ..." << std::flush;
  std::vector<hsr::trace::FlowCapture> captures;
  captures.reserve(flow_count);
  std::uint64_t transmissions = 0;
  for (std::uint64_t i = 0; i < flow_count; ++i) {
    hsr::workload::FlowRunConfig cfg;
    cfg.profile = hsr::radio::mobile_lte_highspeed();
    cfg.duration = hsr::util::Duration::from_seconds(flow_secs);
    cfg.seed = hsr::bench::seed() * 1000 + i;
    auto run = hsr::workload::run_flow(cfg);
    run.capture.flow = static_cast<hsr::net::FlowId>(i + 1);
    transmissions += run.capture.data.transmissions().size() +
                     run.capture.acks.transmissions().size();
    captures.push_back(std::move(run.capture));
  }
  std::cerr << " done (" << transmissions << " transmissions)\n";

  // --- size: serialize once, measure both formats' bytes --------------------
  std::vector<std::string> text_archives(flow_count);
  for (std::uint64_t i = 0; i < flow_count; ++i) {
    std::ostringstream os;
    hsr::trace::write_flow_capture(os, captures[i]);
    text_archives[i] = os.str();
  }
  std::uint64_t text_bytes = 0;
  for (const auto& a : text_archives) text_bytes += a.size();

  std::ostringstream bin_once;
  hsr::trace::write_binary_trace_header(bin_once, flow_count);
  {
    std::uint64_t seq = 0;
    for (const auto& cap : captures) hsr::trace::write_flow_frame(bin_once, cap, seq++);
  }
  const std::string binary_corpus = bin_once.str();
  const std::uint64_t binary_bytes = binary_corpus.size();

  const double size_ratio =
      static_cast<double>(text_bytes) / static_cast<double>(binary_bytes);

  // --- write throughput ------------------------------------------------------
  const Throughput text_write = best_of(reps, flow_count, text_bytes, [&] {
    std::ostringstream os;
    for (const auto& cap : captures) hsr::trace::write_flow_capture(os, cap);
    if (os.str().size() != text_bytes) std::abort();
  });
  const Throughput bin_write = best_of(reps, flow_count, binary_bytes, [&] {
    std::ostringstream os;
    hsr::trace::write_binary_trace_header(os, flow_count);
    std::uint64_t seq = 0;
    for (const auto& cap : captures) hsr::trace::write_flow_frame(os, cap, seq++);
    if (os.str().size() != binary_bytes) std::abort();
  });

  // --- read throughput -------------------------------------------------------
  const Throughput text_read = best_of(reps, flow_count, text_bytes, [&] {
    std::uint64_t total = 0;
    for (const auto& a : text_archives) {
      std::istringstream is(a);
      const auto cap = hsr::trace::read_flow_capture(is);
      if (!cap.is_ok()) std::abort();
      total += cap.value().data.transmissions().size();
    }
    if (total == 0) std::abort();
  });
  const Throughput bin_read = best_of(reps, flow_count, binary_bytes, [&] {
    std::istringstream is(binary_corpus);
    const auto corpus = hsr::trace::read_binary_corpus(is);
    if (!corpus.is_ok() || corpus.value().flows.size() != flow_count) std::abort();
  });

  const double text_bpf = static_cast<double>(text_bytes) / static_cast<double>(flow_count);
  const double bin_bpf = static_cast<double>(binary_bytes) / static_cast<double>(flow_count);
  std::cout << "size         text " << text_bytes << " B (" << text_bpf
            << " B/flow)  binary " << binary_bytes << " B (" << bin_bpf
            << " B/flow)  ratio " << size_ratio << "x\n";
  std::cout << "write        text " << text_write.flows_per_s << " flows/s ("
            << text_write.mb_per_s << " MB/s)  binary " << bin_write.flows_per_s
            << " flows/s (" << bin_write.mb_per_s << " MB/s)\n";
  std::cout << "read         text " << text_read.flows_per_s << " flows/s ("
            << text_read.mb_per_s << " MB/s)  binary " << bin_read.flows_per_s
            << " flows/s (" << bin_read.mb_per_s << " MB/s)\n";

  const auto path = hsr::bench::out_dir() / "BENCH_trace.json";
  std::ofstream json(path);
  json.precision(10);
  const auto spread_entry = [&json](const char* name, const Spread& s,
                                    const char* trailer) {
    json << "    \"" << name << "\": {\"min\": " << s.min << ", \"max\": " << s.max
         << ", \"mean\": " << s.mean << ", \"stddev\": " << s.stddev << "}"
         << trailer << "\n";
  };
  json << "{\n"
       << "  \"bench\": \"trace\",\n"
       << "  \"schema_version\": 2,\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"seed\": " << hsr::bench::seed() << ",\n"
       << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"flows\": " << flow_count << ",\n"
       << "  \"transmissions\": " << transmissions << ",\n"
       << "  \"metrics\": {\n"
       << "    \"text_write_flows_per_s\": " << text_write.flows_per_s << ",\n"
       << "    \"text_write_mb_per_s\": " << text_write.mb_per_s << ",\n"
       << "    \"binary_write_flows_per_s\": " << bin_write.flows_per_s << ",\n"
       << "    \"binary_write_mb_per_s\": " << bin_write.mb_per_s << ",\n"
       << "    \"text_read_flows_per_s\": " << text_read.flows_per_s << ",\n"
       << "    \"text_read_mb_per_s\": " << text_read.mb_per_s << ",\n"
       << "    \"binary_read_flows_per_s\": " << bin_read.flows_per_s << ",\n"
       << "    \"binary_read_mb_per_s\": " << bin_read.mb_per_s << ",\n"
       << "    \"text_bytes_per_flow\": " << text_bpf << ",\n"
       << "    \"binary_bytes_per_flow\": " << bin_bpf << ",\n"
       << "    \"text_to_binary_size_ratio\": " << size_ratio << "\n"
       << "  },\n"
       << "  \"spread\": {\n";
  spread_entry("text_write_flows_per_s", text_write.flows_spread, ",");
  spread_entry("binary_write_flows_per_s", bin_write.flows_spread, ",");
  spread_entry("text_read_flows_per_s", text_read.flows_spread, ",");
  spread_entry("binary_read_flows_per_s", bin_read.flows_spread, "");
  json << "  }\n"
       << "}\n";
  std::cout << "[json] summary -> " << path.string() << "\n";

  if (size_ratio < 4.0) {
    std::cerr << "FAIL: binary format is not 4x smaller than text ("
              << binary_bytes << " vs " << text_bytes << " bytes)\n";
    return 1;
  }
  if (bin_write.flows_per_s <= text_write.flows_per_s) {
    std::cerr << "WARNING: binary writes were not faster than text this run ("
              << bin_write.flows_per_s << " vs " << text_write.flows_per_s
              << " flows/s)\n";
  }
  return 0;
}
