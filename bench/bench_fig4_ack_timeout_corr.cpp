// Fig. 4: per-flow scatter of ACK loss rate vs timeout probability, with the
// positive correlation (and the bounding band) the paper highlights.
#include <algorithm>
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"
#include "util/stats.h"

int main() {
  using namespace hsr;
  bench::header("Fig. 4: ACK loss rate vs timeout probability");

  const auto points = bench::corpus().corpus.ack_loss_vs_timeout(true);
  auto csv = bench::open_csv("fig4_ack_timeout.csv");
  util::CsvWriter w(csv);
  w.row("ack_loss_rate", "timeout_probability");
  std::vector<double> xs, ys;
  for (const auto& [x, y] : points) {
    w.row(x, y);
    xs.push_back(x);
    ys.push_back(y);
  }

  const double corr = util::pearson_correlation(xs, ys);
  const auto [a, b] = util::linear_fit(xs, ys);
  std::cout << "flows plotted: " << points.size() << "\n";
  std::cout << "fit: Q = " << a << " + " << b << " * ack_loss\n";
  // Terminal scatter preview, binned by ACK loss.
  std::cout << "  ack_loss bucket   mean Q    n\n";
  for (double lo : {0.0, 0.0025, 0.005, 0.01, 0.02}) {
    const double hi = lo == 0.02 ? 1.0 : lo * 2 + 0.0025;
    util::RunningStats q;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (xs[i] >= lo && xs[i] < hi) q.add(ys[i]);
    }
    if (!q.empty()) {
      std::cout << "  [" << std::setw(6) << lo * 100 << "%, " << std::setw(6)
                << hi * 100 << "%)  " << std::setw(7) << q.mean() << "  "
                << q.count() << "\n";
    }
  }
  std::cout << "\n";
  bench::compare_row("positive correlation present", 1.0, corr > 0.1 ? 1.0 : 0.0,
                     "(paper: visible but not strong trend)");
  std::cout << "pearson r = " << corr << " (expected weakly positive)\n";
  return corr > 0.0 ? 0 : 1;
}
