// Fig. 11: "ACKs are precious" — thanks to cumulative acknowledgements, a
// single surviving ACK in a round is enough to prevent the spurious timeout.
// Scripted counterpart of Fig. 5: same round, but one ACK survives.
#include <iostream>
#include <memory>

#include "bench/common.h"
#include "net/channel.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "util/rng.h"

using namespace hsr;

namespace {

struct Outcome {
  std::uint64_t timeouts = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t delivered = 0;
};

Outcome run_round(bool keep_last_ack) {
  sim::Simulator sim;
  tcp::ConnectionConfig cfg;
  cfg.tcp.receiver_window = 6;
  cfg.tcp.delayed_ack_b = 1;
  cfg.tcp.initial_cwnd = 6.0;
  cfg.tcp.total_segments = 60;
  cfg.downlink.rate_bps = 10e6;
  cfg.downlink.prop_delay = util::Duration::millis(20);
  cfg.uplink.rate_bps = 10e6;
  cfg.uplink.prop_delay = util::Duration::millis(20);

  int ack_index = 0;
  auto up = std::make_unique<net::FunctionalChannel>(
      [&ack_index, keep_last_ack](const net::Packet&, util::TimePoint) {
        ++ack_index;
        if (ack_index > 6) return 0.0;            // later rounds unharmed
        if (keep_last_ack && ack_index == 6) return 0.0;  // the "precious" ACK a
        return 1.0;                               // the rest of the round dies
      },
      [](const net::Packet&, util::TimePoint) { return util::Duration::zero(); },
      util::Rng(1));

  tcp::Connection conn(sim, 1, cfg, std::make_unique<net::PerfectChannel>(),
                       std::move(up));
  conn.start();
  sim.run_until(util::TimePoint::from_seconds(10));
  return Outcome{conn.sender().stats().timeouts,
                 conn.receiver().stats().duplicate_segments,
                 conn.receiver().stats().unique_segments};
}

}  // namespace

int main() {
  bench::header("Fig. 11: one surviving ACK avoids the timeout");

  const Outcome all_lost = run_round(/*keep_last_ack=*/false);
  const Outcome one_kept = run_round(/*keep_last_ack=*/true);

  std::cout << "round of 6 with ALL ACKs lost:      timeouts=" << all_lost.timeouts
            << "  duplicate payloads=" << all_lost.duplicates << "\n";
  std::cout << "round of 6 with ONE cumulative ACK: timeouts=" << one_kept.timeouts
            << "  duplicate payloads=" << one_kept.duplicates << "\n\n";

  bench::compare_row("timeouts with full ACK burst loss", 1, all_lost.timeouts, "");
  bench::compare_row("timeouts when ACK 'a' survives", 0, one_kept.timeouts, "");
  const bool ok = all_lost.timeouts >= 1 && one_kept.timeouts == 0;
  std::cout << (ok ? "[OK] the cumulative ACK rescued the round\n"
                   : "[FAIL] mechanism not reproduced\n");
  return ok ? 0 : 1;
}
