// Ablation: congestion-control variants on the HSR path. The paper models
// Reno ("the basis of the other TCP versions") and cites the Veno and
// NewReno models as prior work (§II); this bench quantifies how much those
// variants change the picture the paper measured — and shows that the two
// HSR pathologies (spurious RTOs from ACK burst loss, long recoveries) hit
// every variant, since neither NewReno's partial-ACK repair nor Veno's loss
// differentiation can act while NO acknowledgements return.
#include <iostream>

#include "bench/common.h"
#include "radio/profiles.h"
#include "util/csv.h"
#include "util/stats.h"
#include "workload/scenario.h"

int main() {
  using namespace hsr;
  bench::header("Ablation: Reno vs NewReno vs Veno on the HSR path");

  auto csv = bench::open_csv("ablation_cc.csv");
  util::CsvWriter w(csv);
  w.row("provider", "cc", "seed", "goodput_pps", "timeouts", "fast_retx",
        "duplicates");

  const unsigned runs = std::max(4u, static_cast<unsigned>(8 * bench::scale() / 0.15));
  struct Variant {
    tcp::CongestionControl cc;
    const char* name;
  };
  const Variant variants[] = {{tcp::CongestionControl::kReno, "Reno"},
                              {tcp::CongestionControl::kNewReno, "NewReno"},
                              {tcp::CongestionControl::kVeno, "Veno"}};

  for (const auto& profile : radio::all_highspeed_profiles()) {
    std::cout << profile.name << "\n";
    double reno_goodput = 0.0;
    double reno_timeouts = 0.0;
    for (const auto& v : variants) {
      util::RunningStats goodput, timeouts, fr;
      for (unsigned r = 0; r < runs; ++r) {
        workload::FlowRunConfig cfg;
        cfg.profile = profile;
        cfg.tcp.congestion_control = v.cc;
        cfg.duration = util::Duration::seconds(120);
        cfg.seed = bench::seed() + 997 * r;
        const auto run = workload::run_flow(cfg);
        goodput.add(run.goodput_pps);
        timeouts.add(run.sender_stats.timeouts);
        fr.add(run.sender_stats.fast_retransmits);
        w.row(profile.name, v.name, cfg.seed, run.goodput_pps,
              run.sender_stats.timeouts, run.sender_stats.fast_retransmits,
              run.receiver_stats.duplicate_segments);
      }
      if (v.cc == tcp::CongestionControl::kReno) {
        reno_goodput = goodput.mean();
        reno_timeouts = timeouts.mean();
      }
      std::cout << "  " << std::left << std::setw(9) << v.name << " goodput="
                << std::setw(9) << goodput.mean() << " seg/s ("
                << std::showpos << (goodput.mean() / reno_goodput - 1.0) * 100
                << std::noshowpos << " % vs Reno)  timeouts/flow="
                << timeouts.mean() << "  fast_retx/flow=" << fr.mean() << "\n";
    }
    std::cout << "  (RTO events barely move across variants: " << reno_timeouts
              << " per Reno flow — ACK-starvation timeouts are CC-agnostic)\n";
  }
  std::cout << "\nfindings: NewReno helps modestly on the 3G paths (multi-loss\n"
               "windows repaired without extra RTOs); Veno can even lose — its\n"
               "RTT-backlog heuristic misreads HSR delay wander as congestion\n"
               "and its gentler cuts deepen the bufferbloat. Either way the\n"
               "timeout burden (the paper's bottleneck) is CC-agnostic:\n"
               "no variant can react while no acknowledgements return.\n";
  return 0;
}
