// Fig. 12: MPTCP vs TCP throughput per provider. The paper compares one
// large TCP flow against two parallel small flows of the same total size
// ("regarded as two independent subflows of MPTCP"); improvements:
// China Mobile +42.15 %, Unicom +95.64 %, Telecom +283.33 %. We follow the
// same fixed-size-transfer methodology on the same radio environment, and
// additionally report the live 2-subflow MPTCP implementation (duplex).
#include <iostream>

#include "bench/common.h"
#include "radio/profiles.h"
#include "util/csv.h"
#include "util/stats.h"
#include "workload/scenario.h"

int main() {
  using namespace hsr;
  bench::header("Fig. 12: MPTCP vs TCP throughput");

  const unsigned runs = std::max(8u, static_cast<unsigned>(24 * bench::scale() / 0.15));

  auto csv = bench::open_csv("fig12_mptcp.csv");
  util::CsvWriter w(csv);
  w.row("provider", "seed", "tcp_pps", "two_flow_pps");

  struct PaperRow {
    const char* name;
    double paper_improvement;
    std::uint64_t transfer_segments;  // long transfers, as in the dataset
  };
  const PaperRow paper[] = {{"China Mobile", 42.15, 40000},
                            {"China Unicom", 95.64, 18000},
                            {"China Telecom", 283.33, 3000}};

  std::vector<double> measured;
  const auto profiles = radio::all_highspeed_profiles();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    util::RunningStats tcp, mptcp;
    // Repetitions shard across the thread pool; results are byte-identical
    // to the sequential run_fixed_transfer_comparison loop for any pool size.
    workload::FixedTransferSweepSpec spec;
    spec.profile = profiles[i];
    spec.total_segments = paper[i].transfer_segments;
    spec.base_seed = bench::seed();
    spec.seed_stride = 101;
    spec.runs = runs;
    const auto sweep = workload::run_fixed_transfer_sweep(spec);
    for (unsigned r = 0; r < runs; ++r) {
      const auto& cmp = sweep[r];
      tcp.add(cmp.tcp_pps);
      mptcp.add(cmp.mptcp_pps);
      w.row(paper[i].name, bench::seed() + r * 101, cmp.tcp_pps, cmp.mptcp_pps);
    }
    // Aggregate ratio (sum over flows), as in the paper's per-provider blocks.
    const double improvement = (mptcp.sum() / tcp.sum() - 1.0) * 100.0;
    measured.push_back(improvement);
    std::cout << std::left << std::setw(24) << profiles[i].name
              << " TCP=" << std::setw(9) << tcp.mean() << " 2-flow=" << std::setw(9)
              << mptcp.mean() << " seg/s\n";
    bench::compare_row(std::string("  improvement, ") + paper[i].name,
                       paper[i].paper_improvement, improvement, "%");
  }

  // Live MPTCP implementation (duplex mode) on the worst provider,
  // aggregated over several runs.
  {
    util::RunningStats lt, lm;
    for (unsigned r = 0; r < 4; ++r) {
      const auto live = workload::run_mptcp_comparison(
          profiles[2], util::Duration::seconds(300), bench::seed() + 13 * r,
          mptcp::Mode::kDuplex);
      lt.add(live.tcp_pps);
      lm.add(live.mptcp_pps);
    }
    std::cout << "\nlive 2-subflow MPTCP (duplex) on Telecom: +"
              << (lm.sum() / lt.sum() - 1.0) * 100 << " % over single-path TCP\n";
  }

  const bool all_positive =
      measured[0] > 0 && measured[1] > 0 && measured[2] > 0;
  const bool telecom_largest =
      measured[2] > measured[0] && measured[2] > measured[1];
  std::cout << "\nshape: MPTCP wins everywhere: " << (all_positive ? "yes" : "NO")
            << "; Telecom (poor coverage) gains most: "
            << (telecom_largest ? "yes" : "NO") << "\n";
  return (all_positive && telecom_largest) ? 0 : 1;
}
