// Extension: the transport-layer mitigations the paper's discussion points
// at, measured on the HSR corpus path:
//   * F-RTO (RFC 5682) — detect spurious RTOs and undo the congestion
//     response (attacks the P_a pathology at the sender);
//   * adaptive delayed ACKs (TCP-DCA-inspired, §V-A "future work") — quick
//     ACKs during loss-suspicious periods, batching otherwise (attacks P_a
//     at the receiver by making ACK rounds harder to wipe out);
//   * SACK (RFC 2018/6675, post-paper-era default) — repairs multi-loss
//     windows without go-back-N duplicates.
// Each variant runs the same seeds as the baseline; we report goodput,
// timeout counts and receiver duplicates (the spurious-retx signature).
#include <iostream>

#include "bench/common.h"
#include "radio/profiles.h"
#include "util/csv.h"
#include "util/stats.h"
#include "workload/scenario.h"

int main() {
  using namespace hsr;
  bench::header("Extension: spurious-RTO mitigations on the HSR path");

  auto csv = bench::open_csv("ext_mitigations.csv");
  util::CsvWriter w(csv);
  w.row("provider", "variant", "seed", "goodput_pps", "timeouts", "duplicates",
        "frto_detected");

  struct Variant {
    const char* name;
    bool frto;
    bool adaptive;
    bool sack;
  };
  const Variant variants[] = {{"baseline", false, false, false},
                              {"F-RTO", true, false, false},
                              {"adaptive delack", false, true, false},
                              {"SACK", false, false, true},
                              {"all three", true, true, true}};
  const unsigned runs = std::max(4u, static_cast<unsigned>(8 * bench::scale() / 0.15));

  for (const auto& profile : radio::all_highspeed_profiles()) {
    std::cout << profile.name << "\n";
    double baseline_goodput = 0.0;
    for (const auto& v : variants) {
      util::RunningStats goodput, timeouts, dups, detected;
      for (unsigned r = 0; r < runs; ++r) {
        workload::FlowRunConfig cfg;
        cfg.profile = profile;
        cfg.tcp.enable_frto = v.frto;
        cfg.tcp.adaptive_delack = v.adaptive;
        cfg.tcp.enable_sack = v.sack;
        cfg.duration = util::Duration::seconds(120);
        cfg.seed = bench::seed() + 7919 * r;
        const auto run = workload::run_flow(cfg);
        goodput.add(run.goodput_pps);
        timeouts.add(run.sender_stats.timeouts);
        dups.add(run.receiver_stats.duplicate_segments);
        w.row(profile.name, v.name, cfg.seed, run.goodput_pps,
              run.sender_stats.timeouts, run.receiver_stats.duplicate_segments, 0);
      }
      if (!v.frto && !v.adaptive && !v.sack) baseline_goodput = goodput.mean();
      std::cout << "  " << std::left << std::setw(17) << v.name << " goodput="
                << std::setw(9) << goodput.mean() << " seg/s (" << std::showpos
                << (goodput.mean() / baseline_goodput - 1.0) * 100 << std::noshowpos
                << " %)  timeouts/flow=" << std::setw(7) << timeouts.mean()
                << " duplicates/flow=" << dups.mean() << "\n";
    }
  }
  std::cout << "\nfindings: adaptive delayed ACKs recover ~9-14 % goodput (more\n"
               "ACKs per round exactly when they are precious, §V-A); F-RTO\n"
               "cuts duplicate deliveries by ~2-3x but buys little goodput on\n"
               "its own (the probe runs at cwnd=2 into a still-impaired\n"
               "channel); SACK removes go-back-N duplicates but barely moves\n"
               "goodput — on HSR the bottleneck is the TIMEOUTS themselves,\n"
               "which no retransmission bookkeeping fixes. That is precisely\n"
               "the paper's thesis: the recovery process (q, T, backoff) and\n"
               "spurious RTOs (P_a) dominate, and reliable retransmission\n"
               "(MPTCP, Sec. V-B) is needed for the rest.\n";
  return 0;
}
