// Fig. 6: CDF of per-flow ACK loss rates, high-speed vs stationary
// (paper means: 0.661 % vs 0.0718 %).
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

int main() {
  using namespace hsr;
  bench::header("Fig. 6: CDF of ACK loss rate");

  auto hs = bench::corpus().corpus.ack_loss_cdf(true);
  auto st = bench::corpus().corpus.ack_loss_cdf(false);

  auto csv = bench::open_csv("fig6_ack_loss_cdf.csv");
  util::CsvWriter w(csv);
  w.row("series", "ack_loss_rate", "cdf");
  for (const auto& [x, f] : hs.curve(200)) w.row("high-speed", x, f);
  for (const auto& [x, f] : st.curve(200)) w.row("stationary", x, f);

  std::cout << "   ack_loss    CDF_highspeed   CDF_stationary\n";
  for (double x : {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.02, 0.05}) {
    std::cout << "  " << std::setw(8) << x * 100 << "%   " << std::setw(10)
              << hs.cdf(x) << "      " << std::setw(10) << st.cdf(x) << "\n";
  }
  std::cout << "\n";
  bench::compare_row("mean ACK loss, high-speed", 0.661, hs.mean() * 100, "%");
  bench::compare_row("mean ACK loss, stationary", 0.0718, st.mean() * 100, "%");
  bench::compare_row("separation (high-speed / stationary)", 0.661 / 0.0718,
                     hs.mean() / std::max(st.mean(), 1e-9), "x");
  return 0;
}
