// Figs. 7-9: the window-evolution pictures behind the model derivation —
//   Fig. 7: a CA phase ended by data loss vs ended by ACK burst loss,
//   Fig. 8: the CA-sequence / timeout-sequence cycle structure,
//   Fig. 9: evolution under the receiver window limit W_m.
// We print the analytic expectations (E[X], E[W], E[U], E[V]) across the
// regimes and dump a simulated cwnd trace that exhibits each shape.
#include <iostream>
#include <memory>

#include "bench/common.h"
#include "model/enhanced.h"
#include "net/channel.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "util/csv.h"
#include "util/rng.h"

using namespace hsr;

namespace {

void print_breakdown(const char* label, const model::EnhancedInputs& in) {
  const model::EnhancedBreakdown bd = model::enhanced_model(in);
  std::cout << std::left << std::setw(38) << label << " E[X]=" << std::setw(8)
            << bd.e_x << " E[W]=" << std::setw(8) << bd.e_w
            << (bd.window_limited
                    ? " (window-limited: E[U]=" + std::to_string(bd.e_u) +
                          ", E[V]=" + std::to_string(bd.e_v) + ")"
                    : "")
            << " TP=" << bd.throughput_pps << " seg/s\n";
}

}  // namespace

int main() {
  bench::header("Figs. 7-9: window evolution in the model and the simulator");

  model::EnhancedInputs base;
  base.p_d = 0.0075;
  base.q = 0.3;
  base.path = model::PathParams{0.1, 0.5, 2.0, 1000.0};

  std::cout << "--- Fig. 7: CA phase shapes (analytic) ---\n";
  model::EnhancedInputs no_burst = base;
  no_burst.P_a = 0.0;
  print_breakdown("(a) no ACK burst loss (P_a=0)", no_burst);
  model::EnhancedInputs with_burst = base;
  with_burst.P_a = 0.05;
  print_breakdown("(b) ACK burst loss cuts phases (P_a=.05)", with_burst);
  std::cout << "expected: (b) has fewer rounds per phase (smaller E[X], E[W]).\n\n";

  std::cout << "--- Fig. 9: window limitation (analytic) ---\n";
  model::EnhancedInputs limited = base;
  limited.P_a = 0.01;
  limited.p_d = 5e-4;
  limited.path.w_m = 30.0;
  print_breakdown("W_m=30, small p_d", limited);
  std::cout << "expected: the window saturates at W_m for E[V] rounds.\n\n";

  // --- Fig. 8: simulated cwnd trace with both loss indications ------------
  sim::Simulator sim;
  tcp::ConnectionConfig cfg;
  cfg.tcp.receiver_window = 64;
  cfg.downlink.rate_bps = 20e6;
  cfg.downlink.prop_delay = util::Duration::millis(30);
  cfg.uplink.rate_bps = 20e6;
  cfg.uplink.prop_delay = util::Duration::millis(30);
  tcp::Connection conn(
      sim, 1, cfg, std::make_unique<net::BernoulliChannel>(0.004, util::Rng(5)),
      std::make_unique<net::FunctionalChannel>(
          [](const net::Packet&, util::TimePoint now) {
            // Two ACK blackouts produce the timeout sequences of Fig. 8.
            const double t = now.to_seconds();
            return ((t >= 12.0 && t < 14.0) || (t >= 25.0 && t < 27.5)) ? 1.0 : 0.0;
          },
          [](const net::Packet&, util::TimePoint) { return util::Duration::zero(); },
          util::Rng(6)));
  conn.start();
  sim.run_until(util::TimePoint::from_seconds(40));

  auto csv = bench::open_csv("fig8_cwnd_trace.csv");
  util::CsvWriter w(csv);
  w.row("t_s", "cwnd_segments");
  for (const auto& [t, cwnd] : conn.sender().cwnd_trace()) {
    w.row(t.to_seconds(), cwnd);
  }
  std::cout << "--- Fig. 8: simulated cycle structure ---\n";
  std::cout << "cwnd samples dumped: " << conn.sender().cwnd_trace().size() << "\n";
  std::cout << "fast retransmits (TD indications): "
            << conn.sender().stats().fast_retransmits << "\n";
  std::cout << "timeout sequences (TO indications): at least "
            << (conn.sender().stats().timeouts > 0 ? 2 : 0)
            << " (from the two scripted ACK blackouts); timeouts="
            << conn.sender().stats().timeouts << "\n";
  std::cout << "expected: sawtooth CA sequences interrupted by cwnd=1 cliffs at\n"
               "t~12-14 s and t~25-27.5 s, then slow-start ramps (Fig. 8).\n";
  return 0;
}
