// Fig. 10 + §IV-E: per-flow deviation D (Eq. 22) of the enhanced model vs
// the Padhye baseline, by provider — the paper's headline result
// (Padhye mean D 21.96 %, enhanced 5.66 %, improvement 16.3 pp).
#include <iostream>
#include <map>

#include "bench/common.h"
#include "model/params.h"
#include "util/csv.h"
#include "util/stats.h"

int main() {
  using namespace hsr;
  bench::header("Fig. 10: model accuracy (deviation D, Eq. 22)");

  auto csv = bench::open_csv("fig10_model_accuracy.csv");
  util::CsvWriter w(csv);
  w.row("provider", "trace_pps", "padhye_pps", "enhanced_pps", "d_padhye",
        "d_enhanced");

  std::map<std::string, std::pair<util::RunningStats, util::RunningStats>> by_provider;
  util::RunningStats d_p, d_e;
  unsigned padhye_over = 0, both_small = 0, n = 0, excluded = 0;

  // Steady-state model validation needs usable flows: a connection that
  // spent most of its life inside one coverage gap (recovery-time fraction
  // > 1/2, or goodput < 2 segments/s) has no steady state for EITHER model
  // and turns Eq. 22 into a division by ~zero.
  constexpr double kMinGoodputPps = 2.0;
  constexpr double kMaxRecoveryFraction = 0.5;
  for (const auto& f : bench::corpus().flows) {
    if (!f.high_speed || f.goodput_pps <= 0.0) continue;
    if (f.goodput_pps < kMinGoodputPps ||
        f.analysis.recovery_time_fraction > kMaxRecoveryFraction) {
      ++excluded;
      continue;
    }
    model::EstimationOptions opt;
    opt.b = f.delayed_ack_b;
    opt.w_m = f.receiver_window;
    const model::FlowEvaluation ev = model::evaluate_flow(f.analysis, opt);
    w.row(f.provider, ev.trace_pps, ev.padhye_pps, ev.enhanced_pps, ev.d_padhye,
          ev.d_enhanced);
    by_provider[f.provider].first.add(ev.d_padhye);
    by_provider[f.provider].second.add(ev.d_enhanced);
    d_p.add(ev.d_padhye);
    d_e.add(ev.d_enhanced);
    if (ev.padhye_pps > ev.trace_pps) ++padhye_over;
    if (ev.d_padhye < 0.05 && ev.d_enhanced < 0.03) ++both_small;
    ++n;
  }

  std::cout << std::left << std::setw(16) << "provider" << std::setw(14)
            << "D(Padhye)" << std::setw(14) << "D(enhanced)" << "flows\n";
  for (const auto& [prov, d] : by_provider) {
    std::cout << std::left << std::setw(16) << prov << std::setw(14)
              << d.first.mean() * 100 << std::setw(14) << d.second.mean() * 100
              << d.first.count() << "\n";
  }
  std::cout << "\n";
  bench::compare_row("mean D, Padhye model", 21.96, d_p.mean() * 100, "%");
  bench::compare_row("mean D, enhanced model", 5.66, d_e.mean() * 100, "%");
  bench::compare_row("accuracy improvement", 16.30,
                     (d_p.mean() - d_e.mean()) * 100, "pp");
  bench::compare_row("share of flows where both models are precise", 9.8,
                     100.0 * both_small / std::max(n, 1u),
                     "% (paper: D<5%/3% cases)");
  std::cout << "Padhye overpredicts on " << 100.0 * padhye_over / std::max(n, 1u)
            << " % of flows (it ignores spurious RTOs and long recoveries)\n";
  std::cout << "flows excluded as non-steady-state (dominated by one dead "
               "zone): " << excluded << "\n";

  // Shape assertion for the harness exit code.
  const bool shape_ok = d_e.mean() < d_p.mean();
  std::cout << (shape_ok ? "[OK] enhanced model is more accurate\n"
                         : "[FAIL] enhanced model did not win\n");
  return shape_ok ? 0 : 1;
}
