// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures.
//
// Environment knobs:
//   HSR_BENCH_SCALE  corpus scale in (0,1]; default 0.15 so that the whole
//                    bench suite finishes in seconds. Use 1.0 to regenerate
//                    the full 255-flow corpus (as reported in EXPERIMENTS.md).
//   HSR_BENCH_SEED   experiment seed; default 2015.
//   HSR_BENCH_OUT    directory for full-resolution CSV dumps; default
//                    "bench_out" under the current directory.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>

#include "workload/dataset.h"

namespace hsr::bench {

inline double scale() {
  if (const char* s = std::getenv("HSR_BENCH_SCALE")) return std::atof(s);
  return 0.15;
}

inline std::uint64_t seed() {
  if (const char* s = std::getenv("HSR_BENCH_SEED")) return std::strtoull(s, nullptr, 10);
  return 2015;
}

inline std::filesystem::path out_dir() {
  const char* s = std::getenv("HSR_BENCH_OUT");
  std::filesystem::path dir = s ? s : "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

// Opens a CSV dump file in the output directory.
inline std::ofstream open_csv(const std::string& name) {
  const auto path = out_dir() / name;
  std::ofstream f(path);
  std::cout << "[csv] full data -> " << path.string() << "\n";
  return f;
}

// The corpus every corpus-driven figure shares (generated once per binary).
inline const workload::DatasetResult& corpus() {
  static const workload::DatasetResult ds = [] {
    workload::DatasetSpec spec = workload::DatasetSpec::paper_table1(scale());
    spec.seed = seed();
    std::cerr << "[bench] generating corpus: scale=" << scale()
              << " seed=" << seed() << " ..." << std::flush;
    auto result = workload::generate_dataset(spec);
    std::cerr << " done (" << result.flows.size() << " flows)\n";
    return result;
  }();
  return ds;
}

// One "paper vs measured" comparison row.
inline void compare_row(const std::string& name, double paper, double measured,
                        const std::string& unit) {
  std::cout << std::left << std::setw(44) << name << " paper=" << std::setw(10)
            << paper << " measured=" << std::setw(10) << measured << " " << unit
            << "\n";
}

inline void header(const std::string& title) {
  std::cout << "==== " << title << " ====\n";
  std::cout << std::fixed << std::setprecision(3);
}

}  // namespace hsr::bench
