// Shared-bottleneck multi-flow scenarios: the run_flow N=1 adapter is pinned
// byte-identical to the pre-multi-flow single-flow runner (golden digests),
// and run_multi_flow itself is deterministic, stagger-aware, per-flow
// fault-isolated and per-flow accounted.
#include "workload/multi_flow.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "radio/profiles.h"
#include "trace/trace_binary.h"
#include "trace/trace_io.h"
#include "workload/dataset.h"
#include "workload/manifest.h"
#include "workload/scenario.h"

namespace hsr::workload {
namespace {

std::uint64_t capture_digest(const trace::FlowCapture& c) {
  std::ostringstream os;
  trace::write_flow_capture(os, c);
  return manifest_digest(os.str());
}

// --- run_flow adapter golden digests -----------------------------------------
//
// These digests were extracted from the pre-multi-flow run_flow
// implementation (dedicated Links, plain per-direction channels). The
// adapter routes through run_multi_flow at N=1; any drift in fork labels,
// construction order, or demux behavior shows up here as a digest change.

TEST(MultiFlowAdapterTest, GoldenDigestDefaultTelecomFlow) {
  FlowRunConfig cfg;
  cfg.profile = radio::telecom_3g_highspeed();
  cfg.duration = util::Duration::seconds(60);
  cfg.seed = 7;
  const FlowRunResult run = run_flow(cfg);
  EXPECT_EQ(capture_digest(run.capture), 0xd13d342df85ec21bULL);
  EXPECT_NEAR(run.goodput_pps, 26.0833, 1e-3);
  EXPECT_EQ(run.handoffs, 2u);
  EXPECT_EQ(run.sim_events, 2489u);
}

TEST(MultiFlowAdapterTest, GoldenDigestNonDefaultProtocolKnobs) {
  FlowRunConfig cfg;
  cfg.profile = radio::mobile_lte_highspeed();
  cfg.duration = util::Duration::seconds(45);
  cfg.seed = 2015;
  cfg.tcp.congestion_control = tcp::CongestionControl::kNewReno;
  cfg.tcp.enable_sack = true;
  cfg.tcp.enable_frto = true;
  cfg.tcp.adaptive_delack = true;
  cfg.tcp.delayed_ack_b = 1;
  cfg.tcp.min_rto = util::Duration::millis(300);
  cfg.tcp.mss_bytes = 1200;
  const FlowRunResult run = run_flow(cfg);
  EXPECT_EQ(capture_digest(run.capture), 0xc4b991919e375330ULL);
  EXPECT_EQ(run.sim_events, 19283u);
}

TEST(MultiFlowAdapterTest, GoldenDigestScriptedFaults) {
  FlowRunConfig cfg;
  cfg.profile = radio::unicom_3g_highspeed();
  cfg.duration = util::Duration::seconds(30);
  cfg.seed = 99;
  cfg.downlink_faults.blackout(util::TimePoint::from_seconds(5.0),
                               util::TimePoint::from_seconds(7.0));
  cfg.uplink_faults.kill_acks(util::TimePoint::from_seconds(12.0),
                              util::TimePoint::from_seconds(13.0));
  const FlowRunResult run = run_flow(cfg);
  EXPECT_EQ(capture_digest(run.capture), 0x63c5e5bad1070159ULL);
  EXPECT_EQ(run.faults_injected, 85u);
}

TEST(MultiFlowAdapterTest, GoldenDigestDatasetCorpus) {
  // The dataset generators run every flow through run_flow, so this pins the
  // adapter across providers, campaigns, and the stationary control corpus.
  DatasetSpec spec = DatasetSpec::paper_table1(0.02);
  spec.stationary_flows_per_provider = 2;
  spec.flow_duration_min = util::Duration::seconds(10);
  spec.flow_duration_max = util::Duration::seconds(15);
  spec.seed = 20160627;
  const DatasetResult ds = generate_dataset(spec);
  EXPECT_EQ(ds.flows.size(), 10u);
  EXPECT_EQ(manifest_digest(ds.stats.to_text()), 0x5f601e399198a8faULL);
}

TEST(MultiFlowAdapterTest, GoldenDigestStreamingCorpusBytes) {
  DatasetSpec spec = DatasetSpec::paper_table1(0.02);
  spec.stationary_flows_per_provider = 2;
  spec.flow_duration_min = util::Duration::seconds(10);
  spec.flow_duration_max = util::Duration::seconds(15);
  spec.seed = 20160627;
  StreamingDatasetOptions opt;
  opt.corpus_path = "multi_flow_golden_corpus.b2";
  const auto st = generate_dataset_streaming(spec, opt);
  std::ifstream f(opt.corpus_path, std::ios::binary);
  ASSERT_TRUE(f.good());
  std::ostringstream bytes;
  bytes << f.rdbuf();
  EXPECT_EQ(bytes.str().size(), 389820u);
  EXPECT_EQ(manifest_digest(bytes.str()), 0x231538183c6223d6ULL);
  EXPECT_EQ(manifest_digest(st.stats.to_text()), 6872526263972047098ULL);
  std::remove(opt.corpus_path.c_str());
}

// --- run_multi_flow behavior --------------------------------------------------

MultiFlowSpec small_spec(unsigned flows, std::uint64_t seed) {
  MultiFlowSpec spec;
  spec.profile = radio::telecom_3g_highspeed();
  spec.flows = flows;
  spec.duration = util::Duration::seconds(5);
  spec.seed = seed;
  return spec;
}

std::string archive_bytes(const std::vector<trace::FlowCapture>& captures) {
  std::ostringstream os;
  trace::write_capture_archive(os, captures);
  return os.str();
}

TEST(MultiFlowTest, SameSpecTwiceIsByteIdentical) {
  const MultiFlowSpec spec = small_spec(3, 11);
  MultiFlowResult a = run_multi_flow(spec);
  MultiFlowResult b = run_multi_flow(spec);
  ASSERT_TRUE(a.status.is_ok());
  ASSERT_TRUE(b.status.is_ok());
  EXPECT_EQ(archive_bytes(a.captures), archive_bytes(b.captures));
}

TEST(MultiFlowTest, FlowsAreNumberedAndAllMakeProgress) {
  MultiFlowResult r = run_multi_flow(small_spec(4, 5));
  ASSERT_TRUE(r.status.is_ok());
  ASSERT_EQ(r.flows.size(), 4u);
  ASSERT_EQ(r.captures.size(), 4u);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(r.flows[i].flow, i + 1);
    EXPECT_EQ(r.captures[i].flow, i + 1);
    EXPECT_GT(r.flows[i].receiver_stats.unique_segments, 0u);
    EXPECT_GT(r.flows[i].goodput_pps, 0.0);
  }
}

TEST(MultiFlowTest, PerFlowLinkStatsSumToAggregate) {
  MultiFlowResult r = run_multi_flow(small_spec(3, 21));
  ASSERT_TRUE(r.status.is_ok());
  std::uint64_t down_sent = 0;
  std::uint64_t down_delivered = 0;
  std::uint64_t down_dropped = 0;
  std::uint64_t up_sent = 0;
  for (const auto& f : r.flows) {
    down_sent += f.downlink_stats.sent;
    down_delivered += f.downlink_stats.delivered;
    down_dropped += f.downlink_stats.dropped_total();
    up_sent += f.uplink_stats.sent;
  }
  EXPECT_EQ(down_sent, r.downlink_aggregate.sent);
  EXPECT_EQ(down_delivered, r.downlink_aggregate.delivered);
  EXPECT_EQ(down_dropped, r.downlink_aggregate.dropped_total());
  EXPECT_EQ(up_sent, r.uplink_aggregate.sent);
  EXPECT_GT(down_sent, 0u);
}

TEST(MultiFlowTest, StaggeredStartsDelayLaterFlows) {
  MultiFlowSpec spec = small_spec(3, 9);
  spec.start_stagger = util::Duration::seconds(1);
  MultiFlowResult r = run_multi_flow(spec);
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.flows[0].start_offset, util::Duration::zero());
  EXPECT_EQ(r.flows[1].start_offset, util::Duration::seconds(1));
  EXPECT_EQ(r.flows[2].start_offset, util::Duration::seconds(2));
  // A flow that starts later sends its first data packet later.
  ASSERT_FALSE(r.captures[0].data.transmissions().empty());
  ASSERT_FALSE(r.captures[2].data.transmissions().empty());
  EXPECT_LT(r.captures[0].data.transmissions().front().sent,
            r.captures[2].data.transmissions().front().sent);
  // And over the same total horizon it delivers less.
  EXPECT_LT(r.flows[2].receiver_stats.unique_segments,
            r.flows[0].receiver_stats.unique_segments);
}

TEST(MultiFlowTest, PerFlowFaultPlansStayIsolated) {
  MultiFlowSpec spec = small_spec(2, 33);
  MultiFlowSenderSpec victim;
  victim.downlink_faults.blackout(util::TimePoint::from_seconds(1.0),
                                  util::TimePoint::from_seconds(4.0));
  spec.senders.push_back(victim);
  spec.senders.push_back(MultiFlowSenderSpec{});
  MultiFlowResult r = run_multi_flow(spec);
  ASSERT_TRUE(r.status.is_ok());
  // Only flow 1 carries fault-audit records; flow 2's capture is clean.
  EXPECT_GT(r.flows[0].faults_injected, 0u);
  EXPECT_EQ(r.flows[1].faults_injected, 0u);
  EXPECT_TRUE(r.captures[1].faults.empty());
  // The blackout starves the victim relative to its untouched peer.
  EXPECT_LT(r.flows[0].receiver_stats.unique_segments,
            r.flows[1].receiver_stats.unique_segments);
}

TEST(MultiFlowTest, WatchdogAbortsWithResourceExhausted) {
  MultiFlowSpec spec = small_spec(2, 3);
  spec.max_sim_events = 50;
  MultiFlowResult r = run_multi_flow(spec);
  EXPECT_FALSE(r.status.is_ok());
  EXPECT_NE(r.status.message().find("event budget of 50 exhausted"),
            std::string::npos)
      << r.status.message();
}

// --- sweeps -------------------------------------------------------------------

TEST(MultiFlowSweepTest, CorpusBytesIdenticalForEveryThreadCount) {
  MultiFlowSweepSpec spec;
  spec.profile = radio::telecom_3g_highspeed();
  spec.flow_counts = {2, 3};
  spec.duration = util::Duration::seconds(3);
  spec.base_seed = 77;
  spec.burst_begin = util::TimePoint::from_seconds(1.0);
  spec.burst_end = util::TimePoint::from_seconds(2.0);

  std::string first;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    spec.threads = threads;
    std::vector<MultiFlowResult> results = run_multi_flow_sweep(spec);
    ASSERT_EQ(results.size(), 2u);
    for (const auto& r : results) ASSERT_TRUE(r.status.is_ok());
    const std::string bytes = archive_bytes(sweep_captures(std::move(results)));
    if (first.empty()) {
      first = bytes;
    } else {
      EXPECT_EQ(bytes, first) << "threads=" << threads;
    }
  }
  EXPECT_FALSE(first.empty());
}

TEST(MultiFlowSweepTest, BurstBlacksOutEveryFlowOfEveryScenario) {
  MultiFlowSweepSpec spec;
  spec.profile = radio::telecom_3g_highspeed();
  spec.flow_counts = {2};
  spec.duration = util::Duration::seconds(4);
  spec.base_seed = 13;
  spec.burst_begin = util::TimePoint::from_seconds(1.0);
  spec.burst_end = util::TimePoint::from_seconds(2.0);
  const MultiFlowSpec scenario = spec.scenario(0);
  ASSERT_EQ(scenario.senders.size(), 2u);
  for (const auto& s : scenario.senders) {
    EXPECT_FALSE(s.downlink_faults.empty());
  }
  MultiFlowResult r = run_multi_flow(scenario);
  ASSERT_TRUE(r.status.is_ok());
  for (const auto& f : r.flows) {
    EXPECT_GT(f.faults_injected, 0u) << "flow " << f.flow;
  }
}

TEST(MultiFlowSweepTest, SweepCapturesKeepScenarioBoundaries) {
  MultiFlowSweepSpec spec;
  spec.profile = radio::telecom_3g_highspeed();
  spec.flow_counts = {2, 3};
  spec.duration = util::Duration::seconds(2);
  spec.base_seed = 5;
  spec.threads = 1;
  std::vector<trace::FlowCapture> captures =
      sweep_captures(run_multi_flow_sweep(spec));
  ASSERT_EQ(captures.size(), 5u);
  // Flow ids restart at 1 on each scenario boundary — the grouping key the
  // corpus-side table reader uses.
  EXPECT_EQ(captures[0].flow, 1u);
  EXPECT_EQ(captures[1].flow, 2u);
  EXPECT_EQ(captures[2].flow, 1u);
  EXPECT_EQ(captures[3].flow, 2u);
  EXPECT_EQ(captures[4].flow, 3u);
}

}  // namespace
}  // namespace hsr::workload
