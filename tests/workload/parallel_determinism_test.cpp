// The parallel-sharding contract: for a fixed seed, generate_dataset must
// produce BYTE-IDENTICAL results for any thread count. These tests compare
// the sequential legacy path (threads = 1) against parallel runs bit by bit
// (doubles included), so any scheduling- or interleaving-dependence in the
// simulate phase is an immediate failure rather than a statistical drift.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "radio/profiles.h"
#include "workload/dataset.h"
#include "workload/scenario.h"

namespace hsr::workload {
namespace {

// Bit pattern of a double: EXPECT_DOUBLE_EQ tolerates last-ulp wobble,
// the determinism contract does not.
std::uint64_t bits(double v) {
  std::uint64_t out = 0;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

DatasetSpec small_spec() {
  DatasetSpec spec = DatasetSpec::paper_table1(0.02);
  spec.stationary_flows_per_provider = 2;
  spec.flow_duration_min = util::Duration::seconds(10);
  spec.flow_duration_max = util::Duration::seconds(15);
  spec.seed = 20160627;
  return spec;
}

void expect_identical(const DatasetResult& a, const DatasetResult& b,
                      unsigned threads) {
  ASSERT_EQ(a.flows.size(), b.flows.size()) << "threads=" << threads;
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    SCOPED_TRACE("flow " + std::to_string(i) + " threads " +
                 std::to_string(threads));
    const FlowRecord& x = a.flows[i];
    const FlowRecord& y = b.flows[i];
    EXPECT_EQ(x.provider, y.provider);
    EXPECT_EQ(x.campaign, y.campaign);
    EXPECT_EQ(x.high_speed, y.high_speed);
    EXPECT_EQ(x.duration.ns(), y.duration.ns());
    EXPECT_EQ(x.bytes_captured, y.bytes_captured);
    EXPECT_EQ(bits(x.goodput_pps), bits(y.goodput_pps));
    EXPECT_EQ(x.analysis.unique_segments, y.analysis.unique_segments);
    EXPECT_EQ(bits(x.analysis.data_loss_rate), bits(y.analysis.data_loss_rate));
    EXPECT_EQ(bits(x.analysis.ack_loss_rate), bits(y.analysis.ack_loss_rate));
    EXPECT_EQ(bits(x.analysis.first_tx_loss_rate),
              bits(y.analysis.first_tx_loss_rate));
    EXPECT_EQ(bits(x.analysis.timeout_probability),
              bits(y.analysis.timeout_probability));
    EXPECT_EQ(x.analysis.mean_rtt.ns(), y.analysis.mean_rtt.ns());
    EXPECT_EQ(bits(x.analysis.mean_window_segments),
              bits(y.analysis.mean_window_segments));
    EXPECT_EQ(x.analysis.timeout_sequences.size(),
              y.analysis.timeout_sequences.size());
    // The event-queue cost counters are part of the contract too: a thread
    // count that changes how many events a flow's simulator runs is a
    // nondeterminism bug even if the analysis happens to agree.
    EXPECT_EQ(x.sim_events, y.sim_events);
    EXPECT_EQ(x.sim_scheduled, y.sim_scheduled);
    EXPECT_EQ(x.sim_tombstones, y.sim_tombstones);
  }
  // Corpus aggregation runs after the join, in flow order, so its headline
  // statistics must be bit-identical as well.
  const auto ha = a.corpus.headline();
  const auto hb = b.corpus.headline();
  EXPECT_EQ(bits(ha.mean_ack_loss_highspeed), bits(hb.mean_ack_loss_highspeed));
  EXPECT_EQ(bits(ha.mean_ack_loss_stationary),
            bits(hb.mean_ack_loss_stationary));
  EXPECT_EQ(bits(ha.mean_recovery_s_highspeed),
            bits(hb.mean_recovery_s_highspeed));
  EXPECT_EQ(bits(ha.mean_recovery_s_stationary),
            bits(hb.mean_recovery_s_stationary));
}

TEST(ParallelDeterminismTest, AnyThreadCountMatchesSequential) {
  DatasetSpec spec = small_spec();
  spec.threads = 1;  // legacy sequential reference
  const DatasetResult reference = generate_dataset(spec);

  for (unsigned threads : {2u, 4u, 8u}) {
    spec.threads = threads;
    const DatasetResult parallel = generate_dataset(spec);
    expect_identical(reference, parallel, threads);
  }
}

TEST(ParallelDeterminismTest, RepeatedParallelRunsAgree) {
  DatasetSpec spec = small_spec();
  spec.threads = 4;
  const DatasetResult a = generate_dataset(spec);
  const DatasetResult b = generate_dataset(spec);
  expect_identical(a, b, 4);
}

TEST(ParallelDeterminismTest, MoreThreadsThanFlows) {
  DatasetSpec spec = small_spec();
  spec.campaigns.resize(1);
  spec.campaigns[0].flows = 2;
  spec.stationary_flows_per_provider = 1;
  spec.threads = 1;
  const DatasetResult reference = generate_dataset(spec);
  spec.threads = 16;  // far more workers than tasks
  const DatasetResult parallel = generate_dataset(spec);
  expect_identical(reference, parallel, 16);
}

// --- Fixed-transfer sweep sharding --------------------------------------------

FixedTransferSweepSpec sweep_spec(unsigned threads) {
  FixedTransferSweepSpec spec;
  spec.profile = radio::all_highspeed_profiles()[0];
  spec.total_segments = 300;  // small transfers keep the sweep fast
  spec.base_seed = 7;
  spec.seed_stride = 101;
  spec.runs = 3;
  spec.threads = threads;
  return spec;
}

void expect_identical_sweep(const std::vector<MptcpComparison>& a,
                            const std::vector<MptcpComparison>& b,
                            unsigned threads) {
  ASSERT_EQ(a.size(), b.size()) << "threads=" << threads;
  for (std::size_t r = 0; r < a.size(); ++r) {
    SCOPED_TRACE("run " + std::to_string(r) + " threads " +
                 std::to_string(threads));
    EXPECT_EQ(bits(a[r].tcp_pps), bits(b[r].tcp_pps));
    EXPECT_EQ(bits(a[r].mptcp_pps), bits(b[r].mptcp_pps));
    EXPECT_EQ(bits(a[r].improvement), bits(b[r].improvement));
  }
}

TEST(ParallelDeterminismTest, FixedTransferSweepMatchesAnyThreadCount) {
  const auto reference = run_fixed_transfer_sweep(sweep_spec(1));
  ASSERT_EQ(reference.size(), 3u);
  for (unsigned threads : {2u, 4u, 9u}) {
    expect_identical_sweep(reference, run_fixed_transfer_sweep(sweep_spec(threads)),
                           threads);
  }
}

TEST(ParallelDeterminismTest, SweepEntriesMatchTheSequentialComparison) {
  const FixedTransferSweepSpec spec = sweep_spec(4);
  const auto sweep = run_fixed_transfer_sweep(spec);
  for (std::uint64_t r = 0; r < spec.runs; ++r) {
    SCOPED_TRACE("run " + std::to_string(r));
    const MptcpComparison direct = run_fixed_transfer_comparison(
        spec.profile, spec.total_segments, spec.base_seed + r * spec.seed_stride);
    EXPECT_EQ(bits(sweep[r].tcp_pps), bits(direct.tcp_pps));
    EXPECT_EQ(bits(sweep[r].mptcp_pps), bits(direct.mptcp_pps));
  }
}

}  // namespace
}  // namespace hsr::workload
