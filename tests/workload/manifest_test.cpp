// hsrmanifest-v1: the manifest must round-trip losslessly, reject every
// malformed shape with a diagnostic instead of silently resuming from a
// wrong premise, and pin the spec via a stable digest.
#include "workload/manifest.h"

#include <gtest/gtest.h>

#include <string>

#include "util/fs.h"

namespace hsr::workload {
namespace {

CampaignManifest sample_manifest() {
  CampaignManifest m;
  m.spec_digest = 0x0123456789abcdefull;
  m.total_flows = 1000;
  m.chunk_flows = 256;
  // Pushed out of order on purpose: to_text() must sort by index.
  m.chunks.push_back({/*index=*/3, /*first_flow=*/768, /*flow_count=*/232,
                      /*flows=*/230, /*quarantines=*/2, /*bytes=*/4096,
                      /*crc32c=*/0xdeadbeef});
  m.chunks.push_back({0, 0, 256, 256, 0, 91234, 0x00000001});
  return m;
}

TEST(ManifestTest, TextRoundTripIsLossless) {
  const CampaignManifest m = sample_manifest();
  const std::string text = m.to_text();
  const auto parsed = CampaignManifest::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  CampaignManifest want = m;
  std::swap(want.chunks[0], want.chunks[1]);  // parse returns sorted order
  EXPECT_EQ(parsed.value(), want);
  // Deterministic text: re-serializing the parse reproduces the bytes.
  EXPECT_EQ(parsed.value().to_text(), text);
}

TEST(ManifestTest, HasChunkSeesExactlyTheCommittedIndices) {
  const CampaignManifest m = sample_manifest();
  EXPECT_TRUE(m.has_chunk(0));
  EXPECT_FALSE(m.has_chunk(1));
  EXPECT_FALSE(m.has_chunk(2));
  EXPECT_TRUE(m.has_chunk(3));
}

TEST(ManifestTest, ParseRejectsEveryMalformedShape) {
  const std::string good = sample_manifest().to_text();

  // Wrong magic.
  EXPECT_FALSE(CampaignManifest::parse("hsrmanifest-v2 spec=00 flows=1 "
                                       "chunk_flows=1 chunks=0\n")
                   .is_ok());
  // Declared chunk count disagrees with the entry lines present.
  {
    std::string text = good;
    text.replace(text.find("chunks=2"), 8, "chunks=3");
    const auto r = CampaignManifest::parse(text);
    ASSERT_FALSE(r.is_ok());
  }
  // Duplicate chunk index.
  {
    CampaignManifest m = sample_manifest();
    m.chunks.push_back(m.chunks[0]);
    EXPECT_FALSE(CampaignManifest::parse(m.to_text()).is_ok());
  }
  // flows + quarantines must equal the planned flow_count.
  {
    CampaignManifest m = sample_manifest();
    m.chunks[0].quarantines = 99;
    EXPECT_FALSE(CampaignManifest::parse(m.to_text()).is_ok());
  }
  // Truncation mid-entry is never accepted.
  EXPECT_FALSE(CampaignManifest::parse(good.substr(0, good.size() / 2)).is_ok());
  // Trailing garbage on an entry line.
  {
    std::string text = good;
    text.insert(text.size() - 1, " extra");
    EXPECT_FALSE(CampaignManifest::parse(text).is_ok());
  }
  EXPECT_FALSE(CampaignManifest::parse("").is_ok());
}

TEST(ManifestTest, DigestIsStableAndSeparatesSpecs) {
  const std::uint64_t a1 = manifest_digest("seed=1 flows=100 chunk=256");
  const std::uint64_t a2 = manifest_digest("seed=1 flows=100 chunk=256");
  const std::uint64_t b = manifest_digest("seed=2 flows=100 chunk=256");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  // Pinned value: a silent change to the digest function would strand every
  // existing work directory, so a change here must be deliberate.
  EXPECT_EQ(manifest_digest(""), 0xcbf29ce484222325ull);
}

TEST(ManifestTest, SaveAndLoadRoundTripThroughTheSeam) {
  util::Fs& fs = util::Fs::real();
  const std::string path = "manifest_test_roundtrip.hsrman";
  const CampaignManifest m = sample_manifest();
  ASSERT_TRUE(save_campaign_manifest(fs, path, m).is_ok());
  EXPECT_FALSE(fs.exists(path + ".tmp"));

  const auto loaded = load_campaign_manifest(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().spec_digest, m.spec_digest);
  EXPECT_EQ(loaded.value().total_flows, m.total_flows);
  EXPECT_EQ(loaded.value().chunks.size(), 2u);
  ASSERT_TRUE(fs.remove_file(path).is_ok());

  EXPECT_FALSE(load_campaign_manifest("manifest_test_missing.hsrman").is_ok());
}

}  // namespace
}  // namespace hsr::workload
