#include "workload/scenario.h"

#include <gtest/gtest.h>

#include "analysis/flow_analysis.h"

namespace hsr::workload {
namespace {

TEST(RunFlowTest, ProducesCaptureAndGroundTruth) {
  FlowRunConfig cfg;
  cfg.profile = radio::mobile_lte_highspeed();
  cfg.duration = Duration::seconds(20);
  cfg.seed = 123;
  const FlowRunResult run = run_flow(cfg);

  EXPECT_GT(run.sender_stats.segments_sent, 100u);
  EXPECT_GT(run.receiver_stats.unique_segments, 100u);
  EXPECT_GT(run.goodput_pps, 0.0);
  EXPECT_EQ(run.capture.data.sent_count(), run.sender_stats.segments_sent);
  EXPECT_EQ(run.capture.acks.sent_count(), run.receiver_stats.acks_sent);
  EXPECT_GT(run.bytes_captured, 0u);
  EXPECT_NEAR(run.goodput_bps, run.goodput_pps * cfg.tcp.mss_bytes * 8, 1.0);
}

TEST(RunFlowTest, DeterministicForSameSeed) {
  FlowRunConfig cfg;
  cfg.profile = radio::unicom_3g_highspeed();
  cfg.duration = Duration::seconds(15);
  cfg.seed = 77;
  const FlowRunResult a = run_flow(cfg);
  const FlowRunResult b = run_flow(cfg);
  EXPECT_EQ(a.receiver_stats.unique_segments, b.receiver_stats.unique_segments);
  EXPECT_EQ(a.sender_stats.timeouts, b.sender_stats.timeouts);
  EXPECT_EQ(a.bytes_captured, b.bytes_captured);
}

TEST(RunFlowTest, DifferentSeedsDiffer) {
  FlowRunConfig cfg;
  cfg.profile = radio::unicom_3g_highspeed();
  cfg.duration = Duration::seconds(15);
  cfg.seed = 1;
  const auto a = run_flow(cfg);
  cfg.seed = 2;
  const auto b = run_flow(cfg);
  EXPECT_NE(a.receiver_stats.unique_segments, b.receiver_stats.unique_segments);
}

TEST(RunFlowTest, StationaryOutperformsHighSpeed) {
  FlowRunConfig hs;
  hs.profile = radio::unicom_3g_highspeed();
  hs.duration = Duration::seconds(40);
  hs.seed = 5;
  FlowRunConfig st = hs;
  st.profile = radio::stationary_of(hs.profile);
  EXPECT_GT(run_flow(st).goodput_pps, run_flow(hs).goodput_pps);
}

TEST(RunFlowTest, HighSpeedFlowShowsHsrPathologies) {
  FlowRunConfig cfg;
  cfg.profile = radio::telecom_3g_highspeed();
  cfg.duration = Duration::seconds(60);
  cfg.seed = 11;
  const FlowRunResult run = run_flow(cfg);
  EXPECT_GE(run.sender_stats.timeouts, 1u);
  EXPECT_GT(run.receiver_stats.duplicate_segments, 0u);
  EXPECT_GE(run.handoffs, 1u);
}

TEST(TcpConfigForTest, ReflectsProfileAndOverrides) {
  FlowRunConfig cfg;
  cfg.profile = radio::mobile_lte_highspeed();
  cfg.tcp.delayed_ack_b = 3;
  cfg.tcp.min_rto = Duration::millis(300);
  const tcp::TcpConfig t = tcp_config_for(cfg);
  EXPECT_EQ(t.delayed_ack_b, 3u);
  EXPECT_EQ(t.receiver_window, cfg.profile.receiver_window_segments);
  EXPECT_EQ(t.rto.min_rto, Duration::millis(300));
}

TEST(MptcpComparisonTest, MptcpBeatsSinglePathOnHsr) {
  const MptcpComparison cmp = run_mptcp_comparison(
      radio::unicom_3g_highspeed(), Duration::seconds(40), 7, mptcp::Mode::kDuplex);
  EXPECT_GT(cmp.tcp_pps, 0.0);
  EXPECT_GT(cmp.mptcp_pps, cmp.tcp_pps);
  EXPECT_GT(cmp.improvement, 0.0);
}

TEST(MptcpComparisonTest, BackupModeRescues) {
  const MptcpComparison cmp = run_mptcp_comparison(
      radio::telecom_3g_highspeed(), Duration::seconds(60), 3, mptcp::Mode::kBackup);
  EXPECT_GE(cmp.rescues, 1u);
}

}  // namespace
}  // namespace hsr::workload
