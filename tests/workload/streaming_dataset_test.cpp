// The streaming-campaign contract: generate_dataset_streaming must produce
// (a) a corpus-stats digest BYTE-IDENTICAL to the in-memory path's
// DatasetResult::stats for the same spec, (b) a corpus file byte-identical
// for any thread count, and (c) capture memory bounded by worker count —
// pending-absorption buffering must track scheduling skew, not flow count.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/trace_binary.h"
#include "util/status.h"
#include "workload/dataset.h"

namespace hsr::workload {
namespace {

namespace fs = std::filesystem;

DatasetSpec small_spec() {
  DatasetSpec spec = DatasetSpec::paper_table1(0.02);
  spec.stationary_flows_per_provider = 2;
  spec.flow_duration_min = util::Duration::seconds(5);
  spec.flow_duration_max = util::Duration::seconds(8);
  spec.seed = 20160627;
  return spec;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

std::string unique_corpus_path(const std::string& tag) {
  return "streaming_dataset_test_" + tag + ".hsrb";
}

TEST(StreamingDatasetTest, StatsDigestMatchesInMemoryPathByteForByte) {
  DatasetSpec spec = small_spec();
  spec.threads = 1;
  const DatasetResult in_memory = generate_dataset(spec);
  ASSERT_TRUE(in_memory.complete());

  const std::string corpus_path = unique_corpus_path("digest");
  StreamingDatasetOptions options;
  options.corpus_path = corpus_path;
  const StreamingDatasetResult streamed = generate_dataset_streaming(spec, options);
  ASSERT_TRUE(streamed.complete()) << streamed.config_status.to_string() << " / "
                                   << streamed.io_status.to_string();

  // The whole point of the online accumulators: the digest of a campaign
  // that never held two captures at once is bitwise what the in-memory
  // aggregation produced.
  EXPECT_EQ(streamed.stats.to_text(), in_memory.stats.to_text());
  EXPECT_EQ(streamed.flows_completed, in_memory.flows.size());
  EXPECT_EQ(streamed.total_sim_events, in_memory.total_sim_events());
  std::remove(corpus_path.c_str());
}

TEST(StreamingDatasetTest, CorpusAndDigestIdenticalAcrossThreadCounts) {
  DatasetSpec spec = small_spec();
  spec.threads = 1;
  const std::string reference_path = unique_corpus_path("t1");
  StreamingDatasetOptions options;
  options.corpus_path = reference_path;
  const StreamingDatasetResult reference = generate_dataset_streaming(spec, options);
  ASSERT_TRUE(reference.complete());
  const std::string reference_bytes = read_file(reference_path);
  const std::string reference_digest = reference.stats.to_text();
  ASSERT_FALSE(reference_bytes.empty());
  std::remove(reference_path.c_str());

  for (unsigned threads : {2u, 4u, 8u}) {
    spec.threads = threads;
    const std::string path = unique_corpus_path("t" + std::to_string(threads));
    StreamingDatasetOptions opts;
    opts.corpus_path = path;
    const StreamingDatasetResult run = generate_dataset_streaming(spec, opts);
    ASSERT_TRUE(run.complete()) << "threads=" << threads;
    EXPECT_EQ(read_file(path), reference_bytes) << "threads=" << threads;
    EXPECT_EQ(run.stats.to_text(), reference_digest) << "threads=" << threads;
    // Out-of-order samples wait in a buffer bounded by scheduling skew;
    // with `threads` workers in flight it cannot exceed the flow count and
    // should stay near the worker count.
    EXPECT_LT(run.stats_pending_peak, reference.flows_completed)
        << "threads=" << threads;
    EXPECT_FALSE(fs::exists(path + ".spill")) << "threads=" << threads;
    std::remove(path.c_str());
  }
}

TEST(StreamingDatasetTest, CorpusFileHoldsEveryFlowIndexedInOrder) {
  DatasetSpec spec = small_spec();
  spec.threads = 4;
  const std::string path = unique_corpus_path("order");
  StreamingDatasetOptions options;
  options.corpus_path = path;
  const StreamingDatasetResult run = generate_dataset_streaming(spec, options);
  ASSERT_TRUE(run.complete());

  std::ifstream in(path, std::ios::binary);
  const auto corpus = trace::read_binary_corpus(in);
  ASSERT_TRUE(corpus.is_ok()) << corpus.status().to_string();
  EXPECT_EQ(corpus.value().declared_flow_count, run.flows_completed);
  ASSERT_EQ(corpus.value().flows.size(), run.flows_completed);
  EXPECT_FALSE(corpus.value().torn_tail);
  // Frames carry the campaign flow index as FlowId, in strict index order.
  for (std::size_t i = 0; i < corpus.value().flows.size(); ++i) {
    EXPECT_EQ(corpus.value().flows[i].flow, i);
    EXPECT_GT(corpus.value().flows[i].data.transmissions().size(), 0u);
  }
  std::remove(path.c_str());
}

TEST(StreamingDatasetTest, QuarantineLandsInStreamAndDigestStillMatches) {
  DatasetSpec spec = small_spec();
  spec.configure_flow = [](std::uint64_t flow_index, FlowRunConfig& cfg) {
    // Flow 1 gets an event budget far below what its duration needs: the
    // watchdog aborts it and the campaign must quarantine, not die.
    if (flow_index == 1) cfg.max_sim_events = 50;
  };

  spec.threads = 1;
  const DatasetResult in_memory = generate_dataset(spec);
  ASSERT_EQ(in_memory.quarantined.size(), 1u);

  spec.threads = 4;
  const std::string path = unique_corpus_path("quarantine");
  StreamingDatasetOptions options;
  options.corpus_path = path;
  const StreamingDatasetResult run = generate_dataset_streaming(spec, options);
  ASSERT_TRUE(run.config_status.is_ok());
  ASSERT_TRUE(run.io_status.is_ok());
  EXPECT_FALSE(run.complete());  // partial-corpus semantics

  // Same casualty, same diagnostics, same digest as the in-memory path.
  ASSERT_EQ(run.quarantined.size(), 1u);
  EXPECT_EQ(run.quarantined[0].flow_index, 1u);
  EXPECT_EQ(run.quarantined[0].status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(run.stats.to_text(), in_memory.stats.to_text());
  EXPECT_EQ(run.stats.quarantined(), 1u);

  // The corpus stream archives the quarantine record, so the file explains
  // its own gap.
  std::ifstream in(path, std::ios::binary);
  const auto corpus = trace::read_binary_corpus(in);
  ASSERT_TRUE(corpus.is_ok()) << corpus.status().to_string();
  EXPECT_EQ(corpus.value().flows.size(), run.flows_completed);
  ASSERT_EQ(corpus.value().quarantined.size(), 1u);
  EXPECT_EQ(corpus.value().quarantined[0].flow_index, 1u);
  EXPECT_NE(corpus.value().quarantined[0].message.find("watchdog"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(StreamingDatasetTest, MissingCorpusPathIsRejectedUpFront) {
  DatasetSpec spec = small_spec();
  const StreamingDatasetResult run =
      generate_dataset_streaming(spec, StreamingDatasetOptions{});
  EXPECT_FALSE(run.config_status.is_ok());
  EXPECT_EQ(run.flows_completed, 0u);
}

}  // namespace
}  // namespace hsr::workload
