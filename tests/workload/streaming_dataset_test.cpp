// The streaming-campaign contract: generate_dataset_streaming must produce
// (a) a corpus-stats digest BYTE-IDENTICAL to the in-memory path's
// DatasetResult::stats for the same spec, (b) a corpus file byte-identical
// for any thread count AND any chunk size, and (c) crash-safety — an
// interrupted campaign resumed from its manifest yields the same bytes as
// an uninterrupted run, and a scripted ENOSPC never corrupts a committed
// chunk.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "fault/io_fault.h"
#include "trace/trace_binary.h"
#include "util/status.h"
#include "workload/dataset.h"
#include "workload/manifest.h"

namespace hsr::workload {
namespace {

namespace fs = std::filesystem;

DatasetSpec small_spec() {
  DatasetSpec spec = DatasetSpec::paper_table1(0.02);
  spec.stationary_flows_per_provider = 2;
  spec.flow_duration_min = util::Duration::seconds(5);
  spec.flow_duration_max = util::Duration::seconds(8);
  spec.seed = 20160627;
  return spec;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

std::string unique_corpus_path(const std::string& tag) {
  return "streaming_dataset_test_" + tag + ".hsrb";
}

TEST(StreamingDatasetTest, StatsDigestMatchesInMemoryPathByteForByte) {
  DatasetSpec spec = small_spec();
  spec.threads = 1;
  const DatasetResult in_memory = generate_dataset(spec);
  ASSERT_TRUE(in_memory.complete());

  const std::string corpus_path = unique_corpus_path("digest");
  StreamingDatasetOptions options;
  options.corpus_path = corpus_path;
  const StreamingDatasetResult streamed = generate_dataset_streaming(spec, options);
  ASSERT_TRUE(streamed.complete()) << streamed.config_status.to_string() << " / "
                                   << streamed.io_status.to_string();

  // The whole point of the online accumulators: the digest of a campaign
  // that never held two captures at once is bitwise what the in-memory
  // aggregation produced.
  EXPECT_EQ(streamed.stats.to_text(), in_memory.stats.to_text());
  EXPECT_EQ(streamed.flows_completed, in_memory.flows.size());
  EXPECT_EQ(streamed.total_sim_events, in_memory.total_sim_events());
  std::remove(corpus_path.c_str());
}

TEST(StreamingDatasetTest, CorpusAndDigestIdenticalAcrossThreadCounts) {
  DatasetSpec spec = small_spec();
  spec.threads = 1;
  const std::string reference_path = unique_corpus_path("t1");
  StreamingDatasetOptions options;
  options.corpus_path = reference_path;
  const StreamingDatasetResult reference = generate_dataset_streaming(spec, options);
  ASSERT_TRUE(reference.complete());
  const std::string reference_bytes = read_file(reference_path);
  const std::string reference_digest = reference.stats.to_text();
  ASSERT_FALSE(reference_bytes.empty());
  std::remove(reference_path.c_str());

  for (unsigned threads : {2u, 4u, 8u}) {
    spec.threads = threads;
    const std::string path = unique_corpus_path("t" + std::to_string(threads));
    StreamingDatasetOptions opts;
    opts.corpus_path = path;
    const StreamingDatasetResult run = generate_dataset_streaming(spec, opts);
    ASSERT_TRUE(run.complete()) << "threads=" << threads;
    EXPECT_EQ(read_file(path), reference_bytes) << "threads=" << threads;
    EXPECT_EQ(run.stats.to_text(), reference_digest) << "threads=" << threads;
    // A successful merge cleans its work directory up.
    EXPECT_FALSE(fs::exists(path + ".work")) << "threads=" << threads;
    std::remove(path.c_str());
  }

  // The chunk partition must not leak into the bytes either: merge
  // re-stamps frame sequence numbers, so tiny chunks == one huge chunk.
  for (const std::uint64_t chunk_flows : {1u, 3u, 1000u}) {
    spec.threads = 4;
    const std::string path = unique_corpus_path("c" + std::to_string(chunk_flows));
    StreamingDatasetOptions opts;
    opts.corpus_path = path;
    opts.chunk_flows = chunk_flows;
    const StreamingDatasetResult run = generate_dataset_streaming(spec, opts);
    ASSERT_TRUE(run.complete()) << "chunk_flows=" << chunk_flows;
    EXPECT_EQ(read_file(path), reference_bytes) << "chunk_flows=" << chunk_flows;
    EXPECT_EQ(run.stats.to_text(), reference_digest) << "chunk_flows=" << chunk_flows;
    std::remove(path.c_str());
  }
}

TEST(StreamingDatasetTest, CorpusFileHoldsEveryFlowIndexedInOrder) {
  DatasetSpec spec = small_spec();
  spec.threads = 4;
  const std::string path = unique_corpus_path("order");
  StreamingDatasetOptions options;
  options.corpus_path = path;
  const StreamingDatasetResult run = generate_dataset_streaming(spec, options);
  ASSERT_TRUE(run.complete());

  std::ifstream in(path, std::ios::binary);
  const auto corpus = trace::read_binary_corpus(in);
  ASSERT_TRUE(corpus.is_ok()) << corpus.status().to_string();
  EXPECT_EQ(corpus.value().declared_flow_count, run.flows_completed);
  ASSERT_EQ(corpus.value().flows.size(), run.flows_completed);
  EXPECT_FALSE(corpus.value().torn_tail);
  // Frames carry the campaign flow index as FlowId, in strict index order.
  for (std::size_t i = 0; i < corpus.value().flows.size(); ++i) {
    EXPECT_EQ(corpus.value().flows[i].flow, i);
    EXPECT_GT(corpus.value().flows[i].data.transmissions().size(), 0u);
  }
  std::remove(path.c_str());
}

TEST(StreamingDatasetTest, QuarantineLandsInStreamAndDigestStillMatches) {
  DatasetSpec spec = small_spec();
  spec.configure_flow = [](std::uint64_t flow_index, FlowRunConfig& cfg) {
    // Flow 1 gets an event budget far below what its duration needs: the
    // watchdog aborts it and the campaign must quarantine, not die.
    if (flow_index == 1) cfg.max_sim_events = 50;
  };

  spec.threads = 1;
  const DatasetResult in_memory = generate_dataset(spec);
  ASSERT_EQ(in_memory.quarantined.size(), 1u);

  spec.threads = 4;
  const std::string path = unique_corpus_path("quarantine");
  StreamingDatasetOptions options;
  options.corpus_path = path;
  const StreamingDatasetResult run = generate_dataset_streaming(spec, options);
  ASSERT_TRUE(run.config_status.is_ok());
  ASSERT_TRUE(run.io_status.is_ok());
  EXPECT_FALSE(run.complete());  // partial-corpus semantics

  // Same casualty, same diagnostics, same digest as the in-memory path.
  ASSERT_EQ(run.quarantined.size(), 1u);
  EXPECT_EQ(run.quarantined[0].flow_index, 1u);
  EXPECT_EQ(run.quarantined[0].status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(run.stats.to_text(), in_memory.stats.to_text());
  EXPECT_EQ(run.stats.quarantined(), 1u);

  // The corpus stream archives the quarantine record, so the file explains
  // its own gap.
  std::ifstream in(path, std::ios::binary);
  const auto corpus = trace::read_binary_corpus(in);
  ASSERT_TRUE(corpus.is_ok()) << corpus.status().to_string();
  EXPECT_EQ(corpus.value().flows.size(), run.flows_completed);
  ASSERT_EQ(corpus.value().quarantined.size(), 1u);
  EXPECT_EQ(corpus.value().quarantined[0].flow_index, 1u);
  EXPECT_NE(corpus.value().quarantined[0].message.find("watchdog"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(StreamingDatasetTest, MissingCorpusPathIsRejectedUpFront) {
  DatasetSpec spec = small_spec();
  const StreamingDatasetResult run =
      generate_dataset_streaming(spec, StreamingDatasetOptions{});
  EXPECT_FALSE(run.config_status.is_ok());
  EXPECT_EQ(run.flows_completed, 0u);
}

TEST(StreamingDatasetTest, EnospcInterruptThenResumeIsByteIdentical) {
  DatasetSpec spec = small_spec();

  // The uninterrupted reference.
  spec.threads = 1;
  const std::string ref_path = unique_corpus_path("resume_ref");
  StreamingDatasetOptions ref_opts;
  ref_opts.corpus_path = ref_path;
  ref_opts.chunk_flows = 3;
  const StreamingDatasetResult reference = generate_dataset_streaming(spec, ref_opts);
  ASSERT_TRUE(reference.complete());
  const std::string reference_bytes = read_file(ref_path);
  const std::string reference_digest = reference.stats.to_text();
  std::remove(ref_path.c_str());

  // The disk fills up mid-campaign: the byte budget covers the chunk files
  // only, and the whole campaign's chunk writes exceed the final corpus
  // size (sidecars ride along), so the run MUST die with at least the first
  // chunk already durable.
  const std::string path = unique_corpus_path("resume");
  fault::IoFaultPlan plan;
  plan.enospc_after(reference.corpus_bytes, "chunk-", "test-enospc");
  fault::FaultInjectingFs faulty(plan, util::Fs::real());
  StreamingDatasetOptions opts;
  opts.corpus_path = path;
  opts.chunk_flows = 3;
  opts.fs = &faulty;
  const StreamingDatasetResult interrupted = generate_dataset_streaming(spec, opts);
  ASSERT_TRUE(interrupted.config_status.is_ok());
  ASSERT_FALSE(interrupted.io_status.is_ok());
  EXPECT_EQ(interrupted.io_status.code(), util::StatusCode::kResourceExhausted)
      << interrupted.io_status.to_string();
  // No partial corpus under the output name — ever.
  EXPECT_FALSE(fs::exists(path));
  // The committed chunks and the manifest survived as the resume state.
  const std::string work_dir = path + ".work";
  const auto manifest = load_campaign_manifest(work_dir + "/manifest.hsrman");
  ASSERT_TRUE(manifest.is_ok()) << manifest.status().to_string();
  ASSERT_GE(manifest.value().chunks.size(), 1u);
  EXPECT_LT(manifest.value().chunks.size(), interrupted.chunks_total);
  // And the scripted fault did not corrupt them: every listed chunk
  // verifies against its recorded digest when the resume replays it.

  // Resume on a different thread count: only the missing chunks re-run, and
  // the result is bitwise the uninterrupted run.
  spec.threads = 4;
  StreamingDatasetOptions resume_opts = opts;
  resume_opts.fs = nullptr;
  resume_opts.resume = true;
  const StreamingDatasetResult resumed = generate_dataset_streaming(spec, resume_opts);
  ASSERT_TRUE(resumed.complete()) << resumed.config_status.to_string() << " / "
                                  << resumed.io_status.to_string();
  EXPECT_EQ(resumed.chunks_reused, manifest.value().chunks.size());
  EXPECT_EQ(read_file(path), reference_bytes);
  EXPECT_EQ(resumed.stats.to_text(), reference_digest);
  EXPECT_EQ(resumed.total_sim_events, reference.total_sim_events);
  EXPECT_FALSE(fs::exists(work_dir));  // cleaned up after the merge
  std::remove(path.c_str());
}

TEST(StreamingDatasetTest, ResumeUnderADifferentSpecIsRejected) {
  DatasetSpec spec = small_spec();
  spec.threads = 1;

  // Interrupt at the merge: every chunk is committed, only the final rename
  // is torn, so the work directory holds a complete manifest.
  const std::string path = unique_corpus_path("reject");
  fault::IoFaultPlan plan;
  // `<corpus>.tmp` names the merge's rename only; chunk tmps live under
  // `<corpus>.work/` and must commit untouched.
  plan.torn_rename(path + ".tmp", "test-torn-merge");
  fault::FaultInjectingFs faulty(plan, util::Fs::real());
  StreamingDatasetOptions opts;
  opts.corpus_path = path;
  opts.chunk_flows = 4;
  opts.fs = &faulty;
  const StreamingDatasetResult interrupted = generate_dataset_streaming(spec, opts);
  ASSERT_TRUE(interrupted.config_status.is_ok());
  ASSERT_FALSE(interrupted.io_status.is_ok());
  EXPECT_FALSE(fs::exists(path));

  // A resume with a different seed would splice incompatible flows; the
  // spec digest in the manifest catches it before any work runs.
  DatasetSpec other = spec;
  other.seed += 1;
  StreamingDatasetOptions resume_opts = opts;
  resume_opts.fs = nullptr;
  resume_opts.resume = true;
  const StreamingDatasetResult rejected = generate_dataset_streaming(other, resume_opts);
  ASSERT_FALSE(rejected.config_status.is_ok());
  EXPECT_NE(rejected.config_status.message().find("digest mismatch"), std::string::npos)
      << rejected.config_status.to_string();
  EXPECT_EQ(rejected.flows_completed, 0u);

  // The right spec still resumes cleanly afterwards — rejection is
  // side-effect-free.
  const StreamingDatasetResult resumed = generate_dataset_streaming(spec, resume_opts);
  ASSERT_TRUE(resumed.complete()) << resumed.io_status.to_string();
  EXPECT_EQ(resumed.chunks_reused, resumed.chunks_total);
  std::remove(path.c_str());
}

TEST(StreamingDatasetTest, DamagedChunkIsReRunOnResume) {
  DatasetSpec spec = small_spec();
  spec.threads = 1;

  const std::string path = unique_corpus_path("damaged");
  fault::IoFaultPlan plan;
  plan.torn_rename(path + ".tmp", "test-torn-merge");
  fault::FaultInjectingFs faulty(plan, util::Fs::real());
  StreamingDatasetOptions opts;
  opts.corpus_path = path;
  opts.chunk_flows = 3;
  opts.fs = &faulty;
  const StreamingDatasetResult interrupted = generate_dataset_streaming(spec, opts);
  ASSERT_FALSE(interrupted.io_status.is_ok());

  // Flip one byte inside a committed chunk: its CRC no longer matches the
  // manifest, so the resume must re-run that chunk instead of trusting it.
  const std::string chunk0 = path + ".work/chunk-0.hsrb";
  std::string bytes = read_file(chunk0);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  ASSERT_TRUE(util::write_file_atomic(util::Fs::real(), chunk0, bytes).is_ok());

  StreamingDatasetOptions resume_opts = opts;
  resume_opts.fs = nullptr;
  resume_opts.resume = true;
  const StreamingDatasetResult resumed = generate_dataset_streaming(spec, resume_opts);
  ASSERT_TRUE(resumed.complete()) << resumed.io_status.to_string();
  EXPECT_EQ(resumed.chunks_reused, resumed.chunks_total - 1);

  // Re-running the damaged chunk restored the uninterrupted bytes.
  spec.threads = 2;
  const std::string ref_path = unique_corpus_path("damaged_ref");
  StreamingDatasetOptions ref_opts;
  ref_opts.corpus_path = ref_path;
  ref_opts.chunk_flows = 3;
  const StreamingDatasetResult reference = generate_dataset_streaming(spec, ref_opts);
  ASSERT_TRUE(reference.complete());
  EXPECT_EQ(read_file(path), read_file(ref_path));
  EXPECT_EQ(resumed.stats.to_text(), reference.stats.to_text());
  std::remove(path.c_str());
  std::remove(ref_path.c_str());
}

}  // namespace
}  // namespace hsr::workload
