#include "workload/dataset.h"

#include <gtest/gtest.h>

namespace hsr::workload {
namespace {

TEST(DatasetSpecTest, PaperTable1FullScale) {
  const DatasetSpec spec = DatasetSpec::paper_table1(1.0);
  ASSERT_EQ(spec.campaigns.size(), 4u);
  EXPECT_EQ(spec.campaigns[0].flows, 52u);  // January, Mobile
  EXPECT_EQ(spec.campaigns[1].flows, 73u);  // October, Mobile
  EXPECT_EQ(spec.campaigns[2].flows, 65u);  // October, Unicom
  EXPECT_EQ(spec.campaigns[3].flows, 65u);  // October, Telecom
  unsigned total = 0;
  for (const auto& c : spec.campaigns) total += c.flows;
  EXPECT_EQ(total, 255u);  // the paper's 255 flows
  EXPECT_EQ(spec.campaigns[0].trips, 8u);
  EXPECT_EQ(spec.campaigns[1].trips, 24u);
}

TEST(DatasetSpecTest, ScalingShrinksProportionally) {
  const DatasetSpec spec = DatasetSpec::paper_table1(0.1);
  EXPECT_EQ(spec.campaigns[0].flows, 5u);
  EXPECT_EQ(spec.campaigns[1].flows, 7u);
  // Never below one flow per campaign.
  const DatasetSpec tiny = DatasetSpec::paper_table1(0.001);
  for (const auto& c : tiny.campaigns) EXPECT_GE(c.flows, 1u);
}

TEST(GenerateDatasetTest, SmallCorpusEndToEnd) {
  DatasetSpec spec = DatasetSpec::paper_table1(0.03);
  spec.stationary_flows_per_provider = 2;
  spec.flow_duration_min = util::Duration::seconds(20);
  spec.flow_duration_max = util::Duration::seconds(30);
  const DatasetResult ds = generate_dataset(spec);

  unsigned expected_hs = 0;
  for (const auto& c : spec.campaigns) expected_hs += c.flows;
  EXPECT_EQ(ds.flows.size(), expected_hs + 3 * 2u);  // + stationary controls
  EXPECT_EQ(ds.corpus.size(), ds.flows.size());
  EXPECT_GT(ds.total_capture_gb(), 0.0);

  // Providers appear under their short names, both mobilities present.
  EXPECT_GE(ds.flow_count("China Mobile", true), 2u);
  EXPECT_EQ(ds.flow_count("China Mobile", false), 2u);
  EXPECT_EQ(ds.flow_count("China Unicom", false), 2u);
  EXPECT_EQ(ds.flow_count("China Telecom", false), 2u);

  for (const auto& f : ds.flows) {
    EXPECT_GT(f.goodput_pps, 0.0);
    EXPECT_GT(f.analysis.unique_segments, 0u);
  }
}

TEST(GenerateDatasetTest, DeterministicForSeed) {
  DatasetSpec spec = DatasetSpec::paper_table1(0.02);
  spec.stationary_flows_per_provider = 1;
  spec.flow_duration_min = util::Duration::seconds(15);
  spec.flow_duration_max = util::Duration::seconds(20);
  const DatasetResult a = generate_dataset(spec);
  const DatasetResult b = generate_dataset(spec);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].bytes_captured, b.flows[i].bytes_captured);
    EXPECT_DOUBLE_EQ(a.flows[i].goodput_pps, b.flows[i].goodput_pps);
  }
}

TEST(GenerateDatasetTest, HighSpeedWorseThanStationary) {
  DatasetSpec spec = DatasetSpec::paper_table1(0.04);
  spec.stationary_flows_per_provider = 3;
  spec.flow_duration_min = util::Duration::seconds(30);
  spec.flow_duration_max = util::Duration::seconds(45);
  const DatasetResult ds = generate_dataset(spec);
  const auto h = ds.corpus.headline();
  EXPECT_GT(h.mean_ack_loss_highspeed, h.mean_ack_loss_stationary);
  EXPECT_GT(h.mean_recovery_s_highspeed, h.mean_recovery_s_stationary);
}

}  // namespace
}  // namespace hsr::workload
