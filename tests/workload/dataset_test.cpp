#include "workload/dataset.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

#include "fault/fault.h"
#include "trace/trace_io.h"

namespace hsr::workload {
namespace {

TEST(DatasetSpecTest, PaperTable1FullScale) {
  const DatasetSpec spec = DatasetSpec::paper_table1(1.0);
  ASSERT_EQ(spec.campaigns.size(), 4u);
  EXPECT_EQ(spec.campaigns[0].flows, 52u);  // January, Mobile
  EXPECT_EQ(spec.campaigns[1].flows, 73u);  // October, Mobile
  EXPECT_EQ(spec.campaigns[2].flows, 65u);  // October, Unicom
  EXPECT_EQ(spec.campaigns[3].flows, 65u);  // October, Telecom
  unsigned total = 0;
  for (const auto& c : spec.campaigns) total += c.flows;
  EXPECT_EQ(total, 255u);  // the paper's 255 flows
  EXPECT_EQ(spec.campaigns[0].trips, 8u);
  EXPECT_EQ(spec.campaigns[1].trips, 24u);
}

TEST(DatasetSpecTest, ScalingShrinksProportionally) {
  const DatasetSpec spec = DatasetSpec::paper_table1(0.1);
  EXPECT_EQ(spec.campaigns[0].flows, 5u);
  EXPECT_EQ(spec.campaigns[1].flows, 7u);
  // Never below one flow per campaign.
  const DatasetSpec tiny = DatasetSpec::paper_table1(0.001);
  for (const auto& c : tiny.campaigns) EXPECT_GE(c.flows, 1u);
}

TEST(GenerateDatasetTest, SmallCorpusEndToEnd) {
  DatasetSpec spec = DatasetSpec::paper_table1(0.03);
  spec.stationary_flows_per_provider = 2;
  spec.flow_duration_min = util::Duration::seconds(20);
  spec.flow_duration_max = util::Duration::seconds(30);
  const DatasetResult ds = generate_dataset(spec);

  unsigned expected_hs = 0;
  for (const auto& c : spec.campaigns) expected_hs += c.flows;
  EXPECT_EQ(ds.flows.size(), expected_hs + 3 * 2u);  // + stationary controls
  EXPECT_EQ(ds.corpus.size(), ds.flows.size());
  EXPECT_GT(ds.total_capture_gb(), 0.0);

  // Providers appear under their short names, both mobilities present.
  EXPECT_GE(ds.flow_count("China Mobile", true), 2u);
  EXPECT_EQ(ds.flow_count("China Mobile", false), 2u);
  EXPECT_EQ(ds.flow_count("China Unicom", false), 2u);
  EXPECT_EQ(ds.flow_count("China Telecom", false), 2u);

  for (const auto& f : ds.flows) {
    EXPECT_GT(f.goodput_pps, 0.0);
    EXPECT_GT(f.analysis.unique_segments, 0u);
  }
}

TEST(GenerateDatasetTest, DeterministicForSeed) {
  DatasetSpec spec = DatasetSpec::paper_table1(0.02);
  spec.stationary_flows_per_provider = 1;
  spec.flow_duration_min = util::Duration::seconds(15);
  spec.flow_duration_max = util::Duration::seconds(20);
  const DatasetResult a = generate_dataset(spec);
  const DatasetResult b = generate_dataset(spec);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].bytes_captured, b.flows[i].bytes_captured);
    EXPECT_DOUBLE_EQ(a.flows[i].goodput_pps, b.flows[i].goodput_pps);
  }
}

TEST(GenerateDatasetTest, HighSpeedWorseThanStationary) {
  DatasetSpec spec = DatasetSpec::paper_table1(0.04);
  spec.stationary_flows_per_provider = 3;
  spec.flow_duration_min = util::Duration::seconds(30);
  spec.flow_duration_max = util::Duration::seconds(45);
  const DatasetResult ds = generate_dataset(spec);
  const auto h = ds.corpus.headline();
  EXPECT_GT(h.mean_ack_loss_highspeed, h.mean_ack_loss_stationary);
  EXPECT_GT(h.mean_recovery_s_highspeed, h.mean_recovery_s_stationary);
}

// --- HSR_BENCH_THREADS parsing ------------------------------------------------

TEST(ParseBenchThreadsTest, AcceptsPlainDecimal) {
  auto one = parse_bench_threads("1");
  ASSERT_TRUE(one.is_ok());
  EXPECT_EQ(one.value(), 1u);
  auto many = parse_bench_threads("12");
  ASSERT_TRUE(many.is_ok());
  EXPECT_EQ(many.value(), 12u);
  auto cap = parse_bench_threads("512");
  ASSERT_TRUE(cap.is_ok());
  EXPECT_EQ(cap.value(), kMaxBenchThreads);
}

TEST(ParseBenchThreadsTest, RejectsGarbageZeroAndAbsurd) {
  for (const char* bad : {"", "abc", "12abc", " 12", "-3", "0", "513", "1e3", "0x10"}) {
    auto parsed = parse_bench_threads(bad);
    EXPECT_FALSE(parsed.is_ok()) << "'" << bad << "' should be rejected";
    EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument);
    // The diagnostic names the knob so the failure is actionable.
    EXPECT_NE(parsed.status().message().find("HSR_BENCH_THREADS"), std::string::npos);
  }
  auto null_text = parse_bench_threads(nullptr);
  EXPECT_FALSE(null_text.is_ok());
}

TEST(GenerateDatasetTest, RejectsMalformedBenchThreadsEnv) {
  ASSERT_EQ(setenv("HSR_BENCH_THREADS", "lots", 1), 0);
  DatasetSpec spec = DatasetSpec::paper_table1(0.02);
  spec.threads = 0;  // defer to the env knob
  const DatasetResult ds = generate_dataset(spec);
  unsetenv("HSR_BENCH_THREADS");

  // A true reject: no silent fallback, no flows simulated.
  EXPECT_FALSE(ds.config_status.is_ok());
  EXPECT_EQ(ds.config_status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(ds.flows.empty());
  EXPECT_FALSE(ds.complete());
}

TEST(GenerateDatasetTest, ExplicitThreadCountIgnoresBrokenEnv) {
  ASSERT_EQ(setenv("HSR_BENCH_THREADS", "lots", 1), 0);
  DatasetSpec spec = DatasetSpec::paper_table1(0.02);
  spec.campaigns.resize(1);
  spec.stationary_flows_per_provider = 1;
  spec.flow_duration_min = util::Duration::seconds(5);
  spec.flow_duration_max = util::Duration::seconds(8);
  spec.threads = 2;  // explicit request: env not consulted
  const DatasetResult ds = generate_dataset(spec);
  unsetenv("HSR_BENCH_THREADS");
  EXPECT_TRUE(ds.config_status.is_ok());
  EXPECT_FALSE(ds.flows.empty());
}

// --- Graceful degradation -----------------------------------------------------

DatasetSpec degradation_spec() {
  DatasetSpec spec = DatasetSpec::paper_table1(0.02);
  spec.stationary_flows_per_provider = 1;
  spec.flow_duration_min = util::Duration::seconds(5);
  spec.flow_duration_max = util::Duration::seconds(8);
  spec.threads = 2;
  return spec;
}

TEST(GenerateDatasetTest, QuarantinesThrowingFlowAndCompletesRest) {
  DatasetSpec spec = degradation_spec();
  spec.configure_flow = [](std::uint64_t flow_index, FlowRunConfig&) {
    if (flow_index == 1) throw std::runtime_error("injected per-flow crash");
  };
  const DatasetResult ds = generate_dataset(spec);

  ASSERT_EQ(ds.quarantined.size(), 1u);
  EXPECT_EQ(ds.quarantined[0].flow_index, 1u);
  EXPECT_EQ(ds.quarantined[0].status.code(), util::StatusCode::kInternal);
  EXPECT_NE(ds.quarantined[0].status.message().find("injected per-flow crash"),
            std::string::npos);
  EXPECT_FALSE(ds.quarantined[0].provider.empty());
  EXPECT_FALSE(ds.complete());

  // Every OTHER flow completed and aggregated normally.
  const DatasetResult healthy = generate_dataset(degradation_spec());
  EXPECT_EQ(ds.flows.size(), healthy.flows.size() - 1);
  EXPECT_EQ(ds.corpus.size(), ds.flows.size());
  for (const auto& f : ds.flows) EXPECT_GT(f.analysis.unique_segments, 0u);
}

TEST(GenerateDatasetTest, WatchdogQuarantinesStalledFlow) {
  DatasetSpec spec = degradation_spec();
  spec.configure_flow = [](std::uint64_t flow_index, FlowRunConfig& cfg) {
    // Flow 0 gets an event budget far below what its duration needs: the
    // watchdog must abort it with a diagnostic instead of letting it run.
    if (flow_index == 0) cfg.max_sim_events = 50;
  };
  const DatasetResult ds = generate_dataset(spec);

  ASSERT_EQ(ds.quarantined.size(), 1u);
  EXPECT_EQ(ds.quarantined[0].flow_index, 0u);
  EXPECT_EQ(ds.quarantined[0].status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_NE(ds.quarantined[0].status.message().find("watchdog"), std::string::npos);
  EXPECT_FALSE(ds.complete());
  EXPECT_FALSE(ds.flows.empty());
}

TEST(GenerateDatasetTest, HealthyRunIsComplete) {
  const DatasetResult ds = generate_dataset(degradation_spec());
  EXPECT_TRUE(ds.complete());
  EXPECT_TRUE(ds.quarantined.empty());
  EXPECT_TRUE(ds.config_status.is_ok());
}

// --- Scripted faults through the campaign pipeline ----------------------------

// Serializes flow 0's capture for a faulted run at the given thread count.
std::string faulted_flow0_capture(unsigned threads) {
  DatasetSpec spec = degradation_spec();
  spec.threads = threads;
  spec.configure_flow = [](std::uint64_t flow_index, FlowRunConfig& cfg) {
    if (flow_index != 0) return;
    cfg.uplink_faults.kill_acks(util::TimePoint::from_seconds(0.5),
                                util::TimePoint::from_seconds(2.5));
    cfg.downlink_faults.drop_retransmissions(2);
  };
  std::string serialized;
  spec.observe_flow = [&serialized](std::uint64_t flow_index, const FlowRunResult& run) {
    if (flow_index != 0) return;
    std::ostringstream ss;
    trace::write_flow_capture(ss, run.capture);
    serialized = ss.str();
  };
  const DatasetResult ds = generate_dataset(spec);
  EXPECT_TRUE(ds.complete());
  return serialized;
}

TEST(GenerateDatasetTest, FaultedCaptureByteIdenticalAcrossThreadCounts) {
  const std::string reference = faulted_flow0_capture(1);
  ASSERT_FALSE(reference.empty());
  // The scripted ACK kill actually fired and was audited into the capture.
  EXPECT_NE(reference.find("\nF A "), std::string::npos);
  for (unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(faulted_flow0_capture(threads), reference) << "threads=" << threads;
  }
}

// --- Packet-fate attribution --------------------------------------------------

TEST(GenerateDatasetTest, EveryLostTransmissionCarriesANonUnknownCause) {
  DatasetSpec spec = degradation_spec();
  std::uint64_t attributed = 0;
  spec.observe_flow = [&attributed](std::uint64_t, const FlowRunResult& run) {
    const util::TimePoint tail =
        util::TimePoint::zero() + run.duration - util::Duration::seconds(1);
    for (const auto* dir : {&run.capture.data, &run.capture.acks}) {
      for (const auto& tx : dir->transmissions()) {
        if (!tx.lost()) continue;
        if (tx.drop_cause.has_value()) {
          EXPECT_NE(tx.drop_cause->category, net::DropCategory::kUnknown);
          ++attributed;
        } else {
          // The only excuse for a cause-less loss is being in flight when
          // the capture ended; anything sent well before the end must have
          // been attributed by the queue or the channel.
          EXPECT_GE(tx.sent, tail) << "unattributed loss mid-flow";
        }
      }
    }
  };
  const DatasetResult ds = generate_dataset(spec);
  EXPECT_TRUE(ds.complete());
  // High-speed rail profiles lose plenty of packets: the check above ran.
  EXPECT_GT(attributed, 0u);
}

TEST(GenerateDatasetTest, QuarantinedFlowsCarryTheirFaultPlans) {
  DatasetSpec spec = degradation_spec();
  spec.configure_flow = [](std::uint64_t flow_index, FlowRunConfig& cfg) {
    if (flow_index != 0) return;
    cfg.downlink_faults.blackout(util::TimePoint::from_seconds(1.0),
                                 util::TimePoint::from_seconds(1.5));
    cfg.uplink_faults.kill_acks(util::TimePoint::from_seconds(2.0),
                                util::TimePoint::from_seconds(2.2));
    cfg.max_sim_events = 50;  // watchdog abort -> quarantine
  };
  const DatasetResult ds = generate_dataset(spec);

  ASSERT_EQ(ds.quarantined.size(), 1u);
  const QuarantinedFlow& q = ds.quarantined[0];
  EXPECT_EQ(q.flow_index, 0u);
  // The portable plan text rides along, so the failure reproduces from the
  // quarantine record alone.
  auto down = fault::FaultPlan::parse(q.downlink_plan);
  auto up = fault::FaultPlan::parse(q.uplink_plan);
  ASSERT_TRUE(down.is_ok()) << down.status().message();
  ASSERT_TRUE(up.is_ok()) << up.status().message();
  ASSERT_EQ(down.value().directives.size(), 1u);
  EXPECT_EQ(down.value().directives[0].label, "blackout");
  EXPECT_EQ(up.value().directives[0].label, "ack-burst");

  // Fault-free quarantined flows would carry empty plan strings; healthy
  // flows never populate the quarantine list at all.
  const DatasetResult healthy = generate_dataset(degradation_spec());
  EXPECT_TRUE(healthy.quarantined.empty());
}

}  // namespace
}  // namespace hsr::workload
