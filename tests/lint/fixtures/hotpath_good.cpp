// lint-fixture: rules=hotpath path=src/sim/hot_ok_fixture.cpp
// Negative fixture: placement new constructs into existing storage (no
// allocation), an audited amortized-growth line can opt out with the
// exemption marker, and anything outside the region is free.
#include <new>
#include <vector>

namespace fixture {

struct Slot {
  alignas(8) unsigned char storage[16];
};

// HSR_HOT_PATH_BEGIN
inline void construct_in_place(Slot& slot, long v) {
  new (slot.storage) long(v);
}

inline void amortized_grow(std::vector<int>& heap, int v) {
  heap.push_back(v);  // hsr-lint-ok: amortized growth, steady state is zero-alloc
}
// HSR_HOT_PATH_END

inline void cold_setup(std::vector<int>& v) {
  v.reserve(1024);
  v.push_back(0);
}

}  // namespace fixture
