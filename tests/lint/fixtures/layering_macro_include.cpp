// lint-fixture: rules=layering path=src/net/macro_include_fixture.cpp
// Lexer corner case: a macro-spelled include cannot be layer-checked, so
// inside src/ it is rejected outright; the literal util/ include is fine.
#define HSR_FIXTURE_HEADER "net/link.h"
#include HSR_FIXTURE_HEADER                        // expect: macro-include
#include "util/time.h"

namespace fixture {}
