// lint-fixture: rules=layering path=src/workload/layering_ok_fixture.cpp
// Negative fixture: workload is the top of the DAG and may include every
// module listed for it in layers.toml; local non-module includes (no
// src/ module prefix) are ignored.
#include <vector>

#include "analysis/flow_analysis.h"
#include "mptcp/mptcp.h"
#include "radio/radio.h"
#include "tcp/tcp.h"
#include "trace/trace_io.h"
#include "util/status.h"
#include "workload/dataset.h"

namespace fixture {}
