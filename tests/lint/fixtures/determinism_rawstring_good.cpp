// lint-fixture: rules=determinism path=src/sim/rawstring_fixture.cpp
// Lexer corner case: banned tokens inside raw strings and ordinary string
// literals are data, not code, and must not fire.
#include <string>

namespace fixture {

inline std::string lint_doc() {
  return R"doc(
    Banned in real code, inert in data: std::chrono::system_clock::now(),
    srand(42), std::random_device rd, std::this_thread::sleep_for(1s),
    std::mt19937_64 engine; and std::this_thread::get_id().
  )doc";
}

inline std::string delimited() {
  return R"lint(calls std::time(nullptr) and clock( ) inside)lint";
}

inline std::string plain_literal() {
  return "gettimeofday(&tv, nullptr) in a plain string literal";
}

}  // namespace fixture
