// lint-fixture: rules=determinism path=src/sim/comment_fixture.cpp
// Lexer corner case: banned constructs inside comments and `#if 0` blocks
// are dead text and must not fire. A naive line lint trips on every one of
// these; the lexer strips them before any rule runs.
#include <cstdint>

namespace fixture {

/* Block comment mentioning srand(42), std::random_device rd; and
   std::this_thread::sleep_for(1s) across
   multiple lines. */
inline std::uint64_t virtual_now_us(std::uint64_t ticks) {
  // A naive port would call std::time(nullptr) here; we use sim ticks.
  return ticks * 10;
}

#if 0
// Disabled draft kept for reference: never compiled, never linted.
inline double wall_seconds() {
  auto t = std::chrono::system_clock::now();
  std::mt19937_64 engine;
  return std::chrono::duration<double>(t.time_since_epoch()).count() +
         static_cast<double>(engine());
}
#else
inline double wall_seconds(std::uint64_t ticks) { return ticks * 1e-6; }
#endif

}  // namespace fixture
