// lint-fixture: rules=determinism path=src/sim/alias_chain_fixture.cpp
// Lexer corner case: multi-level alias chains. The banned clock hides two
// `using` hops and one typedef away; every definition line and every use
// must fire.
#include <chrono>

namespace fixture {

using BaseClock = std::chrono::steady_clock;       // expect: wall-clock
using LegClock = BaseClock;                        // expect: wall-clock
using FinishClock = LegClock;                      // expect: wall-clock
typedef std::chrono::system_clock SysClk;          // expect: wall-clock

inline double lap_seconds() {
  auto start = FinishClock::now();                 // expect: wall-clock
  auto wall = SysClk::now();                       // expect: wall-clock
  return std::chrono::duration<double>(
             wall.time_since_epoch() - start.time_since_epoch())
      .count();
}

// A chain that never reaches a banned type stays clean.
using Ticks = unsigned long long;
using SimInstant = Ticks;
inline SimInstant advance(SimInstant t) { return t + 1; }

}  // namespace fixture
