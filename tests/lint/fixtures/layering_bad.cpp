// lint-fixture: rules=layering path=src/sim/layering_fixture.cpp
// Positive fixture: sim sits below the protocol stack — tcp/ and workload/
// headers violate the layers.toml DAG, while sim/ (self) and util/ are
// allowed. System headers are never layer-checked.
#include <cstdint>

#include "sim/event_queue.h"
#include "util/time.h"

#include "tcp/tcp.h"                               // expect: layer-violation
#include "workload/dataset.h"                      // expect: layer-violation

namespace fixture {}
