// lint-fixture: rules=serialization path=src/radio/writer_fixture.cpp
// Writer-function heuristic: outside the serialization modules the rule
// still fires inside any function named like a writer (write_*/save_*/
// serialize*/to_text/dump*/emit*/report*) — and stays quiet elsewhere.
#include <ostream>
#include <unordered_map>
#include <vector>

namespace fixture {

inline void write_histogram(std::ostream& os) {
  std::unordered_map<int, int> counts;             // expect: unordered-container
  os << counts.size();
}

inline int lookup_only(int key) {
  std::unordered_map<int, int> cache;
  auto it = cache.find(key);
  return it == cache.end() ? 0 : it->second;
}

}  // namespace fixture
