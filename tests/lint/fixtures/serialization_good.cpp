// lint-fixture: rules=serialization path=src/trace/sorted_fixture.cpp
// Negative fixture: ordered/sorted structures are the sanctioned idiom in
// serialization-sensitive modules, and an audited lookup-only unordered map
// can opt out with an exemption marker.
#include <map>
#include <set>
#include <string>
#include <unordered_map>  // hsr-lint-ok: lookup-only scratch index below

namespace fixture {

struct CaptureStats {
  std::map<int, int> per_flow;
  std::set<std::string> providers;
  std::unordered_map<int, int> scratch_lookup;  // hsr-lint-ok: never iterated, keys resolved one at a time
};

}  // namespace fixture
