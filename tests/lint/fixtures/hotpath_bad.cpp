// lint-fixture: rules=hotpath path=src/sim/hot_fixture.cpp
// Positive fixture: every named allocation construct inside an
// HSR_HOT_PATH region fires; the same constructs on the cold path below
// the region stay quiet.
#include <functional>
#include <memory>
#include <vector>

namespace fixture {

struct Ev {
  int id;
};

// HSR_HOT_PATH_BEGIN
inline void dispatch(std::vector<Ev>& pending, Ev ev) {
  Ev* leaked = new Ev{ev.id};                      // expect: hot-alloc
  pending.push_back(ev);                           // expect: hot-alloc
  pending.emplace_back(Ev{ev.id});                 // expect: hot-alloc
  auto boxed = std::make_unique<Ev>(ev);           // expect: hot-alloc
  std::function<void()> thunk;                     // expect: hot-alloc
  delete leaked;                                   // expect: hot-alloc
}
// HSR_HOT_PATH_END

inline void cold_setup(std::vector<Ev>& v, Ev ev) {
  v.reserve(64);
  v.push_back(ev);
  auto owned = std::make_unique<Ev>(ev);
  (void)owned;
}

}  // namespace fixture
