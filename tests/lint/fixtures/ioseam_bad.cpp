// lint-fixture: rules=ioseam path=src/trace/raw_write_fixture.cpp
// Positive fixture: raw write-capable streams, C stdio writes and
// std::filesystem mutations bypass the util::Fs seam — fault injection
// cannot script ENOSPC or torn renames against them, so the crash-safety
// tests would no longer cover these bytes. Aliases are seen through.
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace fixture {

using Sink = std::ofstream;                        // expect: raw-write-stream
namespace sfs = std::filesystem;

void spill(const char* path) {
  std::ofstream os(path);                          // expect: raw-write-stream
  std::fstream rw(path);                           // expect: raw-write-stream
  Sink aliased(path);                              // expect: raw-write-stream
  std::FILE* f = std::fopen(path, "wb");           // expect: raw-cio-write
  (void)f;
  std::rename(path, "renamed");                    // expect: raw-cio-write
  std::remove(path);                               // expect: raw-cio-write
  std::filesystem::rename(path, "moved");          // expect: raw-filesystem-write
  std::filesystem::remove_all(path);               // expect: raw-filesystem-write
  sfs::create_directories(path);                   // expect: raw-filesystem-write
}

}  // namespace fixture
