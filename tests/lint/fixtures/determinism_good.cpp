// lint-fixture: rules=determinism path=src/sim/det_ok_fixture.cpp
// Negative fixture: the idioms the simulation core actually uses must all
// stay clean — virtual time, forked Rng streams, chrono durations (which
// are not clocks), and the one audited engine member behind the exemption
// marker.
#include <chrono>
#include <cstdint>
#include <vector>

namespace fixture {

using Ticks = std::uint64_t;

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  Rng fork(std::uint64_t stream) const { return Rng(state_ ^ stream); }
  std::uint64_t next() { return state_ = state_ * 6364136223846793005ull + 1442695040888963407ull; }

 private:
  std::uint64_t state_;  // determinism-ok: fixture mirror of util::Rng internals
};

inline Ticks virtual_now(Ticks events_run) { return events_run * 10; }

inline std::chrono::microseconds as_duration(Ticks t) {
  return std::chrono::microseconds(t);
}

inline std::vector<std::uint64_t> per_shard_seeds(const Rng& root, int shards) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) seeds.push_back(Rng(root).fork(i).next());
  return seeds;
}

}  // namespace fixture
