// lint-fixture: rules=serialization path=src/trace/unordered_fixture.cpp
// Positive fixture: unordered containers (direct, via alias, and their
// includes) in a serialization-sensitive module feed implementation-defined
// iteration order into archive bytes.
#include <string>
#include <unordered_map>                           // expect: unordered-include

namespace fixture {

using DropIndex = std::unordered_map<std::string, int>;  // expect: unordered-container

struct CaptureStats {
  std::unordered_map<int, int> per_flow;           // expect: unordered-container
  DropIndex drops;                                 // expect: unordered-container
};

}  // namespace fixture
