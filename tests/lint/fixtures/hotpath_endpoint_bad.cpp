// lint-fixture: rules=hotpath path=src/tcp/endpoint_fixture.cpp
// Endpoint-shaped fixture for the TCP hot regions (sender.cpp /
// receiver.cpp): the flat scoreboard/ring idiom (mark, test, rank, at) is
// allocation-free and stays quiet; the node-based constructs the rewrite
// removed (std::set insert, std::map operator[], std::function callbacks)
// fire; the pre-sized diagnostic appends opt out with the audited marker.
#include <functional>
#include <map>
#include <set>
#include <vector>

namespace fixture {

struct Board {
  bool mark(unsigned long seq);
  bool test(unsigned long seq) const;
  unsigned long rank_below(unsigned long seq) const;
};

struct Info {
  unsigned retx = 0;
};

struct Ring {
  Info& at(unsigned long seq);
};

// HSR_HOT_PATH_BEGIN
inline void on_ack_flat(Board& sacked, Ring& segments, unsigned long seq,
                        std::vector<double>& cwnd_trace, double cwnd) {
  sacked.mark(seq);                                // flat scoreboard: quiet
  segments.at(seq).retx += sacked.test(seq);       // ring slot: quiet
  (void)sacked.rank_below(seq);                    // rank query: quiet
  cwnd_trace.push_back(cwnd);  // hsr-lint-ok: pre-sized by reserve_for
}

inline void on_ack_nodes(std::set<unsigned long>& sacked,
                         std::map<unsigned long, Info>& segments,
                         unsigned long seq) {
  sacked.insert(seq);                              // expect: hot-alloc
  segments.emplace(seq, Info{});                   // expect: hot-alloc
  std::function<void(unsigned long)> cb;           // expect: hot-alloc
}
// HSR_HOT_PATH_END

inline void cold_setup(std::set<unsigned long>& s) { s.insert(1); }

}  // namespace fixture
