// lint-fixture: rules=determinism path=src/sim/det_fixture.cpp
// Positive fixture: every determinism rule fires exactly where annotated.
// The `using WallClock = ...` line plus its later use is the acceptance
// case for alias-awareness.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <thread>

namespace fixture {

using WallClock = std::chrono::system_clock;       // expect: wall-clock
using Engine = std::mt19937;

inline double bad_now() {
  auto a = std::chrono::steady_clock::now();       // expect: wall-clock
  auto b = WallClock::now();                       // expect: wall-clock
  std::time_t t = std::time(nullptr);              // expect: c-time
  return static_cast<double>(t) +
         std::chrono::duration<double>(a - b).count();
}

inline int bad_random() {
  std::srand(42);                                  // expect: c-rand
  std::random_device rd;                           // expect: random-device
  std::mt19937_64 gen{};                           // expect: unseeded-engine
  Engine forked_;                                  // expect: unseeded-engine
  return std::rand() + static_cast<int>(rd()) +    // expect: c-rand
         static_cast<int>(gen()) + static_cast<int>(forked_());
}

inline void bad_sync() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // expect: sleep-sync
  auto id = std::this_thread::get_id();            // expect: thread-id
  (void)id;
}

// Negative slice inside the positive fixture: referencing the engine TYPE
// without constructing one (return type, reference binding) is fine.
std::mt19937_64& shared_engine();
inline auto& engine_ref() { return shared_engine(); }

}  // namespace fixture
