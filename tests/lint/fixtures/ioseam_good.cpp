// lint-fixture: rules=ioseam path=src/trace/seam_write_fixture.cpp
// Negative fixture: reads carry no durability contract so std::ifstream and
// std::filesystem queries stay free; member helpers whose names merely
// contain the banned spellings stay quiet; and an audited exception opts
// out with a reason. A std::ofstream in a comment is prose, not code.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace fixture {

struct Seam {
  int rename_file(const std::string& from, const std::string& to);
  int remove_file(const std::string& path);
};

std::string slurp(const std::string& path) {
  std::ifstream is(path);  // reads never need the seam
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

bool rotate(Seam& fs, const std::string& name) {
  if (!std::filesystem::exists(name)) return false;
  (void)std::filesystem::file_size(name);
  fs.rename_file(name, name + ".bak");   // seam member, not ::rename
  return fs.remove_file(name + ".old") == 0;
}

std::ofstream debug_log();  // hsr-lint-ok: process-lifetime debug sink, not campaign data

}  // namespace fixture
