// lint-fixture: rules=hotpath path=src/sim/hot_marker_fixture.cpp
// Marker hygiene: an END without a BEGIN and a BEGIN that is never closed
// are both reported — a silently unterminated region would lint nothing.

namespace fixture {

// stray HSR_HOT_PATH_END marker with no begin -- expect: hot-marker

inline int noop(int x) { return x; }

// dangling HSR_HOT_PATH_BEGIN never closed -- expect: hot-marker

inline int still_open(int x) { return x + 1; }

}  // namespace fixture
