#include "radio/profiles.h"

#include <gtest/gtest.h>

namespace hsr::radio {
namespace {

TEST(ProfilesTest, AllHighspeedProfilesPresent) {
  const auto profiles = all_highspeed_profiles();
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].provider, Provider::kChinaMobileLte);
  EXPECT_EQ(profiles[1].provider, Provider::kChinaUnicom3g);
  EXPECT_EQ(profiles[2].provider, Provider::kChinaTelecom3g);
  for (const auto& p : profiles) {
    EXPECT_EQ(p.mobility, Mobility::kHighSpeed);
    EXPECT_NEAR(p.radio.speed_mps, 300.0 / 3.6, 1e-9);
  }
}

TEST(ProfilesTest, CapacityOrderingMobileBest) {
  const auto m = mobile_lte_highspeed();
  const auto u = unicom_3g_highspeed();
  const auto t = telecom_3g_highspeed();
  EXPECT_GT(m.downlink_rate_bps, u.downlink_rate_bps);
  EXPECT_GT(u.downlink_rate_bps, t.downlink_rate_bps);
}

TEST(ProfilesTest, ImpairmentOrderingTelecomWorst) {
  const auto m = mobile_lte_highspeed();
  const auto u = unicom_3g_highspeed();
  const auto t = telecom_3g_highspeed();
  EXPECT_LT(m.radio.handoff_outage_median_s, u.radio.handoff_outage_median_s);
  EXPECT_LE(u.radio.handoff_outage_median_s, t.radio.handoff_outage_median_s);
  // Coverage gaps: none for Mobile's dedicated LTE coverage; mild for
  // Unicom; dominant for Telecom around Beijing/Tianjin (§V-B).
  EXPECT_DOUBLE_EQ(m.radio.coverage_gap_rate_per_s, 0.0);
  EXPECT_GT(t.radio.coverage_gap_rate_per_s, 0.0);
  EXPECT_GT(t.radio.coverage_gap_rate_per_s * t.radio.coverage_gap_mean_s,
            u.radio.coverage_gap_rate_per_s * u.radio.coverage_gap_mean_s);
}

TEST(ProfilesTest, StationaryVariantIsQuiet) {
  const auto hs = unicom_3g_highspeed();
  const auto st = stationary_of(hs);
  EXPECT_EQ(st.mobility, Mobility::kStationary);
  EXPECT_DOUBLE_EQ(st.radio.speed_mps, 0.0);
  EXPECT_LT(st.radio.base_loss_up, hs.radio.base_loss_up);
  EXPECT_LT(st.radio.uplink_fade_rate_per_s, hs.radio.uplink_fade_rate_per_s);
  EXPECT_LT(st.radio.delay_wander_amplitude_s, hs.radio.delay_wander_amplitude_s);
  EXPECT_DOUBLE_EQ(st.radio.coverage_gap_rate_per_s, 0.0);
  EXPECT_EQ(st.provider, hs.provider);
  EXPECT_NE(st.name, hs.name);
}

TEST(ProfilesTest, ProviderNames) {
  EXPECT_STREQ(provider_name(Provider::kChinaMobileLte), "China Mobile");
  EXPECT_STREQ(provider_name(Provider::kChinaUnicom3g), "China Unicom");
  EXPECT_STREQ(provider_name(Provider::kChinaTelecom3g), "China Telecom");
}

TEST(ProfilesTest, SaneParameterRanges) {
  for (const auto& p : all_highspeed_profiles()) {
    EXPECT_GT(p.downlink_rate_bps, 0.0);
    EXPECT_GT(p.uplink_rate_bps, 0.0);
    EXPECT_GT(p.queue_capacity, 0u);
    EXPECT_GE(p.receiver_window_segments, 32u);
    EXPECT_GT(p.radio.cell_spacing_m, 100.0);
    EXPECT_GE(p.radio.handoff_loss, 0.9);
    EXPECT_LE(p.radio.handoff_loss, 1.0);
    EXPECT_GE(p.radio.downlink_only_outage_fraction, 0.0);
    EXPECT_LE(p.radio.downlink_only_outage_fraction, 1.0);
  }
}

}  // namespace
}  // namespace hsr::radio
