// Tests for piecewise speed profiles (acceleration legs and station stops).
#include <gtest/gtest.h>

#include "radio/environment.h"

namespace hsr::radio {
namespace {

RadioConfig journey_config() {
  RadioConfig cfg;
  cfg.cell_spacing_m = 1000.0;
  cfg.handoff_outage_median_s = 0.2;
  cfg.handoff_outage_sigma = 1e-6;
  cfg.base_loss_down = 0.0;
  cfg.base_loss_up = 0.0;
  cfg.edge_loss_down = 0.0;
  cfg.edge_loss_up = 0.0;
  cfg.uplink_fade_rate_per_s = 0.0;
  cfg.downlink_fade_rate_per_s = 0.0;
  cfg.delay_wander_amplitude_s = 0.0;
  // 10 s at 50 m/s (500 m), 10 s stopped, then 100 m/s forever.
  cfg.speed_profile = {{10.0, 50.0}, {10.0, 0.0}, {10.0, 100.0}};
  return cfg;
}

TEST(SpeedProfileTest, PositionIntegratesPhases) {
  RadioEnvironment env(journey_config(), util::Rng(1));
  EXPECT_DOUBLE_EQ(env.position_m(TimePoint::from_seconds(0.0)), 0.0);
  EXPECT_DOUBLE_EQ(env.position_m(TimePoint::from_seconds(5.0)), 250.0);
  EXPECT_DOUBLE_EQ(env.position_m(TimePoint::from_seconds(10.0)), 500.0);
  // Stopped: position frozen.
  EXPECT_DOUBLE_EQ(env.position_m(TimePoint::from_seconds(15.0)), 500.0);
  EXPECT_DOUBLE_EQ(env.position_m(TimePoint::from_seconds(20.0)), 500.0);
  // Moving again at 100 m/s.
  EXPECT_DOUBLE_EQ(env.position_m(TimePoint::from_seconds(25.0)), 1000.0);
  // Past the last phase: keeps the last speed.
  EXPECT_DOUBLE_EQ(env.position_m(TimePoint::from_seconds(40.0)), 2500.0);
}

TEST(SpeedProfileTest, SpeedAtPhases) {
  RadioEnvironment env(journey_config(), util::Rng(1));
  EXPECT_DOUBLE_EQ(env.speed_at(TimePoint::from_seconds(5.0)), 50.0);
  EXPECT_DOUBLE_EQ(env.speed_at(TimePoint::from_seconds(15.0)), 0.0);
  EXPECT_DOUBLE_EQ(env.speed_at(TimePoint::from_seconds(25.0)), 100.0);
  EXPECT_DOUBLE_EQ(env.speed_at(TimePoint::from_seconds(99.0)), 100.0);
}

TEST(SpeedProfileTest, TimeOfPositionInvertsAcrossStops) {
  RadioEnvironment env(journey_config(), util::Rng(1));
  EXPECT_DOUBLE_EQ(env.time_of_position(250.0).to_seconds(), 5.0);
  // 1000 m: 500 in phase 1, stop, then 500 more at 100 m/s -> t = 25 s.
  EXPECT_DOUBLE_EQ(env.time_of_position(1000.0).to_seconds(), 25.0);
  EXPECT_EQ(env.time_of_position(-5.0), TimePoint::zero());
}

TEST(SpeedProfileTest, TimeOfPositionNeverWhenEndingStopped) {
  RadioConfig cfg = journey_config();
  cfg.speed_profile = {{10.0, 50.0}, {10.0, 0.0}};  // ends stopped
  RadioEnvironment env(cfg, util::Rng(1));
  EXPECT_EQ(env.time_of_position(501.0), TimePoint::max());
  EXPECT_DOUBLE_EQ(env.time_of_position(500.0).to_seconds(), 10.0);
}

TEST(SpeedProfileTest, HandoffsFollowPositionNotTime) {
  RadioEnvironment env(journey_config(), util::Rng(1));
  // First boundary at 1000 m is reached at t = 25 s (the stop delays it).
  EXPECT_EQ(env.handoff_count(TimePoint::from_seconds(24.9)), 0u);
  EXPECT_EQ(env.handoff_count(TimePoint::from_seconds(25.1)), 1u);
  // Next boundary at 2000 m: 10 more seconds at 100 m/s -> t = 35 s.
  EXPECT_EQ(env.handoff_count(TimePoint::from_seconds(35.1)), 2u);
}

TEST(SpeedProfileTest, NoHandoffsDuringStationDwell) {
  RadioEnvironment env(journey_config(), util::Rng(1));
  EXPECT_EQ(env.handoff_count(TimePoint::from_seconds(19.9)), 0u);
  EXPECT_FALSE(env.in_outage(TimePoint::from_seconds(15.0)));
}

TEST(SpeedProfileTest, EmptyProfileFallsBackToConstantSpeed) {
  RadioConfig cfg = journey_config();
  cfg.speed_profile.clear();
  cfg.speed_mps = 100.0;
  RadioEnvironment env(cfg, util::Rng(1));
  EXPECT_DOUBLE_EQ(env.position_m(TimePoint::from_seconds(3.0)), 300.0);
  EXPECT_DOUBLE_EQ(env.time_of_position(1000.0).to_seconds(), 10.0);
}

}  // namespace
}  // namespace hsr::radio
