#include "radio/environment.h"

#include <gtest/gtest.h>

namespace hsr::radio {
namespace {

RadioConfig quiet_config() {
  // A configuration with every stochastic impairment disabled, so the
  // deterministic geometry can be tested in isolation.
  RadioConfig cfg;
  cfg.speed_mps = 100.0;
  cfg.cell_spacing_m = 1000.0;
  cfg.handoff_outage_median_s = 0.5;
  cfg.handoff_outage_sigma = 1e-6;  // essentially deterministic durations
  cfg.base_loss_down = 0.0;
  cfg.base_loss_up = 0.0;
  cfg.edge_loss_down = 0.0;
  cfg.edge_loss_up = 0.0;
  cfg.uplink_fade_rate_per_s = 0.0;
  cfg.downlink_fade_rate_per_s = 0.0;
  cfg.delay_wander_amplitude_s = 0.0;
  cfg.downlink_only_outage_fraction = 0.0;
  return cfg;
}

TEST(TrajectoryTest, PositionAdvancesLinearly) {
  RadioEnvironment env(quiet_config(), util::Rng(1));
  EXPECT_DOUBLE_EQ(env.position_m(TimePoint::zero()), 0.0);
  EXPECT_DOUBLE_EQ(env.position_m(TimePoint::from_seconds(3.0)), 300.0);
}

TEST(TrajectoryTest, EdgeDistanceGeometry) {
  RadioEnvironment env(quiet_config(), util::Rng(1));
  // Tower at 500 m (cell center). At t=0 (pos 0, boundary): distance 1.
  EXPECT_NEAR(env.normalized_edge_distance(TimePoint::zero()), 1.0, 1e-9);
  // At pos 500 (t=5): under the tower.
  EXPECT_NEAR(env.normalized_edge_distance(TimePoint::from_seconds(5.0)), 0.0, 1e-9);
  // At pos 250: halfway.
  EXPECT_NEAR(env.normalized_edge_distance(TimePoint::from_seconds(2.5)), 0.5, 1e-9);
}

TEST(TrajectoryTest, StationaryPositionFixed) {
  RadioConfig cfg = quiet_config();
  cfg.speed_mps = 0.0;
  cfg.initial_offset_frac = 0.25;
  RadioEnvironment env(cfg, util::Rng(1));
  EXPECT_NEAR(env.normalized_edge_distance(TimePoint::zero()),
              env.normalized_edge_distance(TimePoint::from_seconds(100.0)), 1e-12);
  EXPECT_FALSE(env.in_outage(TimePoint::from_seconds(50.0)));
  EXPECT_EQ(env.handoff_count(TimePoint::from_seconds(1000.0)), 0u);
}

TEST(HandoffTest, OccursAtCellBoundaries) {
  RadioEnvironment env(quiet_config(), util::Rng(1));
  // Boundaries at 1000 m, 2000 m, ... => t = 10 s, 20 s, ...
  EXPECT_EQ(env.handoff_count(TimePoint::from_seconds(9.9)), 0u);
  EXPECT_EQ(env.handoff_count(TimePoint::from_seconds(10.1)), 1u);
  EXPECT_EQ(env.handoff_count(TimePoint::from_seconds(35.0)), 3u);
}

TEST(HandoffTest, OutageWindowHasConfiguredDuration) {
  RadioEnvironment env(quiet_config(), util::Rng(1));
  EXPECT_FALSE(env.in_outage(TimePoint::from_seconds(9.5)));
  EXPECT_TRUE(env.in_outage(TimePoint::from_seconds(10.2)));
  // Median 0.5 s with sigma ~0: outage ends by ~10.5 s.
  EXPECT_FALSE(env.in_outage(TimePoint::from_seconds(10.6)));
}

TEST(HandoffTest, OutageDropsBothDirections) {
  RadioConfig cfg = quiet_config();
  cfg.handoff_loss = 1.0;
  RadioEnvironment env(cfg, util::Rng(1));
  const TimePoint inside = TimePoint::from_seconds(10.2);
  EXPECT_DOUBLE_EQ(env.drop_probability(Direction::kDownlink, inside), 1.0);
  EXPECT_DOUBLE_EQ(env.drop_probability(Direction::kUplink, inside), 1.0);
}

TEST(HandoffTest, DownlinkOnlyOutagesSpareTheUplink) {
  RadioConfig cfg = quiet_config();
  cfg.downlink_only_outage_fraction = 1.0;
  cfg.handoff_loss = 1.0;
  RadioEnvironment env(cfg, util::Rng(1));
  const TimePoint inside = TimePoint::from_seconds(10.2);
  EXPECT_TRUE(env.outage_affects(Direction::kDownlink, inside));
  EXPECT_FALSE(env.outage_affects(Direction::kUplink, inside));
  EXPECT_DOUBLE_EQ(env.drop_probability(Direction::kDownlink, inside), 1.0);
  EXPECT_DOUBLE_EQ(env.drop_probability(Direction::kUplink, inside), 0.0);
}

TEST(LossGeometryTest, EdgeLossGrowsQuadratically) {
  RadioConfig cfg = quiet_config();
  cfg.base_loss_down = 0.001;
  cfg.edge_loss_down = 0.01;
  RadioEnvironment env(cfg, util::Rng(1));
  // Under the tower (t=5): base only.
  EXPECT_NEAR(env.drop_probability(Direction::kDownlink, TimePoint::from_seconds(5.0)),
              0.001, 1e-9);
  // Halfway (t=7.5, edge=0.5): base + 0.25*edge term.
  EXPECT_NEAR(env.drop_probability(Direction::kDownlink, TimePoint::from_seconds(7.5)),
              0.001 + 0.01 * 0.25, 1e-9);
}

TEST(FadeProcessTest, InactiveWhenRateZero) {
  FadeProcess f(0.0, 1.0, util::Rng(1));
  EXPECT_FALSE(f.active(TimePoint::from_seconds(100.0)));
}

TEST(FadeProcessTest, DutyCycleMatchesRateTimesMean) {
  const double rate = 0.5;  // every 2 s on average
  const double mean = 0.4;
  FadeProcess f(rate, mean, util::Rng(11));
  int active = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (f.active(TimePoint::from_seconds(i * 0.01))) ++active;
  }
  // Alternating process: duty = mean / (mean + 1/rate).
  const double expected = mean / (mean + 1.0 / rate);
  EXPECT_NEAR(static_cast<double>(active) / n, expected, 0.03);
}

TEST(DelayWanderTest, ZeroAmplitudeIsZero) {
  DelayWanderProcess w(0.0, 1.0, util::Rng(1));
  EXPECT_DOUBLE_EQ(w.value(TimePoint::from_seconds(5.0)), 0.0);
}

TEST(DelayWanderTest, StaysWithinAmplitude) {
  DelayWanderProcess w(0.3, 2.0, util::Rng(5));
  for (int i = 0; i < 10000; ++i) {
    const double v = w.value(TimePoint::from_seconds(i * 0.01));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 0.3);
  }
}

TEST(DelayWanderTest, SlopeBoundPreventsReordering) {
  // With period >= amplitude the delay can fall at most 1 s per second, so
  // t + delay(t) is nondecreasing (no packet reordering).
  DelayWanderProcess w(1.0, 1.5, util::Rng(7));
  double prev_virtual = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double t = i * 0.005;
    const double virt = t + w.value(TimePoint::from_seconds(t));
    EXPECT_GE(virt, prev_virtual - 1e-9);
    prev_virtual = virt;
  }
}

TEST(CoverageGapTest, GapKillsBothDirections) {
  RadioConfig cfg = quiet_config();
  cfg.coverage_gap_rate_per_s = 1000.0;  // effectively always in a gap
  cfg.coverage_gap_mean_s = 10.0;
  cfg.coverage_gap_loss = 1.0;
  RadioEnvironment env(cfg, util::Rng(1));
  const TimePoint t = TimePoint::from_seconds(1.0);
  if (env.in_coverage_gap(t)) {
    EXPECT_DOUBLE_EQ(env.drop_probability(Direction::kDownlink, t), 1.0);
    EXPECT_DOUBLE_EQ(env.drop_probability(Direction::kUplink, t), 1.0);
  }
}

TEST(DelayTest, ExtraDelayIncludesAccessAndEdgeTerms) {
  RadioConfig cfg = quiet_config();
  cfg.access_delay_s = 0.010;
  cfg.edge_extra_delay_s = 0.020;
  RadioEnvironment env(cfg, util::Rng(1));
  // Under the tower: access only.
  EXPECT_NEAR(env.extra_delay(Direction::kDownlink, TimePoint::from_seconds(5.0)).to_seconds(),
              0.010, 1e-6);
  // At the boundary (t=20+): access + full edge bump (plus outage bump if in
  // outage; measure just before the boundary).
  EXPECT_NEAR(env.extra_delay(Direction::kDownlink, TimePoint::from_seconds(9.99)).to_seconds(),
              0.010 + 0.020 * 0.998, 1e-3);
}

TEST(MakeChannelTest, ChannelReflectsEnvironment) {
  RadioConfig cfg = quiet_config();
  cfg.handoff_loss = 1.0;
  RadioEnvironment env(cfg, util::Rng(1));
  auto down = env.make_channel(Direction::kDownlink, util::Rng(2));
  net::Packet p;
  // During the outage at t=10.2 every packet drops, attributed to the radio.
  const net::ChannelVerdict outage = down->decide(p, TimePoint::from_seconds(10.2));
  EXPECT_TRUE(outage.dropped);
  EXPECT_EQ(outage.cause.category, net::DropCategory::kFunctionalRadio);
  // Under the tower with zero losses nothing drops.
  EXPECT_FALSE(down->decide(p, TimePoint::from_seconds(14.9)).dropped);
}

}  // namespace
}  // namespace hsr::radio
